#!/usr/bin/env python3
"""Documentation link checker (registered as ctest `docs_links_test`).

Walks the curated documentation set (README.md, DESIGN.md,
EXPERIMENTS.md, docs/*.md) and fails on:

  * relative markdown links whose target file does not exist;
  * anchor fragments (FILE.md#section, or in-page #section) that do not
    match any GitHub-style heading slug in the target document;
  * cited repository source paths (src/..., bench/..., tests/...,
    examples/..., docs/..., tools/...) that do not exist.

External links (http/https/mailto) are not checked. Generated paths
(bench_reports/, build/) are outside the checked prefixes on purpose.

Usage: python3 tools/check_doc_links.py [repo_root]
Exit code 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# [text](target) — target captured up to the closing paren (no spaces).
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# A cited repo path with a recognizable prefix and a file extension.
SOURCE_PATH = re.compile(
    r"\b((?:src|docs|bench|tests|examples|tools)/"
    r"[A-Za-z0-9_./-]*[A-Za-z0-9_-]\.(?:cpp|hpp|h|py|md|json|txt|cmake))\b"
)


HEADING = re.compile(r"^(#{1,6})\s+(.+?)\s*$")
FENCE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's heading -> anchor id transform (close enough for ASCII
    docs): drop markdown markup, lowercase, strip punctuation except
    hyphens/underscores, spaces become hyphens."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [t](url) -> t
    text = text.replace("`", "").replace("*", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(doc: Path) -> set[str]:
    """Every anchor id the rendered document exposes. Duplicate headings
    get GitHub's -1, -2, ... suffixes."""
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in doc.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def doc_files(root: Path) -> list[Path]:
    files = [root / name for name in ("README.md", "DESIGN.md",
                                      "EXPERIMENTS.md")]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_file(root: Path, doc: Path,
               slug_cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(root)

    def slugs_of(path: Path) -> set[str]:
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MD_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, fragment = target.partition("#")
            resolved = (doc.parent / path).resolve() if path else doc
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: dead link -> {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment.lower() not in slugs_of(resolved):
                    errors.append(
                        f"{rel}:{lineno}: dead anchor -> {target} "
                        f"(no heading slug \"{fragment}\")")
        for match in SOURCE_PATH.finditer(line):
            cited = match.group(1)
            if not (root / cited).exists():
                errors.append(f"{rel}:{lineno}: missing source path -> {cited}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    docs = doc_files(root)
    if not docs:
        print(f"no documentation files found under {root}", file=sys.stderr)
        return 1
    errors = []
    slug_cache: dict[Path, set[str]] = {}
    for doc in docs:
        errors += check_file(root, doc, slug_cache)
    if errors:
        print(f"{len(errors)} dead documentation link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(docs)} documents, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
