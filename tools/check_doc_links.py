#!/usr/bin/env python3
"""Documentation link checker (registered as ctest `docs_links_test`).

Walks the curated documentation set (README.md, DESIGN.md,
EXPERIMENTS.md, docs/*.md) and fails on:

  * relative markdown links whose target file does not exist;
  * cited repository source paths (src/..., bench/..., tests/...,
    examples/..., docs/..., tools/...) that do not exist.

External links (http/https/mailto) and pure in-page anchors are not
checked. Generated paths (bench_reports/, build/) are outside the
checked prefixes on purpose.

Usage: python3 tools/check_doc_links.py [repo_root]
Exit code 0 when every link resolves, 1 otherwise.
"""

import re
import sys
from pathlib import Path

# [text](target) — target captured up to the closing paren (no spaces).
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# A cited repo path with a recognizable prefix and a file extension.
SOURCE_PATH = re.compile(
    r"\b((?:src|docs|bench|tests|examples|tools)/"
    r"[A-Za-z0-9_./-]*[A-Za-z0-9_-]\.(?:cpp|hpp|h|py|md|json|txt|cmake))\b"
)


def doc_files(root: Path) -> list[Path]:
    files = [root / name for name in ("README.md", "DESIGN.md",
                                      "EXPERIMENTS.md")]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_file(root: Path, doc: Path) -> list[str]:
    errors = []
    text = doc.read_text(encoding="utf-8")
    rel = doc.relative_to(root)

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MD_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: dead link -> {target}")
        for match in SOURCE_PATH.finditer(line):
            cited = match.group(1)
            if not (root / cited).exists():
                errors.append(f"{rel}:{lineno}: missing source path -> {cited}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        Path(__file__).resolve().parent.parent
    docs = doc_files(root)
    if not docs:
        print(f"no documentation files found under {root}", file=sys.stderr)
        return 1
    errors = []
    for doc in docs:
        errors += check_file(root, doc)
    if errors:
        print(f"{len(errors)} dead documentation link(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"checked {len(docs)} documents, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
