#!/usr/bin/env python3
"""Bench-report regression diff (registered as ctest `bench_diff_selftest`).

Compares two machine-readable bench reports (bench_reports/*.json, the
`{"experiment": ..., "rows": [...]}` shape every bench binary writes)
and fails when a watched metric regresses beyond a threshold:

  * latency-like metrics (key contains "p99" or "latency"): regression
    when the candidate is MORE than `--threshold-pct` above the baseline;
  * goodput-like metrics (key contains "goodput", "throughput", or
    "img_s"): regression when the candidate is more than
    `--threshold-pct` BELOW the baseline.

Rows are matched on their identity — every non-numeric value in the row
(platform, dataset, sweep, flags, ...) plus numeric keys that look like
sweep parameters (rate, qps, batch). Rows present in only one report are
reported but are not failures, so a sweep can grow new points without
breaking the gate.

Usage:
  python3 tools/bench_diff.py baseline.json candidate.json \
      [--threshold-pct 10] [--metrics p99_latency_s,goodput_img_s]
  python3 tools/bench_diff.py --self-test

Exit code 0 when no watched metric regresses, 1 otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

# "scratch_bytes" covers the attention report's kernel footprint: a
# scratch growth regresses the edge memory budget, and like latency it
# is lower-better. "transmit_bytes" and "energy_per_image" cover the
# continuum fleet report: more uplink bytes or joules per served image
# for the same workload is a placement regression, so both are
# lower-better.
LATENCY_HINTS = ("p99", "latency", "ttft", "scratch_bytes",
                 "transmit_bytes", "energy_per_image")
# "fairness" covers the multi-tenancy reports' Jain index: a fairness
# drop is an isolation regression, and like goodput it is higher-better.
# "speedup" covers the kernel reports (BENCH_attention fused-vs-naive):
# a speedup drop means the optimized path lost ground to its baseline.
GOODPUT_HINTS = ("goodput", "throughput", "img_s", "tok_s", "fairness",
                 "speedup")
# Numeric keys that identify a sweep point rather than measure it.
PARAM_HINTS = ("rate", "qps", "batch", "instances", "threshold", "arrival",
               "multiplier", "tenants", "workers", "tokens", "dim", "heads",
               "users", "farms", "nodes")


def is_latency_metric(key: str) -> bool:
    return any(h in key.lower() for h in LATENCY_HINTS)


def is_goodput_metric(key: str) -> bool:
    return any(h in key.lower() for h in GOODPUT_HINTS)


def is_param(key: str) -> bool:
    return any(h in key.lower() for h in PARAM_HINTS)


def row_identity(row: dict) -> tuple:
    parts = []
    for key in sorted(row):
        value = row[key]
        if isinstance(value, bool) or isinstance(value, str):
            parts.append((key, value))
        elif isinstance(value, (int, float)) and is_param(key):
            parts.append((key, value))
    return tuple(parts)


def load_rows(path: Path) -> dict:
    doc = json.loads(path.read_text(encoding="utf-8"))
    rows = doc.get("rows", [])
    indexed = {}
    for row in rows:
        if isinstance(row, dict):
            indexed[row_identity(row)] = row
    return indexed


def watched_metrics(row: dict, explicit: list[str]) -> list[str]:
    if explicit:
        return [k for k in explicit if isinstance(row.get(k), (int, float))]
    return [
        k for k, v in row.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
        and not is_param(k) and (is_latency_metric(k) or is_goodput_metric(k))
    ]


def diff_reports(baseline: dict, candidate: dict, threshold_pct: float,
                 metrics: list[str]) -> list[str]:
    """Returns the list of regression messages (empty = pass)."""
    failures = []
    for identity, base_row in baseline.items():
        cand_row = candidate.get(identity)
        label = ", ".join(f"{k}={v}" for k, v in identity) or "<row>"
        if cand_row is None:
            print(f"  note: row only in baseline: {label}")
            continue
        for key in watched_metrics(base_row, metrics):
            base = base_row.get(key)
            cand = cand_row.get(key)
            if not isinstance(cand, (int, float)) or base == 0:
                continue
            delta_pct = 100.0 * (cand - base) / abs(base)
            worse = (is_latency_metric(key) and delta_pct > threshold_pct) or (
                is_goodput_metric(key) and not is_latency_metric(key)
                and delta_pct < -threshold_pct)
            if worse:
                failures.append(
                    f"{label}: {key} {base:g} -> {cand:g} "
                    f"({delta_pct:+.1f}%, threshold {threshold_pct:g}%)")
    for identity in candidate:
        if identity not in baseline:
            label = ", ".join(f"{k}={v}" for k, v in identity) or "<row>"
            print(f"  note: row only in candidate: {label}")
    return failures


def self_test() -> int:
    base = {
        "rows": [
            {"sweep": "a", "arrival_qps": 1000, "p99_latency_s": 0.050,
             "goodput_img_s": 900.0},
            {"sweep": "a", "arrival_qps": 2000, "p99_latency_s": 0.080,
             "goodput_img_s": 1700.0},
        ]
    }
    ok = {
        "rows": [
            {"sweep": "a", "arrival_qps": 1000, "p99_latency_s": 0.052,
             "goodput_img_s": 880.0},
            {"sweep": "a", "arrival_qps": 2000, "p99_latency_s": 0.079,
             "goodput_img_s": 1750.0},
            # New sweep point: noted, not a failure.
            {"sweep": "a", "arrival_qps": 4000, "p99_latency_s": 0.2,
             "goodput_img_s": 1800.0},
        ]
    }
    bad = {
        "rows": [
            # p99 +40% and goodput -30%: both must trip a 10% gate.
            {"sweep": "a", "arrival_qps": 1000, "p99_latency_s": 0.070,
             "goodput_img_s": 630.0},
            {"sweep": "a", "arrival_qps": 2000, "p99_latency_s": 0.080,
             "goodput_img_s": 1700.0},
        ]
    }

    # Sequence-serving report shape (BENCH_sequence.json): rows keyed on
    # (policy, arrival_seq_s); tokens/s are higher-better, TTFT quantiles
    # lower-better.
    seq_base = {
        "rows": [
            {"policy": "continuous", "arrival_seq_s": 600,
             "goodput_tok_s": 20000.0, "throughput_tok_s": 21000.0,
             "ttft_p50_s": 0.012, "ttft_p99_s": 0.052},
            {"policy": "static", "arrival_seq_s": 600,
             "goodput_tok_s": 850.0, "throughput_tok_s": 18000.0,
             "ttft_p50_s": 0.300, "ttft_p99_s": 0.560},
        ]
    }
    seq_bad = {
        "rows": [
            # goodput -40% and TTFT p50 +100%: both must trip a 10% gate.
            {"policy": "continuous", "arrival_seq_s": 600,
             "goodput_tok_s": 12000.0, "throughput_tok_s": 21000.0,
             "ttft_p50_s": 0.024, "ttft_p99_s": 0.052},
            {"policy": "static", "arrival_seq_s": 600,
             "goodput_tok_s": 850.0, "throughput_tok_s": 18000.0,
             "ttft_p50_s": 0.300, "ttft_p99_s": 0.560},
        ]
    }

    # Multi-tenancy report shape (BENCH_multitenancy.json): rows keyed
    # on (policy, hot_multiplier); the victims' p99 is lower-better and
    # the Jain fairness index is higher-better — a fair scheduler that
    # quietly starts starving victims must trip the gate.
    mt_base = {
        "rows": [
            {"policy": "wfq", "hot_multiplier": 10000,
             "goodput_req_s": 536.0, "victim_p99_s": 0.108,
             "fairness_index": 0.81},
            {"policy": "shared_fifo", "hot_multiplier": 10000,
             "goodput_req_s": 434.0, "victim_p99_s": 1.71,
             "fairness_index": 0.81},
        ]
    }
    mt_bad = {
        "rows": [
            # victim p99 +10x and fairness -30%: both must trip the gate.
            {"policy": "wfq", "hot_multiplier": 10000,
             "goodput_req_s": 536.0, "victim_p99_s": 1.2,
             "fairness_index": 0.55},
            {"policy": "shared_fifo", "hot_multiplier": 10000,
             "goodput_req_s": 434.0, "victim_p99_s": 1.71,
             "fairness_index": 0.81},
        ]
    }

    # Attention kernel report shape (BENCH_attention.json): rows keyed
    # on (shape, tokens/dim/heads); the fused-vs-naive speedup is
    # higher-better and the kernel scratch footprint lower-better.
    attn_base = {
        "rows": [
            {"shape": "vit_tiny", "batch": 4, "tokens": 257, "dim": 192,
             "heads": 3, "naive_ms": 14.2, "fused_ms": 7.9,
             "speedup": 1.80, "scratch_bytes": 206208},
            {"shape": "vit_base", "batch": 4, "tokens": 197, "dim": 768,
             "heads": 12, "naive_ms": 36.3, "fused_ms": 20.6,
             "speedup": 1.76, "scratch_bytes": 158464},
        ]
    }
    attn_bad = {
        "rows": [
            # speedup -28% and scratch +4x: both must trip a 10% gate.
            {"shape": "vit_tiny", "batch": 4, "tokens": 257, "dim": 192,
             "heads": 3, "naive_ms": 14.2, "fused_ms": 11.0,
             "speedup": 1.29, "scratch_bytes": 828000},
            {"shape": "vit_base", "batch": 4, "tokens": 197, "dim": 768,
             "heads": 12, "naive_ms": 36.3, "fused_ms": 20.6,
             "speedup": 1.76, "scratch_bytes": 158464},
        ]
    }

    # Continuum fleet report shape (BENCH_continuum.json): rows keyed on
    # (policy, users/farms/nodes); goodput is higher-better while the
    # uplink byte volume and energy per served image are lower-better —
    # a placement change that keeps goodput by burning radio and joules
    # must still trip the gate.
    cont_base = {
        "rows": [
            {"policy": "edge_first", "users": 1000000, "farms": 200,
             "nodes": 2000, "goodput_img_s": 27.3,
             "peak_goodput_img_s": 94.1, "p99_s": 130.5,
             "transmit_bytes": 5.86e12, "energy_per_image_j": 17.1},
            {"policy": "cloud_only", "users": 1000000, "farms": 200,
             "nodes": 2000, "goodput_img_s": 6.4,
             "peak_goodput_img_s": 21.8, "p99_s": 451.0,
             "transmit_bytes": 9.79e12, "energy_per_image_j": 63.1},
        ]
    }
    cont_bad = {
        "rows": [
            # peak goodput -25%, transmit +60%, J/img +75%: three trips.
            {"policy": "edge_first", "users": 1000000, "farms": 200,
             "nodes": 2000, "goodput_img_s": 27.0,
             "peak_goodput_img_s": 70.2, "p99_s": 131.0,
             "transmit_bytes": 9.4e12, "energy_per_image_j": 30.0},
            {"policy": "cloud_only", "users": 1000000, "farms": 200,
             "nodes": 2000, "goodput_img_s": 6.4,
             "peak_goodput_img_s": 21.8, "p99_s": 451.0,
             "transmit_bytes": 9.79e12, "energy_per_image_j": 63.1},
        ]
    }

    def rows(doc):
        return {row_identity(r): r for r in doc["rows"]}

    checks = []
    checks.append(("clean diff passes",
                   diff_reports(rows(base), rows(ok), 10.0, []) == []))
    failures = diff_reports(rows(base), rows(bad), 10.0, [])
    checks.append(("p99+goodput regressions caught", len(failures) == 2))
    checks.append(("explicit metric list filters",
                   len(diff_reports(rows(base), rows(bad), 10.0,
                                    ["p99_latency_s"])) == 1))
    checks.append(("generous threshold passes",
                   diff_reports(rows(base), rows(bad), 50.0, []) == []))
    checks.append(("sequence rows match on policy+arrival",
                   diff_reports(rows(seq_base), rows(seq_base), 10.0, [])
                   == []))
    seq_failures = diff_reports(rows(seq_base), rows(seq_bad), 10.0, [])
    checks.append(("tok_s goodput + ttft regressions caught",
                   len(seq_failures) == 2
                   and any("goodput_tok_s" in f for f in seq_failures)
                   and any("ttft_p50_s" in f for f in seq_failures)))
    checks.append(("tenant rows match on policy+hot_multiplier",
                   diff_reports(rows(mt_base), rows(mt_base), 10.0, []) == []))
    mt_failures = diff_reports(rows(mt_base), rows(mt_bad), 10.0, [])
    checks.append(("victim p99 + fairness regressions caught",
                   len(mt_failures) == 2
                   and any("victim_p99_s" in f for f in mt_failures)
                   and any("fairness_index" in f for f in mt_failures)))
    checks.append(("attention rows match on shape+geometry",
                   diff_reports(rows(attn_base), rows(attn_base), 10.0, [])
                   == []))
    attn_failures = diff_reports(rows(attn_base), rows(attn_bad), 10.0, [])
    checks.append(("speedup + scratch regressions caught",
                   len(attn_failures) == 2
                   and any("speedup" in f for f in attn_failures)
                   and any("scratch_bytes" in f for f in attn_failures)))
    checks.append(("continuum rows match on policy+fleet shape",
                   diff_reports(rows(cont_base), rows(cont_base), 10.0, [])
                   == []))
    cont_failures = diff_reports(rows(cont_base), rows(cont_bad), 10.0, [])
    checks.append(("peak goodput + transmit + energy regressions caught",
                   len(cont_failures) == 3
                   and any("peak_goodput_img_s" in f for f in cont_failures)
                   and any("transmit_bytes" in f for f in cont_failures)
                   and any("energy_per_image_j" in f for f in cont_failures)))

    failed = [name for name, passed in checks if not passed]
    for name, passed in checks:
        print(f"  {'ok' if passed else 'FAIL'}: {name}")
    if failed:
        print(f"self-test FAILED: {', '.join(failed)}")
        return 1
    print("self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?", type=Path)
    parser.add_argument("candidate", nargs="?", type=Path)
    parser.add_argument("--threshold-pct", type=float, default=10.0)
    parser.add_argument("--metrics", default="",
                        help="comma-separated metric keys (default: every "
                             "p99/latency/goodput-like numeric column)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        parser.error("baseline and candidate reports are required")

    metrics = [m for m in args.metrics.split(",") if m]
    failures = diff_reports(load_rows(args.baseline),
                            load_rows(args.candidate),
                            args.threshold_pct, metrics)
    if failures:
        print(f"REGRESSION ({len(failures)} metric(s) worse than "
              f"{args.threshold_pct:g}%):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
