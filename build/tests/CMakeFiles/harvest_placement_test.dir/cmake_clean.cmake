file(REMOVE_RECURSE
  "CMakeFiles/harvest_placement_test.dir/harvest_placement_test.cpp.o"
  "CMakeFiles/harvest_placement_test.dir/harvest_placement_test.cpp.o.d"
  "harvest_placement_test"
  "harvest_placement_test.pdb"
  "harvest_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
