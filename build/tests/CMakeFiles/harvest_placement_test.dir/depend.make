# Empty dependencies file for harvest_placement_test.
# This may be replaced when dependencies are built.
