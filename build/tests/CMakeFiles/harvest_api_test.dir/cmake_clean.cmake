file(REMOVE_RECURSE
  "CMakeFiles/harvest_api_test.dir/harvest_api_test.cpp.o"
  "CMakeFiles/harvest_api_test.dir/harvest_api_test.cpp.o.d"
  "harvest_api_test"
  "harvest_api_test.pdb"
  "harvest_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
