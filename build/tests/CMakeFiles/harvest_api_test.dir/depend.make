# Empty dependencies file for harvest_api_test.
# This may be replaced when dependencies are built.
