# Empty compiler generated dependencies file for serving_trace_test.
# This may be replaced when dependencies are built.
