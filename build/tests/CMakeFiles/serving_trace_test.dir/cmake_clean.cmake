file(REMOVE_RECURSE
  "CMakeFiles/serving_trace_test.dir/serving_trace_test.cpp.o"
  "CMakeFiles/serving_trace_test.dir/serving_trace_test.cpp.o.d"
  "serving_trace_test"
  "serving_trace_test.pdb"
  "serving_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
