file(REMOVE_RECURSE
  "CMakeFiles/harvest_predictor_test.dir/harvest_predictor_test.cpp.o"
  "CMakeFiles/harvest_predictor_test.dir/harvest_predictor_test.cpp.o.d"
  "harvest_predictor_test"
  "harvest_predictor_test.pdb"
  "harvest_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
