# Empty dependencies file for harvest_predictor_test.
# This may be replaced when dependencies are built.
