# Empty dependencies file for core_json_test.
# This may be replaced when dependencies are built.
