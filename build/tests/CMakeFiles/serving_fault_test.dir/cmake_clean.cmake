file(REMOVE_RECURSE
  "CMakeFiles/serving_fault_test.dir/serving_fault_test.cpp.o"
  "CMakeFiles/serving_fault_test.dir/serving_fault_test.cpp.o.d"
  "serving_fault_test"
  "serving_fault_test.pdb"
  "serving_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
