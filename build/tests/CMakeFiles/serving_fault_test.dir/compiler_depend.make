# Empty compiler generated dependencies file for serving_fault_test.
# This may be replaced when dependencies are built.
