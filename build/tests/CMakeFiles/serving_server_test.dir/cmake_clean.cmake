file(REMOVE_RECURSE
  "CMakeFiles/serving_server_test.dir/serving_server_test.cpp.o"
  "CMakeFiles/serving_server_test.dir/serving_server_test.cpp.o.d"
  "serving_server_test"
  "serving_server_test.pdb"
  "serving_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
