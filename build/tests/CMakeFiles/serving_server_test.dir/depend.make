# Empty dependencies file for serving_server_test.
# This may be replaced when dependencies are built.
