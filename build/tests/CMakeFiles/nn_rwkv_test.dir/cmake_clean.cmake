file(REMOVE_RECURSE
  "CMakeFiles/nn_rwkv_test.dir/nn_rwkv_test.cpp.o"
  "CMakeFiles/nn_rwkv_test.dir/nn_rwkv_test.cpp.o.d"
  "nn_rwkv_test"
  "nn_rwkv_test.pdb"
  "nn_rwkv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_rwkv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
