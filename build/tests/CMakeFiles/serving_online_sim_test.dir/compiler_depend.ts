# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for serving_online_sim_test.
