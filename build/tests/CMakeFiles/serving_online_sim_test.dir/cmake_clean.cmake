file(REMOVE_RECURSE
  "CMakeFiles/serving_online_sim_test.dir/serving_online_sim_test.cpp.o"
  "CMakeFiles/serving_online_sim_test.dir/serving_online_sim_test.cpp.o.d"
  "serving_online_sim_test"
  "serving_online_sim_test.pdb"
  "serving_online_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_online_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
