
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/serving_online_sim_test.cpp" "tests/CMakeFiles/serving_online_sim_test.dir/serving_online_sim_test.cpp.o" "gcc" "tests/CMakeFiles/serving_online_sim_test.dir/serving_online_sim_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harvest/CMakeFiles/harvest.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/harvest_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/stitch/CMakeFiles/harvest_stitch.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/harvest_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harvest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/preproc/CMakeFiles/harvest_preproc.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/harvest_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/harvest_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/harvest_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harvest_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
