# Empty compiler generated dependencies file for platform_energy_test.
# This may be replaced when dependencies are built.
