file(REMOVE_RECURSE
  "CMakeFiles/platform_energy_test.dir/platform_energy_test.cpp.o"
  "CMakeFiles/platform_energy_test.dir/platform_energy_test.cpp.o.d"
  "platform_energy_test"
  "platform_energy_test.pdb"
  "platform_energy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_energy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
