# Empty compiler generated dependencies file for serving_batcher_test.
# This may be replaced when dependencies are built.
