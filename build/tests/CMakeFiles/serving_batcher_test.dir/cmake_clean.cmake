file(REMOVE_RECURSE
  "CMakeFiles/serving_batcher_test.dir/serving_batcher_test.cpp.o"
  "CMakeFiles/serving_batcher_test.dir/serving_batcher_test.cpp.o.d"
  "serving_batcher_test"
  "serving_batcher_test.pdb"
  "serving_batcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_batcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
