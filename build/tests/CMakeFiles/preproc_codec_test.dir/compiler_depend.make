# Empty compiler generated dependencies file for preproc_codec_test.
# This may be replaced when dependencies are built.
