file(REMOVE_RECURSE
  "CMakeFiles/preproc_codec_test.dir/preproc_codec_test.cpp.o"
  "CMakeFiles/preproc_codec_test.dir/preproc_codec_test.cpp.o.d"
  "preproc_codec_test"
  "preproc_codec_test.pdb"
  "preproc_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preproc_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
