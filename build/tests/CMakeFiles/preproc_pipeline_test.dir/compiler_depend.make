# Empty compiler generated dependencies file for preproc_pipeline_test.
# This may be replaced when dependencies are built.
