file(REMOVE_RECURSE
  "CMakeFiles/preproc_pipeline_test.dir/preproc_pipeline_test.cpp.o"
  "CMakeFiles/preproc_pipeline_test.dir/preproc_pipeline_test.cpp.o.d"
  "preproc_pipeline_test"
  "preproc_pipeline_test.pdb"
  "preproc_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preproc_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
