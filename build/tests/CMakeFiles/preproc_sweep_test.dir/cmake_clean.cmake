file(REMOVE_RECURSE
  "CMakeFiles/preproc_sweep_test.dir/preproc_sweep_test.cpp.o"
  "CMakeFiles/preproc_sweep_test.dir/preproc_sweep_test.cpp.o.d"
  "preproc_sweep_test"
  "preproc_sweep_test.pdb"
  "preproc_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preproc_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
