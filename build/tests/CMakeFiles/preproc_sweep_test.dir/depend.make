# Empty dependencies file for preproc_sweep_test.
# This may be replaced when dependencies are built.
