file(REMOVE_RECURSE
  "CMakeFiles/codec_quality_test.dir/codec_quality_test.cpp.o"
  "CMakeFiles/codec_quality_test.dir/codec_quality_test.cpp.o.d"
  "codec_quality_test"
  "codec_quality_test.pdb"
  "codec_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
