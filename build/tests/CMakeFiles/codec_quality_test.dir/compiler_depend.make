# Empty compiler generated dependencies file for codec_quality_test.
# This may be replaced when dependencies are built.
