file(REMOVE_RECURSE
  "CMakeFiles/core_plot_test.dir/core_plot_test.cpp.o"
  "CMakeFiles/core_plot_test.dir/core_plot_test.cpp.o.d"
  "core_plot_test"
  "core_plot_test.pdb"
  "core_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
