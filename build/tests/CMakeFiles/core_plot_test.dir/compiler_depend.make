# Empty compiler generated dependencies file for core_plot_test.
# This may be replaced when dependencies are built.
