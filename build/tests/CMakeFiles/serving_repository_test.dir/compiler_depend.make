# Empty compiler generated dependencies file for serving_repository_test.
# This may be replaced when dependencies are built.
