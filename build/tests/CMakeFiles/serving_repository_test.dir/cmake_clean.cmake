file(REMOVE_RECURSE
  "CMakeFiles/serving_repository_test.dir/serving_repository_test.cpp.o"
  "CMakeFiles/serving_repository_test.dir/serving_repository_test.cpp.o.d"
  "serving_repository_test"
  "serving_repository_test.pdb"
  "serving_repository_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
