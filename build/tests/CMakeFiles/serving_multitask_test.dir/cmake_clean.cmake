file(REMOVE_RECURSE
  "CMakeFiles/serving_multitask_test.dir/serving_multitask_test.cpp.o"
  "CMakeFiles/serving_multitask_test.dir/serving_multitask_test.cpp.o.d"
  "serving_multitask_test"
  "serving_multitask_test.pdb"
  "serving_multitask_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_multitask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
