# Empty dependencies file for serving_multitask_test.
# This may be replaced when dependencies are built.
