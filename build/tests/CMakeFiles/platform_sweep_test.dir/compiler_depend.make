# Empty compiler generated dependencies file for platform_sweep_test.
# This may be replaced when dependencies are built.
