file(REMOVE_RECURSE
  "CMakeFiles/platform_sweep_test.dir/platform_sweep_test.cpp.o"
  "CMakeFiles/platform_sweep_test.dir/platform_sweep_test.cpp.o.d"
  "platform_sweep_test"
  "platform_sweep_test.pdb"
  "platform_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
