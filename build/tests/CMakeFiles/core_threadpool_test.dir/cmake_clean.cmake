file(REMOVE_RECURSE
  "CMakeFiles/core_threadpool_test.dir/core_threadpool_test.cpp.o"
  "CMakeFiles/core_threadpool_test.dir/core_threadpool_test.cpp.o.d"
  "core_threadpool_test"
  "core_threadpool_test.pdb"
  "core_threadpool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
