# Empty compiler generated dependencies file for core_threadpool_test.
# This may be replaced when dependencies are built.
