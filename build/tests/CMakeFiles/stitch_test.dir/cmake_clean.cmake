file(REMOVE_RECURSE
  "CMakeFiles/stitch_test.dir/stitch_test.cpp.o"
  "CMakeFiles/stitch_test.dir/stitch_test.cpp.o.d"
  "stitch_test"
  "stitch_test.pdb"
  "stitch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
