# Empty compiler generated dependencies file for stitch_test.
# This may be replaced when dependencies are built.
