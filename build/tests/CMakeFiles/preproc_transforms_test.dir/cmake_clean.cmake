file(REMOVE_RECURSE
  "CMakeFiles/preproc_transforms_test.dir/preproc_transforms_test.cpp.o"
  "CMakeFiles/preproc_transforms_test.dir/preproc_transforms_test.cpp.o.d"
  "preproc_transforms_test"
  "preproc_transforms_test.pdb"
  "preproc_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preproc_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
