# Empty dependencies file for preproc_transforms_test.
# This may be replaced when dependencies are built.
