# Empty compiler generated dependencies file for integration_offline_test.
# This may be replaced when dependencies are built.
