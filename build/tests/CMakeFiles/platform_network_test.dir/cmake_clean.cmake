file(REMOVE_RECURSE
  "CMakeFiles/platform_network_test.dir/platform_network_test.cpp.o"
  "CMakeFiles/platform_network_test.dir/platform_network_test.cpp.o.d"
  "platform_network_test"
  "platform_network_test.pdb"
  "platform_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
