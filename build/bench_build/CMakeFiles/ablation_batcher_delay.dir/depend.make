# Empty dependencies file for ablation_batcher_delay.
# This may be replaced when dependencies are built.
