file(REMOVE_RECURSE
  "../bench/ablation_batcher_delay"
  "../bench/ablation_batcher_delay.pdb"
  "CMakeFiles/ablation_batcher_delay.dir/ablation_batcher_delay.cpp.o"
  "CMakeFiles/ablation_batcher_delay.dir/ablation_batcher_delay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batcher_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
