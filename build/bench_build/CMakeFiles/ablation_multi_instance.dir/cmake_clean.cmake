file(REMOVE_RECURSE
  "../bench/ablation_multi_instance"
  "../bench/ablation_multi_instance.pdb"
  "CMakeFiles/ablation_multi_instance.dir/ablation_multi_instance.cpp.o"
  "CMakeFiles/ablation_multi_instance.dir/ablation_multi_instance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
