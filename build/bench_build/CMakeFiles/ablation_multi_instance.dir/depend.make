# Empty dependencies file for ablation_multi_instance.
# This may be replaced when dependencies are built.
