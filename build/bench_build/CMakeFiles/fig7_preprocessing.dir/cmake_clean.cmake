file(REMOVE_RECURSE
  "../bench/fig7_preprocessing"
  "../bench/fig7_preprocessing.pdb"
  "CMakeFiles/fig7_preprocessing.dir/fig7_preprocessing.cpp.o"
  "CMakeFiles/fig7_preprocessing.dir/fig7_preprocessing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
