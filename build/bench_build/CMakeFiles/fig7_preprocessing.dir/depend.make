# Empty dependencies file for fig7_preprocessing.
# This may be replaced when dependencies are built.
