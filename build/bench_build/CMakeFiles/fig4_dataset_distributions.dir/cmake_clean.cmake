file(REMOVE_RECURSE
  "../bench/fig4_dataset_distributions"
  "../bench/fig4_dataset_distributions.pdb"
  "CMakeFiles/fig4_dataset_distributions.dir/fig4_dataset_distributions.cpp.o"
  "CMakeFiles/fig4_dataset_distributions.dir/fig4_dataset_distributions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dataset_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
