# Empty dependencies file for ablation_burstiness.
# This may be replaced when dependencies are built.
