# Empty compiler generated dependencies file for table3_model_specs.
# This may be replaced when dependencies are built.
