file(REMOVE_RECURSE
  "../bench/table3_model_specs"
  "../bench/table3_model_specs.pdb"
  "CMakeFiles/table3_model_specs.dir/table3_model_specs.cpp.o"
  "CMakeFiles/table3_model_specs.dir/table3_model_specs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_model_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
