file(REMOVE_RECURSE
  "../bench/fig8_end_to_end"
  "../bench/fig8_end_to_end.pdb"
  "CMakeFiles/fig8_end_to_end.dir/fig8_end_to_end.cpp.o"
  "CMakeFiles/fig8_end_to_end.dir/fig8_end_to_end.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
