file(REMOVE_RECURSE
  "../bench/fig6_latency_threshold"
  "../bench/fig6_latency_threshold.pdb"
  "CMakeFiles/fig6_latency_threshold.dir/fig6_latency_threshold.cpp.o"
  "CMakeFiles/fig6_latency_threshold.dir/fig6_latency_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_latency_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
