# Empty dependencies file for fig6_latency_threshold.
# This may be replaced when dependencies are built.
