# Empty dependencies file for ablation_sequence_scaling.
# This may be replaced when dependencies are built.
