file(REMOVE_RECURSE
  "../bench/ablation_sequence_scaling"
  "../bench/ablation_sequence_scaling.pdb"
  "CMakeFiles/ablation_sequence_scaling.dir/ablation_sequence_scaling.cpp.o"
  "CMakeFiles/ablation_sequence_scaling.dir/ablation_sequence_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sequence_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
