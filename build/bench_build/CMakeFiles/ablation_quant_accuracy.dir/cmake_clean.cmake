file(REMOVE_RECURSE
  "../bench/ablation_quant_accuracy"
  "../bench/ablation_quant_accuracy.pdb"
  "CMakeFiles/ablation_quant_accuracy.dir/ablation_quant_accuracy.cpp.o"
  "CMakeFiles/ablation_quant_accuracy.dir/ablation_quant_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quant_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
