# Empty compiler generated dependencies file for ablation_quant_accuracy.
# This may be replaced when dependencies are built.
