file(REMOVE_RECURSE
  "../bench/table1_platform_flops"
  "../bench/table1_platform_flops.pdb"
  "CMakeFiles/table1_platform_flops.dir/table1_platform_flops.cpp.o"
  "CMakeFiles/table1_platform_flops.dir/table1_platform_flops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_platform_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
