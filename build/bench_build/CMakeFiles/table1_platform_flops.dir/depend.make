# Empty dependencies file for table1_platform_flops.
# This may be replaced when dependencies are built.
