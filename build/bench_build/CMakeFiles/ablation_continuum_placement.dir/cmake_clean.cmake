file(REMOVE_RECURSE
  "../bench/ablation_continuum_placement"
  "../bench/ablation_continuum_placement.pdb"
  "CMakeFiles/ablation_continuum_placement.dir/ablation_continuum_placement.cpp.o"
  "CMakeFiles/ablation_continuum_placement.dir/ablation_continuum_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_continuum_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
