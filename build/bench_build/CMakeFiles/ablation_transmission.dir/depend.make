# Empty dependencies file for ablation_transmission.
# This may be replaced when dependencies are built.
