file(REMOVE_RECURSE
  "../bench/ablation_transmission"
  "../bench/ablation_transmission.pdb"
  "CMakeFiles/ablation_transmission.dir/ablation_transmission.cpp.o"
  "CMakeFiles/ablation_transmission.dir/ablation_transmission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
