# Empty dependencies file for offline_drone_survey.
# This may be replaced when dependencies are built.
