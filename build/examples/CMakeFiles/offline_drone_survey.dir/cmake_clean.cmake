file(REMOVE_RECURSE
  "CMakeFiles/offline_drone_survey.dir/offline_drone_survey.cpp.o"
  "CMakeFiles/offline_drone_survey.dir/offline_drone_survey.cpp.o.d"
  "offline_drone_survey"
  "offline_drone_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_drone_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
