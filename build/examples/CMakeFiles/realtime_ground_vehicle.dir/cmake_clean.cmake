file(REMOVE_RECURSE
  "CMakeFiles/realtime_ground_vehicle.dir/realtime_ground_vehicle.cpp.o"
  "CMakeFiles/realtime_ground_vehicle.dir/realtime_ground_vehicle.cpp.o.d"
  "realtime_ground_vehicle"
  "realtime_ground_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_ground_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
