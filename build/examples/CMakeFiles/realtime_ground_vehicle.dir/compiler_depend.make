# Empty compiler generated dependencies file for realtime_ground_vehicle.
# This may be replaced when dependencies are built.
