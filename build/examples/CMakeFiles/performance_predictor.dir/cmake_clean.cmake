file(REMOVE_RECURSE
  "CMakeFiles/performance_predictor.dir/performance_predictor.cpp.o"
  "CMakeFiles/performance_predictor.dir/performance_predictor.cpp.o.d"
  "performance_predictor"
  "performance_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/performance_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
