# Empty compiler generated dependencies file for performance_predictor.
# This may be replaced when dependencies are built.
