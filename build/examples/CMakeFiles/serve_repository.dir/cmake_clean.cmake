file(REMOVE_RECURSE
  "CMakeFiles/serve_repository.dir/serve_repository.cpp.o"
  "CMakeFiles/serve_repository.dir/serve_repository.cpp.o.d"
  "serve_repository"
  "serve_repository.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_repository.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
