# Empty dependencies file for serve_repository.
# This may be replaced when dependencies are built.
