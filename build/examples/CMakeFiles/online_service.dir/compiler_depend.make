# Empty compiler generated dependencies file for online_service.
# This may be replaced when dependencies are built.
