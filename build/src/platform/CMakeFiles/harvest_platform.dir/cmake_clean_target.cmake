file(REMOVE_RECURSE
  "libharvest_platform.a"
)
