file(REMOVE_RECURSE
  "CMakeFiles/harvest_platform.dir/calibration.cpp.o"
  "CMakeFiles/harvest_platform.dir/calibration.cpp.o.d"
  "CMakeFiles/harvest_platform.dir/device.cpp.o"
  "CMakeFiles/harvest_platform.dir/device.cpp.o.d"
  "CMakeFiles/harvest_platform.dir/gemm_bench.cpp.o"
  "CMakeFiles/harvest_platform.dir/gemm_bench.cpp.o.d"
  "CMakeFiles/harvest_platform.dir/memory.cpp.o"
  "CMakeFiles/harvest_platform.dir/memory.cpp.o.d"
  "CMakeFiles/harvest_platform.dir/network.cpp.o"
  "CMakeFiles/harvest_platform.dir/network.cpp.o.d"
  "CMakeFiles/harvest_platform.dir/perf_model.cpp.o"
  "CMakeFiles/harvest_platform.dir/perf_model.cpp.o.d"
  "libharvest_platform.a"
  "libharvest_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
