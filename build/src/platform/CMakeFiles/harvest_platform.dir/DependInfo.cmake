
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/calibration.cpp" "src/platform/CMakeFiles/harvest_platform.dir/calibration.cpp.o" "gcc" "src/platform/CMakeFiles/harvest_platform.dir/calibration.cpp.o.d"
  "/root/repo/src/platform/device.cpp" "src/platform/CMakeFiles/harvest_platform.dir/device.cpp.o" "gcc" "src/platform/CMakeFiles/harvest_platform.dir/device.cpp.o.d"
  "/root/repo/src/platform/gemm_bench.cpp" "src/platform/CMakeFiles/harvest_platform.dir/gemm_bench.cpp.o" "gcc" "src/platform/CMakeFiles/harvest_platform.dir/gemm_bench.cpp.o.d"
  "/root/repo/src/platform/memory.cpp" "src/platform/CMakeFiles/harvest_platform.dir/memory.cpp.o" "gcc" "src/platform/CMakeFiles/harvest_platform.dir/memory.cpp.o.d"
  "/root/repo/src/platform/network.cpp" "src/platform/CMakeFiles/harvest_platform.dir/network.cpp.o" "gcc" "src/platform/CMakeFiles/harvest_platform.dir/network.cpp.o.d"
  "/root/repo/src/platform/perf_model.cpp" "src/platform/CMakeFiles/harvest_platform.dir/perf_model.cpp.o" "gcc" "src/platform/CMakeFiles/harvest_platform.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/harvest_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harvest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/harvest_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
