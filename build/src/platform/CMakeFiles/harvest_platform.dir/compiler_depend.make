# Empty compiler generated dependencies file for harvest_platform.
# This may be replaced when dependencies are built.
