file(REMOVE_RECURSE
  "CMakeFiles/harvest_nn.dir/activations.cpp.o"
  "CMakeFiles/harvest_nn.dir/activations.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/attention.cpp.o"
  "CMakeFiles/harvest_nn.dir/attention.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/conv.cpp.o"
  "CMakeFiles/harvest_nn.dir/conv.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/flops.cpp.o"
  "CMakeFiles/harvest_nn.dir/flops.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/gemm.cpp.o"
  "CMakeFiles/harvest_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/graph.cpp.o"
  "CMakeFiles/harvest_nn.dir/graph.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/init.cpp.o"
  "CMakeFiles/harvest_nn.dir/init.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/layers.cpp.o"
  "CMakeFiles/harvest_nn.dir/layers.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/models.cpp.o"
  "CMakeFiles/harvest_nn.dir/models.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/norm.cpp.o"
  "CMakeFiles/harvest_nn.dir/norm.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/quant.cpp.o"
  "CMakeFiles/harvest_nn.dir/quant.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/rwkv.cpp.o"
  "CMakeFiles/harvest_nn.dir/rwkv.cpp.o.d"
  "CMakeFiles/harvest_nn.dir/serialize.cpp.o"
  "CMakeFiles/harvest_nn.dir/serialize.cpp.o.d"
  "libharvest_nn.a"
  "libharvest_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
