file(REMOVE_RECURSE
  "libharvest_nn.a"
)
