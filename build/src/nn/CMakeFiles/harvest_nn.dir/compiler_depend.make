# Empty compiler generated dependencies file for harvest_nn.
# This may be replaced when dependencies are built.
