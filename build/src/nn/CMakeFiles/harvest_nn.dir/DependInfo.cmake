
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/harvest_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/harvest_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/harvest_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/flops.cpp" "src/nn/CMakeFiles/harvest_nn.dir/flops.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/flops.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/harvest_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/graph.cpp" "src/nn/CMakeFiles/harvest_nn.dir/graph.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/graph.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/harvest_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/harvest_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/harvest_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/nn/CMakeFiles/harvest_nn.dir/norm.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/norm.cpp.o.d"
  "/root/repo/src/nn/quant.cpp" "src/nn/CMakeFiles/harvest_nn.dir/quant.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/quant.cpp.o.d"
  "/root/repo/src/nn/rwkv.cpp" "src/nn/CMakeFiles/harvest_nn.dir/rwkv.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/rwkv.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/harvest_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/harvest_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/harvest_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harvest_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
