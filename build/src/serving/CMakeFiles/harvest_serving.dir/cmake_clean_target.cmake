file(REMOVE_RECURSE
  "libharvest_serving.a"
)
