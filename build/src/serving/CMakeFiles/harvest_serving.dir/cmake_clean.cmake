file(REMOVE_RECURSE
  "CMakeFiles/harvest_serving.dir/batcher.cpp.o"
  "CMakeFiles/harvest_serving.dir/batcher.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/metrics.cpp.o"
  "CMakeFiles/harvest_serving.dir/metrics.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/model_instance.cpp.o"
  "CMakeFiles/harvest_serving.dir/model_instance.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/multitask.cpp.o"
  "CMakeFiles/harvest_serving.dir/multitask.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/native_backend.cpp.o"
  "CMakeFiles/harvest_serving.dir/native_backend.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/online_sim.cpp.o"
  "CMakeFiles/harvest_serving.dir/online_sim.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/repository.cpp.o"
  "CMakeFiles/harvest_serving.dir/repository.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/scenarios.cpp.o"
  "CMakeFiles/harvest_serving.dir/scenarios.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/server.cpp.o"
  "CMakeFiles/harvest_serving.dir/server.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/sim_backend.cpp.o"
  "CMakeFiles/harvest_serving.dir/sim_backend.cpp.o.d"
  "CMakeFiles/harvest_serving.dir/trace.cpp.o"
  "CMakeFiles/harvest_serving.dir/trace.cpp.o.d"
  "libharvest_serving.a"
  "libharvest_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
