# Empty compiler generated dependencies file for harvest_serving.
# This may be replaced when dependencies are built.
