
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/batcher.cpp" "src/serving/CMakeFiles/harvest_serving.dir/batcher.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/batcher.cpp.o.d"
  "/root/repo/src/serving/metrics.cpp" "src/serving/CMakeFiles/harvest_serving.dir/metrics.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/metrics.cpp.o.d"
  "/root/repo/src/serving/model_instance.cpp" "src/serving/CMakeFiles/harvest_serving.dir/model_instance.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/model_instance.cpp.o.d"
  "/root/repo/src/serving/multitask.cpp" "src/serving/CMakeFiles/harvest_serving.dir/multitask.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/multitask.cpp.o.d"
  "/root/repo/src/serving/native_backend.cpp" "src/serving/CMakeFiles/harvest_serving.dir/native_backend.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/native_backend.cpp.o.d"
  "/root/repo/src/serving/online_sim.cpp" "src/serving/CMakeFiles/harvest_serving.dir/online_sim.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/online_sim.cpp.o.d"
  "/root/repo/src/serving/repository.cpp" "src/serving/CMakeFiles/harvest_serving.dir/repository.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/repository.cpp.o.d"
  "/root/repo/src/serving/scenarios.cpp" "src/serving/CMakeFiles/harvest_serving.dir/scenarios.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/scenarios.cpp.o.d"
  "/root/repo/src/serving/server.cpp" "src/serving/CMakeFiles/harvest_serving.dir/server.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/server.cpp.o.d"
  "/root/repo/src/serving/sim_backend.cpp" "src/serving/CMakeFiles/harvest_serving.dir/sim_backend.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/sim_backend.cpp.o.d"
  "/root/repo/src/serving/trace.cpp" "src/serving/CMakeFiles/harvest_serving.dir/trace.cpp.o" "gcc" "src/serving/CMakeFiles/harvest_serving.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/harvest_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/preproc/CMakeFiles/harvest_preproc.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/harvest_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/harvest_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harvest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harvest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/harvest_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
