
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preproc/codec.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/codec.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/codec.cpp.o.d"
  "/root/repo/src/preproc/codec_agjpeg.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_agjpeg.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_agjpeg.cpp.o.d"
  "/root/repo/src/preproc/codec_bmp.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_bmp.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_bmp.cpp.o.d"
  "/root/repo/src/preproc/codec_lzw.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_lzw.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_lzw.cpp.o.d"
  "/root/repo/src/preproc/codec_ppm.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_ppm.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/codec_ppm.cpp.o.d"
  "/root/repo/src/preproc/cost_model.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/cost_model.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/cost_model.cpp.o.d"
  "/root/repo/src/preproc/image.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/image.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/image.cpp.o.d"
  "/root/repo/src/preproc/pipeline.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/pipeline.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/pipeline.cpp.o.d"
  "/root/repo/src/preproc/transforms.cpp" "src/preproc/CMakeFiles/harvest_preproc.dir/transforms.cpp.o" "gcc" "src/preproc/CMakeFiles/harvest_preproc.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/harvest_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/harvest_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harvest_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/harvest_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
