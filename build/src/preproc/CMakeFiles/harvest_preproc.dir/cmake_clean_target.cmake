file(REMOVE_RECURSE
  "libharvest_preproc.a"
)
