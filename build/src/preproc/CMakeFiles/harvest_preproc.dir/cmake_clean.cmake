file(REMOVE_RECURSE
  "CMakeFiles/harvest_preproc.dir/codec.cpp.o"
  "CMakeFiles/harvest_preproc.dir/codec.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/codec_agjpeg.cpp.o"
  "CMakeFiles/harvest_preproc.dir/codec_agjpeg.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/codec_bmp.cpp.o"
  "CMakeFiles/harvest_preproc.dir/codec_bmp.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/codec_lzw.cpp.o"
  "CMakeFiles/harvest_preproc.dir/codec_lzw.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/codec_ppm.cpp.o"
  "CMakeFiles/harvest_preproc.dir/codec_ppm.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/cost_model.cpp.o"
  "CMakeFiles/harvest_preproc.dir/cost_model.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/image.cpp.o"
  "CMakeFiles/harvest_preproc.dir/image.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/pipeline.cpp.o"
  "CMakeFiles/harvest_preproc.dir/pipeline.cpp.o.d"
  "CMakeFiles/harvest_preproc.dir/transforms.cpp.o"
  "CMakeFiles/harvest_preproc.dir/transforms.cpp.o.d"
  "libharvest_preproc.a"
  "libharvest_preproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_preproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
