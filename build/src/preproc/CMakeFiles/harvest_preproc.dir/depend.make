# Empty dependencies file for harvest_preproc.
# This may be replaced when dependencies are built.
