# Empty compiler generated dependencies file for harvest.
# This may be replaced when dependencies are built.
