file(REMOVE_RECURSE
  "libharvest.a"
)
