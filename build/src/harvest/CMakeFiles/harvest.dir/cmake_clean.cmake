file(REMOVE_RECURSE
  "CMakeFiles/harvest.dir/advisor.cpp.o"
  "CMakeFiles/harvest.dir/advisor.cpp.o.d"
  "CMakeFiles/harvest.dir/e2e.cpp.o"
  "CMakeFiles/harvest.dir/e2e.cpp.o.d"
  "CMakeFiles/harvest.dir/placement.cpp.o"
  "CMakeFiles/harvest.dir/placement.cpp.o.d"
  "CMakeFiles/harvest.dir/predictor.cpp.o"
  "CMakeFiles/harvest.dir/predictor.cpp.o.d"
  "CMakeFiles/harvest.dir/report.cpp.o"
  "CMakeFiles/harvest.dir/report.cpp.o.d"
  "libharvest.a"
  "libharvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
