# Empty dependencies file for harvest_data.
# This may be replaced when dependencies are built.
