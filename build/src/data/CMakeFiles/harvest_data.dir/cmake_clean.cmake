file(REMOVE_RECURSE
  "CMakeFiles/harvest_data.dir/datasets.cpp.o"
  "CMakeFiles/harvest_data.dir/datasets.cpp.o.d"
  "CMakeFiles/harvest_data.dir/directory.cpp.o"
  "CMakeFiles/harvest_data.dir/directory.cpp.o.d"
  "CMakeFiles/harvest_data.dir/loader.cpp.o"
  "CMakeFiles/harvest_data.dir/loader.cpp.o.d"
  "CMakeFiles/harvest_data.dir/synthetic.cpp.o"
  "CMakeFiles/harvest_data.dir/synthetic.cpp.o.d"
  "libharvest_data.a"
  "libharvest_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
