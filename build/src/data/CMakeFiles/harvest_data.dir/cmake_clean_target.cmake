file(REMOVE_RECURSE
  "libharvest_data.a"
)
