file(REMOVE_RECURSE
  "libharvest_tensor.a"
)
