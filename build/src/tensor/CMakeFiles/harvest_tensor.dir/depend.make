# Empty dependencies file for harvest_tensor.
# This may be replaced when dependencies are built.
