file(REMOVE_RECURSE
  "CMakeFiles/harvest_tensor.dir/buffer.cpp.o"
  "CMakeFiles/harvest_tensor.dir/buffer.cpp.o.d"
  "CMakeFiles/harvest_tensor.dir/ops.cpp.o"
  "CMakeFiles/harvest_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/harvest_tensor.dir/shape.cpp.o"
  "CMakeFiles/harvest_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/harvest_tensor.dir/tensor.cpp.o"
  "CMakeFiles/harvest_tensor.dir/tensor.cpp.o.d"
  "libharvest_tensor.a"
  "libharvest_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
