# Empty compiler generated dependencies file for harvest_stitch.
# This may be replaced when dependencies are built.
