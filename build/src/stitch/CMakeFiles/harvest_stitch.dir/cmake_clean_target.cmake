file(REMOVE_RECURSE
  "libharvest_stitch.a"
)
