file(REMOVE_RECURSE
  "CMakeFiles/harvest_stitch.dir/stitch.cpp.o"
  "CMakeFiles/harvest_stitch.dir/stitch.cpp.o.d"
  "libharvest_stitch.a"
  "libharvest_stitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_stitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
