file(REMOVE_RECURSE
  "CMakeFiles/harvest_core.dir/cli.cpp.o"
  "CMakeFiles/harvest_core.dir/cli.cpp.o.d"
  "CMakeFiles/harvest_core.dir/csv.cpp.o"
  "CMakeFiles/harvest_core.dir/csv.cpp.o.d"
  "CMakeFiles/harvest_core.dir/json.cpp.o"
  "CMakeFiles/harvest_core.dir/json.cpp.o.d"
  "CMakeFiles/harvest_core.dir/log.cpp.o"
  "CMakeFiles/harvest_core.dir/log.cpp.o.d"
  "CMakeFiles/harvest_core.dir/plot.cpp.o"
  "CMakeFiles/harvest_core.dir/plot.cpp.o.d"
  "CMakeFiles/harvest_core.dir/stats.cpp.o"
  "CMakeFiles/harvest_core.dir/stats.cpp.o.d"
  "CMakeFiles/harvest_core.dir/status.cpp.o"
  "CMakeFiles/harvest_core.dir/status.cpp.o.d"
  "CMakeFiles/harvest_core.dir/table.cpp.o"
  "CMakeFiles/harvest_core.dir/table.cpp.o.d"
  "CMakeFiles/harvest_core.dir/thread_pool.cpp.o"
  "CMakeFiles/harvest_core.dir/thread_pool.cpp.o.d"
  "CMakeFiles/harvest_core.dir/units.cpp.o"
  "CMakeFiles/harvest_core.dir/units.cpp.o.d"
  "libharvest_core.a"
  "libharvest_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harvest_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
