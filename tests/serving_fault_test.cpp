/// Failure-injection tests: the serving runtime must isolate backend
/// faults (a failing batch must not take down the deployment, leak
/// promises, or corrupt neighbouring requests).

#include <gtest/gtest.h>

#include <atomic>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "serving/native_backend.hpp"
#include "serving/server.hpp"

namespace harvest::serving {
namespace {

preproc::EncodedImage tiny_input(std::uint64_t seed) {
  const preproc::Image img = preproc::synthesize_field_image(20, 20, seed);
  return preproc::encode_image(img, preproc::ImageFormat::kAgJpeg);
}

/// A backend that fails every `period`-th infer() call.
class FlakyBackend final : public Backend {
 public:
  FlakyBackend(BackendPtr inner, int period)
      : inner_(std::move(inner)), period_(period) {}

  const std::string& name() const override { return inner_->name(); }
  std::int64_t max_batch() const override { return inner_->max_batch(); }
  std::int64_t num_classes() const override { return inner_->num_classes(); }
  std::int64_t input_size() const override { return inner_->input_size(); }

  core::Result<BackendResult> infer(const tensor::Tensor& batch) override {
    const int call = calls_.fetch_add(1) + 1;
    if (call % period_ == 0) {
      return core::Status::internal("injected fault on call " +
                                    std::to_string(call));
    }
    return inner_->infer(batch);
  }

 private:
  BackendPtr inner_;
  int period_;
  std::atomic<int> calls_{0};
};

/// A backend that always reports device OOM.
class OomBackend final : public Backend {
 public:
  const std::string& name() const override { return name_; }
  std::int64_t max_batch() const override { return 8; }
  std::int64_t num_classes() const override { return 4; }
  std::int64_t input_size() const override { return 16; }
  core::Result<BackendResult> infer(const tensor::Tensor&) override {
    return core::Status::out_of_memory("device memory exhausted");
  }

 private:
  std::string name_ = "oom";
};

BackendPtr tiny_native() {
  nn::ViTConfig config{"flaky-vit", 16, 4, 16, 1, 2, 2, 4};
  nn::ModelPtr model = nn::build_vit(config);
  nn::init_weights(*model, 3);
  return std::make_unique<NativeBackend>(std::move(model), 8);
}

ModelDeploymentConfig deployment(const std::string& name) {
  ModelDeploymentConfig config;
  config.name = name;
  config.max_batch = 2;
  config.max_queue_delay_s = 1e-3;
  config.preproc.output_size = 16;
  return config;
}

TEST(FaultInjection, FlakyBackendFailsOnlyItsOwnBatches) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(deployment("flaky"),
                                  [] {
                                    return std::make_unique<FlakyBackend>(
                                        tiny_native(), /*period=*/3);
                                  })
                  .is_ok());
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 30; ++i) {
    InferenceRequest request;
    request.model = "flaky";
    request.input = tiny_input(static_cast<std::uint64_t>(i));
    const InferenceResponse response = server.infer_sync(std::move(request));
    if (response.status.is_ok()) {
      ++ok;
      EXPECT_GE(response.predicted_class, 0);
    } else {
      ++failed;
      EXPECT_EQ(response.status.code(), core::StatusCode::kInternal);
    }
  }
  // Every request was answered (no hangs, no leaks)...
  EXPECT_EQ(ok + failed, 30);
  // ...and the server survived to keep serving successes.
  EXPECT_GT(ok, 10);
  EXPECT_GT(failed, 0);
  const MetricsSnapshot snap = server.metrics("flaky")->snapshot(1.0);
  EXPECT_EQ(snap.completed + snap.failed, 30u);
}

TEST(FaultInjection, OomBackendSurfacesStatusToEveryCaller) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(deployment("oom"),
                                  [] { return std::make_unique<OomBackend>(); })
                  .is_ok());
  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    InferenceRequest request;
    request.model = "oom";
    request.input = tiny_input(static_cast<std::uint64_t>(i));
    auto submitted = server.submit(std::move(request));
    ASSERT_TRUE(submitted.is_ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    const InferenceResponse response = future.get();
    EXPECT_EQ(response.status.code(), core::StatusCode::kOutOfMemory);
  }
}

TEST(FaultInjection, HealthyDeploymentUnaffectedByFlakyNeighbour) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(deployment("flaky"),
                                  [] {
                                    return std::make_unique<FlakyBackend>(
                                        tiny_native(), /*period=*/1);  // always fails
                                  })
                  .is_ok());
  ASSERT_TRUE(server.register_model(deployment("healthy"),
                                    [] { return tiny_native(); })
                  .is_ok());
  for (int i = 0; i < 10; ++i) {
    InferenceRequest bad;
    bad.model = "flaky";
    bad.input = tiny_input(1);
    EXPECT_FALSE(server.infer_sync(std::move(bad)).status.is_ok());
    InferenceRequest good;
    good.model = "healthy";
    good.input = tiny_input(2);
    EXPECT_TRUE(server.infer_sync(std::move(good)).status.is_ok());
  }
}

TEST(FaultInjection, ExpiredDeadlineDroppedBeforeExecution) {
  // Regression for the real-time hygiene branch: a request whose
  // deadline expired while queueing is answered immediately — no
  // preprocessing or inference is spent on it — and lands in the
  // deadline-miss outcome, not the completed count.
  Server server(1);
  ModelDeploymentConfig config = deployment("expiry");
  config.max_queue_delay_s = 0.05;  // the lone request waits a full flush
  ASSERT_TRUE(
      server.register_model(config, [] { return tiny_native(); }).is_ok());
  InferenceRequest request;
  request.model = "expiry";
  request.input = tiny_input(1);
  request.deadline_s = 1e-4;  // expires long before the 50 ms flush
  const InferenceResponse response = server.infer_sync(std::move(request));
  EXPECT_EQ(response.status.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_NE(response.status.message().find("dropped"), std::string::npos);
  EXPECT_TRUE(response.logits.empty());  // inference never ran
  const MetricsSnapshot snap = server.metrics("expiry")->snapshot(1.0);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.deadline_misses, 1u);
  EXPECT_EQ(snap.outcomes[static_cast<std::size_t>(
                RequestOutcome::kDeadlineMissed)],
            1u);
}

}  // namespace
}  // namespace harvest::serving
