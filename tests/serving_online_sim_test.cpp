#include "serving/online_sim.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "platform/device.hpp"

namespace harvest::serving {
namespace {

OnlineSimConfig base_config() {
  OnlineSimConfig config;
  config.arrival_rate_qps = 200.0;
  config.duration_s = 5.0;
  config.max_batch = 32;
  config.max_queue_delay_s = 2e-3;
  config.instances = 1;
  config.seed = 42;
  return config;
}

const data::DatasetSpec& plant_village() {
  static const data::DatasetSpec spec = *data::find_dataset("Plant Village");
  return spec;
}

TEST(OnlineSim, UnderloadCompletesEveryArrival) {
  // 200 qps of ViT_Tiny on an A100 is a trickle; nothing may be lost.
  const OnlineSimReport report = simulate_online(
      platform::a100(), "ViT_Tiny", plant_village(), base_config());
  EXPECT_GT(report.arrivals, 500);
  EXPECT_EQ(report.completed, report.arrivals);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_GT(report.throughput_img_per_s, 150.0);
  EXPECT_LT(report.instance_utilization, 0.6);
}

TEST(OnlineSim, LatencyAboveServiceFloor) {
  const OnlineSimReport report = simulate_online(
      platform::a100(), "ViT_Base", plant_village(), base_config());
  // Every request waits at least the batcher delay or rides a batch
  // whose service time is positive.
  EXPECT_GT(report.mean_latency_s, 0.0);
  EXPECT_GE(report.p99_latency_s, report.p95_latency_s);
  EXPECT_GE(report.p95_latency_s, report.p50_latency_s);
}

TEST(OnlineSim, DeterministicForSameSeed) {
  const OnlineSimReport a = simulate_online(platform::v100(), "ResNet50",
                                            plant_village(), base_config());
  const OnlineSimReport b = simulate_online(platform::v100(), "ResNet50",
                                            plant_village(), base_config());
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
}

TEST(OnlineSim, HigherLoadFormsBiggerBatches) {
  OnlineSimConfig low = base_config();
  low.arrival_rate_qps = 100.0;
  OnlineSimConfig high = base_config();
  high.arrival_rate_qps = 5000.0;
  const OnlineSimReport rl =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), low);
  const OnlineSimReport rh =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), high);
  EXPECT_GT(rh.mean_batch_size, rl.mean_batch_size);
}

TEST(OnlineSim, LongerBatcherDelayRaisesLatencyUnderLightLoad) {
  OnlineSimConfig fast = base_config();
  fast.arrival_rate_qps = 50.0;
  fast.max_queue_delay_s = 1e-3;
  OnlineSimConfig slow = fast;
  slow.max_queue_delay_s = 50e-3;
  const OnlineSimReport rf =
      simulate_online(platform::a100(), "ViT_Tiny", plant_village(), fast);
  const OnlineSimReport rs =
      simulate_online(platform::a100(), "ViT_Tiny", plant_village(), slow);
  EXPECT_GT(rs.mean_latency_s, rf.mean_latency_s);
}

TEST(OnlineSim, SecondInstanceHelpsUnderHeavyLoad) {
  OnlineSimConfig heavy = base_config();
  heavy.arrival_rate_qps = 4000.0;
  heavy.duration_s = 3.0;
  OnlineSimConfig two = heavy;
  two.instances = 2;
  // Jetson serving ViT_Small is overloaded at 4000 qps.
  const OnlineSimReport one_report = simulate_online(
      platform::jetson_orin_nano(), "ViT_Small", plant_village(), heavy);
  const OnlineSimReport two_report = simulate_online(
      platform::jetson_orin_nano(), "ViT_Small", plant_village(), two);
  EXPECT_GT(two_report.throughput_img_per_s,
            one_report.throughput_img_per_s * 1.3);
}

TEST(OnlineSim, OverloadSaturatesAtServiceCapacity) {
  OnlineSimConfig overload = base_config();
  overload.arrival_rate_qps = 50000.0;
  overload.duration_s = 2.0;
  const OnlineSimReport report = simulate_online(
      platform::jetson_orin_nano(), "ViT_Base", plant_village(), overload);
  // Cannot complete more than the engine's ceiling (Table 3: 676 img/s).
  EXPECT_LT(report.throughput_img_per_s, 700.0);
  EXPECT_GT(report.instance_utilization, 0.9);
  EXPECT_LT(report.completed, report.arrivals);
}

TEST(OnlineSim, OverlapImprovesThroughputUnderLoad) {
  OnlineSimConfig overlapped = base_config();
  overlapped.arrival_rate_qps = 20000.0;
  overlapped.duration_s = 2.0;
  overlapped.preproc_method = preproc::PreprocMethod::kDali224;
  OnlineSimConfig serial = overlapped;
  serial.overlap_preproc = false;
  const OnlineSimReport ro = simulate_online(platform::v100(), "ViT_Tiny",
                                             plant_village(), overlapped);
  const OnlineSimReport rs =
      simulate_online(platform::v100(), "ViT_Tiny", plant_village(), serial);
  EXPECT_GT(ro.throughput_img_per_s, rs.throughput_img_per_s);
}

TEST(OnlineSim, QueueOverflowCountsRejected) {
  // Regression for the capacity bound: the queue cap is configurable,
  // overflow lands in `rejected`, and every arrival is accounted for.
  OnlineSimConfig config = base_config();
  config.arrival_rate_qps = 20000.0;
  config.duration_s = 2.0;
  config.queue_capacity = 16;
  const OnlineSimReport tight = simulate_online(
      platform::jetson_orin_nano(), "ViT_Base", plant_village(), config);
  EXPECT_GT(tight.rejected, 0);
  EXPECT_EQ(tight.completed + tight.rejected, tight.arrivals);

  config.queue_capacity = 1u << 20;
  const OnlineSimReport roomy = simulate_online(
      platform::jetson_orin_nano(), "ViT_Base", plant_village(), config);
  EXPECT_EQ(roomy.rejected, 0);
  EXPECT_EQ(roomy.completed, roomy.arrivals);
}

TEST(OnlineSim, BatchCapRespectsEngineMemoryWall) {
  OnlineSimConfig config = base_config();
  config.arrival_rate_qps = 10000.0;
  config.duration_s = 1.0;
  config.max_batch = 512;  // above Jetson ViT_Base's wall of 8
  const OnlineSimReport report = simulate_online(
      platform::jetson_orin_nano(), "ViT_Base", plant_village(), config);
  EXPECT_LE(report.mean_batch_size, 8.0);
}

}  // namespace
}  // namespace harvest::serving
