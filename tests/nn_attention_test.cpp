#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "nn/attention.hpp"
#include "nn/token_model.hpp"

namespace harvest::nn {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.next_float() * 2.0f - 1.0f;
  return v;
}

float max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

// Softmax outputs are convex combinations of V (values in [-1, 1]), so
// absolute error is the right metric; the fused path's tiled
// accumulation order and polynomial exp sit well under this bound.
constexpr float kTol = 1e-4f;

// ------------------------------------------------- fused vs naive

/// (tokens, dim, heads): odd T, T straddling the 64-wide kv tile and
/// the 4-row q tile, head_dim off the 8/16-lane vector grids (9, 20),
/// plus the real ViT-Tiny geometry.
class FusedAttentionShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FusedAttentionShapes, FusedMatchesNaive) {
  const auto [tokens, dim, heads] = GetParam();
  const std::int64_t batch = 2;
  const auto qkv = random_vec(static_cast<std::size_t>(batch * tokens * 3 * dim),
                              static_cast<std::uint64_t>(tokens * 131 + dim));
  std::vector<float> want(static_cast<std::size_t>(batch * tokens * dim));
  std::vector<float> got(want.size());
  self_attention_batched(qkv.data(), want.data(), batch, tokens, dim, heads);
  self_attention_fused_batched(qkv.data(), got.data(), batch, tokens, dim,
                               heads);
  EXPECT_LE(max_abs_diff(want, got), kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedAttentionShapes,
    ::testing::Values(std::make_tuple(1, 64, 4),     // single token
                      std::make_tuple(2, 48, 3),     // tiny, hd=16
                      std::make_tuple(7, 36, 4),     // odd T, hd=9
                      std::make_tuple(33, 60, 3),    // odd T, hd=20
                      std::make_tuple(63, 64, 2),    // one row short of tile
                      std::make_tuple(64, 64, 2),    // exactly one kv tile
                      std::make_tuple(65, 64, 2),    // tile straddle
                      std::make_tuple(130, 96, 3),   // two tiles + tail
                      std::make_tuple(257, 192, 3)));  // ViT-Tiny

TEST(FusedAttention, SingleImageMatchesBatched) {
  const std::int64_t tokens = 65, dim = 96, heads = 3, batch = 3;
  const auto qkv =
      random_vec(static_cast<std::size_t>(batch * tokens * 3 * dim), 7);
  std::vector<float> batched(static_cast<std::size_t>(batch * tokens * dim));
  std::vector<float> single(batched.size());
  self_attention_fused_batched(qkv.data(), batched.data(), batch, tokens, dim,
                               heads);
  for (std::int64_t b = 0; b < batch; ++b) {
    self_attention_fused(qkv.data() + b * tokens * 3 * dim,
                         single.data() + b * tokens * dim, tokens, dim, heads);
  }
  // Same kernel per (image, head) task, so bit-identical.
  EXPECT_EQ(0, std::memcmp(batched.data(), single.data(),
                           batched.size() * sizeof(float)));
}

TEST(FusedAttention, ScratchIsLinearInTokens) {
  const std::int64_t dim = 192, heads = 3;
  const std::size_t s256 = self_attention_fused_scratch_bytes(256, dim, heads);
  const std::size_t s512 = self_attention_fused_scratch_bytes(512, dim, heads);
  const std::size_t s1024 =
      self_attention_fused_scratch_bytes(1024, dim, heads);
  // O(T): doubling T must not much more than double the footprint…
  EXPECT_LE(s512, 3 * s256);
  EXPECT_LE(s1024, 3 * s512);
  // …and must undercut the naive heads·T² score buffer at depth.
  const std::size_t naive1024 =
      static_cast<std::size_t>(heads) * 1024 * 1024 * sizeof(float);
  EXPECT_LT(s1024, naive1024 / 4);
}

// ------------------------------------------------- decode kernel

/// Scalar two-pass softmax reference for the decode layout (one query
/// row against `len` cached K/V rows with row pitch `pitch`).
void decode_reference(const float* q, const float* k_rows, const float* v_rows,
                      std::int64_t pitch, float* out, std::int64_t len,
                      std::int64_t hd, float scale) {
  std::vector<float> scores(static_cast<std::size_t>(len));
  float max_score = -1e30f;
  for (std::int64_t j = 0; j < len; ++j) {
    float s = 0.0f;
    for (std::int64_t c = 0; c < hd; ++c) s += q[c] * k_rows[j * pitch + c];
    s *= scale;
    scores[static_cast<std::size_t>(j)] = s;
    max_score = std::max(max_score, s);
  }
  float denom = 0.0f;
  for (std::int64_t j = 0; j < len; ++j) {
    const float e = std::exp(scores[static_cast<std::size_t>(j)] - max_score);
    scores[static_cast<std::size_t>(j)] = e;
    denom += e;
  }
  std::memset(out, 0, static_cast<std::size_t>(hd) * sizeof(float));
  const float inv = 1.0f / denom;
  for (std::int64_t j = 0; j < len; ++j) {
    const float p = scores[static_cast<std::size_t>(j)] * inv;
    for (std::int64_t c = 0; c < hd; ++c) out[c] += p * v_rows[j * pitch + c];
  }
}

class DecodeFusedLens : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DecodeFusedLens, MatchesTwoPassReference) {
  const auto [len, hd] = GetParam();
  const std::int64_t heads = 3;
  const std::int64_t pitch = heads * hd;  // multi-head cache row pitch
  const auto cache = random_vec(static_cast<std::size_t>(2 * len * pitch),
                                static_cast<std::uint64_t>(len * 17 + hd));
  const auto q = random_vec(static_cast<std::size_t>(pitch), 23);
  std::vector<float> want(static_cast<std::size_t>(hd));
  std::vector<float> got(want.size());
  for (std::int64_t h = 0; h < heads; ++h) {
    const float* kc = cache.data() + h * hd;
    const float* vc = cache.data() + len * pitch + h * hd;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    decode_reference(q.data() + h * hd, kc, vc, pitch, want.data(), len, hd,
                     scale);
    attention_decode_fused(q.data() + h * hd, kc, vc, pitch, got.data(), len,
                           hd, scale);
    EXPECT_LE(max_abs_diff(want, got), kTol) << "head " << h;
  }
}

INSTANTIATE_TEST_SUITE_P(Lens, DecodeFusedLens,
                         ::testing::Values(std::make_tuple(1, 32),
                                           std::make_tuple(2, 64),
                                           std::make_tuple(7, 9),
                                           std::make_tuple(63, 20),
                                           std::make_tuple(64, 32),
                                           std::make_tuple(65, 32),
                                           std::make_tuple(200, 64)));

TEST(DecodeFused, SingleCachedRowIsExactlyV) {
  // softmax over one score is exactly 1, so out must equal the V row
  // bit-for-bit (the online pass starts with alpha = 0, l = 1).
  const std::int64_t hd = 40;
  const auto cache = random_vec(static_cast<std::size_t>(2 * hd), 3);
  const auto q = random_vec(static_cast<std::size_t>(hd), 4);
  std::vector<float> out(static_cast<std::size_t>(hd));
  attention_decode_fused(q.data(), cache.data(), cache.data() + hd, hd,
                         out.data(), 1, hd, 0.125f);
  EXPECT_EQ(0, std::memcmp(out.data(), cache.data() + hd,
                           static_cast<std::size_t>(hd) * sizeof(float)));
}

// ------------------------------------------------- padding inertness

/// decode_batch's `length_multiple_of` contract: pad rows carry zeros
/// and never touch sequence state, so a padded decode is bit-identical
/// to the unpadded one. This pins the fused decode kernel into the
/// same contract the serving scheduler relies on.
TEST(DecodeFused, PaddedDecodeBatchBitIdentical) {
  TokenModelConfig cfg;
  cfg.arch = "attn";
  cfg.vocab = 96;
  cfg.dim = 64;
  cfg.depth = 2;
  cfg.heads = 4;
  cfg.max_tokens = 32;

  const std::int32_t prompt[] = {5, 17, 3, 88};
  const std::int32_t next = 41;
  auto run = [&](std::int64_t multiple) {
    TokenModelPtr model = build_token_model(cfg);
    init_token_model(*model, 99);
    const SequenceStateSpec spec = model->state_spec();
    std::vector<float> slab(
        static_cast<std::size_t>(spec.floats_per_sequence()), 0.0f);
    SequenceState state(spec, slab.data());
    std::vector<float> logits(static_cast<std::size_t>(cfg.vocab));
    model->prefill(prompt, 4, state, logits.data());
    SequenceState* states[] = {&state};
    model->decode_batch(&next, states, 1, logits.data(), multiple);
    return logits;
  };

  const std::vector<float> unpadded = run(1);
  const std::vector<float> padded = run(4);  // 1 live row + 3 pad rows
  EXPECT_EQ(0, std::memcmp(unpadded.data(), padded.data(),
                           unpadded.size() * sizeof(float)));
}

}  // namespace
}  // namespace harvest::nn
