#include "serving/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "serving/online_sim.hpp"

namespace harvest::serving {
namespace {

TEST(Traces, ConstantIsFlat) {
  ConstantTrace trace(100.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(0.0), 100.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(1e6), 100.0);
  EXPECT_DOUBLE_EQ(trace.peak_rate(), 100.0);
  EXPECT_DOUBLE_EQ(trace.mean_rate(10.0), 100.0);
}

TEST(Traces, OnOffSwitchesAtDutyBoundary) {
  OnOffTrace trace(1000.0, 10.0, 10.0, 0.3);
  EXPECT_DOUBLE_EQ(trace.rate_at(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(2.9), 1000.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(3.1), 10.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(9.9), 10.0);
  EXPECT_DOUBLE_EQ(trace.rate_at(10.0), 1000.0);  // next period
  EXPECT_DOUBLE_EQ(trace.peak_rate(), 1000.0);
  EXPECT_DOUBLE_EQ(trace.mean_rate(100.0), 1000.0 * 0.3 + 10.0 * 0.7);
}

TEST(Traces, DiurnalOscillatesAndClampsAtZero) {
  DiurnalTrace trace(100.0, 150.0, 40.0);  // amplitude > base → clamping
  EXPECT_DOUBLE_EQ(trace.rate_at(0.0), 100.0);
  EXPECT_NEAR(trace.rate_at(10.0), 250.0, 1e-9);  // peak at quarter period
  EXPECT_DOUBLE_EQ(trace.rate_at(30.0), 0.0);     // clamped trough
  EXPECT_DOUBLE_EQ(trace.peak_rate(), 250.0);
  // Clamping raises the mean above the base.
  EXPECT_GT(trace.mean_rate(40.0), 100.0);
}

TEST(Traces, DiurnalWholePeriodMeanIsBase) {
  DiurnalTrace trace(100.0, 50.0, 20.0);
  EXPECT_NEAR(trace.mean_rate(20.0), 100.0, 1e-9);
}

TEST(Traces, ThinningMatchesMeanRate) {
  // Count arrivals over a horizon; expect ≈ mean_rate × horizon.
  OnOffTrace trace(400.0, 0.0, 2.0, 0.5);  // mean 200 qps
  core::Rng rng(5);
  constexpr double kHorizon = 100.0;
  double t = 0.0;
  int count = 0;
  for (;;) {
    t = next_arrival(trace, t, rng);
    if (t >= kHorizon) break;
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), 200.0 * kHorizon,
              4.0 * std::sqrt(200.0 * kHorizon));
}

TEST(Traces, ThinningPlacesArrivalsInBursts) {
  OnOffTrace trace(1000.0, 0.0, 2.0, 0.5);
  core::Rng rng(6);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t = next_arrival(trace, t, rng);
    // Every arrival must land where the rate is nonzero.
    EXPECT_GT(trace.rate_at(t), 0.0) << t;
  }
}

TEST(Traces, ZeroRateYieldsNoArrival) {
  ConstantTrace trace(0.0);
  core::Rng rng(7);
  EXPECT_TRUE(std::isinf(next_arrival(trace, 0.0, rng)));
}

TEST(TraceSim, ConstantTraceMatchesPoissonPath) {
  // simulate_online delegates to the trace variant; both entry points
  // must agree bit-for-bit at the same seed.
  const data::DatasetSpec dataset = *data::find_dataset("Plant Village");
  OnlineSimConfig config;
  config.arrival_rate_qps = 300.0;
  config.duration_s = 5.0;
  config.seed = 9;
  const OnlineSimReport a =
      simulate_online(platform::a100(), "ViT_Tiny", dataset, config);
  const ConstantTrace trace(300.0);
  const OnlineSimReport b = simulate_online_trace(platform::a100(), "ViT_Tiny",
                                                  dataset, config, trace);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST(TraceSim, BurstsInflateTailAtEqualMeanLoad) {
  const data::DatasetSpec dataset = *data::find_dataset("Plant Village");
  OnlineSimConfig config;
  config.duration_s = 20.0;
  config.max_batch = 64;
  config.instances = 1;
  config.seed = 10;
  const ConstantTrace smooth(2000.0);
  const OnOffTrace bursty(10000.0, 0.0, 4.0, 0.2);  // same 2000 qps mean
  const OnlineSimReport smooth_report = simulate_online_trace(
      platform::a100(), "ViT_Small", dataset, config, smooth);
  const OnlineSimReport bursty_report = simulate_online_trace(
      platform::a100(), "ViT_Small", dataset, config, bursty);
  EXPECT_GT(bursty_report.p99_latency_s, 2.0 * smooth_report.p99_latency_s);
}

}  // namespace
}  // namespace harvest::serving
