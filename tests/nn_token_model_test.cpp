#include "nn/token_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/rng.hpp"
#include "nn/serialize.hpp"

namespace harvest::nn {
namespace {

TokenModelConfig mini_config(const std::string& arch) {
  TokenModelConfig config;
  config.name = "mini-" + arch;
  config.arch = arch;
  config.vocab = 37;
  config.dim = 24;
  config.depth = 2;
  config.heads = 3;
  config.max_tokens = 32;
  return config;
}

/// Backing storage + view for one sequence's state.
struct OwnedState {
  explicit OwnedState(const SequenceStateSpec& spec)
      : slab(static_cast<std::size_t>(spec.floats_per_sequence())),
        state(spec, slab.data()) {
    state.reset();
  }
  std::vector<float> slab;
  SequenceState state;
};

std::vector<std::int32_t> random_prompt(std::int64_t count, std::int64_t vocab,
                                        std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<std::int32_t> tokens;
  for (std::int64_t i = 0; i < count; ++i) {
    tokens.push_back(
        static_cast<std::int32_t>(rng.uniform_int(0, vocab - 1)));
  }
  return tokens;
}

class TokenModelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TokenModelTest, StateSpecMatchesArchitecture) {
  TokenModelPtr model = build_token_model(mini_config(GetParam()));
  const SequenceStateSpec spec = model->state_spec();
  EXPECT_EQ(spec.layers, 2);
  EXPECT_EQ(spec.dim, 24);
  if (std::string(GetParam()) == "rwkv") {
    EXPECT_EQ(spec.kind, StateKind::kRecurrent);
    EXPECT_EQ(spec.floats_per_layer(), 2 * 24);
  } else {
    EXPECT_EQ(spec.kind, StateKind::kKvCache);
    EXPECT_EQ(spec.floats_per_layer(), 2 * 32 * 24);
  }
  EXPECT_EQ(spec.bytes_per_sequence(),
            static_cast<std::size_t>(spec.layers * spec.floats_per_layer()) *
                sizeof(float));
}

TEST_P(TokenModelTest, PrefillProducesFiniteLogitsAndAdvancesState) {
  TokenModelPtr model = build_token_model(mini_config(GetParam()));
  init_token_model(*model, 7);
  OwnedState owned(model->state_spec());
  const auto prompt = random_prompt(9, model->config().vocab, 3);
  std::vector<float> logits(static_cast<std::size_t>(model->config().vocab));
  model->prefill(prompt.data(), 9, owned.state, logits.data());
  EXPECT_EQ(owned.state.length(), 9);
  for (float v : logits) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(TokenModelTest, TeacherForcingMatchesPrefillBitExactly) {
  // Absorbing a prompt in one packed prefill must equal feeding the
  // same tokens one decode step at a time: both walk the identical
  // per-token arithmetic, so the final-position logits agree bit for
  // bit. This is the consistency contract between the scheduler's
  // prefill and its decode loop.
  TokenModelPtr model = build_token_model(mini_config(GetParam()));
  init_token_model(*model, 11);
  const std::int64_t vocab = model->config().vocab;
  const auto prompt = random_prompt(8, vocab, 5);

  OwnedState packed(model->state_spec());
  std::vector<float> packed_logits(static_cast<std::size_t>(vocab));
  model->prefill(prompt.data(), 8, packed.state, packed_logits.data());

  OwnedState stepped(model->state_spec());
  std::vector<float> step_logits(static_cast<std::size_t>(vocab));
  model->prefill(prompt.data(), 1, stepped.state, step_logits.data());
  for (std::int64_t i = 1; i < 8; ++i) {
    SequenceState* states[] = {&stepped.state};
    model->decode_batch(&prompt[static_cast<std::size_t>(i)], states, 1,
                        step_logits.data());
  }

  EXPECT_EQ(stepped.state.length(), packed.state.length());
  EXPECT_EQ(std::memcmp(packed_logits.data(), step_logits.data(),
                        packed_logits.size() * sizeof(float)),
            0);
}

TEST_P(TokenModelTest, DecodeRowsInvariantToBatchComposition) {
  // The invariant continuous batching rests on: a sequence's next
  // logits depend only on its own state and last token — never on which
  // other sequences share the packed step. Decode three sequences
  // together, then replay each alone from an identical state; every row
  // must match bit for bit, states included.
  TokenModelPtr model = build_token_model(mini_config(GetParam()));
  init_token_model(*model, 13);
  const std::int64_t vocab = model->config().vocab;

  std::vector<std::unique_ptr<OwnedState>> batch_states;
  std::vector<std::unique_ptr<OwnedState>> solo_states;
  std::vector<std::int32_t> last_tokens;
  std::vector<float> sink(static_cast<std::size_t>(vocab));
  for (int s = 0; s < 3; ++s) {
    // Distinct histories: prompts of different lengths and contents.
    const auto prompt =
        random_prompt(3 + 2 * s, vocab, 100 + static_cast<std::uint64_t>(s));
    auto batched = std::make_unique<OwnedState>(model->state_spec());
    auto solo = std::make_unique<OwnedState>(model->state_spec());
    model->prefill(prompt.data(), static_cast<std::int64_t>(prompt.size()),
                   batched->state, sink.data());
    model->prefill(prompt.data(), static_cast<std::int64_t>(prompt.size()),
                   solo->state, sink.data());
    batch_states.push_back(std::move(batched));
    solo_states.push_back(std::move(solo));
    last_tokens.push_back(static_cast<std::int32_t>((7 * s + 2) % vocab));
  }

  SequenceState* batched_views[] = {&batch_states[0]->state,
                                    &batch_states[1]->state,
                                    &batch_states[2]->state};
  std::vector<float> batched_logits(static_cast<std::size_t>(3 * vocab));
  model->decode_batch(last_tokens.data(), batched_views, 3,
                      batched_logits.data());

  for (int s = 0; s < 3; ++s) {
    SequenceState* view[] = {&solo_states[static_cast<std::size_t>(s)]->state};
    std::vector<float> solo_logits(static_cast<std::size_t>(vocab));
    model->decode_batch(&last_tokens[static_cast<std::size_t>(s)], view, 1,
                        solo_logits.data());
    EXPECT_EQ(std::memcmp(batched_logits.data() +
                              static_cast<std::size_t>(s * vocab),
                          solo_logits.data(),
                          solo_logits.size() * sizeof(float)),
              0)
        << "row " << s << " depends on its batch";
    EXPECT_EQ(std::memcmp(batch_states[static_cast<std::size_t>(s)]->slab.data(),
                          solo_states[static_cast<std::size_t>(s)]->slab.data(),
                          batch_states[static_cast<std::size_t>(s)]->slab.size() *
                              sizeof(float)),
              0)
        << "state " << s << " diverged";
  }
}

TEST_P(TokenModelTest, PaddingRowsDoNotPerturbResults) {
  // length_multiple_of rounds the packed row count up with zero rows;
  // results must be bit-identical to the unpadded run.
  TokenModelPtr model = build_token_model(mini_config(GetParam()));
  init_token_model(*model, 17);
  const std::int64_t vocab = model->config().vocab;
  const auto prompt = random_prompt(5, vocab, 21);

  OwnedState padded(model->state_spec());
  OwnedState plain(model->state_spec());
  std::vector<float> sink(static_cast<std::size_t>(vocab));
  model->prefill(prompt.data(), 5, padded.state, sink.data());
  model->prefill(prompt.data(), 5, plain.state, sink.data());

  const std::int32_t last = 9;
  SequenceState* padded_view[] = {&padded.state};
  SequenceState* plain_view[] = {&plain.state};
  std::vector<float> padded_logits(static_cast<std::size_t>(vocab));
  std::vector<float> plain_logits(static_cast<std::size_t>(vocab));
  model->decode_batch(&last, padded_view, 1, padded_logits.data(),
                      /*length_multiple_of=*/8);
  model->decode_batch(&last, plain_view, 1, plain_logits.data(),
                      /*length_multiple_of=*/1);
  EXPECT_EQ(std::memcmp(padded_logits.data(), plain_logits.data(),
                        plain_logits.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(padded.slab.data(), plain.slab.data(),
                        plain.slab.size() * sizeof(float)),
            0);
}

TEST_P(TokenModelTest, CheckpointRoundTripIsBitExact) {
  TokenModelPtr original = build_token_model(mini_config(GetParam()));
  init_token_model(*original, 23);
  const std::string path =
      ::testing::TempDir() + "/token-" + GetParam() + ".hvst";
  ASSERT_TRUE(save_token_model(*original, path).is_ok());

  TokenModelPtr loaded = build_token_model(mini_config(GetParam()));
  init_token_model(*loaded, 999);  // different weights before loading
  ASSERT_TRUE(load_token_model(*loaded, path).is_ok());

  auto orig_params = original->params();
  auto loaded_params = loaded->params();
  ASSERT_EQ(orig_params.size(), loaded_params.size());
  for (std::size_t i = 0; i < orig_params.size(); ++i) {
    EXPECT_EQ(orig_params[i].name, loaded_params[i].name);
    const auto orig_span = orig_params[i].tensor->f32_span();
    const auto loaded_span = loaded_params[i].tensor->f32_span();
    ASSERT_EQ(orig_span.size(), loaded_span.size());
    EXPECT_EQ(std::memcmp(orig_span.data(), loaded_span.data(),
                          orig_span.size() * sizeof(float)),
              0)
        << orig_params[i].name;
  }

  // And the loaded model decodes identically.
  const auto prompt = random_prompt(6, original->config().vocab, 31);
  OwnedState a(original->state_spec());
  OwnedState b(loaded->state_spec());
  std::vector<float> la(static_cast<std::size_t>(original->config().vocab));
  std::vector<float> lb(la.size());
  original->prefill(prompt.data(), 6, a.state, la.data());
  loaded->prefill(prompt.data(), 6, b.state, lb.data());
  EXPECT_EQ(std::memcmp(la.data(), lb.data(), la.size() * sizeof(float)), 0);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Architectures, TokenModelTest,
                         ::testing::Values("rwkv", "attn"));

TEST(TokenModelMacs, RwkvFlatAttnGrowsWithHistory) {
  TokenModelPtr rwkv = build_token_model(mini_config("rwkv"));
  TokenModelPtr attn = build_token_model(mini_config("attn"));
  EXPECT_DOUBLE_EQ(rwkv->macs_per_token(0), rwkv->macs_per_token(100));
  EXPECT_GT(attn->macs_per_token(100), attn->macs_per_token(0));
}

TEST(SequenceStateView, ResetZeroesSlabAndCounter) {
  SequenceStateSpec spec;
  spec.kind = StateKind::kRecurrent;
  spec.layers = 2;
  spec.dim = 4;
  spec.max_tokens = 8;
  std::vector<float> slab(static_cast<std::size_t>(spec.floats_per_sequence()),
                          3.5f);
  SequenceState state(spec, slab.data());
  state.advance(5);
  EXPECT_EQ(state.length(), 5);
  EXPECT_FALSE(state.full());
  state.advance(3);
  EXPECT_TRUE(state.full());
  state.reset();
  EXPECT_EQ(state.length(), 0);
  for (float v : slab) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(state.layer(1), slab.data() + spec.floats_per_layer());
}

}  // namespace
}  // namespace harvest::nn
