/// Invariants of the sequence DES (serving/sequence/sequence_sim.hpp)
/// and the token cost model it prices iterations with: conservation,
/// bit-reproducibility, and the policy ordering the continuous-batching
/// ablation reports.

#include "serving/sequence/sequence_sim.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "nn/token_model.hpp"

namespace harvest::serving::sequence {
namespace {

SequenceSimConfig base_config() {
  SequenceSimConfig config;
  config.arrival_rate = 400.0;
  config.duration_s = 4.0;
  config.seed = 7;
  config.max_active = 8;
  config.queue_capacity = 64;
  config.length_multiple_of = 4;
  config.cost = TokenCostModel::for_model(nn::TokenModelConfig{}, 50e9);
  return config;
}

TEST(TokenCostModel, PricesStepsAndPrefills) {
  TokenCostModel cost;
  cost.step_overhead_s = 1e-3;
  cost.prefill_overhead_s = 2e-3;
  cost.macs_per_token = 1e6;
  cost.macs_per_cached_token = 1e3;
  cost.mac_rate = 1e9;
  // 4 rows, 100 cached: 1ms + (4·1e6 + 100·1e3)/1e9 s.
  EXPECT_DOUBLE_EQ(cost.step_s(4, 100), 1e-3 + 4.1e-3);
  // 10-token prompt: causal term 0.5·10·9 pair MACs.
  EXPECT_DOUBLE_EQ(cost.prefill_s(10), 2e-3 + (10 * 1e6 + 45 * 1e3) / 1e9);
}

TEST(TokenCostModel, ForModelMatchesArchitecture) {
  nn::TokenModelConfig config;  // rwkv defaults
  const TokenCostModel rwkv = TokenCostModel::for_model(config, 1e9);
  EXPECT_GT(rwkv.macs_per_token, 0.0);
  EXPECT_DOUBLE_EQ(rwkv.macs_per_cached_token, 0.0);  // history-free step

  config.arch = "attn";
  const TokenCostModel attn = TokenCostModel::for_model(config, 1e9);
  EXPECT_GT(attn.macs_per_cached_token, 0.0);  // KV reads grow with history
}

TEST(SequenceSim, CountersConserveAcrossPoliciesAndLoads) {
  for (double rate : {100.0, 800.0, 2000.0}) {
    for (BatchPolicy policy : {BatchPolicy::kContinuous, BatchPolicy::kStatic}) {
      SequenceSimConfig config = base_config();
      config.arrival_rate = rate;
      config.policy = policy;
      config.fail_rate = 0.05;  // exercise the kFailed leg too
      const SequenceSimReport report = simulate_sequences(config);
      EXPECT_TRUE(report.conserved())
          << batch_policy_name(policy) << " @ " << rate << ": "
          << report.arrivals << " != " << report.completed << " + "
          << report.shed << " + " << report.failed;
      EXPECT_GT(report.arrivals, 0u);
      EXPECT_GE(report.tokens_generated, report.completed);
    }
  }
}

TEST(SequenceSim, BitReproducible) {
  for (BatchPolicy policy : {BatchPolicy::kContinuous, BatchPolicy::kStatic}) {
    SequenceSimConfig config = base_config();
    config.policy = policy;
    config.fail_rate = 0.02;
    const SequenceSimReport a = simulate_sequences(config);
    const SequenceSimReport b = simulate_sequences(config);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(SequenceSimReport)), 0)
        << batch_policy_name(policy);
  }
}

TEST(SequenceSim, SeedChangesWorkloadButNotLaws) {
  SequenceSimConfig config = base_config();
  const SequenceSimReport a = simulate_sequences(config);
  config.seed = 8;
  const SequenceSimReport b = simulate_sequences(config);
  EXPECT_NE(a.arrivals, b.arrivals);  // genuinely different draw
  EXPECT_TRUE(a.conserved());
  EXPECT_TRUE(b.conserved());
}

TEST(SequenceSim, ContinuousBeatsStaticAtSaturation) {
  // The ablation's headline, pinned as a test: past the static policy's
  // knee, iteration-level batching holds >=2x goodput and a lower p99
  // TTFT on the identical arrival stream. The queue must be deep enough
  // (and the window long enough) for static's backlog to actually build;
  // with a shallow queue it sheds instead and the admitted sequences
  // still meet the TTFT budget.
  SequenceSimConfig config = base_config();
  config.arrival_rate = 600.0;
  config.duration_s = 12.0;
  config.queue_capacity = 256;
  config.ttft_deadline_s = 0.25;

  config.policy = BatchPolicy::kContinuous;
  const SequenceSimReport continuous = simulate_sequences(config);
  config.policy = BatchPolicy::kStatic;
  const SequenceSimReport fixed = simulate_sequences(config);

  EXPECT_GE(continuous.goodput_tok_s, 2.0 * fixed.goodput_tok_s);
  EXPECT_LT(continuous.ttft_p99_s, fixed.ttft_p99_s);
  // Zombie rows: the static batch prices more padding per live row.
  EXPECT_GT(continuous.row_utilization, fixed.row_utilization);
}

TEST(SequenceSim, PoliciesTieUnderLightLoad) {
  // Far below saturation the batch rarely fills; both disciplines see
  // near-identical throughput (same arrivals, no queueing to speak of).
  SequenceSimConfig config = base_config();
  config.arrival_rate = 40.0;

  config.policy = BatchPolicy::kContinuous;
  const SequenceSimReport continuous = simulate_sequences(config);
  config.policy = BatchPolicy::kStatic;
  const SequenceSimReport fixed = simulate_sequences(config);

  EXPECT_EQ(continuous.completed, fixed.completed);
  EXPECT_EQ(continuous.shed, 0u);
  EXPECT_EQ(fixed.shed, 0u);
  EXPECT_NEAR(continuous.throughput_tok_s / fixed.throughput_tok_s, 1.0, 0.05);
}

}  // namespace
}  // namespace harvest::serving::sequence
