/// Multi-tenancy suite (docs/MULTITENANCY.md): the deduplicated
/// WeightStore (sharing, budget paging, cold reloads), tenant quota
/// enforcement on the real server, and WFQ fairness/isolation laws on
/// the deterministic tenant DES.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "data/synthetic.hpp"
#include "serving/server.hpp"
#include "serving/tenant_sim.hpp"
#include "serving/weight_store.hpp"
#include "tensor/tensor.hpp"

namespace harvest::serving {
namespace {

// ------------------------------------------------------------ backends

/// Weightless stub engine; the store prices paging off declared bytes.
class StubBackend final : public Backend {
 public:
  const std::string& name() const override {
    static const std::string kName = "stub";
    return kName;
  }
  std::int64_t max_batch() const override { return 8; }
  std::int64_t num_classes() const override { return 4; }
  std::int64_t input_size() const override { return 16; }
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override {
    BackendResult result;
    result.logits =
        tensor::Tensor::zeros({batch.shape()[0], num_classes()});
    return core::Result<BackendResult>(std::move(result));
  }
};

/// Holds every infer() until opened — makes "outstanding" controllable.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
  }
};

class GatedBackend final : public Backend {
 public:
  explicit GatedBackend(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}
  const std::string& name() const override {
    static const std::string kName = "gated";
    return kName;
  }
  std::int64_t max_batch() const override { return 4; }
  std::int64_t num_classes() const override { return 4; }
  std::int64_t input_size() const override { return 16; }
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override {
    gate_->wait();
    BackendResult result;
    result.logits =
        tensor::Tensor::zeros({batch.shape()[0], num_classes()});
    return core::Result<BackendResult>(std::move(result));
  }

 private:
  std::shared_ptr<Gate> gate_;
};

preproc::EncodedImage tiny_input(std::uint64_t seed) {
  const preproc::Image img = preproc::synthesize_field_image(20, 20, seed);
  return preproc::encode_image(img, preproc::ImageFormat::kAgJpeg);
}

// --------------------------------------------------------- weight store

TEST(WeightStore, DedupSharesOneEntryAcrossAcquirers) {
  WeightStore store;
  const std::size_t bytes = 1 << 20;
  auto factory = [] { return std::make_unique<StubBackend>(); };
  auto a = store.acquire("vit-base", factory, 2, bytes);
  auto b = store.acquire("vit-base", factory, 2, bytes);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().get(), b.value().get());  // literally the same entry

  const WeightStore::Stats stats = store.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.dedup_hits, 1u);
  // Only the eagerly-built first stream is resident; naive accounting
  // prices both acquires at their full private stream count.
  EXPECT_EQ(stats.resident_bytes, bytes);
  EXPECT_EQ(stats.naive_bytes, 4 * bytes);
  store.shutdown();
}

TEST(WeightStore, NullFactorySurfacesAtAcquire) {
  WeightStore store;
  auto acquired =
      store.acquire("broken", [] { return BackendPtr(); }, 1, 0);
  EXPECT_FALSE(acquired.is_ok());
  // The failed entry must not linger and poison a retry with a fixed
  // factory.
  auto retry = store.acquire(
      "broken", [] { return std::make_unique<StubBackend>(); }, 1, 0);
  EXPECT_TRUE(retry.is_ok());
  store.shutdown();
}

TEST(WeightStore, BudgetPagesIdleStreamsAndReloadsCold) {
  WeightStore store;
  const std::size_t bytes = 1 << 20;
  auto factory = [] { return std::make_unique<StubBackend>(); };
  auto a = store.acquire("model-a", factory, 1, bytes);
  auto b = store.acquire("model-b", factory, 1, bytes);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(store.stats().resident_bytes, 2 * bytes);

  // Budget for one model: the LRU entry pages out.
  store.set_budget_bytes(bytes);
  {
    auto lease = store.claim(b.value());
    ASSERT_TRUE(static_cast<bool>(lease));
    store.release(lease);
  }
  const WeightStore::Stats paged = store.stats();
  EXPECT_GT(paged.pageouts, 0u);
  EXPECT_LE(paged.resident_bytes, bytes);

  // Claiming the paged-out model rebuilds it: a cold start.
  auto cold = store.claim(a.value());
  ASSERT_TRUE(static_cast<bool>(cold));
  EXPECT_GE(cold.cold_start_s, 0.0);
  store.release(cold);
  EXPECT_GT(store.stats().cold_loads, paged.cold_loads);
  store.shutdown();
}

TEST(WeightStore, ClaimBlocksWhileAllStreamsBusy) {
  WeightStore store;
  auto acquired = store.acquire(
      "contended", [] { return std::make_unique<StubBackend>(); }, 1, 0);
  ASSERT_TRUE(acquired.is_ok());
  auto first = store.claim(acquired.value());
  ASSERT_TRUE(static_cast<bool>(first));

  std::atomic<bool> got{false};
  std::thread claimant([&] {
    auto second = store.claim(acquired.value());
    got.store(second.backend != nullptr);
    store.release(second);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());  // still parked: the only stream is busy
  store.release(first);
  claimant.join();
  EXPECT_TRUE(got.load());
  store.shutdown();
}

TEST(WeightStore, ShutdownUnblocksClaimants) {
  WeightStore store;
  auto acquired = store.acquire(
      "draining", [] { return std::make_unique<StubBackend>(); }, 1, 0);
  ASSERT_TRUE(acquired.is_ok());
  auto held = store.claim(acquired.value());
  ASSERT_TRUE(static_cast<bool>(held));
  std::thread claimant([&] {
    auto lease = store.claim(acquired.value());
    EXPECT_FALSE(static_cast<bool>(lease));  // empty: store shut down
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  store.shutdown();
  claimant.join();
}

// -------------------------------------------------------- server quota

TEST(TenantQuota, RejectsBeyondOutstandingBudget) {
  auto gate = std::make_shared<Gate>();
  Server server(1);
  ModelDeploymentConfig config;
  config.name = "crops";
  config.tenant = "farm";
  config.quota = 2;
  config.max_batch = 1;
  config.instances = 1;
  config.max_queue_delay_s = 1e-4;
  config.preproc.output_size = 16;
  ASSERT_TRUE(server
                  .register_model(config,
                                  [gate] {
                                    return std::make_unique<GatedBackend>(gate);
                                  })
                  .is_ok());

  const TenantState* tenant = server.tenant("farm");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->quota.load(), 2);

  auto submit = [&server](std::uint64_t seed) {
    InferenceRequest request;
    request.model = "crops";
    request.input = tiny_input(seed);
    return server.submit(std::move(request));
  };
  auto first = submit(1);
  auto second = submit(2);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());

  // Third concurrent request breaches the tenant's quota of 2.
  auto third = submit(3);
  ASSERT_FALSE(third.is_ok());
  EXPECT_EQ(third.status().code(), core::StatusCode::kResourceExhausted);

  gate->release();
  EXPECT_TRUE(first.value().get().status.is_ok());
  EXPECT_TRUE(second.value().get().status.is_ok());

  // The completion tokens drain `outstanding`; quota headroom returns.
  for (int spin = 0; spin < 200 && tenant->outstanding.load() != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(tenant->outstanding.load(), 0);
  auto fourth = submit(4);
  ASSERT_TRUE(fourth.is_ok());
  EXPECT_TRUE(fourth.value().get().status.is_ok());
  server.shutdown();
}

TEST(TenantQuota, DeploymentsSharingATenantShareItsBudget) {
  auto gate = std::make_shared<Gate>();
  Server server(1);
  for (const char* name : {"vit-a", "vit-b"}) {
    ModelDeploymentConfig config;
    config.name = name;
    config.tenant = "coop";
    config.quota = 1;
    config.max_batch = 1;
    config.instances = 1;
    config.max_queue_delay_s = 1e-4;
    config.preproc.output_size = 16;
    ASSERT_TRUE(server
                    .register_model(config,
                                    [gate] {
                                      return std::make_unique<GatedBackend>(
                                          gate);
                                    })
                    .is_ok());
  }
  ASSERT_EQ(server.tenant_names().size(), 1u);

  InferenceRequest request;
  request.model = "vit-a";
  request.input = tiny_input(1);
  auto first = server.submit(std::move(request));
  ASSERT_TRUE(first.is_ok());

  // One outstanding request on vit-a exhausts the *tenant's* budget, so
  // its sibling deployment is refused too.
  InferenceRequest sibling;
  sibling.model = "vit-b";
  sibling.input = tiny_input(2);
  auto second = server.submit(std::move(sibling));
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), core::StatusCode::kResourceExhausted);

  gate->release();
  EXPECT_TRUE(first.value().get().status.is_ok());
  server.shutdown();
}

TEST(WorkerPool, ConsolidatedPoolServesEveryDeployment) {
  // One shared worker time-slices two deployments under WFQ; every
  // request still completes.
  Server server(1);
  server.set_worker_target(1);
  for (const char* name : {"north", "south"}) {
    ModelDeploymentConfig config;
    config.name = name;
    config.max_batch = 4;
    config.instances = 2;
    config.max_queue_delay_s = 1e-4;
    config.preproc.output_size = 16;
    ASSERT_TRUE(server
                    .register_model(config,
                                    [] {
                                      return std::make_unique<StubBackend>();
                                    })
                    .is_ok());
  }
  EXPECT_EQ(server.worker_pool().workers(), 1u);

  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    InferenceRequest request;
    request.model = (i % 2 == 0) ? "north" : "south";
    request.input = tiny_input(static_cast<std::uint64_t>(i));
    auto submitted = server.submit(std::move(request));
    ASSERT_TRUE(submitted.is_ok());
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.is_ok());
  }
  server.shutdown();
}

// ------------------------------------------------------------ WFQ laws

TenantSimConfig contended_pair() {
  // Two tenants flooding one worker: completions split by WFQ weight.
  TenantSimConfig config;
  config.policy = FleetPolicy::kWfq;
  config.tenants = 2;
  config.workers = 1;
  config.duration_s = 10.0;
  config.seed = 7;
  config.base_rate = 2000.0;
  config.burst_on_s = 0.0;  // unmodulated: both saturated throughout
  config.burst_off_s = 0.0;
  config.max_batch = 4;
  config.queue_capacity = 32;
  config.deadline_s = 0.0;
  return config;
}

TEST(TenantSim, WfqSplitsCapacityByWeight) {
  TenantSimConfig config = contended_pair();
  config.tenant0_weight = 10.0;
  const TenantSimReport report = simulate_tenants(config);
  ASSERT_TRUE(report.conserved());
  ASSERT_GT(report.completed_t1, 0u);
  const double ratio = static_cast<double>(report.completed_t0) /
                       static_cast<double>(report.completed_t1);
  // Start-time WFQ with batching is approximate; 10:1 weights must land
  // within a third of the configured ratio.
  EXPECT_GT(ratio, 10.0 / 1.33) << "t0=" << report.completed_t0
                                << " t1=" << report.completed_t1;
  EXPECT_LT(ratio, 10.0 * 1.33);
}

TEST(TenantSim, EqualWeightsSplitEvenly) {
  const TenantSimReport report = simulate_tenants(contended_pair());
  ASSERT_TRUE(report.conserved());
  ASSERT_GT(report.completed_t1, 0u);
  const double ratio = static_cast<double>(report.completed_t0) /
                       static_cast<double>(report.completed_t1);
  EXPECT_GT(ratio, 1.0 / 1.15);
  EXPECT_LT(ratio, 1.15);
}

TenantSimConfig hot_fleet(FleetPolicy policy) {
  TenantSimConfig config;
  config.policy = policy;
  config.tenants = 100;
  config.workers = 1;
  config.duration_s = 10.0;
  config.seed = 42;
  config.base_rate = 2.0;
  config.burst_on_s = 0.5;
  config.burst_off_s = 2.0;
  config.max_batch = 8;
  config.queue_capacity = 1024;
  config.deadline_s = 0.25;
  config.hot_multiplier = 2000.0;
  return config;
}

TEST(TenantSim, WfqIsolatesVictimsFromHotTenant) {
  const TenantSimReport fifo = simulate_tenants(hot_fleet(FleetPolicy::kSharedFifo));
  const TenantSimReport wfq = simulate_tenants(hot_fleet(FleetPolicy::kWfq));
  ASSERT_TRUE(fifo.conserved());
  ASSERT_TRUE(wfq.conserved());
  // Shared FIFO lets the hot tenant's backlog drag every queue past the
  // deadline; WFQ bounds the victims near their contention-free latency.
  EXPECT_GT(fifo.victim_p99_s, 4 * 0.25);
  EXPECT_LE(wfq.victim_p99_s, 0.25);
  EXPECT_GE(wfq.goodput_req_s, fifo.goodput_req_s);
}

TEST(TenantSim, BitReproducible) {
  const TenantSimConfig config = hot_fleet(FleetPolicy::kWfq);
  const TenantSimReport a = simulate_tenants(config);
  const TenantSimReport b = simulate_tenants(config);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.hot_p99_s, b.hot_p99_s);
  EXPECT_EQ(a.victim_p99_s, b.victim_p99_s);
  EXPECT_EQ(a.fairness_index, b.fairness_index);
}

}  // namespace
}  // namespace harvest::serving
