#include "nn/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/graph.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              float scale = 1.0f) {
  core::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = (rng.next_float() * 2.0f - 1.0f) * scale;
  return v;
}

TEST(Quantize, RoundTripErrorBoundedByHalfStep) {
  const auto input = random_vec(1000, 1, 3.0f);
  std::vector<std::int8_t> quantized(input.size());
  const float scale = quantize_symmetric(input, quantized.data());
  ASSERT_GT(scale, 0.0f);
  std::vector<float> rebuilt(input.size());
  dequantize(quantized, scale, rebuilt.data());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_LE(std::fabs(rebuilt[i] - input[i]), scale * 0.5f + 1e-7f);
  }
}

TEST(Quantize, ZeroInputHasZeroScale) {
  const std::vector<float> zeros(16, 0.0f);
  std::vector<std::int8_t> quantized(16, 1);
  EXPECT_EQ(quantize_symmetric(zeros, quantized.data()), 0.0f);
  for (std::int8_t q : quantized) EXPECT_EQ(q, 0);
}

TEST(Quantize, ExtremesMapToFullRange) {
  const std::vector<float> input = {-2.0f, 0.0f, 2.0f};
  std::vector<std::int8_t> quantized(3);
  const float scale = quantize_symmetric(input, quantized.data());
  EXPECT_EQ(quantized[0], -127);
  EXPECT_EQ(quantized[1], 0);
  EXPECT_EQ(quantized[2], 127);
  EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
}

TEST(QGemm, MatchesInt32Reference) {
  constexpr std::int64_t kM = 5;
  constexpr std::int64_t kN = 7;
  constexpr std::int64_t kK = 11;
  core::Rng rng(2);
  std::vector<std::int8_t> a(kM * kK);
  std::vector<std::int8_t> b(kN * kK);
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  std::vector<std::int32_t> c(kM * kN);
  qgemm_bt(a.data(), b.data(), c.data(), kM, kN, kK);
  for (std::int64_t i = 0; i < kM; ++i) {
    for (std::int64_t j = 0; j < kN; ++j) {
      std::int32_t expect = 0;
      for (std::int64_t p = 0; p < kK; ++p) {
        expect += static_cast<std::int32_t>(a[static_cast<std::size_t>(i * kK + p)]) *
                  static_cast<std::int32_t>(b[static_cast<std::size_t>(j * kK + p)]);
      }
      EXPECT_EQ(c[static_cast<std::size_t>(i * kN + j)], expect);
    }
  }
}

TEST(QuantizedLinear, TracksFloatLinearClosely) {
  constexpr std::int64_t kIn = 64;
  constexpr std::int64_t kOut = 32;
  Linear reference("fc", kIn, kOut, 1);
  core::Rng rng(3);
  for (float& v : reference.weight().f32_span()) {
    v = (rng.next_float() - 0.5f) * 0.4f;
  }
  for (float& v : reference.bias().f32_span()) v = rng.next_float() - 0.5f;

  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 1);

  Tensor input(Shape{8, kIn}, DType::kF32);
  for (float& v : input.f32_span()) v = (rng.next_float() - 0.5f) * 2.0f;

  Tensor expect = reference.forward(input);
  Tensor actual = quantized.forward(input);
  ASSERT_EQ(actual.shape(), expect.shape());

  // Relative error of INT8 dynamic quantization on well-scaled data is
  // well under 2%.
  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < expect.numel(); ++i) {
    num += std::pow(static_cast<double>(actual.f32()[i] - expect.f32()[i]), 2);
    den += std::pow(static_cast<double>(expect.f32()[i]), 2);
  }
  EXPECT_LT(std::sqrt(num / den), 0.02);
}

TEST(QuantizedLinear, ArgmaxAgreesWithFloatOnSeparatedLogits) {
  // Quantization must not flip clearly separated predictions.
  constexpr std::int64_t kIn = 32;
  constexpr std::int64_t kOut = 8;
  Linear reference("fc", kIn, kOut, 1);
  core::Rng rng(4);
  for (float& v : reference.weight().f32_span()) v = rng.next_float() - 0.5f;
  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 1);
  int agreements = 0;
  constexpr int kTrials = 50;
  for (int trial = 0; trial < kTrials; ++trial) {
    Tensor input(Shape{1, kIn}, DType::kF32);
    for (float& v : input.f32_span()) v = rng.next_float() - 0.5f;
    Tensor fl = reference.forward(input);
    Tensor q = quantized.forward(input);
    if (tensor::argmax(fl.f32_span()) == tensor::argmax(q.f32_span())) {
      ++agreements;
    }
  }
  EXPECT_GE(agreements, kTrials - 2);  // near-perfect agreement
}

TEST(QuantizedLinear, WeightErrorBoundedByScales) {
  Linear reference("fc", 16, 4, 1);
  core::Rng rng(5);
  for (float& v : reference.weight().f32_span()) v = rng.next_float();
  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 1);
  // Max row |w| ≤ 1 ⇒ scale ≤ 1/127 ⇒ error ≤ half a step.
  EXPECT_LE(quantized.max_weight_error(), 0.5f / 127.0f + 1e-6f);
}

TEST(QuantizedLinear, CostsReportOneByteOperands) {
  Linear reference("fc", 8, 4, 2);
  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 2);
  std::vector<OpCost> float_costs;
  std::vector<OpCost> quant_costs;
  reference.append_costs(1, float_costs);
  quantized.append_costs(1, quant_costs);
  ASSERT_EQ(quant_costs.size(), 1u);
  EXPECT_DOUBLE_EQ(quant_costs[0].macs, float_costs[0].macs);
  // int8 traffic is priced directly at 1 byte per element — weights are
  // 8x4 int8, so exactly 32 bytes (half the fp16 deploy convention).
  EXPECT_DOUBLE_EQ(quant_costs[0].weight_bytes, 8.0 * 4.0);
  EXPECT_DOUBLE_EQ(quant_costs[0].weight_bytes,
                   float_costs[0].weight_bytes / 2.0);
}

// --- packed kernel vs naive reference, exact int32 ---------------------

void fill_int8(std::vector<std::int8_t>& v, std::uint64_t seed) {
  core::Rng rng(seed);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
}

TEST(QGemm, PackedMatchesNaiveOnAwkwardShapes) {
  // Shapes chosen to hit every edge of the blocking: M%MR, N%NR, odd K
  // (the int16 pair packing zero-pads), K straddling the KC=256 block
  // boundary, M straddling MC=96, and degenerate single-row/column.
  struct Case {
    std::int64_t m, n, k;
  };
  const std::vector<Case> cases = {{7, 13, 9},    {5, 64, 32},  {16, 33, 48},
                                   {12, 32, 257}, {33, 49, 513}, {197, 31, 40},
                                   {1, 129, 77},  {63, 1, 260}};
  for (const Case& c : cases) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(c.m * c.k));
    std::vector<std::int8_t> bt(static_cast<std::size_t>(c.n * c.k));
    fill_int8(a, static_cast<std::uint64_t>(c.m * 7 + c.k));
    fill_int8(bt, static_cast<std::uint64_t>(c.n * 13 + c.k));
    std::vector<std::int32_t> want(static_cast<std::size_t>(c.m * c.n));
    std::vector<std::int32_t> got(want.size(), -1);
    qgemm_bt_naive(a.data(), bt.data(), want.data(), c.m, c.n, c.k);
    qgemm_bt(a.data(), bt.data(), got.data(), c.m, c.n, c.k);
    EXPECT_EQ(want, got) << "shape " << c.m << "x" << c.n << "x" << c.k;
  }
}

TEST(QGemm, NoInt32OverflowAtWorstCaseK) {
  // The deepest reduction any quantized layer runs is K=3072
  // (ViT-Base fc2). At the extreme every product is 127·127 = 16129,
  // so the accumulator peaks at 3072·16129 ≈ 4.95e7 — well inside
  // int32. Verify against an int64 reference at exactly that point.
  constexpr std::int64_t kM = 3, kN = 18, kK = 3072;
  std::vector<std::int8_t> a(kM * kK, 127);
  std::vector<std::int8_t> bt(kN * kK);
  for (std::size_t i = 0; i < bt.size(); ++i) {
    bt[i] = (i % 2 == 0) ? 127 : -127;  // exercise both signs
  }
  std::vector<std::int32_t> got(kM * kN);
  qgemm_bt(a.data(), bt.data(), got.data(), kM, kN, kK);
  for (std::int64_t i = 0; i < kM; ++i) {
    for (std::int64_t j = 0; j < kN; ++j) {
      std::int64_t expect = 0;
      for (std::int64_t p = 0; p < kK; ++p) {
        expect += static_cast<std::int64_t>(a[static_cast<std::size_t>(i * kK + p)]) *
                  static_cast<std::int64_t>(bt[static_cast<std::size_t>(j * kK + p)]);
      }
      ASSERT_LE(std::abs(expect), std::int64_t{INT32_MAX});
      EXPECT_EQ(static_cast<std::int64_t>(
                    got[static_cast<std::size_t>(i * kN + j)]),
                expect);
    }
  }
}

TEST(Quantize, SaturatesAtPlusMinus127Never128) {
  // An outlier beyond the symmetric range must clamp to ±127; the int8
  // minimum -128 is never produced, so |q|·scale round-trips safely.
  std::vector<float> input(64);
  core::Rng rng(9);
  for (float& x : input) x = rng.next_float() - 0.5f;
  input[10] = -5.0f;  // negative peak sets the scale
  input[20] = 4.9f;
  std::vector<std::int8_t> q(input.size());
  const float scale = quantize_symmetric(input, q.data());
  EXPECT_FLOAT_EQ(scale, 5.0f / 127.0f);
  for (std::int8_t v : q) {
    EXPECT_GE(v, -127);
    EXPECT_LE(v, 127);
  }
  EXPECT_EQ(q[10], -127);
}

TEST(Quantize, ZeroRowsGetZeroScaleAmongNonzeroRows) {
  constexpr std::int64_t kRows = 4, kDim = 32;
  std::vector<float> input(kRows * kDim, 0.0f);
  for (std::int64_t d = 0; d < kDim; ++d) {
    input[static_cast<std::size_t>(0 * kDim + d)] = 1.0f;  // row 0 nonzero
    input[static_cast<std::size_t>(2 * kDim + d)] = -2.0f; // row 2 nonzero
  }
  std::vector<std::int8_t> q(input.size(), 1);
  std::vector<float> scales(kRows, -1.0f);
  quantize_rows(input.data(), kRows, kDim, q.data(), scales.data());
  EXPECT_GT(scales[0], 0.0f);
  EXPECT_EQ(scales[1], 0.0f);
  EXPECT_GT(scales[2], 0.0f);
  EXPECT_EQ(scales[3], 0.0f);
  for (std::int64_t d = 0; d < kDim; ++d) {
    EXPECT_EQ(q[static_cast<std::size_t>(1 * kDim + d)], 0);
    EXPECT_EQ(q[static_cast<std::size_t>(3 * kDim + d)], 0);
  }
}

// --- fused dequantizing epilogue ---------------------------------------

float gelu_ref(float x) {
  return 0.5f * x * (1.0f + std::erf(x * 0.70710678118654752440f));
}

TEST(QGemm, DequantEpilogueMatchesScalarReference) {
  constexpr std::int64_t kM = 21, kN = 35, kK = 130;
  std::vector<std::int8_t> a(kM * kK);
  std::vector<std::int8_t> bt(kN * kK);
  fill_int8(a, 21);
  fill_int8(bt, 35);
  std::vector<std::int32_t> acc(kM * kN);
  qgemm_bt_naive(a.data(), bt.data(), acc.data(), kM, kN, kK);

  core::Rng rng(11);
  std::vector<float> scale_m(kM), scale_n(kN), bias_m(kM), bias_n(kN);
  for (float& x : scale_m) x = rng.next_float() * 0.01f + 1e-4f;
  for (float& x : scale_n) x = rng.next_float() * 0.01f + 1e-4f;
  for (float& x : bias_m) x = rng.next_float() - 0.5f;
  for (float& x : bias_n) x = rng.next_float() - 0.5f;

  for (const QGemmEpilogue::Act act :
       {QGemmEpilogue::Act::kNone, QGemmEpilogue::Act::kRelu,
        QGemmEpilogue::Act::kGelu}) {
    for (const bool accumulate : {false, true}) {
      QGemmEpilogue ep;
      ep.scale_m = scale_m.data();
      ep.scale_n = scale_n.data();
      ep.bias_m = bias_m.data();
      ep.bias_n = bias_n.data();
      ep.act = act;
      ep.accumulate = accumulate;
      std::vector<float> got(kM * kN, 0.25f);
      qgemm_bt_dequant(a.data(), bt.data(), got.data(), kM, kN, kK, ep);
      for (std::int64_t i = 0; i < kM; ++i) {
        for (std::int64_t j = 0; j < kN; ++j) {
          float v = static_cast<float>(acc[static_cast<std::size_t>(i * kN + j)]) *
                        scale_m[static_cast<std::size_t>(i)] *
                        scale_n[static_cast<std::size_t>(j)] +
                    bias_m[static_cast<std::size_t>(i)] +
                    bias_n[static_cast<std::size_t>(j)];
          if (act == QGemmEpilogue::Act::kRelu) v = std::max(0.0f, v);
          if (act == QGemmEpilogue::Act::kGelu) v = gelu_ref(v);
          if (accumulate) v += 0.25f;
          EXPECT_NEAR(got[static_cast<std::size_t>(i * kN + j)], v,
                      1e-5f * (std::fabs(v) + 1.0f));
        }
      }
    }
  }
}

TEST(QGemm, PrepackedMatchesOnTheFlyPacking) {
  constexpr std::int64_t kM = 57, kN = 70, kK = 301;
  std::vector<std::int8_t> a(kM * kK);
  std::vector<std::int8_t> bt(kN * kK);
  fill_int8(a, 57);
  fill_int8(bt, 70);
  std::vector<float> scale_m(kM, 0.003f), scale_n(kN, 0.007f), bias_n(kN, 0.1f);
  QGemmEpilogue ep;
  ep.scale_m = scale_m.data();
  ep.scale_n = scale_n.data();
  ep.bias_n = bias_n.data();

  std::vector<float> want(kM * kN), got(kM * kN);
  qgemm_bt_dequant(a.data(), bt.data(), want.data(), kM, kN, kK, ep);
  QGemmPackedB packed(bt.data(), kN, kK);
  EXPECT_EQ(packed.n(), kN);
  EXPECT_EQ(packed.k(), kK);
  qgemm_prepacked_dequant(a.data(), packed, got.data(), kM, ep);
  // Same int32 accumulators, same epilogue arithmetic → bitwise equal.
  EXPECT_EQ(want, got);
}

// --- whole-model graph rewrite -----------------------------------------

double model_agreement(Model& fp32, Model& int8, double* rel_l2) {
  constexpr std::int64_t kBatch = 4;
  const tensor::Shape& per_image = fp32.input_shape();
  Tensor input(Shape{kBatch, per_image.dim(0), per_image.dim(1),
                     per_image.dim(2)},
               DType::kF32);
  core::Rng rng(17);
  for (float& v : input.f32_span()) v = rng.next_float() * 2.0f - 1.0f;
  const Tensor a = fp32.forward(input);
  const Tensor b = int8.forward(input);
  const std::int64_t classes = fp32.num_classes();
  std::int64_t agree = 0;
  double num = 0.0, den = 0.0;
  for (std::int64_t r = 0; r < kBatch; ++r) {
    std::span<const float> fr{a.f32() + r * classes,
                              static_cast<std::size_t>(classes)};
    std::span<const float> qr{b.f32() + r * classes,
                              static_cast<std::size_t>(classes)};
    if (tensor::argmax(fr) == tensor::argmax(qr)) ++agree;
    for (std::int64_t c = 0; c < classes; ++c) {
      const double d = static_cast<double>(fr[static_cast<std::size_t>(c)]) -
                       static_cast<double>(qr[static_cast<std::size_t>(c)]);
      num += d * d;
      den += static_cast<double>(fr[static_cast<std::size_t>(c)]) *
             static_cast<double>(fr[static_cast<std::size_t>(c)]);
    }
  }
  *rel_l2 = den > 0.0 ? std::sqrt(num / den) : 0.0;
  return static_cast<double>(agree) / kBatch;
}

TEST(QuantizeModel, VitTracksFp32Twin) {
  const ViTConfig config{"qvit", 16, 4, 32, 2, 2, 4, 5};
  ModelPtr fp32 = build_vit(config);
  ModelPtr int8 = build_vit(config);
  init_weights(*fp32, 42);
  init_weights(*int8, 42);
  const std::int64_t params_before = int8->param_count();
  quantize_model(*int8);
  // Quantized layers freeze their weights (empty collect_params), so a
  // successful rewrite strictly shrinks the trainable-parameter count.
  EXPECT_LT(int8->param_count(), params_before);
  double rel_l2 = 1.0;
  const double agreement = model_agreement(*fp32, *int8, &rel_l2);
  EXPECT_GE(agreement, 0.75);
  EXPECT_LT(rel_l2, 0.05);
}

TEST(QuantizeModel, ResNetTracksFp32Twin) {
  ResNetConfig config;
  config.name = "qresnet";
  config.image = 32;
  config.num_classes = 5;
  config.stage_blocks = {1, 1};
  ModelPtr fp32 = build_resnet(config);
  ModelPtr int8 = build_resnet(config);
  init_weights(*fp32, 42);
  init_weights(*int8, 42);
  const std::int64_t params_before = int8->param_count();
  quantize_model(*int8);
  EXPECT_LT(int8->param_count(), params_before);
  double rel_l2 = 1.0;
  const double agreement = model_agreement(*fp32, *int8, &rel_l2);
  EXPECT_GE(agreement, 0.75);
  EXPECT_LT(rel_l2, 0.05);
}

}  // namespace
}  // namespace harvest::nn
