#include "nn/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              float scale = 1.0f) {
  core::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = (rng.next_float() * 2.0f - 1.0f) * scale;
  return v;
}

TEST(Quantize, RoundTripErrorBoundedByHalfStep) {
  const auto input = random_vec(1000, 1, 3.0f);
  std::vector<std::int8_t> quantized(input.size());
  const float scale = quantize_symmetric(input, quantized.data());
  ASSERT_GT(scale, 0.0f);
  std::vector<float> rebuilt(input.size());
  dequantize(quantized, scale, rebuilt.data());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_LE(std::fabs(rebuilt[i] - input[i]), scale * 0.5f + 1e-7f);
  }
}

TEST(Quantize, ZeroInputHasZeroScale) {
  const std::vector<float> zeros(16, 0.0f);
  std::vector<std::int8_t> quantized(16, 1);
  EXPECT_EQ(quantize_symmetric(zeros, quantized.data()), 0.0f);
  for (std::int8_t q : quantized) EXPECT_EQ(q, 0);
}

TEST(Quantize, ExtremesMapToFullRange) {
  const std::vector<float> input = {-2.0f, 0.0f, 2.0f};
  std::vector<std::int8_t> quantized(3);
  const float scale = quantize_symmetric(input, quantized.data());
  EXPECT_EQ(quantized[0], -127);
  EXPECT_EQ(quantized[1], 0);
  EXPECT_EQ(quantized[2], 127);
  EXPECT_FLOAT_EQ(scale, 2.0f / 127.0f);
}

TEST(QGemm, MatchesInt32Reference) {
  constexpr std::int64_t kM = 5;
  constexpr std::int64_t kN = 7;
  constexpr std::int64_t kK = 11;
  core::Rng rng(2);
  std::vector<std::int8_t> a(kM * kK);
  std::vector<std::int8_t> b(kN * kK);
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  std::vector<std::int32_t> c(kM * kN);
  qgemm_bt(a.data(), b.data(), c.data(), kM, kN, kK);
  for (std::int64_t i = 0; i < kM; ++i) {
    for (std::int64_t j = 0; j < kN; ++j) {
      std::int32_t expect = 0;
      for (std::int64_t p = 0; p < kK; ++p) {
        expect += static_cast<std::int32_t>(a[static_cast<std::size_t>(i * kK + p)]) *
                  static_cast<std::int32_t>(b[static_cast<std::size_t>(j * kK + p)]);
      }
      EXPECT_EQ(c[static_cast<std::size_t>(i * kN + j)], expect);
    }
  }
}

TEST(QuantizedLinear, TracksFloatLinearClosely) {
  constexpr std::int64_t kIn = 64;
  constexpr std::int64_t kOut = 32;
  Linear reference("fc", kIn, kOut, 1);
  core::Rng rng(3);
  for (float& v : reference.weight().f32_span()) {
    v = (rng.next_float() - 0.5f) * 0.4f;
  }
  for (float& v : reference.bias().f32_span()) v = rng.next_float() - 0.5f;

  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 1);

  Tensor input(Shape{8, kIn}, DType::kF32);
  for (float& v : input.f32_span()) v = (rng.next_float() - 0.5f) * 2.0f;

  Tensor expect = reference.forward(input);
  Tensor actual = quantized.forward(input);
  ASSERT_EQ(actual.shape(), expect.shape());

  // Relative error of INT8 dynamic quantization on well-scaled data is
  // well under 2%.
  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < expect.numel(); ++i) {
    num += std::pow(static_cast<double>(actual.f32()[i] - expect.f32()[i]), 2);
    den += std::pow(static_cast<double>(expect.f32()[i]), 2);
  }
  EXPECT_LT(std::sqrt(num / den), 0.02);
}

TEST(QuantizedLinear, ArgmaxAgreesWithFloatOnSeparatedLogits) {
  // Quantization must not flip clearly separated predictions.
  constexpr std::int64_t kIn = 32;
  constexpr std::int64_t kOut = 8;
  Linear reference("fc", kIn, kOut, 1);
  core::Rng rng(4);
  for (float& v : reference.weight().f32_span()) v = rng.next_float() - 0.5f;
  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 1);
  int agreements = 0;
  constexpr int kTrials = 50;
  for (int trial = 0; trial < kTrials; ++trial) {
    Tensor input(Shape{1, kIn}, DType::kF32);
    for (float& v : input.f32_span()) v = rng.next_float() - 0.5f;
    Tensor fl = reference.forward(input);
    Tensor q = quantized.forward(input);
    if (tensor::argmax(fl.f32_span()) == tensor::argmax(q.f32_span())) {
      ++agreements;
    }
  }
  EXPECT_GE(agreements, kTrials - 2);  // near-perfect agreement
}

TEST(QuantizedLinear, WeightErrorBoundedByScales) {
  Linear reference("fc", 16, 4, 1);
  core::Rng rng(5);
  for (float& v : reference.weight().f32_span()) v = rng.next_float();
  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 1);
  // Max row |w| ≤ 1 ⇒ scale ≤ 1/127 ⇒ error ≤ half a step.
  EXPECT_LE(quantized.max_weight_error(), 0.5f / 127.0f + 1e-6f);
}

TEST(QuantizedLinear, CostsReportHalvedTraffic) {
  Linear reference("fc", 8, 4, 2);
  QuantizedLinear quantized("fc.q", reference.weight(), reference.bias(), 2);
  std::vector<OpCost> float_costs;
  std::vector<OpCost> quant_costs;
  reference.append_costs(1, float_costs);
  quantized.append_costs(1, quant_costs);
  ASSERT_EQ(quant_costs.size(), 1u);
  EXPECT_DOUBLE_EQ(quant_costs[0].macs, float_costs[0].macs);
  EXPECT_DOUBLE_EQ(quant_costs[0].weight_bytes,
                   float_costs[0].weight_bytes / 2.0);
}

}  // namespace
}  // namespace harvest::nn
