#include "harvest/placement.hpp"

#include <gtest/gtest.h>

namespace harvest::api {
namespace {

AdvisorConfig interactive_budget() {
  AdvisorConfig config;
  config.latency_budget_s = 0.1;
  return config;
}

TEST(Placement, Crsa4kPinsToEdgeOnWireless) {
  const data::DatasetSpec crsa = *data::find_dataset("CRSA");
  for (const platform::LinkSpec* link :
       {&platform::lte_rural(), &platform::nr5g(),
        &platform::wifi_backhaul()}) {
    const PlacementDecision decision =
        place_deployment(crsa, *link, interactive_budget());
    EXPECT_NE(decision.chosen, "cloud") << link->name;
    EXPECT_FALSE(decision.cloud.meets_budget) << link->name;
  }
}

TEST(Placement, SmallImagesGoToCloudOnGoodLinks) {
  const data::DatasetSpec pv = *data::find_dataset("Plant Village");
  const PlacementDecision fiber =
      place_deployment(pv, platform::fiber(), interactive_budget());
  EXPECT_EQ(fiber.chosen, "cloud");
  EXPECT_TRUE(fiber.cloud.meets_budget);
  EXPECT_GT(fiber.cloud.sustainable_qps, fiber.edge.sustainable_qps);
}

TEST(Placement, CornTiffUploadBustsLteBudgetEntirely) {
  // Corn's ~88 KiB TIFF payloads take >150 ms just to upload over rural
  // LTE — the cloud side is infeasible under a 100 ms budget.
  const data::DatasetSpec corn = *data::find_dataset("Corn Growth Stage");
  const PlacementDecision lte =
      place_deployment(corn, platform::lte_rural(), interactive_budget());
  EXPECT_FALSE(lte.cloud.meets_budget);
  EXPECT_EQ(lte.chosen, "edge");
}

TEST(Placement, UplinkLimitsCloudCapacityOn5g) {
  const data::DatasetSpec corn = *data::find_dataset("Corn Growth Stage");
  const PlacementDecision decision =
      place_deployment(corn, platform::nr5g(), interactive_budget());
  ASSERT_TRUE(decision.cloud.meets_budget);
  EXPECT_EQ(decision.cloud.limiting_factor, "uplink");
  // 5G caps Corn's big TIFF payloads around ~110 requests/second — far
  // below both the A100 engine and the Jetson's local rate.
  EXPECT_LT(decision.cloud.sustainable_qps, decision.edge.sustainable_qps);
}

TEST(Placement, EdgeOptionHasNoUploadCost) {
  const data::DatasetSpec pv = *data::find_dataset("Plant Village");
  const PlacementDecision decision =
      place_deployment(pv, platform::lte_rural(), interactive_budget());
  EXPECT_DOUBLE_EQ(decision.edge.upload_latency_s, 0.0);
  EXPECT_GT(decision.cloud.upload_latency_s, 0.0);
}

TEST(Placement, ImpossibleBudgetChoosesNeither) {
  AdvisorConfig config;
  config.latency_budget_s = 1e-6;
  const data::DatasetSpec pv = *data::find_dataset("Plant Village");
  const PlacementDecision decision =
      place_deployment(pv, platform::fiber(), config);
  EXPECT_EQ(decision.chosen, "neither");
  EXPECT_FALSE(decision.edge.meets_budget);
  EXPECT_FALSE(decision.cloud.meets_budget);
  EXPECT_FALSE(decision.rationale.empty());
}

TEST(Placement, DecisionsCarryModelsAndRationale) {
  const data::DatasetSpec fruits = *data::find_dataset("Fruits-360");
  const PlacementDecision decision =
      place_deployment(fruits, platform::nr5g(), interactive_budget());
  EXPECT_NE(decision.chosen, "neither");
  if (decision.edge.meets_budget) {
    EXPECT_FALSE(decision.edge.model.empty());
  }
  if (decision.cloud.meets_budget) {
    EXPECT_FALSE(decision.cloud.model.empty());
  }
  EXPECT_FALSE(decision.rationale.empty());
}

}  // namespace
}  // namespace harvest::api
