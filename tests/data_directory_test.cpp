#include "data/directory.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "preproc/image.hpp"

namespace harvest::data {
namespace {

namespace fs = std::filesystem;

/// Builds a small ImageFolder tree under TempDir and removes it after.
class DirectoryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "field_data";
    fs::remove_all(root_);
    fs::create_directories(root_ / "blight");
    fs::create_directories(root_ / "healthy");
    write_sample(root_ / "healthy" / "a.ppm", preproc::ImageFormat::kPpm, 1);
    write_sample(root_ / "healthy" / "b.agj", preproc::ImageFormat::kAgJpeg, 2);
    write_sample(root_ / "blight" / "c.bmp", preproc::ImageFormat::kBmp, 3);
    write_sample(root_ / "blight" / "d.atif", preproc::ImageFormat::kAtif, 4);
    // Distractors that must be skipped.
    std::FILE* notes = std::fopen((root_ / "healthy" / "notes.txt").c_str(), "wb");
    std::fputs("not an image", notes);
    std::fclose(notes);
  }

  void TearDown() override { fs::remove_all(root_); }

  void write_sample(const fs::path& path, preproc::ImageFormat format,
                    std::uint64_t seed) {
    const preproc::Image img = preproc::synthesize_field_image(16, 12, seed);
    ASSERT_TRUE(
        write_encoded(preproc::encode_image(img, format), path.string())
            .is_ok());
  }

  fs::path root_;
};

TEST_F(DirectoryFixture, DiscoversClassesAndFiles) {
  auto dataset = DirectoryDataset::open(root_.string());
  ASSERT_TRUE(dataset.is_ok()) << dataset.status().to_string();
  EXPECT_EQ(dataset.value().size(), 4);
  EXPECT_EQ(dataset.value().num_classes(), 2);
  // Sorted class order: blight=0, healthy=1.
  EXPECT_EQ(dataset.value().class_names()[0], "blight");
  EXPECT_EQ(dataset.value().class_names()[1], "healthy");
  EXPECT_EQ(dataset.value().label(0), 0);  // blight/c.bmp
  EXPECT_EQ(dataset.value().label(2), 1);  // healthy/a.ppm
}

TEST_F(DirectoryFixture, LoadsAndDecodesEveryContainer) {
  auto dataset = DirectoryDataset::open(root_.string());
  ASSERT_TRUE(dataset.is_ok());
  for (std::int64_t i = 0; i < dataset.value().size(); ++i) {
    auto image = dataset.value().load(i);
    ASSERT_TRUE(image.is_ok()) << dataset.value().file_path(i);
    EXPECT_EQ(image.value().width, 16);
    EXPECT_EQ(image.value().height, 12);
    auto decoded = preproc::decode_image(image.value());
    EXPECT_TRUE(decoded.is_ok());
  }
}

TEST_F(DirectoryFixture, DeterministicOrdering) {
  auto a = DirectoryDataset::open(root_.string());
  auto b = DirectoryDataset::open(root_.string());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  for (std::int64_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value().file_path(i), b.value().file_path(i));
  }
}

TEST_F(DirectoryFixture, FlatDirectoryIsUnlabeled) {
  const fs::path flat = fs::path(::testing::TempDir()) / "flat_feed";
  fs::remove_all(flat);
  fs::create_directories(flat);
  write_sample(flat / "frame0.raw", preproc::ImageFormat::kRaw, 9);
  auto dataset = DirectoryDataset::open(flat.string());
  ASSERT_TRUE(dataset.is_ok());
  EXPECT_EQ(dataset.value().size(), 1);
  EXPECT_EQ(dataset.value().num_classes(), 0);
  EXPECT_EQ(dataset.value().label(0), -1);
  fs::remove_all(flat);
}

TEST_F(DirectoryFixture, MissingRootFails) {
  EXPECT_FALSE(DirectoryDataset::open("/no/such/root").is_ok());
}

TEST_F(DirectoryFixture, EmptyTreeFails) {
  const fs::path empty = fs::path(::testing::TempDir()) / "empty_root";
  fs::remove_all(empty);
  fs::create_directories(empty / "class_a");
  EXPECT_FALSE(DirectoryDataset::open(empty.string()).is_ok());
  fs::remove_all(empty);
}

TEST(DirectoryFormats, ExtensionMapping) {
  EXPECT_EQ(DirectoryDataset::format_for("x.PPM"), preproc::ImageFormat::kPpm);
  EXPECT_EQ(DirectoryDataset::format_for("x.agj"),
            preproc::ImageFormat::kAgJpeg);
  EXPECT_EQ(DirectoryDataset::format_for("x.tar.atif"),
            preproc::ImageFormat::kAtif);
  EXPECT_FALSE(DirectoryDataset::format_for("x.jpg").has_value());
  EXPECT_FALSE(DirectoryDataset::format_for("noext").has_value());
}

}  // namespace
}  // namespace harvest::data
