#include <gtest/gtest.h>

#include "platform/device.hpp"
#include "platform/perf_model.hpp"

namespace harvest::platform {
namespace {

TEST(Energy, PositiveAndFiniteEverywhere) {
  for (const DeviceSpec* device : evaluated_platforms()) {
    const EngineModel engine = make_engine_model(*device, "ResNet50");
    for (std::int64_t batch : {1, 8, 64}) {
      const EngineEstimate est = engine.estimate(batch);
      if (est.oom) continue;
      EXPECT_GT(est.energy_per_image_j, 0.0) << device->name;
      EXPECT_LT(est.energy_per_image_j, 10.0) << device->name;  // < 10 J/img
    }
  }
}

TEST(Energy, PerImageEnergyFallsWithBatch) {
  // Amortizing fixed overheads and rising MFU both cut J/img.
  const EngineModel engine = make_engine_model(a100(), "ViT_Small");
  const double e1 = engine.estimate(1).energy_per_image_j;
  const double e64 = engine.estimate(64).energy_per_image_j;
  const double e1024 = engine.estimate(1024).energy_per_image_j;
  EXPECT_GT(e1, e64);
  EXPECT_GT(e64, e1024);
}

TEST(Energy, EdgeWinsAtSmallBatchCloudAtLargeBatch) {
  // The continuum trade-off of the paper's conclusion: a 25 W Jetson is
  // the efficiency choice for real-time single frames; a saturated
  // 400 W A100 amortizes better.
  const EngineModel jetson = make_engine_model(jetson_orin_nano(), "ViT_Tiny");
  const EngineModel a100_engine = make_engine_model(a100(), "ViT_Tiny");
  EXPECT_LT(jetson.estimate(1).energy_per_image_j,
            a100_engine.estimate(1).energy_per_image_j);
  EXPECT_LT(a100_engine.estimate(1024).energy_per_image_j,
            jetson.estimate(196).energy_per_image_j * 2.0);
}

TEST(Energy, ConsistentWithPowerTimesLatency) {
  const EngineModel engine = make_engine_model(v100(), "ViT_Base");
  const EngineEstimate est = engine.estimate(16);
  EXPECT_NEAR(est.energy_per_image_j,
              v100().power_w * est.latency_s / 16.0, 1e-12);
}

}  // namespace
}  // namespace harvest::platform
