/// Quality-axis sweep of the lossy AgJPEG codec: size and error must be
/// well-behaved functions of the quality knob across its whole range.

#include <gtest/gtest.h>

#include "preproc/codec.hpp"

namespace harvest::preproc {
namespace {

class QualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(QualitySweep, DecodesAndStaysWithinErrorEnvelope) {
  const int quality = GetParam();
  const Image original = synthesize_field_image(48, 48, 77);
  const EncodedImage encoded =
      encode_image(original, ImageFormat::kAgJpeg, quality);
  auto decoded = decode_image(encoded);
  ASSERT_TRUE(decoded.is_ok()) << "quality " << quality;
  const double error = mean_abs_diff(original, decoded.value());
  // Coarse bound: even quality 10 keeps the mean error modest on smooth
  // field imagery; high quality gets close to lossless.
  EXPECT_LT(error, quality >= 80 ? 6.0 : 25.0) << "quality " << quality;
  EXPECT_GE(error, 0.0);
}

TEST_P(QualitySweep, CompressesRelativeToRaw) {
  const int quality = GetParam();
  const Image original = synthesize_field_image(64, 64, 78);
  const EncodedImage encoded =
      encode_image(original, ImageFormat::kAgJpeg, quality);
  EXPECT_LT(encoded.bytes.size(), original.byte_size())
      << "quality " << quality;
}

INSTANTIATE_TEST_SUITE_P(Qualities, QualitySweep,
                         ::testing::Values(1, 10, 25, 40, 55, 70, 85, 95, 100),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "q" + std::to_string(param_info.param);
                         });

TEST(QualityMonotonicity, SizeGrowsWithQuality) {
  const Image original = synthesize_field_image(64, 64, 79);
  std::size_t previous = 0;
  for (int quality : {10, 30, 50, 70, 90}) {
    const std::size_t size =
        encode_image(original, ImageFormat::kAgJpeg, quality).bytes.size();
    EXPECT_GE(size, previous) << "quality " << quality;
    previous = size;
  }
}

TEST(QualityMonotonicity, ErrorShrinksWithQuality) {
  const Image original = synthesize_field_image(64, 64, 80);
  double previous = 1e9;
  for (int quality : {10, 30, 50, 70, 90}) {
    auto decoded =
        decode_image(encode_image(original, ImageFormat::kAgJpeg, quality));
    ASSERT_TRUE(decoded.is_ok());
    const double error = mean_abs_diff(original, decoded.value());
    EXPECT_LE(error, previous * 1.05) << "quality " << quality;
    previous = error;
  }
}

TEST(QualityClamping, OutOfRangeQualitiesClampSafely) {
  const Image original = synthesize_field_image(24, 24, 81);
  auto lo = decode_image(encode_image(original, ImageFormat::kAgJpeg, -5));
  auto hi = decode_image(encode_image(original, ImageFormat::kAgJpeg, 900));
  EXPECT_TRUE(lo.is_ok());
  EXPECT_TRUE(hi.is_ok());
}

}  // namespace
}  // namespace harvest::preproc
