#include <gtest/gtest.h>

#include <cmath>

#include "preproc/transforms.hpp"

namespace harvest::preproc {
namespace {

Image constant_image(std::int64_t w, std::int64_t h, std::uint8_t value) {
  Image img(w, h, 3);
  for (std::size_t i = 0; i < img.byte_size(); ++i) img.data()[i] = value;
  return img;
}

// ----------------------------------------------------------------- resize

TEST(Resize, IdentityWhenSameSize) {
  const Image original = synthesize_field_image(24, 24, 1);
  const Image out = resize(original, 24, 24);
  EXPECT_EQ(mean_abs_diff(original, out), 0.0);
}

TEST(Resize, ConstantImageStaysConstant) {
  const Image flat = constant_image(37, 23, 99);
  for (ResizeFilter filter : {ResizeFilter::kNearest, ResizeFilter::kBilinear}) {
    const Image out = resize(flat, 224, 224, filter);
    for (std::size_t i = 0; i < out.byte_size(); ++i) {
      ASSERT_EQ(out.data()[i], 99);
    }
  }
}

TEST(Resize, OutputGeometry) {
  const Image original = synthesize_field_image(64, 48, 2);
  const Image out = resize(original, 100, 30);
  EXPECT_EQ(out.width(), 100);
  EXPECT_EQ(out.height(), 30);
  EXPECT_EQ(out.channels(), 3);
}

TEST(Resize, DownThenUpIsClose) {
  // A smooth image survives 2x down/up within a loose tolerance.
  const Image original = synthesize_field_image(64, 64, 3);
  const Image down = resize(original, 32, 32);
  const Image back = resize(down, 64, 64);
  EXPECT_LT(mean_abs_diff(original, back), 12.0);
}

TEST(Resize, NearestPreservesPalette) {
  // Nearest can only output values that exist in the input.
  Image two_tone(4, 4, 3);
  for (std::int64_t y = 0; y < 4; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) {
      for (std::int64_t c = 0; c < 3; ++c) {
        two_tone.at(x, y, c) = x < 2 ? 10 : 240;
      }
    }
  }
  const Image out = resize(two_tone, 9, 9, ResizeFilter::kNearest);
  for (std::size_t i = 0; i < out.byte_size(); ++i) {
    EXPECT_TRUE(out.data()[i] == 10 || out.data()[i] == 240);
  }
}

// ------------------------------------------------------------------- crop

TEST(CenterCrop, TakesMiddleRegion) {
  Image img(6, 6, 3);
  for (std::int64_t y = 0; y < 6; ++y) {
    for (std::int64_t x = 0; x < 6; ++x) {
      for (std::int64_t c = 0; c < 3; ++c) {
        img.at(x, y, c) = static_cast<std::uint8_t>(y * 6 + x);
      }
    }
  }
  const Image crop = center_crop(img, 2);
  EXPECT_EQ(crop.width(), 2);
  EXPECT_EQ(crop.at(0, 0, 0), 2 * 6 + 2);
  EXPECT_EQ(crop.at(1, 1, 0), 3 * 6 + 3);
}

TEST(CenterCropDeath, RejectsOversizedCrop) {
  const Image img = constant_image(4, 4, 1);
  EXPECT_DEATH(center_crop(img, 5), "crop larger");
}

// -------------------------------------------------------------- normalize

TEST(Normalize, ValuesAndLayout) {
  Image img(2, 1, 3);
  img.at(0, 0, 0) = 255;  // R
  img.at(0, 0, 1) = 0;    // G
  img.at(0, 0, 2) = 128;  // B
  img.at(1, 0, 0) = 0;
  img.at(1, 0, 1) = 255;
  img.at(1, 0, 2) = 0;
  Normalization n;
  n.mean = {0.5f, 0.5f, 0.5f};
  n.stddev = {0.5f, 0.5f, 0.5f};
  tensor::Tensor out = normalize_to_tensor(img, n);
  EXPECT_EQ(out.shape(), tensor::Shape({3, 1, 2}));
  const float* d = out.f32();
  // Planar layout: R plane first (both pixels), then G, then B.
  EXPECT_NEAR(d[0], 1.0f, 1e-5f);             // (1.0-0.5)/0.5
  EXPECT_NEAR(d[1], -1.0f, 1e-5f);            // (0-0.5)/0.5
  EXPECT_NEAR(d[2], -1.0f, 1e-5f);            // G pixel 0
  EXPECT_NEAR(d[3], 1.0f, 1e-5f);             // G pixel 1
  EXPECT_NEAR(d[4], 128.0f / 255.0f * 2 - 1, 1e-4f);
  EXPECT_NEAR(d[5], -1.0f, 1e-5f);
}

TEST(Normalize, IntoBatchSlot) {
  const Image img = constant_image(4, 4, 255);
  Normalization n;
  n.mean = {0.0f, 0.0f, 0.0f};
  n.stddev = {1.0f, 1.0f, 1.0f};
  tensor::Tensor batch(tensor::Shape{2, 3, 4, 4}, tensor::DType::kF32);
  normalize_into(img, n, batch, 1);
  const float* d = batch.f32();
  for (int i = 0; i < 48; ++i) EXPECT_EQ(d[i], 0.0f);         // slot 0 untouched
  for (int i = 48; i < 96; ++i) EXPECT_NEAR(d[i], 1.0f, 1e-6f);  // slot 1
}

// ------------------------------------------------------------- homography

TEST(Homography, IdentityMapsPointsToThemselves) {
  Homography h;
  const auto p = h.apply(3.5, -2.0);
  EXPECT_DOUBLE_EQ(p[0], 3.5);
  EXPECT_DOUBLE_EQ(p[1], -2.0);
}

TEST(Homography, FromQuadMapsCornersExactly) {
  const std::array<std::array<double, 2>, 4> src = {
      {{10, 20}, {90, 15}, {95, 80}, {5, 85}}};
  const std::array<std::array<double, 2>, 4> dst = {
      {{0, 0}, {100, 0}, {100, 100}, {0, 100}}};
  auto result = Homography::from_quad(src, dst);
  ASSERT_TRUE(result.is_ok());
  for (int i = 0; i < 4; ++i) {
    const auto p = result.value().apply(src[static_cast<std::size_t>(i)][0],
                                        src[static_cast<std::size_t>(i)][1]);
    EXPECT_NEAR(p[0], dst[static_cast<std::size_t>(i)][0], 1e-6);
    EXPECT_NEAR(p[1], dst[static_cast<std::size_t>(i)][1], 1e-6);
  }
}

TEST(Homography, DegenerateQuadRejected) {
  const std::array<std::array<double, 2>, 4> collinear = {
      {{0, 0}, {1, 1}, {2, 2}, {3, 3}}};
  const std::array<std::array<double, 2>, 4> square = {
      {{0, 0}, {1, 0}, {1, 1}, {0, 1}}};
  EXPECT_FALSE(Homography::from_quad(collinear, square).is_ok());
}

TEST(Homography, InverseComposesToIdentity) {
  const std::array<std::array<double, 2>, 4> src = {
      {{12, 8}, {80, 12}, {88, 90}, {8, 82}}};
  const std::array<std::array<double, 2>, 4> dst = {
      {{0, 0}, {64, 0}, {64, 64}, {0, 64}}};
  auto forward = Homography::from_quad(src, dst);
  ASSERT_TRUE(forward.is_ok());
  auto backward = forward.value().inverse();
  ASSERT_TRUE(backward.is_ok());
  for (double x : {5.0, 30.0, 61.0}) {
    for (double y : {9.0, 44.0, 79.0}) {
      const auto mid = forward.value().apply(x, y);
      const auto back = backward.value().apply(mid[0], mid[1]);
      EXPECT_NEAR(back[0], x, 1e-6);
      EXPECT_NEAR(back[1], y, 1e-6);
    }
  }
}

TEST(PerspectiveWarp, IdentityPreservesImage) {
  const Image original = synthesize_field_image(32, 24, 4);
  auto warped = perspective_warp(original, Homography(), 32, 24);
  ASSERT_TRUE(warped.is_ok());
  EXPECT_EQ(mean_abs_diff(original, warped.value()), 0.0);
}

TEST(PerspectiveWarp, OutOfBoundsIsBlack) {
  const Image original = constant_image(10, 10, 200);
  // Shift right by 5: left half of output samples outside the input.
  Homography shift({1, 0, 5, 0, 1, 0, 0, 0, 1});
  auto warped = perspective_warp(original, shift, 10, 10);
  ASSERT_TRUE(warped.is_ok());
  EXPECT_EQ(warped.value().at(0, 5, 0), 0);    // outside
  EXPECT_EQ(warped.value().at(9, 5, 0), 200);  // inside
}

TEST(PerspectiveWarp, CrsaRectificationIsInvertibleAndFillsCenter) {
  const Homography h = crsa_rectification(384, 216);
  ASSERT_TRUE(h.inverse().is_ok());
  const Image frame = synthesize_field_image(384, 216, 5);
  auto warped = perspective_warp(frame, h, 384, 216);
  ASSERT_TRUE(warped.is_ok());
  // Bottom-center of the output comes from inside the trapezoid: not black.
  int nonzero = 0;
  for (std::int64_t x = 100; x < 284; ++x) {
    if (warped.value().at(x, 200, 1) > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 150);
}

}  // namespace
}  // namespace harvest::preproc
