#include "serving/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "serving/native_backend.hpp"
#include "serving/scenarios.hpp"
#include "serving/sim_backend.hpp"
#include "tensor/ops.hpp"

namespace harvest::serving {
namespace {

/// A deliberately tiny ViT so real inference is fast in tests.
nn::ViTConfig tiny_config(std::int64_t classes = 4) {
  return nn::ViTConfig{"test-vit", 16, 4, 16, 2, 2, 2, classes};
}

BackendPtr make_tiny_backend(std::uint64_t seed = 7) {
  nn::ModelPtr model = nn::build_vit(tiny_config());
  nn::init_weights(*model, seed);
  return std::make_unique<NativeBackend>(std::move(model), /*max_batch=*/8);
}

preproc::EncodedImage tiny_input(std::uint64_t seed) {
  const preproc::Image img = preproc::synthesize_field_image(20, 20, seed);
  return preproc::encode_image(img, preproc::ImageFormat::kAgJpeg);
}

ModelDeploymentConfig tiny_deployment(const std::string& name) {
  ModelDeploymentConfig config;
  config.name = name;
  config.max_batch = 4;
  config.instances = 1;
  config.max_queue_delay_s = 1e-3;
  config.preproc.output_size = 16;
  return config;
}

// ----------------------------------------------------------------- server

TEST(Server, RegisterAndListModels) {
  Server server(1);
  ASSERT_TRUE(
      server.register_model(tiny_deployment("vit"), [] { return make_tiny_backend(); }).is_ok());
  EXPECT_EQ(server.model_names(), std::vector<std::string>{"vit"});
  EXPECT_NE(server.metrics("vit"), nullptr);
  EXPECT_EQ(server.metrics("ghost"), nullptr);
}

TEST(Server, DuplicateNameRejected) {
  Server server(1);
  ASSERT_TRUE(
      server.register_model(tiny_deployment("vit"), [] { return make_tiny_backend(); }).is_ok());
  EXPECT_FALSE(
      server.register_model(tiny_deployment("vit"), [] { return make_tiny_backend(); }).is_ok());
}

TEST(Server, BadConfigRejected) {
  Server server(1);
  ModelDeploymentConfig config = tiny_deployment("");
  EXPECT_FALSE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());
  config = tiny_deployment("x");
  config.instances = 0;
  EXPECT_FALSE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());
}

TEST(Server, UnknownModelIsNotFound) {
  Server server(1);
  InferenceRequest request;
  request.model = "ghost";
  const InferenceResponse response = server.infer_sync(std::move(request));
  EXPECT_EQ(response.status.code(), core::StatusCode::kNotFound);
}

TEST(Server, SingleRequestProducesPrediction) {
  Server server(1);
  ASSERT_TRUE(
      server.register_model(tiny_deployment("vit"), [] { return make_tiny_backend(); }).is_ok());
  InferenceRequest request;
  request.model = "vit";
  request.input = tiny_input(1);
  const InferenceResponse response = server.infer_sync(std::move(request));
  ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
  EXPECT_GE(response.predicted_class, 0);
  EXPECT_LT(response.predicted_class, 4);
  EXPECT_GT(response.confidence, 0.0f);
  EXPECT_LE(response.confidence, 1.0f);
  EXPECT_EQ(response.logits.size(), 4u);
  EXPECT_GT(response.timing.total_s, 0.0);
  EXPECT_GE(response.timing.batch_size, 1);
}

TEST(Server, ConcurrentRequestsAllAnswered) {
  Server server(2);
  ModelDeploymentConfig config = tiny_deployment("vit");
  config.instances = 2;
  ASSERT_TRUE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());

  constexpr int kRequests = 40;
  std::vector<std::future<InferenceResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    InferenceRequest request;
    request.model = "vit";
    request.input = tiny_input(static_cast<std::uint64_t>(i));
    auto submitted = server.submit(std::move(request));
    ASSERT_TRUE(submitted.is_ok());
    futures.push_back(std::move(submitted).value());
  }
  std::set<std::uint64_t> ids;
  for (auto& future : futures) {
    const InferenceResponse response = future.get();
    EXPECT_TRUE(response.status.is_ok());
    EXPECT_LE(response.timing.batch_size, 4);
    ids.insert(response.id);
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kRequests));  // no dupes

  const MetricsSnapshot snap = server.metrics("vit")->snapshot(1.0);
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.failed, 0u);
}

TEST(Server, ServedPredictionMatchesDirectModelExecution) {
  // Same seed ⇒ backend weights equal a locally built model; the served
  // argmax must match running the model by hand.
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(tiny_deployment("vit"),
                                  [] { return make_tiny_backend(777); })
                  .is_ok());

  const preproc::EncodedImage input = tiny_input(5);
  InferenceRequest request;
  request.model = "vit";
  request.input = input;
  const InferenceResponse served = server.infer_sync(std::move(request));
  ASSERT_TRUE(served.status.is_ok());

  nn::ModelPtr model = nn::build_vit(tiny_config());
  nn::init_weights(*model, 777);
  preproc::CpuPipeline pipeline;
  preproc::PreprocSpec spec;
  spec.output_size = 16;
  auto batch = pipeline.run(std::span(&input, 1), spec);
  ASSERT_TRUE(batch.is_ok());
  tensor::Tensor logits = model->forward(batch.value());
  EXPECT_EQ(served.predicted_class, tensor::argmax(logits.f32_span()));
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(served.logits[static_cast<std::size_t>(c)], logits.f32()[c],
                1e-4f);
  }
}

TEST(Server, CorruptInputFailsThatRequest) {
  Server server(1);
  ASSERT_TRUE(
      server.register_model(tiny_deployment("vit"), [] { return make_tiny_backend(); }).is_ok());
  InferenceRequest request;
  request.model = "vit";
  request.input.format = preproc::ImageFormat::kAgJpeg;
  request.input.bytes = {1, 2, 3};
  const InferenceResponse response = server.infer_sync(std::move(request));
  EXPECT_FALSE(response.status.is_ok());
  const MetricsSnapshot snap = server.metrics("vit")->snapshot(1.0);
  EXPECT_EQ(snap.failed, 1u);
}

TEST(Server, SimBackendServesTooAndReportsDeviceTime) {
  Server server(1);
  ModelDeploymentConfig config = tiny_deployment("sim");
  config.preproc.output_size = 32;  // ViT_Tiny input
  ASSERT_TRUE(server
                  .register_model(config,
                                  [] {
                                    return std::make_unique<SimBackend>(
                                        platform::make_engine_model(
                                            platform::a100(), "ViT_Tiny"),
                                        39, 64);
                                  })
                  .is_ok());
  InferenceRequest request;
  request.model = "sim";
  request.input = tiny_input(3);
  const InferenceResponse response = server.infer_sync(std::move(request));
  ASSERT_TRUE(response.status.is_ok());
  EXPECT_GT(response.timing.inference_s, 0.0);
  EXPECT_LT(response.predicted_class, 39);
}

TEST(Server, ShutdownThenSubmitIsUnavailable) {
  Server server(1);
  ASSERT_TRUE(
      server.register_model(tiny_deployment("vit"), [] { return make_tiny_backend(); }).is_ok());
  server.shutdown();
  InferenceRequest request;
  request.model = "vit";
  request.input = tiny_input(9);
  auto submitted = server.submit(std::move(request));
  EXPECT_FALSE(submitted.is_ok());
}

// Regression: `deployments_` was completely unguarded, so a thread
// registering a model while another submitted (or scraped metrics)
// raced on the std::map — a TSan-visible data race and, under rehash
// timing, a crash. The map is now behind a shared_mutex; this test is
// the TSan target (`HARVEST_SANITIZE=thread` build, `ctest -L obs`).
TEST(Server, ConcurrentRegisterAndSubmitIsRaceFree) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(tiny_deployment("warm"),
                                  [] { return make_tiny_backend(); })
                  .is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> answered{0};

  // Writer: keeps registering fresh deployments while readers run.
  std::thread registrar([&] {
    for (int i = 0; i < 8; ++i) {
      const std::string name = "late-" + std::to_string(i);
      ASSERT_TRUE(server
                      .register_model(tiny_deployment(name),
                                      [] { return make_tiny_backend(); })
                      .is_ok());
    }
  });
  // Reader 1: submits real work against the pre-registered model.
  std::thread submitter([&] {
    for (int i = 0; i < 6; ++i) {
      InferenceRequest request;
      request.model = "warm";
      request.input = tiny_input(static_cast<std::uint64_t>(i));
      const InferenceResponse response = server.infer_sync(std::move(request));
      if (response.status.is_ok()) answered.fetch_add(1);
    }
  });
  // Reader 2: hammers the read-only accessors the exporter uses.
  std::thread scraper([&] {
    while (!stop.load()) {
      (void)server.model_names();
      (void)server.metrics("warm");
      (void)server.queue_depth("warm");
      (void)server.prometheus_text();
    }
  });

  registrar.join();
  submitter.join();
  stop.store(true);
  scraper.join();

  EXPECT_EQ(answered.load(), 6);
  EXPECT_EQ(server.model_names().size(), 9u);  // warm + late-0..7
}

TEST(Server, ExpiredDeadlineDroppedBeforeExecution) {
  // A long batcher delay guarantees the request out-waits its own
  // deadline in the queue; the instance must answer without running
  // preprocessing or inference (predicted_class stays -1).
  Server server(1);
  ModelDeploymentConfig config = tiny_deployment("vit");
  config.max_batch = 8;                // never fills
  config.max_queue_delay_s = 0.05;     // held for 50 ms
  ASSERT_TRUE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());
  InferenceRequest request;
  request.model = "vit";
  request.input = tiny_input(7);
  request.deadline_s = 1e-3;  // expires long before the batcher flushes
  const InferenceResponse response = server.infer_sync(std::move(request));
  EXPECT_EQ(response.status.code(), core::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(response.predicted_class, -1);
  EXPECT_TRUE(response.logits.empty());
  const MetricsSnapshot snap = server.metrics("vit")->snapshot(1.0);
  EXPECT_EQ(snap.deadline_misses, 1u);
}

// -------------------------------------------------------------- scenarios

data::DatasetSpec mini_dataset_spec() {
  data::DatasetSpec spec = *data::find_dataset("Sugar Cane-Spittle Bug");
  spec.num_samples = 12;
  return spec;
}

TEST(Offline, ProcessesWholeDataset) {
  Server server(2);
  ModelDeploymentConfig config = tiny_deployment("vit");
  ASSERT_TRUE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());
  const data::SyntheticDataset dataset(mini_dataset_spec(), 4);
  const OfflineReport report = run_offline(server, "vit", dataset, 12, 8);
  EXPECT_EQ(report.processed, 12);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GT(report.throughput_img_per_s, 0.0);
  std::int64_t histogram_total = 0;
  for (std::int64_t count : report.class_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, 12);
}

TEST(RealTime, MeetsGenerousDeadlines) {
  Server server(1);
  ModelDeploymentConfig config = tiny_deployment("vit");
  config.max_queue_delay_s = 0.0;  // real-time: no batching wait
  ASSERT_TRUE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());
  const data::SyntheticDataset dataset(mini_dataset_spec(), 5);
  RealTimeConfig rt;
  rt.frames = 10;
  rt.frame_interval_s = 1e-3;  // run as fast as possible
  rt.deadline_s = 5.0;         // generous: everything passes
  const RealTimeReport report = run_realtime(server, "vit", dataset, rt);
  EXPECT_EQ(report.deadline_misses, 0);
  EXPECT_GT(report.frames_processed, 0);
  EXPECT_GT(report.mean_latency_s, 0.0);
}

TEST(RealTime, ImpossibleDeadlineIsDetected) {
  Server server(1);
  ModelDeploymentConfig config = tiny_deployment("vit");
  config.max_queue_delay_s = 0.0;
  ASSERT_TRUE(server.register_model(config, [] { return make_tiny_backend(); }).is_ok());
  const data::SyntheticDataset dataset(mini_dataset_spec(), 6);
  RealTimeConfig rt;
  rt.frames = 5;
  rt.frame_interval_s = 1e-3;
  rt.deadline_s = 1e-9;  // nothing finishes in a nanosecond
  const RealTimeReport report = run_realtime(server, "vit", dataset, rt);
  EXPECT_EQ(report.deadline_misses, report.frames_processed);
}

// ---------------------------------------------------------------- metrics

TEST(Metrics, SnapshotAggregates) {
  MetricsRegistry registry;
  RequestTiming timing;
  timing.total_s = 0.010;
  timing.queue_s = 0.002;
  timing.preprocess_s = 0.003;
  timing.inference_s = 0.005;
  timing.batch_size = 4;
  registry.record(timing, true, false);
  timing.total_s = 0.030;
  registry.record(timing, true, true);
  registry.record(timing, false, false);

  const MetricsSnapshot snap = registry.snapshot(2.0);
  EXPECT_EQ(snap.completed, 2u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(snap.throughput_img_per_s, 1.0);
  EXPECT_NEAR(snap.mean_latency_s, (0.010 + 0.030 + 0.030) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(snap.batch_sizes.mean(), 4.0);
  EXPECT_FALSE(snap.to_string().empty());
}

TEST(Metrics, ResetClears) {
  MetricsRegistry registry;
  RequestTiming timing;
  timing.total_s = 1.0;
  registry.record(timing, true, false);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot(1.0);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_latency_s, 0.0);
}

}  // namespace
}  // namespace harvest::serving
