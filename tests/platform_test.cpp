#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "platform/calibration.hpp"
#include "platform/device.hpp"
#include "platform/gemm_bench.hpp"
#include "platform/memory.hpp"
#include "platform/perf_model.hpp"

namespace harvest::platform {
namespace {

// ---------------------------------------------------------------- devices

TEST(Devices, Table1Values) {
  EXPECT_DOUBLE_EQ(a100().theory_tflops, 312.0);
  EXPECT_DOUBLE_EQ(a100().practical_tflops, 236.3);
  EXPECT_EQ(a100().cpu_cores, 128);
  EXPECT_DOUBLE_EQ(v100().theory_tflops, 112.0);
  EXPECT_DOUBLE_EQ(v100().practical_tflops, 92.6);
  EXPECT_EQ(v100().cpu_cores, 40);
  EXPECT_DOUBLE_EQ(jetson_orin_nano().theory_tflops, 17.0);
  EXPECT_DOUBLE_EQ(jetson_orin_nano().practical_tflops, 11.4);
  EXPECT_EQ(jetson_orin_nano().cpu_cores, 6);
  EXPECT_TRUE(jetson_orin_nano().unified_memory);
  EXPECT_FALSE(a100().unified_memory);
}

TEST(Devices, Table1EfficiencyBand) {
  // §4: "FLOPS efficiency achieved on each platform ranges from 75.74%
  // to 82.68%" (cloud platforms).
  EXPECT_NEAR(a100().practical_tflops / a100().theory_tflops, 0.7574, 1e-3);
  EXPECT_NEAR(v100().practical_tflops / v100().theory_tflops, 0.8268, 1e-3);
}

TEST(Devices, ScenarioAssignments) {
  EXPECT_TRUE(a100().supports(Scenario::kOnline));
  EXPECT_TRUE(a100().supports(Scenario::kOffline));
  EXPECT_FALSE(a100().supports(Scenario::kRealTime));
  EXPECT_TRUE(jetson_orin_nano().supports(Scenario::kRealTime));
  EXPECT_FALSE(jetson_orin_nano().supports(Scenario::kOnline));
}

TEST(Devices, RegistryLookup) {
  EXPECT_EQ(evaluated_platforms().size(), 3u);
  EXPECT_EQ(find_device("A100"), &a100());
  EXPECT_EQ(find_device("HostCPU"), &host_cpu());
  EXPECT_EQ(find_device("TPU"), nullptr);
}

TEST(Devices, PrecisionScaling) {
  // INT8 doubles, FP32 halves relative to native half precision.
  EXPECT_DOUBLE_EQ(a100().practical_tflops_at(Precision::kINT8), 2 * 236.3);
  EXPECT_DOUBLE_EQ(a100().practical_tflops_at(Precision::kFP32), 0.5 * 236.3);
  EXPECT_DOUBLE_EQ(a100().practical_tflops_at(Precision::kBF16), 236.3);
  EXPECT_DOUBLE_EQ(v100().practical_tflops_at(Precision::kFP16), 92.6);
}

TEST(Devices, EngineBudgetSubtractsReserve) {
  const DeviceSpec& jetson = jetson_orin_nano();
  EXPECT_LT(jetson.engine_memory_budget_bytes(), jetson.gpu_mem_bytes);
  EXPECT_GT(jetson.engine_memory_budget_bytes(), 0.0);
}

// ------------------------------------------------------------ calibration

TEST(Calibration, TwelveAnchors) {
  EXPECT_EQ(engine_anchors().size(), 12u);
  EXPECT_TRUE(find_anchor("A100", "ViT_Tiny").has_value());
  EXPECT_FALSE(find_anchor("A100", "AlexNet").has_value());
}

TEST(Calibration, JetsonWallsAreOomCloudAreNot) {
  for (const EngineAnchor& anchor : engine_anchors()) {
    if (anchor.device == "JetsonOrinNano") {
      EXPECT_TRUE(anchor.oom_wall) << anchor.model;
    } else {
      EXPECT_FALSE(anchor.oom_wall) << anchor.model;
      EXPECT_EQ(anchor.max_batch, 1024) << anchor.model;
    }
  }
}

// ------------------------------------------------------------ perf model

struct AnchorCase {
  EngineAnchor anchor;
};

class EngineAnchors : public ::testing::TestWithParam<EngineAnchor> {};

TEST_P(EngineAnchors, ModelReproducesPublishedThroughput) {
  const EngineAnchor& anchor = GetParam();
  const DeviceSpec* device = find_device(anchor.device);
  ASSERT_NE(device, nullptr);
  const EngineModel engine = make_engine_model(*device, anchor.model);
  const EngineEstimate est = engine.estimate(anchor.anchor_batch);
  ASSERT_FALSE(est.oom);
  EXPECT_NEAR(est.throughput_img_per_s, anchor.anchor_img_per_s,
              anchor.anchor_img_per_s * 1e-3)
      << anchor.device << "/" << anchor.model;
}

TEST_P(EngineAnchors, MaxBatchLandsOnPublishedWall) {
  const EngineAnchor& anchor = GetParam();
  const DeviceSpec* device = find_device(anchor.device);
  const EngineModel engine = make_engine_model(*device, anchor.model);
  if (anchor.oom_wall) {
    EXPECT_EQ(engine.max_batch(), anchor.max_batch)
        << anchor.device << "/" << anchor.model;
    EXPECT_TRUE(engine.estimate(anchor.max_batch + 1).oom);
    EXPECT_FALSE(engine.estimate(anchor.max_batch).oom);
  } else {
    // Cloud GPUs run the full sweep without OOM.
    EXPECT_GE(engine.max_batch(), 1024);
    EXPECT_FALSE(engine.estimate(1024).oom);
  }
}

TEST_P(EngineAnchors, LatencyIsMonotoneAndThroughputBounded) {
  const EngineAnchor& anchor = GetParam();
  const DeviceSpec* device = find_device(anchor.device);
  const EngineModel engine = make_engine_model(*device, anchor.model);
  double prev_latency = 0.0;
  double prev_throughput = 0.0;
  for (std::int64_t batch = 1; batch <= anchor.max_batch; batch *= 2) {
    const EngineEstimate est = engine.estimate(batch);
    ASSERT_FALSE(est.oom) << batch;
    EXPECT_GT(est.latency_s, prev_latency) << batch;
    EXPECT_GE(est.throughput_img_per_s, prev_throughput * 0.999) << batch;
    EXPECT_LE(est.throughput_img_per_s, engine.upper_bound_img_per_s());
    EXPECT_GT(est.mfu_vs_practical, 0.0);
    EXPECT_LT(est.mfu_vs_practical, 1.0);
    EXPECT_LT(est.mfu_vs_theory, est.mfu_vs_practical);
    prev_latency = est.latency_s;
    prev_throughput = est.throughput_img_per_s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAnchors, EngineAnchors, ::testing::ValuesIn(engine_anchors()),
    [](const ::testing::TestParamInfo<EngineAnchor>& param_info) {
      return param_info.param.device + "_" + param_info.param.model;
    });

TEST(EngineModel, UpperBoundMatchesTable3Arithmetic) {
  // Table 3: upper bound = practical TFLOPS / GFLOPs-per-image.
  const EngineModel engine = make_engine_model(a100(), "ViT_Tiny");
  EXPECT_NEAR(engine.upper_bound_img_per_s(), 236.3e12 / 1.37e9, 1.0);
  const EngineModel jetson = make_engine_model(jetson_orin_nano(), "ViT_Base");
  EXPECT_NEAR(jetson.upper_bound_img_per_s(), 11.4e12 / 16.86e9, 1.0);
}

TEST(EngineModel, IdealLatencyIsLinear) {
  const EngineModel engine = make_engine_model(v100(), "ResNet50");
  EXPECT_NEAR(engine.ideal_latency_s(64), 64.0 * engine.ideal_latency_s(1),
              1e-9);
  // Real latency exceeds the ideal everywhere (Fig. 6's solid vs dashed).
  EXPECT_GT(engine.estimate(64).latency_s, engine.ideal_latency_s(64));
}

TEST(EngineModel, SaturationIncreasesWithBatch) {
  const EngineModel engine = make_engine_model(a100(), "ViT_Small");
  EXPECT_LT(engine.saturation(1), engine.saturation(16));
  EXPECT_LT(engine.saturation(16), engine.saturation(1024));
  EXPECT_LE(engine.saturation(1 << 20), 1.0);
}

TEST(EngineModel, RooflineIsALowerEnvelopeAtLargeBatch) {
  const EngineModel engine = make_engine_model(a100(), "ViT_Base");
  // The uncalibrated roofline is optimistic: it must undercut the
  // calibrated latency at large batch.
  EXPECT_LT(engine.roofline_latency_s(1024), engine.estimate(1024).latency_s);
}

TEST(EngineModel, MemoryBudgetOverrideShrinksMaxBatch) {
  EngineModel engine = make_engine_model(jetson_orin_nano(), "ViT_Base");
  const std::int64_t before = engine.max_batch();
  engine.set_memory_budget_bytes(engine.memory_budget_bytes() / 2.0);
  EXPECT_LT(engine.max_batch(), before);
}

TEST(EngineModel, Int8RaisesThroughputFp32Lowers) {
  nn::ModelPtr model = nn::build_by_name("ResNet50");
  const auto spec = *nn::find_model_spec("ResNet50");
  const EngineModel native(a100(), spec, model->profile(1));
  const EngineModel int8(a100(), spec, model->profile(1), Precision::kINT8);
  const EngineModel fp32(a100(), spec, model->profile(1), Precision::kFP32);
  const double t_native = native.estimate(256).throughput_img_per_s;
  EXPECT_GT(int8.estimate(256).throughput_img_per_s, t_native);
  EXPECT_LT(fp32.estimate(256).throughput_img_per_s, t_native);
}

TEST(EngineModel, FallbackForUncalibratedPairsIsSane) {
  // Host CPU has no anchors; the heuristic must still give monotone,
  // bounded curves.
  const EngineModel engine = make_engine_model(host_cpu(), "ViT_Tiny");
  const EngineEstimate e1 = engine.estimate(1);
  const EngineEstimate e8 = engine.estimate(8);
  EXPECT_GT(e8.latency_s, e1.latency_s);
  EXPECT_GE(e8.throughput_img_per_s, e1.throughput_img_per_s);
  EXPECT_GT(engine.eff_max(), 0.0);
  EXPECT_LE(engine.eff_max(), 1.0);
}

// ---------------------------------------------------------------- memory

TEST(MemoryTracker, ReserveReleaseCycle) {
  MemoryTracker tracker(1000.0);
  EXPECT_TRUE(tracker.reserve("engine", 600.0).is_ok());
  EXPECT_DOUBLE_EQ(tracker.used_bytes(), 600.0);
  EXPECT_DOUBLE_EQ(tracker.available_bytes(), 400.0);
  EXPECT_TRUE(tracker.reserve("preproc", 400.0).is_ok());
  EXPECT_EQ(tracker.reservation_count(), 2u);
  EXPECT_TRUE(tracker.release("engine").is_ok());
  EXPECT_DOUBLE_EQ(tracker.used_bytes(), 400.0);
}

TEST(MemoryTracker, OverCommitIsOom) {
  MemoryTracker tracker(100.0);
  EXPECT_TRUE(tracker.reserve("a", 80.0).is_ok());
  const core::Status status = tracker.reserve("b", 30.0);
  EXPECT_EQ(status.code(), core::StatusCode::kOutOfMemory);
  EXPECT_DOUBLE_EQ(tracker.used_bytes(), 80.0);  // failed reserve is a no-op
}

TEST(MemoryTracker, ResizeExistingTag) {
  MemoryTracker tracker(100.0);
  EXPECT_TRUE(tracker.reserve("pool", 40.0).is_ok());
  EXPECT_TRUE(tracker.reserve("pool", 90.0).is_ok());  // grow within capacity
  EXPECT_DOUBLE_EQ(tracker.reserved_bytes("pool"), 90.0);
  EXPECT_FALSE(tracker.reserve("pool", 120.0).is_ok());
  EXPECT_DOUBLE_EQ(tracker.reserved_bytes("pool"), 90.0);
  EXPECT_TRUE(tracker.reserve("pool", 10.0).is_ok());  // shrink
  EXPECT_DOUBLE_EQ(tracker.used_bytes(), 10.0);
}

TEST(MemoryTracker, ReleaseUnknownTagFails) {
  MemoryTracker tracker(10.0);
  EXPECT_EQ(tracker.release("ghost").code(), core::StatusCode::kNotFound);
}

TEST(MemoryTracker, NegativeReservationRejected) {
  MemoryTracker tracker(10.0);
  EXPECT_EQ(tracker.reserve("x", -1.0).code(),
            core::StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- gemm bench

TEST(GemmBench, SimulatedRateApproachesPracticalPeak) {
  const GemmPoint big = simulate_gemm_flops(a100(), 8192, Precision::kBF16);
  EXPECT_NEAR(big.gflops / 1000.0, 236.3, 236.3 * 0.02);
  const GemmPoint small = simulate_gemm_flops(a100(), 64, Precision::kBF16);
  EXPECT_LT(small.gflops, big.gflops);  // overhead dominates small GEMMs
}

TEST(GemmBench, SweepIsMonotoneTowardPeak) {
  const auto sweep =
      simulate_gemm_sweep(v100(), {256, 1024, 4096, 8192}, Precision::kFP16);
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].gflops, sweep[i - 1].gflops);
  }
  EXPECT_LE(sweep.back().gflops, 92.6e3);
}

TEST(GemmBench, HostMeasurementProducesRealRate) {
  const GemmPoint point = measure_host_gemm_flops(128, 2);
  EXPECT_GT(point.gflops, 0.05);  // any real machine beats 50 MFLOPS
  EXPECT_GT(point.seconds, 0.0);
  EXPECT_EQ(point.size, 128);
}

}  // namespace
}  // namespace harvest::platform
