#include "core/plot.hpp"

#include <gtest/gtest.h>

namespace harvest::core {
namespace {

TEST(AsciiPlot, EmptyPlotSaysSo) {
  AsciiPlot plot(20, 5);
  EXPECT_EQ(plot.render(), "(no data to plot)\n");
}

TEST(AsciiPlot, RendersGlyphsAndLegend) {
  AsciiPlot plot(20, 5);
  plot.set_title("demo");
  Series series;
  series.label = "line";
  series.glyph = '#';
  series.xs = {0.0, 1.0, 2.0};
  series.ys = {0.0, 1.0, 2.0};
  plot.add_series(std::move(series));
  const std::string out = plot.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("# line"), std::string::npos);
  EXPECT_NE(out.find("x: 0 .. 2"), std::string::npos);
}

TEST(AsciiPlot, RisingSeriesRisesOnCanvas) {
  AsciiPlot plot(30, 10);
  Series series;
  series.glyph = 'o';
  for (int i = 0; i <= 10; ++i) {
    series.xs.push_back(i);
    series.ys.push_back(i);
  }
  plot.add_series(std::move(series));
  const std::string out = plot.render();
  // Split canvas rows; the first 'o' (top row) must be right of the
  // last 'o' (bottom row).
  std::vector<std::string> rows;
  std::size_t pos = 0;
  while ((pos = out.find("|", pos)) != std::string::npos) {
    const std::size_t end = out.find("|", pos + 1);
    if (end == std::string::npos) break;
    rows.push_back(out.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  ASSERT_GE(rows.size(), 2u);
  const std::size_t top_col = rows.front().find('o');
  const std::size_t bottom_col = rows.back().find('o');
  ASSERT_NE(top_col, std::string::npos);
  ASSERT_NE(bottom_col, std::string::npos);
  EXPECT_GT(top_col, bottom_col);
}

TEST(AsciiPlot, HlineSpansWidth) {
  AsciiPlot plot(24, 6);
  Series series;
  series.xs = {0, 10};
  series.ys = {0, 10};
  plot.add_series(std::move(series));
  plot.add_hline(5.0, '=');
  const std::string out = plot.render();
  EXPECT_NE(out.find(std::string(24, '=')), std::string::npos);
}

TEST(AsciiPlot, LogAxesAcceptWideRanges) {
  AsciiPlot plot(30, 8);
  plot.set_log_x(true);
  plot.set_log_y(true);
  Series series;
  series.xs = {1, 10, 100, 1000};
  series.ys = {0.001, 0.01, 0.1, 1.0};
  plot.add_series(std::move(series));
  const std::string out = plot.render();
  EXPECT_NE(out.find("(log)"), std::string::npos);
  // Log-linear data lands on the diagonal: distinct columns per point.
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, NonFinitePointsSkipped) {
  AsciiPlot plot(20, 5);
  Series series;
  series.xs = {0.0, 1.0, 2.0};
  series.ys = {1.0, std::numeric_limits<double>::infinity(), 3.0};
  plot.add_series(std::move(series));
  EXPECT_NE(plot.render().find('*'), std::string::npos);  // no crash
}

TEST(AsciiPlot, DegenerateSingePointStillRenders) {
  AsciiPlot plot(20, 5);
  Series series;
  series.xs = {5.0};
  series.ys = {7.0};
  plot.add_series(std::move(series));
  EXPECT_NE(plot.render().find('*'), std::string::npos);
}

}  // namespace
}  // namespace harvest::core
