#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace harvest::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesExecuteInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ActionsCanScheduleFurtherEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, ScheduleInIsRelativeToNow) {
  Simulator sim;
  double observed = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(0.5, [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 2.5);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(sim.run(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 1u);  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run(4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, SameTimeEventScheduledFromActionStillRuns) {
  Simulator sim;
  bool inner = false;
  sim.schedule_at(1.0, [&] { sim.schedule_at(1.0, [&] { inner = true; }); });
  sim.run();
  EXPECT_TRUE(inner);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(SimulatorDeath, PastSchedulingAborts) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "into the past");
}

TEST(Simulator, ManyEventsDeterministic) {
  auto run_once = [] {
    Simulator sim;
    std::vector<double> times;
    for (int i = 0; i < 1000; ++i) {
      const double when = static_cast<double>((i * 7919) % 100);
      sim.schedule_at(when, [&times, &sim] { times.push_back(sim.now()); });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace harvest::sim
