#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/cli.hpp"
#include "core/csv.hpp"
#include "core/log.hpp"
#include "core/table.hpp"
#include "core/time.hpp"
#include "core/units.hpp"

namespace harvest::core {
namespace {

// -------------------------------------------------------------- log level

TEST(LogLevel, ParseAcceptsKnownNamesCaseInsensitively) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("WARN", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("Warning", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_TRUE(parse_log_level("none", level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("loud", level));
  EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
}

TEST(LogLevel, ResolvePrecedenceIsCliThenEnvThenFallback) {
  ::unsetenv("HARVEST_LOG_LEVEL");
  EXPECT_EQ(resolve_log_level("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(resolve_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  ::setenv("HARVEST_LOG_LEVEL", "error", 1);
  EXPECT_EQ(resolve_log_level("", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(resolve_log_level("info", LogLevel::kWarn), LogLevel::kInfo);
  ::setenv("HARVEST_LOG_LEVEL", "gibberish", 1);
  EXPECT_EQ(resolve_log_level("", LogLevel::kWarn), LogLevel::kWarn);
  ::unsetenv("HARVEST_LOG_LEVEL");
}

// ------------------------------------------------------------- log format

TEST(LogFormat, ParseAndResolveFromEnvironment) {
  LogFormat format = LogFormat::kText;
  EXPECT_TRUE(parse_log_format("json", format));
  EXPECT_EQ(format, LogFormat::kJson);
  EXPECT_TRUE(parse_log_format("TEXT", format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_FALSE(parse_log_format("yaml", format));
  EXPECT_EQ(format, LogFormat::kText);  // untouched on failure

  ::unsetenv("HARVEST_LOG_FORMAT");
  EXPECT_EQ(resolve_log_format(), LogFormat::kText);
  ::setenv("HARVEST_LOG_FORMAT", "json", 1);
  EXPECT_EQ(resolve_log_format(), LogFormat::kJson);
  ::setenv("HARVEST_LOG_FORMAT", "gibberish", 1);
  EXPECT_EQ(resolve_log_format(), LogFormat::kText);
  ::unsetenv("HARVEST_LOG_FORMAT");
}

TEST(LogFormat, JsonLinesCarryLevelMessageAndTraceId) {
  // Text tags are padded to a fixed width so columns align.
  EXPECT_EQ(render_log_line(LogLevel::kWarn, "queue full", LogFormat::kText,
                            /*trace_id=*/0),
            "[harvest WARN ] queue full");
  // Text mode ignores the trace id; JSON mode stamps it.
  EXPECT_EQ(render_log_line(LogLevel::kWarn, "queue full", LogFormat::kJson,
                            /*trace_id=*/0),
            "{\"level\":\"warn\",\"msg\":\"queue full\"}");
  EXPECT_EQ(render_log_line(LogLevel::kError, "boom", LogFormat::kJson,
                            /*trace_id=*/42),
            "{\"level\":\"error\",\"msg\":\"boom\",\"trace_id\":42}");
  // Quotes, backslashes, and control characters stay valid JSON.
  EXPECT_EQ(render_log_line(LogLevel::kInfo, "a\"b\\c\nd", LogFormat::kJson,
                            /*trace_id=*/0),
            "{\"level\":\"info\",\"msg\":\"a\\\"b\\\\c\\nd\"}");
}

// ------------------------------------------------------------------ units

TEST(Units, FlopsScales) {
  EXPECT_EQ(format_flops(236.3e12), "236.3 TFLOPS");
  EXPECT_EQ(format_flops(92.6e9), "92.6 GFLOPS");
  EXPECT_EQ(format_flops(1.5e6), "1.5 MFLOPS");
  EXPECT_EQ(format_flops(12.0), "12.0 FLOPS");
}

TEST(Units, FlopCountScales) {
  EXPECT_EQ(format_flop_count(1.37e9), "1.4 GFLOPs");
  EXPECT_EQ(format_flop_count(16.86e9), "16.9 GFLOPs");
}

TEST(Units, BytesScales) {
  EXPECT_EQ(format_bytes(8.0 * static_cast<double>(kGiB)), "8.0 GiB");
  EXPECT_EQ(format_bytes(512.0 * static_cast<double>(kMiB)), "512.0 MiB");
  EXPECT_EQ(format_bytes(2048.0), "2.0 KiB");
  EXPECT_EQ(format_bytes(100.0), "100.0 B");
}

TEST(Units, SecondsScales) {
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(16.7e-3), "16.70 ms");
  EXPECT_EQ(format_seconds(5e-6), "5.00 us");
  EXPECT_EQ(format_seconds(3e-9), "3.0 ns");
}

TEST(Units, RateAndFixed) {
  EXPECT_EQ(format_rate(22879.3), "22879.3 img/s");
  EXPECT_EQ(format_rate(60.0, "qps"), "60.0 qps");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

// -------------------------------------------------------------------- csv

TEST(Csv, HeaderAndRows) {
  CsvWriter csv;
  csv.set_header({"model", "batch", "img_s"});
  csv.add_row({"ViT_Tiny", "1024", "22879.3"});
  EXPECT_EQ(csv.to_string(), "model,batch,img_s\nViT_Tiny,1024,22879.3\n");
  EXPECT_EQ(csv.row_count(), 1u);
}

TEST(Csv, QuotesSpecialFields) {
  CsvWriter csv;
  csv.add_row({"a,b", "quote\"inside", "line\nbreak", "plain"});
  EXPECT_EQ(csv.to_string(),
            "\"a,b\",\"quote\"\"inside\",\"line\nbreak\",plain\n");
}

TEST(Csv, WriteFileRoundTrips) {
  CsvWriter csv;
  csv.set_header({"a", "b"});
  csv.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/out.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buffer, got), "a,b\n1,2\n");
  std::remove(path.c_str());
  EXPECT_FALSE(csv.write_file("/no/such/dir/x.csv"));
}

TEST(Csv, NoHeaderMeansRowsOnly) {
  CsvWriter csv;
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.to_string(), "1,2\n");
}

// -------------------------------------------------------------------- cli

TEST(Cli, ParsesFlagFormats) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "hello", "--gamma",
                        "positional", "--flag"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get("beta", ""), "hello");
  // --gamma consumed "positional" as its value (not a flag).
  EXPECT_EQ(args.get("gamma", ""), "positional");
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, PositionalsPreserved) {
  const char* argv[] = {"prog", "one", "--k=v", "two"};
  CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(Cli, TypedFallbacks) {
  const char* argv[] = {"prog", "--rate=2.5", "--on=yes", "--off=0"};
  CliArgs args(4, argv);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(args.get_double("nope", 9.5), 9.5);
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
  EXPECT_TRUE(args.get_bool("absent", true));
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedGrid) {
  TextTable table("Title");
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"be", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);  // numeric right
  EXPECT_NE(out.find("| be    |    22 |"), std::string::npos);
}

TEST(Table, SeparatorAddsRule) {
  TextTable table;
  table.add_row({"a"});
  table.add_separator();
  table.add_row({"b"});
  const std::string out = table.render();
  // rule appears top, middle, bottom = 3 occurrences.
  std::size_t rules = 0;
  std::size_t pos = 0;
  while ((pos = out.find("+---+", pos)) != std::string::npos) {
    ++rules;
    pos += 1;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Table, RaggedRowsPadded) {
  TextTable table;
  table.set_header({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW(table.render());
}

// ------------------------------------------------------------------- time

TEST(WallTimer, MeasuresElapsedMonotonically) {
  WallTimer timer;
  const double t0 = timer.elapsed_seconds();
  const double t1 = timer.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 1.0);
}

}  // namespace
}  // namespace harvest::core
