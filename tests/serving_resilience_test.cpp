/// Resilience subsystem tests: seeded fault injection, retry/backoff
/// clients, admission control and graceful degradation — on the unit
/// level, against the real threaded server, and inside the DES. The
/// reproducibility contract (same seed → byte-identical fault sequence
/// and counters) is asserted explicitly; it is what makes the
/// fault × retry × shedding ablation curves comparable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/json.hpp"
#include "data/datasets.hpp"
#include "platform/device.hpp"
#include "serving/online_sim.hpp"
#include "serving/repository.hpp"
#include "serving/resilience/admission.hpp"
#include "serving/resilience/fault.hpp"
#include "serving/resilience/retry.hpp"
#include "serving/server.hpp"

namespace harvest::serving {
namespace {

using resilience::AdmissionConfig;
using resilience::AdmissionController;
using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::RetryingClient;
using resilience::RetryPolicy;

// ------------------------------------------------------------ test doubles

/// Instant backend with deterministic zero logits and a call counter.
class CountingBackend : public Backend {
 public:
  const std::string& name() const override { return name_; }
  std::int64_t max_batch() const override { return 8; }
  std::int64_t num_classes() const override { return 4; }
  std::int64_t input_size() const override { return 16; }
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override {
    calls_.fetch_add(1);
    BackendResult result;
    result.logits = tensor::Tensor::zeros(
        tensor::Shape{batch.shape()[0], num_classes()});
    return result;
  }
  int calls() const { return calls_.load(); }

 private:
  std::string name_ = "counting";
  std::atomic<int> calls_{0};
};

/// Fails the first `failures` infer calls with kInternal, then succeeds.
class FailNTimesBackend final : public CountingBackend {
 public:
  explicit FailNTimesBackend(int failures) : failures_(failures) {}
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override {
    if (fails_.fetch_add(1) < failures_) {
      return core::Status::internal("transient test failure");
    }
    return CountingBackend::infer(batch);
  }

 private:
  int failures_;
  std::atomic<int> fails_{0};
};

/// Sleeps per call so the batcher queue backs up under a burst.
class SlowBackend final : public CountingBackend {
 public:
  explicit SlowBackend(double seconds) : seconds_(seconds) {}
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds_));
    return CountingBackend::infer(batch);
  }

 private:
  double seconds_;
};

preproc::EncodedImage tiny_input(std::uint64_t seed) {
  const preproc::Image img = preproc::synthesize_field_image(20, 20, seed);
  return preproc::encode_image(img, preproc::ImageFormat::kAgJpeg);
}

ModelDeploymentConfig tiny_deployment(const std::string& name) {
  ModelDeploymentConfig config;
  config.name = name;
  config.max_batch = 4;
  config.instances = 1;
  config.max_queue_delay_s = 1e-3;
  config.preproc.output_size = 16;
  return config;
}

InferenceRequest request_for(const std::string& model, std::uint64_t seed) {
  InferenceRequest request;
  request.model = model;
  request.input = tiny_input(seed);
  return request;
}

const data::DatasetSpec& plant_village() {
  static const data::DatasetSpec spec = *data::find_dataset("Plant Village");
  return spec;
}

// ------------------------------------------------------------- fault plan

TEST(FaultPlan, ParsesRepositoryKeys) {
  const auto json = core::Json::parse(R"({
    "seed": 9,
    "transient_error_rate": 0.05,
    "transient_code": "internal",
    "latency_spike_rate": 0.01,
    "latency_spike_ms": 20.0,
    "crash_period_calls": 100,
    "crash_downtime_calls": 5,
    "crash_mtbf_s": 3.0,
    "crash_downtime_ms": 500.0,
    "stall_rate": 0.02,
    "stall_ms": 80.0
  })");
  ASSERT_TRUE(json.is_ok());
  const auto plan = resilience::parse_fault_plan(json.value());
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan.value().seed, 9u);
  EXPECT_DOUBLE_EQ(plan.value().transient_error_rate, 0.05);
  EXPECT_EQ(plan.value().transient_code, core::StatusCode::kInternal);
  EXPECT_DOUBLE_EQ(plan.value().latency_spike_s, 0.020);
  EXPECT_EQ(plan.value().crash_period_calls, 100);
  EXPECT_DOUBLE_EQ(plan.value().crash_downtime_s, 0.5);
  EXPECT_DOUBLE_EQ(plan.value().stall_s, 0.080);
  EXPECT_TRUE(plan.value().backend_faults());
  EXPECT_TRUE(plan.value().any());
}

TEST(FaultPlan, RejectsBadRatesAndCodes) {
  for (const char* bad : {R"({"transient_error_rate": 1.5})",
                          R"({"stall_rate": -0.1})",
                          R"({"transient_code": "teapot"})",
                          R"({"crash_period_calls": 10})"}) {
    const auto json = core::Json::parse(bad);
    ASSERT_TRUE(json.is_ok()) << bad;
    EXPECT_FALSE(resilience::parse_fault_plan(json.value()).is_ok()) << bad;
  }
}

TEST(FaultInjection, SameSeedSameDecisionStream) {
  FaultPlan plan;
  plan.seed = 11;
  plan.transient_error_rate = 0.3;
  plan.latency_spike_rate = 0.2;
  plan.latency_spike_s = 0.001;
  FaultInjector a(plan, /*instance_salt=*/0);
  FaultInjector b(plan, /*instance_salt=*/0);
  for (int i = 0; i < 200; ++i) {
    const FaultInjector::Decision da = a.next();
    const FaultInjector::Decision db = b.next();
    EXPECT_EQ(da.status.code(), db.status.code());
    EXPECT_EQ(da.delay_s, db.delay_s);
    EXPECT_EQ(da.fail_fast, db.fail_fast);
  }
  EXPECT_EQ(a.injected_errors(), b.injected_errors());
  EXPECT_GT(a.injected_errors(), 0);

  // A different salt is a different (still deterministic) stream.
  FaultInjector c(plan, /*instance_salt=*/1);
  int diverged = 0;
  for (int i = 0; i < 200; ++i) {
    if (c.next().status.code() != core::StatusCode::kOk) ++diverged;
  }
  EXPECT_NE(diverged, a.injected_errors());
}

TEST(FaultInjection, CrashClockFailsFastForTheDowntimeWindow) {
  FaultPlan plan;
  plan.crash_period_calls = 5;
  plan.crash_downtime_calls = 2;
  FaultInjector injector(plan, 0);
  int fail_fast = 0;
  for (int i = 0; i < 20; ++i) {
    const FaultInjector::Decision d = injector.next();
    if (d.fail_fast) {
      ++fail_fast;
      EXPECT_EQ(d.status.code(), core::StatusCode::kUnavailable);
    }
  }
  // Calls 5,6 then 10,11 then 15,16 then 20: two-call windows at each
  // period boundary.
  EXPECT_EQ(fail_fast, 7);
}

TEST(FaultInjection, FaultyBackendSpendsEngineTimeOnTransients) {
  FaultPlan plan;
  plan.transient_error_rate = 1.0;
  plan.transient_code = core::StatusCode::kUnavailable;
  auto counting = std::make_unique<CountingBackend>();
  CountingBackend* inner = counting.get();
  resilience::FaultyBackend faulty(std::move(counting), plan, 0);
  const tensor::Tensor batch =
      tensor::Tensor::zeros(tensor::Shape{2, 3, 16, 16});
  const auto result = faulty.infer(batch);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), core::StatusCode::kUnavailable);
  // Transient faults run the engine first (work done, answer lost).
  EXPECT_EQ(inner->calls(), 1);
}

TEST(FaultInjection, WrapWithFaultsIsPassthroughWithoutBackendFaults) {
  FaultPlan plan;
  plan.stall_rate = 0.5;  // DES-only fault: no backend wrapping needed
  auto backend = std::make_unique<CountingBackend>();
  Backend* raw = backend.get();
  BackendPtr wrapped = resilience::wrap_with_faults(std::move(backend), plan, 0);
  EXPECT_EQ(wrapped.get(), raw);

  plan.transient_error_rate = 0.1;
  BackendPtr decorated =
      resilience::wrap_with_faults(std::move(wrapped), plan, 0);
  EXPECT_NE(decorated.get(), raw);
}

// ----------------------------------------------------------------- retry

TEST(Retry, RetryableCodes) {
  EXPECT_TRUE(RetryPolicy::retryable(core::StatusCode::kUnavailable));
  EXPECT_TRUE(RetryPolicy::retryable(core::StatusCode::kResourceExhausted));
  EXPECT_TRUE(RetryPolicy::retryable(core::StatusCode::kInternal));
  EXPECT_FALSE(RetryPolicy::retryable(core::StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(RetryPolicy::retryable(core::StatusCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::retryable(core::StatusCode::kNotFound));
}

TEST(Retry, BackoffGrowsAndClampsDeterministically) {
  RetryPolicy policy;
  policy.initial_backoff_s = 1e-3;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 3e-3;
  policy.jitter = 0.0;  // deterministic for the arithmetic check
  core::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1, rng), 1e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2, rng), 2e-3);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3, rng), 3e-3);  // clamped
  EXPECT_DOUBLE_EQ(policy.backoff_s(7, rng), 3e-3);

  policy.jitter = 0.5;
  for (int i = 0; i < 50; ++i) {
    const double b = policy.backoff_s(2, rng);
    EXPECT_GT(b, 1e-3 - 1e-12);  // jitter shrinks by at most 50%
    EXPECT_LE(b, 2e-3);
  }
}

TEST(Retry, ParseValidatesPolicy) {
  const auto good = core::Json::parse(
      R"({"max_attempts": 4, "initial_backoff_ms": 2.0, "jitter": 0.25})");
  ASSERT_TRUE(good.is_ok());
  const auto policy = resilience::parse_retry_policy(good.value());
  ASSERT_TRUE(policy.is_ok());
  EXPECT_EQ(policy.value().max_attempts, 4);
  EXPECT_DOUBLE_EQ(policy.value().initial_backoff_s, 2e-3);
  EXPECT_TRUE(policy.value().enabled());

  const auto bad = core::Json::parse(R"({"max_attempts": 0})");
  ASSERT_TRUE(bad.is_ok());
  EXPECT_FALSE(resilience::parse_retry_policy(bad.value()).is_ok());
}

TEST(Retry, ClientRetriesUntilSuccess) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(tiny_deployment("flaky"),
                                  [] {
                                    return std::make_unique<FailNTimesBackend>(
                                        2);
                                  })
                  .is_ok());
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 1e-4;
  policy.max_backoff_s = 1e-3;
  RetryingClient client(server, policy);
  const InferenceResponse response =
      client.infer_sync(request_for("flaky", 1));
  EXPECT_TRUE(response.status.is_ok()) << response.status.message();
  const RetryingClient::Counters counters = client.counters();
  EXPECT_EQ(counters.attempts, 3u);  // fail, fail, success
  EXPECT_EQ(counters.retries, 2u);
  EXPECT_EQ(counters.abandoned, 0u);
  // The deployment registry saw the same retries.
  const MetricsSnapshot snap = server.metrics("flaky")->snapshot(1.0);
  EXPECT_EQ(snap.retries, 2u);
  EXPECT_EQ(snap.retry_abandoned, 0u);
  server.shutdown();
}

TEST(Retry, ClientAbandonsWhenAttemptsExhausted) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(tiny_deployment("dead"),
                                  [] {
                                    return std::make_unique<FailNTimesBackend>(
                                        1000000);
                                  })
                  .is_ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 1e-4;
  policy.max_backoff_s = 1e-3;
  RetryingClient client(server, policy);
  const InferenceResponse response =
      client.infer_sync(request_for("dead", 1));
  EXPECT_FALSE(response.status.is_ok());
  const RetryingClient::Counters counters = client.counters();
  EXPECT_EQ(counters.attempts, 3u);
  EXPECT_EQ(counters.abandoned, 1u);
  EXPECT_EQ(server.metrics("dead")->snapshot(1.0).retry_abandoned, 1u);
  server.shutdown();
}

TEST(Retry, ClientHonoursDeadlineBudget) {
  Server server(1);
  ASSERT_TRUE(server
                  .register_model(tiny_deployment("dead"),
                                  [] {
                                    return std::make_unique<FailNTimesBackend>(
                                        1000000);
                                  })
                  .is_ok());
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_s = 10.0;  // any backoff overruns the budget
  policy.max_backoff_s = 10.0;
  policy.jitter = 0.0;
  RetryingClient client(server, policy);
  InferenceRequest request = request_for("dead", 1);
  request.deadline_s = 0.5;
  const InferenceResponse response = client.infer_sync(std::move(request));
  EXPECT_FALSE(response.status.is_ok());
  const RetryingClient::Counters counters = client.counters();
  // One attempt, then the 10 s backoff would blow the 0.5 s budget.
  EXPECT_EQ(counters.attempts, 1u);
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.abandoned, 1u);
  server.shutdown();
}

// ------------------------------------------------------------- admission

TEST(Admission, DepthThresholdSheds) {
  AdmissionConfig config;
  config.max_queue_depth = 4;
  AdmissionController controller(config, /*instances=*/1);
  EXPECT_TRUE(controller.enabled());
  EXPECT_TRUE(controller.admit(0));
  EXPECT_TRUE(controller.admit(3));
  EXPECT_FALSE(controller.admit(4));
  EXPECT_FALSE(controller.admit(100));
}

TEST(Admission, DelayThresholdUsesPriorThenTracksObservations) {
  AdmissionConfig config;
  config.max_estimated_delay_s = 0.1;
  config.service_time_prior_s = 0.01;  // 10 ms/request prior
  AdmissionController controller(config, /*instances=*/2);
  // depth 10 → 10 × 10 ms / 2 instances = 50 ms < 100 ms.
  EXPECT_TRUE(controller.admit(10));
  EXPECT_DOUBLE_EQ(controller.estimated_delay_s(10), 0.05);
  EXPECT_FALSE(controller.admit(30));  // 150 ms > 100 ms

  // The engine turns out 10× slower than the prior; the EWMA converges
  // and the same depth now sheds.
  for (int i = 0; i < 50; ++i) controller.observe_batch(4, 0.4);
  EXPECT_NEAR(controller.service_time_s(), 0.1, 0.02);
  EXPECT_FALSE(controller.admit(10));
}

TEST(Admission, DisabledControllerAdmitsEverything) {
  AdmissionController controller(AdmissionConfig{}, 1);
  EXPECT_FALSE(controller.enabled());
  EXPECT_TRUE(controller.admit(1u << 20));
}

TEST(Admission, ParseValidatesConfig) {
  const auto good = core::Json::parse(
      R"({"max_queue_depth": 64, "max_estimated_delay_ms": 80.0})");
  ASSERT_TRUE(good.is_ok());
  const auto config = resilience::parse_admission_config(good.value());
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().max_queue_depth, 64u);
  EXPECT_DOUBLE_EQ(config.value().max_estimated_delay_s, 0.08);

  const auto bad = core::Json::parse(R"({"max_queue_depth": -1})");
  ASSERT_TRUE(bad.is_ok());
  EXPECT_FALSE(resilience::parse_admission_config(bad.value()).is_ok());
}

TEST(Admission, ServerShedsWithResourceExhausted) {
  Server server(1);
  ModelDeploymentConfig config = tiny_deployment("slow");
  config.admission.max_queue_depth = 2;
  config.max_queue_delay_s = 5e-3;
  ASSERT_TRUE(server
                  .register_model(config,
                                  [] {
                                    return std::make_unique<SlowBackend>(0.05);
                                  })
                  .is_ok());
  // Burst far past the depth bound; the worker drains 4 per 50 ms.
  std::vector<std::future<InferenceResponse>> accepted;
  std::int64_t sheds = 0;
  for (int i = 0; i < 32; ++i) {
    auto submitted = server.submit(request_for("slow", i));
    if (submitted.is_ok()) {
      accepted.push_back(std::move(submitted).value());
    } else {
      EXPECT_EQ(submitted.status().code(),
                core::StatusCode::kResourceExhausted);
      ++sheds;
    }
  }
  EXPECT_GT(sheds, 0);
  for (auto& f : accepted) f.get();
  const MetricsSnapshot snap = server.metrics("slow")->snapshot(1.0);
  EXPECT_EQ(snap.shed, static_cast<std::uint64_t>(sheds));
  EXPECT_EQ(snap.outcomes[static_cast<std::size_t>(RequestOutcome::kShed)],
            static_cast<std::uint64_t>(sheds));
  // The shed outcome is visible in the Prometheus exposition.
  const std::string text = server.prometheus_text();
  EXPECT_NE(text.find("harvest_requests_outcome_total"), std::string::npos);
  EXPECT_NE(text.find("outcome=\"shed\""), std::string::npos);
  server.shutdown();
}

TEST(Admission, ServerDegradesToInt8Twin) {
  Server server(1);
  ModelDeploymentConfig primary = tiny_deployment("crop");
  primary.admission.max_queue_depth = 1;
  primary.degrade_to = "crop_int8";
  ASSERT_TRUE(server
                  .register_model(primary,
                                  [] {
                                    return std::make_unique<SlowBackend>(0.05);
                                  })
                  .is_ok());
  ModelDeploymentConfig twin = tiny_deployment("crop_int8");
  twin.precision = "int8";
  ASSERT_TRUE(server
                  .register_model(twin,
                                  [] {
                                    return std::make_unique<CountingBackend>();
                                  })
                  .is_ok());
  std::vector<std::future<InferenceResponse>> accepted;
  for (int i = 0; i < 16; ++i) {
    auto submitted = server.submit(request_for("crop", i));
    if (submitted.is_ok()) accepted.push_back(std::move(submitted).value());
  }
  for (auto& f : accepted) f.get();
  // The fast twin admits what the primary could not; nothing is shed.
  const MetricsSnapshot primary_snap = server.metrics("crop")->snapshot(1.0);
  EXPECT_GT(primary_snap.degraded, 0u);
  EXPECT_EQ(primary_snap.shed, 0u);
  EXPECT_GT(server.metrics("crop_int8")->snapshot(1.0).completed, 0u);
  server.shutdown();
}

// ------------------------------------------------------------ repository

TEST(Repository, ParsesResilienceKeysAndValidatesDegradeTarget) {
  const auto config = core::Json::parse(R"({
    "models": [
      {"name": "vit", "architecture": "vit", "image": 16, "patch": 4,
       "dim": 16, "depth": 1, "heads": 2, "classes": 4, "max_batch": 4,
       "faults": {"transient_error_rate": 0.1, "seed": 5},
       "admission": {"max_queue_depth": 8},
       "degrade_to": "vit_int8"},
      {"name": "vit_int8", "architecture": "vit", "image": 16, "patch": 4,
       "dim": 16, "depth": 1, "heads": 2, "classes": 4, "max_batch": 4,
       "precision": "int8"}
    ]
  })");
  ASSERT_TRUE(config.is_ok());
  Server server(1);
  ASSERT_TRUE(load_repository(server, config.value()).is_ok());
  ASSERT_NE(server.admission("vit"), nullptr);
  EXPECT_TRUE(server.admission("vit")->enabled());
  EXPECT_EQ(server.admission("vit")->config().max_queue_depth, 8u);
  // The injected faults surface as real kUnavailable responses; a
  // deterministic 10% stream must fail at least once in 64 requests.
  std::int64_t failed = 0;
  for (int i = 0; i < 64; ++i) {
    const InferenceResponse response =
        server.infer_sync(request_for("vit", i));
    if (!response.status.is_ok()) ++failed;
  }
  EXPECT_GT(failed, 0);
  server.shutdown();
}

TEST(Repository, RejectsUnknownDegradeTarget) {
  const auto config = core::Json::parse(R"({
    "models": [
      {"name": "vit", "architecture": "vit", "image": 16, "patch": 4,
       "dim": 16, "depth": 1, "heads": 2, "classes": 4,
       "degrade_to": "ghost"}
    ]
  })");
  ASSERT_TRUE(config.is_ok());
  Server server(1);
  const core::Status status = load_repository(server, config.value());
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("ghost"), std::string::npos);
  server.shutdown();
}

TEST(Repository, RejectsSelfDegrade) {
  const auto config = core::Json::parse(R"({
    "models": [
      {"name": "vit", "architecture": "vit", "image": 16, "patch": 4,
       "dim": 16, "depth": 1, "heads": 2, "classes": 4,
       "degrade_to": "vit"}
    ]
  })");
  ASSERT_TRUE(config.is_ok());
  Server server(1);
  EXPECT_FALSE(load_repository(server, config.value()).is_ok());
  server.shutdown();
}

// ------------------------------------------------------------------- DES

OnlineSimConfig des_config(double qps) {
  OnlineSimConfig config;
  config.arrival_rate_qps = qps;
  config.duration_s = 5.0;
  config.max_batch = 32;
  config.max_queue_delay_s = 2e-3;
  config.instances = 1;
  config.seed = 42;
  config.deadline_s = 0.1;
  return config;
}

TEST(ResilienceSim, FaultPlanCountersAreBitReproducible) {
  OnlineSimConfig config = des_config(1000.0);
  config.faults.transient_error_rate = 0.05;
  config.faults.stall_rate = 0.02;
  config.faults.stall_s = 0.01;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_s = 1e-3;
  const OnlineSimReport a =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), config);
  const OnlineSimReport b =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), config);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);  // bitwise
  EXPECT_EQ(a.goodput_img_per_s, b.goodput_img_per_s);
  EXPECT_GT(a.retries, 0);
}

TEST(ResilienceSim, ArrivalsConservedAcrossOutcomes) {
  OnlineSimConfig config = des_config(1000.0);
  config.faults.transient_error_rate = 0.05;
  config.retry.max_attempts = 2;
  config.admission.max_queue_depth = 64;
  const OnlineSimReport report =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), config);
  // Every arrival ends exactly one way: completed, shed, rejected at
  // the capacity bound, or failed (faults + retries exhausted).
  EXPECT_EQ(report.arrivals,
            report.completed + report.shed + report.rejected + report.failed);
}

TEST(ResilienceSim, RetriesRecoverGoodputUnderTransientFaults) {
  OnlineSimConfig faulty = des_config(1000.0);
  faulty.faults.transient_error_rate = 0.05;
  const OnlineSimReport no_retry =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), faulty);
  faulty.retry.max_attempts = 3;
  faulty.retry.initial_backoff_s = 1e-3;
  const OnlineSimReport with_retry =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), faulty);
  EXPECT_GT(no_retry.failed, 0);
  EXPECT_GT(with_retry.retries, 0);
  EXPECT_LT(with_retry.failed, no_retry.failed);
  EXPECT_GT(with_retry.goodput_img_per_s, no_retry.goodput_img_per_s);
}

TEST(ResilienceSim, SheddingDominatesGoodputUnderOverload) {
  // Acceptance gate: at two overload points, the shedding deployment
  // strictly beats the no-shedding one on goodput (completions within
  // the deadline per second).
  for (double qps : {8000.0, 16000.0}) {
    OnlineSimConfig config = des_config(qps);
    config.max_batch = 64;
    const OnlineSimReport unshedded =
        simulate_online(platform::a100(), "ViT_Small", plant_village(),
                        config);
    config.admission.max_estimated_delay_s = 0.08;
    const OnlineSimReport shedded =
        simulate_online(platform::a100(), "ViT_Small", plant_village(),
                        config);
    EXPECT_GT(shedded.shed, 0) << qps;
    EXPECT_GT(shedded.goodput_img_per_s, unshedded.goodput_img_per_s) << qps;
    // The shed deployment keeps its p99 inside the same order of
    // magnitude as the deadline; the unshedded one does not.
    EXPECT_LT(shedded.p99_latency_s, unshedded.p99_latency_s) << qps;
  }
}

TEST(ResilienceSim, CrashWindowsCostLatency) {
  OnlineSimConfig healthy = des_config(2000.0);
  healthy.instances = 2;
  const OnlineSimReport baseline = simulate_online(
      platform::a100(), "ViT_Small", plant_village(), healthy);
  OnlineSimConfig crashing = healthy;
  crashing.faults.crash_mtbf_s = 1.0;
  crashing.faults.crash_downtime_s = 0.3;
  const OnlineSimReport crashed = simulate_online(
      platform::a100(), "ViT_Small", plant_village(), crashing);
  EXPECT_EQ(crashed.arrivals, baseline.arrivals);  // same arrival stream
  EXPECT_GT(crashed.p99_latency_s, baseline.p99_latency_s);
  EXPECT_GT(crashed.deadline_misses, baseline.deadline_misses);
}

TEST(ResilienceSim, StallsDelayButDoNotLoseRequests) {
  OnlineSimConfig config = des_config(500.0);
  config.faults.stall_rate = 0.1;
  config.faults.stall_s = 0.05;
  const OnlineSimReport report =
      simulate_online(platform::a100(), "ViT_Small", plant_village(), config);
  EXPECT_EQ(report.completed + report.rejected, report.arrivals);
  // A 50 ms stall inside a 100 ms budget shows up in the tail.
  EXPECT_GT(report.p99_latency_s, 0.05);
}

// -------------------------------------------------- outcome label plumbing

TEST(Outcomes, NamesAndPrometheusFamily) {
  EXPECT_STREQ(request_outcome_name(RequestOutcome::kOk), "ok");
  EXPECT_STREQ(request_outcome_name(RequestOutcome::kFailed), "failed");
  EXPECT_STREQ(request_outcome_name(RequestOutcome::kShed), "shed");
  EXPECT_STREQ(request_outcome_name(RequestOutcome::kDeadlineMissed),
               "deadline_missed");

  MetricsRegistry registry;
  RequestTiming timing;
  timing.total_s = 0.01;
  registry.record(timing, RequestOutcome::kOk);
  registry.record(timing, RequestOutcome::kFailed);
  registry.record(timing, RequestOutcome::kDeadlineMissed);
  registry.record(timing, RequestOutcome::kShed);
  const MetricsSnapshot snap = registry.snapshot(1.0);
  EXPECT_EQ(snap.outcomes[static_cast<std::size_t>(RequestOutcome::kOk)], 1u);
  EXPECT_EQ(snap.outcomes[static_cast<std::size_t>(RequestOutcome::kFailed)],
            1u);
  EXPECT_EQ(snap.outcomes[static_cast<std::size_t>(
                RequestOutcome::kDeadlineMissed)],
            1u);
  EXPECT_EQ(snap.outcomes[static_cast<std::size_t>(RequestOutcome::kShed)],
            1u);
  // Distinguishable in the exposition: one labelled sample per outcome.
  obs::PrometheusWriter writer;
  registry.render_prometheus(writer, "m");
  const std::string text = writer.str();
  for (const char* label :
       {"outcome=\"ok\"", "outcome=\"failed\"", "outcome=\"shed\"",
        "outcome=\"deadline_missed\""}) {
    EXPECT_NE(text.find(label), std::string::npos) << label;
  }
}

}  // namespace
}  // namespace harvest::serving
