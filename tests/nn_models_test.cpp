#include <gtest/gtest.h>

#include <cstdio>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

/// Table 3 reproduction: the real graphs must land on the paper's
/// reported parameter counts and GFLOPs/image (projection-MAC
/// convention) within a small tolerance.
class Table3 : public ::testing::TestWithParam<ModelSpec> {};

TEST_P(Table3, ParameterCountMatchesPaper) {
  const ModelSpec& spec = GetParam();
  // Table 3's counts reproduce with the 39-class agricultural head for
  // the ViTs (5.39/21.40/85.80M) but with the original 1000-class
  // ImageNet head for ResNet-50 (25.56M) — see EXPERIMENTS.md.
  const std::int64_t head = spec.name == "ResNet50" ? 1000 : 39;
  ModelPtr model = build_by_name(spec.name, head);
  ASSERT_NE(model, nullptr);
  const double params_m = static_cast<double>(model->param_count()) / 1e6;
  EXPECT_NEAR(params_m, spec.reported_params_m,
              spec.reported_params_m * 0.02)
      << spec.name;
}

TEST_P(Table3, ProjectionMacsMatchPaperGflops) {
  const ModelSpec& spec = GetParam();
  ModelPtr model = build_by_name(spec.name);
  ASSERT_NE(model, nullptr);
  const double gflops = model->profile(1).projection_macs() / 1e9;
  EXPECT_NEAR(gflops, spec.reported_gflops_per_image,
              spec.reported_gflops_per_image * 0.02)
      << spec.name;
}

TEST_P(Table3, InputSizeMatches) {
  const ModelSpec& spec = GetParam();
  ModelPtr model = build_by_name(spec.name);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->input_shape()[1], spec.input_size);
  EXPECT_EQ(model->input_shape()[2], spec.input_size);
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, Table3, ::testing::ValuesIn(evaluated_models()),
    [](const ::testing::TestParamInfo<ModelSpec>& param_info) {
      return param_info.param.name;
    });

TEST(Table3, FourModelsInPaperOrder) {
  const auto& specs = evaluated_models();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "ViT_Tiny");
  EXPECT_EQ(specs[1].name, "ViT_Small");
  EXPECT_EQ(specs[2].name, "ViT_Base");
  EXPECT_EQ(specs[3].name, "ResNet50");
}

TEST(Table3, FindModelSpec) {
  EXPECT_TRUE(find_model_spec("ViT_Base").has_value());
  EXPECT_FALSE(find_model_spec("AlexNet").has_value());
  EXPECT_EQ(build_by_name("nonsense"), nullptr);
}

TEST(ComputeBreakdown, ViTTinyMlpAttentionSplitMatchesPaper) {
  // §4.0.2: "MLP layers account for 81.73% in ViT Tiny, attention 18.23%".
  ModelPtr model = build_by_name("ViT_Tiny");
  const ModelProfile profile = model->profile(1);
  const double dense = profile.macs_of(OpKind::kDense);
  const double attn = profile.macs_of(OpKind::kAttention);
  const double mlp_share = dense / (dense + attn);
  const double attn_share = attn / (dense + attn);
  EXPECT_NEAR(mlp_share, 0.8173, 0.01);
  EXPECT_NEAR(attn_share, 0.1823, 0.01);
}

TEST(ComputeBreakdown, ResNetIsConvDominated) {
  // §4.0.2: "convolution operations account for 99.5% of ResNet50".
  ModelPtr model = build_by_name("ResNet50");
  const ModelProfile profile = model->profile(1);
  EXPECT_NEAR(profile.share_of(OpKind::kConv), 0.995, 0.005);
  EXPECT_DOUBLE_EQ(profile.macs_of(OpKind::kAttention), 0.0);
}

TEST(ComputeBreakdown, ViTBaseIsMoreMlpDominatedThanTiny) {
  // Attention matmuls shrink relative to projections as dim grows at
  // fixed token count.
  ModelPtr tiny = build_by_name("ViT_Tiny");
  ModelPtr base = build_by_name("ViT_Base");
  const ModelProfile pt = tiny->profile(1);
  const ModelProfile pb = base->profile(1);
  EXPECT_GT(pb.share_of(OpKind::kDense), pt.share_of(OpKind::kDense));
}

TEST(Profile, PeakActivationGrowsWithModelSize) {
  ModelPtr tiny = build_by_name("ViT_Tiny");
  ModelPtr base = build_by_name("ViT_Base");
  EXPECT_GT(base->profile(1).peak_activation_bytes_fp16,
            tiny->profile(1).peak_activation_bytes_fp16);
}

TEST(Profile, ParamBytesAreTwoPerParamAtFp16) {
  ModelPtr model = build_by_name("ViT_Tiny");
  const ModelProfile profile = model->profile(1);
  EXPECT_DOUBLE_EQ(profile.param_bytes_fp16,
                   2.0 * static_cast<double>(profile.param_count));
}

TEST(Serialize, RoundTripIsBitExact) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr original = build_vit(config);
  init_weights(*original, 1234);

  const std::string path = ::testing::TempDir() + "/mini.hvst";
  ASSERT_TRUE(save_weights(*original, path).is_ok());

  ModelPtr loaded = build_vit(config);
  init_weights(*loaded, 999);  // different weights before loading
  ASSERT_TRUE(load_weights(*loaded, path).is_ok());

  auto orig_params = original->params();
  auto loaded_params = loaded->params();
  ASSERT_EQ(orig_params.size(), loaded_params.size());
  for (std::size_t i = 0; i < orig_params.size(); ++i) {
    EXPECT_EQ(tensor::max_abs_diff(*orig_params[i].tensor,
                                   *loaded_params[i].tensor),
              0.0f)
        << orig_params[i].name;
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsArchitectureMismatch) {
  ViTConfig small{"mini", 8, 2, 16, 2, 2, 2, 5};
  ViTConfig bigger{"mini", 8, 2, 24, 2, 2, 2, 5};
  ModelPtr a = build_vit(small);
  init_weights(*a, 1);
  const std::string path = ::testing::TempDir() + "/mismatch.hvst";
  ASSERT_TRUE(save_weights(*a, path).is_ok());
  ModelPtr b = build_vit(bigger);
  const core::Status status = load_weights(*b, path);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsNotFound) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr model = build_vit(config);
  EXPECT_EQ(load_weights(*model, "/nonexistent/dir/x.hvst").code(),
            core::StatusCode::kNotFound);
}

TEST(Serialize, RejectsCorruptMagic) {
  const std::string path = ::testing::TempDir() + "/garbage.hvst";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint at all", f);
  std::fclose(f);
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr model = build_vit(config);
  EXPECT_EQ(load_weights(*model, path).code(),
            core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Init, DeterministicByName) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr model = build_vit(config);
  init_weights(*model, 77);
  // Norm gains are 1, biases 0, weights non-trivial.
  for (NamedParam& p : model->params()) {
    const std::string& name = p.name;
    if (name.ends_with(".gamma")) {
      for (float v : p.tensor->f32_span()) EXPECT_EQ(v, 1.0f);
    } else if (name.ends_with(".bias") || name.ends_with(".beta")) {
      for (float v : p.tensor->f32_span()) EXPECT_EQ(v, 0.0f);
    } else if (name.ends_with(".weight")) {
      EXPECT_GT(static_cast<double>(
                    std::abs(tensor::sum(*p.tensor))) +
                    std::abs(static_cast<double>(p.tensor->f32()[0])),
                0.0)
          << name;
    }
  }
}

}  // namespace
}  // namespace harvest::nn
