/// Cross-module integration: the full offline drone workflow of
/// Fig. 3a — survey → stitch → tile → serve every tile through the
/// real serving runtime → heatmap — end to end in one test binary.

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "tensor/ops.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "serving/native_backend.hpp"
#include "serving/server.hpp"
#include "stitch/stitch.hpp"

namespace harvest {
namespace {

TEST(OfflineWorkflow, SurveyToHeatmapThroughServer) {
  // 1. Survey and stitch a small field.
  stitch::SurveyConfig survey;
  survey.field_width = 128;
  survey.field_height = 96;
  survey.capture_size = 48;
  survey.overlap = 0.3;
  survey.seed = 77;
  const auto captures = stitch::simulate_survey(survey);
  ASSERT_GT(captures.size(), 3u);
  const preproc::Image mosaic = stitch::composite_mosaic(
      captures, survey.field_width, survey.field_height);

  // 2. Tile for the model.
  const auto tiles = stitch::tile_mosaic(mosaic, 32, 32);
  ASSERT_EQ(tiles.size(), 4u * 3u);

  // 3. Serve every tile through the runtime (real CNN, batched).
  serving::Server server(2);
  serving::ModelDeploymentConfig deployment;
  deployment.name = "residue";
  deployment.max_batch = 4;
  deployment.max_queue_delay_s = 2e-3;
  deployment.preproc.output_size = 16;
  ASSERT_TRUE(server
                  .register_model(deployment,
                                  [] {
                                    nn::ResNetConfig config{
                                        "residue-mini", 16, {1}, 2};
                                    nn::ModelPtr model =
                                        nn::build_resnet(config);
                                    nn::init_weights(*model, 5);
                                    return std::make_unique<
                                        serving::NativeBackend>(
                                        std::move(model), 4);
                                  })
                  .is_ok());

  std::vector<std::future<serving::InferenceResponse>> futures;
  for (const stitch::Tile& tile : tiles) {
    serving::InferenceRequest request;
    request.model = "residue";
    request.input =
        preproc::encode_image(tile.image, preproc::ImageFormat::kRaw);
    auto submitted = server.submit(std::move(request));
    ASSERT_TRUE(submitted.is_ok());
    futures.push_back(std::move(submitted).value());
  }

  std::vector<double> scores;
  for (auto& future : futures) {
    const serving::InferenceResponse response = future.get();
    ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
    ASSERT_EQ(response.logits.size(), 2u);
    float row[2] = {response.logits[0], response.logits[1]};
    nn::softmax_rows(row, 1, 2);
    scores.push_back(static_cast<double>(row[1]));
    EXPECT_GE(scores.back(), 0.0);
    EXPECT_LE(scores.back(), 1.0);
  }

  // 4. Render the heatmap and write it out.
  const preproc::Image heat = stitch::render_heatmap(
      tiles, scores, mosaic.width(), mosaic.height(), 32);
  EXPECT_EQ(heat.width(), mosaic.width());
  const std::string path = ::testing::TempDir() + "/workflow_heat.ppm";
  ASSERT_TRUE(stitch::write_ppm(heat, path).is_ok());
  std::remove(path.c_str());

  // The deployment batched the tiles (not all singles).
  const serving::MetricsSnapshot snap =
      server.metrics("residue")->snapshot(1.0);
  EXPECT_EQ(snap.completed, tiles.size());
  EXPECT_GT(snap.batch_sizes.mean(), 1.0);
}

TEST(OfflineWorkflow, DeterministicScoresAcrossRuns) {
  // The whole chain — survey, stitch, tiles, model, serving — is
  // deterministic end to end.
  auto run_once = [] {
    stitch::SurveyConfig survey;
    survey.field_width = 96;
    survey.field_height = 64;
    survey.capture_size = 32;
    survey.seed = 13;
    const auto captures = stitch::simulate_survey(survey);
    const preproc::Image mosaic =
        stitch::composite_mosaic(captures, 96, 64);
    const auto tiles = stitch::tile_mosaic(mosaic, 32, 32);

    nn::ViTConfig config{"det-vit", 16, 4, 16, 1, 2, 2, 3};
    nn::ModelPtr model = nn::build_vit(config);
    nn::init_weights(*model, 9);
    serving::NativeBackend backend(std::move(model), 8);

    std::vector<std::int64_t> predictions;
    preproc::CpuPipeline pipeline;
    preproc::PreprocSpec spec;
    spec.output_size = 16;
    for (const stitch::Tile& tile : tiles) {
      const preproc::EncodedImage encoded =
          preproc::encode_image(tile.image, preproc::ImageFormat::kRaw);
      auto batch = pipeline.run(std::span(&encoded, 1), spec);
      auto result = backend.infer(batch.value());
      predictions.push_back(tensor::argmax(result.value().logits.f32_span()));
    }
    return predictions;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace harvest
