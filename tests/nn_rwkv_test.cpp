#include "nn/rwkv.hpp"

#include "nn/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

Tensor random_input(Shape shape, std::uint64_t seed) {
  Tensor t(shape, DType::kF32);
  core::Rng rng(seed);
  for (float& v : t.f32_span()) v = rng.next_float() - 0.5f;
  return t;
}

RwkvConfig mini_config() {
  RwkvConfig config;
  config.name = "mini-rwkv";
  config.image = 8;
  config.patch = 2;
  config.dim = 16;
  config.depth = 2;
  config.num_classes = 5;
  return config;
}

TEST(RwkvBlock, PreservesShape) {
  RwkvBlock block("blk", 16, 9);
  std::vector<NamedParam> params;
  block.collect_params(params);
  core::Rng rng(1);
  for (NamedParam& p : params) {
    for (float& v : p.tensor->f32_span()) v = rng.next_float() * 0.1f;
  }
  Tensor input = random_input(Shape{2, 9, 16}, 2);
  Tensor out = block.forward(input);
  EXPECT_EQ(out.shape(), input.shape());
  for (float v : out.f32_span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RwkvBlock, ZeroWeightsAreIdentity) {
  // Zero projections make both branches output zero; the residuals
  // dominate, exactly as for the transformer block.
  RwkvBlock block("blk", 8, 5);
  Tensor input = random_input(Shape{1, 5, 8}, 3);
  Tensor out = block.forward(input);
  EXPECT_LT(tensor::max_abs_diff(out, input), 1e-6f);
}

TEST(RwkvBlock, IsDeterministic) {
  RwkvBlock block("blk", 16, 7);
  std::vector<NamedParam> params;
  block.collect_params(params);
  core::Rng rng(4);
  for (NamedParam& p : params) {
    for (float& v : p.tensor->f32_span()) v = rng.next_float() * 0.2f;
  }
  Tensor input = random_input(Shape{1, 7, 16}, 5);
  EXPECT_EQ(tensor::max_abs_diff(block.forward(input), block.forward(input)),
            0.0f);
}

TEST(RwkvBlock, ScanIsCausal) {
  // Changing a later token must not affect earlier outputs.
  RwkvBlock block("blk", 8, 6);
  std::vector<NamedParam> params;
  block.collect_params(params);
  core::Rng rng(6);
  for (NamedParam& p : params) {
    for (float& v : p.tensor->f32_span()) v = rng.next_float() * 0.3f;
  }
  Tensor a = random_input(Shape{1, 6, 8}, 7);
  Tensor b = a.clone();
  // Perturb the last token only.
  for (int c = 0; c < 8; ++c) b.f32()[5 * 8 + c] += 1.0f;
  Tensor out_a = block.forward(a);
  Tensor out_b = block.forward(b);
  for (int t = 0; t < 5; ++t) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(out_a.f32()[t * 8 + c], out_b.f32()[t * 8 + c])
          << "token " << t;
    }
  }
  // The perturbed token itself must change.
  float diff = 0.0f;
  for (int c = 0; c < 8; ++c) {
    diff += std::fabs(out_a.f32()[5 * 8 + c] - out_b.f32()[5 * 8 + c]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(RwkvModel, ForwardProducesFiniteLogits) {
  ModelPtr model = build_rwkv(mini_config());
  init_weights(*model, 42);
  Tensor input = random_input(Shape{2, 3, 8, 8}, 8);
  Tensor logits = model->forward(input);
  EXPECT_EQ(logits.shape(), Shape({2, 5}));
  for (float v : logits.f32_span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RwkvModel, ComputeIsLinearInTokens) {
  // Quadrupling the token count (2x image edge, same patch) must scale
  // total MACs by ~4x — the defining property vs attention (§3.1).
  RwkvConfig small = mini_config();
  RwkvConfig large = mini_config();
  large.image = 16;  // 4x the patches
  ModelPtr small_model = build_rwkv(small);
  ModelPtr large_model = build_rwkv(large);
  const double ratio = large_model->profile(1).total_macs() /
                       small_model->profile(1).total_macs();
  EXPECT_NEAR(ratio, 4.0, 0.35);

  // The equivalent ViT grows faster than 4x.
  ViTConfig vit_small{"v", 8, 2, 16, 2, 2, 4, 5};
  ViTConfig vit_large{"v", 16, 2, 16, 2, 2, 4, 5};
  const double vit_ratio = build_vit(vit_large)->profile(1).total_macs() /
                           build_vit(vit_small)->profile(1).total_macs();
  EXPECT_GT(vit_ratio, ratio + 0.3);
}

TEST(RwkvModel, HasNoAttentionMacs) {
  ModelPtr model = build_rwkv(mini_config());
  EXPECT_DOUBLE_EQ(model->profile(1).macs_of(OpKind::kAttention), 0.0);
  EXPECT_GT(model->profile(1).macs_of(OpKind::kDense), 0.0);
}

TEST(RwkvModel, SerializationRoundTrip) {
  ModelPtr original = build_rwkv(mini_config());
  init_weights(*original, 9);
  const std::string path = ::testing::TempDir() + "/rwkv.hvst";
  ASSERT_TRUE(save_weights(*original, path).is_ok());
  ModelPtr loaded = build_rwkv(mini_config());
  init_weights(*loaded, 100);
  ASSERT_TRUE(load_weights(*loaded, path).is_ok());
  Tensor input = random_input(Shape{1, 3, 8, 8}, 10);
  EXPECT_EQ(tensor::max_abs_diff(original->forward(input),
                                 loaded->forward(input)),
            0.0f);
  std::remove(path.c_str());
}

TEST(RwkvModel, BatchInvariance) {
  ModelPtr model = build_rwkv(mini_config());
  init_weights(*model, 11);
  Tensor both = random_input(Shape{2, 3, 8, 8}, 12);
  Tensor first(Shape{1, 3, 8, 8}, DType::kF32);
  const std::int64_t per = 3 * 8 * 8;
  std::copy_n(both.f32(), per, first.f32());
  Tensor batched = model->forward(both);
  Tensor single = model->forward(first);
  for (int c = 0; c < 5; ++c) {
    EXPECT_NEAR(batched.f32()[c], single.f32()[c], 1e-4f);
  }
}

}  // namespace
}  // namespace harvest::nn
