#include "platform/network.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "platform/perf_model.hpp"

namespace harvest::platform {
namespace {

TEST(Network, PresetsOrderedByCapacity) {
  EXPECT_LT(lte_rural().uplink_bps, wifi_backhaul().uplink_bps);
  EXPECT_LT(wifi_backhaul().uplink_bps, nr5g().uplink_bps);
  EXPECT_LT(nr5g().uplink_bps, fiber().uplink_bps);
  EXPECT_GT(lte_rural().rtt_s, fiber().rtt_s);
}

TEST(Network, RegistryLookup) {
  EXPECT_EQ(evaluated_links().size(), 4u);
  EXPECT_EQ(find_link("LTE-rural"), &lte_rural());
  EXPECT_EQ(find_link("Carrier-pigeon"), nullptr);
}

TEST(Network, TransferTimeArithmetic) {
  // 1 MB over an 8 Mbps uplink = (1e6+512)·8 / 8e6 s ≈ 1.0005 s.
  EXPECT_NEAR(lte_rural().transfer_time_s(1e6), 1.0005, 1e-3);
  // Request latency adds the RTT.
  EXPECT_NEAR(lte_rural().request_latency_s(1e6), 1.0005 + 0.060, 1e-3);
}

TEST(Network, MaxRateIsInverseTransferTime) {
  const LinkSpec& link = nr5g();
  const double bytes = 250e3;
  EXPECT_NEAR(link.max_request_rate(bytes) * link.transfer_time_s(bytes), 1.0,
              1e-9);
}

TEST(Network, LargerPayloadsTakeLonger) {
  for (const LinkSpec* link : evaluated_links()) {
    EXPECT_GT(link->transfer_time_s(1e6), link->transfer_time_s(1e4))
        << link->name;
  }
}

TEST(Network, Crsa4kSaturatesWirelessBelowEngineCapacity) {
  // The quantitative §2.2.1 story: raw 4K frames cannot reach the cloud
  // fast enough over any wireless uplink to keep an A100 busy.
  const auto crsa = data::find_dataset("CRSA");
  ASSERT_TRUE(crsa.has_value());
  const double bytes = crsa->image_stats().mean_encoded_bytes;
  const EngineModel engine = make_engine_model(a100(), "ViT_Small");
  const double engine_rate = engine.estimate(64).throughput_img_per_s;
  for (const LinkSpec* link : {&lte_rural(), &nr5g(), &wifi_backhaul()}) {
    EXPECT_LT(link->max_request_rate(bytes), engine_rate / 100.0)
        << link->name;
  }
}

TEST(Network, SmallImagesClearRuralLte) {
  // Plant Village's compressed crops upload fast enough for interactive
  // cloud inference even on rural LTE.
  const auto pv = data::find_dataset("Plant Village");
  const double bytes = pv->image_stats().mean_encoded_bytes;
  EXPECT_LT(lte_rural().request_latency_s(bytes), 0.2);
  EXPECT_GT(lte_rural().max_request_rate(bytes), 10.0);
}

}  // namespace
}  // namespace harvest::platform
