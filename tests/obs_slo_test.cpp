/// SloTracker tests: burn-rate arithmetic, the latency term, sliding-
/// window expiry, cumulative budget accounting, edge-triggered alerts,
/// and the serving-registry integration (configure_slo → Prometheus
/// gauges + admission pressure).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "serving/metrics.hpp"
#include "serving/resilience/admission.hpp"

namespace harvest {
namespace {

using obs::SloConfig;
using obs::SloTracker;

SloConfig slo(double availability, double latency_s = 0.0) {
  SloConfig config;
  config.availability_target = availability;
  config.latency_target_s = latency_s;
  return config;
}

TEST(SloTracker, DisabledTrackerReportsNothing) {
  SloTracker tracker;  // availability_target = 0 → disabled
  tracker.record(0.0, /*ok=*/false, /*latency_s=*/1.0);
  EXPECT_FALSE(tracker.enabled());
  EXPECT_DOUBLE_EQ(tracker.burn_rate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(tracker.budget_remaining(), 1.0);
  EXPECT_EQ(tracker.total(), 0u);
}

TEST(SloTracker, BurnRateIsBadFractionOverBudget) {
  // 99% availability → 1% budget. 5 bad out of 100 = 5% bad → burn 5x.
  SloTracker tracker(slo(0.99), /*window_s=*/60.0);
  for (int i = 0; i < 95; ++i) tracker.record(1.0, true, 0.0);
  for (int i = 0; i < 5; ++i) tracker.record(1.0, false, 0.0);
  EXPECT_NEAR(tracker.burn_rate(1.0), 5.0, 1e-9);
  EXPECT_EQ(tracker.total(), 100u);
  EXPECT_EQ(tracker.bad(), 5u);
  // Perfect compliance burns nothing.
  SloTracker clean(slo(0.99));
  for (int i = 0; i < 100; ++i) clean.record(1.0, true, 0.0);
  EXPECT_DOUBLE_EQ(clean.burn_rate(1.0), 0.0);
}

TEST(SloTracker, LatencyTargetMakesSlowRequestsBad) {
  SloTracker tracker(slo(0.9, /*latency_s=*/0.1), /*window_s=*/60.0);
  tracker.record(1.0, true, 0.05);  // fast + ok → good
  tracker.record(1.0, true, 0.50);  // ok but slow → bad
  tracker.record(1.0, false, 0.01); // failed → bad regardless of speed
  EXPECT_EQ(tracker.bad(), 2u);
  // bad fraction 2/3 over a 10% budget.
  EXPECT_NEAR(tracker.burn_rate(1.0), (2.0 / 3.0) / 0.1, 1e-9);
}

TEST(SloTracker, SlidingWindowForgetsOldOutcomes) {
  SloTracker tracker(slo(0.99), /*window_s=*/30.0);
  // A burst of failures at t=0...
  for (int i = 0; i < 10; ++i) tracker.record(0.0, false, 0.0);
  EXPECT_GT(tracker.burn_rate(0.0), 0.0);
  // ...then clean traffic far outside the window: the burst has aged
  // out of the burn rate but stays in the cumulative budget.
  for (int i = 0; i < 90; ++i) tracker.record(100.0, true, 0.0);
  EXPECT_DOUBLE_EQ(tracker.burn_rate(100.0), 0.0);
  EXPECT_EQ(tracker.total(), 100u);
  EXPECT_EQ(tracker.bad(), 10u);
}

TEST(SloTracker, BudgetRemainingGoesNegativeWhenOverspent) {
  SloTracker tracker(slo(0.99), /*window_s=*/60.0);
  for (int i = 0; i < 99; ++i) tracker.record(1.0, true, 0.0);
  tracker.record(1.0, false, 0.0);
  // 1 bad in 100 at a 1% budget: exactly spent.
  EXPECT_NEAR(tracker.budget_remaining(), 0.0, 1e-9);
  tracker.record(1.0, false, 0.0);
  EXPECT_LT(tracker.budget_remaining(), 0.0);
}

TEST(SloTracker, AlertFiresOnCrossAndClearsOnRecovery) {
  SloTracker tracker(slo(0.9), /*window_s=*/30.0);
  std::vector<bool> transitions;
  tracker.set_alert(2.0, [&](bool firing, double burn) {
    transitions.push_back(firing);
    EXPECT_GE(burn, 0.0);
  });
  // 50% bad over a 10% budget → burn 5x: fires once, not per record.
  for (int i = 0; i < 10; ++i) tracker.record(0.0, i % 2 == 0, 0.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_TRUE(transitions.front());
  // Clean traffic in a later window drops the burn below threshold:
  // exactly one recovery edge.
  for (int i = 0; i < 200; ++i) tracker.record(100.0, true, 0.0);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_FALSE(transitions.back());
}

TEST(MetricsRegistry, SloGaugesAndDigestQuantilesInPrometheus) {
  serving::MetricsRegistry registry;
  registry.configure_slo(slo(0.99, /*latency_s=*/0.05), /*window_s=*/10.0);
  // Drive the tracker with a deterministic clock.
  double now = 0.0;
  registry.set_clock([&now] { return now; });

  serving::RequestTiming timing;
  timing.batch_size = 1;
  for (int i = 0; i < 9; ++i) {
    timing.total_s = 0.01;
    registry.record(timing, serving::RequestOutcome::kOk,
                    /*trace_id=*/static_cast<std::uint64_t>(i + 1));
  }
  timing.total_s = 0.2;  // over the 50 ms target → bad
  registry.record(timing, serving::RequestOutcome::kOk, /*trace_id=*/99);

  const serving::MetricsSnapshot snap = registry.snapshot(1.0);
  EXPECT_TRUE(snap.slo_enabled);
  // 1 bad in 10 over a 1% budget → burn 10x.
  EXPECT_NEAR(snap.slo_burn_rate, 10.0, 1e-9);
  EXPECT_LT(snap.slo_budget_remaining, 0.0);
  EXPECT_GT(snap.digest_p99_latency_s, 0.0);

  obs::PrometheusWriter out;
  registry.render_prometheus(out, "vit");
  const std::string text = out.str();
  EXPECT_NE(text.find("harvest_slo_burn_rate{model=\"vit\""),
            std::string::npos);
  EXPECT_NE(text.find("harvest_slo_budget_remaining{model=\"vit\""),
            std::string::npos);
  EXPECT_NE(text.find("harvest_request_latency_quantiles{"),
            std::string::npos);
  // The p99 exemplar points at the slow request's trace.
  EXPECT_NE(text.find("# {trace_id=\"99\"}"), std::string::npos);
  registry.set_clock(nullptr);
}

TEST(MetricsRegistry, ShedRequestsBurnTheBudget) {
  serving::MetricsRegistry registry;
  registry.configure_slo(slo(0.9), /*window_s=*/10.0);
  double now = 0.0;
  registry.set_clock([&now] { return now; });
  serving::RequestTiming timing;
  timing.total_s = 0.01;
  timing.batch_size = 1;
  registry.record(timing, serving::RequestOutcome::kOk);
  registry.record_shed();
  const serving::MetricsSnapshot snap = registry.snapshot(1.0);
  // 1 bad (the shed) out of 2 over a 10% budget.
  EXPECT_NEAR(snap.slo_burn_rate, 5.0, 1e-9);
  registry.set_clock(nullptr);
}

TEST(SloAdmissionHook, BurnAlertTightensAdmission) {
  // The hook the server wires at register_model: alert → set_pressure,
  // halving the admission thresholds while the budget burns.
  serving::resilience::AdmissionConfig config;
  config.max_queue_depth = 8;
  serving::resilience::AdmissionController admission(config, /*instances=*/1);

  SloTracker tracker(slo(0.9), /*window_s=*/10.0);
  tracker.set_alert(2.0, [&admission](bool firing, double) {
    admission.set_pressure(firing);
  });

  EXPECT_TRUE(admission.admit(/*queue_depth=*/6));
  for (int i = 0; i < 10; ++i) tracker.record(0.0, false, 0.0);
  EXPECT_TRUE(admission.pressured());
  // Pressure halves the depth limit: 6 >= 4 now sheds.
  EXPECT_FALSE(admission.admit(/*queue_depth=*/6));
  for (int i = 0; i < 200; ++i) tracker.record(50.0, true, 0.0);
  EXPECT_FALSE(admission.pressured());
  EXPECT_TRUE(admission.admit(/*queue_depth=*/6));
}

}  // namespace
}  // namespace harvest
