/// Dense property sweep of the preprocessing cost model over the full
/// (dataset × method × platform) grid of Fig. 7.

#include <gtest/gtest.h>

#include <tuple>

#include "data/datasets.hpp"
#include "preproc/cost_model.hpp"

namespace harvest::preproc {
namespace {

using GridParam = std::tuple<std::string, std::string>;  // device, dataset

const std::vector<PreprocMethod>& all_methods() {
  static const std::vector<PreprocMethod> methods = {
      PreprocMethod::kDali224, PreprocMethod::kDali96, PreprocMethod::kDali32,
      PreprocMethod::kPyTorch, PreprocMethod::kCv2};
  return methods;
}

class PreprocGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  void SetUp() override {
    const auto& [device_name, dataset_name] = GetParam();
    device_ = platform::find_device(device_name);
    ASSERT_NE(device_, nullptr);
    const auto dataset = data::find_dataset(dataset_name);
    ASSERT_TRUE(dataset.has_value());
    stats_ = dataset->image_stats();
  }

  const platform::DeviceSpec* device_ = nullptr;
  WorkloadImageStats stats_;
};

TEST_P(PreprocGrid, AllMethodsProducePositiveFiniteEstimates) {
  for (PreprocMethod method : all_methods()) {
    for (std::int64_t batch : {1, 8, 64}) {
      const PreprocEstimate est =
          estimate_preproc(*device_, stats_, method, batch);
      EXPECT_GT(est.latency_s, 0.0) << preproc_method_name(method);
      EXPECT_TRUE(std::isfinite(est.latency_s));
      EXPECT_GT(est.throughput_img_per_s, 0.0);
      EXPECT_GT(est.pool_bytes, 0.0);
    }
  }
}

TEST_P(PreprocGrid, LatencyThroughputConsistency) {
  for (PreprocMethod method : all_methods()) {
    for (std::int64_t batch : {1, 16, 64}) {
      const PreprocEstimate est =
          estimate_preproc(*device_, stats_, method, batch);
      EXPECT_NEAR(est.throughput_img_per_s * est.latency_s,
                  static_cast<double>(batch), 1e-6)
          << preproc_method_name(method);
    }
  }
}

TEST_P(PreprocGrid, LatencyMonotoneInBatch) {
  for (PreprocMethod method : all_methods()) {
    double previous = 0.0;
    for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
      const double latency =
          estimate_preproc(*device_, stats_, method, batch).latency_s;
      EXPECT_GT(latency, previous) << preproc_method_name(method);
      previous = latency;
    }
  }
}

TEST_P(PreprocGrid, DaliOutputResolutionOrdering) {
  const double t224 =
      estimate_preproc(*device_, stats_, PreprocMethod::kDali224, 64).latency_s;
  const double t96 =
      estimate_preproc(*device_, stats_, PreprocMethod::kDali96, 64).latency_s;
  const double t32 =
      estimate_preproc(*device_, stats_, PreprocMethod::kDali32, 64).latency_s;
  EXPECT_GT(t224, t96);
  EXPECT_GT(t96, t32);
}

TEST_P(PreprocGrid, BatchedGpuBeatsPerImageCpuPerImage) {
  // Per-image cost of the batched GPU path at BS64 is below the CPU
  // path's single-image latency on every (device, dataset) pair.
  const double gpu_per_image =
      estimate_preproc(*device_, stats_, PreprocMethod::kDali224, 64).latency_s /
      64.0;
  const double cpu_single =
      estimate_preproc(*device_, stats_, PreprocMethod::kPyTorch, 1).latency_s;
  EXPECT_LT(gpu_per_image, cpu_single);
}

std::vector<GridParam> all_pairs() {
  std::vector<GridParam> pairs;
  for (const platform::DeviceSpec* device : platform::evaluated_platforms()) {
    for (const data::DatasetSpec& dataset : data::evaluated_datasets()) {
      pairs.emplace_back(device->name, dataset.name);
    }
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, PreprocGrid, ::testing::ValuesIn(all_pairs()),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
      for (char& c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace harvest::preproc
