/// Continuous-batching serving-layer invariants: state-pool accounting,
/// iteration-level scheduling (stable per-sequence token streams under
/// batch join/leave, deadline expiry freeing slots, conserved
/// counters), server routing/metrics, the repository's
/// "workload": "sequence" entries, and the retry/degrade client path.

#include "serving/sequence/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "serving/repository.hpp"
#include "serving/sequence/sequence_client.hpp"
#include "serving/sequence/state_pool.hpp"
#include "serving/server.hpp"

namespace harvest::serving::sequence {
namespace {

nn::TokenModelConfig tiny_model() {
  nn::TokenModelConfig config;
  config.name = "tiny-lm";
  config.arch = "rwkv";
  config.vocab = 64;
  config.dim = 8;
  config.depth = 2;
  config.max_tokens = 64;
  return config;
}

SequenceBackendPtr sim_backend(std::uint64_t seed = 42) {
  // Zero per-step cost model: steps execute instantly in wall time.
  TokenCostModel cost;
  cost.step_overhead_s = 0.0;
  cost.prefill_overhead_s = 0.0;
  cost.macs_per_token = 0.0;
  return std::make_unique<SimSequenceBackend>(tiny_model(), cost, seed);
}

/// Delegating backend whose prefill blocks until opened — makes queue
/// buildup (and therefore shedding) deterministic in tests.
class GatedBackend final : public SequenceBackend {
 public:
  explicit GatedBackend(SequenceBackendPtr inner) : inner_(std::move(inner)) {}

  const std::string& name() const override { return inner_->name(); }
  const nn::TokenModelConfig& model_config() const override {
    return inner_->model_config();
  }
  nn::SequenceStateSpec state_spec() const override {
    return inner_->state_spec();
  }

  core::Result<SequenceStepResult> prefill(const std::int32_t* prompt,
                                           std::int64_t count,
                                           nn::SequenceState& state) override {
    std::unique_lock lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
    lock.unlock();
    return inner_->prefill(prompt, count, state);
  }

  core::Result<SequenceStepResult> decode(const std::int32_t* last_tokens,
                                          nn::SequenceState* const* states,
                                          std::int64_t count) override {
    return inner_->decode(last_tokens, states, count);
  }

  /// Block until a prefill is parked on the gate.
  void await_entered() {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ > 0; });
  }
  void open() {
    std::lock_guard lock(mutex_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  SequenceBackendPtr inner_;
  std::mutex mutex_;
  std::condition_variable open_cv_, entered_cv_;
  bool open_ = false;
  int entered_ = 0;
};

/// Delegating backend whose *decode* blocks until opened — stages the
/// stalled-step scenario the scheduler's idle-eviction reap handles.
class GatedDecodeBackend final : public SequenceBackend {
 public:
  explicit GatedDecodeBackend(SequenceBackendPtr inner)
      : inner_(std::move(inner)) {}

  const std::string& name() const override { return inner_->name(); }
  const nn::TokenModelConfig& model_config() const override {
    return inner_->model_config();
  }
  nn::SequenceStateSpec state_spec() const override {
    return inner_->state_spec();
  }

  core::Result<SequenceStepResult> prefill(const std::int32_t* prompt,
                                           std::int64_t count,
                                           nn::SequenceState& state) override {
    return inner_->prefill(prompt, count, state);
  }

  core::Result<SequenceStepResult> decode(const std::int32_t* last_tokens,
                                          nn::SequenceState* const* states,
                                          std::int64_t count) override {
    std::unique_lock lock(mutex_);
    ++entered_;
    entered_cv_.notify_all();
    open_cv_.wait(lock, [&] { return open_; });
    lock.unlock();
    return inner_->decode(last_tokens, states, count);
  }

  void await_entered() {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ > 0; });
  }
  void open() {
    std::lock_guard lock(mutex_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  SequenceBackendPtr inner_;
  std::mutex mutex_;
  std::condition_variable open_cv_, entered_cv_;
  bool open_ = false;
  int entered_ = 0;
};

SequenceRequest make_request(std::int64_t prompt_len,
                             std::int64_t max_new_tokens) {
  SequenceRequest request;
  request.prompt.assign(static_cast<std::size_t>(prompt_len), 3);
  request.max_new_tokens = max_new_tokens;
  return request;
}

// ---------------------------------------------------------- state pool

TEST(StatePool, LeasesAreZeroedAndAccounted) {
  nn::SequenceStateSpec spec;
  spec.kind = nn::StateKind::kRecurrent;
  spec.layers = 2;
  spec.dim = 4;
  spec.max_tokens = 16;
  StatePoolConfig config;
  config.slots = 2;
  StatePool pool(spec, config);
  EXPECT_EQ(pool.slots(), 2);
  EXPECT_EQ(pool.active(), 0);
  EXPECT_EQ(pool.capacity_bytes(), 2 * spec.bytes_per_sequence());

  auto a = pool.acquire(0.0);
  ASSERT_TRUE(a.has_value());
  // Dirty the slab, return the slot, re-lease: it must come back clean.
  a->state.layer(0)[0] = 42.0f;
  a->state.advance(5);
  EXPECT_EQ(pool.used_bytes(), spec.bytes_per_sequence());

  auto b = pool.acquire(0.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->slot, b->slot);
  EXPECT_EQ(pool.active(), 2);
  EXPECT_FALSE(pool.acquire(0.0).has_value());  // exhausted

  EXPECT_TRUE(pool.release(a->slot, a->generation));
  auto c = pool.acquire(0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->slot, a->slot);
  EXPECT_EQ(c->state.length(), 0);
  EXPECT_EQ(c->state.layer(0)[0], 0.0f);
}

TEST(StatePool, CapacityBytesCapsSlots) {
  nn::SequenceStateSpec spec;
  spec.kind = nn::StateKind::kKvCache;
  spec.layers = 2;
  spec.dim = 8;
  spec.max_tokens = 16;
  StatePoolConfig config;
  config.slots = 100;
  // Budget for exactly 3 sequences: the pool must not allocate 100.
  config.capacity_bytes = 3 * spec.bytes_per_sequence() +
                          spec.bytes_per_sequence() / 2;
  StatePool pool(spec, config);
  EXPECT_EQ(pool.slots(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(pool.acquire(0.0).has_value());
  EXPECT_FALSE(pool.acquire(0.0).has_value());
}

TEST(StatePool, IdleLeasesAreEvicted) {
  nn::SequenceStateSpec spec;
  spec.kind = nn::StateKind::kRecurrent;
  spec.layers = 1;
  spec.dim = 4;
  spec.max_tokens = 8;
  StatePoolConfig config;
  config.slots = 2;
  config.idle_timeout_s = 1.0;
  StatePool pool(spec, config);

  auto stale = pool.acquire(0.0);
  auto fresh = pool.acquire(0.0);
  ASSERT_TRUE(stale.has_value() && fresh.has_value());
  EXPECT_TRUE(pool.touch(fresh->slot, fresh->generation, 5.0));

  const auto evicted = pool.evict_idle(5.5);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], stale->slot);
  EXPECT_EQ(pool.active(), 1);
  EXPECT_EQ(pool.evictions(), 1u);
  EXPECT_TRUE(pool.acquire(5.5).has_value());  // slot is reusable
}

// Regression for the eviction-aliasing bug: evict_idle used to free a
// slot while the owner still held its Lease; the stale owner's
// release() then returned the *next* owner's slot to the free list, so
// a third acquire aliased two live sequences onto the same slab rows
// and the counters drifted. Generation stamping makes the stale lease
// inert.
TEST(StatePool, StaleLeaseIsInertAfterEviction) {
  nn::SequenceStateSpec spec;
  spec.kind = nn::StateKind::kRecurrent;
  spec.layers = 1;
  spec.dim = 4;
  spec.max_tokens = 8;
  StatePoolConfig config;
  config.slots = 1;
  config.idle_timeout_s = 1.0;
  StatePool pool(spec, config);

  auto stale = pool.acquire(0.0);
  ASSERT_TRUE(stale.has_value());
  ASSERT_EQ(pool.evict_idle(2.0).size(), 1u);  // invalidates `stale`

  // The slot re-leases to a new owner...
  auto owner = pool.acquire(2.0);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(owner->slot, stale->slot);
  EXPECT_NE(owner->generation, stale->generation);
  EXPECT_EQ(pool.active(), 1);

  // ...and the stale lease can neither refresh nor free it. Pre-fix,
  // this release freed the new owner's slot (active dropped to 0 and a
  // third acquire aliased the slab row).
  EXPECT_FALSE(pool.touch(stale->slot, stale->generation, 2.0));
  EXPECT_FALSE(pool.release(stale->slot, stale->generation));
  EXPECT_EQ(pool.active(), 1);
  EXPECT_FALSE(pool.acquire(2.0).has_value()) << "slab row aliased";

  // The current owner's lease still works, and double-release no-ops.
  EXPECT_TRUE(pool.touch(owner->slot, owner->generation, 2.5));
  EXPECT_TRUE(pool.release(owner->slot, owner->generation));
  EXPECT_FALSE(pool.release(owner->slot, owner->generation));
  EXPECT_EQ(pool.active(), 0);
}

// Concurrent acquire/touch/evict/release storm (run under TSan via the
// sanitize_seq target). The drain-time conservation law: every acquire
// ends as exactly one successful release or one idle eviction — stale
// releases must not double-free.
TEST(StatePool, ConcurrentLifecycleConserves) {
  nn::SequenceStateSpec spec;
  spec.kind = nn::StateKind::kRecurrent;
  spec.layers = 1;
  spec.dim = 4;
  spec.max_tokens = 8;
  StatePoolConfig config;
  config.slots = 8;
  config.idle_timeout_s = 1e-4;
  StatePool pool(spec, config);

  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> releases_ok{0};
  std::atomic<bool> stop{false};

  std::thread evictor([&] {
    while (!stop.load()) {
      const double now = std::chrono::duration<double>(
                             std::chrono::steady_clock::now().time_since_epoch())
                             .count();
      pool.evict_idle(now);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const double now =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        auto lease = pool.acquire(now);
        if (!lease.has_value()) continue;
        acquires.fetch_add(1);
        // Hold some leases long enough for the evictor to reap them.
        if ((i + t) % 3 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
        const double later =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        // NOTE: no slab writes here — only the single-owner scheduler
        // thread may dereference the state, and a stale holder writing
        // after eviction is exactly the bug this suite pins down. The
        // stress covers the lifecycle bookkeeping.
        pool.touch(lease->slot, lease->generation, later);
        if (pool.release(lease->slot, lease->generation)) {
          releases_ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  evictor.join();

  // Anything still leased at join time was held by no one; a final
  // sweep may reclaim stragglers the evictor raced past.
  EXPECT_EQ(pool.active(),
            static_cast<std::int64_t>(acquires.load() - releases_ok.load() -
                                      pool.evictions()));
  EXPECT_EQ(acquires.load(), releases_ok.load() + pool.evictions());
  EXPECT_EQ(pool.active(), 0);
}

// ----------------------------------------------------------- scheduler

TEST(SequenceScheduler, GeneratesBudgetAndStreamsTokensInOrder) {
  SequenceSchedulerConfig config;
  config.max_active = 4;
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", sim_backend(), StatePoolConfig{},
                              config, &metrics);

  std::vector<TokenEvent> events;
  std::mutex events_mutex;
  SequenceRequest request = make_request(4, 6);
  request.on_token = [&](const TokenEvent& e) {
    std::lock_guard lock(events_mutex);
    events.push_back(e);
  };
  auto submitted = scheduler.submit(std::move(request));
  ASSERT_TRUE(submitted.is_ok());
  const SequenceResponse response = submitted.value().get();

  EXPECT_TRUE(response.status.is_ok());
  EXPECT_EQ(response.outcome, SequenceOutcome::kOk);
  ASSERT_EQ(response.tokens.size(), 6u);
  EXPECT_EQ(response.timing.steps, 5);  // first token came from prefill
  EXPECT_GT(response.timing.ttft_s, 0.0);
  EXPECT_GE(response.timing.total_s, response.timing.ttft_s);

  std::lock_guard lock(events_mutex);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].index, static_cast<std::int64_t>(i));
    EXPECT_EQ(events[i].token, response.tokens[i]);
    EXPECT_EQ(events[i].last, i + 1 == events.size());
  }

  const SequenceCounters counters = metrics.counters();
  EXPECT_EQ(counters.submitted, 1u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_EQ(counters.tokens_generated, 6u);
  EXPECT_TRUE(counters.conserved());
}

TEST(SequenceScheduler, TokenStreamsStableUnderJoinAndLeave) {
  // The serving-layer reordering invariance: whatever batches form as
  // sequences join and retire, each request's token stream must equal
  // its solo run (the sim backend is a pure function of (last token,
  // position), so any cross-row leakage would change the stream).
  std::vector<std::vector<std::int32_t>> solo;
  for (int r = 0; r < 6; ++r) {
    SequenceMetrics metrics;
    SequenceScheduler scheduler("tiny-lm", sim_backend(), StatePoolConfig{},
                                SequenceSchedulerConfig{}, &metrics);
    auto submitted =
        scheduler.submit(make_request(2 + r, 3 + 2 * r));
    ASSERT_TRUE(submitted.is_ok());
    solo.push_back(submitted.value().get().tokens);
  }

  SequenceSchedulerConfig config;
  config.max_active = 3;  // force joins/leaves: 6 requests, 3 slots
  config.length_multiple_of = 4;
  StatePoolConfig pool;
  pool.slots = 3;
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", sim_backend(), pool, config,
                              &metrics);
  std::vector<std::future<SequenceResponse>> futures;
  for (int r = 0; r < 6; ++r) {
    auto submitted =
        scheduler.submit(make_request(2 + r, 3 + 2 * r));
    ASSERT_TRUE(submitted.is_ok());
    futures.push_back(std::move(submitted.value()));
  }
  for (int r = 0; r < 6; ++r) {
    const SequenceResponse response = futures[static_cast<std::size_t>(r)].get();
    EXPECT_TRUE(response.status.is_ok());
    EXPECT_EQ(response.tokens, solo[static_cast<std::size_t>(r)])
        << "request " << r << " stream changed under batching";
  }
  EXPECT_TRUE(metrics.counters().conserved());
  EXPECT_EQ(metrics.counters().completed, 6u);
}

TEST(SequenceScheduler, InvalidPromptsFailFast) {
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", sim_backend(), StatePoolConfig{},
                              SequenceSchedulerConfig{}, &metrics);
  auto empty = scheduler.submit(make_request(0, 4));
  EXPECT_EQ(empty.status().code(), core::StatusCode::kInvalidArgument);
  auto oversized = scheduler.submit(make_request(64, 4));  // == max_tokens
  EXPECT_EQ(oversized.status().code(), core::StatusCode::kInvalidArgument);
  const SequenceCounters counters = metrics.counters();
  EXPECT_EQ(counters.failed, 2u);
  EXPECT_TRUE(counters.conserved());
}

TEST(SequenceScheduler, DeadlineExpiryFreesSlotAndConserves) {
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", sim_backend(), StatePoolConfig{},
                              SequenceSchedulerConfig{}, &metrics);
  SequenceRequest request = make_request(4, 8);
  request.deadline_s = 1e-9;  // expired before the worker can admit it
  auto submitted = scheduler.submit(std::move(request));
  ASSERT_TRUE(submitted.is_ok());
  const SequenceResponse response = submitted.value().get();
  EXPECT_EQ(response.outcome, SequenceOutcome::kExpired);
  EXPECT_EQ(response.status.code(), core::StatusCode::kDeadlineExceeded);

  // A full-budget follow-up still runs: no slot leaked.
  auto follow_up = scheduler.submit(make_request(4, 2));
  ASSERT_TRUE(follow_up.is_ok());
  EXPECT_EQ(follow_up.value().get().outcome, SequenceOutcome::kOk);
  EXPECT_EQ(scheduler.pool().active(), 0);

  const SequenceCounters counters = metrics.counters();
  EXPECT_EQ(counters.expired, 1u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_TRUE(counters.conserved());
}

TEST(SequenceScheduler, FullQueueShedsDeterministically) {
  auto gated = std::make_unique<GatedBackend>(sim_backend());
  GatedBackend* gate = gated.get();
  SequenceSchedulerConfig config;
  config.max_active = 1;
  config.max_queue_depth = 1;
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", std::move(gated), StatePoolConfig{},
                              config, &metrics);

  // First request parks inside prefill; second fills the queue; third
  // must shed with kResourceExhausted.
  auto first = scheduler.submit(make_request(2, 2));
  ASSERT_TRUE(first.is_ok());
  gate->await_entered();
  auto second = scheduler.submit(make_request(2, 2));
  ASSERT_TRUE(second.is_ok());
  auto third = scheduler.submit(make_request(2, 2));
  EXPECT_EQ(third.status().code(), core::StatusCode::kResourceExhausted);

  gate->open();
  EXPECT_EQ(first.value().get().outcome, SequenceOutcome::kOk);
  EXPECT_EQ(second.value().get().outcome, SequenceOutcome::kOk);
  const SequenceCounters counters = metrics.counters();
  EXPECT_EQ(counters.shed, 1u);
  EXPECT_EQ(counters.completed, 2u);
  EXPECT_TRUE(counters.conserved());
}

TEST(SequenceScheduler, IdleEvictionRetiresAsEvictedAndConserves) {
  // A decode step that stalls past the pool's idle timeout leaves the
  // lease stale; the scheduler's reap must retire the sequence as
  // kEvicted (not hang, not alias the slot) and keep the books exact.
  auto gated = std::make_unique<GatedDecodeBackend>(sim_backend());
  GatedDecodeBackend* gate = gated.get();
  SequenceSchedulerConfig config;
  config.max_active = 1;
  StatePoolConfig pool;
  pool.slots = 1;
  pool.idle_timeout_s = 0.02;
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", std::move(gated), pool, config,
                              &metrics);

  auto stalled = scheduler.submit(make_request(2, 8));
  ASSERT_TRUE(stalled.is_ok());
  gate->await_entered();  // parked inside the first decode step
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  gate->open();

  const SequenceResponse response = stalled.value().get();
  EXPECT_EQ(response.outcome, SequenceOutcome::kEvicted);
  EXPECT_EQ(response.status.code(), core::StatusCode::kResourceExhausted);
  EXPECT_EQ(scheduler.pool().active(), 0);
  EXPECT_GE(scheduler.pool().evictions(), 1u);

  // The slot is reusable by a fresh sequence (no aliasing, no leak).
  auto follow_up = scheduler.submit(make_request(2, 2));
  ASSERT_TRUE(follow_up.is_ok());
  EXPECT_EQ(follow_up.value().get().outcome, SequenceOutcome::kOk);

  const SequenceCounters counters = metrics.counters();
  EXPECT_EQ(counters.evicted, 1u);
  EXPECT_EQ(counters.completed, 1u);
  EXPECT_TRUE(counters.conserved());
}

TEST(SequenceScheduler, ShutdownDrainsAndConserves) {
  auto gated = std::make_unique<GatedBackend>(sim_backend());
  GatedBackend* gate = gated.get();
  SequenceSchedulerConfig config;
  config.max_active = 1;
  SequenceMetrics metrics;
  SequenceScheduler scheduler("tiny-lm", std::move(gated), StatePoolConfig{},
                              config, &metrics);

  auto in_flight = scheduler.submit(make_request(2, 4));
  ASSERT_TRUE(in_flight.is_ok());
  gate->await_entered();
  auto queued = scheduler.submit(make_request(2, 4));
  ASSERT_TRUE(queued.is_ok());

  gate->open();
  scheduler.shutdown();
  // Both futures resolve: the in-flight sequence either completed or
  // was evicted mid-decode; the queued one was shed or completed,
  // depending on how far the worker got. Either way nothing hangs and
  // the books balance.
  in_flight.value().get();
  queued.value().get();
  EXPECT_TRUE(metrics.counters().conserved());
  EXPECT_EQ(scheduler.pool().active(), 0);

  auto late = scheduler.submit(make_request(2, 2));
  EXPECT_EQ(late.status().code(), core::StatusCode::kUnavailable);
  EXPECT_TRUE(metrics.counters().conserved());
}

// -------------------------------------------------------------- server

TEST(ServerSequence, RoutesMetricsAndPrometheus) {
  Server server(1);
  SequenceDeploymentConfig config;
  config.name = "agri-lm";
  config.scheduler.max_active = 2;
  ASSERT_TRUE(server
                  .register_sequence_model(
                      config, [] { return sim_backend(); })
                  .is_ok());
  // Names collide across image and sequence namespaces.
  EXPECT_FALSE(server
                   .register_sequence_model(
                       config, [] { return sim_backend(); })
                   .is_ok());
  EXPECT_EQ(server.sequence_model_names(),
            std::vector<std::string>{"agri-lm"});

  SequenceRequest request = make_request(3, 5);
  request.model = "agri-lm";
  SequenceResponse response = server.generate_sync(std::move(request));
  EXPECT_TRUE(response.status.is_ok());
  EXPECT_EQ(response.tokens.size(), 5u);
  EXPECT_GT(response.tokens_per_s, 0.0);

  SequenceRequest unknown = make_request(3, 5);
  unknown.model = "nope";
  EXPECT_EQ(server.generate_sync(std::move(unknown)).status.code(),
            core::StatusCode::kNotFound);

  ASSERT_NE(server.sequence_metrics("agri-lm"), nullptr);
  EXPECT_TRUE(server.sequence_metrics("agri-lm")->counters().conserved());
  ASSERT_NE(server.sequence_scheduler("agri-lm"), nullptr);

  const std::string text = server.prometheus_text();
  EXPECT_NE(text.find("harvest_sequences_active"), std::string::npos);
  EXPECT_NE(text.find("harvest_sequence_state_pool_bytes"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_sequence_outcomes_total"), std::string::npos);
  EXPECT_NE(text.find("harvest_sequence_ttft_seconds"), std::string::npos);
  EXPECT_NE(text.find("model=\"agri-lm\""), std::string::npos);

  server.shutdown();
  SequenceRequest after = make_request(3, 5);
  after.model = "agri-lm";
  EXPECT_EQ(server.generate_sync(std::move(after)).status.code(),
            core::StatusCode::kUnavailable);
}

TEST(ServerSequence, RepositoryLoadsSequenceWorkload) {
  const char* config_text = R"({
    "models": [
      {
        "name": "agri-lm-sim",
        "workload": "sequence",
        "backend": "sim",
        "architecture": "rwkv",
        "vocab": 64, "dim": 16, "depth": 2, "max_tokens": 64,
        "max_active": 4, "max_new_tokens": 8
      },
      {
        "name": "agri-lm-native",
        "workload": "sequence",
        "backend": "native",
        "architecture": "attn",
        "vocab": 32, "dim": 16, "depth": 1, "heads": 2, "max_tokens": 32,
        "max_active": 2, "slots": 4
      }
    ]
  })";
  auto parsed = core::Json::parse(config_text);
  ASSERT_TRUE(parsed.is_ok());
  Server server(1);
  ASSERT_TRUE(load_repository(server, parsed.value()).is_ok());
  EXPECT_EQ(server.sequence_model_names().size(), 2u);

  for (const char* name : {"agri-lm-sim", "agri-lm-native"}) {
    SequenceRequest request = make_request(4, 4);
    request.model = name;
    const SequenceResponse response = server.generate_sync(std::move(request));
    EXPECT_TRUE(response.status.is_ok()) << name;
    EXPECT_EQ(response.tokens.size(), 4u) << name;
  }
  server.shutdown();
}

TEST(ServerSequence, RepositoryRejectsBadSequenceEntries) {
  for (const char* bad : {
           R"({"models":[{"name":"x","workload":"sequence","architecture":"lstm"}]})",
           R"({"models":[{"name":"x","workload":"sequence","max_active":0}]})",
           R"({"models":[{"name":"x","workload":"sequence","slots":1,"max_active":4}]})",
           R"({"models":[{"name":"x","workload":"teapot"}]})",
       }) {
    auto parsed = core::Json::parse(bad);
    ASSERT_TRUE(parsed.is_ok());
    Server server(1);
    EXPECT_FALSE(load_repository(server, parsed.value()).is_ok()) << bad;
    server.shutdown();
  }
}

// -------------------------------------------------------------- client

TEST(RetryingSequenceClient, FallsBackToDegradeModel) {
  Server server(1);
  SequenceDeploymentConfig config;
  config.name = "agri-lm-small";
  ASSERT_TRUE(server
                  .register_sequence_model(
                      config, [] { return sim_backend(); })
                  .is_ok());

  SequenceClientOptions options;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_s = 1e-4;
  options.fallback_model = "agri-lm-small";
  RetryingSequenceClient client(server, options);

  // Target deployment does not exist: not retryable, but the fallback
  // model answers.
  SequenceRequest request = make_request(3, 4);
  request.model = "agri-lm-big";
  const SequenceResponse response = client.generate_sync(std::move(request));
  EXPECT_TRUE(response.status.is_ok());
  EXPECT_EQ(response.tokens.size(), 4u);
  const auto counters = client.counters();
  EXPECT_EQ(counters.attempts, 1u);
  EXPECT_EQ(counters.retries, 0u);
  EXPECT_EQ(counters.degraded, 1u);
  server.shutdown();
}

TEST(RetryingSequenceClient, RetriesShedRequests) {
  auto gated = std::make_unique<GatedBackend>(sim_backend());
  GatedBackend* gate = gated.get();
  Server server(1);
  SequenceDeploymentConfig config;
  config.name = "agri-lm";
  config.scheduler.max_active = 1;
  config.scheduler.max_queue_depth = 1;
  auto shared = std::make_shared<SequenceBackendPtr>(std::move(gated));
  ASSERT_TRUE(server
                  .register_sequence_model(
                      config, [shared] { return std::move(*shared); })
                  .is_ok());

  // Park the worker and fill the queue, so the client's first attempt
  // sheds; open the gate from another thread while it backs off.
  auto first = server.submit_sequence([&] {
    SequenceRequest r = make_request(2, 2);
    r.model = "agri-lm";
    return r;
  }());
  ASSERT_TRUE(first.is_ok());
  gate->await_entered();
  auto second = server.submit_sequence([&] {
    SequenceRequest r = make_request(2, 2);
    r.model = "agri-lm";
    return r;
  }());
  ASSERT_TRUE(second.is_ok());

  SequenceClientOptions options;
  options.retry.max_attempts = 6;
  options.retry.initial_backoff_s = 20e-3;
  options.retry.jitter = 0.0;
  RetryingSequenceClient client(server, options);
  // The gate stays closed until the client has provably shed once (its
  // retry counter bumps before the backoff sleep), so attempt 1 always
  // fails; once open, the worker drains instantly and a later attempt
  // lands in the emptied queue.
  std::thread opener([&] {
    while (client.counters().retries == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate->open();
  });
  SequenceRequest request = make_request(2, 2);
  request.model = "agri-lm";
  const SequenceResponse response = client.generate_sync(std::move(request));
  opener.join();
  EXPECT_TRUE(response.status.is_ok());
  EXPECT_GE(client.counters().retries, 1u);
  first.value().get();
  second.value().get();
  server.shutdown();
  EXPECT_TRUE(server.sequence_metrics("agri-lm")->counters().conserved());
}

}  // namespace
}  // namespace harvest::serving::sequence
