/// QuantileDigest tests: rank-error bound against exact quantiles on
/// 1M samples, merge associativity, non-finite rejection (mirroring the
/// BucketHistogram NaN fix), exemplar retention, and the Prometheus
/// summary rendering with exemplar suffixes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"
#include "obs/digest.hpp"
#include "obs/metrics.hpp"

namespace harvest {
namespace {

using obs::QuantileDigest;

double exact_quantile(std::vector<double> sorted, double q) {
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Absolute rank error of the digest's estimate at `q`: where the
/// estimated value actually falls in the sorted sample, vs q.
double rank_error(const std::vector<double>& sorted, double estimate,
                  double q) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), estimate);
  const double rank = static_cast<double>(it - sorted.begin()) /
                      static_cast<double>(sorted.size());
  return std::abs(rank - q);
}

TEST(QuantileDigest, EmptyAndSingleton) {
  QuantileDigest digest;
  EXPECT_EQ(digest.count(), 0u);
  EXPECT_TRUE(std::isnan(digest.quantile(0.5)));
  EXPECT_TRUE(std::isnan(digest.min()));
  digest.add(3.5);
  EXPECT_EQ(digest.count(), 1u);
  EXPECT_DOUBLE_EQ(digest.quantile(0.0), 3.5);
  EXPECT_DOUBLE_EQ(digest.quantile(0.5), 3.5);
  EXPECT_DOUBLE_EQ(digest.quantile(1.0), 3.5);
  EXPECT_DOUBLE_EQ(digest.min(), 3.5);
  EXPECT_DOUBLE_EQ(digest.max(), 3.5);
}

TEST(QuantileDigest, RejectsNonFiniteSamples) {
  QuantileDigest digest;
  digest.add(std::nan(""));
  digest.add(std::numeric_limits<double>::infinity());
  digest.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(digest.count(), 0u);
  EXPECT_EQ(digest.rejected(), 3u);
  digest.add(1.0);
  digest.add(std::nan(""));
  EXPECT_EQ(digest.count(), 1u);
  EXPECT_EQ(digest.rejected(), 4u);
  // The poison never reached a quantile.
  EXPECT_DOUBLE_EQ(digest.quantile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(digest.sum(), 1.0);
}

TEST(QuantileDigest, RankErrorBoundOnOneMillionSamples) {
  // Heavy-tailed latency-shaped data: lognormal via exp(gaussian).
  core::Rng rng(17);
  QuantileDigest digest(/*compression=*/200.0);
  std::vector<double> samples;
  samples.reserve(1'000'000);
  for (int i = 0; i < 1'000'000; ++i) {
    const double x = std::exp(rng.normal() * 1.5 - 3.0);
    samples.push_back(x);
    digest.add(x);
  }
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(digest.count(), 1'000'000u);

  // Documented bound (digest.hpp): absolute rank error ~ q(1-q) * k /
  // compression; allow k = 6 for the merging variant's constant, with a
  // 0.02% absolute floor covering interpolation granularity at the
  // extreme tails (where q(1-q) shrinks faster than centroid spacing).
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const double estimate = digest.quantile(q);
    const double bound =
        std::max(6.0 * q * (1.0 - q) / digest.compression(), 2e-4);
    EXPECT_LE(rank_error(samples, estimate, q), bound)
        << "q=" << q << " estimate=" << estimate
        << " exact=" << exact_quantile(samples, q);
  }
  // Exact extremes are tracked outside the centroid list.
  EXPECT_DOUBLE_EQ(digest.quantile(0.0), samples.front());
  EXPECT_DOUBLE_EQ(digest.quantile(1.0), samples.back());
  // Memory stayed bounded: centroids ~ 2x compression, not 1M.
  EXPECT_LT(digest.centroids().size(), 3 * 200u);
}

TEST(QuantileDigest, MergeIsAssociativeWithinRankError) {
  core::Rng rng(23);
  std::vector<double> samples;
  QuantileDigest a, b, c;
  for (int i = 0; i < 30'000; ++i) {
    const double x = rng.next_double() * 10.0;
    samples.push_back(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(x);
  }
  std::sort(samples.begin(), samples.end());

  // merge(merge(a, b), c)
  QuantileDigest left = a;
  left.merge(b);
  left.merge(c);
  // merge(a, merge(b, c))
  QuantileDigest bc = b;
  bc.merge(c);
  QuantileDigest right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), samples.size());
  EXPECT_EQ(right.count(), samples.size());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double bound =
        std::max(6.0 * q * (1.0 - q) / left.compression(), 1e-5);
    // Both groupings stay within the documented bound of the exact
    // quantile — the associativity contract from digest.hpp.
    EXPECT_LE(rank_error(samples, left.quantile(q), q), bound) << "q=" << q;
    EXPECT_LE(rank_error(samples, right.quantile(q), q), bound) << "q=" << q;
  }
}

TEST(QuantileDigest, ExemplarsSurviveCompression) {
  QuantileDigest digest(/*compression=*/50.0);
  // Tag every sample with a trace id correlated to its magnitude, so
  // the exemplar near p99 must be a high trace id.
  for (int i = 1; i <= 10'000; ++i) {
    digest.add(static_cast<double>(i), static_cast<std::uint64_t>(i));
  }
  const std::uint64_t tail = digest.exemplar_near(0.99);
  ASSERT_NE(tail, 0u);
  EXPECT_GT(tail, 9'000u);
  const std::uint64_t head = digest.exemplar_near(0.01);
  ASSERT_NE(head, 0u);
  EXPECT_LT(head, 1'000u);
}

TEST(QuantileDigest, UntaggedSamplesYieldNoExemplar) {
  QuantileDigest digest;
  for (int i = 0; i < 100; ++i) digest.add(static_cast<double>(i));
  EXPECT_EQ(digest.exemplar_near(0.5), 0u);
}

TEST(PrometheusWriter, SummaryRendersQuantilesWithExemplars) {
  QuantileDigest digest;
  for (int i = 1; i <= 100; ++i) {
    digest.add(static_cast<double>(i) * 1e-3, static_cast<std::uint64_t>(i));
  }
  obs::PrometheusWriter out;
  out.summary("latency_q", "Latency quantiles.", digest, {{"model", "vit"}});
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE latency_q summary"), std::string::npos);
  EXPECT_NE(text.find("latency_q{model=\"vit\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_q{model=\"vit\",quantile=\"0.99\"}"),
            std::string::npos);
  // OpenMetrics exemplar suffix: `# {trace_id="N"} value`.
  EXPECT_NE(text.find("# {trace_id=\""), std::string::npos);
  EXPECT_NE(text.find("latency_q_count{model=\"vit\"} 100"),
            std::string::npos);
}

}  // namespace
}  // namespace harvest
