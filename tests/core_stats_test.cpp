#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"

namespace harvest::core {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10.0, 3.0);
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentiles, ExactOrderStatistics) {
  Percentiles pct;
  for (int i = 100; i >= 1; --i) pct.add(i);  // reversed insert order
  EXPECT_EQ(pct.count(), 100u);
  EXPECT_DOUBLE_EQ(pct.min(), 1.0);
  EXPECT_DOUBLE_EQ(pct.max(), 100.0);
  EXPECT_DOUBLE_EQ(pct.median(), 50.5);
  EXPECT_NEAR(pct.quantile(0.95), 95.05, 1e-9);
  EXPECT_NEAR(pct.mean(), 50.5, 1e-9);
}

TEST(Percentiles, SingleSample) {
  Percentiles pct;
  pct.add(42.0);
  EXPECT_DOUBLE_EQ(pct.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(pct.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(pct.quantile(1.0), 42.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles pct;
  EXPECT_DOUBLE_EQ(pct.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(pct.mean(), 0.0);
}

TEST(Percentiles, InterleavedAddAndQuery) {
  Percentiles pct;
  pct.add(10.0);
  pct.add(20.0);
  EXPECT_DOUBLE_EQ(pct.median(), 15.0);
  pct.add(30.0);  // must re-sort transparently
  EXPECT_DOUBLE_EQ(pct.median(), 20.0);
}

TEST(Histogram, BinGeometry) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_EQ(hist.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_lo(4), 8.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(-100.0);
  hist.add(1e9);
  EXPECT_DOUBLE_EQ(hist.bin_mass(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.bin_mass(4), 1.0);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 2.0);
}

TEST(Histogram, ModeFindsHeaviestBin) {
  Histogram hist(0.0, 100.0, 10);
  for (int i = 0; i < 5; ++i) hist.add(33.0);
  hist.add(77.0);
  EXPECT_DOUBLE_EQ(hist.mode(), 35.0);  // midpoint of [30, 40)
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram hist(0.0, 1.0, 20);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) hist.add(rng.next_double());
  double integral = 0.0;
  for (std::size_t b = 0; b < hist.bin_count(); ++b) {
    integral += hist.density(b) * (hist.bin_hi(b) - hist.bin_lo(b));
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, WeightedMass) {
  Histogram hist(0.0, 10.0, 2);
  hist.add(1.0, 2.5);
  hist.add(6.0, 0.5);
  EXPECT_DOUBLE_EQ(hist.bin_mass(0), 2.5);
  EXPECT_DOUBLE_EQ(hist.bin_mass(1), 0.5);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 3.0);
}

// Regression: `add` converted (x - lo)/width with a static_cast, which
// truncates toward zero — samples in (lo - width, lo) landed in bin 0
// as if they were in range, with no record of the underflow. They must
// clamp AND be counted as underflow mass.
TEST(Histogram, UnderflowJustBelowLoIsTracked) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(-0.5);  // truncation bug: (x-lo)/width = -0.25 → idx 0, "in range"
  hist.add(1.0);
  EXPECT_DOUBLE_EQ(hist.bin_mass(0), 2.0);  // clamped mass stays visible
  EXPECT_DOUBLE_EQ(hist.underflow_mass(), 1.0);
  EXPECT_DOUBLE_EQ(hist.overflow_mass(), 0.0);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 2.0);
}

TEST(Histogram, OverflowMassTracked) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(10.0);   // hi itself lies outside [lo, hi)
  hist.add(1e300);  // would be UB through the old int cast
  hist.add(9.999);
  EXPECT_DOUBLE_EQ(hist.bin_mass(4), 3.0);
  EXPECT_DOUBLE_EQ(hist.overflow_mass(), 2.0);
  EXPECT_DOUBLE_EQ(hist.underflow_mass(), 0.0);
}

TEST(Histogram, NanSamplesAreDropped) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(std::nan(""));
  hist.add(5.0);
  EXPECT_DOUBLE_EQ(hist.total_mass(), 1.0);
  EXPECT_DOUBLE_EQ(hist.underflow_mass(), 0.0);
  EXPECT_DOUBLE_EQ(hist.overflow_mass(), 0.0);
}

TEST(Histogram, InfinitiesClampWithoutUb) {
  Histogram hist(-5.0, 5.0, 10);
  hist.add(std::numeric_limits<double>::infinity());
  hist.add(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(hist.bin_mass(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.bin_mass(9), 1.0);
  EXPECT_DOUBLE_EQ(hist.underflow_mass(), 1.0);
  EXPECT_DOUBLE_EQ(hist.overflow_mass(), 1.0);
}

TEST(Histogram, AsciiRenderingHasOneLinePerBin) {
  Histogram hist(0.0, 4.0, 4);
  hist.add(1.0);
  const std::string art = hist.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace harvest::core
