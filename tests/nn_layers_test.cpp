#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

Tensor random_input(Shape shape, std::uint64_t seed) {
  Tensor t(shape, DType::kF32);
  core::Rng rng(seed);
  for (float& v : t.f32_span()) v = rng.next_float() - 0.5f;
  return t;
}

TEST(Linear, MatchesManualMatmul) {
  Linear layer("fc", 3, 2, 1);
  // W = [[1,0,0],[0,2,0]], b = [0.5, -0.5]
  float* w = layer.weight().f32();
  std::fill(w, w + 6, 0.0f);
  w[0] = 1.0f;
  w[4] = 2.0f;
  layer.bias().f32()[0] = 0.5f;
  layer.bias().f32()[1] = -0.5f;

  Tensor input(Shape{2, 3}, DType::kF32);
  for (int i = 0; i < 6; ++i) input.f32()[i] = static_cast<float>(i + 1);
  Tensor out = layer.forward(input);
  EXPECT_EQ(out.shape(), Shape({2, 2}));
  EXPECT_NEAR(out.f32()[0], 1.5f, 1e-6f);   // 1 + 0.5
  EXPECT_NEAR(out.f32()[1], 3.5f, 1e-6f);   // 2*2 - 0.5
  EXPECT_NEAR(out.f32()[2], 4.5f, 1e-6f);   // 4 + 0.5
  EXPECT_NEAR(out.f32()[3], 9.5f, 1e-6f);   // 2*5 - 0.5
}

TEST(Linear, RankThreeInputTreatedAsRows) {
  Linear layer("fc", 4, 5, 7);
  Tensor input = random_input(Shape{2, 7, 4}, 3);
  Tensor out = layer.forward(input);
  EXPECT_EQ(out.shape(), Shape({2, 7, 5}));
}

TEST(Linear, CostsAndParams) {
  Linear layer("fc", 8, 16, 10);
  std::vector<OpCost> costs;
  layer.append_costs(4, costs);
  ASSERT_EQ(costs.size(), 1u);
  EXPECT_EQ(costs[0].kind, OpKind::kDense);
  EXPECT_DOUBLE_EQ(costs[0].macs, 4.0 * 10 * 8 * 16);
  EXPECT_DOUBLE_EQ(costs[0].weight_bytes, 8 * 16 * 2.0);
  std::vector<NamedParam> params;
  layer.collect_params(params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].tensor->numel(), 8 * 16);
  EXPECT_EQ(params[1].tensor->numel(), 16);
}

TEST(PatchEmbed, GeometryAndClsToken) {
  PatchEmbed embed("embed", 8, 2, 3, 10);
  EXPECT_EQ(embed.tokens(), 17);  // 16 patches + CLS
  Tensor input = random_input(Shape{2, 3, 8, 8}, 4);
  Tensor out = embed.forward(input);
  EXPECT_EQ(out.shape(), Shape({2, 17, 10}));
}

TEST(PatchEmbed, ClsTokenIsInputIndependent) {
  PatchEmbed embed("embed", 4, 2, 3, 6);
  std::vector<NamedParam> params;
  embed.collect_params(params);
  // Give the CLS token a recognizable value and zero the pos embed row 0.
  for (NamedParam& p : params) {
    if (p.name == "embed.cls_token") tensor::fill(*p.tensor, 3.25f);
    if (p.name == "embed.pos_embed") tensor::fill(*p.tensor, 0.0f);
  }
  Tensor a = embed.forward(random_input(Shape{1, 3, 4, 4}, 5));
  Tensor b = embed.forward(random_input(Shape{1, 3, 4, 4}, 99));
  for (int d = 0; d < 6; ++d) {
    EXPECT_EQ(a.f32()[d], 3.25f);
    EXPECT_EQ(b.f32()[d], 3.25f);
  }
}

TEST(TransformerBlock, PreservesShapeAndIsDeterministic) {
  TransformerBlock block("blk", 16, 4, 32, 9);
  std::vector<NamedParam> params;
  block.collect_params(params);
  core::Rng rng(6);
  for (NamedParam& p : params) {
    for (float& v : p.tensor->f32_span()) v = rng.next_float() * 0.1f;
  }
  Tensor input = random_input(Shape{2, 9, 16}, 7);
  Tensor out1 = block.forward(input);
  Tensor out2 = block.forward(input);
  EXPECT_EQ(out1.shape(), input.shape());
  EXPECT_EQ(tensor::max_abs_diff(out1, out2), 0.0f);
}

TEST(TransformerBlock, ZeroWeightsGiveResidualIdentity) {
  TransformerBlock block("blk", 8, 2, 16, 5);
  // All weights/biases default-zero except LN gains (=1): attn and MLP
  // branches output zero, so the block must be the identity.
  Tensor input = random_input(Shape{1, 5, 8}, 8);
  Tensor out = block.forward(input);
  EXPECT_LT(tensor::max_abs_diff(out, input), 1e-6f);
}

TEST(TransformerBlock, CostBreakdownCoversAllStages) {
  TransformerBlock block("blk", 16, 4, 64, 9);
  std::vector<OpCost> costs;
  block.append_costs(2, costs);
  EXPECT_EQ(costs.size(), 10u);
  double dense = 0.0;
  double attn = 0.0;
  for (const OpCost& op : costs) {
    if (op.kind == OpKind::kDense) dense += op.macs;
    if (op.kind == OpKind::kAttention) attn += op.macs;
  }
  // qkv + proj + fc1 + fc2 = (16*48 + 16*16 + 16*64 + 64*16)·rows
  EXPECT_DOUBLE_EQ(dense, 2.0 * 9 * (16 * 48 + 16 * 16 + 16 * 64 + 64 * 16));
  EXPECT_DOUBLE_EQ(attn, 2.0 * 2 * 9 * 9 * 16);
}

TEST(ClsPool, ExtractsFirstToken) {
  ClsPool pool("cls", 4, 3);
  Tensor input(Shape{2, 4, 3}, DType::kF32);
  for (int i = 0; i < 24; ++i) input.f32()[i] = static_cast<float>(i);
  Tensor out = pool.forward(input);
  EXPECT_EQ(out.shape(), Shape({2, 3}));
  EXPECT_EQ(out.f32()[0], 0.0f);
  EXPECT_EQ(out.f32()[1], 1.0f);
  EXPECT_EQ(out.f32()[3], 12.0f);  // batch 1 token 0
}

TEST(ConvBnRelu, OutputGeometryAndNonNegativity) {
  ConvBnRelu layer("conv", Conv2dParams{3, 8, 3, 2, 1}, 16, 16, true);
  EXPECT_EQ(layer.out_h(), 8);
  EXPECT_EQ(layer.out_w(), 8);
  std::vector<NamedParam> params;
  layer.collect_params(params);
  core::Rng rng(9);
  for (NamedParam& p : params) {
    if (p.name == "conv.weight") {
      for (float& v : p.tensor->f32_span()) v = rng.next_float() - 0.5f;
    }
  }
  Tensor out = layer.forward(random_input(Shape{1, 3, 16, 16}, 10));
  EXPECT_EQ(out.shape(), Shape({1, 8, 8, 8}));
  for (float v : out.f32_span()) EXPECT_GE(v, 0.0f);  // ReLU applied
}

TEST(ConvBnRelu, WithoutReluKeepsNegatives) {
  ConvBnRelu layer("conv", Conv2dParams{1, 1, 1, 1, 0}, 2, 2, false);
  std::vector<NamedParam> params;
  layer.collect_params(params);
  for (NamedParam& p : params) {
    if (p.name == "conv.weight") tensor::fill(*p.tensor, -1.0f);
  }
  Tensor input = Tensor::full(Shape{1, 1, 2, 2}, 1.0f);
  Tensor out = layer.forward(input);
  EXPECT_LT(out.f32()[0], 0.0f);
}

TEST(Bottleneck, DownsampleChangesGeometry) {
  Bottleneck block("b", 64, 32, 2, true, 16, 16);
  EXPECT_EQ(block.out_channels(), 128);
  EXPECT_EQ(block.out_h(), 8);
  Tensor input = random_input(Shape{1, 64, 16, 16}, 11);
  Tensor out = block.forward(input);
  EXPECT_EQ(out.shape(), Shape({1, 128, 8, 8}));
}

TEST(Bottleneck, IdentityPathRequiresMatchingChannels) {
  Bottleneck block("b", 128, 32, 1, false, 8, 8);
  Tensor input = random_input(Shape{2, 128, 8, 8}, 12);
  Tensor out = block.forward(input);
  EXPECT_EQ(out.shape(), input.shape());
}

TEST(Model, ForwardProducesLogits) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr model = build_vit(config);
  init_weights(*model, 42);
  Tensor input = random_input(Shape{3, 3, 8, 8}, 13);
  Tensor logits = model->forward(input);
  EXPECT_EQ(logits.shape(), Shape({3, 5}));
  for (float v : logits.f32_span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Model, SameSeedSameOutputs) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr a = build_vit(config);
  ModelPtr b = build_vit(config);
  init_weights(*a, 7);
  init_weights(*b, 7);
  Tensor input = random_input(Shape{1, 3, 8, 8}, 14);
  EXPECT_EQ(tensor::max_abs_diff(a->forward(input), b->forward(input)), 0.0f);
}

TEST(Model, DifferentSeedsDifferentOutputs) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 5};
  ModelPtr a = build_vit(config);
  ModelPtr b = build_vit(config);
  init_weights(*a, 7);
  init_weights(*b, 8);
  Tensor input = random_input(Shape{1, 3, 8, 8}, 14);
  EXPECT_GT(tensor::max_abs_diff(a->forward(input), b->forward(input)), 1e-4f);
}

TEST(Model, BatchInvariance) {
  // Running two images as one batch equals running them separately.
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 4};
  ModelPtr model = build_vit(config);
  init_weights(*model, 21);
  Tensor both = random_input(Shape{2, 3, 8, 8}, 15);
  Tensor first(Shape{1, 3, 8, 8}, DType::kF32);
  Tensor second(Shape{1, 3, 8, 8}, DType::kF32);
  const std::int64_t per = 3 * 8 * 8;
  std::copy_n(both.f32(), per, first.f32());
  std::copy_n(both.f32() + per, per, second.f32());
  Tensor batched = model->forward(both);
  Tensor a = model->forward(first);
  Tensor b = model->forward(second);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(batched.f32()[c], a.f32()[c], 1e-4f);
    EXPECT_NEAR(batched.f32()[4 + c], b.f32()[c], 1e-4f);
  }
}

TEST(Model, ProfileScalesLinearlyWithBatchForProjections) {
  ViTConfig config{"mini", 8, 2, 16, 2, 2, 2, 4};
  ModelPtr model = build_vit(config);
  const ModelProfile p1 = model->profile(1);
  const ModelProfile p4 = model->profile(4);
  EXPECT_DOUBLE_EQ(p4.projection_macs(), 4.0 * p1.projection_macs());
  EXPECT_DOUBLE_EQ(p4.total_macs(), 4.0 * p1.total_macs());
  EXPECT_EQ(p1.ops.size(), p4.ops.size());
}

TEST(Model, ResNetMiniForward) {
  ResNetConfig config{"mini-resnet", 32, {1, 1}, 7};
  ModelPtr model = build_resnet(config);
  init_weights(*model, 3);
  Tensor input = random_input(Shape{2, 3, 32, 32}, 16);
  Tensor logits = model->forward(input);
  EXPECT_EQ(logits.shape(), Shape({2, 7}));
  for (float v : logits.f32_span()) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace harvest::nn
