#include <gtest/gtest.h>

#include <cstring>

#include "core/rng.hpp"
#include "preproc/codec.hpp"
#include "preproc/image.hpp"

namespace harvest::preproc {
namespace {

Image noise_image(std::int64_t w, std::int64_t h, std::uint64_t seed) {
  Image img(w, h, 3);
  core::Rng rng(seed);
  for (std::size_t i = 0; i < img.byte_size(); ++i) {
    img.data()[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return img;
}

// -------------------------------------------------------- lossless codecs

struct LosslessCase {
  ImageFormat format;
  std::int64_t w, h;
};

class LosslessRoundTrip : public ::testing::TestWithParam<LosslessCase> {};

TEST_P(LosslessRoundTrip, FieldImageSurvivesExactly) {
  const auto& param = GetParam();
  const Image original = synthesize_field_image(param.w, param.h, 42);
  const EncodedImage encoded = encode_image(original, param.format);
  EXPECT_EQ(encoded.width, param.w);
  EXPECT_EQ(encoded.height, param.h);
  auto decoded = decode_image(encoded);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(mean_abs_diff(original, decoded.value()), 0.0);
}

TEST_P(LosslessRoundTrip, NoiseImageSurvivesExactly) {
  const auto& param = GetParam();
  const Image original = noise_image(param.w, param.h, 7);
  auto decoded = decode_image(encode_image(original, param.format));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(mean_abs_diff(original, decoded.value()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    FormatsAndSizes, LosslessRoundTrip,
    ::testing::Values(LosslessCase{ImageFormat::kPpm, 16, 16},
                      LosslessCase{ImageFormat::kPpm, 33, 17},
                      LosslessCase{ImageFormat::kBmp, 16, 16},
                      LosslessCase{ImageFormat::kBmp, 31, 9},  // row padding
                      LosslessCase{ImageFormat::kAtif, 16, 16},
                      LosslessCase{ImageFormat::kAtif, 61, 61},
                      LosslessCase{ImageFormat::kRaw, 24, 8},
                      LosslessCase{ImageFormat::kRaw, 1, 1},
                      LosslessCase{ImageFormat::kPpm, 1, 1},
                      LosslessCase{ImageFormat::kBmp, 2, 3},
                      LosslessCase{ImageFormat::kAtif, 3, 2}),
    [](const ::testing::TestParamInfo<LosslessCase>& param_info) {
      return std::string(format_name(param_info.param.format)) + "_" +
             std::to_string(param_info.param.w) + "x" + std::to_string(param_info.param.h);
    });

TEST(Atif, CompressesSmoothImagery) {
  const Image field = synthesize_field_image(128, 128, 3);
  const EncodedImage encoded = encode_image(field, ImageFormat::kAtif);
  EXPECT_LT(encoded.bytes.size(), field.byte_size());
}

TEST(Atif, LargeRepetitiveInputExercisesDictionaryReset) {
  // > 64k identical pixels force at least one LZW table reset.
  Image flat(300, 300, 3);
  for (std::size_t i = 0; i < flat.byte_size(); ++i) flat.data()[i] = 77;
  auto decoded = decode_image(encode_image(flat, ImageFormat::kAtif));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(mean_abs_diff(flat, decoded.value()), 0.0);
}

TEST(Atif, NoiseStressWithReset) {
  // Incompressible data grows the dictionary fastest.
  const Image noise = noise_image(200, 160, 9);
  auto decoded = decode_image(encode_image(noise, ImageFormat::kAtif));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(mean_abs_diff(noise, decoded.value()), 0.0);
}

// ------------------------------------------------------------------ lossy

TEST(AgJpeg, RoundTripErrorIsBounded) {
  const Image original = synthesize_field_image(64, 64, 5);
  auto decoded = decode_image(encode_image(original, ImageFormat::kAgJpeg, 85));
  ASSERT_TRUE(decoded.is_ok());
  // Quality 85 on smooth field imagery: small mean error.
  EXPECT_LT(mean_abs_diff(original, decoded.value()), 6.0);
}

TEST(AgJpeg, HigherQualityMeansLowerError) {
  const Image original = synthesize_field_image(64, 64, 6);
  auto q30 = decode_image(encode_image(original, ImageFormat::kAgJpeg, 30));
  auto q95 = decode_image(encode_image(original, ImageFormat::kAgJpeg, 95));
  ASSERT_TRUE(q30.is_ok());
  ASSERT_TRUE(q95.is_ok());
  EXPECT_LT(mean_abs_diff(original, q95.value()),
            mean_abs_diff(original, q30.value()));
}

TEST(AgJpeg, HigherQualityMeansMoreBytes) {
  const Image original = synthesize_field_image(64, 64, 6);
  const auto small = encode_agjpeg(original, 20);
  const auto large = encode_agjpeg(original, 95);
  EXPECT_LT(small.size(), large.size());
}

TEST(AgJpeg, CompressesFieldImagery) {
  const Image field = synthesize_field_image(256, 256, 8);
  const EncodedImage encoded = encode_image(field, ImageFormat::kAgJpeg, 85);
  EXPECT_LT(static_cast<double>(encoded.bytes.size()),
            0.7 * static_cast<double>(field.byte_size()));
}

TEST(AgJpeg, NonMultipleOfBlockDims) {
  const Image original = synthesize_field_image(21, 13, 10);
  auto decoded = decode_image(encode_image(original, ImageFormat::kAgJpeg, 90));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().width(), 21);
  EXPECT_EQ(decoded.value().height(), 13);
  EXPECT_LT(mean_abs_diff(original, decoded.value()), 8.0);
}

TEST(AgJpeg, FlatImageReconstructsAlmostPerfectly) {
  Image flat(32, 32, 3);
  for (std::size_t i = 0; i < flat.byte_size(); ++i) flat.data()[i] = 120;
  auto decoded = decode_image(encode_image(flat, ImageFormat::kAgJpeg, 85));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_LT(mean_abs_diff(flat, decoded.value()), 1.5);
}

// -------------------------------------------------------------- rejection

TEST(Malformed, EmptyBuffersRejected) {
  for (ImageFormat format :
       {ImageFormat::kPpm, ImageFormat::kBmp, ImageFormat::kAtif,
        ImageFormat::kAgJpeg, ImageFormat::kRaw}) {
    EncodedImage encoded;
    encoded.format = format;
    EXPECT_FALSE(decode_image(encoded).is_ok())
        << format_name(format);
  }
}

TEST(Malformed, TruncatedPayloadsRejected) {
  const Image original = synthesize_field_image(32, 32, 11);
  for (ImageFormat format :
       {ImageFormat::kPpm, ImageFormat::kBmp, ImageFormat::kAtif,
        ImageFormat::kAgJpeg, ImageFormat::kRaw}) {
    EncodedImage encoded = encode_image(original, format);
    encoded.bytes.resize(encoded.bytes.size() / 2);
    EXPECT_FALSE(decode_image(encoded).is_ok()) << format_name(format);
  }
}

TEST(Malformed, WrongMagicRejected) {
  const Image original = synthesize_field_image(16, 16, 12);
  for (ImageFormat format : {ImageFormat::kAtif, ImageFormat::kAgJpeg,
                             ImageFormat::kBmp, ImageFormat::kPpm}) {
    EncodedImage encoded = encode_image(original, format);
    encoded.bytes[0] ^= 0xFF;
    EXPECT_FALSE(decode_image(encoded).is_ok()) << format_name(format);
  }
}

TEST(Malformed, AbsurdGeometryRejected) {
  EncodedImage encoded;
  encoded.format = ImageFormat::kRaw;
  encoded.bytes.assign(16, 0);
  const std::int64_t w = -5;
  const std::int64_t h = 10;
  std::memcpy(encoded.bytes.data(), &w, 8);
  std::memcpy(encoded.bytes.data() + 8, &h, 8);
  EXPECT_FALSE(decode_image(encoded).is_ok());
}

TEST(Malformed, BitFlippedAtifDoesNotCrash) {
  const Image original = synthesize_field_image(48, 48, 13);
  core::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    EncodedImage encoded = encode_image(original, ImageFormat::kAtif);
    const std::size_t pos = static_cast<std::size_t>(rng.uniform_int(
        20, static_cast<std::int64_t>(encoded.bytes.size()) - 1));
    encoded.bytes[pos] ^= static_cast<std::uint8_t>(1 << rng.uniform_int(0, 7));
    // Either decodes (to something) or fails cleanly; must not crash.
    auto result = decode_image(encoded);
    (void)result;
  }
  SUCCEED();
}

TEST(Codec, FormatNamesStable) {
  EXPECT_STREQ(format_name(ImageFormat::kAgJpeg), "AgJPEG");
  EXPECT_STREQ(format_name(ImageFormat::kAtif), "ATIF");
  EXPECT_STREQ(format_name(ImageFormat::kRaw), "RAW");
}

TEST(FieldSynth, DeterministicAndSeedSensitive) {
  const Image a = synthesize_field_image(32, 32, 1);
  const Image b = synthesize_field_image(32, 32, 1);
  const Image c = synthesize_field_image(32, 32, 2);
  EXPECT_EQ(mean_abs_diff(a, b), 0.0);
  EXPECT_GT(mean_abs_diff(a, c), 1.0);
}

}  // namespace
}  // namespace harvest::preproc
