#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace harvest::core {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSubrange) {
  ThreadPool pool(2);
  std::vector<int> marks(20, 0);
  pool.parallel_for(5, 15, [&marks](std::size_t i) { marks[i] = 1; });
  for (std::size_t i = 0; i < marks.size(); ++i) {
    EXPECT_EQ(marks[i], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(3, 3, [&touched](std::size_t) { touched = true; });
  pool.parallel_for(5, 2, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  int value = 0;
  pool.parallel_for(7, 8, [&value](std::size_t i) {
    value = static_cast<int>(i);
  });
  EXPECT_EQ(value, 7);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor must wait for queued work.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, NestedSubmitFromTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto outer = pool.submit([&] {
    auto inner = pool.submit([&counter] { counter.fetch_add(1); });
    inner.get();
    counter.fetch_add(1);
  });
  outer.get();
  EXPECT_EQ(counter.load(), 2);
}

// Regression: parallel_for used to submit every chunk to the pool and
// block on the futures. Called from inside a pool task, the chunks
// queued behind the caller, which waited on them forever — a guaranteed
// deadlock on a single-worker pool. The claim-based scheme makes the
// calling thread execute chunks itself.
TEST(ThreadPool, ParallelForFromInsidePoolTaskDoesNotDeadlock) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(64);
  auto outer = pool.submit([&] {
    pool.parallel_for(0, hits.size(),
                      [&hits](std::size_t i) { hits[i].fetch_add(1); });
  });
  ASSERT_EQ(outer.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "parallel_for deadlocked when called from a pool worker";
  outer.get();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&counter](std::size_t) {
      counter.fetch_add(1);
    });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("iteration 57");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelReductionMatchesSerial) {
  ThreadPool pool(3);
  std::vector<long long> partial(1000, 0);
  pool.parallel_for(0, partial.size(), [&partial](std::size_t i) {
    partial[i] = static_cast<long long>(i) * static_cast<long long>(i);
  });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  long long expect = 0;
  for (long long i = 0; i < 1000; ++i) expect += i * i;
  EXPECT_EQ(total, expect);
}

}  // namespace
}  // namespace harvest::core
