#include "stitch/stitch.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "preproc/codec.hpp"

namespace harvest::stitch {
namespace {

SurveyConfig small_survey() {
  SurveyConfig config;
  config.field_width = 256;
  config.field_height = 192;
  config.capture_size = 64;
  config.overlap = 0.3;
  config.seed = 3;
  return config;
}

TEST(Survey, ProducesSerpentineCoverage) {
  const SurveyConfig config = small_survey();
  const auto captures = simulate_survey(config);
  ASSERT_GT(captures.size(), 4u);
  for (const Capture& capture : captures) {
    EXPECT_GE(capture.x, 0);
    EXPECT_GE(capture.y, 0);
    EXPECT_LE(capture.x + config.capture_size, config.field_width);
    EXPECT_LE(capture.y + config.capture_size, config.field_height);
    EXPECT_EQ(capture.image.width(), config.capture_size);
  }
}

TEST(Survey, DeterministicForSeed) {
  const auto a = simulate_survey(small_survey());
  const auto b = simulate_survey(small_survey());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
    EXPECT_EQ(preproc::mean_abs_diff(a[i].image, b[i].image), 0.0);
  }
}

TEST(Mosaic, ReconstructsReferenceField) {
  const SurveyConfig config = small_survey();
  const auto captures = simulate_survey(config);
  const preproc::Image mosaic =
      composite_mosaic(captures, config.field_width, config.field_height);
  const preproc::Image reference = reference_field(config);
  // Jitter + illumination drift allowed; blending must stay close.
  EXPECT_LT(preproc::mean_abs_diff(mosaic, reference), 12.0);
}

TEST(Mosaic, UncoveredPixelsAreBlack) {
  Capture capture;
  capture.image = preproc::synthesize_field_image(8, 8, 1);
  capture.x = 0;
  capture.y = 0;
  const preproc::Image mosaic = composite_mosaic({capture}, 32, 32);
  EXPECT_EQ(mosaic.at(31, 31, 0), 0);
  EXPECT_EQ(mosaic.at(31, 31, 1), 0);
  // Covered pixel is not black (field imagery is never pure black).
  EXPECT_GT(static_cast<int>(mosaic.at(4, 4, 0)) +
                static_cast<int>(mosaic.at(4, 4, 1)),
            0);
}

TEST(Mosaic, OverlapBlendingAveragesIllumination) {
  // Two captures of the same content at different gains: the blend in
  // the overlap must lie between the two.
  const preproc::Image base = preproc::synthesize_field_image(16, 16, 5);
  Capture dark;
  Capture bright;
  dark.image = preproc::Image(16, 16, 3);
  bright.image = preproc::Image(16, 16, 3);
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      for (std::int64_t c = 0; c < 3; ++c) {
        dark.image.at(x, y, c) = static_cast<std::uint8_t>(base.at(x, y, c) / 2);
        bright.image.at(x, y, c) = base.at(x, y, c);
      }
    }
  }
  const preproc::Image mosaic = composite_mosaic({dark, bright}, 16, 16);
  const std::uint8_t blended = mosaic.at(8, 8, 1);
  EXPECT_GE(blended, dark.image.at(8, 8, 1));
  EXPECT_LE(blended, bright.image.at(8, 8, 1));
}

TEST(Tiler, CountAndGeometry) {
  const preproc::Image mosaic = preproc::synthesize_field_image(100, 70, 7);
  const auto tiles = tile_mosaic(mosaic, 32, 32);
  EXPECT_EQ(tiles.size(), 3u * 2u);  // floor(100/32) × floor(70/32)
  for (const Tile& tile : tiles) {
    EXPECT_EQ(tile.image.width(), 32);
    EXPECT_EQ(tile.image.height(), 32);
    EXPECT_EQ(tile.x % 32, 0);
  }
}

TEST(Tiler, OverlappingStride) {
  const preproc::Image mosaic = preproc::synthesize_field_image(64, 64, 8);
  const auto tiles = tile_mosaic(mosaic, 32, 16);
  EXPECT_EQ(tiles.size(), 3u * 3u);
}

TEST(Tiler, TileContentMatchesMosaic) {
  const preproc::Image mosaic = preproc::synthesize_field_image(64, 64, 9);
  const auto tiles = tile_mosaic(mosaic, 16, 16);
  const Tile& tile = tiles[5];
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      ASSERT_EQ(tile.image.at(x, y, 0), mosaic.at(tile.x + x, tile.y + y, 0));
    }
  }
}

TEST(Heatmap, ScoresColourTiles) {
  const preproc::Image mosaic = preproc::synthesize_field_image(64, 32, 10);
  const auto tiles = tile_mosaic(mosaic, 32, 32);
  ASSERT_EQ(tiles.size(), 2u);
  const preproc::Image heat = render_heatmap(tiles, {0.0, 1.0}, 64, 32, 32);
  // Score 0 → green; score 1 → red.
  EXPECT_GT(heat.at(5, 5, 1), 200);
  EXPECT_LT(heat.at(5, 5, 0), 60);
  EXPECT_GT(heat.at(37, 5, 0), 200);
  EXPECT_LT(heat.at(37, 5, 1), 60);
}

TEST(Heatmap, WritePpmRoundTrips) {
  const preproc::Image mosaic = preproc::synthesize_field_image(20, 12, 11);
  const std::string path = ::testing::TempDir() + "/heat.ppm";
  ASSERT_TRUE(write_ppm(mosaic, path).is_ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<std::uint8_t> bytes(1 << 16);
  const std::size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(read);
  auto decoded = preproc::decode_ppm(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(preproc::mean_abs_diff(mosaic, decoded.value()), 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace harvest::stitch
