#include <gtest/gtest.h>

#include <cstdint>

#include "tensor/buffer.hpp"
#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace harvest::tensor {
namespace {

TEST(Shape, BasicGeometry) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarHasNumelOne) {
  Shape s = Shape::scalar();
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, EqualityAndWithDim) {
  Shape a{1, 3, 224, 224};
  Shape b{1, 3, 224, 224};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Shape({1, 3, 224}));
  EXPECT_EQ(a.with_dim(0, 8), Shape({8, 3, 224, 224}));
  EXPECT_EQ(a, b);  // with_dim does not mutate
}

TEST(Buffer, AlignmentIs64Bytes) {
  AlignedBuffer buffer(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u);
  EXPECT_EQ(buffer.size_bytes(), 100u);
  EXPECT_FALSE(buffer.empty());
}

TEST(Buffer, ZeroInitialized) {
  AlignedBuffer buffer(256);
  const auto* bytes = buffer.as<std::uint8_t>();
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(bytes[i], 0);
}

TEST(Buffer, EmptyBuffer) {
  AlignedBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size_bytes(), 0u);
}

TEST(Tensor, ZerosAndFill) {
  Tensor t(Shape{2, 3}, DType::kF32);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.size_bytes(), 24u);
  for (float v : t.f32_span()) EXPECT_EQ(v, 0.0f);
  fill(t, 2.5f);
  for (float v : t.f32_span()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, FullFactory) {
  Tensor t = Tensor::full(Shape{4}, -1.5f);
  for (float v : t.f32_span()) EXPECT_EQ(v, -1.5f);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t = Tensor::full(Shape{4}, 1.0f);
  Tensor copy = t.clone();
  copy.f32()[0] = 9.0f;
  EXPECT_EQ(t.f32()[0], 1.0f);
  EXPECT_EQ(copy.f32()[0], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6}, DType::kF32);
  for (std::int64_t i = 0; i < 12; ++i) t.f32()[i] = static_cast<float>(i);
  Tensor r = std::move(t).reshape(Shape{3, 4});
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_EQ(r.f32()[i], static_cast<float>(i));
}

TEST(Tensor, U8TypedAccess) {
  Tensor t(Shape{5}, DType::kU8);
  t.u8()[3] = 200;
  EXPECT_EQ(t.u8_span()[3], 200);
  EXPECT_EQ(t.size_bytes(), 5u);
}

TEST(TensorDeath, WrongDTypeAccessAborts) {
  Tensor t(Shape{2}, DType::kU8);
  EXPECT_DEATH(t.f32(), "not f32");
}

TEST(Ops, AddAndAddInplace) {
  Tensor a = Tensor::full(Shape{3}, 1.0f);
  Tensor b = Tensor::full(Shape{3}, 2.0f);
  Tensor out(Shape{3}, DType::kF32);
  add(a, b, out);
  for (float v : out.f32_span()) EXPECT_EQ(v, 3.0f);
  add_inplace(a, b);
  for (float v : a.f32_span()) EXPECT_EQ(v, 3.0f);
}

TEST(Ops, ScaleShift) {
  Tensor a = Tensor::full(Shape{4}, 2.0f);
  Tensor out(Shape{4}, DType::kF32);
  scale_shift(a, 3.0f, 1.0f, out);
  for (float v : out.f32_span()) EXPECT_EQ(v, 7.0f);
}

TEST(Ops, SumMaxArgmax) {
  Tensor t(Shape{4}, DType::kF32);
  t.f32()[0] = 1.0f;
  t.f32()[1] = -2.0f;
  t.f32()[2] = 5.0f;
  t.f32()[3] = 0.5f;
  EXPECT_DOUBLE_EQ(sum(t), 4.5);
  EXPECT_EQ(max_value(t), 5.0f);
  EXPECT_EQ(argmax(t.f32_span()), 2);
}

TEST(Ops, MaxAbsDiffAndAllclose) {
  Tensor a = Tensor::full(Shape{3}, 1.0f);
  Tensor b = a.clone();
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  EXPECT_TRUE(allclose(a, b));
  b.f32()[1] = 1.001f;
  EXPECT_NEAR(max_abs_diff(a, b), 0.001f, 1e-6f);
  EXPECT_FALSE(allclose(a, b, 1e-5f, 1e-6f));
  EXPECT_TRUE(allclose(a, b, 1e-2f, 1e-2f));
}

TEST(Ops, AllcloseRejectsShapeMismatch) {
  Tensor a(Shape{2}, DType::kF32);
  Tensor b(Shape{3}, DType::kF32);
  EXPECT_FALSE(allclose(a, b));
}

TEST(Ops, ToF32ConvertsBytes) {
  Tensor u(Shape{3}, DType::kU8);
  u.u8()[0] = 0;
  u.u8()[1] = 128;
  u.u8()[2] = 255;
  Tensor f = to_f32(u);
  EXPECT_EQ(f.dtype(), DType::kF32);
  EXPECT_EQ(f.f32()[0], 0.0f);
  EXPECT_EQ(f.f32()[1], 128.0f);
  EXPECT_EQ(f.f32()[2], 255.0f);
}

}  // namespace
}  // namespace harvest::tensor
