/// HVST checkpoint coverage for the RWKV family: the image classifier
/// (nn/rwkv.hpp) with its per-block decay tensors, and the explicit
/// save_params/load_params entry points the token models serialize
/// through. The round-trip contract is bit-exactness — recurrent decay
/// parameters are exponentiated inside the WKV scan, so even 1-ulp drift
/// would compound over a sequence.

#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/rwkv.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

RwkvConfig mini_config() {
  RwkvConfig config;
  config.name = "ser-rwkv";
  config.image = 8;
  config.patch = 2;
  config.dim = 16;
  config.depth = 3;
  config.num_classes = 7;
  return config;
}

tensor::Tensor random_input(std::uint64_t seed) {
  tensor::Tensor t(tensor::Shape{1, 3, 8, 8}, tensor::DType::kF32);
  core::Rng rng(seed);
  for (float& v : t.f32_span()) v = rng.next_float() - 0.5f;
  return t;
}

TEST(SerializeRwkv, RoundTripIsBitExactIncludingDecay) {
  ModelPtr original = build_rwkv(mini_config());
  init_weights(*original, 77);
  const std::string path = ::testing::TempDir() + "/ser-rwkv.hvst";
  ASSERT_TRUE(save_weights(*original, path).is_ok());

  ModelPtr loaded = build_rwkv(mini_config());
  init_weights(*loaded, 1);
  ASSERT_TRUE(load_weights(*loaded, path).is_ok());

  auto orig_params = original->params();
  auto loaded_params = loaded->params();
  ASSERT_EQ(orig_params.size(), loaded_params.size());
  std::size_t decay_tensors = 0;
  for (std::size_t i = 0; i < orig_params.size(); ++i) {
    ASSERT_EQ(orig_params[i].name, loaded_params[i].name);
    if (orig_params[i].name.find("decay") != std::string::npos) {
      ++decay_tensors;
    }
    const auto a = orig_params[i].tensor->f32_span();
    const auto b = loaded_params[i].tensor->f32_span();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << orig_params[i].name;
  }
  // One decay vector per block — the recurrent parameters the WKV scan
  // exponentiates must actually be in the checkpoint.
  EXPECT_EQ(decay_tensors, 3u);

  const tensor::Tensor input = random_input(5);
  EXPECT_EQ(tensor::max_abs_diff(original->forward(input),
                                 loaded->forward(input)),
            0.0f);
  std::remove(path.c_str());
}

TEST(SerializeParams, ExplicitListRoundTrips) {
  // The token-model path: serialize a bare NamedParam list, no Model.
  tensor::Tensor a(tensor::Shape{3, 4}, tensor::DType::kF32);
  tensor::Tensor b(tensor::Shape{5}, tensor::DType::kF32);
  core::Rng rng(9);
  for (float& v : a.f32_span()) v = rng.next_float();
  for (float& v : b.f32_span()) v = rng.next_float();
  std::vector<NamedParam> params{{"m.weight", &a}, {"m.bias", &b}};

  const std::string path = ::testing::TempDir() + "/params.hvst";
  ASSERT_TRUE(save_params(params, path).is_ok());

  tensor::Tensor a2(tensor::Shape{3, 4}, tensor::DType::kF32);
  tensor::Tensor b2(tensor::Shape{5}, tensor::DType::kF32);
  std::vector<NamedParam> loaded{{"m.weight", &a2}, {"m.bias", &b2}};
  ASSERT_TRUE(load_params(loaded, path).is_ok());
  EXPECT_EQ(tensor::max_abs_diff(a, a2), 0.0f);
  EXPECT_EQ(tensor::max_abs_diff(b, b2), 0.0f);
  std::remove(path.c_str());
}

TEST(SerializeParams, RejectsShapeMismatch) {
  tensor::Tensor a(tensor::Shape{3, 4}, tensor::DType::kF32);
  std::vector<NamedParam> params{{"m.weight", &a}};
  const std::string path = ::testing::TempDir() + "/params-shape.hvst";
  ASSERT_TRUE(save_params(params, path).is_ok());

  tensor::Tensor wrong(tensor::Shape{4, 3}, tensor::DType::kF32);
  std::vector<NamedParam> loaded{{"m.weight", &wrong}};
  EXPECT_EQ(load_params(loaded, path).code(),
            core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeParams, RejectsWrongArchitecture) {
  // A ViT checkpoint must not load into an RWKV model: the name check
  // fires before any data is copied.
  ViTConfig vit_config{"ser-vit", 8, 2, 16, 2, 2, 2, 7};
  ModelPtr vit = build_vit(vit_config);
  init_weights(*vit, 3);
  const std::string path = ::testing::TempDir() + "/ser-vit.hvst";
  ASSERT_TRUE(save_weights(*vit, path).is_ok());

  ModelPtr rwkv = build_rwkv(mini_config());
  init_weights(*rwkv, 3);
  EXPECT_EQ(load_weights(*rwkv, path).code(),
            core::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeParams, MissingFileIsNotFound) {
  ModelPtr model = build_rwkv(mini_config());
  EXPECT_EQ(load_weights(*model, "/nonexistent/dir/x.hvst").code(),
            core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace harvest::nn
