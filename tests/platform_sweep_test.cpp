/// Dense property sweeps over the full (device × model × batch) grid of
/// the calibrated engine model — every invariant the characterization
/// relies on, checked everywhere, not just at the anchors.

#include <gtest/gtest.h>

#include <tuple>

#include "nn/models.hpp"
#include "platform/calibration.hpp"
#include "platform/perf_model.hpp"

namespace harvest::platform {
namespace {

using GridParam = std::tuple<std::string, std::string>;  // device, model

class EngineGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  void SetUp() override {
    const auto& [device_name, model_name] = GetParam();
    device_ = find_device(device_name);
    ASSERT_NE(device_, nullptr);
    engine_ = std::make_unique<EngineModel>(
        make_engine_model(*device_, model_name));
  }

  std::vector<std::int64_t> grid() const {
    std::vector<std::int64_t> batches;
    for (std::int64_t b = 1; b <= engine_->max_batch() && b <= 1024;
         b = b < 8 ? b + 1 : b + b / 2) {
      batches.push_back(b);
    }
    return batches;
  }

  const DeviceSpec* device_ = nullptr;
  std::unique_ptr<EngineModel> engine_;
};

TEST_P(EngineGrid, LatencyDominatesIdealEverywhere) {
  for (std::int64_t batch : grid()) {
    const EngineEstimate est = engine_->estimate(batch);
    ASSERT_FALSE(est.oom) << batch;
    EXPECT_GT(est.latency_s, engine_->ideal_latency_s(batch)) << batch;
  }
}

TEST_P(EngineGrid, MemoryGrowsLinearlyWithBatch) {
  const double m1 = engine_->memory_required_bytes(1);
  const double m2 = engine_->memory_required_bytes(2);
  const double per_image = m2 - m1;
  ASSERT_GT(per_image, 0.0);
  for (std::int64_t batch : grid()) {
    EXPECT_NEAR(engine_->memory_required_bytes(batch),
                m1 + per_image * static_cast<double>(batch - 1),
                1.0)
        << batch;
  }
}

TEST_P(EngineGrid, EnergyPerImageMonotoneNonIncreasing) {
  double previous = 1e300;
  for (std::int64_t batch : grid()) {
    const EngineEstimate est = engine_->estimate(batch);
    EXPECT_LE(est.energy_per_image_j, previous * (1.0 + 1e-9)) << batch;
    previous = est.energy_per_image_j;
  }
}

TEST_P(EngineGrid, MfuMonotoneNonDecreasingAndBounded) {
  double previous = 0.0;
  for (std::int64_t batch : grid()) {
    const EngineEstimate est = engine_->estimate(batch);
    EXPECT_GE(est.mfu_vs_practical, previous * (1.0 - 1e-9)) << batch;
    EXPECT_GT(est.mfu_vs_practical, 0.0) << batch;
    EXPECT_LE(est.mfu_vs_practical, engine_->eff_max() + 1e-9) << batch;
    previous = est.mfu_vs_practical;
  }
}

TEST_P(EngineGrid, EstimatesAreDeterministic) {
  for (std::int64_t batch : {1, 7, 33}) {
    if (batch > engine_->max_batch()) continue;
    const EngineEstimate a = engine_->estimate(batch);
    const EngineEstimate b = engine_->estimate(batch);
    EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
    EXPECT_DOUBLE_EQ(a.throughput_img_per_s, b.throughput_img_per_s);
  }
}

TEST_P(EngineGrid, ThroughputTimesLatencyEqualsBatch) {
  for (std::int64_t batch : grid()) {
    const EngineEstimate est = engine_->estimate(batch);
    EXPECT_NEAR(est.throughput_img_per_s * est.latency_s,
                static_cast<double>(batch), 1e-6)
        << batch;
  }
}

std::vector<GridParam> all_pairs() {
  std::vector<GridParam> pairs;
  for (const DeviceSpec* device : evaluated_platforms()) {
    for (const nn::ModelSpec& spec : nn::evaluated_models()) {
      pairs.emplace_back(device->name, spec.name);
    }
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, EngineGrid, ::testing::ValuesIn(all_pairs()),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      return std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
    });

}  // namespace
}  // namespace harvest::platform
