#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"

namespace harvest::nn {
namespace {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  core::Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.next_float() * 2.0f - 1.0f;
  return v;
}

// ------------------------------------------------------------------- GEMM

/// Blocked GEMM must match the naive reference across awkward shapes
/// (non-multiples of the 4×16 micro-kernel and the cache blocks).
class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  const auto a = random_vec(static_cast<std::size_t>(m * k), 1);
  const auto b = random_vec(static_cast<std::size_t>(k * n), 2);
  std::vector<float> c_blocked(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<float> c_naive(static_cast<std::size_t>(m * n), 0.0f);
  gemm(a.data(), b.data(), c_blocked.data(), m, n, k);
  gemm_naive(a.data(), b.data(), c_naive.data(), m, n, k);
  for (std::size_t i = 0; i < c_naive.size(); ++i) {
    EXPECT_NEAR(c_blocked[i], c_naive[i],
                1e-4f * static_cast<float>(k)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 16, 8),
                      std::make_tuple(5, 17, 9), std::make_tuple(3, 1, 7),
                      std::make_tuple(64, 64, 64), std::make_tuple(65, 33, 70),
                      std::make_tuple(128, 16, 300),
                      std::make_tuple(7, 130, 257),
                      std::make_tuple(100, 100, 1),
                      // Packed-panel edge cases: M%4≠0 with N%16≠0
                      // around the KC/NC block boundaries, ViT-ish M.
                      std::make_tuple(37, 41, 259),
                      std::make_tuple(196, 49, 64),
                      std::make_tuple(2, 515, 33)));

TEST(Gemm, AccumulateAddsToExisting) {
  const auto a = random_vec(6, 3);
  const auto b = random_vec(6, 4);
  std::vector<float> base(4, 1.0f);
  std::vector<float> expect(4, 0.0f);
  gemm_naive(a.data(), b.data(), expect.data(), 2, 2, 3);
  for (float& v : expect) v += 1.0f;
  gemm(a.data(), b.data(), base.data(), 2, 2, 3, /*accumulate=*/true);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(base[i], expect[i], 1e-5f);
}

TEST(Gemm, TransposedBMatchesExplicitTranspose) {
  constexpr int kM = 9;
  constexpr int kN = 13;
  constexpr int kK = 21;
  const auto a = random_vec(kM * kK, 5);
  const auto b_t = random_vec(kN * kK, 6);  // stored [N, K]
  std::vector<float> b(kK * kN);
  for (int i = 0; i < kN; ++i) {
    for (int p = 0; p < kK; ++p) b[p * kN + i] = b_t[i * kK + p];
  }
  std::vector<float> via_bt(kM * kN, 0.0f);
  std::vector<float> via_plain(kM * kN, 0.0f);
  gemm_bt(a.data(), b_t.data(), via_bt.data(), kM, kN, kK);
  gemm_naive(a.data(), b.data(), via_plain.data(), kM, kN, kK);
  for (int i = 0; i < kM * kN; ++i) EXPECT_NEAR(via_bt[i], via_plain[i], 1e-4f);
}

TEST(Gemm, RowBias) {
  std::vector<float> c = {0.0f, 0.0f, 1.0f, 1.0f};
  const std::vector<float> bias = {10.0f, 20.0f};
  add_row_bias(c.data(), bias.data(), 2, 2);
  EXPECT_EQ(c[0], 10.0f);
  EXPECT_EQ(c[1], 20.0f);
  EXPECT_EQ(c[2], 11.0f);
  EXPECT_EQ(c[3], 21.0f);
}

TEST(Gemm, DegenerateDimsAreNoops) {
  std::vector<float> c(4, 5.0f);
  gemm(nullptr, nullptr, c.data(), 0, 2, 2);
  EXPECT_EQ(c[0], 5.0f);
}

// ------------------------------------------------- fused epilogue / strides

TEST(GemmEx, FusedColumnBiasMatchesSeparatePass) {
  constexpr int kM = 21, kN = 35, kK = 40;
  const auto a = random_vec(kM * kK, 12);
  const auto b = random_vec(kK * kN, 13);
  const auto bias = random_vec(kN, 14);
  std::vector<float> want(kM * kN, 0.0f);
  gemm_naive(a.data(), b.data(), want.data(), kM, kN, kK);
  add_row_bias(want.data(), bias.data(), kM, kN);

  GemmEpilogue ep;
  ep.bias_n = bias.data();
  std::vector<float> got(kM * kN, -7.0f);
  gemm_ex(a.data(), b.data(), got.data(), kM, kN, kK, /*accumulate=*/false, ep);
  for (int i = 0; i < kM * kN; ++i) EXPECT_NEAR(got[i], want[i], 1e-4f) << i;
}

TEST(GemmEx, FusedRowBiasAddsPerRow) {
  // bias_m is the conv path: one bias per output row (out-channel).
  constexpr int kM = 6, kN = 18, kK = 11;
  const auto a = random_vec(kM * kK, 21);
  const auto b = random_vec(kK * kN, 22);
  const auto bias = random_vec(kM, 23);
  std::vector<float> want(kM * kN, 0.0f);
  gemm_naive(a.data(), b.data(), want.data(), kM, kN, kK);
  for (int i = 0; i < kM; ++i) {
    for (int j = 0; j < kN; ++j) want[i * kN + j] += bias[i];
  }
  GemmEpilogue ep;
  ep.bias_m = bias.data();
  std::vector<float> got(kM * kN);
  gemm_ex(a.data(), b.data(), got.data(), kM, kN, kK, false, ep);
  for (int i = 0; i < kM * kN; ++i) EXPECT_NEAR(got[i], want[i], 1e-4f) << i;
}

TEST(GemmEx, FusedReluMatchesSeparateActivation) {
  constexpr int kM = 19, kN = 31, kK = 67;
  const auto a = random_vec(kM * kK, 31);
  const auto b = random_vec(kK * kN, 32);
  std::vector<float> want(kM * kN, 0.0f);
  gemm_naive(a.data(), b.data(), want.data(), kM, kN, kK);
  relu_inplace(want.data(), kM * kN);

  GemmEpilogue ep;
  ep.act = EpilogueAct::kRelu;
  std::vector<float> got(kM * kN);
  gemm_ex(a.data(), b.data(), got.data(), kM, kN, kK, false, ep);
  for (int i = 0; i < kM * kN; ++i) EXPECT_NEAR(got[i], want[i], 1e-5f) << i;
}

TEST(GemmEx, FusedGeluMatchesGeluInplace) {
  // Must be bit-compatible with the standalone activation the layers
  // previously called, so fusing fc1 doesn't drift model outputs.
  constexpr int kM = 33, kN = 20, kK = 129;
  const auto a = random_vec(kM * kK, 41);
  const auto b_t = random_vec(kN * kK, 42);
  const auto bias = random_vec(kN, 43);
  std::vector<float> b(kK * kN);
  for (int j = 0; j < kN; ++j) {
    for (int p = 0; p < kK; ++p) b[p * kN + j] = b_t[j * kK + p];
  }
  std::vector<float> want(kM * kN, 0.0f);
  gemm_naive(a.data(), b.data(), want.data(), kM, kN, kK);
  add_row_bias(want.data(), bias.data(), kM, kN);
  gelu_inplace(want.data(), kM * kN);

  GemmEpilogue ep;
  ep.bias_n = bias.data();
  ep.act = EpilogueAct::kGelu;
  std::vector<float> got(kM * kN);
  gemm_bt_ex(a.data(), b_t.data(), got.data(), kM, kN, kK, false, ep);
  for (int i = 0; i < kM * kN; ++i) EXPECT_NEAR(got[i], want[i], 1e-4f) << i;
}

TEST(GemmEx, EpilogueWithAccumulate) {
  constexpr int kM = 10, kN = 22, kK = 30;
  const auto a = random_vec(kM * kK, 51);
  const auto b = random_vec(kK * kN, 52);
  const auto bias = random_vec(kN, 53);
  std::vector<float> want(kM * kN, 2.0f);
  gemm_naive(a.data(), b.data(), want.data(), kM, kN, kK, /*accumulate=*/true);
  add_row_bias(want.data(), bias.data(), kM, kN);

  GemmEpilogue ep;
  ep.bias_n = bias.data();
  std::vector<float> got(kM * kN, 2.0f);
  gemm_ex(a.data(), b.data(), got.data(), kM, kN, kK, /*accumulate=*/true, ep);
  for (int i = 0; i < kM * kN; ++i) EXPECT_NEAR(got[i], want[i], 1e-4f) << i;
}

TEST(GemmStrided, EmbeddedOperandsMatchDense) {
  constexpr int kM = 14, kN = 27, kK = 53;
  constexpr int kLda = kK + 4, kLdb = kN + 6, kLdc = kN + 2;
  const auto a = random_vec(kM * kK, 61);
  const auto b = random_vec(kK * kN, 62);
  std::vector<float> wa(kM * kLda, 9.0f), wb(kK * kLdb, 9.0f);
  std::vector<float> wc(kM * kLdc, 3.0f);
  for (int i = 0; i < kM; ++i) {
    for (int p = 0; p < kK; ++p) wa[i * kLda + p] = a[i * kK + p];
  }
  for (int p = 0; p < kK; ++p) {
    for (int j = 0; j < kN; ++j) wb[p * kLdb + j] = b[p * kN + j];
  }
  std::vector<float> want(kM * kN, 0.0f);
  gemm_naive(a.data(), b.data(), want.data(), kM, kN, kK);

  gemm_strided(wa.data(), kLda, wb.data(), kLdb, wc.data(), kLdc, kM, kN, kK);
  for (int i = 0; i < kM; ++i) {
    for (int j = 0; j < kN; ++j) {
      EXPECT_NEAR(wc[i * kLdc + j], want[i * kN + j], 1e-4f) << i << "," << j;
    }
  }
  // Gutter columns between logical rows must be untouched.
  for (int i = 0; i < kM; ++i) {
    for (int j = kN; j < kLdc; ++j) EXPECT_EQ(wc[i * kLdc + j], 3.0f);
  }
}

TEST(GemmStrided, TransposedBStridedMatchesDense) {
  constexpr int kM = 11, kN = 9, kK = 40;
  constexpr int kLda = kK + 1, kLdb = kK + 8, kLdc = kN + 5;
  const auto a = random_vec(kM * kK, 71);
  const auto b_t = random_vec(kN * kK, 72);
  std::vector<float> wa(kM * kLda, 0.0f), wbt(kN * kLdb, 0.0f);
  std::vector<float> wc(kM * kLdc, 0.0f);
  for (int i = 0; i < kM; ++i) {
    for (int p = 0; p < kK; ++p) wa[i * kLda + p] = a[i * kK + p];
  }
  for (int j = 0; j < kN; ++j) {
    for (int p = 0; p < kK; ++p) wbt[j * kLdb + p] = b_t[j * kK + p];
  }
  std::vector<float> want(kM * kN, 0.0f);
  gemm_bt(a.data(), b_t.data(), want.data(), kM, kN, kK);

  gemm_bt_strided(wa.data(), kLda, wbt.data(), kLdb, wc.data(), kLdc, kM, kN,
                  kK);
  for (int i = 0; i < kM; ++i) {
    for (int j = 0; j < kN; ++j) {
      EXPECT_NEAR(wc[i * kLdc + j], want[i * kN + j], 1e-4f) << i << "," << j;
    }
  }
}

// ------------------------------------------------------------ activations

TEST(Activations, ReluClampsNegatives) {
  std::vector<float> x = {-1.0f, 0.0f, 2.0f};
  relu_inplace(x.data(), 3);
  EXPECT_EQ(x[0], 0.0f);
  EXPECT_EQ(x[1], 0.0f);
  EXPECT_EQ(x[2], 2.0f);
}

TEST(Activations, GeluKnownValues) {
  std::vector<float> x = {0.0f, 1.0f, -1.0f, 3.0f};
  gelu_inplace(x.data(), 4);
  EXPECT_NEAR(x[0], 0.0f, 1e-6f);
  EXPECT_NEAR(x[1], 0.841345f, 1e-4f);
  EXPECT_NEAR(x[2], -0.158655f, 1e-4f);
  EXPECT_NEAR(x[3], 2.99595f, 1e-4f);
}

TEST(Activations, SoftmaxRowsSumToOne) {
  auto x = random_vec(8 * 33, 7);
  for (float& v : x) v *= 20.0f;  // stress stability
  softmax_rows(x.data(), 8, 33);
  for (int r = 0; r < 8; ++r) {
    double sum = 0.0;
    for (int i = 0; i < 33; ++i) {
      const float v = x[static_cast<std::size_t>(r * 33 + i)];
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Activations, SoftmaxHandlesLargeMagnitudes) {
  std::vector<float> x = {1000.0f, 1000.0f, -1000.0f};
  softmax_rows(x.data(), 1, 3);
  EXPECT_NEAR(x[0], 0.5f, 1e-5f);
  EXPECT_NEAR(x[1], 0.5f, 1e-5f);
  EXPECT_NEAR(x[2], 0.0f, 1e-6f);
}

TEST(Activations, SigmoidRange) {
  std::vector<float> x = {-10.0f, 0.0f, 10.0f};
  sigmoid_inplace(x);
  EXPECT_LT(x[0], 0.001f);
  EXPECT_NEAR(x[1], 0.5f, 1e-6f);
  EXPECT_GT(x[2], 0.999f);
}

// ------------------------------------------------------------------- norm

TEST(Norm, LayernormProducesZeroMeanUnitVar) {
  constexpr int kRows = 5;
  constexpr int kDim = 64;
  auto x = random_vec(kRows * kDim, 8);
  std::vector<float> y(kRows * kDim);
  std::vector<float> gamma(kDim, 1.0f);
  std::vector<float> beta(kDim, 0.0f);
  layernorm_rows(x.data(), y.data(), kRows, kDim, gamma.data(), beta.data());
  for (int r = 0; r < kRows; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int i = 0; i < kDim; ++i) {
      mean += static_cast<double>(y[static_cast<std::size_t>(r * kDim + i)]);
    }
    mean /= kDim;
    for (int i = 0; i < kDim; ++i) {
      const double d =
          static_cast<double>(y[static_cast<std::size_t>(r * kDim + i)]) - mean;
      var += d * d;
    }
    var /= kDim;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Norm, LayernormAppliesGainAndShift) {
  std::vector<float> x = {1.0f, 3.0f};  // mean 2, std 1
  std::vector<float> y(2);
  std::vector<float> gamma = {2.0f, 2.0f};
  std::vector<float> beta = {10.0f, 10.0f};
  layernorm_rows(x.data(), y.data(), 1, 2, gamma.data(), beta.data());
  EXPECT_NEAR(y[0], 10.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(y[1], 10.0f + 2.0f, 1e-3f);
}

TEST(Norm, BatchnormFoldsRunningStats) {
  constexpr int kC = 2;
  constexpr int kHW = 4;
  std::vector<float> x(kC * kHW);
  for (int i = 0; i < kC * kHW; ++i) x[static_cast<std::size_t>(i)] = static_cast<float>(i);
  std::vector<float> y(kC * kHW);
  const std::vector<float> mean = {1.5f, 5.5f};
  const std::vector<float> var = {1.25f, 1.25f};
  const std::vector<float> gamma = {1.0f, 2.0f};
  const std::vector<float> beta = {0.0f, 1.0f};
  batchnorm_nchw(x.data(), y.data(), 1, kC, kHW, mean.data(), var.data(),
                 gamma.data(), beta.data(), 0.0f);
  // Channel 0: (x - 1.5)/sqrt(1.25)
  EXPECT_NEAR(y[0], -1.3416f, 1e-3f);
  EXPECT_NEAR(y[3], 1.3416f, 1e-3f);
  // Channel 1: 2*(x - 5.5)/sqrt(1.25) + 1
  EXPECT_NEAR(y[4], 2.0f * -1.3416f + 1.0f, 1e-3f);
}

// ------------------------------------------------------------------- conv

struct ConvCase {
  std::int64_t n, c, h, w, out_c, kernel, stride, padding;
};

class ConvShapes : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapes, Im2colMatchesDirect) {
  const ConvCase& cc = GetParam();
  Tensor input(Shape{cc.n, cc.c, cc.h, cc.w}, DType::kF32);
  core::Rng rng(11);
  for (float& v : input.f32_span()) v = rng.next_float() - 0.5f;
  Tensor weight(Shape{cc.out_c, cc.c * cc.kernel * cc.kernel}, DType::kF32);
  for (float& v : weight.f32_span()) v = rng.next_float() - 0.5f;
  std::vector<float> bias(static_cast<std::size_t>(cc.out_c));
  for (float& v : bias) v = rng.next_float();

  const Conv2dParams params{cc.c, cc.out_c, cc.kernel, cc.stride, cc.padding};
  Tensor scratch;
  Tensor fast = conv2d(input, weight, bias.data(), params, scratch);
  Tensor slow = conv2d_naive(input, weight, bias.data(), params);
  EXPECT_EQ(fast.shape(), slow.shape());
  EXPECT_LT(tensor::max_abs_diff(fast, slow), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvShapes,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1, 1},
                      ConvCase{2, 3, 8, 8, 4, 3, 1, 1},
                      ConvCase{1, 3, 9, 7, 2, 3, 2, 1},
                      ConvCase{1, 4, 8, 8, 8, 1, 1, 0},
                      ConvCase{1, 3, 12, 12, 2, 7, 2, 3},
                      ConvCase{2, 2, 6, 6, 3, 3, 2, 0},
                      // Batch-parallel path with padding and odd
                      // geometry: each batch item gets its own scratch
                      // slot, all must match the direct loop.
                      ConvCase{4, 3, 9, 9, 5, 3, 2, 1},
                      ConvCase{3, 2, 7, 5, 4, 5, 1, 2},
                      ConvCase{5, 1, 6, 6, 2, 3, 1, 1}));

TEST(Conv, ScratchReuseAcrossBatchSizes) {
  // The per-worker scratch layout depends on the batch size; reusing
  // one scratch tensor across different batches must stay correct.
  core::Rng rng(29);
  Tensor weight(Shape{3, 2 * 3 * 3}, DType::kF32);
  for (float& v : weight.f32_span()) v = rng.next_float() - 0.5f;
  const Conv2dParams params{2, 3, 3, 1, 1};
  Tensor scratch;
  for (std::int64_t batch : {4, 1, 3}) {
    Tensor input(Shape{batch, 2, 6, 6}, DType::kF32);
    for (float& v : input.f32_span()) v = rng.next_float() - 0.5f;
    Tensor fast = conv2d(input, weight, nullptr, params, scratch);
    Tensor slow = conv2d_naive(input, weight, nullptr, params);
    EXPECT_LT(tensor::max_abs_diff(fast, slow), 1e-3f) << "batch " << batch;
  }
}

TEST(Conv, OutExtentFormula) {
  EXPECT_EQ(conv_out_extent(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_extent(112, 3, 2, 1), 56);
  EXPECT_EQ(conv_out_extent(5, 3, 1, 0), 3);
  EXPECT_EQ(conv_out_extent(5, 1, 1, 0), 5);
}

// Regression: degenerate geometry used to slip through and produce a
// zero/negative output extent that blew up later as a bogus tensor
// shape; it must fail fast at the formula with a clear message.
TEST(ConvDeathTest, KernelLargerThanPaddedInputIsRejected) {
  EXPECT_DEATH(conv_out_extent(4, 7, 1, 0), "kernel exceeds padded input");
  EXPECT_DEATH(conv_out_extent(2, 5, 1, 1), "kernel exceeds padded input");
}

TEST(ConvDeathTest, NonPositiveStrideIsRejected) {
  EXPECT_DEATH(conv_out_extent(8, 3, 0, 1), "stride must be >= 1");
  EXPECT_DEATH(conv_out_extent(8, 3, -2, 1), "stride must be >= 1");
}

TEST(ConvDeathTest, NonPositiveExtentsAreRejected) {
  EXPECT_DEATH(conv_out_extent(0, 1, 1, 0), "in>=1");
  EXPECT_DEATH(conv_out_extent(8, 0, 1, 0), "in>=1");
  EXPECT_DEATH(conv_out_extent(8, 3, 1, -1), "in>=1");
}

TEST(Conv, MaxPoolPicksWindowMax) {
  Tensor input(Shape{1, 1, 4, 4}, DType::kF32);
  for (int i = 0; i < 16; ++i) input.f32()[i] = static_cast<float>(i);
  Tensor pooled = maxpool2d(input, 2, 2, 0);
  EXPECT_EQ(pooled.shape(), Shape({1, 1, 2, 2}));
  EXPECT_EQ(pooled.f32()[0], 5.0f);
  EXPECT_EQ(pooled.f32()[1], 7.0f);
  EXPECT_EQ(pooled.f32()[2], 13.0f);
  EXPECT_EQ(pooled.f32()[3], 15.0f);
}

TEST(Conv, MaxPoolIgnoresPaddingRegion) {
  Tensor input(Shape{1, 1, 2, 2}, DType::kF32);
  for (int i = 0; i < 4; ++i) input.f32()[i] = -1.0f - static_cast<float>(i);
  Tensor pooled = maxpool2d(input, 3, 2, 1);
  // All window values negative; padding must not contribute zeros.
  EXPECT_EQ(pooled.f32()[0], -1.0f);
}

TEST(Conv, GlobalAvgPool) {
  Tensor input(Shape{2, 2, 2, 2}, DType::kF32);
  for (int i = 0; i < 16; ++i) input.f32()[i] = static_cast<float>(i);
  Tensor pooled = global_avgpool(input);
  EXPECT_EQ(pooled.shape(), Shape({2, 2}));
  EXPECT_NEAR(pooled.f32()[0], 1.5f, 1e-6f);   // mean of 0..3
  EXPECT_NEAR(pooled.f32()[3], 13.5f, 1e-6f);  // mean of 12..15
}

// -------------------------------------------------------------- attention

TEST(Attention, UniformScoresAverageValues) {
  // With Q=K=0 the scores are uniform, so output = mean of V rows.
  constexpr std::int64_t kTokens = 4;
  constexpr std::int64_t kDim = 6;
  constexpr std::int64_t kHeads = 2;
  std::vector<float> qkv(static_cast<std::size_t>(kTokens * 3 * kDim), 0.0f);
  for (std::int64_t t = 0; t < kTokens; ++t) {
    for (std::int64_t d = 0; d < kDim; ++d) {
      qkv[static_cast<std::size_t>(t * 3 * kDim + 2 * kDim + d)] =
          static_cast<float>(t);  // V row t = t everywhere
    }
  }
  std::vector<float> out(static_cast<std::size_t>(kTokens * kDim));
  std::vector<float> scratch(static_cast<std::size_t>(kHeads * kTokens * kTokens));
  self_attention(qkv.data(), out.data(), scratch.data(), kTokens, kDim, kHeads);
  for (float v : out) EXPECT_NEAR(v, 1.5f, 1e-5f);  // mean of 0,1,2,3
}

TEST(Attention, SharpQKSelectsMatchingValue) {
  // Orthogonal one-hot keys with large scale make attention ~hard argmax.
  constexpr std::int64_t kTokens = 3;
  constexpr std::int64_t kDim = 3;
  std::vector<float> qkv(static_cast<std::size_t>(kTokens * 3 * kDim), 0.0f);
  const float scale = 50.0f;
  for (std::int64_t t = 0; t < kTokens; ++t) {
    // Q_t = K_t = scale * e_t; token t attends to itself.
    qkv[static_cast<std::size_t>(t * 3 * kDim + t)] = scale;
    qkv[static_cast<std::size_t>(t * 3 * kDim + kDim + t)] = scale;
    for (std::int64_t d = 0; d < kDim; ++d) {
      qkv[static_cast<std::size_t>(t * 3 * kDim + 2 * kDim + d)] =
          static_cast<float>(10 * (t + 1));
    }
  }
  std::vector<float> out(static_cast<std::size_t>(kTokens * kDim));
  std::vector<float> scratch(static_cast<std::size_t>(kTokens * kTokens));
  self_attention(qkv.data(), out.data(), scratch.data(), kTokens, kDim, 1);
  for (std::int64_t t = 0; t < kTokens; ++t) {
    EXPECT_NEAR(out[static_cast<std::size_t>(t * kDim)],
                static_cast<float>(10 * (t + 1)), 0.5f);
  }
}

TEST(Attention, OutputIsConvexCombinationOfValues) {
  constexpr std::int64_t kTokens = 5;
  constexpr std::int64_t kDim = 8;
  constexpr std::int64_t kHeads = 4;
  auto qkv = random_vec(static_cast<std::size_t>(kTokens * 3 * kDim), 21);
  // Track V range per (head-dim) column.
  std::vector<float> out(static_cast<std::size_t>(kTokens * kDim));
  std::vector<float> scratch(static_cast<std::size_t>(kHeads * kTokens * kTokens));
  self_attention(qkv.data(), out.data(), scratch.data(), kTokens, kDim, kHeads);
  for (std::int64_t d = 0; d < kDim; ++d) {
    float lo = 1e30f;
    float hi = -1e30f;
    for (std::int64_t t = 0; t < kTokens; ++t) {
      const float v = qkv[static_cast<std::size_t>(t * 3 * kDim + 2 * kDim + d)];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    for (std::int64_t t = 0; t < kTokens; ++t) {
      const float o = out[static_cast<std::size_t>(t * kDim + d)];
      EXPECT_GE(o, lo - 1e-4f);
      EXPECT_LE(o, hi + 1e-4f);
    }
  }
}

TEST(Attention, BatchedMatchesPerImage) {
  // The batched entry point parallelizes over batch×heads with
  // per-thread scratch; results must equal running each image alone.
  constexpr std::int64_t kBatch = 3;
  constexpr std::int64_t kTokens = 7;
  constexpr std::int64_t kDim = 12;
  constexpr std::int64_t kHeads = 3;
  const auto qkv =
      random_vec(static_cast<std::size_t>(kBatch * kTokens * 3 * kDim), 77);
  std::vector<float> batched(static_cast<std::size_t>(kBatch * kTokens * kDim));
  self_attention_batched(qkv.data(), batched.data(), kBatch, kTokens, kDim,
                         kHeads);

  std::vector<float> single(static_cast<std::size_t>(kTokens * kDim));
  std::vector<float> scratch(
      static_cast<std::size_t>(kHeads * kTokens * kTokens));
  for (std::int64_t b = 0; b < kBatch; ++b) {
    self_attention(qkv.data() + b * kTokens * 3 * kDim, single.data(),
                   scratch.data(), kTokens, kDim, kHeads);
    for (std::int64_t i = 0; i < kTokens * kDim; ++i) {
      EXPECT_NEAR(batched[static_cast<std::size_t>(b * kTokens * kDim + i)],
                  single[static_cast<std::size_t>(i)], 1e-5f)
          << "b=" << b << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace harvest::nn
