#include "serving/multitask.hpp"

#include <gtest/gtest.h>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/rwkv.hpp"
#include "serving/native_backend.hpp"
#include "serving/sim_backend.hpp"
#include "tensor/ops.hpp"

namespace harvest::serving {
namespace {

preproc::EncodedImage frame(std::uint64_t seed) {
  const preproc::Image img = preproc::synthesize_field_image(40, 30, seed);
  return preproc::encode_image(img, preproc::ImageFormat::kRaw);
}

BackendPtr vit_backend(std::uint64_t seed, std::int64_t classes = 3) {
  nn::ViTConfig config{"mt-vit", 16, 4, 16, 1, 2, 2, classes};
  nn::ModelPtr model = nn::build_vit(config);
  nn::init_weights(*model, seed);
  return std::make_unique<NativeBackend>(std::move(model), 4);
}

BackendPtr rwkv_backend(std::uint64_t seed) {
  nn::RwkvConfig config{"mt-rwkv", 16, 4, 16, 1, 2};
  config.num_classes = 2;
  nn::ModelPtr model = nn::build_rwkv(config);
  nn::init_weights(*model, seed);
  return std::make_unique<NativeBackend>(std::move(model), 4);
}

preproc::PreprocSpec shared_spec() {
  preproc::PreprocSpec spec;
  spec.output_size = 16;
  return spec;
}

TEST(MultiTask, FansOutToEveryTask) {
  MultiTaskPipeline pipeline(shared_spec());
  ASSERT_TRUE(pipeline.add_task("residue", vit_backend(1)).is_ok());
  ASSERT_TRUE(pipeline.add_task("pests", rwkv_backend(2)).is_ok());
  EXPECT_EQ(pipeline.task_count(), 2u);

  auto result = pipeline.infer(frame(5));
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_EQ(result.value().results.size(), 2u);
  EXPECT_EQ(result.value().results[0].task, "residue");
  EXPECT_EQ(result.value().results[1].task, "pests");
  for (const auto& task : result.value().results) {
    EXPECT_TRUE(task.response.status.is_ok());
    EXPECT_GE(task.response.predicted_class, 0);
    // Shared preprocessing: every task reports the same preprocess time.
    EXPECT_DOUBLE_EQ(task.response.timing.preprocess_s,
                     result.value().preprocess_s);
  }
  EXPECT_GT(result.value().preprocess_s, 0.0);
}

TEST(MultiTask, MatchesStandaloneExecution) {
  // The fan-out must produce exactly what running each model alone on
  // the same preprocessed tensor produces.
  MultiTaskPipeline pipeline(shared_spec());
  ASSERT_TRUE(pipeline.add_task("residue", vit_backend(7)).is_ok());
  const preproc::EncodedImage input = frame(9);
  auto multi = pipeline.infer(input);
  ASSERT_TRUE(multi.is_ok());

  nn::ViTConfig config{"mt-vit", 16, 4, 16, 1, 2, 2, 3};
  nn::ModelPtr model = nn::build_vit(config);
  nn::init_weights(*model, 7);
  preproc::CpuPipeline cpu;
  auto batch = cpu.run(std::span(&input, 1), shared_spec());
  ASSERT_TRUE(batch.is_ok());
  tensor::Tensor logits = model->forward(batch.value());
  EXPECT_EQ(multi.value().results[0].response.predicted_class,
            tensor::argmax(logits.f32_span()));
}

TEST(MultiTask, RejectsGeometryMismatch) {
  MultiTaskPipeline pipeline(shared_spec());  // produces 16x16
  nn::ViTConfig config{"wrong", 32, 4, 16, 1, 2, 2, 3};  // expects 32x32
  nn::ModelPtr model = nn::build_vit(config);
  nn::init_weights(*model, 1);
  auto status = pipeline.add_task(
      "wrong", std::make_unique<NativeBackend>(std::move(model), 4));
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(pipeline.task_count(), 0u);
}

TEST(MultiTask, RejectsDuplicateAndNullTasks) {
  MultiTaskPipeline pipeline(shared_spec());
  ASSERT_TRUE(pipeline.add_task("a", vit_backend(1)).is_ok());
  EXPECT_FALSE(pipeline.add_task("a", vit_backend(2)).is_ok());
  EXPECT_FALSE(pipeline.add_task("b", nullptr).is_ok());
}

TEST(MultiTask, EmptyPipelineRejectsInference) {
  MultiTaskPipeline pipeline(shared_spec());
  EXPECT_FALSE(pipeline.infer(frame(1)).is_ok());
}

TEST(MultiTask, PreprocessingFailureFailsWholeCall) {
  MultiTaskPipeline pipeline(shared_spec());
  ASSERT_TRUE(pipeline.add_task("t", vit_backend(3)).is_ok());
  preproc::EncodedImage corrupt;
  corrupt.format = preproc::ImageFormat::kAgJpeg;
  corrupt.bytes = {9, 9, 9};
  EXPECT_FALSE(pipeline.infer(corrupt).is_ok());
}

TEST(MultiTask, PerTaskBackendFailureIsIsolated) {
  class FailingBackend final : public Backend {
   public:
    const std::string& name() const override { return name_; }
    std::int64_t max_batch() const override { return 1; }
    std::int64_t num_classes() const override { return 2; }
    std::int64_t input_size() const override { return 16; }
    core::Result<BackendResult> infer(const tensor::Tensor&) override {
      return core::Status::internal("task engine fault");
    }

   private:
    std::string name_ = "failing";
  };

  MultiTaskPipeline pipeline(shared_spec());
  ASSERT_TRUE(pipeline.add_task("good", vit_backend(4)).is_ok());
  ASSERT_TRUE(pipeline.add_task("bad", std::make_unique<FailingBackend>())
                  .is_ok());
  auto result = pipeline.infer(frame(2));
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().results[0].response.status.is_ok());
  EXPECT_FALSE(result.value().results[1].response.status.is_ok());
}

TEST(MultiTask, WorksWithSimBackends) {
  preproc::PreprocSpec spec;
  spec.output_size = 32;  // ViT_Tiny/Small input
  MultiTaskPipeline pipeline(spec);
  ASSERT_TRUE(pipeline
                  .add_task("cloud-a",
                            std::make_unique<SimBackend>(
                                platform::make_engine_model(platform::a100(),
                                                            "ViT_Tiny"),
                                39, 8))
                  .is_ok());
  ASSERT_TRUE(pipeline
                  .add_task("cloud-b",
                            std::make_unique<SimBackend>(
                                platform::make_engine_model(platform::a100(),
                                                            "ViT_Small"),
                                39, 8))
                  .is_ok());
  auto result = pipeline.infer(frame(11));
  ASSERT_TRUE(result.is_ok());
  for (const auto& task : result.value().results) {
    EXPECT_TRUE(task.response.status.is_ok());
    EXPECT_GT(task.response.timing.inference_s, 0.0);
  }
}

}  // namespace
}  // namespace harvest::serving
