#include "sim/continuum/continuum_sim.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "serving/fair_queue.hpp"

namespace harvest::sim::continuum {
namespace {

// ---------------------------------------------------------------------
// WfqClock — the start-time WFQ core shared with serving::WorkerPool.
// ---------------------------------------------------------------------

TEST(WfqClock, EffectiveNeverRunsBehindGlobalTime) {
  serving::WfqClock wfq;
  EXPECT_EQ(wfq.now(), 0.0);
  // An idle tenant's stale virtual time snaps forward to the clock.
  EXPECT_EQ(wfq.effective(5.0), 5.0);
  wfq.charge(10.0, 4.0, 1.0);
  EXPECT_EQ(wfq.now(), 10.0);
  EXPECT_EQ(wfq.effective(3.0), 10.0);
}

TEST(WfqClock, ChargeIsStartTagPlusWeightedWork) {
  serving::WfqClock wfq;
  // Backlogged tenant at vt 2 with weight 2 pays work/2 on top of its
  // start tag; the global clock advances to the start tag, not the end.
  const double vt = wfq.charge(2.0, 8.0, 2.0);
  EXPECT_DOUBLE_EQ(vt, 6.0);
  EXPECT_DOUBLE_EQ(wfq.now(), 2.0);
}

TEST(WfqClock, HeavierWeightAccruesVirtualTimeSlower) {
  serving::WfqClock wfq;
  double heavy = 0.0;
  double light = 0.0;
  for (int i = 0; i < 4; ++i) {
    heavy = wfq.charge(heavy, 1.0, 4.0);
    light = wfq.charge(light, 1.0, 1.0);
  }
  // Same work: the weight-4 tenant's clock advanced 4x slower, so it
  // would be picked next by a min-effective-vt dispatcher.
  EXPECT_LT(wfq.effective(heavy), wfq.effective(light));
}

TEST(WfqClock, ZeroWeightIsFloorNotDivideByZero) {
  serving::WfqClock wfq;
  const double vt = wfq.charge(0.0, 1.0, 0.0);
  EXPECT_TRUE(std::isfinite(vt));
  EXPECT_GT(vt, 0.0);
}

// ---------------------------------------------------------------------
// Topology / policy validation — every name resolves or the parse fails
// with the offending name in the message (docs/MODEL_REPOSITORY.md).
// ---------------------------------------------------------------------

core::Json parse_json(const char* text) {
  auto parsed = core::Json::parse(text);
  EXPECT_TRUE(parsed.is_ok()) << text;
  return parsed.value();
}

TEST(ContinuumTopology, DefaultsParseAndPrice) {
  auto topology = parse_continuum_topology(parse_json("{}"));
  ASSERT_TRUE(topology.is_ok());
  EXPECT_EQ(topology.value().nodes(), 4 * 50 * 10);
  auto costs = price_topology(topology.value());
  ASSERT_TRUE(costs.is_ok());
  EXPECT_GT(costs.value().edge.per_image_s(), 0.0);
  EXPECT_GT(costs.value().cloud.per_image_s(), 0.0);
  EXPECT_GT(costs.value().upload_bytes, 0.0);  // dataset mean kicks in
}

TEST(ContinuumTopology, UnknownNamesFailWithTheNameInTheMessage) {
  const struct {
    const char* json;
    const char* needle;
  } cases[] = {
      {R"({"edge": {"device": "TPU9000"}})", "TPU9000"},
      {R"({"cloud": {"preproc": "IMAGEMAGICK"}})", "IMAGEMAGICK"},
      {R"({"model": "GPT-17"})", "GPT-17"},
      {R"({"dataset": "MNIST-Barn"})", "MNIST-Barn"},
      {R"({"uplink": "carrier-pigeon"})", "carrier-pigeon"},
  };
  for (const auto& c : cases) {
    auto topology = parse_continuum_topology(parse_json(c.json));
    ASSERT_FALSE(topology.is_ok()) << c.json;
    EXPECT_NE(topology.status().message().find(c.needle), std::string::npos)
        << topology.status().message();
  }
}

TEST(ContinuumTopology, InvalidShapesAreRejected) {
  EXPECT_FALSE(
      parse_continuum_topology(parse_json(R"({"regions": 0})")).is_ok());
  EXPECT_FALSE(parse_continuum_topology(
                   parse_json(R"({"edge": {"max_batch": 0}})"))
                   .is_ok());
  EXPECT_FALSE(parse_continuum_topology(
                   parse_json(R"({"upload_bytes_per_image": -1})"))
                   .is_ok());
  EXPECT_FALSE(parse_continuum_topology(
                   parse_json(R"({"edge_queue_capacity": 0})"))
                   .is_ok());
  EXPECT_FALSE(parse_continuum_topology(parse_json(R"([1, 2])")).is_ok());
}

TEST(ContinuumPolicy, NamesRoundTripAndBadConfigsFail) {
  for (const char* name : {"edge_only", "cloud_only", "edge_first",
                           "bandwidth_aware", "autoscale"}) {
    auto policy = parse_placement_policy(name);
    ASSERT_TRUE(policy.is_ok()) << name;
    EXPECT_STREQ(placement_policy_name(policy.value()), name);
  }
  EXPECT_FALSE(parse_placement_policy("edge_sometimes").is_ok());
  EXPECT_FALSE(
      parse_placement_config(parse_json(R"({"policy": "edge_sometimes"})"))
          .is_ok());
  EXPECT_FALSE(parse_placement_config(
                   parse_json(R"({"offload_queue_threshold": 0})"))
                   .is_ok());
  EXPECT_FALSE(parse_placement_config(
                   parse_json(R"({"min_replicas": 3, "max_replicas": 2})"))
                   .is_ok());
  EXPECT_FALSE(parse_placement_config(parse_json(
                   R"({"scale_up_backlog_per_replica": 4,
                       "scale_down_backlog_per_replica": 8})"))
                   .is_ok());
  auto config = parse_placement_config(parse_json(R"({"policy": "autoscale"})"));
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().policy, PlacementPolicy::kAutoscale);
}

// ---------------------------------------------------------------------
// Offload threshold — exact semantics.
// ---------------------------------------------------------------------

/// One Jetson, one farm; every arrival lands inside the node's FIRST
/// service time, so the local queue only grows. Edge-first must then
/// keep exactly 1 (in service) + threshold (queued) images local and
/// offload every other arrival.
ContinuumConfig frozen_node_config() {
  ContinuumConfig config;
  config.topology.regions = 1;
  config.topology.farms_per_region = 1;
  config.topology.nodes_per_farm = 1;
  auto costs = price_topology(config.topology);
  EXPECT_TRUE(costs.is_ok());
  const double service1 = costs.value().edge.service_s[1];

  auto& curve = config.arrivals;
  curve.duration_s = 0.8 * service1;
  curve.users = 400;
  curve.images_per_user_per_day = 1.0;
  curve.night_floor = 1.0;            // flat shape: no diurnal dip
  curve.burst_start_s = 0.0;          // empty burst window
  curve.burst_end_s = 0.0;
  curve.burst_multiplier = 1.0;
  curve.session_rate_img_s = 3000.0;  // dense micro-sessions
  curve.session_mean_s = 0.01;

  config.seed = 99;
  config.deadline_s = 0.0;  // disabled: only routing is under test
  config.placement.policy = PlacementPolicy::kEdgeFirst;
  return config;
}

TEST(ContinuumSim, EdgeFirstOffloadsExactlyAboveThreshold) {
  for (const std::int64_t threshold : {4, 8, 16}) {
    ContinuumConfig config = frozen_node_config();
    config.placement.offload_queue_threshold = threshold;
    const ContinuumReport report = simulate_continuum(config);
    ASSERT_GT(report.submitted,
              static_cast<std::uint64_t>(threshold) + 1);
    // 1 in service + `threshold` queued stay local; the rest offload.
    EXPECT_EQ(report.offloaded,
              report.submitted - 1 - static_cast<std::uint64_t>(threshold));
    EXPECT_EQ(report.edge.completed,
              static_cast<std::uint64_t>(threshold) + 1);
    EXPECT_EQ(report.cloud.completed, report.offloaded);
    EXPECT_EQ(report.shed, 0u);
    EXPECT_TRUE(report.conserved());
  }
}

TEST(ContinuumSim, ArrivalStreamIsPolicyIndependent) {
  ContinuumConfig config = frozen_node_config();
  ContinuumReport reports[3];
  const PlacementPolicy policies[] = {PlacementPolicy::kEdgeOnly,
                                      PlacementPolicy::kCloudOnly,
                                      PlacementPolicy::kEdgeFirst};
  for (int i = 0; i < 3; ++i) {
    config.placement.policy = policies[i];
    reports[i] = simulate_continuum(config);
  }
  // Same seed => byte-identical workload for every policy.
  EXPECT_EQ(reports[0].submitted, reports[1].submitted);
  EXPECT_EQ(reports[1].submitted, reports[2].submitted);
  EXPECT_EQ(reports[0].offloaded, 0u);
  EXPECT_EQ(reports[1].offloaded, reports[1].submitted);
}

// ---------------------------------------------------------------------
// Conservation + determinism at fleet scale (shrunk).
// ---------------------------------------------------------------------

ContinuumConfig faulty_fleet_config() {
  ContinuumConfig config;
  config.topology.regions = 1;
  config.topology.farms_per_region = 2;
  config.topology.nodes_per_farm = 3;
  config.topology.cloud_replicas = 2;

  auto& curve = config.arrivals;
  curve.users = 2000;
  curve.images_per_user_per_day = 3.0;
  curve.duration_s = 3600.0;
  curve.day_start_s = 0.0;
  curve.day_end_s = 3600.0;
  curve.night_floor = 0.3;
  curve.burst_start_s = 900.0;
  curve.burst_end_s = 2700.0;
  curve.burst_multiplier = 4.0;
  curve.session_rate_img_s = 3.0;
  curve.session_mean_s = 20.0;

  config.seed = 11;
  config.deadline_s = 8.0;
  config.admission.max_queue_depth = 16;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_s = 0.1;
  config.retry.max_backoff_s = 0.5;
  config.faults.seed = 5;
  config.faults.transient_error_rate = 0.05;
  config.faults.latency_spike_rate = 0.02;
  config.faults.latency_spike_s = 0.3;
  config.faults.stall_rate = 0.05;
  config.faults.stall_s = 1.0;
  config.slo.latency_target_s = 8.0;
  config.slo.availability_target = 0.99;
  config.placement.offload_queue_threshold = 4;
  config.placement.min_replicas = 1;
  config.placement.max_replicas = 2;
  config.placement.scale_interval_s = 30.0;
  return config;
}

TEST(ContinuumSim, EveryPolicyConservesRequestsUnderFaults) {
  // submitted == completed + shed + failed + deadline_missed: no image
  // may vanish across nodes, uplinks, tiers, retries or migrations —
  // even with transient faults, latency spikes and uplink stalls on.
  for (const PlacementPolicy policy :
       {PlacementPolicy::kEdgeOnly, PlacementPolicy::kCloudOnly,
        PlacementPolicy::kEdgeFirst, PlacementPolicy::kBandwidthAware,
        PlacementPolicy::kAutoscale}) {
    ContinuumConfig config = faulty_fleet_config();
    config.placement.policy = policy;
    const ContinuumReport report = simulate_continuum(config);
    EXPECT_GT(report.submitted, 1000u) << placement_policy_name(policy);
    EXPECT_GT(report.completed, 0u) << placement_policy_name(policy);
    EXPECT_TRUE(report.conserved())
        << placement_policy_name(policy) << ": " << report.submitted
        << " != " << report.completed << " + " << report.shed << " + "
        << report.failed << " + " << report.deadline_missed;
  }
}

TEST(ContinuumSim, ReportIsBitReproducible) {
  ContinuumConfig config = faulty_fleet_config();
  config.placement.policy = PlacementPolicy::kAutoscale;
  const ContinuumReport a = simulate_continuum(config);
  const ContinuumReport b = simulate_continuum(config);
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(ContinuumReport)), 0);

  config.seed = 12;  // ...and the comparison has power: a new seed is
  const ContinuumReport c = simulate_continuum(config);  // a new day.
  EXPECT_NE(std::memcmp(&a, &c, sizeof(ContinuumReport)), 0);
}

TEST(ContinuumSim, AutoscaleSavesReplicaSecondsOnAQuietCloud) {
  // The V100 tier soaks this fleet's offload stream with one replica;
  // autoscale should stay at min_replicas and bank the difference.
  ContinuumConfig config = faulty_fleet_config();
  config.placement.policy = PlacementPolicy::kEdgeFirst;
  const ContinuumReport fixed = simulate_continuum(config);
  config.placement.policy = PlacementPolicy::kAutoscale;
  const ContinuumReport scaled = simulate_continuum(config);
  EXPECT_LT(scaled.replica_seconds, fixed.replica_seconds);
}

TEST(ContinuumSim, AutoscaleScalesUpWhenTheRegionBacklogs) {
  // Swap the regional tier for a CPU box slower than the uplinks feed
  // it: the backlog-per-replica watermark must trip and add replicas.
  ContinuumConfig config = faulty_fleet_config();
  config.topology.cloud = {"HostCPU", "PyTorch", 8, false};
  config.placement.policy = PlacementPolicy::kAutoscale;
  config.placement.min_replicas = 1;
  config.placement.max_replicas = 4;
  config.placement.scale_interval_s = 10.0;
  config.placement.scale_up_backlog_per_replica = 4.0;
  config.placement.scale_down_backlog_per_replica = 1.0;
  const ContinuumReport report = simulate_continuum(config);
  EXPECT_GT(report.scale_ups, 0u);
  EXPECT_TRUE(report.conserved());
}

// ---------------------------------------------------------------------
// Tracing — simulated hops must speak the production span vocabulary,
// so obs::critical_path attributes fleet latency unchanged.
// ---------------------------------------------------------------------

TEST(ContinuumSim, TracedHopsFeedCriticalPathAttribution) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  recorder.enable();
  ContinuumConfig config = frozen_node_config();
  config.placement.offload_queue_threshold = 4;
  config.trace = &recorder;
  config.trace_sample_every = 1;  // every image
  const ContinuumReport report = simulate_continuum(config);
  const core::Json doc = recorder.to_json();
  recorder.disable();
  ASSERT_GT(report.offloaded, 0u);

  const std::vector<std::uint64_t> ids = obs::trace_ids(doc);
  ASSERT_GT(ids.size(), 4u);
  std::size_t with_transmit = 0;
  std::size_t edge_local = 0;
  for (const std::uint64_t id : ids) {
    auto path = obs::critical_path(doc, id);
    ASSERT_TRUE(path.is_ok());
    EXPECT_GT(path.value().end_to_end_us, 0.0);
    const double transmit = path.value().segment(obs::Segment::kTransmit);
    const double inference = path.value().segment(obs::Segment::kInference);
    EXPECT_GT(inference, 0.0);
    if (transmit > 0.0) {
      ++with_transmit;  // the "offload" span classified as transmit
    } else {
      ++edge_local;
    }
  }
  // Both worlds exist in one trace: images served on the Jetson and
  // images that crossed the uplink.
  EXPECT_GT(with_transmit, 0u);
  EXPECT_GT(edge_local, 0u);
}

}  // namespace
}  // namespace harvest::sim::continuum
