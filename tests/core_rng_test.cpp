#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace harvest::core {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(55);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(55);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, FloatsInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.next_float();
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ScaledNormal) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(100.0, 5.0);
  EXPECT_NEAR(sum / kN, 100.0, 0.2);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Splitmix, DeterministicAndDispersive) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  // Consecutive inputs land far apart (avalanche sanity).
  const std::uint64_t diff = splitmix64(1000) ^ splitmix64(1001);
  int bits = 0;
  for (int i = 0; i < 64; ++i) bits += static_cast<int>((diff >> i) & 1);
  EXPECT_GT(bits, 10);
}

}  // namespace
}  // namespace harvest::core
