/// Observability stack tests: trace recorder (ring buffers, Chrome
/// trace-event JSON export validated with core/json), metric primitives
/// (bucket histograms, Prometheus text writer), registry snapshot
/// regressions, the time-series sampler, per-layer MFU profiling, and
/// an end-to-end serving run with the recorder armed.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "core/json.hpp"
#include "nn/init.hpp"
#include "nn/mfu.hpp"
#include "nn/models.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "preproc/codec.hpp"
#include "preproc/image.hpp"
#include "serving/metrics.hpp"
#include "serving/native_backend.hpp"
#include "serving/server.hpp"
#include "tensor/tensor.hpp"

namespace harvest {
namespace {

using obs::TraceRecorder;

/// Parse the recorder's serialized export back through core::Json —
/// the same validation a trace viewer's loader performs.
core::Json parsed_trace() {
  const std::string text = TraceRecorder::instance().to_json().dump(1);
  core::Result<core::Json> doc = core::Json::parse(text);
  EXPECT_TRUE(doc.is_ok()) << doc.status().message();
  return doc.is_ok() ? std::move(doc).value() : core::Json();
}

/// Events (any phase) with the given name.
std::vector<core::Json> events_named(const core::Json& doc,
                                     const std::string& name) {
  std::vector<core::Json> out;
  for (const core::Json& event : doc.find("traceEvents")->as_array()) {
    if (event.get_string("name", "") == name) out.push_back(event);
  }
  return out;
}

// -------------------------------------------------------------- recorder

TEST(TraceRecorder, DisabledRecorderDropsEverything) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.disable();
  recorder.clear();
  recorder.record_instant("ghost", "test");
  { HARVEST_TRACE_SPAN("ghost-span", "test"); }
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(TraceRecorder, ExportIsValidChromeTraceJson) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.set_thread_name("gtest-main");
  recorder.record_complete("work", "test", 10.0, 35.0, /*id=*/42,
                           /*batch=*/4);
  recorder.record_instant("mark", "test");
  recorder.record_counter("depth", 3.0);
  const core::Json doc = parsed_trace();
  recorder.disable();

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get_string("displayTimeUnit", ""), "ms");
  const core::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  const auto spans = events_named(doc, "work");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].get_string("ph", ""), "X");
  EXPECT_DOUBLE_EQ(spans[0].get_number("ts", -1.0), 10.0);
  EXPECT_DOUBLE_EQ(spans[0].get_number("dur", -1.0), 25.0);
  EXPECT_GT(spans[0].get_int("tid", 0), 0);
  const core::Json* args = spans[0].find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->get_int("id", 0), 42);
  EXPECT_EQ(args->get_int("batch", 0), 4);

  const auto instants = events_named(doc, "mark");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].get_string("ph", ""), "i");
  EXPECT_EQ(instants[0].get_string("s", ""), "t");

  const auto counters = events_named(doc, "depth");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].get_string("ph", ""), "C");
  EXPECT_DOUBLE_EQ(counters[0].find("args")->get_number("value", -1.0), 3.0);

  // Thread-name metadata record for the named calling thread.
  const auto meta = events_named(doc, "thread_name");
  ASSERT_FALSE(meta.empty());
  bool found = false;
  for (const core::Json& m : meta) {
    found = found || m.find("args")->get_string("name", "") == "gtest-main";
  }
  EXPECT_TRUE(found);
}

TEST(TraceRecorder, ScopedSpanMeasuresElapsedTime) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  {
    obs::ScopedSpan span("sleepy", "test");
    span.set_id(7);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const core::Json doc = parsed_trace();
  recorder.disable();
  const auto spans = events_named(doc, "sleepy");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].get_number("dur", 0.0), 1500.0);  // >= 1.5 ms in us
  EXPECT_EQ(spans[0].find("args")->get_int("id", 0), 7);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable(/*events_per_thread=*/16);
  for (int i = 0; i < 50; ++i) {
    recorder.record_counter("tick", static_cast<double>(i));
  }
  EXPECT_EQ(recorder.event_count(), 16u);
  EXPECT_EQ(recorder.dropped(), 34u);
  // The retained window is the most recent 16 events, oldest first.
  const core::Json doc = parsed_trace();
  recorder.disable();
  const auto ticks = events_named(doc, "tick");
  ASSERT_EQ(ticks.size(), 16u);
  EXPECT_DOUBLE_EQ(ticks.front().find("args")->get_number("value", -1.0),
                   34.0);
  EXPECT_DOUBLE_EQ(ticks.back().find("args")->get_number("value", -1.0),
                   49.0);
}

TEST(TraceRecorder, ThreadsGetDistinctTracks) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.record_instant("main-mark", "test");
  std::thread worker([&] {
    recorder.set_thread_name("worker");
    recorder.record_instant("worker-mark", "test");
  });
  worker.join();
  const core::Json doc = parsed_trace();
  recorder.disable();
  const auto main_events = events_named(doc, "main-mark");
  const auto worker_events = events_named(doc, "worker-mark");
  ASSERT_EQ(main_events.size(), 1u);
  ASSERT_EQ(worker_events.size(), 1u);
  EXPECT_NE(main_events[0].get_int("tid", -1),
            worker_events[0].get_int("tid", -1));
}

TEST(TraceRecorder, VirtualThreadTracksForSimulatedTime) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.set_virtual_thread_name(1000, "sim-instance#0");
  obs::TraceEvent event;
  event.name = "batch";
  event.cat = "sim";
  event.ph = 'X';
  event.ts_us = 1e6;  // simulated t = 1 s
  event.dur_us = 2500.0;
  event.tid = 1000;
  event.batch = 32;
  recorder.record(std::move(event));
  const core::Json doc = parsed_trace();
  recorder.disable();
  const auto batches = events_named(doc, "batch");
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].get_int("tid", 0), 1000);
  EXPECT_DOUBLE_EQ(batches[0].get_number("ts", 0.0), 1e6);
  bool named = false;
  for (const core::Json& m : events_named(doc, "thread_name")) {
    named = named ||
            (m.get_int("tid", 0) == 1000 &&
             m.find("args")->get_string("name", "") == "sim-instance#0");
  }
  EXPECT_TRUE(named);
}

// ------------------------------------------------------------- histogram

TEST(BucketHistogram, CountsAndCumulativeFollowPrometheusSemantics) {
  obs::BucketHistogram hist({1.0, 2.0, 5.0});
  for (double x : {0.5, 1.5, 1.7, 4.0, 100.0}) hist.observe(x);
  EXPECT_EQ(hist.total_count(), 5u);
  EXPECT_NEAR(hist.sum(), 107.7, 1e-9);
  EXPECT_EQ(hist.count_in_bucket(0), 1u);  // <= 1
  EXPECT_EQ(hist.count_in_bucket(1), 2u);  // (1, 2]
  EXPECT_EQ(hist.count_in_bucket(2), 1u);  // (2, 5]
  EXPECT_EQ(hist.count_in_bucket(3), 1u);  // +Inf
  EXPECT_EQ(hist.cumulative(0), 1u);
  EXPECT_EQ(hist.cumulative(1), 3u);
  EXPECT_EQ(hist.cumulative(2), 4u);
}

TEST(BucketHistogram, IgnoresNaNAndEstimatesQuantiles) {
  obs::BucketHistogram hist({1.0, 2.0, 4.0});
  hist.observe(std::nan(""));
  EXPECT_EQ(hist.total_count(), 0u);
  for (int i = 0; i < 100; ++i) hist.observe(1.5);
  const double p50 = hist.quantile_estimate(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
}

TEST(PrometheusWriter, RendersFamiliesOnceWithLabelsAndBuckets) {
  obs::BucketHistogram hist({0.1, 1.0});
  hist.observe(0.05);
  hist.observe(0.5);
  hist.observe(7.0);
  obs::PrometheusWriter out;
  out.counter("requests_total", "Requests.", 3, {{"model", "vit"}});
  out.counter("requests_total", "Requests.", 4, {{"model", "resnet"}});
  out.gauge("queue_depth", "Depth.", 2, {{"model", "vit"}});
  out.histogram("latency_seconds", "Latency.", hist, {{"model", "vit"}});
  const std::string text = out.str();

  // Family headers are deduplicated across label sets.
  EXPECT_EQ(text.find("# TYPE requests_total counter"),
            text.rfind("# TYPE requests_total counter"));
  EXPECT_NE(text.find("requests_total{model=\"vit\"} 3"), std::string::npos);
  EXPECT_NE(text.find("requests_total{model=\"resnet\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum{"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count{model=\"vit\"} 3"),
            std::string::npos);
}

// ------------------------------------------------------ registry snapshot

TEST(MetricsRegistry, SnapshotClampsDegenerateWindows) {
  serving::MetricsRegistry registry;
  serving::RequestTiming timing;
  timing.total_s = 0.01;
  timing.batch_size = 2;
  for (int i = 0; i < 4; ++i) {
    registry.record(timing, /*ok=*/true, /*deadline_missed=*/false);
  }
  // Regression: zero, negative, and NaN windows used to yield inf/NaN
  // throughput; they must clamp to zero.
  for (double window : {0.0, -5.0, std::nan("")}) {
    const serving::MetricsSnapshot snap = registry.snapshot(window);
    EXPECT_EQ(snap.completed, 4u);
    EXPECT_DOUBLE_EQ(snap.throughput_img_per_s, 0.0);
    EXPECT_TRUE(std::isfinite(snap.throughput_img_per_s));
    EXPECT_DOUBLE_EQ(snap.wall_seconds, 0.0);
  }
  const serving::MetricsSnapshot snap = registry.snapshot(2.0);
  EXPECT_DOUBLE_EQ(snap.throughput_img_per_s, 2.0);
}

TEST(MetricsRegistry, PrometheusRenderingCoversAllFamilies) {
  serving::MetricsRegistry registry;
  serving::RequestTiming timing;
  timing.queue_s = 1e-3;
  timing.preprocess_s = 2e-3;
  timing.inference_s = 3e-3;
  timing.total_s = 6e-3;
  timing.batch_size = 4;
  registry.record(timing, /*ok=*/true, /*deadline_missed=*/false);
  registry.record_flush(serving::FlushReason::kFullBatch, 4);
  registry.record_flush(serving::FlushReason::kTimeout, 2);
  registry.inflight_add(3);
  registry.set_queue_depth_probe([] { return std::size_t{5}; });

  obs::PrometheusWriter out;
  registry.render_prometheus(out, "vit");
  const std::string text = out.str();
  // Every per-model series carries the engine precision label
  // (defaulting to fp32) so int8 deployments are comparable live.
  EXPECT_NE(text.find("harvest_requests_completed_total{model=\"vit\","
                      "precision=\"fp32\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_request_latency_seconds_bucket{"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_inference_time_seconds_bucket{"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_batch_flush_total{model=\"vit\","
                      "precision=\"fp32\",reason=\"full_batch\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_batch_flush_total{model=\"vit\","
                      "precision=\"fp32\",reason=\"timeout\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_inflight_requests{model=\"vit\","
                      "precision=\"fp32\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("harvest_queue_depth{model=\"vit\","
                      "precision=\"fp32\"} 5"),
            std::string::npos);

  registry.reset();
  const serving::MetricsSnapshot snap = registry.snapshot(1.0);
  EXPECT_EQ(snap.completed, 0u);
  EXPECT_EQ(snap.flushes[0], 0u);
}

// --------------------------------------------------------------- sampler

TEST(TimeSeriesSampler, CollectsRowsAndRendersCsv) {
  obs::TimeSeriesSampler sampler;
  double depth = 1.0;
  sampler.add_probe("queue_depth", [&] { return depth; });
  sampler.add_probe("inflight", [] { return 2.0; });
  sampler.sample_once();
  depth = 4.0;
  sampler.sample_once();
  sampler.add_row(9.5, {7.0, 8.0});  // simulation-style explicit timestamp
  EXPECT_EQ(sampler.row_count(), 3u);

  const std::string csv = sampler.to_csv().to_string();
  EXPECT_EQ(csv.rfind("t_s,queue_depth,inflight\n", 0), 0u);
  EXPECT_NE(csv.find("9.5"), std::string::npos);
  EXPECT_NE(csv.find("7.0"), std::string::npos);

  const std::vector<core::Series> series = sampler.to_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "queue_depth");
  ASSERT_EQ(series[0].ys.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0].ys[0], 1.0);
  EXPECT_DOUBLE_EQ(series[0].ys[1], 4.0);
  EXPECT_DOUBLE_EQ(series[0].ys[2], 7.0);
}

TEST(TimeSeriesSampler, BackgroundThreadSamplesPeriodically) {
  obs::TimeSeriesSampler sampler;
  sampler.add_probe("const", [] { return 1.0; });
  sampler.start(1e-3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  EXPECT_GE(sampler.row_count(), 2u);
  const std::size_t rows = sampler.row_count();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.row_count(), rows);  // stop() actually stopped it
}

TEST(TimeSeriesSampler, StreamedOutputSurvivesWithoutStop) {
  // Regression: the CSV tail used to exist only in memory until stop(),
  // so a crash or _exit dropped every unsaved row. With set_output each
  // row is flushed on append — the file must already hold everything
  // while the sampler is still live.
  const std::string path = ::testing::TempDir() + "/sampler_stream.csv";
  std::remove(path.c_str());
  obs::TimeSeriesSampler sampler;
  double depth = 3.0;
  sampler.add_probe("queue_depth", [&] { return depth; });
  ASSERT_TRUE(sampler.set_output(path));
  sampler.sample_once();
  depth = 5.0;
  sampler.sample_once();
  sampler.add_row(2.5, {7.0});

  // Read the file NOW — no stop(), no destructor, no final write_csv().
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[512] = {};
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  const std::string contents(buffer, got);
  EXPECT_EQ(contents.rfind("t_s,queue_depth\n", 0), 0u);
  EXPECT_NE(contents.find(",3\n"), std::string::npos);
  EXPECT_NE(contents.find(",5\n"), std::string::npos);
  EXPECT_NE(contents.find("2.5,7\n"), std::string::npos);
  // All three rows made it out, not just the header.
  std::size_t lines = 0;
  for (char c : contents) lines += c == '\n';
  EXPECT_EQ(lines, 4u);

  EXPECT_FALSE(sampler.set_output("/no/such/dir/x.csv"));
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- MFU

TEST(MfuProfile, LayerFlopsSumMatchesModelProfile) {
  nn::ViTConfig config{"mfu-vit", 16, 4, 16, 2, 2, 2, 4};
  nn::ModelPtr model = nn::build_vit(config);
  nn::init_weights(*model, 7);
  const tensor::Tensor input = tensor::Tensor::full({2, 3, 16, 16}, 0.25f);
  const nn::MfuReport report =
      nn::profile_layer_mfu(*model, input, /*peak_gflops=*/10.0,
                            /*warmup=*/0, /*iters=*/1);

  ASSERT_EQ(report.layers.size(), model->layer_count());
  const double expected_flops = 2.0 * model->profile(2).total_macs();
  EXPECT_NEAR(report.total_flops(), expected_flops,
              0.05 * expected_flops);  // acceptance: within 5 %
  EXPECT_GT(report.total_seconds(), 0.0);
  EXPECT_GT(report.overall_mfu(), 0.0);

  double flops_share = 0.0;
  double time_share = 0.0;
  for (const nn::LayerMfu& layer : report.layers) {
    flops_share += layer.flops_share;
    time_share += layer.time_share;
    EXPECT_GE(layer.seconds, 0.0);
  }
  EXPECT_NEAR(flops_share, 1.0, 1e-6);
  EXPECT_NEAR(time_share, 1.0, 1e-6);

  const std::string table = report.to_table();
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  const core::Json json = report.to_json();
  EXPECT_EQ(json.get_string("model", ""), "mfu-vit");
  ASSERT_TRUE(json.find("layers")->is_array());
}

// ------------------------------------------------- end-to-end serving run

TEST(ObservabilityIntegration, ServerRunProducesSpansAndExposition) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  {
    serving::Server server(/*preproc_threads=*/1);
    serving::ModelDeploymentConfig config;
    config.name = "vit";
    config.max_batch = 4;
    config.instances = 1;
    config.max_queue_delay_s = 1e-3;
    config.preproc.output_size = 16;
    ASSERT_TRUE(server
                    .register_model(config,
                                    [] {
                                      nn::ModelPtr model = nn::build_vit(
                                          {"test-vit", 16, 4, 16, 2, 2, 2, 4});
                                      nn::init_weights(*model, 7);
                                      return std::make_unique<
                                          serving::NativeBackend>(
                                          std::move(model), 8);
                                    })
                    .is_ok());

    std::vector<std::future<serving::InferenceResponse>> futures;
    for (int i = 0; i < 5; ++i) {
      serving::InferenceRequest request;
      request.model = "vit";
      request.input = preproc::encode_image(
          preproc::synthesize_field_image(20, 20, i),
          preproc::ImageFormat::kAgJpeg);
      auto result = server.submit(std::move(request));
      ASSERT_TRUE(result.is_ok());
      futures.push_back(std::move(result).value());
    }
    for (auto& future : futures) {
      EXPECT_TRUE(future.get().status.is_ok());
    }

    const std::string text = server.prometheus_text();
    EXPECT_NE(text.find("harvest_requests_completed_total{model=\"vit\","
                        "precision=\"fp32\"} 5"),
              std::string::npos);
    EXPECT_NE(text.find("harvest_request_latency_seconds_bucket{"),
              std::string::npos);
    EXPECT_NE(text.find("harvest_batch_flush_total{"), std::string::npos);
    EXPECT_NE(text.find("harvest_preproc_pool_threads 1"), std::string::npos);

    server.shutdown();
  }
  const core::Json doc = parsed_trace();
  recorder.disable();

  // Request lifecycle spans from the serving layer...
  for (const char* stage : {"queue", "preprocess", "inference", "respond"}) {
    const auto spans = events_named(doc, stage);
    EXPECT_FALSE(spans.empty()) << "missing spans for stage " << stage;
    for (const core::Json& span : spans) {
      EXPECT_EQ(span.get_string("ph", ""), "X");
    }
  }
  // ...request spans carry correlation ids...
  bool any_request_id = false;
  for (const core::Json& span : events_named(doc, "request")) {
    const core::Json* args = span.find("args");
    any_request_id =
        any_request_id || (args != nullptr && args->get_int("id", 0) > 0);
  }
  EXPECT_TRUE(any_request_id);
  // ...and per-layer spans from inside the nn graph executor.
  EXPECT_FALSE(events_named(doc, "embed").empty());
  EXPECT_FALSE(events_named(doc, "block0").empty());
  EXPECT_FALSE(events_named(doc, "head").empty());
  // Queue-depth counter events from the batcher, labelled by model.
  EXPECT_FALSE(events_named(doc, "vit/queue_depth").empty());
}

}  // namespace
}  // namespace harvest
