#include <gtest/gtest.h>

#include <cmath>

#include "core/thread_pool.hpp"
#include "platform/device.hpp"
#include "preproc/cost_model.hpp"
#include "preproc/pipeline.hpp"
#include "tensor/ops.hpp"

namespace harvest::preproc {
namespace {

std::vector<EncodedImage> make_batch(std::size_t n, std::int64_t size,
                                     ImageFormat format) {
  std::vector<EncodedImage> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Image img = synthesize_field_image(size, size, 100 + i);
    batch.push_back(encode_image(img, format));
  }
  return batch;
}

// -------------------------------------------------------------- executors

TEST(CpuPipeline, ProducesModelReadyBatch) {
  CpuPipeline pipeline;
  PreprocSpec spec;
  spec.output_size = 32;
  const auto batch = make_batch(3, 48, ImageFormat::kAgJpeg);
  auto result = pipeline.run(batch, spec);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().shape(), tensor::Shape({3, 3, 32, 32}));
  for (float v : result.value().f32_span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(CpuPipeline, EmptyBatchRejected) {
  CpuPipeline pipeline;
  PreprocSpec spec;
  EXPECT_FALSE(pipeline.run({}, spec).is_ok());
}

TEST(CpuPipeline, CorruptImageFailsCleanly) {
  CpuPipeline pipeline;
  PreprocSpec spec;
  auto batch = make_batch(2, 32, ImageFormat::kAgJpeg);
  batch[1].bytes.resize(4);
  auto result = pipeline.run(batch, spec);
  EXPECT_FALSE(result.is_ok());
}

TEST(DaliPipeline, MatchesCpuPipelineBitwise) {
  // Same transforms, different execution strategy — identical tensors.
  core::ThreadPool pool(2);
  DaliPipeline dali(pool);
  CpuPipeline cpu;
  PreprocSpec spec;
  spec.output_size = 24;
  const auto batch = make_batch(5, 40, ImageFormat::kAtif);
  auto a = dali.run(batch, spec);
  auto b = cpu.run(batch, spec);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(tensor::max_abs_diff(a.value(), b.value()), 0.0f);
}

TEST(DaliPipeline, PropagatesWorstSlotFailure) {
  core::ThreadPool pool(2);
  DaliPipeline dali(pool);
  PreprocSpec spec;
  auto batch = make_batch(4, 24, ImageFormat::kPpm);
  batch[2].bytes.clear();
  EXPECT_FALSE(dali.run(batch, spec).is_ok());
}

TEST(Cv2Pipeline, AlwaysAppliesPerspective) {
  Cv2Pipeline cv2;
  CpuPipeline plain;
  PreprocSpec spec;
  spec.output_size = 32;
  spec.perspective = false;  // cv2 must override this
  const auto batch = make_batch(1, 64, ImageFormat::kRaw);
  auto warped = cv2.run(batch, spec);
  auto unwarped = plain.run(batch, spec);
  ASSERT_TRUE(warped.is_ok());
  ASSERT_TRUE(unwarped.is_ok());
  EXPECT_GT(tensor::max_abs_diff(warped.value(), unwarped.value()), 0.01f);
}

TEST(Pipeline, PerspectiveSpecAppliedByCpuPath) {
  CpuPipeline cpu;
  PreprocSpec plain;
  plain.output_size = 32;
  PreprocSpec warped = plain;
  warped.perspective = true;
  const auto batch = make_batch(1, 64, ImageFormat::kRaw);
  auto a = cpu.run(batch, plain);
  auto b = cpu.run(batch, warped);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_GT(tensor::max_abs_diff(a.value(), b.value()), 0.01f);
}

TEST(Pipeline, MethodNamesAndOutputSizes) {
  EXPECT_STREQ(preproc_method_name(PreprocMethod::kDali224), "DALI 224");
  EXPECT_STREQ(preproc_method_name(PreprocMethod::kPyTorch), "PyTorch");
  EXPECT_EQ(preproc_output_size(PreprocMethod::kDali96, 224), 96);
  EXPECT_EQ(preproc_output_size(PreprocMethod::kDali32, 224), 32);
  EXPECT_EQ(preproc_output_size(PreprocMethod::kPyTorch, 224), 224);
  EXPECT_EQ(preproc_output_size(PreprocMethod::kCv2, 32), 32);
}

// ------------------------------------------------------------- cost model

TEST(CostModel, DecodeFactorsOrdered) {
  EXPECT_EQ(format_decode_factor(ImageFormat::kRaw), 0.0);
  EXPECT_LT(format_decode_factor(ImageFormat::kPpm),
            format_decode_factor(ImageFormat::kAgJpeg));
  EXPECT_GT(format_decode_factor(ImageFormat::kAtif),
            format_decode_factor(ImageFormat::kAgJpeg));
}

WorkloadImageStats stats_for(double pixels, ImageFormat format,
                             bool warp = false) {
  WorkloadImageStats s;
  s.mean_pixels = pixels;
  s.mean_encoded_bytes = pixels;
  s.format = format;
  s.needs_perspective = warp;
  return s;
}

TEST(CostModel, SmallerDaliOutputsAreFaster) {
  const auto stats = stats_for(256 * 256, ImageFormat::kAgJpeg);
  const auto& dev = platform::a100();
  const double t224 =
      estimate_preproc(dev, stats, PreprocMethod::kDali224, 64).latency_s;
  const double t96 =
      estimate_preproc(dev, stats, PreprocMethod::kDali96, 64).latency_s;
  const double t32 =
      estimate_preproc(dev, stats, PreprocMethod::kDali32, 64).latency_s;
  EXPECT_GT(t224, t96);
  EXPECT_GT(t96, t32);
}

TEST(CostModel, LatencyGrowsWithBatchAndPixels) {
  const auto& dev = platform::v100();
  const auto small = stats_for(100 * 100, ImageFormat::kAgJpeg);
  const auto large = stats_for(1000 * 1000, ImageFormat::kAgJpeg);
  EXPECT_GT(estimate_preproc(dev, small, PreprocMethod::kDali224, 64).latency_s,
            estimate_preproc(dev, small, PreprocMethod::kDali224, 8).latency_s);
  EXPECT_GT(estimate_preproc(dev, large, PreprocMethod::kDali224, 8).latency_s,
            estimate_preproc(dev, small, PreprocMethod::kDali224, 8).latency_s);
}

TEST(CostModel, A100DaliBeatsV100BeatsJetson) {
  // Fig. 7's platform ordering (A100's hardware JPEG engine dominates).
  const auto stats = stats_for(256 * 256, ImageFormat::kAgJpeg);
  const double a100 =
      estimate_preproc(platform::a100(), stats, PreprocMethod::kDali224, 64)
          .throughput_img_per_s;
  const double v100 =
      estimate_preproc(platform::v100(), stats, PreprocMethod::kDali224, 64)
          .throughput_img_per_s;
  const double jetson = estimate_preproc(platform::jetson_orin_nano(), stats,
                                         PreprocMethod::kDali224, 64)
                            .throughput_img_per_s;
  EXPECT_GT(a100, v100);
  EXPECT_GT(v100, jetson);
}

TEST(CostModel, GpuBatchedBeatsCpuSingleImage) {
  // §4.2/§5: "GPU-accelerated preprocessing frameworks like NVIDIA DALI
  // demonstrate significant speedups over traditional CPU-based
  // pipelines".
  const auto stats = stats_for(256 * 256, ImageFormat::kAgJpeg);
  const auto& dev = platform::a100();
  const double dali =
      estimate_preproc(dev, stats, PreprocMethod::kDali224, 64)
          .throughput_img_per_s;
  const double pytorch =
      estimate_preproc(dev, stats, PreprocMethod::kPyTorch, 1)
          .throughput_img_per_s;
  EXPECT_GT(dali, 4.0 * pytorch);
}

TEST(CostModel, Crsa4kOnCpuIsRealTimeHostile) {
  // §4.2: OpenCV on the CRSA feed "demonstrates poor performance in
  // real-time scenarios" — hundreds of ms per frame on the edge CPU.
  const auto stats = stats_for(3840.0 * 2160.0, ImageFormat::kRaw, true);
  const auto est = estimate_preproc(platform::jetson_orin_nano(), stats,
                                    PreprocMethod::kCv2, 1);
  EXPECT_GT(est.latency_s, 0.1);
}

TEST(CostModel, RawFeedSkipsDecode) {
  const auto& dev = platform::a100();
  const auto raw = stats_for(512 * 512, ImageFormat::kRaw);
  const auto jpeg = stats_for(512 * 512, ImageFormat::kAgJpeg);
  EXPECT_LT(estimate_preproc(dev, raw, PreprocMethod::kPyTorch, 1).latency_s,
            estimate_preproc(dev, jpeg, PreprocMethod::kPyTorch, 1).latency_s);
}

TEST(CostModel, PoolBytesScaleWithBatch) {
  const auto stats = stats_for(224 * 224, ImageFormat::kAgJpeg);
  const auto& dev = platform::jetson_orin_nano();
  const auto b8 = estimate_preproc(dev, stats, PreprocMethod::kDali224, 8);
  const auto b64 = estimate_preproc(dev, stats, PreprocMethod::kDali224, 64);
  EXPECT_NEAR(b64.pool_bytes / b8.pool_bytes, 8.0, 1e-9);
  EXPECT_GT(b8.pool_bytes, 0.0);
}

TEST(CostModel, ThroughputLatencyConsistency) {
  const auto stats = stats_for(100 * 100, ImageFormat::kAgJpeg);
  const auto est = estimate_preproc(platform::v100(), stats,
                                    PreprocMethod::kDali96, 32);
  EXPECT_NEAR(est.throughput_img_per_s * est.latency_s, 32.0, 1e-6);
}

}  // namespace
}  // namespace harvest::preproc
