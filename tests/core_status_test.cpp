#include "core/status.hpp"

#include <gtest/gtest.h>

namespace harvest::core {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_TRUE(static_cast<bool>(status));
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::out_of_memory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::deadline_exceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::internal("boom").message(), "boom");
}

TEST(Status, ToStringIncludesCodeNameAndMessage) {
  const Status status = Status::out_of_memory("8 GiB exceeded");
  EXPECT_EQ(status.to_string(), "OUT_OF_MEMORY: 8 GiB exceeded");
  EXPECT_FALSE(status.is_ok());
}

TEST(Status, CodeNamesAreDistinct) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_EQ(status_code_name(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_NE(status_code_name(StatusCode::kInternal),
            status_code_name(StatusCode::kUnavailable));
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(Result, HoldsStatus) {
  Result<int> result(Status::not_found("missing"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(*result.value(), 7);
}

Status fails_then_propagates() {
  HARVEST_RETURN_IF_ERROR(Status::unavailable("downstream"));
  return Status::ok();  // unreachable
}

TEST(Status, ReturnIfErrorPropagates) {
  const Status status = fails_then_propagates();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

Status succeeds_through_macro() {
  HARVEST_RETURN_IF_ERROR(Status::ok());
  return Status::internal("reached the end");
}

TEST(Status, ReturnIfErrorPassesOk) {
  EXPECT_EQ(succeeds_through_macro().code(), StatusCode::kInternal);
}

TEST(CheckDeath, FiresOnViolation) {
  EXPECT_DEATH(HARVEST_CHECK(1 == 2), "HARVEST_CHECK failed");
}

TEST(CheckDeath, MessageIncluded) {
  EXPECT_DEATH(HARVEST_CHECK_MSG(false, "context clue"), "context clue");
}

}  // namespace
}  // namespace harvest::core
