/// Trace-context propagation tests: one request must yield one
/// causally-linked span tree — across the native serving stack
/// (client_request → request → queue/preprocess/inference/respond),
/// across retry attempts and degrade failover, and through the DES's
/// simulated hops — and obs::critical_path must attribute the tree's
/// end-to-end latency to within the documented residue.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <future>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "data/datasets.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"
#include "platform/device.hpp"
#include "preproc/codec.hpp"
#include "preproc/image.hpp"
#include "serving/native_backend.hpp"
#include "serving/online_sim.hpp"
#include "serving/resilience/fault.hpp"
#include "serving/resilience/retry.hpp"
#include "serving/server.hpp"

namespace harvest {
namespace {

using obs::TraceRecorder;

struct Span {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent = 0;
};

/// All 'X' spans belonging to `trace_id`, from the parsed export.
std::vector<Span> spans_of(const core::Json& doc, std::uint64_t trace_id) {
  std::vector<Span> out;
  for (const core::Json& event : doc.find("traceEvents")->as_array()) {
    if (event.get_string("ph", "") != "X") continue;
    const core::Json* args = event.find("args");
    if (args == nullptr) continue;
    if (static_cast<std::uint64_t>(args->get_int("trace_id", 0)) != trace_id) {
      continue;
    }
    Span span;
    span.name = event.get_string("name", "");
    span.span_id = static_cast<std::uint64_t>(args->get_int("span_id", 0));
    span.parent = static_cast<std::uint64_t>(args->get_int("parent", 0));
    out.push_back(std::move(span));
  }
  return out;
}

/// The tree is connected iff every span's parent is another span of the
/// same tree — except exactly one root.
std::size_t count_roots(const std::vector<Span>& spans) {
  std::set<std::uint64_t> ids;
  for (const Span& s : spans) ids.insert(s.span_id);
  std::size_t roots = 0;
  for (const Span& s : spans) {
    if (s.parent == 0 || ids.find(s.parent) == ids.end()) ++roots;
  }
  return roots;
}

std::size_t count_named(const std::vector<Span>& spans,
                        const std::string& name) {
  std::size_t n = 0;
  for (const Span& s : spans) n += s.name == name;
  return n;
}

serving::ModelDeploymentConfig tiny_deployment(const std::string& name) {
  serving::ModelDeploymentConfig config;
  config.name = name;
  config.max_batch = 4;
  config.instances = 1;
  config.max_queue_delay_s = 1e-3;
  config.preproc.output_size = 16;
  return config;
}

serving::BackendPtr tiny_backend() {
  nn::ModelPtr model = nn::build_vit({"ctx-vit", 16, 4, 16, 2, 2, 2, 4});
  nn::init_weights(*model, 7);
  return std::make_unique<serving::NativeBackend>(std::move(model), 8);
}

serving::InferenceRequest tiny_request(const std::string& model, int seed) {
  serving::InferenceRequest request;
  request.model = model;
  request.input = preproc::encode_image(
      preproc::synthesize_field_image(20, 20, seed),
      preproc::ImageFormat::kAgJpeg);
  return request;
}

core::Json parsed_trace() {
  auto doc = core::Json::parse(TraceRecorder::instance().to_json().dump(1));
  EXPECT_TRUE(doc.is_ok());
  return doc.is_ok() ? std::move(doc).value() : core::Json();
}

TEST(TraceContext, NativeRequestYieldsOneConnectedTree) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.clear();
  core::Json doc;
  {
    serving::Server server(/*preproc_threads=*/1);
    ASSERT_TRUE(
        server.register_model(tiny_deployment("vit"), tiny_backend).is_ok());
    serving::resilience::RetryingClient client(server, {});
    const serving::InferenceResponse response =
        client.infer_sync(tiny_request("vit", 1));
    EXPECT_TRUE(response.status.is_ok());
    server.shutdown();
    doc = parsed_trace();
  }
  recorder.disable();

  const std::vector<std::uint64_t> ids = obs::trace_ids(doc);
  ASSERT_EQ(ids.size(), 1u);
  const std::vector<Span> spans = spans_of(doc, ids.front());
  EXPECT_EQ(count_roots(spans), 1u);
  EXPECT_EQ(count_named(spans, "client_request"), 1u);
  EXPECT_EQ(count_named(spans, "request"), 1u);
  for (const char* stage : {"queue", "preprocess", "inference", "respond"}) {
    EXPECT_EQ(count_named(spans, stage), 1u) << stage;
  }

  // Critical path: the segments tile the root within the residue bound
  // (client-side submit overhead is the only unattributed time).
  auto path = obs::critical_path(doc, ids.front());
  ASSERT_TRUE(path.is_ok()) << path.status().message();
  EXPECT_EQ(path.value().root_name, "client_request");
  EXPECT_EQ(path.value().attempts, 1u);
  EXPECT_GT(path.value().end_to_end_us, 0.0);
  const double residue =
      std::abs(path.value().unattributed_us) / path.value().end_to_end_us;
  EXPECT_LT(residue, 0.05) << path.value().to_string();
}

TEST(TraceContext, RetryAttemptsShareOneTrace) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.clear();
  core::Json doc;
  {
    serving::Server server(/*preproc_threads=*/1);
    // Every batch fails: both attempts burn out and the client abandons.
    serving::resilience::FaultPlan faults;
    faults.transient_error_rate = 1.0;
    ASSERT_TRUE(server
                    .register_model(tiny_deployment("vit"),
                                    [faults] {
                                      return serving::resilience::
                                          wrap_with_faults(tiny_backend(),
                                                           faults, /*salt=*/0);
                                    })
                    .is_ok());
    serving::resilience::RetryPolicy policy;
    policy.max_attempts = 2;
    policy.initial_backoff_s = 1e-3;
    policy.max_backoff_s = 2e-3;
    serving::resilience::RetryingClient client(server, policy);
    const serving::InferenceResponse response =
        client.infer_sync(tiny_request("vit", 2));
    EXPECT_FALSE(response.status.is_ok());
    server.shutdown();
    doc = parsed_trace();
  }
  recorder.disable();

  const std::vector<std::uint64_t> ids = obs::trace_ids(doc);
  ASSERT_EQ(ids.size(), 1u);
  const std::vector<Span> spans = spans_of(doc, ids.front());
  // One tree: both server attempts and the backoff hang off the single
  // client_request root.
  EXPECT_EQ(count_roots(spans), 1u);
  EXPECT_EQ(count_named(spans, "client_request"), 1u);
  EXPECT_EQ(count_named(spans, "request"), 2u);
  EXPECT_EQ(count_named(spans, "retry_backoff"), 1u);

  std::uint64_t client_span = 0;
  for (const Span& s : spans) {
    if (s.name == "client_request") client_span = s.span_id;
  }
  for (const Span& s : spans) {
    if (s.name == "request" || s.name == "retry_backoff") {
      EXPECT_EQ(s.parent, client_span) << s.name;
    }
  }

  auto path = obs::critical_path(doc, ids.front());
  ASSERT_TRUE(path.is_ok());
  EXPECT_EQ(path.value().attempts, 2u);
  EXPECT_GT(path.value().segment(obs::Segment::kBackoff), 0.0);
}

TEST(TraceContext, DegradeFailoverStaysInTheSameTree) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.clear();
  core::Json doc;
  std::uint64_t degraded = 0;
  {
    serving::Server server(/*preproc_threads=*/1);
    // Primary sheds as soon as one request queues; its twin accepts
    // everything. A long queue delay keeps the first request parked so
    // the burst reliably overflows the depth-1 bound.
    serving::ModelDeploymentConfig primary = tiny_deployment("vit");
    primary.max_queue_delay_s = 0.05;
    primary.admission.max_queue_depth = 1;
    primary.degrade_to = "vit_twin";
    ASSERT_TRUE(server.register_model(primary, tiny_backend).is_ok());
    ASSERT_TRUE(server.register_model(tiny_deployment("vit_twin"), tiny_backend)
                    .is_ok());

    std::vector<std::future<serving::InferenceResponse>> futures;
    for (int i = 0; i < 4; ++i) {
      auto result = server.submit(tiny_request("vit", i));
      ASSERT_TRUE(result.is_ok());
      futures.push_back(std::move(result).value());
    }
    for (auto& future : futures) {
      EXPECT_TRUE(future.get().status.is_ok());
    }
    degraded = server.metrics("vit")->snapshot(1.0).degraded;
    server.shutdown();
    doc = parsed_trace();
  }
  recorder.disable();
  ASSERT_GT(degraded, 0u);

  // Every request — served by the primary or failed over to the twin —
  // is exactly one connected tree with one request root.
  const std::vector<std::uint64_t> ids = obs::trace_ids(doc);
  ASSERT_EQ(ids.size(), 4u);
  for (std::uint64_t id : ids) {
    const std::vector<Span> spans = spans_of(doc, id);
    EXPECT_EQ(count_roots(spans), 1u) << "trace " << id;
    EXPECT_EQ(count_named(spans, "request"), 1u) << "trace " << id;
  }
  // The degrade hand-offs left trace-stamped instant markers.
  std::size_t degrade_marks = 0;
  for (const core::Json& event : doc.find("traceEvents")->as_array()) {
    if (event.get_string("name", "") == "degraded" &&
        event.get_string("ph", "") == "i") {
      const core::Json* args = event.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GT(args->get_int("trace_id", 0), 0);
      ++degrade_marks;
    }
  }
  EXPECT_EQ(degrade_marks, degraded);
}

TEST(TraceContext, SimulatedRequestsTileExactlyOnVirtualTracks) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.clear();

  serving::OnlineSimConfig config;
  config.arrival_rate_qps = 200.0;
  config.duration_s = 1.0;
  config.max_batch = 16;
  config.max_queue_delay_s = 2e-3;
  config.overlap_preproc = false;  // sequential stages tile the root
  config.trace = &recorder;
  const serving::OnlineSimReport report = serving::simulate_online(
      platform::a100(), "ViT_Small", *data::find_dataset("Plant Village"),
      config);
  const core::Json doc = parsed_trace();
  recorder.disable();
  ASSERT_GT(report.completed, 0);

  const std::vector<std::uint64_t> ids = obs::trace_ids(doc);
  ASSERT_FALSE(ids.empty());
  for (std::size_t i = 0; i < std::min<std::size_t>(ids.size(), 10); ++i) {
    const std::vector<Span> spans = spans_of(doc, ids[i]);
    EXPECT_EQ(count_roots(spans), 1u);
    EXPECT_EQ(count_named(spans, "request"), 1u);
    auto path = obs::critical_path(doc, ids[i]);
    ASSERT_TRUE(path.is_ok());
    // Simulated timestamps are exact: queue + preprocess + inference
    // tile the request span to within rounding.
    EXPECT_LE(std::abs(path.value().unattributed_us),
              1e-3 * path.value().end_to_end_us + 1e-3)
        << path.value().to_string();
  }
}

}  // namespace
}  // namespace harvest
