#include "core/json.hpp"

#include <gtest/gtest.h>

namespace harvest::core {
namespace {

TEST(Json, DefaultIsNull) {
  Json value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.dump(), "null");
}

TEST(Json, ScalarConstruction) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, IntegersRoundTripExactly) {
  Json value(static_cast<std::int64_t>(123456789012345LL));
  EXPECT_EQ(value.dump(), "123456789012345");
  auto parsed = Json::parse(value.dump());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().as_int(), 123456789012345LL);
}

TEST(Json, ObjectUpsertAndAccess) {
  Json obj = Json::object();
  obj["a"] = Json(1);
  obj["b"] = Json("two");
  EXPECT_TRUE(obj.contains("a"));
  EXPECT_FALSE(obj.contains("c"));
  EXPECT_EQ(obj.get_int("a", -1), 1);
  EXPECT_EQ(obj.get_string("b", ""), "two");
  EXPECT_EQ(obj.get_int("missing", 9), 9);
  EXPECT_EQ(obj.get_string("a", "fallback"), "fallback");  // wrong type
}

TEST(Json, ArrayPushBack) {
  Json arr = Json::array();
  arr.push_back(Json(1));
  arr.push_back(Json(2));
  EXPECT_EQ(arr.as_array().size(), 2u);
  EXPECT_EQ(arr.dump(), "[1,2]");
}

TEST(Json, PrettyPrinting) {
  Json obj = Json::object();
  obj["k"] = Json(1);
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
}

TEST(Json, StringEscapes) {
  Json value(std::string("a\"b\\c\nd\te"));
  const std::string dumped = value.dump();
  auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().as_string(), "a\"b\\c\nd\te");
}

TEST(Json, ParsesUnicodeEscapes) {
  auto parsed = Json::parse(R"("Aé")");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().as_string(), "A\xC3\xA9");
}

TEST(Json, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(Json::parse("{} extra").is_ok());
  EXPECT_FALSE(Json::parse("1 2").is_ok());
}

TEST(Json, ParseRejectsMalformed) {
  for (const char* bad :
       {"", "{", "[", "\"unterminated", "{\"a\":}", "[1,]", "tru", "nul",
        "{\"a\" 1}", "01a", "-", "\"\\q\"", "{1: 2}"}) {
    EXPECT_FALSE(Json::parse(bad).is_ok()) << bad;
  }
}

TEST(Json, ParseRejectsDeepNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::parse(deep).is_ok());
}

TEST(Json, ParseAcceptsModerateNesting) {
  std::string nested(50, '[');
  nested += "1";
  nested += std::string(50, ']');
  EXPECT_TRUE(Json::parse(nested).is_ok());
}

TEST(Json, NumbersWithExponents) {
  auto parsed = Json::parse("[1e3, -2.5E-2, 0.125]");
  ASSERT_TRUE(parsed.is_ok());
  const JsonArray& arr = parsed.value().as_array();
  EXPECT_DOUBLE_EQ(arr[0].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(arr[1].as_number(), -0.025);
  EXPECT_DOUBLE_EQ(arr[2].as_number(), 0.125);
}

TEST(Json, EqualityIsStructural) {
  auto a = Json::parse(R"({"x": [1, 2], "y": null})");
  auto b = Json::parse(R"({ "y": null, "x": [1,2] })");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
}

/// Round-trip property over a corpus of documents.
class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  auto first = Json::parse(GetParam());
  ASSERT_TRUE(first.is_ok()) << GetParam();
  auto second = Json::parse(first.value().dump());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());
  // Pretty printing parses back to the same document too.
  auto pretty = Json::parse(first.value().dump(4));
  ASSERT_TRUE(pretty.is_ok());
  EXPECT_EQ(first.value(), pretty.value());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "false", "0", "-17", "3.25", "\"\"", "\"text\"",
        "[]", "{}", "[1,2,3]", R"({"a":1})",
        R"({"model":"ViT_Tiny","gflops":1.37,"batch":[1,2,4,1024]})",
        R"([{"nested":{"deep":[true,null,{"x":-1e-3}]}}])",
        R"({"unicode":"über","escape":"line\nbreak"})",
        R"({"empty_array":[],"empty_obj":{},"zero":0.0})"));

}  // namespace
}  // namespace harvest::core
