#include "harvest/predictor.hpp"

#include <gtest/gtest.h>

namespace harvest::api {
namespace {

DeploymentPlan base_plan() {
  DeploymentPlan plan;
  plan.device = "A100";
  plan.model = "ViT_Small";
  plan.dataset = "Plant Village";
  plan.scenario = platform::Scenario::kOnline;
  plan.arrival_qps = 500.0;
  plan.instances = 1;
  return plan;
}

TEST(Predictor, RejectsUnknownNames) {
  DeploymentPlan plan = base_plan();
  plan.device = "H100";
  EXPECT_FALSE(predict(plan).is_ok());
  plan = base_plan();
  plan.model = "AlexNet";
  EXPECT_FALSE(predict(plan).is_ok());
  plan = base_plan();
  plan.dataset = "ImageNet";
  EXPECT_FALSE(predict(plan).is_ok());
  plan = base_plan();
  plan.arrival_qps = 0.0;
  EXPECT_FALSE(predict(plan).is_ok());
}

TEST(Predictor, LightOnlineLoadOnA100IsFeasible) {
  auto result = predict(base_plan());
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const PerformanceExpectation& out = result.value();
  EXPECT_TRUE(out.feasible) << out.verdict;
  EXPECT_GT(out.headroom, 1.0);
  EXPECT_GT(out.chosen_batch, 0);
  EXPECT_LE(out.engine_latency_s, base_plan().latency_budget_s);
  EXPECT_GT(out.expected_p95_latency_s, 0.0);
  EXPECT_FALSE(out.engine_curve.empty());
  EXPECT_NE(out.verdict.find("feasible"), std::string::npos);
}

TEST(Predictor, OverloadedPlanIsInfeasible) {
  DeploymentPlan plan = base_plan();
  plan.device = "JetsonOrinNano";
  plan.model = "ViT_Base";
  plan.arrival_qps = 5000.0;  // far beyond the Jetson's 676 img/s ceiling
  auto result = predict(plan);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().feasible);
  EXPECT_LT(result.value().headroom, 1.0);
}

TEST(Predictor, RealTime4kCrsaOnJetsonIsInfeasibleOnCpuPath) {
  DeploymentPlan plan;
  plan.device = "JetsonOrinNano";
  plan.model = "ViT_Tiny";
  plan.dataset = "CRSA";
  plan.scenario = platform::Scenario::kRealTime;
  plan.preproc = preproc::PreprocMethod::kCv2;
  plan.arrival_qps = 30.0;  // 30 fps camera
  auto result = predict(plan);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().feasible);
  EXPECT_FALSE(result.value().warnings.empty());
}

TEST(Predictor, OfflineScenarioOnlyNeedsThroughput) {
  DeploymentPlan plan = base_plan();
  plan.scenario = platform::Scenario::kOffline;
  plan.arrival_qps = 1e9;  // offered load is irrelevant offline
  auto result = predict(plan);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(result.value().feasible);
}

TEST(Predictor, ScenarioMismatchWarns) {
  DeploymentPlan plan = base_plan();
  plan.device = "JetsonOrinNano";  // evaluated for real-time only
  plan.model = "ViT_Tiny";
  plan.scenario = platform::Scenario::kOnline;
  plan.arrival_qps = 50.0;
  auto result = predict(plan);
  ASSERT_TRUE(result.is_ok());
  bool warned = false;
  for (const std::string& warning : result.value().warnings) {
    warned |= warning.find("not deployed") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Predictor, ExplicitBatchOverridesChoice) {
  DeploymentPlan plan = base_plan();
  plan.batch = 8;
  auto result = predict(plan);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().chosen_batch, 8);
}

TEST(Predictor, ExplicitBatchBeyondWallFailsGracefully) {
  DeploymentPlan plan = base_plan();
  plan.device = "JetsonOrinNano";
  plan.model = "ViT_Base";
  plan.batch = 64;  // wall is 8
  auto result = predict(plan);
  ASSERT_TRUE(result.is_ok());
  EXPECT_FALSE(result.value().feasible);
  EXPECT_NE(result.value().verdict.find("memory wall"), std::string::npos);
}

TEST(Predictor, CurveIsMonotone) {
  auto result = predict(base_plan());
  ASSERT_TRUE(result.is_ok());
  const auto& curve = result.value().engine_curve;
  ASSERT_GT(curve.size(), 3u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].latency_s, curve[i - 1].latency_s);
    EXPECT_GE(curve[i].throughput_img_per_s,
              curve[i - 1].throughput_img_per_s * 0.999);
    EXPECT_LE(curve[i].energy_per_image_j,
              curve[i - 1].energy_per_image_j * 1.001);
  }
}

TEST(Predictor, JsonSerializationIsValid) {
  auto result = predict(base_plan());
  ASSERT_TRUE(result.is_ok());
  const core::Json json = result.value().to_json();
  auto reparsed = core::Json::parse(json.dump(2));
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_TRUE(reparsed.value().get_bool("feasible", false));
  EXPECT_GT(reparsed.value().find("engine_curve")->as_array().size(), 0u);
}

TEST(Predictor, Int8PrecisionRaisesCapacity) {
  DeploymentPlan plan = base_plan();
  auto native = predict(plan);
  plan.precision = platform::Precision::kINT8;
  auto int8 = predict(plan);
  ASSERT_TRUE(native.is_ok());
  ASSERT_TRUE(int8.is_ok());
  EXPECT_GT(int8.value().engine_throughput_img_per_s,
            native.value().engine_throughput_img_per_s);
}

}  // namespace
}  // namespace harvest::api
