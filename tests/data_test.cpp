#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "data/datasets.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"

namespace harvest::data {
namespace {

// ---------------------------------------------------------------- registry

TEST(Registry, Table2Counts) {
  const auto& all = evaluated_datasets();
  ASSERT_EQ(all.size(), 6u);

  const auto pv = find_dataset("Plant Village");
  ASSERT_TRUE(pv.has_value());
  EXPECT_EQ(pv->num_classes, 39);
  EXPECT_EQ(pv->num_samples, 43430);
  EXPECT_EQ(pv->sizes.mode_w, 256);

  const auto weed = find_dataset("Weed Detection in Soybean");
  ASSERT_TRUE(weed.has_value());
  EXPECT_EQ(weed->num_classes, 4);
  EXPECT_EQ(weed->num_samples, 10635);
  EXPECT_EQ(weed->sizes.mode_w, 233);  // Fig. 4a annotation

  const auto bug = find_dataset("Sugar Cane-Spittle Bug");
  ASSERT_TRUE(bug.has_value());
  EXPECT_EQ(bug->num_classes, 2);
  EXPECT_EQ(bug->num_samples, 10100);
  EXPECT_EQ(bug->sizes.mode_w, 61);  // Fig. 4b annotation

  const auto fruits = find_dataset("Fruits-360");
  ASSERT_TRUE(fruits.has_value());
  EXPECT_EQ(fruits->num_classes, 81);
  EXPECT_EQ(fruits->num_samples, 40998);
  EXPECT_EQ(fruits->sizes.mode_w, 100);

  const auto corn = find_dataset("Corn Growth Stage");
  ASSERT_TRUE(corn.has_value());
  EXPECT_EQ(corn->num_classes, 23);
  EXPECT_EQ(corn->num_samples, 52198);
  EXPECT_EQ(corn->format, preproc::ImageFormat::kAtif);  // UAS TIFF imagery

  const auto crsa = find_dataset("CRSA");
  ASSERT_TRUE(crsa.has_value());
  EXPECT_EQ(crsa->num_classes, 0);
  EXPECT_EQ(crsa->num_samples, 992);
  EXPECT_EQ(crsa->sizes.mode_w, 3840);
  EXPECT_EQ(crsa->sizes.mode_h, 2160);
  EXPECT_TRUE(crsa->needs_perspective);
  EXPECT_EQ(crsa->format, preproc::ImageFormat::kRaw);
}

TEST(Registry, ClassificationSubsetExcludesCrsa) {
  const auto subset = classification_datasets();
  EXPECT_EQ(subset.size(), 5u);
  for (const DatasetSpec& spec : subset) {
    EXPECT_GT(spec.num_classes, 0) << spec.name;
  }
}

TEST(Registry, UnknownNameIsNullopt) {
  EXPECT_FALSE(find_dataset("ImageNet").has_value());
}

// ------------------------------------------------------------ distribution

TEST(SizeDistribution, FixedIsExact) {
  const auto spec = *find_dataset("Plant Village");
  for (std::int64_t i = 0; i < 20; ++i) {
    const auto [w, h] = spec.sizes.sample(1, i);
    EXPECT_EQ(w, 256);
    EXPECT_EQ(h, 256);
  }
  EXPECT_DOUBLE_EQ(spec.sizes.mean_pixels(), 256.0 * 256.0);
}

TEST(SizeDistribution, GaussianModeNearAnnotation) {
  // Fig. 4a: most common soybean image is ~233×233.
  const auto spec = *find_dataset("Weed Detection in Soybean");
  core::Histogram widths(0, 500, 50);
  for (std::int64_t i = 0; i < 5000; ++i) {
    const auto [w, h] = spec.sizes.sample(7, i);
    widths.add(static_cast<double>(w));
    EXPECT_GE(w, spec.sizes.min_edge);
    EXPECT_LE(w, spec.sizes.max_edge);
    EXPECT_GE(h, spec.sizes.min_edge);
    EXPECT_LE(h, spec.sizes.max_edge);
  }
  EXPECT_NEAR(widths.mode(), 233.0, 25.0);
}

TEST(SizeDistribution, GaussianAspectHugsDiagonal) {
  const auto spec = *find_dataset("Sugar Cane-Spittle Bug");
  core::RunningStats ratio;
  for (std::int64_t i = 0; i < 2000; ++i) {
    const auto [w, h] = spec.sizes.sample(3, i);
    ratio.add(static_cast<double>(h) / static_cast<double>(w));
  }
  EXPECT_NEAR(ratio.mean(), 1.0, 0.05);
  EXPECT_LT(ratio.stddev(), 0.15);
}

TEST(SizeDistribution, SampleIsDeterministicPerIndex) {
  const auto spec = *find_dataset("Weed Detection in Soybean");
  const auto a = spec.sizes.sample(9, 123);
  const auto b = spec.sizes.sample(9, 123);
  EXPECT_EQ(a, b);
  const auto c = spec.sizes.sample(9, 124);
  const auto d = spec.sizes.sample(10, 123);
  EXPECT_TRUE(a != c || a != d);  // index and seed both matter
}

TEST(DatasetStats, EncodedBytesReflectFormat) {
  const auto jpeg = find_dataset("Plant Village")->image_stats();
  const auto raw = find_dataset("CRSA")->image_stats();
  EXPECT_LT(jpeg.mean_encoded_bytes, jpeg.mean_pixels * 3.0);  // compressed
  EXPECT_DOUBLE_EQ(raw.mean_encoded_bytes, raw.mean_pixels * 3.0);
  EXPECT_TRUE(raw.needs_perspective);
}

// ---------------------------------------------------------------- samples

TEST(Synthetic, SamplesAreDeterministic) {
  const SyntheticDataset dataset(*find_dataset("Sugar Cane-Spittle Bug"), 5);
  const Sample a = dataset.make_sample(17);
  const Sample b = dataset.make_sample(17);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.image.bytes, b.image.bytes);
  const Sample c = dataset.make_sample(18);
  EXPECT_TRUE(c.image.bytes != a.image.bytes);
}

TEST(Synthetic, LabelsInRange) {
  const SyntheticDataset dataset(*find_dataset("Fruits-360"), 6);
  std::vector<bool> seen(81, false);
  for (std::int64_t i = 0; i < 500; ++i) {
    const std::int64_t label = dataset.sample_label(i);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 81);
    seen[static_cast<std::size_t>(label)] = true;
  }
  int covered = 0;
  for (bool b : seen) covered += b ? 1 : 0;
  EXPECT_GT(covered, 60);  // labels spread over most classes
}

TEST(Synthetic, UnlabeledDatasetGivesMinusOne) {
  const SyntheticDataset dataset(*find_dataset("CRSA"), 7);
  EXPECT_EQ(dataset.sample_label(0), -1);
}

TEST(Synthetic, EncodedSamplesDecode) {
  const SyntheticDataset dataset(*find_dataset("Corn Growth Stage"), 8);
  const Sample sample = dataset.make_sample(3);
  EXPECT_EQ(sample.image.format, preproc::ImageFormat::kAtif);
  auto decoded = preproc::decode_image(sample.image);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().width(), 224);
  EXPECT_EQ(decoded.value().height(), 224);
}

TEST(Synthetic, DimsMatchSampleDims) {
  const SyntheticDataset dataset(*find_dataset("Weed Detection in Soybean"), 9);
  for (std::int64_t i = 0; i < 5; ++i) {
    const auto [w, h] = dataset.sample_dims(i);
    const Sample sample = dataset.make_sample(i);
    EXPECT_EQ(sample.image.width, w);
    EXPECT_EQ(sample.image.height, h);
  }
}

TEST(SyntheticDeath, OutOfRangeIndexAborts) {
  const SyntheticDataset dataset(*find_dataset("CRSA"), 7);
  EXPECT_DEATH(dataset.make_sample(99999), "out of range");
}

// ----------------------------------------------------------------- loader

TEST(Loader, DrainsRangeInOrder) {
  const SyntheticDataset dataset(*find_dataset("Sugar Cane-Spittle Bug"), 10);
  PrefetchLoader loader(dataset, 4, 0, 10);
  std::int64_t next_index = 0;
  std::int64_t total = 0;
  while (auto batch = loader.next()) {
    EXPECT_EQ(batch->first_index, next_index);
    next_index += static_cast<std::int64_t>(batch->samples.size());
    total += static_cast<std::int64_t>(batch->samples.size());
    EXPECT_LE(batch->samples.size(), 4u);
  }
  EXPECT_EQ(total, 10);
  EXPECT_FALSE(loader.next().has_value());  // stays drained
}

TEST(Loader, LastBatchMayBeShort) {
  const SyntheticDataset dataset(*find_dataset("Sugar Cane-Spittle Bug"), 11);
  PrefetchLoader loader(dataset, 4, 0, 6);
  auto first = loader.next();
  auto second = loader.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->samples.size(), 4u);
  EXPECT_EQ(second->samples.size(), 2u);
  EXPECT_FALSE(loader.next().has_value());
}

TEST(Loader, EarlyDestructionIsClean) {
  const SyntheticDataset dataset(*find_dataset("Sugar Cane-Spittle Bug"), 12);
  {
    PrefetchLoader loader(dataset, 2, 0, 100);
    auto batch = loader.next();
    EXPECT_TRUE(batch.has_value());
    // Destructor must stop the producer without deadlock.
  }
  SUCCEED();
}

TEST(Loader, RangeClampedToDatasetSize) {
  const SyntheticDataset dataset(*find_dataset("CRSA"), 13);
  PrefetchLoader loader(dataset, 1, 990, 5000);
  std::int64_t total = 0;
  while (auto batch = loader.next()) {
    total += static_cast<std::int64_t>(batch->samples.size());
  }
  EXPECT_EQ(total, 2);  // 990, 991
}

}  // namespace
}  // namespace harvest::data
