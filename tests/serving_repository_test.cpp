#include "serving/repository.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/serialize.hpp"
#include "preproc/image.hpp"

namespace harvest::serving {
namespace {

preproc::EncodedImage tiny_input(std::uint64_t seed) {
  const preproc::Image img = preproc::synthesize_field_image(24, 24, seed);
  return preproc::encode_image(img, preproc::ImageFormat::kAgJpeg);
}

core::Json parse(const char* text) {
  auto result = core::Json::parse(text);
  HARVEST_CHECK(result.is_ok());
  return std::move(result).value();
}

TEST(Repository, RegistersNativeVitAndServes) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [{
      "name": "weeds", "backend": "native", "architecture": "vit",
      "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
      "classes": 4, "max_batch": 4, "instances": 1,
      "preproc": {"output_size": 16}
    }]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());
  InferenceRequest request;
  request.model = "weeds";
  request.input = tiny_input(1);
  const InferenceResponse response = server.infer_sync(std::move(request));
  ASSERT_TRUE(response.status.is_ok()) << response.status.to_string();
  EXPECT_LT(response.predicted_class, 4);
}

TEST(Repository, RegistersAllThreeArchitectures) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [
      {"name": "a", "backend": "native", "architecture": "vit",
       "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
       "classes": 3, "preproc": {"output_size": 16}},
      {"name": "b", "backend": "native", "architecture": "resnet",
       "image": 32, "stages": [1], "classes": 3,
       "preproc": {"output_size": 32}},
      {"name": "c", "backend": "native", "architecture": "rwkv",
       "image": 16, "patch": 4, "dim": 16, "depth": 1,
       "classes": 3, "preproc": {"output_size": 16}}
    ]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());
  EXPECT_EQ(server.model_names().size(), 3u);
  for (const char* name : {"a", "b", "c"}) {
    InferenceRequest request;
    request.model = name;
    request.input = tiny_input(2);
    const InferenceResponse response = server.infer_sync(std::move(request));
    EXPECT_TRUE(response.status.is_ok()) << name;
  }
}

TEST(Repository, RegistersSimBackend) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [{
      "name": "cloud-vit", "backend": "sim",
      "model": "ViT_Tiny", "device": "A100",
      "classes": 39, "max_batch": 64
    }]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());
  InferenceRequest request;
  request.model = "cloud-vit";
  request.input = tiny_input(3);
  const InferenceResponse response = server.infer_sync(std::move(request));
  ASSERT_TRUE(response.status.is_ok());
  EXPECT_GT(response.timing.inference_s, 0.0);  // simulated device time
}

TEST(Repository, LoadsWeightsFromCheckpoint) {
  // Save a known model, point the repository at it, and confirm the
  // served prediction matches direct execution of that checkpoint.
  nn::ViTConfig config{"ckpt-vit", 16, 4, 16, 1, 2, 4, 4};
  nn::ModelPtr reference = nn::build_vit(config);
  nn::init_weights(*reference, 555);
  const std::string path = ::testing::TempDir() + "/repo_ckpt.hvst";
  ASSERT_TRUE(nn::save_weights(*reference, path).is_ok());

  Server server(1);
  core::Json repo = parse(R"({
    "models": [{
      "name": "ckpt", "backend": "native", "architecture": "vit",
      "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
      "classes": 4, "seed": 999, "preproc": {"output_size": 16}
    }]
  })");
  repo["models"].as_array()[0]["weights"] = core::Json(path);
  ASSERT_TRUE(load_repository(server, repo).is_ok());

  const preproc::EncodedImage input = tiny_input(4);
  InferenceRequest request;
  request.model = "ckpt";
  request.input = input;
  const InferenceResponse served = server.infer_sync(std::move(request));
  ASSERT_TRUE(served.status.is_ok());

  preproc::CpuPipeline pipeline;
  preproc::PreprocSpec spec;
  spec.output_size = 16;
  auto batch = pipeline.run(std::span(&input, 1), spec);
  ASSERT_TRUE(batch.is_ok());
  tensor::Tensor logits = reference->forward(batch.value());
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(served.logits[static_cast<std::size_t>(c)], logits.f32()[c],
                1e-4f);
  }
  std::remove(path.c_str());
}

TEST(Repository, ServesInt8AndFp32SideBySide) {
  // The same architecture + seed deployed twice, once per precision.
  // Both must serve, and the Prometheus exposition must carry the
  // precision label so the two streams are comparable live.
  Server server(1);
  const core::Json config = parse(R"({
    "models": [
      {"name": "weeds-fp32", "backend": "native", "architecture": "vit",
       "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
       "classes": 4, "seed": 7, "preproc": {"output_size": 16}},
      {"name": "weeds-int8", "backend": "native", "architecture": "vit",
       "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
       "classes": 4, "seed": 7, "precision": "int8",
       "preproc": {"output_size": 16}}
    ]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());

  const preproc::EncodedImage input = tiny_input(5);
  std::vector<InferenceResponse> responses;
  for (const char* name : {"weeds-fp32", "weeds-int8"}) {
    InferenceRequest request;
    request.model = name;
    request.input = input;
    responses.push_back(server.infer_sync(std::move(request)));
    ASSERT_TRUE(responses.back().status.is_ok()) << name;
  }
  // Same weights, same input: int8 quantization must not flip the
  // prediction on this tiny head.
  EXPECT_EQ(responses[0].predicted_class, responses[1].predicted_class);

  const std::string text = server.prometheus_text();
  EXPECT_NE(text.find("model=\"weeds-fp32\",precision=\"fp32\""),
            std::string::npos);
  EXPECT_NE(text.find("model=\"weeds-int8\",precision=\"int8\""),
            std::string::npos);
}

TEST(Repository, RejectsUnknownPrecisionAndSimInt8) {
  Server server(1);
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "x", "backend": "native", "architecture": "vit",
                "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
                "precision": "fp8"}]})")).is_ok());
  // The sim backend prices precision analytically (Ablation C), so an
  // int8 sim deployment is a config error, not a silent fp32 fallback.
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "y", "backend": "sim", "model": "ViT_Tiny",
                "device": "A100", "precision": "int8"}]})")).is_ok());
}

TEST(Repository, RejectsBadConfigs) {
  Server server(1);
  EXPECT_FALSE(load_repository(server, parse("{}")).is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({"models": 3})")).is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({"models": [5]})")).is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "x", "backend": "native",
                "architecture": "alexnet"}]})")).is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "x", "backend": "sim", "model": "ViT_Tiny",
                "device": "TPU"}]})")).is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "x", "backend": "sim", "model": "AlexNet",
                "device": "A100"}]})")).is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "x", "backend": "grpc"}]})")).is_ok());
  // Invalid geometry: dim not divisible by heads.
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "x", "backend": "native", "architecture": "vit",
                "dim": 10, "heads": 3}]})")).is_ok());
}

TEST(Repository, MissingWeightsFileFailsRegistration) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [{
      "name": "x", "backend": "native", "architecture": "vit",
      "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
      "weights": "/nonexistent/w.hvst"
    }]
  })");
  EXPECT_FALSE(load_repository(server, config).is_ok());
}

TEST(Repository, LoadFromFile) {
  const std::string path = ::testing::TempDir() + "/repo.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs(R"({"models": [{"name": "m", "backend": "sim",
               "model": "ResNet50", "device": "V100"}]})", f);
  std::fclose(f);
  Server server(1);
  EXPECT_TRUE(load_repository_file(server, path).is_ok());
  EXPECT_EQ(server.model_names().size(), 1u);
  EXPECT_FALSE(load_repository_file(server, "/no/such/file.json").is_ok());
  std::remove(path.c_str());
}

// ------------------------------------------------- repository validation

TEST(Repository, DuplicateDeploymentNamesRejected) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [
      {"name": "dup", "backend": "sim", "model": "ResNet50", "device": "V100"},
      {"name": "dup", "backend": "sim", "model": "ViT_Tiny", "device": "A100"}
    ]
  })");
  const core::Status status = load_repository(server, config);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("duplicate deployment name"),
            std::string::npos);
  EXPECT_NE(status.message().find("dup"), std::string::npos);
  // The pre-pass rejects the whole repository: nothing half-registers.
  EXPECT_TRUE(server.model_names().empty());
}

TEST(Repository, NonPositiveInstancesRejected) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [{"name": "bad-inst", "backend": "sim", "model": "ResNet50",
                "device": "V100", "instances": 0}]
  })");
  const core::Status status = load_repository(server, config);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad-inst"), std::string::npos);
  EXPECT_NE(status.message().find("instances > 0"), std::string::npos);
}

TEST(Repository, NonPositiveQueueCapacityRejected) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [{"name": "bad-q", "backend": "sim", "model": "ResNet50",
                "device": "V100", "queue_capacity": -1}]
  })");
  const core::Status status = load_repository(server, config);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("bad-q"), std::string::npos);
  EXPECT_NE(status.message().find("queue_capacity > 0"), std::string::npos);
}

TEST(Repository, BadTenantWeightAndQuotaRejected) {
  Server server(1);
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "w", "backend": "sim", "model": "ResNet50",
                "device": "V100", "weight": 0}]})"))
                   .is_ok());
  EXPECT_FALSE(load_repository(server, parse(R"({
    "models": [{"name": "q", "backend": "sim", "model": "ResNet50",
                "device": "V100", "quota": -2}]})"))
                   .is_ok());
}

TEST(Repository, TenantKeysReachTheServer) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [
      {"name": "vit-farm", "backend": "sim", "model": "ViT_Tiny",
       "device": "A100", "tenant": "farm", "weight": 4, "quota": 9},
      {"name": "resnet-farm", "backend": "sim", "model": "ResNet50",
       "device": "V100", "tenant": "farm"}
    ]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());
  ASSERT_EQ(server.tenant_names().size(), 1u);
  const TenantState* tenant = server.tenant("farm");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->weight.load(), 4.0);
  EXPECT_EQ(tenant->quota.load(), 9);
}

TEST(Repository, IdenticalNativeModelsShareOneWeightEntry) {
  Server server(1);
  const core::Json config = parse(R"({
    "models": [
      {"name": "weeds-a", "backend": "native", "architecture": "vit",
       "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
       "classes": 4, "preproc": {"output_size": 16}},
      {"name": "weeds-b", "backend": "native", "architecture": "vit",
       "image": 16, "patch": 4, "dim": 16, "depth": 1, "heads": 2,
       "classes": 4, "preproc": {"output_size": 16}}
    ]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());
  const WeightStore::Stats stats = server.weight_store().stats();
  EXPECT_EQ(stats.entries, 1u);  // same content signature -> one entry
  EXPECT_EQ(stats.dedup_hits, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_GT(stats.naive_bytes, stats.resident_bytes);
}

TEST(Repository, TopLevelWorkersAndWeightBudgetApply) {
  Server server(1);
  const core::Json config = parse(R"({
    "workers": 2,
    "weight_budget_bytes": 1048576,
    "models": [
      {"name": "a", "backend": "sim", "model": "ResNet50", "device": "V100",
       "instances": 4},
      {"name": "b", "backend": "sim", "model": "ViT_Tiny", "device": "A100",
       "instances": 4}
    ]
  })");
  ASSERT_TRUE(load_repository(server, config).is_ok());
  // Explicit target consolidates below the sum of instances (8).
  EXPECT_EQ(server.worker_pool().workers(), 2u);
  EXPECT_EQ(server.weight_store().budget_bytes(), 1048576u);

  Server reject(1);
  EXPECT_FALSE(
      load_repository(reject, parse(R"({"workers": 0, "models": []})"))
          .is_ok());
  EXPECT_FALSE(load_repository(
                   reject, parse(R"({"weight_budget_bytes": -1, "models": []})"))
                   .is_ok());
}

TEST(Repository, MalformedJsonFileRejected) {
  const std::string path = ::testing::TempDir() + "/bad.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{not json", f);
  std::fclose(f);
  Server server(1);
  EXPECT_FALSE(load_repository_file(server, path).is_ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace harvest::serving
