#include "serving/batcher.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace harvest::serving {
namespace {

InferenceRequest make_request(std::uint64_t id) {
  InferenceRequest req;
  req.id = id;
  req.model = "m";
  return req;
}

TEST(Batcher, FullBatchDispatchesImmediately) {
  DynamicBatcher batcher({/*max_batch=*/4, /*max_queue_delay_s=*/10.0, 64, {}});
  std::vector<std::future<InferenceResponse>> futures;
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto result = batcher.submit(make_request(i));
    ASSERT_TRUE(result.is_ok());
    futures.push_back(std::move(result).value());
  }
  const auto batch = batcher.wait_batch();  // returns without waiting 10s
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batcher.queued(), 0u);
}

TEST(Batcher, TimeoutFlushesPartialBatch) {
  DynamicBatcher batcher({8, /*max_queue_delay_s=*/5e-3, 64, {}});
  auto result = batcher.submit(make_request(1));
  ASSERT_TRUE(result.is_ok());
  const auto batch = batcher.wait_batch();
  EXPECT_EQ(batch.size(), 1u);
}

TEST(Batcher, OversizedQueueSplitsIntoMaxBatches) {
  DynamicBatcher batcher({3, 10.0, 64, {}});
  for (std::uint64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  EXPECT_EQ(batcher.wait_batch().size(), 3u);
  EXPECT_EQ(batcher.wait_batch().size(), 3u);
  // One straggler flushes on timeout.
  EXPECT_EQ(batcher.wait_batch().size(), 1u);
}

TEST(Batcher, PreservesFifoOrder) {
  DynamicBatcher batcher({4, 10.0, 64, {}});
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  const auto batch = batcher.wait_batch();
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch[i].request.id, i);
  }
}

TEST(Batcher, BackPressureRejectsWhenFull) {
  DynamicBatcher batcher({4, 10.0, /*max_queue_depth=*/2, {}});
  ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
  ASSERT_TRUE(batcher.submit(make_request(2)).is_ok());
  auto rejected = batcher.submit(make_request(3));
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.status().code(), core::StatusCode::kUnavailable);
}

TEST(Batcher, ShutdownRejectsSubmitsAndDrains) {
  DynamicBatcher batcher({4, 10.0, 64, {}});
  ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
  batcher.shutdown();
  EXPECT_FALSE(batcher.submit(make_request(2)).is_ok());
  // Pending request is still handed out before the empty shutdown signal.
  EXPECT_EQ(batcher.wait_batch().size(), 1u);
  EXPECT_TRUE(batcher.wait_batch().empty());
}

TEST(Batcher, ShutdownWakesBlockedWaiter) {
  DynamicBatcher batcher({4, 10.0, 64, {}});
  std::thread waiter([&batcher] {
    const auto batch = batcher.wait_batch();
    EXPECT_TRUE(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  batcher.shutdown();
  waiter.join();
}

TEST(Batcher, WaiterPicksUpLateArrivals) {
  DynamicBatcher batcher({2, 10.0, 64, {}});
  std::thread producer([&batcher] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
    ASSERT_TRUE(batcher.submit(make_request(2)).is_ok());
  });
  const auto batch = batcher.wait_batch();
  EXPECT_EQ(batch.size(), 2u);
  producer.join();
}

TEST(Batcher, PreferredSizeDispatchesWithoutWaiting) {
  BatcherConfig config{16, /*max_queue_delay_s=*/10.0, 64, {4}};
  DynamicBatcher batcher(config);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  // Would otherwise block ~10 s; the preferred size triggers immediately.
  const auto batch = batcher.wait_batch();
  EXPECT_EQ(batch.size(), 4u);
}

TEST(Batcher, LargestPreferredSizeWins) {
  BatcherConfig config{32, 10.0, 64, {2, 8}};
  DynamicBatcher batcher(config);
  for (std::uint64_t i = 0; i < 11; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  EXPECT_EQ(batcher.wait_batch().size(), 8u);  // not 2
  EXPECT_EQ(batcher.wait_batch().size(), 2u);  // 3 left -> preferred 2
  // The final straggler flushes on age (short wait).
  BatcherConfig tail_config{32, 5e-3, 64, {2, 8}};
  (void)tail_config;
  EXPECT_EQ(batcher.queued(), 1u);
}

TEST(Batcher, FullBatchStillBeatsPreferred) {
  BatcherConfig config{4, 10.0, 64, {2}};
  DynamicBatcher batcher(config);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  EXPECT_EQ(batcher.wait_batch().size(), 4u);
}

// ---------------------------------------------------------- flush reasons

TEST(BatcherFlushReason, FullBatchIsTagged) {
  DynamicBatcher batcher({4, 10.0, 64, {}});
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  const BatchedRequests batch = batcher.wait_batch_tagged();
  EXPECT_EQ(batch.requests.size(), 4u);
  EXPECT_EQ(batch.reason, FlushReason::kFullBatch);
}

TEST(BatcherFlushReason, TimeoutIsTagged) {
  DynamicBatcher batcher({8, /*max_queue_delay_s=*/5e-3, 64, {}});
  ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
  const BatchedRequests batch = batcher.wait_batch_tagged();
  EXPECT_EQ(batch.requests.size(), 1u);
  EXPECT_EQ(batch.reason, FlushReason::kTimeout);
}

TEST(BatcherFlushReason, PreferredSizeIsTagged) {
  DynamicBatcher batcher({16, 10.0, 64, {4}});
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  const BatchedRequests batch = batcher.wait_batch_tagged();
  EXPECT_EQ(batch.requests.size(), 4u);
  EXPECT_EQ(batch.reason, FlushReason::kPreferredSize);
}

TEST(BatcherFlushReason, ShutdownDrainIsTagged) {
  DynamicBatcher batcher({4, 10.0, 64, {}});
  ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
  batcher.shutdown();
  const BatchedRequests drain = batcher.wait_batch_tagged();
  EXPECT_EQ(drain.requests.size(), 1u);
  EXPECT_EQ(drain.reason, FlushReason::kShutdown);
  // The terminating empty batch is not counted as a flush.
  EXPECT_TRUE(batcher.wait_batch_tagged().requests.empty());
  const FlushCounts counts = batcher.flush_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kShutdown)], 1u);
}

TEST(BatcherFlushReason, CountsAccumulateAcrossFlushes) {
  DynamicBatcher batcher({2, /*max_queue_delay_s=*/5e-3, 64, {}});
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  EXPECT_EQ(batcher.wait_batch_tagged().reason, FlushReason::kFullBatch);
  EXPECT_EQ(batcher.wait_batch_tagged().reason, FlushReason::kFullBatch);
  EXPECT_EQ(batcher.wait_batch_tagged().reason, FlushReason::kTimeout);
  const FlushCounts counts = batcher.flush_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kFullBatch)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kTimeout)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kPreferredSize)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kShutdown)], 0u);
}

TEST(BatcherFlushReason, FullBeatsPreferredInTag) {
  DynamicBatcher batcher({4, 10.0, 64, {2}});
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher.submit(make_request(i)).is_ok());
  }
  const BatchedRequests batch = batcher.wait_batch_tagged();
  EXPECT_EQ(batch.requests.size(), 4u);
  EXPECT_EQ(batch.reason, FlushReason::kFullBatch);
}

// Regression: the reason ternary used to test `aged` before
// `shutdown_`, so a drain flush whose head request had also exceeded
// the queue delay was mislabelled kTimeout, skewing the drain
// accounting every clean shutdown with slightly-stale requests.
TEST(BatcherFlushReason, ShutdownOutranksTimeoutOnDrain) {
  DynamicBatcher batcher({4, /*max_queue_delay_s=*/1e-3, 64, {}});
  ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
  // Let the request age past its deadline *before* shutting down, so
  // both `aged` and `shutdown_` hold at flush time.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  batcher.shutdown();
  const BatchedRequests drain = batcher.wait_batch_tagged();
  ASSERT_EQ(drain.requests.size(), 1u);
  EXPECT_EQ(drain.reason, FlushReason::kShutdown);
  const FlushCounts counts = batcher.flush_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kShutdown)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(FlushReason::kTimeout)], 0u);
}

// A full batch is still a full batch during shutdown: the work was
// ready regardless of the drain.
TEST(BatcherFlushReason, FullBeatsShutdownInTag) {
  DynamicBatcher batcher({2, 10.0, 64, {}});
  ASSERT_TRUE(batcher.submit(make_request(1)).is_ok());
  ASSERT_TRUE(batcher.submit(make_request(2)).is_ok());
  batcher.shutdown();
  const BatchedRequests batch = batcher.wait_batch_tagged();
  EXPECT_EQ(batch.requests.size(), 2u);
  EXPECT_EQ(batch.reason, FlushReason::kFullBatch);
}

TEST(BatcherFlushReason, ReasonNames) {
  EXPECT_STREQ(flush_reason_name(FlushReason::kFullBatch), "full_batch");
  EXPECT_STREQ(flush_reason_name(FlushReason::kPreferredSize),
               "preferred_size");
  EXPECT_STREQ(flush_reason_name(FlushReason::kTimeout), "timeout");
  EXPECT_STREQ(flush_reason_name(FlushReason::kShutdown), "shutdown");
}

TEST(Batcher, PromiseFulfillmentReachesSubmitter) {
  DynamicBatcher batcher({1, 10.0, 64, {}});
  auto future = batcher.submit(make_request(42));
  ASSERT_TRUE(future.is_ok());
  auto batch = batcher.wait_batch();
  ASSERT_EQ(batch.size(), 1u);
  InferenceResponse response;
  response.id = batch[0].request.id;
  batch[0].promise.set_value(std::move(response));
  EXPECT_EQ(future.value().get().id, 42u);
}

}  // namespace
}  // namespace harvest::serving
