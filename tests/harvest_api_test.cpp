#include <gtest/gtest.h>

#include "harvest/advisor.hpp"
#include "harvest/e2e.hpp"
#include "harvest/report.hpp"
#include "platform/device.hpp"

namespace harvest::api {
namespace {

const data::DatasetSpec& plant_village() {
  static const data::DatasetSpec spec = *data::find_dataset("Plant Village");
  return spec;
}

// -------------------------------------------------------------------- e2e

TEST(E2E, OverlapNeverHurtsThroughput) {
  for (const platform::DeviceSpec* device : platform::evaluated_platforms()) {
    E2EConfig overlapped{32, preproc::PreprocMethod::kDali224, true};
    E2EConfig serial{32, preproc::PreprocMethod::kDali224, false};
    const E2EEstimate a =
        estimate_end_to_end(*device, "ViT_Small", plant_village(), overlapped);
    const E2EEstimate b =
        estimate_end_to_end(*device, "ViT_Small", plant_village(), serial);
    if (a.oom || b.oom) continue;
    EXPECT_GE(a.throughput_img_per_s, b.throughput_img_per_s) << device->name;
    // A single request's latency is the same either way.
    EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  }
}

TEST(E2E, LatencyIsSumOfStages) {
  const E2EConfig config{16, preproc::PreprocMethod::kDali224, true};
  const E2EEstimate est =
      estimate_end_to_end(platform::a100(), "ResNet50", plant_village(), config);
  ASSERT_FALSE(est.oom);
  EXPECT_NEAR(est.latency_s, est.preproc_s + est.inference_s, 1e-12);
  EXPECT_GT(est.preproc_pool_bytes, 0.0);
}

TEST(E2E, JetsonUnifiedMemoryShrinksEngineBatch) {
  // §4.3: preprocessing pool and engine compete on the Jetson's 8 GB.
  const E2EConfig config{0, preproc::PreprocMethod::kDali224, true};
  const E2EEstimate jetson = estimate_end_to_end(
      platform::jetson_orin_nano(), "ViT_Base", plant_village(), config);
  ASSERT_FALSE(jetson.oom);
  // The engine-only wall is 8 (Fig. 5c); contention must cut below it.
  EXPECT_LT(jetson.engine_max_batch, 8);
  EXPECT_LE(jetson.batch, jetson.engine_max_batch);
}

TEST(E2E, CloudPlatformUnaffectedByPreprocPool) {
  const E2EConfig config{64, preproc::PreprocMethod::kDali224, true};
  const E2EEstimate est =
      estimate_end_to_end(platform::a100(), "ViT_Base", plant_village(), config);
  ASSERT_FALSE(est.oom);
  EXPECT_GE(est.engine_max_batch, 1024);
}

TEST(E2E, RequestedBatchBeyondWallIsOom) {
  const E2EConfig config{64, preproc::PreprocMethod::kDali224, true};
  const E2EEstimate est = estimate_end_to_end(platform::jetson_orin_nano(),
                                              "ViT_Base", plant_village(),
                                              config);
  EXPECT_TRUE(est.oom);
  EXPECT_EQ(est.bottleneck, Bottleneck::kMemory);
}

TEST(E2E, SmallModelOnWeakPreprocIsPreprocBound) {
  // §4.3: "smaller models remain preprocessing-bottlenecked, particularly
  // on platforms with limited preprocessing capabilities like the V100".
  const E2EConfig config{64, preproc::PreprocMethod::kDali224, true};
  const E2EEstimate est =
      estimate_end_to_end(platform::v100(), "ViT_Tiny", plant_village(), config);
  ASSERT_FALSE(est.oom);
  EXPECT_EQ(est.bottleneck, Bottleneck::kPreprocessing);
}

TEST(E2E, LargeModelOnA100ApproachesEngineBound) {
  // §4.3: "larger models such as ViT-Base benefit from effective
  // preprocessing-inference latency overlap" on the A100.
  const E2EConfig config{64, preproc::PreprocMethod::kDali224, true};
  const E2EEstimate est =
      estimate_end_to_end(platform::a100(), "ViT_Base", plant_village(), config);
  ASSERT_FALSE(est.oom);
  EXPECT_EQ(est.bottleneck, Bottleneck::kInference);
}

TEST(E2E, BottleneckNames) {
  EXPECT_STREQ(bottleneck_name(Bottleneck::kPreprocessing), "preprocessing");
  EXPECT_STREQ(bottleneck_name(Bottleneck::kInference), "inference");
  EXPECT_STREQ(bottleneck_name(Bottleneck::kMemory), "memory");
}

// ---------------------------------------------------------------- advisor

TEST(Advisor, FindsOperatingPointUnder60Qps) {
  AdvisorConfig config;  // 16.7 ms budget
  const OperatingPoint point =
      find_operating_point(platform::a100(), "ViT_Base", config);
  ASSERT_TRUE(point.feasible);
  EXPECT_GE(point.batch, 1);
  EXPECT_LE(point.latency_s, config.latency_budget_s);
  // The next sweep batch must violate the budget (point is maximal) —
  // guaranteed by construction, spot-check throughput is positive.
  EXPECT_GT(point.throughput_img_per_s, 0.0);
}

TEST(Advisor, A100NeedsLargerBatchesThanItsSmallModelsCanFill) {
  // Fig. 6a: on A100 the optimal region needs batches beyond 16.
  AdvisorConfig config;
  const OperatingPoint point =
      find_operating_point(platform::a100(), "ViT_Tiny", config);
  ASSERT_TRUE(point.feasible);
  EXPECT_GT(point.batch, 16);
}

TEST(Advisor, RankingPrefersFeasibleAndFast) {
  AdvisorConfig config;
  const auto ranked = rank_models(platform::a100(), config);
  ASSERT_EQ(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    if (ranked[i].feasible == ranked[i - 1].feasible) {
      EXPECT_GE(ranked[i - 1].throughput_img_per_s,
                ranked[i].throughput_img_per_s);
    }
  }
  // ViT_Tiny has the highest ceiling on A100.
  EXPECT_EQ(ranked.front().model, "ViT_Tiny");
}

TEST(Advisor, TightBudgetShrinksBatch) {
  AdvisorConfig loose;
  loose.latency_budget_s = 0.1;
  AdvisorConfig tight;
  tight.latency_budget_s = 3e-3;
  const OperatingPoint pl =
      find_operating_point(platform::v100(), "ResNet50", loose);
  const OperatingPoint pt =
      find_operating_point(platform::v100(), "ResNet50", tight);
  ASSERT_TRUE(pl.feasible);
  ASSERT_TRUE(pt.feasible);
  EXPECT_LT(pt.batch, pl.batch);
}

TEST(Advisor, InfeasibleBudgetReported) {
  AdvisorConfig config;
  config.latency_budget_s = 1e-6;  // nothing fits a microsecond
  const OperatingPoint point =
      find_operating_point(platform::jetson_orin_nano(), "ViT_Base", config);
  EXPECT_FALSE(point.feasible);
  const DeploymentAdvice advice =
      advise(platform::jetson_orin_nano(), plant_village(), config);
  EXPECT_NE(advice.summary.find("No evaluated model"), std::string::npos);
}

TEST(Advisor, AdviceMentionsModelAndDevice) {
  AdvisorConfig config;
  const DeploymentAdvice advice =
      advise(platform::a100(), plant_village(), config);
  ASSERT_TRUE(advice.best.feasible);
  EXPECT_NE(advice.summary.find(advice.best.model), std::string::npos);
  EXPECT_NE(advice.summary.find("A100"), std::string::npos);
  EXPECT_EQ(advice.preproc_method, preproc::PreprocMethod::kDali224);
}

TEST(Advisor, CrsaGetsCv2Preprocessing) {
  AdvisorConfig config;
  const DeploymentAdvice advice =
      advise(platform::jetson_orin_nano(), *data::find_dataset("CRSA"), config);
  EXPECT_EQ(advice.preproc_method, preproc::PreprocMethod::kCv2);
}

// ----------------------------------------------------------------- report

TEST(Report, JsonShapeAndWrite) {
  Report report("test_experiment");
  core::Json row = core::Json::object();
  row["model"] = core::Json("ViT_Tiny");
  row["img_s"] = core::Json(22879.3);
  report.add_row(std::move(row));
  report.set_meta("note", core::Json("calibrated"));

  auto parsed = core::Json::parse(report.dump());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().get_string("experiment", ""), "test_experiment");
  EXPECT_EQ(parsed.value().find("rows")->as_array().size(), 1u);
  EXPECT_EQ(parsed.value().get_string("note", ""), "calibrated");

  ASSERT_TRUE(report.write(::testing::TempDir()));
  std::remove((::testing::TempDir() + "/test_experiment.json").c_str());
}

}  // namespace
}  // namespace harvest::api
