#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/arena.hpp"
#include "nn/graph.hpp"
#include "nn/init.hpp"
#include "nn/models.hpp"
#include "tensor/buffer.hpp"
#include "tensor/tensor.hpp"

// ------------------------------------------------------------------
// Global operator new counting hook: the zero-malloc gate below counts
// EVERY heap allocation in the process, not just tensor buffers, so a
// stray std::vector in a kernel can't hide behind the arena.

namespace {
std::uint64_t g_new_calls = 0;
}

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace harvest {
namespace {

using core::ArenaScope;
using core::BumpArena;

// ------------------------------------------------------------------ arena

TEST(BumpArena, AllocationsAreAlignedAndCounted) {
  BumpArena arena(1 << 16);
  void* a = arena.allocate(100);
  void* b = arena.allocate(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % BumpArena::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % BumpArena::kAlignment, 0u);
  // 100 pads to 128, plus 64 for the second allocation.
  EXPECT_EQ(arena.used_bytes(), 192u);
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
}

TEST(BumpArena, ResetRecyclesBlocksAndMemory) {
  BumpArena arena(1 << 16);
  void* first = arena.allocate(1000);
  arena.allocate(3000);
  const std::size_t reserved = arena.reserved_bytes();
  const std::size_t blocks = arena.block_count();

  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);  // blocks kept, not freed
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.reset_count(), 1u);

  // Steady state: the same request replayed gets the same memory back.
  void* again = arena.allocate(1000);
  EXPECT_EQ(again, first);
}

TEST(BumpArena, GrowsBeyondOneBlockAndTracksPeak) {
  BumpArena arena(1 << 12);  // 4 KiB blocks force chain growth
  for (int i = 0; i < 8; ++i) arena.allocate(3000);
  EXPECT_GT(arena.block_count(), 1u);
  const std::size_t peak = arena.peak_bytes();
  EXPECT_GE(peak, 8u * 3000u);
  arena.reset();
  arena.allocate(64);
  EXPECT_EQ(arena.peak_bytes(), peak);  // high-water survives reset
}

TEST(BumpArena, ReserveMakesFollowingAllocationsHeapFree) {
  BumpArena arena(1 << 12);
  arena.reserve(1 << 16);
  const std::size_t blocks = arena.block_count();
  const std::uint64_t before = g_new_calls;
  for (int i = 0; i < 16; ++i) arena.allocate(4000);
  EXPECT_EQ(g_new_calls, before);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(ArenaScope, BindsPerThreadAndNests) {
  EXPECT_EQ(ArenaScope::current(), nullptr);
  BumpArena outer_arena, inner_arena;
  {
    ArenaScope outer(outer_arena);
    EXPECT_EQ(ArenaScope::current(), &outer_arena);
    {
      ArenaScope inner(inner_arena);
      EXPECT_EQ(ArenaScope::current(), &inner_arena);
    }
    EXPECT_EQ(ArenaScope::current(), &outer_arena);
  }
  EXPECT_EQ(ArenaScope::current(), nullptr);
}

TEST(ArenaScope, ScratchTensorsLandInTheBoundArena) {
  BumpArena arena;
  {
    ArenaScope scope(arena);
    tensor::Tensor t = tensor::Tensor::scratch({64, 64});
    EXPECT_GE(arena.used_bytes(), 64u * 64u * sizeof(float));
    t.f32()[0] = 1.0f;  // writable
  }
  arena.reset();
  // Without a scope, scratch falls back to an owning heap buffer.
  const std::uint64_t before = tensor::AlignedBuffer::heap_allocation_count();
  tensor::Tensor heap = tensor::Tensor::scratch({8, 8});
  EXPECT_EQ(tensor::AlignedBuffer::heap_allocation_count(), before + 1);
}

// ------------------------------------------------------- zero-malloc gate

/// The tentpole acceptance gate: after warm-up, a ViT forward under a
/// request ArenaScope performs ZERO heap allocations — not just zero
/// tensor-buffer allocations (AlignedBuffer's counter) but zero calls
/// to global operator new anywhere in the layer stack.
TEST(ZeroMallocGate, SteadyStateVitForwardAllocatesNothing) {
  nn::ModelPtr model = nn::build_vit(nn::vit_tiny_config());
  nn::init_weights(*model, 42);
  model->prepare();  // AOT weight packing, as the serving load path does

  const tensor::Shape& per_image = model->input_shape();
  const tensor::Tensor input = tensor::Tensor::full(
      {2, per_image.dim(0), per_image.dim(1), per_image.dim(2)}, 0.1f);

  BumpArena arena;
  // Two warm-up requests: the first grows the arena chain and any
  // grow-only thread-local kernel scratch; the second proves a fresh
  // request replays into the recycled blocks.
  for (int warm = 0; warm < 2; ++warm) {
    ArenaScope scope(arena);
    (void)model->forward(input);
    arena.reset();
  }

  const std::uint64_t news_before = g_new_calls;
  const std::uint64_t buffers_before =
      tensor::AlignedBuffer::heap_allocation_count();
  {
    ArenaScope scope(arena);
    (void)model->forward(input);
  }
  arena.reset();
  EXPECT_EQ(tensor::AlignedBuffer::heap_allocation_count(), buffers_before)
      << "a tensor buffer bypassed the request arena";
  EXPECT_EQ(g_new_calls, news_before)
      << "steady-state Model::forward hit operator new";
}

}  // namespace
}  // namespace harvest
