/// Quickstart: the smallest end-to-end use of the HARVEST inference
/// library. Builds a real ViT classifier with deterministic weights,
/// deploys it behind the serving runtime (dynamic batching + batched
/// preprocessing), sends a handful of encoded field images, and prints
/// the predictions with their stage-by-stage latency breakdown.
///
///   ./examples/quickstart [--requests N] [--depth D]

#include <cstdio>
#include <vector>

#include "harvest/harvest.hpp"
#include "serving/native_backend.hpp"

using namespace harvest;

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  const std::int64_t requests = args.get_int("requests", 8);
  const std::int64_t depth = args.get_int("depth", 2);

  core::set_log_level(core::LogLevel::kWarn);
  std::printf("HARVEST quickstart — serving a ViT classifier on this CPU\n\n");

  // 1. Build a (small) real model. In production you would load trained
  //    weights via nn::load_weights; here deterministic init suffices.
  nn::ViTConfig config;
  config.name = "quickstart-vit";
  config.image = 32;
  config.patch = 4;
  config.dim = 64;
  config.depth = depth;
  config.heads = 4;
  config.num_classes = 4;  // e.g. weed-detection classes

  // 2. Deploy it behind the serving runtime.
  serving::Server server(/*preproc_threads=*/2);
  serving::ModelDeploymentConfig deployment;
  deployment.name = "weeds";
  deployment.max_batch = 4;
  deployment.instances = 1;
  deployment.max_queue_delay_s = 2e-3;
  deployment.preproc.output_size = config.image;
  core::Status status = server.register_model(deployment, [&config] {
    nn::ModelPtr model = nn::build_vit(config);
    nn::init_weights(*model, /*seed=*/2026);
    return std::make_unique<serving::NativeBackend>(std::move(model), 4);
  });
  if (!status.is_ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.to_string().c_str());
    return 1;
  }

  // 3. Send encoded camera crops (synthetic, deterministic).
  std::vector<std::future<serving::InferenceResponse>> futures;
  for (std::int64_t i = 0; i < requests; ++i) {
    const preproc::Image crop =
        preproc::synthesize_field_image(48, 48, 1000 + i);
    serving::InferenceRequest request;
    request.model = "weeds";
    request.input = preproc::encode_image(crop, preproc::ImageFormat::kAgJpeg);
    auto submitted = server.submit(std::move(request));
    if (submitted.is_ok()) futures.push_back(std::move(submitted).value());
  }

  // 4. Collect predictions.
  std::printf("%-8s %-6s %-11s %-10s %-10s %-9s %s\n", "request", "class",
              "confidence", "queue", "preproc", "infer", "batch");
  for (auto& future : futures) {
    const serving::InferenceResponse r = future.get();
    if (!r.status.is_ok()) {
      std::printf("#%-7llu FAILED: %s\n",
                  static_cast<unsigned long long>(r.id),
                  r.status.to_string().c_str());
      continue;
    }
    std::printf("#%-7llu %-6lld %-11.3f %-10s %-10s %-9s %lld\n",
                static_cast<unsigned long long>(r.id),
                static_cast<long long>(r.predicted_class),
                static_cast<double>(r.confidence),
                core::format_seconds(r.timing.queue_s).c_str(),
                core::format_seconds(r.timing.preprocess_s).c_str(),
                core::format_seconds(r.timing.inference_s).c_str(),
                static_cast<long long>(r.timing.batch_size));
  }

  const serving::MetricsSnapshot snap = server.metrics("weeds")->snapshot(1.0);
  std::printf("\nDeployment metrics: %s\n", snap.to_string().c_str());
  return 0;
}
