/// Online inference scenario (paper §2.2.1): a streaming service where
/// farmers upload images and receive classifications on demand. Part 1
/// runs a real multi-instance deployment on this machine under a
/// Poisson client; part 2 uses the discrete-event simulator to project
/// the same service onto the A100 cloud platform at production rates.
///
///   ./examples/online_service [--qps 40] [--seconds 2]

#include <cstdio>
#include <thread>

#include "harvest/harvest.hpp"
#include "serving/native_backend.hpp"

using namespace harvest;

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  const double qps = args.get_double("qps", 40.0);
  const double seconds = args.get_double("seconds", 2.0);
  core::set_log_level(core::LogLevel::kWarn);

  std::printf("HARVEST online scenario — streaming inference service\n\n");

  // Part 1: a real local deployment, two instances, dynamic batching.
  serving::Server server(2);
  serving::ModelDeploymentConfig deployment;
  deployment.name = "plant-disease";
  deployment.max_batch = 8;
  deployment.instances = 2;
  deployment.max_queue_delay_s = 4e-3;
  deployment.preproc.output_size = 24;
  core::Status status = server.register_model(deployment, [] {
    nn::ViTConfig config;
    config.name = "clinic-vit";
    config.image = 24;
    config.patch = 4;
    config.dim = 48;
    config.depth = 2;
    config.heads = 4;
    config.num_classes = 39;  // Plant Village classes
    nn::ModelPtr model = nn::build_vit(config);
    nn::init_weights(*model, 5);
    return std::make_unique<serving::NativeBackend>(std::move(model), 8);
  });
  if (!status.is_ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.to_string().c_str());
    return 1;
  }

  core::Rng rng(17);
  core::WallTimer wall;
  std::vector<std::future<serving::InferenceResponse>> futures;
  std::uint64_t sent = 0;
  while (wall.elapsed_seconds() < seconds) {
    const preproc::Image upload =
        preproc::synthesize_field_image(40, 40, 500 + sent);
    serving::InferenceRequest request;
    request.model = "plant-disease";
    request.input = preproc::encode_image(upload, preproc::ImageFormat::kAgJpeg);
    auto submitted = server.submit(std::move(request));
    if (submitted.is_ok()) futures.push_back(std::move(submitted).value());
    ++sent;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        rng.exponential(qps)));
  }
  std::uint64_t ok = 0;
  for (auto& future : futures) {
    if (future.get().status.is_ok()) ++ok;
  }
  const serving::MetricsSnapshot snap =
      server.metrics("plant-disease")->snapshot(wall.elapsed_seconds());
  std::printf("local deployment: sent %llu, completed %llu\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(ok));
  std::printf("  %s\n\n", snap.to_string().c_str());

  // Part 2: project the production service onto the A100 cluster.
  std::printf("Projected production service (DES on the calibrated A100 "
              "model, ViT_Small on Plant Village):\n");
  std::printf("%-10s %-12s %-10s %-10s %-12s\n", "load", "mean batch", "p95",
              "p99", "throughput");
  const data::DatasetSpec dataset = *data::find_dataset("Plant Village");
  for (double load : {500.0, 2000.0, 8000.0}) {
    serving::OnlineSimConfig config;
    config.arrival_rate_qps = load;
    config.duration_s = 10.0;
    config.max_batch = 64;
    config.max_queue_delay_s = 4e-3;
    config.instances = 2;
    const serving::OnlineSimReport report = serving::simulate_online(
        platform::a100(), "ViT_Small", dataset, config);
    std::printf("%6.0f qps %-12.1f %-10s %-10s %-12s\n", load,
                report.mean_batch_size,
                core::format_seconds(report.p95_latency_s).c_str(),
                core::format_seconds(report.p99_latency_s).c_str(),
                core::format_rate(report.throughput_img_per_s).c_str());
  }

  // Part 3: the same cluster in a bad week — 5% transient backend
  // errors and a monsoon-season uplink — with and without the
  // resilience layer (3-try retry + estimated-delay shedding at the
  // 100 ms deadline). See docs/RESILIENCE.md.
  std::printf("\nSame service under faults (5%% transient errors, 2%% stalls "
              "of 100 ms, 100 ms deadline) at 8000 qps:\n");
  std::printf("%-22s %-11s %-9s %-9s %-12s %-10s\n", "policy", "completed",
              "failed", "shed", "goodput", "p99");
  for (const bool resilient : {false, true}) {
    serving::OnlineSimConfig config;
    config.arrival_rate_qps = 8000.0;
    config.duration_s = 10.0;
    config.max_batch = 64;
    config.max_queue_delay_s = 4e-3;
    config.instances = 2;
    config.deadline_s = 0.1;
    config.faults.transient_error_rate = 0.05;
    config.faults.stall_rate = 0.02;
    config.faults.stall_s = 0.1;
    if (resilient) {
      config.retry.max_attempts = 3;
      config.retry.initial_backoff_s = 1e-3;
      config.admission.max_estimated_delay_s = 0.08;
    }
    const serving::OnlineSimReport report = serving::simulate_online(
        platform::a100(), "ViT_Small", dataset, config);
    std::printf("%-22s %-11lld %-9lld %-9lld %-12s %-10s\n",
                resilient ? "retry + shedding" : "none",
                static_cast<long long>(report.completed),
                static_cast<long long>(report.failed),
                static_cast<long long>(report.shed),
                core::format_rate(report.goodput_img_per_s).c_str(),
                core::format_seconds(report.p99_latency_s).c_str());
  }
  return 0;
}
