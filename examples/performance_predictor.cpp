/// The deployment performance predictor CLI — the paper's future-work
/// deliverable (§5): establish performance expectations *before*
/// deploying. Describe a plan on the command line; get a verdict, the
/// engine curve, queueing expectations and an optional JSON dump.
///
///   ./examples/performance_predictor --platform A100 --model ViT_Small \
///       --dataset "Plant Village" --scenario online --qps 2000 \
///       --instances 2 [--batch 0] [--budget-ms 16.7] [--json out.json]

#include <cstdio>

#include "harvest/harvest.hpp"

using namespace harvest;

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  core::set_log_level(core::LogLevel::kWarn);

  api::DeploymentPlan plan;
  plan.device = args.get("platform", "A100");
  plan.model = args.get("model", "ViT_Small");
  plan.dataset = args.get("dataset", "Plant Village");
  plan.arrival_qps = args.get_double("qps", 1000.0);
  plan.instances = static_cast<int>(args.get_int("instances", 1));
  plan.batch = args.get_int("batch", 0);
  plan.latency_budget_s = args.get_double("budget-ms", 1000.0 / 60.0) * 1e-3;
  const std::string scenario = args.get("scenario", "online");
  if (scenario == "online") {
    plan.scenario = platform::Scenario::kOnline;
  } else if (scenario == "offline") {
    plan.scenario = platform::Scenario::kOffline;
  } else if (scenario == "realtime") {
    plan.scenario = platform::Scenario::kRealTime;
    plan.preproc = preproc::PreprocMethod::kCv2;
  } else {
    std::fprintf(stderr, "unknown scenario %s (online|offline|realtime)\n",
                 scenario.c_str());
    return 1;
  }

  auto result = api::predict(plan);
  if (!result.is_ok()) {
    std::fprintf(stderr, "invalid plan: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const api::PerformanceExpectation& out = result.value();

  std::printf("HARVEST performance predictor\n");
  std::printf("plan: %s on %s, %s, %s scenario, %.0f req/s, %d instance(s), "
              "budget %s\n\n",
              plan.model.c_str(), plan.device.c_str(), plan.dataset.c_str(),
              scenario.c_str(), plan.arrival_qps, plan.instances,
              core::format_seconds(plan.latency_budget_s).c_str());

  std::printf("verdict: %s\n", out.verdict.c_str());
  for (const std::string& warning : out.warnings) {
    std::printf("warning: %s\n", warning.c_str());
  }
  if (out.chosen_batch == 0) return out.feasible ? 0 : 2;

  std::printf("\nexpectations at batch %lld:\n",
              static_cast<long long>(out.chosen_batch));
  std::printf("  engine:    %s latency, %s\n",
              core::format_seconds(out.engine_latency_s).c_str(),
              core::format_rate(out.engine_throughput_img_per_s).c_str());
  std::printf("  preproc:   %s per batch\n",
              core::format_seconds(out.preproc_latency_s).c_str());
  std::printf("  e2e:       %s latency, %s\n",
              core::format_seconds(out.e2e_latency_s).c_str(),
              core::format_rate(out.e2e_throughput_img_per_s).c_str());
  std::printf("  memory:    %s engine footprint\n",
              core::format_bytes(out.memory_bytes).c_str());
  std::printf("  energy:    %.1f mJ/img\n", out.energy_per_image_j * 1e3);
  if (out.expected_p95_latency_s > 0.0) {
    std::printf("  queueing:  p95 %s, p99 %s, utilization %.0f%%\n",
                core::format_seconds(out.expected_p95_latency_s).c_str(),
                core::format_seconds(out.expected_p99_latency_s).c_str(),
                out.expected_utilization * 100.0);
  }

  std::printf("\nengine curve (batch → latency, throughput, mJ/img):\n");
  for (const api::CurvePoint& point : out.engine_curve) {
    std::printf("  %5lld  %-10s %12.1f img/s %8.1f mJ\n",
                static_cast<long long>(point.batch),
                core::format_seconds(point.latency_s).c_str(),
                point.throughput_img_per_s, point.energy_per_image_j * 1e3);
  }

  const std::string json_path = args.get("json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "wb");
    if (f != nullptr) {
      const std::string doc = out.to_json().dump(2);
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::printf("\n[expectation written to %s]\n", json_path.c_str());
    }
  }
  return out.feasible ? 0 : 2;
}
