/// The tuning advisor CLI — the paper's deliverable in tool form:
/// "providing end users with guidance for application-specific tuning"
/// (§1). Given a platform, a dataset and a latency budget it prints
/// each model's optimal operating region and a deployment
/// recommendation.
///
///   ./examples/tuning_advisor [--platform A100|V100|JetsonOrinNano]
///                             [--dataset "Plant Village"] [--budget-ms 16.7]

#include <cstdio>

#include "harvest/harvest.hpp"

using namespace harvest;

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  core::set_log_level(core::LogLevel::kWarn);

  const std::string platform_name = args.get("platform", "A100");
  const std::string dataset_name = args.get("dataset", "Plant Village");
  const double budget_ms = args.get_double("budget-ms", 1000.0 / 60.0);

  const platform::DeviceSpec* device = platform::find_device(platform_name);
  if (device == nullptr) {
    std::fprintf(stderr, "unknown platform %s (try A100, V100, "
                 "JetsonOrinNano)\n", platform_name.c_str());
    return 1;
  }
  const auto dataset = data::find_dataset(dataset_name);
  if (!dataset.has_value()) {
    std::fprintf(stderr, "unknown dataset \"%s\"; available:\n",
                 dataset_name.c_str());
    for (const data::DatasetSpec& spec : data::evaluated_datasets()) {
      std::fprintf(stderr, "  %s\n", spec.name.c_str());
    }
    return 1;
  }

  api::AdvisorConfig config;
  config.latency_budget_s = budget_ms * 1e-3;

  std::printf("HARVEST tuning advisor\n");
  std::printf("platform: %s — %s\n", device->name.c_str(),
              device->description.c_str());
  std::printf("dataset:  %s (%s)\n", dataset->name.c_str(),
              dataset->use_case.c_str());
  std::printf("budget:   %s per request\n\n",
              core::format_seconds(config.latency_budget_s).c_str());

  std::printf("%-10s %-6s %-10s %-14s %-12s %s\n", "model", "batch", "latency",
              "throughput", "saturation", "status");
  for (const api::OperatingPoint& point : api::rank_models(*device, config)) {
    if (!point.feasible) {
      std::printf("%-10s %-6s %-10s %-14s %-12s infeasible\n",
                  point.model.c_str(), "-", "-", "-", "-");
      continue;
    }
    std::printf("%-10s %-6lld %-10s %-14s %-12s %s\n", point.model.c_str(),
                static_cast<long long>(point.batch),
                core::format_seconds(point.latency_s).c_str(),
                core::format_rate(point.throughput_img_per_s).c_str(),
                (core::format_fixed(point.saturation * 100.0, 1) + "%").c_str(),
                point.near_saturated ? "near-saturated" : "under-saturated");
  }

  const api::DeploymentAdvice advice = api::advise(*device, *dataset, config);
  std::printf("\nRecommendation:\n  %s\n", advice.summary.c_str());
  return 0;
}
