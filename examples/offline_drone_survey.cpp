/// Offline inference scenario (paper Fig. 3a): a drone surveys a field,
/// the overlapping captures are stitched into an orthomosaic
/// (OpenDroneMap's role), the mosaic is tiled, every tile runs through
/// the HARVEST pipeline on a ResNet-style classifier, and the per-tile
/// scores are rendered as a residue-cover heatmap — written as PPM
/// images next to the binary.
///
///   ./examples/offline_drone_survey [--field 512] [--tile 64]

#include <cstdio>

#include "harvest/harvest.hpp"
#include "nn/activations.hpp"

using namespace harvest;

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  const std::int64_t field = args.get_int("field", 384);
  const std::int64_t tile_size = args.get_int("tile", 64);
  core::set_log_level(core::LogLevel::kWarn);

  std::printf("HARVEST offline scenario — drone survey → stitch → tile → "
              "infer → heatmap\n\n");

  // 1. Fly the survey (simulated drone with positional jitter and
  //    illumination drift).
  stitch::SurveyConfig survey;
  survey.field_width = field;
  survey.field_height = field * 3 / 4;
  survey.capture_size = 128;
  survey.overlap = 0.35;
  survey.seed = 42;
  const std::vector<stitch::Capture> captures = stitch::simulate_survey(survey);
  std::printf("survey: %zu captures of %lldx%lld px (%.0f%% overlap)\n",
              captures.size(), static_cast<long long>(survey.capture_size),
              static_cast<long long>(survey.capture_size),
              survey.overlap * 100.0);

  // 2. Stitch the orthomosaic.
  core::WallTimer stitch_timer;
  const preproc::Image mosaic = stitch::composite_mosaic(
      captures, survey.field_width, survey.field_height);
  std::printf("stitched %lldx%lld mosaic in %s\n",
              static_cast<long long>(mosaic.width()),
              static_cast<long long>(mosaic.height()),
              core::format_seconds(stitch_timer.elapsed_seconds()).c_str());

  // 3. Tile it for the model.
  const std::vector<stitch::Tile> tiles =
      stitch::tile_mosaic(mosaic, tile_size, tile_size);
  std::printf("tiled into %zu tiles of %lld px\n", tiles.size(),
              static_cast<long long>(tile_size));

  // 4. Classify every tile with a real CNN (residue-cover estimation:
  //    class 1 = high residue).
  nn::ResNetConfig config;
  config.name = "residue-net";
  config.image = 32;
  config.stage_blocks = {1, 1};
  config.num_classes = 2;
  nn::ModelPtr model = nn::build_resnet(config);
  nn::init_weights(*model, 7);

  preproc::CpuPipeline pipeline;
  preproc::PreprocSpec spec;
  spec.output_size = config.image;

  core::WallTimer infer_timer;
  std::vector<double> scores;
  scores.reserve(tiles.size());
  for (const stitch::Tile& tile : tiles) {
    const preproc::EncodedImage encoded =
        preproc::encode_image(tile.image, preproc::ImageFormat::kRaw);
    auto batch = pipeline.run(std::span(&encoded, 1), spec);
    if (!batch.is_ok()) {
      std::fprintf(stderr, "preprocess failed: %s\n",
                   batch.status().to_string().c_str());
      return 1;
    }
    tensor::Tensor logits = model->forward(batch.value());
    // Softmax probability of "high residue".
    float row[2] = {logits.f32()[0], logits.f32()[1]};
    nn::softmax_rows(row, 1, 2);
    scores.push_back(static_cast<double>(row[1]));
  }
  const double elapsed = infer_timer.elapsed_seconds();
  std::printf("classified %zu tiles in %s (%.1f tiles/s, real CPU "
              "inference)\n", tiles.size(),
              core::format_seconds(elapsed).c_str(),
              static_cast<double>(tiles.size()) / elapsed);

  // 5. Render outputs.
  const preproc::Image heat = stitch::render_heatmap(
      tiles, scores, mosaic.width(), mosaic.height(), tile_size);
  core::Status s1 = stitch::write_ppm(mosaic, "survey_mosaic.ppm");
  core::Status s2 = stitch::write_ppm(heat, "survey_heatmap.ppm");
  if (!s1.is_ok() || !s2.is_ok()) {
    std::fprintf(stderr, "could not write outputs\n");
    return 1;
  }
  double mean_score = 0.0;
  for (double s : scores) mean_score += s;
  mean_score /= static_cast<double>(scores.size());
  std::printf("\nmean residue score %.3f — wrote survey_mosaic.ppm and "
              "survey_heatmap.ppm\n", mean_score);
  return 0;
}
