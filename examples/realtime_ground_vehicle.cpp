/// Real-time inference scenario (paper Fig. 3b): a ground vehicle's
/// camera produces frames that must be rectified (perspective
/// transform), resized and classified within a per-frame deadline so
/// the vehicle can act on the result. This example runs the loop for
/// real on the host CPU against a scaled-down CRSA-style feed and then
/// asks the calibrated device model what the same pipeline would do on
/// the Jetson Orin Nano against the true 4K feed.
///
///   ./examples/realtime_ground_vehicle [--frames 30] [--fps 15]

#include <cstdio>

#include "harvest/harvest.hpp"
#include "serving/multitask.hpp"
#include "serving/native_backend.hpp"

using namespace harvest;

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  const std::int64_t frames = args.get_int("frames", 20);
  const double fps = args.get_double("fps", 15.0);
  core::set_log_level(core::LogLevel::kWarn);

  std::printf("HARVEST real-time scenario — ground vehicle camera loop\n\n");

  // Scaled-down CRSA feed (same 16:9 geometry, fewer pixels) so the real
  // CPU loop runs at interactive speed.
  data::DatasetSpec feed = *data::find_dataset("CRSA");
  feed.sizes.mode_w = 320;
  feed.sizes.mode_h = 180;
  const data::SyntheticDataset camera(feed, 99);

  // Real-time deployments disable batching (a batch of one frame) —
  // latency beats throughput here (§2.2.3).
  serving::Server server(2);
  serving::ModelDeploymentConfig deployment;
  deployment.name = "crsa";
  deployment.max_batch = 1;
  deployment.max_queue_delay_s = 0.0;
  deployment.preproc.output_size = 32;
  deployment.preproc.perspective = true;  // dataset-specific stage
  core::Status status = server.register_model(deployment, [] {
    nn::ViTConfig config;
    config.name = "crsa-vit";
    config.image = 32;
    config.patch = 4;
    config.dim = 64;
    config.depth = 2;
    config.heads = 4;
    config.num_classes = 3;  // residue / soil / aggregate
    nn::ModelPtr model = nn::build_vit(config);
    nn::init_weights(*model, 11);
    return std::make_unique<serving::NativeBackend>(std::move(model), 1);
  });
  if (!status.is_ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", status.to_string().c_str());
    return 1;
  }

  serving::RealTimeConfig rt;
  rt.frames = frames;
  rt.frame_interval_s = 1.0 / fps;
  rt.deadline_s = rt.frame_interval_s;  // finish before the next frame
  const serving::RealTimeReport report =
      serving::run_realtime(server, "crsa", camera, rt);

  std::printf("processed %lld frames at %.0f fps target\n",
              static_cast<long long>(report.frames_processed), fps);
  std::printf("  mean latency %s, p95 %s\n",
              core::format_seconds(report.mean_latency_s).c_str(),
              core::format_seconds(report.p95_latency_s).c_str());
  std::printf("  deadline misses %lld, dropped frames %lld\n",
              static_cast<long long>(report.deadline_misses),
              static_cast<long long>(report.frames_dropped));

  // Multi-task fan-out: the same rectified frame feeds several
  // downstream tasks with the preprocessing paid once (§3).
  {
    preproc::PreprocSpec shared;
    shared.output_size = 32;
    shared.perspective = true;
    serving::MultiTaskPipeline tasks(shared);
    auto make_task = [](std::uint64_t seed, std::int64_t classes) {
      nn::ViTConfig config{"task-vit", 32, 4, 64, 2, 4, 4, classes};
      nn::ModelPtr model = nn::build_vit(config);
      nn::init_weights(*model, seed);
      return std::make_unique<serving::NativeBackend>(std::move(model), 1);
    };
    (void)tasks.add_task("residue-cover", make_task(21, 3));
    (void)tasks.add_task("pest-detect", make_task(22, 2));
    data::Sample sample = camera.make_sample(0);
    auto multi = tasks.infer(sample.image);
    if (multi.is_ok()) {
      std::printf("\nMulti-task fan-out on one frame (shared preprocessing "
                  "%s):\n",
                  core::format_seconds(multi.value().preprocess_s).c_str());
      for (const auto& task : multi.value().results) {
        std::printf("  %-14s → class %lld (infer %s)\n", task.task.c_str(),
                    static_cast<long long>(task.response.predicted_class),
                    core::format_seconds(task.response.timing.inference_s)
                        .c_str());
      }
    }
  }

  // What would the true 4K feed cost on the Jetson edge device?
  std::printf("\nProjected on Jetson Orin Nano with the real 3840x2160 feed "
              "(calibrated device model):\n");
  const data::DatasetSpec crsa = *data::find_dataset("CRSA");
  for (const char* model : {"ViT_Tiny", "ResNet50"}) {
    api::E2EConfig config;
    config.batch = 1;
    config.method = preproc::PreprocMethod::kCv2;  // CPU warp path
    config.overlap = false;                        // strict frame latency
    const api::E2EEstimate est = api::estimate_end_to_end(
        platform::jetson_orin_nano(), model, crsa, config);
    std::printf("  %-9s frame latency %-10s (preproc %s + infer %s) → max "
                "%.1f fps, bottleneck: %s\n",
                model, core::format_seconds(est.latency_s).c_str(),
                core::format_seconds(est.preproc_s).c_str(),
                core::format_seconds(est.inference_s).c_str(),
                1.0 / est.latency_s, api::bottleneck_name(est.bottleneck));
  }
  std::printf("\nThe 4K perspective transform dominates — the paper's case "
              "for GPU-accelerated preprocessing on the edge (§4.2).\n");
  return 0;
}
