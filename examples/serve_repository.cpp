/// Serving from a declarative model repository — the Triton-style
/// workflow: a JSON document describes the deployments (architectures,
/// batching policy, preprocessing), the server loads it, and a smoke
/// request exercises every model. Optionally classifies a directory of
/// real images (ImageFolder layout) through a chosen deployment.
///
///   ./examples/serve_repository [--config repo.json] [--data DIR]
///                               [--model NAME]
///
/// Without --config, a built-in demo repository (native ViT + RWKV and
/// a simulated A100 ViT_Tiny) is used.

#include <cstdio>

#include "data/directory.hpp"
#include "harvest/harvest.hpp"
#include "serving/repository.hpp"

using namespace harvest;

namespace {

constexpr const char* kDemoRepository = R"({
  "models": [
    {
      "name": "weeds-edge", "backend": "native", "architecture": "vit",
      "image": 24, "patch": 4, "dim": 48, "depth": 2, "heads": 4,
      "classes": 4, "seed": 11, "max_batch": 8, "instances": 1,
      "preferred_batch_sizes": [4],
      "preproc": {"output_size": 24}
    },
    {
      "name": "scout-rwkv", "backend": "native", "architecture": "rwkv",
      "image": 24, "patch": 4, "dim": 48, "depth": 2,
      "classes": 4, "seed": 12, "max_batch": 8,
      "preproc": {"output_size": 24}
    },
    {
      "name": "cloud-tiny", "backend": "sim",
      "model": "ViT_Tiny", "device": "A100",
      "classes": 39, "max_batch": 64
    }
  ]
})";

}  // namespace

int main(int argc, char** argv) {
  core::CliArgs args(argc, argv);
  core::set_log_level(core::LogLevel::kWarn);

  serving::Server server(2);
  const std::string config_path = args.get("config", "");
  core::Status status;
  if (config_path.empty()) {
    auto parsed = core::Json::parse(kDemoRepository);
    HARVEST_CHECK(parsed.is_ok());
    status = serving::load_repository(server, parsed.value());
    std::printf("loaded built-in demo repository\n");
  } else {
    status = serving::load_repository_file(server, config_path);
    std::printf("loaded repository from %s\n", config_path.c_str());
  }
  if (!status.is_ok()) {
    std::fprintf(stderr, "repository load failed: %s\n",
                 status.to_string().c_str());
    return 1;
  }

  std::printf("deployments:");
  for (const std::string& name : server.model_names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Smoke request through every deployment.
  for (const std::string& name : server.model_names()) {
    const preproc::Image probe = preproc::synthesize_field_image(32, 32, 5);
    serving::InferenceRequest request;
    request.model = name;
    request.input = preproc::encode_image(probe, preproc::ImageFormat::kAgJpeg);
    const serving::InferenceResponse response =
        server.infer_sync(std::move(request));
    if (response.status.is_ok()) {
      std::printf("%-12s → class %lld (confidence %.3f, infer %s)\n",
                  name.c_str(),
                  static_cast<long long>(response.predicted_class),
                  static_cast<double>(response.confidence),
                  core::format_seconds(response.timing.inference_s).c_str());
    } else {
      std::printf("%-12s → FAILED: %s\n", name.c_str(),
                  response.status.to_string().c_str());
    }
  }

  // Optional: classify a directory of real images.
  const std::string data_dir = args.get("data", "");
  if (!data_dir.empty()) {
    const std::string model = args.get("model", server.model_names().front());
    auto dataset = data::DirectoryDataset::open(data_dir);
    if (!dataset.is_ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", data_dir.c_str(),
                   dataset.status().to_string().c_str());
      return 1;
    }
    std::printf("\nclassifying %lld image(s) from %s with %s:\n",
                static_cast<long long>(dataset.value().size()),
                data_dir.c_str(), model.c_str());
    for (std::int64_t i = 0; i < dataset.value().size(); ++i) {
      auto image = dataset.value().load(i);
      if (!image.is_ok()) continue;
      serving::InferenceRequest request;
      request.model = model;
      request.input = std::move(image).value();
      const serving::InferenceResponse response =
          server.infer_sync(std::move(request));
      std::printf("  %-40s → %s\n", dataset.value().file_path(i).c_str(),
                  response.status.is_ok()
                      ? std::to_string(response.predicted_class).c_str()
                      : response.status.to_string().c_str());
    }
  }
  return 0;
}
