#include "harvest/placement.hpp"

#include <algorithm>

#include "core/units.hpp"
#include "harvest/e2e.hpp"
#include "platform/perf_model.hpp"

namespace harvest::api {
namespace {

/// Evaluate one side of the continuum. For the cloud side `link` is the
/// uplink carrying every request; for the edge it is null.
PlacementOption evaluate_side(const platform::DeviceSpec& device,
                              const data::DatasetSpec& dataset,
                              const platform::LinkSpec* link,
                              const AdvisorConfig& config) {
  PlacementOption option;
  option.platform = device.name;

  const double upload =
      link != nullptr
          ? link->request_latency_s(dataset.image_stats().mean_encoded_bytes)
          : 0.0;
  option.upload_latency_s = upload;

  // Per-model: engine budget is what remains after the upload.
  PlacementOption best;
  best.platform = device.name;
  for (const nn::ModelSpec& spec : nn::evaluated_models()) {
    AdvisorConfig side_config = config;
    side_config.latency_budget_s =
        std::max(config.latency_budget_s - upload, 0.0);
    if (side_config.latency_budget_s <= 0.0) break;
    const OperatingPoint point =
        find_operating_point(device, spec.name, side_config);
    if (!point.feasible) continue;

    // The advisor's batch bounds only the *engine* latency; walk it down
    // until the full pipeline (preprocessing + inference + upload) fits
    // the budget. (CRSA needs the perspective-warp path.)
    E2EConfig e2e_config;
    e2e_config.method = dataset.needs_perspective
                            ? preproc::PreprocMethod::kCv2
                            : preproc::PreprocMethod::kDali224;
    E2EEstimate e2e;
    double request_latency = 0.0;
    bool fits = false;
    for (std::int64_t batch = point.batch; batch >= 1; batch /= 2) {
      e2e_config.batch = batch;
      e2e = estimate_end_to_end(device, spec.name, dataset, e2e_config);
      if (e2e.oom) continue;
      request_latency = upload + e2e.latency_s;
      if (request_latency <= config.latency_budget_s) {
        fits = true;
        break;
      }
    }
    if (!fits) continue;

    double capacity = e2e.throughput_img_per_s;
    std::string limit = bottleneck_name(e2e.bottleneck);
    if (link != nullptr) {
      const double link_rate = link->max_request_rate(
          dataset.image_stats().mean_encoded_bytes);
      if (link_rate < capacity) {
        capacity = link_rate;
        limit = "uplink";
      }
    }
    if (capacity > best.sustainable_qps) {
      best.model = spec.name;
      best.meets_budget = true;
      best.request_latency_s = request_latency;
      best.upload_latency_s = upload;
      best.sustainable_qps = capacity;
      best.limiting_factor = limit;
      const platform::EngineModel engine =
          platform::make_engine_model(device, spec.name);
      best.energy_per_image_j =
          engine.estimate(point.batch).energy_per_image_j;
    }
  }
  return best.meets_budget ? best : option;
}

}  // namespace

PlacementDecision place_deployment(const data::DatasetSpec& dataset,
                                   const platform::LinkSpec& link,
                                   const AdvisorConfig& config) {
  PlacementDecision decision;
  decision.edge = evaluate_side(platform::jetson_orin_nano(), dataset,
                                /*link=*/nullptr, config);
  decision.cloud = evaluate_side(platform::a100(), dataset, &link, config);

  const bool edge_ok = decision.edge.meets_budget;
  const bool cloud_ok = decision.cloud.meets_budget;
  if (!edge_ok && !cloud_ok) {
    decision.chosen = "neither";
    decision.rationale =
        "no placement meets " + core::format_seconds(config.latency_budget_s) +
        " for " + dataset.name + " over " + link.name +
        "; relax the budget, shrink the payload, or upgrade the link";
    return decision;
  }
  if (edge_ok && !cloud_ok) {
    decision.chosen = "edge";
    decision.rationale = "only the edge meets the budget (cloud loses " +
                         core::format_seconds(decision.cloud.upload_latency_s) +
                         " per request to " + link.name + ")";
    return decision;
  }
  if (!edge_ok && cloud_ok) {
    decision.chosen = "cloud";
    decision.rationale = "the edge device cannot meet the budget for this "
                         "workload; the uplink can";
    return decision;
  }
  // Both feasible: take the higher sustainable rate; break ties toward
  // the edge (no upstream dependency, lower energy per §5).
  if (decision.cloud.sustainable_qps > 1.2 * decision.edge.sustainable_qps) {
    decision.chosen = "cloud";
    decision.rationale =
        "both meet the budget; the cloud sustains " +
        core::format_rate(decision.cloud.sustainable_qps) + " vs " +
        core::format_rate(decision.edge.sustainable_qps) + " at the edge";
  } else {
    decision.chosen = "edge";
    decision.rationale =
        "both meet the budget with comparable capacity; the edge avoids the "
        "uplink dependency and runs at " +
        core::format_fixed(decision.edge.energy_per_image_j * 1e3, 1) +
        " mJ/img";
  }
  return decision;
}

}  // namespace harvest::api
