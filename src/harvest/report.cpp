#include "harvest/report.hpp"

#include <cstdio>

namespace harvest::api {

Report::Report(std::string experiment) : experiment_(std::move(experiment)) {
  root_ = core::Json::object();
  root_["experiment"] = core::Json(experiment_);
  root_["rows"] = core::Json::array();
}

void Report::add_row(core::Json row) {
  root_["rows"].push_back(std::move(row));
}

void Report::set_meta(const std::string& key, core::Json value) {
  root_[key] = std::move(value);
}

bool Report::write(const std::string& dir) const {
  const std::string path = dir + "/" + experiment_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = dump();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace harvest::api
