#pragma once

/// \file predictor.hpp
/// The deployment performance predictor — the paper's stated future
/// work, built: "develop comprehensive quantitative models for scalable
/// performance prediction and provide deployment toolkits that enable
/// practitioners to establish performance expectations before
/// deployment" (§5). Given a deployment plan (platform, model, dataset,
/// scenario, load), it composes the calibrated engine model, the
/// preprocessing cost model and the queueing simulation into one
/// expectation report, serializable to JSON.

#include <optional>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "data/datasets.hpp"
#include "platform/device.hpp"
#include "preproc/pipeline.hpp"

namespace harvest::api {

struct DeploymentPlan {
  std::string device = "A100";
  std::string model = "ViT_Small";
  std::string dataset = "Plant Village";
  platform::Scenario scenario = platform::Scenario::kOnline;
  preproc::PreprocMethod preproc = preproc::PreprocMethod::kDali224;
  std::optional<platform::Precision> precision;  ///< default: device native
  /// Online: expected request rate. Real-time: camera frame rate.
  double arrival_qps = 100.0;
  /// 0 = let the predictor choose (largest under the latency budget).
  std::int64_t batch = 0;
  int instances = 1;
  double latency_budget_s = 1.0 / 60.0;
};

/// One sampled point of the engine curve included in the report.
struct CurvePoint {
  std::int64_t batch = 0;
  double latency_s = 0.0;
  double throughput_img_per_s = 0.0;
  double energy_per_image_j = 0.0;
};

struct PerformanceExpectation {
  bool feasible = false;        ///< the plan can meet its constraints
  std::string verdict;          ///< one-line human-readable summary
  std::vector<std::string> warnings;

  std::int64_t chosen_batch = 0;
  double engine_latency_s = 0.0;
  double engine_throughput_img_per_s = 0.0;
  double preproc_latency_s = 0.0;
  double e2e_throughput_img_per_s = 0.0;
  double e2e_latency_s = 0.0;
  double energy_per_image_j = 0.0;
  double memory_bytes = 0.0;      ///< engine footprint at chosen batch
  double headroom = 0.0;          ///< capacity / offered load (online)
  // Online queueing expectations (simulated; zero for other scenarios).
  double expected_p95_latency_s = 0.0;
  double expected_p99_latency_s = 0.0;
  double expected_utilization = 0.0;

  std::vector<CurvePoint> engine_curve;  ///< the Fig. 5/6 sweep for this plan

  core::Json to_json() const;
};

/// Validate the plan and compute its expectation. Invalid names fail
/// with a status; infeasible-but-valid plans return feasible=false with
/// an explanatory verdict.
core::Result<PerformanceExpectation> predict(const DeploymentPlan& plan);

}  // namespace harvest::api
