#include "harvest/e2e.hpp"

#include <algorithm>

#include "core/units.hpp"

#include "platform/perf_model.hpp"
#include "preproc/cost_model.hpp"

namespace harvest::api {

const char* bottleneck_name(Bottleneck b) {
  switch (b) {
    case Bottleneck::kPreprocessing: return "preprocessing";
    case Bottleneck::kInference: return "inference";
    case Bottleneck::kMemory: return "memory";
  }
  return "?";
}

E2EEstimate estimate_end_to_end(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const E2EConfig& config) {
  platform::EngineModel engine = platform::make_engine_model(device, model);
  const preproc::WorkloadImageStats stats = dataset.image_stats();
  const std::int64_t input_size = engine.model_spec().input_size;

  E2EEstimate est;

  // On unified-memory platforms the preprocessing stack and the engine
  // share capacity: its staging pool scales with the batch, and the
  // preprocessing runtime itself (framework allocator, prefetch queues,
  // decode workspaces) pins a further fixed share of the unified memory
  // (§4.3). Solve for a batch whose combined footprint fits.
  constexpr double kUnifiedPreprocRuntimeReserve =
      1.5 * static_cast<double>(core::kGiB);
  auto effective_max_batch = [&](std::int64_t candidate) {
    if (!device.unified_memory) return engine.max_batch();
    const double pool =
        preproc::estimate_preproc(device, stats, config.method, candidate,
                                  input_size)
            .pool_bytes;
    engine.set_memory_budget_bytes(device.engine_memory_budget_bytes() -
                                   pool - kUnifiedPreprocRuntimeReserve);
    return engine.max_batch();
  };

  std::int64_t batch = config.batch;
  if (batch <= 0) {
    // Largest self-consistent batch: shrink until the batch fits the
    // budget that its own preprocessing pool leaves behind.
    batch = std::max<std::int64_t>(engine.max_batch(), 1);
    while (batch > 1 && effective_max_batch(batch) < batch) {
      batch = batch / 2;
    }
  }
  est.engine_max_batch = effective_max_batch(batch);
  est.batch = batch;
  if (est.engine_max_batch < batch || est.engine_max_batch < 1) {
    est.oom = true;
    est.bottleneck = Bottleneck::kMemory;
    return est;
  }

  const platform::EngineEstimate infer = engine.estimate(batch);
  const preproc::PreprocEstimate pre = preproc::estimate_preproc(
      device, stats, config.method, batch, input_size);
  est.preproc_s = pre.latency_s;
  est.inference_s = infer.latency_s;
  est.preproc_pool_bytes = pre.pool_bytes;
  // A single request always experiences both stages in sequence...
  est.latency_s = pre.latency_s + infer.latency_s;
  // ...but a saturated pipeline is paced by its slower stage.
  const double steady = config.overlap
                            ? std::max(pre.latency_s, infer.latency_s)
                            : pre.latency_s + infer.latency_s;
  est.throughput_img_per_s = static_cast<double>(batch) / steady;
  est.bottleneck = pre.latency_s > infer.latency_s
                       ? Bottleneck::kPreprocessing
                       : Bottleneck::kInference;
  return est;
}

}  // namespace harvest::api
