#pragma once

/// \file report.hpp
/// Machine-readable experiment reports. Every bench binary can append
/// its measurements to a `Report`, which serializes to pretty JSON for
/// downstream plotting/regression tooling (and for EXPERIMENTS.md).

#include <string>

#include "core/json.hpp"

namespace harvest::api {

class Report {
 public:
  /// `experiment` is the paper artifact id, e.g. "fig5" or "table1".
  explicit Report(std::string experiment);

  /// Add one measurement row (arbitrary key→value object).
  void add_row(core::Json row);

  /// Attach top-level metadata (calibration notes, parameters...).
  void set_meta(const std::string& key, core::Json value);

  const core::Json& json() const { return root_; }
  std::string dump() const { return root_.dump(2); }

  /// Write to `<dir>/<experiment>.json`; returns false on I/O error.
  bool write(const std::string& dir) const;

 private:
  std::string experiment_;
  core::Json root_;
};

}  // namespace harvest::api
