#pragma once

/// \file advisor.hpp
/// The tuning advisor — the paper's actionable output (§1: "guidance for
/// application-specific tuning"). Given a platform, a latency constraint
/// and a dataset, it finds each model's optimal operating region (the
/// Fig. 6 analysis: largest batch that both meets the latency threshold
/// and runs near saturation) and recommends a deployment.

#include <cstdint>
#include <string>
#include <vector>

#include "data/datasets.hpp"
#include "platform/device.hpp"
#include "preproc/pipeline.hpp"

namespace harvest::api {

struct OperatingPoint {
  std::string model;
  std::int64_t batch = 0;      ///< recommended batch size
  double latency_s = 0.0;      ///< engine latency at that batch
  double throughput_img_per_s = 0.0;
  double saturation = 0.0;     ///< 0..1, fraction of the model's efficiency
                               ///< ceiling reached at this batch
  bool feasible = false;       ///< some batch met the constraint
  bool near_saturated = false; ///< saturation >= threshold at the point
};

struct AdvisorConfig {
  double latency_budget_s = 1.0 / 60.0;  ///< the paper's 60 QPS threshold
  double saturation_threshold = 0.8;     ///< "near-saturated"
  std::int64_t max_batch = 1024;
};

/// Engine-only operating point of one model on one device (Fig. 6).
OperatingPoint find_operating_point(const platform::DeviceSpec& device,
                                    const std::string& model,
                                    const AdvisorConfig& config);

/// All Table 3 models, ranked by throughput among feasible points.
std::vector<OperatingPoint> rank_models(const platform::DeviceSpec& device,
                                        const AdvisorConfig& config);

struct DeploymentAdvice {
  OperatingPoint best;            ///< highest-throughput feasible point
  std::string summary;            ///< human-readable guidance
  preproc::PreprocMethod preproc_method = preproc::PreprocMethod::kDali224;
};

/// End-to-end advice for a (device, dataset) pair: picks a model, a
/// batch size and a preprocessing method under the latency budget.
DeploymentAdvice advise(const platform::DeviceSpec& device,
                        const data::DatasetSpec& dataset,
                        const AdvisorConfig& config);

}  // namespace harvest::api
