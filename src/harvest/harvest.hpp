#pragma once

/// \file harvest.hpp
/// Umbrella header: the public API surface of the HARVEST inference
/// library. Downstream users normally include just this.

#include "core/cli.hpp"        // IWYU pragma: export
#include "core/json.hpp"       // IWYU pragma: export
#include "core/log.hpp"        // IWYU pragma: export
#include "core/status.hpp"     // IWYU pragma: export
#include "core/rng.hpp"        // IWYU pragma: export
#include "core/stats.hpp"      // IWYU pragma: export
#include "core/table.hpp"      // IWYU pragma: export
#include "core/time.hpp"       // IWYU pragma: export
#include "core/units.hpp"      // IWYU pragma: export
#include "data/datasets.hpp"   // IWYU pragma: export
#include "data/loader.hpp"     // IWYU pragma: export
#include "data/synthetic.hpp"  // IWYU pragma: export
#include "harvest/advisor.hpp" // IWYU pragma: export
#include "harvest/e2e.hpp"     // IWYU pragma: export
#include "harvest/placement.hpp"  // IWYU pragma: export
#include "harvest/predictor.hpp"  // IWYU pragma: export
#include "harvest/report.hpp"  // IWYU pragma: export
#include "nn/init.hpp"         // IWYU pragma: export
#include "nn/models.hpp"       // IWYU pragma: export
#include "nn/serialize.hpp"    // IWYU pragma: export
#include "platform/calibration.hpp"  // IWYU pragma: export
#include "platform/device.hpp"       // IWYU pragma: export
#include "platform/gemm_bench.hpp"   // IWYU pragma: export
#include "platform/perf_model.hpp"   // IWYU pragma: export
#include "preproc/cost_model.hpp"    // IWYU pragma: export
#include "preproc/pipeline.hpp"      // IWYU pragma: export
#include "serving/native_backend.hpp"  // IWYU pragma: export
#include "serving/online_sim.hpp"      // IWYU pragma: export
#include "serving/scenarios.hpp"       // IWYU pragma: export
#include "serving/server.hpp"          // IWYU pragma: export
#include "serving/sim_backend.hpp"     // IWYU pragma: export
#include "stitch/stitch.hpp"           // IWYU pragma: export
