#pragma once

/// \file placement.hpp
/// Continuum placement — the decision the paper's title is about:
/// should this workload run at the edge or in the cloud? "A single
/// training process enables deployment on both edge and cloud systems —
/// inference can run in the cloud with high throughput ... or be
/// performed on edge devices in the field for low-latency results"
/// (§1). This module composes the engine model, the preprocessing cost
/// model and the uplink model into one comparison per (dataset, uplink,
/// latency budget) and recommends a placement with its rationale.

#include <string>

#include "data/datasets.hpp"
#include "harvest/advisor.hpp"
#include "platform/network.hpp"

namespace harvest::api {

/// One candidate placement's expectation.
struct PlacementOption {
  std::string platform;
  std::string model;
  bool meets_budget = false;
  double request_latency_s = 0.0;  ///< per-request, incl. upload for cloud
  double upload_latency_s = 0.0;   ///< 0 for edge
  double sustainable_qps = 0.0;    ///< min(link, pipeline) capacity
  double energy_per_image_j = 0.0;
  std::string limiting_factor;     ///< "uplink" | "preprocessing" | "engine"
};

struct PlacementDecision {
  PlacementOption edge;   ///< Jetson Orin Nano in the field
  PlacementOption cloud;  ///< A100 behind the uplink
  /// "edge", "cloud", or "neither" (no option meets the budget).
  std::string chosen;
  std::string rationale;
};

/// Decide where to run inference for `dataset` given the field's uplink
/// and a per-request latency budget. Model selection per side uses the
/// advisor (highest-throughput model meeting the budget on that
/// platform); cloud requests pay upload + queueing-free engine latency,
/// and cloud capacity is capped by the link's sustainable rate.
PlacementDecision place_deployment(const data::DatasetSpec& dataset,
                                   const platform::LinkSpec& link,
                                   const AdvisorConfig& config);

}  // namespace harvest::api
