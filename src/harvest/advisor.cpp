#include "harvest/advisor.hpp"

#include <algorithm>

#include "core/units.hpp"
#include "harvest/e2e.hpp"
#include "platform/perf_model.hpp"

namespace harvest::api {
namespace {

const std::vector<std::int64_t>& batch_sweep() {
  // The paper's Fig. 5/6 sweep axis.
  static const std::vector<std::int64_t> batches = {
      1, 2, 4, 8, 16, 32, 64, 96, 128, 196, 256, 384, 512, 640, 768, 1024};
  return batches;
}

}  // namespace

OperatingPoint find_operating_point(const platform::DeviceSpec& device,
                                    const std::string& model,
                                    const AdvisorConfig& config) {
  const platform::EngineModel engine =
      platform::make_engine_model(device, model);
  OperatingPoint best;
  best.model = model;
  for (std::int64_t batch : batch_sweep()) {
    if (batch > config.max_batch || batch > engine.max_batch()) break;
    const platform::EngineEstimate est = engine.estimate(batch);
    if (est.oom) break;
    if (est.latency_s > config.latency_budget_s) break;  // latency is monotone
    // Every feasible larger batch strictly improves throughput, so keep
    // the last one under budget.
    best.batch = batch;
    best.latency_s = est.latency_s;
    best.throughput_img_per_s = est.throughput_img_per_s;
    best.saturation = engine.saturation(batch);
    best.feasible = true;
    best.near_saturated = best.saturation >= config.saturation_threshold;
  }
  return best;
}

std::vector<OperatingPoint> rank_models(const platform::DeviceSpec& device,
                                        const AdvisorConfig& config) {
  std::vector<OperatingPoint> points;
  for (const nn::ModelSpec& spec : nn::evaluated_models()) {
    points.push_back(find_operating_point(device, spec.name, config));
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const OperatingPoint& a, const OperatingPoint& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     return a.throughput_img_per_s > b.throughput_img_per_s;
                   });
  return points;
}

DeploymentAdvice advise(const platform::DeviceSpec& device,
                        const data::DatasetSpec& dataset,
                        const AdvisorConfig& config) {
  DeploymentAdvice advice;
  const std::vector<OperatingPoint> ranked = rank_models(device, config);
  advice.best = ranked.front();

  // Preprocessing: GPU-accelerated batched preprocessing wherever the
  // platform has it; CRSA's camera feed needs the CV2-style warp path.
  advice.preproc_method = dataset.needs_perspective
                              ? preproc::PreprocMethod::kCv2
                              : preproc::PreprocMethod::kDali224;

  if (!advice.best.feasible) {
    advice.summary = "No evaluated model meets " +
                     core::format_seconds(config.latency_budget_s) + " on " +
                     device.name + "; consider a smaller model or relaxing "
                     "the latency budget.";
    return advice;
  }

  const E2EConfig e2e_config{advice.best.batch, advice.preproc_method, true};
  const E2EEstimate e2e =
      estimate_end_to_end(device, advice.best.model, dataset, e2e_config);

  advice.summary =
      "Deploy " + advice.best.model + " on " + device.name + " at batch " +
      std::to_string(advice.best.batch) + ": engine latency " +
      core::format_seconds(advice.best.latency_s) + " (" +
      core::format_rate(advice.best.throughput_img_per_s) + "), " +
      (advice.best.near_saturated ? "near-saturated"
                                  : "below the saturation knee") +
      ". End-to-end with " +
      preproc::preproc_method_name(advice.preproc_method) +
      " preprocessing: " + core::format_rate(e2e.throughput_img_per_s) +
      ", bottleneck: " + bottleneck_name(e2e.bottleneck) + ".";
  return advice;
}

}  // namespace harvest::api
