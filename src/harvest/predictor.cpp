#include "harvest/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "core/units.hpp"
#include "harvest/e2e.hpp"
#include "nn/models.hpp"
#include "platform/perf_model.hpp"
#include "preproc/cost_model.hpp"
#include "serving/online_sim.hpp"

namespace harvest::api {
namespace {

const std::vector<std::int64_t>& curve_batches() {
  static const std::vector<std::int64_t> batches = {
      1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  return batches;
}

}  // namespace

core::Json PerformanceExpectation::to_json() const {
  core::Json out = core::Json::object();
  out["feasible"] = core::Json(feasible);
  out["verdict"] = core::Json(verdict);
  core::Json warning_list = core::Json::array();
  for (const std::string& w : warnings) warning_list.push_back(core::Json(w));
  out["warnings"] = std::move(warning_list);
  out["chosen_batch"] = core::Json(chosen_batch);
  out["engine_latency_s"] = core::Json(engine_latency_s);
  out["engine_throughput_img_s"] = core::Json(engine_throughput_img_per_s);
  out["preproc_latency_s"] = core::Json(preproc_latency_s);
  out["e2e_throughput_img_s"] = core::Json(e2e_throughput_img_per_s);
  out["e2e_latency_s"] = core::Json(e2e_latency_s);
  out["energy_per_image_j"] = core::Json(energy_per_image_j);
  out["memory_bytes"] = core::Json(memory_bytes);
  out["headroom"] = core::Json(headroom);
  out["expected_p95_latency_s"] = core::Json(expected_p95_latency_s);
  out["expected_p99_latency_s"] = core::Json(expected_p99_latency_s);
  out["expected_utilization"] = core::Json(expected_utilization);
  core::Json curve = core::Json::array();
  for (const CurvePoint& point : engine_curve) {
    core::Json row = core::Json::object();
    row["batch"] = core::Json(point.batch);
    row["latency_s"] = core::Json(point.latency_s);
    row["img_s"] = core::Json(point.throughput_img_per_s);
    row["j_per_img"] = core::Json(point.energy_per_image_j);
    curve.push_back(std::move(row));
  }
  out["engine_curve"] = std::move(curve);
  return out;
}

core::Result<PerformanceExpectation> predict(const DeploymentPlan& plan) {
  const platform::DeviceSpec* device = platform::find_device(plan.device);
  if (device == nullptr) {
    return core::Status::invalid_argument("unknown device: " + plan.device);
  }
  const auto model_spec = nn::find_model_spec(plan.model);
  if (!model_spec.has_value()) {
    return core::Status::invalid_argument("unknown model: " + plan.model);
  }
  const auto dataset = data::find_dataset(plan.dataset);
  if (!dataset.has_value()) {
    return core::Status::invalid_argument("unknown dataset: " + plan.dataset);
  }
  if (plan.instances < 1 || plan.arrival_qps <= 0.0 ||
      plan.latency_budget_s <= 0.0) {
    return core::Status::invalid_argument("plan parameters must be positive");
  }

  nn::ModelPtr model = nn::build_by_name(plan.model);
  platform::EngineModel engine(*device, *model_spec, model->profile(1),
                               plan.precision);

  PerformanceExpectation out;
  if (!device->supports(plan.scenario)) {
    out.warnings.push_back(std::string(device->name) + " is not deployed for " +
                           platform::scenario_name(plan.scenario) +
                           " in the evaluated continuum");
  }

  // Engine curve + batch choice under the latency budget.
  std::int64_t best_batch = 0;
  for (std::int64_t batch : curve_batches()) {
    if (batch > engine.max_batch()) break;
    const platform::EngineEstimate est = engine.estimate(batch);
    if (est.oom) break;
    out.engine_curve.push_back({batch, est.latency_s,
                                est.throughput_img_per_s,
                                est.energy_per_image_j});
    if (est.latency_s <= plan.latency_budget_s) best_batch = batch;
  }
  if (plan.batch > 0) {
    if (plan.batch > engine.max_batch()) {
      out.verdict = "requested batch " + std::to_string(plan.batch) +
                    " exceeds the device's memory wall (max " +
                    std::to_string(engine.max_batch()) + ")";
      return out;
    }
    best_batch = plan.batch;
    if (engine.estimate(plan.batch).latency_s > plan.latency_budget_s) {
      out.warnings.push_back("requested batch exceeds the latency budget");
    }
  }
  if (best_batch == 0) {
    out.verdict = plan.model + " cannot meet " +
                  core::format_seconds(plan.latency_budget_s) + " on " +
                  device->name + " at any batch size";
    return out;
  }
  out.chosen_batch = best_batch;

  const platform::EngineEstimate engine_est = engine.estimate(best_batch);
  out.engine_latency_s = engine_est.latency_s;
  out.engine_throughput_img_per_s = engine_est.throughput_img_per_s;
  out.energy_per_image_j = engine_est.energy_per_image_j;
  out.memory_bytes = engine_est.memory_bytes;

  // End-to-end composition with the chosen preprocessing.
  E2EConfig e2e_config;
  e2e_config.batch = best_batch;
  e2e_config.method = plan.preproc;
  e2e_config.overlap = plan.scenario != platform::Scenario::kRealTime;
  const E2EEstimate e2e =
      estimate_end_to_end(*device, plan.model, *dataset, e2e_config);
  if (e2e.oom) {
    out.verdict = "batch " + std::to_string(best_batch) +
                  " no longer fits once the preprocessing pool shares " +
                  device->name + "'s memory";
    return out;
  }
  out.preproc_latency_s = e2e.preproc_s;
  out.e2e_latency_s = e2e.latency_s;
  out.e2e_throughput_img_per_s = e2e.throughput_img_per_s;
  if (e2e.bottleneck == Bottleneck::kPreprocessing) {
    out.warnings.push_back(
        "preprocessing-bound: the engine has idle capacity at this batch");
  }

  const double capacity =
      out.e2e_throughput_img_per_s * static_cast<double>(plan.instances);
  out.headroom = capacity / plan.arrival_qps;

  if (plan.scenario == platform::Scenario::kOnline) {
    // Queueing expectations from the DES at the offered load.
    serving::OnlineSimConfig sim;
    sim.arrival_rate_qps = plan.arrival_qps;
    sim.duration_s = 20.0;
    sim.max_batch = best_batch;
    sim.max_queue_delay_s = std::min(plan.latency_budget_s / 4.0, 5e-3);
    sim.instances = plan.instances;
    sim.preproc_method = plan.preproc;
    const serving::OnlineSimReport report =
        serving::simulate_online(*device, plan.model, *dataset, sim);
    out.expected_p95_latency_s = report.p95_latency_s;
    out.expected_p99_latency_s = report.p99_latency_s;
    out.expected_utilization = report.instance_utilization;
    out.feasible = out.headroom >= 1.0 &&
                   report.p95_latency_s <= plan.latency_budget_s;
  } else if (plan.scenario == platform::Scenario::kRealTime) {
    // Sequential frame loop: each frame pays preproc + inference.
    const double frame_budget = 1.0 / plan.arrival_qps;
    out.feasible = out.e2e_latency_s <= std::min(frame_budget,
                                                 plan.latency_budget_s);
    if (!out.feasible) {
      out.warnings.push_back("frame latency exceeds the camera interval — "
                             "frames will be dropped");
    }
  } else {  // offline: throughput is all that matters
    out.feasible = true;
  }

  out.verdict =
      plan.model + " on " + device->name + " @BS" +
      std::to_string(best_batch) + ": " +
      core::format_rate(capacity) + " capacity vs " +
      core::format_rate(plan.arrival_qps, "req/s") + " offered (headroom " +
      core::format_fixed(out.headroom, 2) + "x), e2e latency " +
      core::format_seconds(out.e2e_latency_s) + ", " +
      core::format_fixed(out.energy_per_image_j * 1e3, 1) + " mJ/img — " +
      (out.feasible ? "plan is feasible" : "plan is NOT feasible");
  return out;
}

}  // namespace harvest::api
