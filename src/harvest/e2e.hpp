#pragma once

/// \file e2e.hpp
/// End-to-end pipeline estimation (the Fig. 8 machinery): one request's
/// journey = preprocessing + inference, with optional stage overlap for
/// steady-state throughput, and — on unified-memory platforms — the
/// preprocessing pool and the engine competing for the same bytes
/// (§4.3: "combined memory consumption from preprocessing and inference
/// constrains the model engine's available batch size").

#include <cstdint>
#include <string>

#include "data/datasets.hpp"
#include "platform/device.hpp"
#include "preproc/pipeline.hpp"

namespace harvest::api {

enum class Bottleneck { kPreprocessing, kInference, kMemory };

const char* bottleneck_name(Bottleneck b);

struct E2EConfig {
  /// 0 = choose the largest batch that fits after memory contention.
  std::int64_t batch = 0;
  preproc::PreprocMethod method = preproc::PreprocMethod::kDali224;
  /// Double-buffering: preprocessing of batch k+1 overlaps inference of
  /// batch k, so steady-state cost per batch is max(stages).
  bool overlap = true;
};

struct E2EEstimate {
  std::int64_t batch = 0;           ///< batch actually used
  std::int64_t engine_max_batch = 0;///< after memory contention
  bool oom = false;                 ///< requested batch did not fit
  double preproc_s = 0.0;           ///< per batch
  double inference_s = 0.0;         ///< per batch
  double latency_s = 0.0;           ///< one request's batch, preproc+infer
  double throughput_img_per_s = 0.0;///< steady state (overlap-aware)
  double preproc_pool_bytes = 0.0;
  Bottleneck bottleneck = Bottleneck::kInference;
};

/// Price the full pipeline for (device, model, dataset) at a config.
E2EEstimate estimate_end_to_end(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const E2EConfig& config);

}  // namespace harvest::api
