#include "platform/device.hpp"

#include <thread>

#include "core/units.hpp"

namespace harvest::platform {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFP32: return "FP32";
    case Precision::kTF32: return "TF32";
    case Precision::kFP16: return "FP16";
    case Precision::kBF16: return "BF16";
    case Precision::kINT8: return "INT8";
  }
  return "?";
}

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kOnline: return "Online";
    case Scenario::kOffline: return "Offline";
    case Scenario::kRealTime: return "Real-Time";
  }
  return "?";
}

namespace {

/// Throughput multiplier of `p` relative to the device's native half
/// precision, following tensor-core scaling (§3.1: lower precision is
/// faster; FP32 runs at half rate, INT8 at double rate).
double precision_multiplier(Precision native, Precision p) {
  auto rank = [](Precision q) {
    switch (q) {
      case Precision::kFP32: return 0.5;
      case Precision::kTF32: return 0.5;
      case Precision::kFP16: return 1.0;
      case Precision::kBF16: return 1.0;
      case Precision::kINT8: return 2.0;
    }
    return 1.0;
  };
  return rank(p) / rank(native);
}

}  // namespace

double DeviceSpec::theory_tflops_at(Precision p) const {
  return theory_tflops * precision_multiplier(native_precision, p);
}

double DeviceSpec::practical_tflops_at(Precision p) const {
  return practical_tflops * precision_multiplier(native_precision, p);
}

bool DeviceSpec::supports(Scenario s) const {
  for (Scenario supported : scenarios) {
    if (supported == s) return true;
  }
  return false;
}

// All Table 1 values below come straight from the paper; memory
// bandwidths are the public vendor numbers for the parts named there.

const DeviceSpec& a100() {
  static const DeviceSpec spec = [] {
    DeviceSpec d;
    d.name = "A100";
    d.description = "MRI cluster (OSU), 1x NVIDIA A100 40GB of 2";
    d.native_precision = Precision::kBF16;
    d.theory_tflops = 312.0;     // Table 1
    d.practical_tflops = 236.3;  // Table 1 (75.74% efficiency)
    d.kernel_overhead_s = 5e-6;
    d.gpu_mem_bytes = 40.0 * static_cast<double>(core::kGiB);
    d.mem_bw_bytes_per_s = 1555e9;  // HBM2e
    d.runtime_reserve_bytes = 1.5 * static_cast<double>(core::kGiB);
    d.cpu_cores = 128;           // Table 1
    d.host_mem_bytes = 256.0 * static_cast<double>(core::kGiB);
    d.cpu_core_factor = 1.0;
    d.power_w = 400.0;
    d.scenarios = {Scenario::kOnline, Scenario::kOffline};
    return d;
  }();
  return spec;
}

const DeviceSpec& v100() {
  static const DeviceSpec spec = [] {
    DeviceSpec d;
    d.name = "V100";
    d.description = "OSC Pitzer cluster, 1x NVIDIA V100 16GB of 2";
    d.native_precision = Precision::kFP16;
    d.theory_tflops = 112.0;    // Table 1
    d.practical_tflops = 92.6;  // Table 1 (82.68% efficiency)
    d.kernel_overhead_s = 6e-6;
    d.gpu_mem_bytes = 16.0 * static_cast<double>(core::kGiB);
    d.mem_bw_bytes_per_s = 900e9;  // HBM2
    d.runtime_reserve_bytes = 1.2 * static_cast<double>(core::kGiB);
    d.cpu_cores = 40;           // Table 1
    d.host_mem_bytes = 384.0 * static_cast<double>(core::kGiB);
    d.cpu_core_factor = 0.85;   // older Xeon generation than MRI
    d.power_w = 300.0;
    d.scenarios = {Scenario::kOnline, Scenario::kOffline};
    return d;
  }();
  return spec;
}

const DeviceSpec& jetson_orin_nano() {
  static const DeviceSpec spec = [] {
    DeviceSpec d;
    d.name = "JetsonOrinNano";
    d.description =
        "NVIDIA Jetson Orin Nano Super, 1024 CUDA cores / 32 tensor cores, "
        "8GB unified, 25W mode";
    d.native_precision = Precision::kFP16;
    d.theory_tflops = 17.0;     // Table 1
    d.practical_tflops = 11.4;  // Table 1 (measured at BF16 per footnote)
    d.kernel_overhead_s = 15e-6;
    d.gpu_mem_bytes = 8.0 * static_cast<double>(core::kGiB);
    d.mem_bw_bytes_per_s = 102e9;  // LPDDR5
    d.unified_memory = true;
    // OS + CUDA context + display pipeline share the 8 GB (Table 1 note).
    d.runtime_reserve_bytes = 2.5 * static_cast<double>(core::kGiB);
    d.cpu_cores = 6;            // Table 1
    d.host_mem_bytes = 8.0 * static_cast<double>(core::kGiB);  // unified
    d.cpu_core_factor = 0.35;   // Cortex-A78AE vs server Xeon
    d.power_w = 25.0;
    d.scenarios = {Scenario::kRealTime};
    return d;
  }();
  return spec;
}

const DeviceSpec& host_cpu() {
  static const DeviceSpec spec = [] {
    DeviceSpec d;
    d.name = "HostCPU";
    d.description = "machine running this process (native backend)";
    d.native_precision = Precision::kFP32;
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    d.cpu_cores = static_cast<std::int64_t>(cores);
    // Rough order-of-magnitude peak: 8-wide FMA at ~2.5 GHz per core.
    d.theory_tflops = static_cast<double>(cores) * 40e9 / 1e12;
    d.practical_tflops = d.theory_tflops * 0.5;
    d.gpu_mem_bytes = 4.0 * static_cast<double>(core::kGiB);
    d.mem_bw_bytes_per_s = 20e9;
    d.unified_memory = true;
    d.host_mem_bytes = 8.0 * static_cast<double>(core::kGiB);
    d.scenarios = {Scenario::kOnline, Scenario::kOffline, Scenario::kRealTime};
    return d;
  }();
  return spec;
}

const std::vector<const DeviceSpec*>& evaluated_platforms() {
  static const std::vector<const DeviceSpec*> platforms = {
      &a100(), &v100(), &jetson_orin_nano()};
  return platforms;
}

const DeviceSpec* find_device(const std::string& name) {
  for (const DeviceSpec* d : evaluated_platforms()) {
    if (d->name == name) return d;
  }
  if (host_cpu().name == name) return &host_cpu();
  return nullptr;
}

}  // namespace harvest::platform
