#include "platform/network.hpp"

namespace harvest::platform {

// Uplink figures are typical sustained rates (not marketing peaks):
// rural LTE uplink ~8 Mbps, mid-band 5G ~80 Mbps, farm WiFi backhaul
// ~40 Mbps, campus fiber ~1 Gbps.

const LinkSpec& lte_rural() {
  static const LinkSpec spec{"LTE-rural", 8e6, 60e-3, 512.0};
  return spec;
}

const LinkSpec& nr5g() {
  static const LinkSpec spec{"5G-midband", 80e6, 25e-3, 512.0};
  return spec;
}

const LinkSpec& wifi_backhaul() {
  static const LinkSpec spec{"WiFi-backhaul", 40e6, 8e-3, 512.0};
  return spec;
}

const LinkSpec& fiber() {
  static const LinkSpec spec{"Fiber", 1e9, 2e-3, 512.0};
  return spec;
}

const std::vector<const LinkSpec*>& evaluated_links() {
  static const std::vector<const LinkSpec*> links = {
      &lte_rural(), &nr5g(), &wifi_backhaul(), &fiber()};
  return links;
}

const LinkSpec* find_link(const std::string& name) {
  for (const LinkSpec* link : evaluated_links()) {
    if (link->name == name) return link;
  }
  return nullptr;
}

}  // namespace harvest::platform
