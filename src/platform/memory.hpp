#pragma once

/// \file memory.hpp
/// Device memory accounting. `MemoryTracker` models a device memory
/// pool with named reservations; the serving runtime uses one per
/// simulated device so that engine workspaces, preprocessing pools and
/// multi-instance deployments compete for the same capacity — the
/// mechanism behind the Jetson contention effects of Fig. 8 (§4.3).

#include <cstdint>
#include <map>
#include <string>

#include "core/status.hpp"

namespace harvest::platform {

class MemoryTracker {
 public:
  explicit MemoryTracker(double capacity_bytes)
      : capacity_(capacity_bytes) {}

  double capacity_bytes() const { return capacity_; }
  double used_bytes() const { return used_; }
  double available_bytes() const { return capacity_ - used_; }

  /// Reserve `bytes` under `tag`; fails with kOutOfMemory when the pool
  /// cannot satisfy the request. Re-reserving an existing tag resizes it
  /// (the new size must also fit).
  core::Status reserve(const std::string& tag, double bytes);

  /// Release a reservation; releasing an unknown tag is an error.
  core::Status release(const std::string& tag);

  /// Bytes currently held by `tag` (0 when absent).
  double reserved_bytes(const std::string& tag) const;

  std::size_t reservation_count() const { return reservations_.size(); }

 private:
  double capacity_;
  double used_ = 0.0;
  std::map<std::string, double> reservations_;
};

}  // namespace harvest::platform
