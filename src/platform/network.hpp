#pragma once

/// \file network.hpp
/// Uplink models for the online scenario. §2.2.1: online inference
/// "presents challenges for data transmission, especially when
/// transmitting large image data to the cloud. It would be beneficial
/// to leverage advanced wireless capabilities...". A `LinkSpec` prices
/// moving encoded images from the field to a cloud platform; presets
/// cover the connectivity actually available on farms.

#include <string>
#include <vector>

namespace harvest::platform {

struct LinkSpec {
  std::string name;
  double uplink_bps = 0.0;   ///< sustained uplink goodput, bits/second
  double rtt_s = 0.0;        ///< round-trip time (request + response)
  double per_request_overhead_bytes = 512.0;  ///< headers/framing

  /// Time to move one `bytes`-sized payload up the link (excluding RTT).
  double transfer_time_s(double bytes) const {
    return (bytes + per_request_overhead_bytes) * 8.0 / uplink_bps;
  }

  /// One request's transmission latency: upload + round trip (the
  /// response payload — a label — is negligible).
  double request_latency_s(double bytes) const {
    return transfer_time_s(bytes) + rtt_s;
  }

  /// Sustainable request rate for payloads of `bytes` (link saturation).
  double max_request_rate(double bytes) const {
    return 1.0 / transfer_time_s(bytes);
  }
};

/// Rural LTE uplink — the common case at field edges.
const LinkSpec& lte_rural();
/// 5G mid-band — the "advanced wireless capabilities" the paper hopes for.
const LinkSpec& nr5g();
/// Farm-building WiFi backhaul.
const LinkSpec& wifi_backhaul();
/// Campus fiber (the on-site cluster case; effectively not a bottleneck).
const LinkSpec& fiber();

const std::vector<const LinkSpec*>& evaluated_links();
const LinkSpec* find_link(const std::string& name);

}  // namespace harvest::platform
