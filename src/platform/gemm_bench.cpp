#include "platform/gemm_bench.hpp"

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "nn/gemm.hpp"
#include "tensor/tensor.hpp"

namespace harvest::platform {

GemmPoint simulate_gemm_flops(const DeviceSpec& device, std::int64_t size,
                              Precision precision) {
  GemmPoint point;
  point.size = size;
  const double n = static_cast<double>(size);
  const double flops = 2.0 * n * n * n;
  const double bytes = 3.0 * n * n * 2.0;  // A, B, C at fp16
  const double peak = device.practical_tflops_at(precision) * 1e12;
  const double t_compute = flops / peak;
  const double t_memory = bytes / device.mem_bw_bytes_per_s;
  point.seconds = std::max(t_compute, t_memory) + device.kernel_overhead_s;
  point.gflops = flops / point.seconds / 1e9;
  return point;
}

std::vector<GemmPoint> simulate_gemm_sweep(const DeviceSpec& device,
                                           const std::vector<std::int64_t>& sizes,
                                           Precision precision) {
  std::vector<GemmPoint> points;
  points.reserve(sizes.size());
  for (std::int64_t size : sizes) {
    points.push_back(simulate_gemm_flops(device, size, precision));
  }
  return points;
}

GemmPoint measure_host_gemm_flops(std::int64_t size, int iters) {
  using tensor::DType;
  using tensor::Shape;
  using tensor::Tensor;

  Tensor a(Shape{size, size}, DType::kF32);
  Tensor b(Shape{size, size}, DType::kF32);
  Tensor c(Shape{size, size}, DType::kF32);
  core::Rng rng(42);
  for (float& v : a.f32_span()) v = rng.next_float() - 0.5f;
  for (float& v : b.f32_span()) v = rng.next_float() - 0.5f;

  // Warm-up (page in, populate caches, spin up OpenMP workers).
  nn::gemm(a.f32(), b.f32(), c.f32(), size, size, size);

  core::WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    nn::gemm(a.f32(), b.f32(), c.f32(), size, size, size);
  }
  const double elapsed = timer.elapsed_seconds();

  GemmPoint point;
  point.size = size;
  point.seconds = elapsed / std::max(iters, 1);
  const double n = static_cast<double>(size);
  point.gflops = 2.0 * n * n * n / point.seconds / 1e9;
  return point;
}

}  // namespace harvest::platform
