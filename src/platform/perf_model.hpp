#pragma once

/// \file perf_model.hpp
/// The analytic engine-performance model — the substitution for running
/// TensorRT on physical A100/V100/Jetson hardware (see DESIGN.md §4).
///
/// Two complementary views are provided:
///
/// 1. `EngineModel` — the calibrated saturation model used for the
///    headline curves (Figs. 5/6/8). Achieved efficiency follows
///    `eff(BS) = eff_max · BS/(BS + BS_half)` with a fixed per-batch
///    kernel-launch overhead; `eff_max` is solved so the model passes
///    exactly through the paper's published anchor point for that
///    (device, model) pair, and the memory model is solved so the OOM
///    wall lands on the paper's largest runnable batch.
///
/// 2. `roofline_latency()` — a first-principles per-op roofline
///    (compute vs. weight/activation traffic vs. launch overhead) over
///    the model's abstract op list. It is not calibrated; it provides
///    the decomposition used in the analysis benches and a sanity lower
///    bound on latency.

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/flops.hpp"
#include "nn/models.hpp"
#include "platform/calibration.hpp"
#include "platform/device.hpp"

namespace harvest::platform {

/// Result of evaluating the engine model at one batch size.
struct EngineEstimate {
  std::int64_t batch = 0;
  bool oom = false;              ///< memory_required exceeded the budget
  double latency_s = 0.0;        ///< time to process one batch
  double throughput_img_per_s = 0.0;
  double achieved_tflops = 0.0;  ///< throughput × work-per-image
  double mfu_vs_practical = 0.0; ///< achieved / practical peak
  double mfu_vs_theory = 0.0;    ///< achieved / vendor peak
  double memory_bytes = 0.0;     ///< engine footprint at this batch
  /// Energy per image at the device's power envelope (board power ×
  /// busy time / batch) — the efficiency axis the paper's conclusion
  /// says deployments must balance against latency (§5).
  double energy_per_image_j = 0.0;
};

class EngineModel {
 public:
  /// `profile_bs1` must be the model's profile at batch size 1; it is
  /// scaled internally. `spec` supplies the paper-convention work per
  /// image. Calibration anchors are looked up by (device.name,
  /// spec.name); when absent, a documented heuristic fallback applies
  /// (custom models on custom devices still get sane curves).
  EngineModel(const DeviceSpec& device, const nn::ModelSpec& spec,
              nn::ModelProfile profile_bs1,
              std::optional<Precision> precision = std::nullopt);

  const DeviceSpec& device() const { return *device_; }
  const nn::ModelSpec& model_spec() const { return spec_; }
  Precision precision() const { return precision_; }

  /// Evaluate the calibrated model at a batch size.
  EngineEstimate estimate(std::int64_t batch) const;

  /// Ideal (fully saturated) latency: BS × work / practical peak — the
  /// dashed lines of Fig. 6.
  double ideal_latency_s(std::int64_t batch) const;

  /// Table 3's throughput upper bound: practical peak / work-per-image.
  double upper_bound_img_per_s() const;

  /// First-principles roofline latency at a batch size (uncalibrated).
  double roofline_latency_s(std::int64_t batch) const;

  /// Largest batch that fits the current memory budget (≥1 unless even
  /// batch 1 does not fit, in which case 0).
  std::int64_t max_batch() const;

  /// Engine memory footprint at a batch size.
  double memory_required_bytes(std::int64_t batch) const;

  double weights_bytes() const { return weights_bytes_; }

  /// Override the engine's memory budget (bytes). Used to model unified-
  /// memory contention: on Jetson the preprocessing pool and the engine
  /// share 8 GB, so handing memory to preprocessing shrinks max_batch()
  /// (§4.3 of the paper). No-op semantics: pass the device default back
  /// to restore.
  void set_memory_budget_bytes(double bytes) { memory_budget_ = bytes; }
  double memory_budget_bytes() const { return memory_budget_; }

  /// Work per image in the paper's accounting (FLOPs ≙ projection MACs).
  double work_per_image_flops() const { return work_per_image_; }

  /// Saturation fraction s(BS) = BS/(BS+bs_half) — exposed for tests.
  double saturation(std::int64_t batch) const;
  double eff_max() const { return eff_max_; }

 private:
  double practical_flops() const;  ///< at selected precision, FLOPS

  const DeviceSpec* device_;
  nn::ModelSpec spec_;
  nn::ModelProfile profile_bs1_;
  Precision precision_;
  double work_per_image_ = 0.0;   ///< FLOPs per image, paper convention
  double t_fixed_s_ = 0.0;        ///< summed kernel-launch overhead
  double bs_half_ = 1.0;
  double eff_max_ = 0.3;
  double weights_bytes_ = 0.0;
  double act_bytes_per_image_ = 0.0;  ///< effective, includes workspace factor
  double memory_budget_ = 0.0;
  std::optional<EngineAnchor> anchor_;
};

/// Convenience: build the real graph for `model_name`, profile it at
/// batch 1 and construct its engine model on `device`.
EngineModel make_engine_model(const DeviceSpec& device,
                              const std::string& model_name);

}  // namespace harvest::platform
