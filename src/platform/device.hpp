#pragma once

/// \file device.hpp
/// Hardware platform descriptions across the compute continuum. The
/// three evaluated platforms encode Table 1 of the paper; `host_cpu()`
/// describes the machine this library actually runs on and is used by
/// the real-execution backend.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace harvest::platform {

/// Numeric precisions discussed in §3.1. Each device declares a
/// throughput multiplier relative to its native half precision.
enum class Precision { kFP32, kTF32, kFP16, kBF16, kINT8 };

const char* precision_name(Precision p);

/// Deployment scenarios a platform supports (§2.2).
enum class Scenario { kOnline, kOffline, kRealTime };

const char* scenario_name(Scenario s);

struct DeviceSpec {
  std::string name;          ///< "A100", "V100", "JetsonOrinNano", "HostCPU"
  std::string description;   ///< cluster / deployment context
  // --- compute ---
  Precision native_precision = Precision::kFP16;
  double theory_tflops = 0.0;    ///< vendor peak at native precision (Table 1)
  double practical_tflops = 0.0; ///< measured GEMM peak (Table 1)
  double kernel_overhead_s = 5e-6;  ///< per-kernel launch/setup cost
  // --- memory ---
  double gpu_mem_bytes = 0.0;    ///< device (or unified) memory capacity
  double mem_bw_bytes_per_s = 0.0;
  bool unified_memory = false;   ///< CPU+GPU share gpu_mem (Jetson)
  double runtime_reserve_bytes = 0.0;  ///< CUDA context, OS share, etc.
  // --- host ---
  std::int64_t cpu_cores = 1;
  double host_mem_bytes = 0.0;
  /// Single-core CPU preprocessing capability relative to a reference
  /// server core (1.0); edge cores are slower.
  double cpu_core_factor = 1.0;
  // --- misc ---
  double power_w = 0.0;
  std::vector<Scenario> scenarios;

  /// Peak at an arbitrary precision (×2 for INT8, ×0.5 for FP32/TF32
  /// relative to native half precision — tensor-core scaling).
  double theory_tflops_at(Precision p) const;
  double practical_tflops_at(Precision p) const;

  /// Memory available to inference engines after the runtime reserve.
  double engine_memory_budget_bytes() const {
    return gpu_mem_bytes - runtime_reserve_bytes;
  }

  bool supports(Scenario s) const;
};

/// Table 1 platforms.
const DeviceSpec& a100();            ///< MRI cluster, 1×A100 40GB
const DeviceSpec& v100();            ///< OSC Pitzer, 1×V100 16GB
const DeviceSpec& jetson_orin_nano();///< edge device, 8GB unified, 25W
/// The machine this process runs on (used by the native backend).
const DeviceSpec& host_cpu();

/// The three evaluated platforms in paper order (A100, V100, Jetson).
const std::vector<const DeviceSpec*>& evaluated_platforms();

/// Lookup by name; nullptr when unknown.
const DeviceSpec* find_device(const std::string& name);

}  // namespace harvest::platform
