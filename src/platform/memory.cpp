#include "platform/memory.hpp"

#include "core/units.hpp"

namespace harvest::platform {

core::Status MemoryTracker::reserve(const std::string& tag, double bytes) {
  if (bytes < 0.0) {
    return core::Status::invalid_argument("negative reservation for " + tag);
  }
  const auto it = reservations_.find(tag);
  const double current = it == reservations_.end() ? 0.0 : it->second;
  const double delta = bytes - current;
  if (used_ + delta > capacity_) {
    return core::Status::out_of_memory(
        tag + " needs " + core::format_bytes(bytes) + " but only " +
        core::format_bytes(capacity_ - used_ + current) + " of " +
        core::format_bytes(capacity_) + " is free");
  }
  used_ += delta;
  reservations_[tag] = bytes;
  return core::Status::ok();
}

core::Status MemoryTracker::release(const std::string& tag) {
  const auto it = reservations_.find(tag);
  if (it == reservations_.end()) {
    return core::Status::not_found("no reservation named " + tag);
  }
  used_ -= it->second;
  reservations_.erase(it);
  return core::Status::ok();
}

double MemoryTracker::reserved_bytes(const std::string& tag) const {
  const auto it = reservations_.find(tag);
  return it == reservations_.end() ? 0.0 : it->second;
}

}  // namespace harvest::platform
