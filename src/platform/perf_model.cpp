#include "platform/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/log.hpp"
#include "core/status.hpp"

namespace harvest::platform {
namespace {

/// Effective activation/workspace bytes per image. The raw peak-op
/// figure underestimates a real runtime footprint (multi-buffering,
/// tactic workspaces); a ×2 multi-buffer factor is the uncalibrated
/// default, and Jetson's calibrated factor is solved from its OOM wall.
constexpr double kDefaultWorkspaceFactor = 2.0;

/// Uncalibrated efficiency ceiling for (device, model) pairs without a
/// published anchor: grows with arithmetic intensity (bigger models
/// saturate better, §4.1) and CNNs get a bonus (the paper observes
/// ResNet reaching higher MFU than a costlier ViT).
double fallback_eff_max(const nn::ModelSpec& spec) {
  const double size_term =
      0.12 + 0.08 * std::log10(spec.reported_gflops_per_image + 1.0);
  const double arch_bonus = spec.architecture == "CNN" ? 0.06 : 0.0;
  return std::clamp(size_term + arch_bonus, 0.08, 0.6);
}

}  // namespace

EngineModel::EngineModel(const DeviceSpec& device, const nn::ModelSpec& spec,
                         nn::ModelProfile profile_bs1,
                         std::optional<Precision> precision)
    : device_(&device), spec_(spec), profile_bs1_(std::move(profile_bs1)),
      precision_(precision.value_or(device.native_precision)) {
  HARVEST_CHECK_MSG(profile_bs1_.batch_size == 1,
                    "EngineModel expects a batch-1 profile");

  // Work per image. For the paper's models, use the reported figure
  // (projection-MAC convention) so the anchor arithmetic is exact. For
  // custom models there is no convention to honour, so count all MACs —
  // attention included — which is what actually costs time.
  work_per_image_ = spec_.reported_gflops_per_image > 0.0
                        ? spec_.reported_gflops_per_image * 1e9
                        : profile_bs1_.total_macs();

  t_fixed_s_ = static_cast<double>(profile_bs1_.ops.size()) *
               device_->kernel_overhead_s;

  // Half-saturation batch: small models (few FLOPs/image) need larger
  // batches to fill the device, so bs_half scales with the ratio of
  // device peak to per-image work (the 8000 divisor places the paper's
  // "near-saturated above BS 16 on A100 / BS 8 on V100" crossovers).
  bs_half_ = std::max(1.0, practical_flops() / (8000.0 * work_per_image_));

  weights_bytes_ = profile_bs1_.param_bytes_fp16;
  memory_budget_ = device_->engine_memory_budget_bytes();

  anchor_ = find_anchor(device_->name, spec_.name);
  const double raw_act = profile_bs1_.peak_activation_bytes_fp16;

  if (anchor_.has_value()) {
    // Solve eff_max so the curve passes through the published anchor:
    //   latency(BS_a) = t_fixed + BS_a·F / (P·eff_max·s(BS_a))
    //   latency(BS_a) = BS_a / anchor_throughput
    // The anchor was measured at the device's native precision, so the
    // solve uses the native peak; precision overrides then scale the
    // peak at estimate() time (INT8 faster, FP32 slower, §3.1).
    const double native_peak = device_->practical_tflops * 1e12;
    const double bs_a = static_cast<double>(anchor_->anchor_batch);
    const double t_a = bs_a / anchor_->anchor_img_per_s;
    const double compute_time = std::max(t_a - t_fixed_s_, 1e-9);
    eff_max_ = bs_a * work_per_image_ /
               (native_peak * saturation(anchor_->anchor_batch) *
                compute_time);
    eff_max_ = std::clamp(eff_max_, 0.01, 1.0);

    if (anchor_->oom_wall) {
      // Solve the effective per-image workspace so that max_batch lands
      // exactly on the paper's wall: the wall fits, wall+1 does not.
      const double wall = static_cast<double>(anchor_->max_batch);
      act_bytes_per_image_ =
          std::max((memory_budget_ - weights_bytes_) / (wall + 0.5),
                   raw_act * kDefaultWorkspaceFactor);
    } else {
      act_bytes_per_image_ = raw_act * kDefaultWorkspaceFactor;
    }
  } else {
    eff_max_ = fallback_eff_max(spec_);
    act_bytes_per_image_ = raw_act * kDefaultWorkspaceFactor;
  }
}

double EngineModel::practical_flops() const {
  return device_->practical_tflops_at(precision_) * 1e12;
}

double EngineModel::saturation(std::int64_t batch) const {
  const double bs = static_cast<double>(batch);
  return bs / (bs + bs_half_);
}

double EngineModel::memory_required_bytes(std::int64_t batch) const {
  return weights_bytes_ + static_cast<double>(batch) * act_bytes_per_image_;
}

std::int64_t EngineModel::max_batch() const {
  const double spare = memory_budget_ - weights_bytes_;
  if (spare < act_bytes_per_image_) return 0;
  return static_cast<std::int64_t>(spare / act_bytes_per_image_);
}

EngineEstimate EngineModel::estimate(std::int64_t batch) const {
  HARVEST_CHECK_MSG(batch >= 1, "batch must be positive");
  EngineEstimate out;
  out.batch = batch;
  out.memory_bytes = memory_required_bytes(batch);
  if (out.memory_bytes > memory_budget_) {
    out.oom = true;
    return out;
  }
  const double bs = static_cast<double>(batch);
  const double effective_flops = practical_flops() * eff_max_ * saturation(batch);
  out.latency_s = t_fixed_s_ + bs * work_per_image_ / effective_flops;
  out.throughput_img_per_s = bs / out.latency_s;
  out.achieved_tflops = out.throughput_img_per_s * work_per_image_ / 1e12;
  out.mfu_vs_practical =
      out.achieved_tflops / device_->practical_tflops_at(precision_);
  out.mfu_vs_theory = out.achieved_tflops / device_->theory_tflops_at(precision_);
  out.energy_per_image_j = device_->power_w * out.latency_s / bs;
  return out;
}

double EngineModel::ideal_latency_s(std::int64_t batch) const {
  return static_cast<double>(batch) * work_per_image_ / practical_flops();
}

double EngineModel::upper_bound_img_per_s() const {
  return practical_flops() / work_per_image_;
}

double EngineModel::roofline_latency_s(std::int64_t batch) const {
  const double bs = static_cast<double>(batch);
  double total = 0.0;
  for (const nn::OpCost& op : profile_bs1_.ops) {
    // MACs and activation traffic scale with batch; weight reads do not.
    const double flops = 2.0 * op.macs * bs;
    const double act_bytes =
        (op.bytes_read - op.weight_bytes + op.bytes_written) * bs;
    const double t_compute = flops / practical_flops();
    const double t_memory =
        (act_bytes + op.weight_bytes) / device_->mem_bw_bytes_per_s;
    total += std::max(t_compute, t_memory) + device_->kernel_overhead_s;
  }
  return total;
}

EngineModel make_engine_model(const DeviceSpec& device,
                              const std::string& model_name) {
  auto spec = nn::find_model_spec(model_name);
  HARVEST_CHECK_MSG(spec.has_value(), "unknown model name");
  nn::ModelPtr model = nn::build_by_name(model_name);
  HARVEST_CHECK(model != nullptr);
  return EngineModel(device, *spec, model->profile(1));
}

}  // namespace harvest::platform
