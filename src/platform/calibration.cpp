#include "platform/calibration.hpp"

namespace harvest::platform {

// Provenance: every row below is a label printed in Fig. 5 of the paper
// ("<model>: <throughput> img/s @ BS<batch>"). max_batch = 1024 on the
// cloud GPUs is the sweep limit of Fig. 5a/5b (no OOM observed);
// max_batch on Jetson is the OOM wall the paper reports (Fig. 5c, §4.1).
const std::vector<EngineAnchor>& engine_anchors() {
  static const std::vector<EngineAnchor> anchors = {
      // Fig. 5a — A100.
      {"A100", "ViT_Tiny", 1024, 22879.3, 1024, false},
      {"A100", "ViT_Small", 1024, 9344.2, 1024, false},
      {"A100", "ViT_Base", 1024, 4095.9, 1024, false},
      {"A100", "ResNet50", 1024, 16230.7, 1024, false},
      // Fig. 5b — V100.
      {"V100", "ViT_Tiny", 1024, 7179.0, 1024, false},
      {"V100", "ViT_Small", 1024, 2929.3, 1024, false},
      {"V100", "ViT_Base", 1024, 1482.6, 1024, false},
      {"V100", "ResNet50", 1024, 8107.3, 1024, false},
      // Fig. 5c — Jetson Orin Nano (labels give the largest non-OOM batch).
      {"JetsonOrinNano", "ViT_Tiny", 196, 1170.1, 196, true},
      {"JetsonOrinNano", "ViT_Small", 64, 469.4, 64, true},
      {"JetsonOrinNano", "ViT_Base", 8, 201.0, 8, true},
      {"JetsonOrinNano", "ResNet50", 64, 842.9, 64, true},
  };
  return anchors;
}

std::optional<EngineAnchor> find_anchor(const std::string& device,
                                        const std::string& model) {
  for (const EngineAnchor& anchor : engine_anchors()) {
    if (anchor.device == device && anchor.model == model) return anchor;
  }
  return std::nullopt;
}

}  // namespace harvest::platform
