#pragma once

/// \file calibration.hpp
/// Calibration anchors for the analytic device model. Because this
/// reproduction has no physical A100/V100/Jetson, per-(device, model)
/// engine behaviour is anchored to the measurements the paper itself
/// publishes (the throughput labels of Fig. 5 and the OOM walls of
/// Fig. 5c/6c). Every number in calibration.cpp cites its source.
/// Everything else in the performance model is derived.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace harvest::platform {

struct EngineAnchor {
  std::string device;   ///< DeviceSpec::name
  std::string model;    ///< ModelSpec::name (paper spelling)
  std::int64_t anchor_batch = 0;   ///< batch size of the published label
  double anchor_img_per_s = 0.0;   ///< published throughput at that batch
  std::int64_t max_batch = 0;      ///< largest runnable batch
  bool oom_wall = false;  ///< true when max_batch is a memory limit (Jetson),
                          ///< false when it is just the sweep limit (1024)
};

/// All twelve (platform × model) anchors from Fig. 5.
const std::vector<EngineAnchor>& engine_anchors();

/// Find the anchor for a (device, model) pair.
std::optional<EngineAnchor> find_anchor(const std::string& device,
                                        const std::string& model);

}  // namespace harvest::platform
