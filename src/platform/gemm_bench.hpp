#pragma once

/// \file gemm_bench.hpp
/// The practical-FLOPS methodology of Table 1: benchmark square GEMMs
/// and report the sustained rate. Two modes:
///   * `simulate_gemm_flops` prices a GEMM on a modelled device
///     (roofline + launch overhead) — used to regenerate Table 1's
///     "Practical TFLOPS" row for the three paper platforms;
///   * `measure_host_gemm_flops` actually runs the harvest_nn GEMM on
///     this machine — the same methodology applied to real hardware.

#include <cstdint>
#include <vector>

#include "platform/device.hpp"

namespace harvest::platform {

struct GemmPoint {
  std::int64_t size = 0;     ///< square dimension (M=N=K)
  double seconds = 0.0;      ///< time per GEMM
  double gflops = 0.0;       ///< sustained 2·M·N·K / t
};

/// Price one square GEMM of dimension `size` on a modelled device at a
/// precision, returning the sustained rate.
GemmPoint simulate_gemm_flops(const DeviceSpec& device, std::int64_t size,
                              Precision precision);

/// Sweep sizes and return the best sustained rate (the paper's
/// "Practical TFLOPS" figure is the peak of such a sweep).
std::vector<GemmPoint> simulate_gemm_sweep(const DeviceSpec& device,
                                           const std::vector<std::int64_t>& sizes,
                                           Precision precision);

/// Run the real blocked GEMM on the host for `iters` iterations and
/// report the sustained rate. Deterministic inputs.
GemmPoint measure_host_gemm_flops(std::int64_t size, int iters);

}  // namespace harvest::platform
