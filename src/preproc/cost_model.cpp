#include "preproc/cost_model.hpp"

#include <algorithm>

#include "core/status.hpp"

namespace harvest::preproc {

double format_decode_factor(ImageFormat format) {
  switch (format) {
    case ImageFormat::kRaw: return 0.0;    // camera feed, nothing to decode
    case ImageFormat::kPpm: return 0.1;    // header parse + memcpy
    case ImageFormat::kBmp: return 0.15;   // row swizzle
    case ImageFormat::kAgJpeg: return 1.0; // DCT-class decode (reference)
    case ImageFormat::kAtif: return 1.6;   // LZW is serial and branchy
  }
  return 1.0;
}

PreprocRates preproc_rates(const platform::DeviceSpec& device) {
  PreprocRates r;
  // CPU rates: reference server core, scaled by the platform's
  // single-core factor (Jetson's Cortex cores are ~3x slower).
  const double core = device.cpu_core_factor;
  r.cpu_decode_pixels_per_s = 130e6 * core;
  r.cpu_transform_elems_per_s = 200e6 * core;
  r.cpu_warp_pixels_per_s = 80e6 * core;
  r.cpu_fixed_per_image_s = 0.3e-3 / std::max(core, 0.1);

  if (device.name == "A100") {
    // A100 ships a hardware JPEG decode engine (nvJPEG HW path); this is
    // why Fig. 7a's DALI bars dwarf Fig. 7b's.
    r.gpu_decode_pixels_per_s = 5.0e9;
    r.gpu_transform_elems_per_s = 1.5e9;
    r.gpu_warp_pixels_per_s = 1.5e9;
    r.gpu_fixed_per_image_s = 60e-6;
    r.gpu_batch_overhead_s = 1.0e-3;
  } else if (device.name == "V100") {
    r.gpu_decode_pixels_per_s = 0.4e9;  // CUDA software decode
    r.gpu_transform_elems_per_s = 0.8e9;
    r.gpu_warp_pixels_per_s = 0.8e9;
    r.gpu_fixed_per_image_s = 150e-6;
    r.gpu_batch_overhead_s = 1.5e-3;
  } else if (device.name == "JetsonOrinNano") {
    r.gpu_decode_pixels_per_s = 0.15e9;
    r.gpu_transform_elems_per_s = 0.25e9;
    r.gpu_warp_pixels_per_s = 0.25e9;
    r.gpu_fixed_per_image_s = 300e-6;
    r.gpu_batch_overhead_s = 3.0e-3;
  } else {
    // Unknown / host platforms: GPU path unavailable — model it as a
    // thread-parallel CPU path.
    const double cores = static_cast<double>(device.cpu_cores);
    r.gpu_decode_pixels_per_s = r.cpu_decode_pixels_per_s * cores;
    r.gpu_transform_elems_per_s = r.cpu_transform_elems_per_s * cores;
    r.gpu_warp_pixels_per_s = r.cpu_warp_pixels_per_s * cores;
    r.gpu_fixed_per_image_s = r.cpu_fixed_per_image_s;
    r.gpu_batch_overhead_s = 0.5e-3;
  }
  return r;
}

PreprocEstimate estimate_preproc(const platform::DeviceSpec& device,
                                 const WorkloadImageStats& stats,
                                 PreprocMethod method, std::int64_t batch,
                                 std::int64_t model_input) {
  HARVEST_CHECK_MSG(batch >= 1, "batch must be positive");
  const PreprocRates rates = preproc_rates(device);
  const std::int64_t out_size = preproc_output_size(method, model_input);
  const double out_elems = 3.0 * static_cast<double>(out_size * out_size);
  const double decode_factor = format_decode_factor(stats.format);
  const bool gpu_path = method == PreprocMethod::kDali224 ||
                        method == PreprocMethod::kDali96 ||
                        method == PreprocMethod::kDali32;

  PreprocEstimate est;
  double per_image = 0.0;
  if (gpu_path) {
    if (decode_factor > 0.0) {
      // LZW-class containers have no hardware decode path — they fall
      // back to a slower kernel (×3 on top of the format factor).
      const double rate = stats.format == ImageFormat::kAtif
                              ? rates.gpu_decode_pixels_per_s / 3.0
                              : rates.gpu_decode_pixels_per_s;
      per_image += stats.mean_pixels * decode_factor / rate;
    }
    if (stats.needs_perspective) {
      per_image += stats.mean_pixels / rates.gpu_warp_pixels_per_s;
    }
    per_image += out_elems / rates.gpu_transform_elems_per_s;
    per_image += rates.gpu_fixed_per_image_s;
    est.latency_s =
        rates.gpu_batch_overhead_s + per_image * static_cast<double>(batch);
  } else {
    if (decode_factor > 0.0) {
      per_image += stats.mean_pixels * decode_factor / rates.cpu_decode_pixels_per_s;
    }
    const bool warp =
        stats.needs_perspective || method == PreprocMethod::kCv2;
    if (warp) {
      per_image += stats.mean_pixels / rates.cpu_warp_pixels_per_s;
    }
    // Resize reads the input once and writes the output once.
    per_image += (stats.mean_pixels * 3.0 + out_elems) /
                 rates.cpu_transform_elems_per_s;
    per_image += rates.cpu_fixed_per_image_s;
    est.latency_s = per_image * static_cast<double>(batch);
  }
  est.throughput_img_per_s = static_cast<double>(batch) / est.latency_s;
  // Pinned buffers: decoded image + output tensor per slot, double
  // buffered so the next batch can stage while this one is consumed.
  est.pool_bytes = 2.0 * static_cast<double>(batch) *
                   (stats.mean_pixels * 3.0 + out_elems * 4.0);
  return est;
}

}  // namespace harvest::preproc
