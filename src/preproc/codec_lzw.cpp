#include <cstring>
#include <unordered_map>

#include "preproc/codec.hpp"

namespace harvest::preproc {
namespace {

// "ATIF" — Ag-TIFF: an LZW-compressed raster container standing in for
// TIFF/LZW (the Corn Growth Stage UAS imagery format). Header: magic,
// width/height (i64 LE), then an LZW stream of fixed 16-bit codes with
// dictionary reset when the table fills — the scheme TIFF's LZW tag
// uses, with fixed-width codes instead of variable-width for a simpler,
// exactly-synchronized encoder/decoder pair.
//
// Synchronization argument: both sides perform one table-add per
// emitted/consumed code after the first, so add #k happens at the same
// stream position on both sides; when the table is full both sides skip
// that add and reset instead. The first code after a reset is always a
// literal (< 256), which expands identically under the old and new
// tables, so the decoder may safely reset one read later than the
// encoder's emit position.

constexpr char kMagic[4] = {'A', 'T', 'I', 'F'};
constexpr std::uint32_t kTableLimit = 1u << 16;
constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

void put_code(std::vector<std::uint8_t>& out, std::uint32_t code) {
  out.push_back(static_cast<std::uint8_t>(code & 0xFF));
  out.push_back(static_cast<std::uint8_t>((code >> 8) & 0xFF));
}

void lzw_compress(const std::uint8_t* data, std::size_t size,
                  std::vector<std::uint8_t>& out) {
  std::unordered_map<std::uint64_t, std::uint32_t> table;
  table.reserve(1 << 15);
  std::uint32_t next_code = 256;
  std::uint32_t current = kInvalid;

  for (std::size_t i = 0; i < size; ++i) {
    const std::uint8_t byte = data[i];
    if (current == kInvalid) {
      current = byte;
      continue;
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(current) << 8) | byte;
    const auto it = table.find(key);
    if (it != table.end()) {
      current = it->second;
      continue;
    }
    put_code(out, current);
    if (next_code < kTableLimit) {
      table.emplace(key, next_code++);
    } else {
      table.clear();
      next_code = 256;
    }
    current = byte;
  }
  if (current != kInvalid) put_code(out, current);
}

bool lzw_decompress(const std::uint8_t* data, std::size_t size,
                    std::uint8_t* out, std::size_t out_size) {
  if (out_size == 0) return size == 0;
  if (size % 2 != 0) return false;

  struct Entry {
    std::uint32_t prefix;  ///< kInvalid terminates the chain
    std::uint8_t byte;
  };
  std::vector<Entry> table;
  auto reset_table = [&table] {
    table.clear();
    table.reserve(kTableLimit);
    for (std::uint32_t i = 0; i < 256; ++i) {
      table.push_back({kInvalid, static_cast<std::uint8_t>(i)});
    }
  };
  reset_table();

  std::size_t pos = 0;
  auto read_code = [&](std::uint32_t& code) {
    if (pos + 2 > size) return false;
    code = static_cast<std::uint32_t>(data[pos]) |
           (static_cast<std::uint32_t>(data[pos + 1]) << 8);
    pos += 2;
    return true;
  };

  std::size_t written = 0;
  std::vector<std::uint8_t> scratch;
  scratch.reserve(1024);
  // Expands `code` into `scratch` (reversed chain, then emitted forward).
  auto emit = [&](std::uint32_t code) -> bool {
    scratch.clear();
    while (code != kInvalid) {
      if (code >= table.size()) return false;
      scratch.push_back(table[code].byte);
      code = table[code].prefix;
    }
    if (written + scratch.size() > out_size) return false;
    for (std::size_t i = scratch.size(); i > 0; --i) {
      out[written++] = scratch[i - 1];
    }
    return true;
  };

  std::uint32_t prev = kInvalid;
  while (written < out_size) {
    std::uint32_t code = 0;
    if (!read_code(code)) return false;

    std::size_t entry_start = written;
    if (code < table.size()) {
      if (!emit(code)) return false;
    } else if (code == table.size() && prev != kInvalid) {
      // KwKwK: string(prev) + first(string(prev)).
      if (!emit(prev)) return false;
      if (written >= out_size) return false;
      out[written] = out[entry_start];
      ++written;
    } else {
      return false;
    }

    if (table.size() >= kTableLimit) {
      // Mirror the encoder's skipped-add reset. `code` here is the first
      // post-reset code and is guaranteed to be a literal.
      reset_table();
      if (code >= 256) return false;
    } else if (prev != kInvalid) {
      table.push_back({prev, out[entry_start]});
    }
    prev = code;
  }
  return pos == size;
}

}  // namespace

std::vector<std::uint8_t> encode_atif(const Image& image) {
  std::vector<std::uint8_t> out(20);
  std::memcpy(out.data(), kMagic, 4);
  const std::int64_t w = image.width();
  const std::int64_t h = image.height();
  std::memcpy(out.data() + 4, &w, 8);
  std::memcpy(out.data() + 12, &h, 8);
  lzw_compress(image.data(), image.byte_size(), out);
  return out;
}

core::Result<Image> decode_atif(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 20 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return core::Status::invalid_argument("not an ATIF container");
  }
  std::int64_t w = 0;
  std::int64_t h = 0;
  std::memcpy(&w, bytes.data() + 4, 8);
  std::memcpy(&h, bytes.data() + 12, 8);
  if (w <= 0 || h <= 0 || w > 1 << 20 || h > 1 << 20) {
    return core::Status::invalid_argument("bad ATIF geometry");
  }
  Image img(w, h, 3);
  if (!lzw_decompress(bytes.data() + 20, bytes.size() - 20, img.data(),
                      img.byte_size())) {
    return core::Status::invalid_argument("corrupt ATIF stream");
  }
  return img;
}

}  // namespace harvest::preproc
