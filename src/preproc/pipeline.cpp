#include "preproc/pipeline.hpp"

#include <atomic>

namespace harvest::preproc {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

const char* preproc_method_name(PreprocMethod method) {
  switch (method) {
    case PreprocMethod::kDali224: return "DALI 224";
    case PreprocMethod::kDali96: return "DALI 96";
    case PreprocMethod::kDali32: return "DALI 32";
    case PreprocMethod::kPyTorch: return "PyTorch";
    case PreprocMethod::kCv2: return "CV2";
  }
  return "?";
}

std::int64_t preproc_output_size(PreprocMethod method,
                                 std::int64_t model_input) {
  switch (method) {
    case PreprocMethod::kDali224: return 224;
    case PreprocMethod::kDali96: return 96;
    case PreprocMethod::kDali32: return 32;
    case PreprocMethod::kPyTorch:
    case PreprocMethod::kCv2: return model_input;
  }
  return model_input;
}

core::Status preprocess_into(const EncodedImage& encoded,
                             const PreprocSpec& spec, Tensor& dst,
                             std::int64_t slot) {
  auto decoded = decode_image(encoded);
  if (!decoded.is_ok()) return decoded.status();
  Image image = std::move(decoded).value();

  if (spec.perspective) {
    const Homography h = crsa_rectification(image.width(), image.height());
    auto warped = perspective_warp(image, h, image.width(), image.height());
    if (!warped.is_ok()) return warped.status();
    image = std::move(warped).value();
  }
  if (image.width() != spec.output_size || image.height() != spec.output_size) {
    image = resize(image, spec.output_size, spec.output_size);
  }
  normalize_into(image, spec.norm, dst, slot);
  return core::Status::ok();
}

namespace {

Tensor make_batch_tensor(std::size_t n, const PreprocSpec& spec) {
  return Tensor(Shape{static_cast<std::int64_t>(n), 3, spec.output_size,
                      spec.output_size},
                DType::kF32);
}

}  // namespace

core::Result<Tensor> CpuPipeline::run(std::span<const EncodedImage> inputs,
                                      const PreprocSpec& spec) {
  if (inputs.empty()) return core::Status::invalid_argument("empty batch");
  Tensor batch = make_batch_tensor(inputs.size(), spec);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    core::Status st = preprocess_into(inputs[i], spec, batch,
                                      static_cast<std::int64_t>(i));
    if (!st.is_ok()) return st;
  }
  return batch;
}

core::Result<Tensor> Cv2Pipeline::run(std::span<const EncodedImage> inputs,
                                      const PreprocSpec& spec) {
  if (inputs.empty()) return core::Status::invalid_argument("empty batch");
  PreprocSpec with_warp = spec;
  with_warp.perspective = true;
  Tensor batch = make_batch_tensor(inputs.size(), with_warp);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    core::Status st = preprocess_into(inputs[i], with_warp, batch,
                                      static_cast<std::int64_t>(i));
    if (!st.is_ok()) return st;
  }
  return batch;
}

core::Result<Tensor> DaliPipeline::run(std::span<const EncodedImage> inputs,
                                       const PreprocSpec& spec) {
  if (inputs.empty()) return core::Status::invalid_argument("empty batch");
  Tensor batch = make_batch_tensor(inputs.size(), spec);
  // One slot per image; failures are collected without data races and
  // the first failing status wins deterministically (lowest index).
  std::vector<core::Status> statuses(inputs.size());
  pool_->parallel_for(0, inputs.size(), [&](std::size_t i) {
    statuses[i] = preprocess_into(inputs[i], spec, batch,
                                  static_cast<std::int64_t>(i));
  });
  for (const core::Status& st : statuses) {
    if (!st.is_ok()) return st;
  }
  return batch;
}

}  // namespace harvest::preproc
