#pragma once

/// \file pipeline.hpp
/// Preprocessing executors. Three concrete pipelines mirror the
/// frameworks evaluated in §4.2 of the paper:
///
///   * `CpuPipeline`  — torchvision-style: one image at a time on the
///     CPU (the paper's "PyTorch @BS1" baseline).
///   * `Cv2Pipeline`  — OpenCV-style CPU path that adds the perspective
///     rectification the CRSA camera feed needs ("CV2 @BS1").
///   * `DaliPipeline` — DALI-style batched executor: decodes and
///     transforms a whole batch in parallel on a thread pool and fills
///     one contiguous output tensor ("DALI <res> @BS64").
///
/// All three produce the same model-ready [N, 3, S, S] f32 tensor, so
/// they are interchangeable inside the serving backend.

#include <span>
#include <string>

#include "core/thread_pool.hpp"
#include "preproc/codec.hpp"
#include "preproc/transforms.hpp"
#include "tensor/tensor.hpp"

namespace harvest::preproc {

/// Which preprocessing framework/output combination to run — the method
/// axis of Fig. 7.
enum class PreprocMethod { kDali224, kDali96, kDali32, kPyTorch, kCv2 };

const char* preproc_method_name(PreprocMethod method);

/// Output resolution of a method (kPyTorch/kCv2 use the model's input
/// size, passed as `model_input`).
std::int64_t preproc_output_size(PreprocMethod method, std::int64_t model_input);

/// What a model family requires of its inputs (§3.2: "each model family
/// is paired with its own preprocessing method").
struct PreprocSpec {
  std::int64_t output_size = 224;
  Normalization norm;
  /// Dataset-specific stage: apply the CRSA inverse-perspective mapping
  /// before resizing (ground-vehicle camera feeds).
  bool perspective = false;
};

class PreprocPipeline {
 public:
  virtual ~PreprocPipeline() = default;
  virtual const std::string& name() const = 0;

  /// Decode + transform `inputs` into one [N, 3, S, S] tensor.
  virtual core::Result<tensor::Tensor> run(
      std::span<const EncodedImage> inputs, const PreprocSpec& spec) = 0;
};

/// Sequential per-image CPU pipeline (torchvision-like).
class CpuPipeline final : public PreprocPipeline {
 public:
  const std::string& name() const override { return name_; }
  core::Result<tensor::Tensor> run(std::span<const EncodedImage> inputs,
                                   const PreprocSpec& spec) override;

 private:
  std::string name_ = "pytorch-cpu";
};

/// CPU pipeline with mandatory perspective rectification (OpenCV-like).
class Cv2Pipeline final : public PreprocPipeline {
 public:
  const std::string& name() const override { return name_; }
  core::Result<tensor::Tensor> run(std::span<const EncodedImage> inputs,
                                   const PreprocSpec& spec) override;

 private:
  std::string name_ = "cv2-cpu";
};

/// Batched, thread-parallel pipeline (DALI-like). Does not own the pool.
class DaliPipeline final : public PreprocPipeline {
 public:
  explicit DaliPipeline(core::ThreadPool& pool) : pool_(&pool) {}
  const std::string& name() const override { return name_; }
  core::Result<tensor::Tensor> run(std::span<const EncodedImage> inputs,
                                   const PreprocSpec& spec) override;

 private:
  std::string name_ = "dali-batched";
  core::ThreadPool* pool_;
};

/// Shared single-image path: decode → optional perspective → resize →
/// normalize into `dst[slot]`.
core::Status preprocess_into(const EncodedImage& encoded,
                             const PreprocSpec& spec, tensor::Tensor& dst,
                             std::int64_t slot);

}  // namespace harvest::preproc
