#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "preproc/codec.hpp"

namespace harvest::preproc {
namespace {

// "AgJPEG" — a real lossy transform codec with the same pipeline shape
// (and therefore the same cost scaling) as baseline JPEG:
//   RGB → YCbCr → per-channel 8×8 blocks → 2-D DCT → quantize →
//   zigzag → zero-run-length + signed-varint entropy coding.
// 4:4:4 sampling (no chroma subsampling) keeps the block geometry
// uniform. Decode reverses every stage; round-trip error is bounded by
// the quantization step (tested in codec_test.cpp).

constexpr char kMagic[4] = {'A', 'G', 'J', 'P'};
constexpr int kBlock = 8;
constexpr std::uint8_t kEndOfBlock = 0xFF;

// ITU-T T.81 Annex K luminance quantization table.
constexpr std::array<int, 64> kBaseQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,
    12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,
    14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,
    24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

std::array<int, 64> scaled_quant(int quality) {
  quality = std::clamp(quality, 1, 100);
  // libjpeg quality scaling.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> q{};
  for (int i = 0; i < 64; ++i) {
    q[static_cast<std::size_t>(i)] = std::clamp(
        (kBaseQuant[static_cast<std::size_t>(i)] * scale + 50) / 100, 1, 255);
  }
  return q;
}

const std::array<std::array<double, kBlock>, kBlock>& dct_cos_table() {
  static const auto table = [] {
    std::array<std::array<double, kBlock>, kBlock> t{};
    for (int k = 0; k < kBlock; ++k) {
      for (int n = 0; n < kBlock; ++n) {
        t[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)] =
            std::cos((2.0 * n + 1.0) * k * M_PI / (2.0 * kBlock));
      }
    }
    return t;
  }();
  return table;
}

void dct_2d(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  const auto& c = dct_cos_table();
  double tmp[kBlock][kBlock];
  // Rows then columns (separable DCT-II with orthonormal scaling).
  for (int y = 0; y < kBlock; ++y) {
    for (int k = 0; k < kBlock; ++k) {
      double acc = 0.0;
      for (int n = 0; n < kBlock; ++n) {
        acc += in[y][n] * c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)];
      }
      tmp[y][k] = acc * (k == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock));
    }
  }
  for (int x = 0; x < kBlock; ++x) {
    for (int k = 0; k < kBlock; ++k) {
      double acc = 0.0;
      for (int n = 0; n < kBlock; ++n) {
        acc += tmp[n][x] * c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)];
      }
      out[k][x] = acc * (k == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock));
    }
  }
}

void idct_2d(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  const auto& c = dct_cos_table();
  double tmp[kBlock][kBlock];
  for (int x = 0; x < kBlock; ++x) {
    for (int n = 0; n < kBlock; ++n) {
      double acc = 0.0;
      for (int k = 0; k < kBlock; ++k) {
        const double scale =
            k == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
        acc += scale * in[k][x] *
               c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)];
      }
      tmp[n][x] = acc;
    }
  }
  for (int y = 0; y < kBlock; ++y) {
    for (int n = 0; n < kBlock; ++n) {
      double acc = 0.0;
      for (int k = 0; k < kBlock; ++k) {
        const double scale =
            k == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
        acc += scale * tmp[y][k] *
               c[static_cast<std::size_t>(k)][static_cast<std::size_t>(n)];
      }
      out[y][n] = acc;
    }
  }
}

void append_varint(std::vector<std::uint8_t>& out, int value) {
  // Zigzag-map sign then LEB128.
  std::uint32_t encoded =
      value >= 0 ? static_cast<std::uint32_t>(value) << 1
                 : (static_cast<std::uint32_t>(-(value + 1)) << 1) | 1;
  while (encoded >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(encoded) | 0x80);
    encoded >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(encoded));
}

bool read_varint(const std::vector<std::uint8_t>& bytes, std::size_t& pos,
                 int& value) {
  std::uint32_t encoded = 0;
  int shift = 0;
  while (pos < bytes.size()) {
    const std::uint8_t b = bytes[pos++];
    encoded |= static_cast<std::uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      value = (encoded & 1) != 0
                  ? -static_cast<int>(encoded >> 1) - 1
                  : static_cast<int>(encoded >> 1);
      return true;
    }
    shift += 7;
    if (shift > 28) return false;
  }
  return false;
}

void rgb_to_ycbcr(double r, double g, double b, double& y, double& cb,
                  double& cr) {
  y = 0.299 * r + 0.587 * g + 0.114 * b;
  cb = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0;
  cr = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0;
}

void ycbcr_to_rgb(double y, double cb, double cr, double& r, double& g,
                  double& b) {
  r = y + 1.402 * (cr - 128.0);
  g = y - 0.344136 * (cb - 128.0) - 0.714136 * (cr - 128.0);
  b = y + 1.772 * (cb - 128.0);
}

}  // namespace

std::vector<std::uint8_t> encode_agjpeg(const Image& image, int quality) {
  HARVEST_CHECK_MSG(image.channels() == 3, "AgJPEG expects RGB");
  const std::int64_t w = image.width();
  const std::int64_t h = image.height();
  const std::int64_t bw = (w + kBlock - 1) / kBlock;
  const std::int64_t bh = (h + kBlock - 1) / kBlock;
  const auto quant = scaled_quant(quality);

  std::vector<std::uint8_t> out(21);
  std::memcpy(out.data(), kMagic, 4);
  std::memcpy(out.data() + 4, &w, 8);
  std::memcpy(out.data() + 12, &h, 8);
  out[20] = static_cast<std::uint8_t>(std::clamp(quality, 1, 100));

  double block[kBlock][kBlock];
  double coeffs[kBlock][kBlock];
  // Channel-major: all Y blocks, then Cb, then Cr (decode mirrors this).
  for (int channel = 0; channel < 3; ++channel) {
    for (std::int64_t by = 0; by < bh; ++by) {
      for (std::int64_t bx = 0; bx < bw; ++bx) {
        for (int y = 0; y < kBlock; ++y) {
          for (int x = 0; x < kBlock; ++x) {
            // Clamp-to-edge padding.
            const std::int64_t sx = std::min(bx * kBlock + x, w - 1);
            const std::int64_t sy = std::min(by * kBlock + y, h - 1);
            double yy;
            double cb;
            double cr;
            rgb_to_ycbcr(image.at(sx, sy, 0), image.at(sx, sy, 1),
                         image.at(sx, sy, 2), yy, cb, cr);
            const double value = channel == 0 ? yy : (channel == 1 ? cb : cr);
            block[y][x] = value - 128.0;
          }
        }
        dct_2d(block, coeffs);
        // Quantize in zigzag order, then run-length encode zeros.
        int run = 0;
        for (int i = 0; i < 64; ++i) {
          const int pos = kZigzag[static_cast<std::size_t>(i)];
          const int q = quant[static_cast<std::size_t>(pos)];
          const int level = static_cast<int>(
              std::lround(coeffs[pos / kBlock][pos % kBlock] / q));
          if (level == 0) {
            ++run;
            continue;
          }
          // run ≤ 63 always (64 coefficients per block), so a single
          // (run, level) pair suffices.
          out.push_back(static_cast<std::uint8_t>(run));
          append_varint(out, level);
          run = 0;
        }
        out.push_back(kEndOfBlock);
      }
    }
  }
  return out;
}

core::Result<Image> decode_agjpeg(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 21 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return core::Status::invalid_argument("not an AgJPEG stream");
  }
  std::int64_t w = 0;
  std::int64_t h = 0;
  std::memcpy(&w, bytes.data() + 4, 8);
  std::memcpy(&h, bytes.data() + 12, 8);
  const int quality = bytes[20];
  if (w <= 0 || h <= 0 || w > 1 << 20 || h > 1 << 20 || quality < 1 ||
      quality > 100) {
    return core::Status::invalid_argument("bad AgJPEG header");
  }
  const std::int64_t bw = (w + kBlock - 1) / kBlock;
  const std::int64_t bh = (h + kBlock - 1) / kBlock;
  const auto quant = scaled_quant(quality);

  // Reconstruct planar YCbCr, then convert to RGB at the end.
  std::vector<double> planes(static_cast<std::size_t>(3 * w * h), 0.0);
  std::size_t pos = 21;
  double coeffs[kBlock][kBlock];
  double block[kBlock][kBlock];

  for (int channel = 0; channel < 3; ++channel) {
    double* plane = planes.data() + static_cast<std::size_t>(channel * w * h);
    for (std::int64_t by = 0; by < bh; ++by) {
      for (std::int64_t bx = 0; bx < bw; ++bx) {
        std::memset(coeffs, 0, sizeof(coeffs));
        int index = 0;
        for (;;) {
          if (pos >= bytes.size()) {
            return core::Status::invalid_argument("truncated AgJPEG block");
          }
          const std::uint8_t run = bytes[pos++];
          if (run == kEndOfBlock) break;
          int level = 0;
          if (!read_varint(bytes, pos, level)) {
            return core::Status::invalid_argument("corrupt AgJPEG varint");
          }
          index += run;
          if (index >= 64) {
            return core::Status::invalid_argument("AgJPEG coefficient overflow");
          }
          const int zz = kZigzag[static_cast<std::size_t>(index)];
          coeffs[zz / kBlock][zz % kBlock] =
              static_cast<double>(level) *
              quant[static_cast<std::size_t>(zz)];
          ++index;
        }
        idct_2d(coeffs, block);
        for (int y = 0; y < kBlock; ++y) {
          const std::int64_t sy = by * kBlock + y;
          if (sy >= h) break;
          for (int x = 0; x < kBlock; ++x) {
            const std::int64_t sx = bx * kBlock + x;
            if (sx >= w) break;
            plane[sy * w + sx] = block[y][x] + 128.0;
          }
        }
      }
    }
  }
  if (pos != bytes.size()) {
    return core::Status::invalid_argument("trailing bytes in AgJPEG stream");
  }

  Image img(w, h, 3);
  const double* py = planes.data();
  const double* pcb = planes.data() + static_cast<std::size_t>(w * h);
  const double* pcr = planes.data() + static_cast<std::size_t>(2 * w * h);
  for (std::int64_t i = 0; i < w * h; ++i) {
    double r;
    double g;
    double b;
    ycbcr_to_rgb(py[i], pcb[i], pcr[i], r, g, b);
    img.data()[i * 3 + 0] = static_cast<std::uint8_t>(std::clamp(r, 0.0, 255.0));
    img.data()[i * 3 + 1] = static_cast<std::uint8_t>(std::clamp(g, 0.0, 255.0));
    img.data()[i * 3 + 2] = static_cast<std::uint8_t>(std::clamp(b, 0.0, 255.0));
  }
  return img;
}

}  // namespace harvest::preproc
