#include "preproc/image.hpp"

#include <algorithm>
#include <cmath>

namespace harvest::preproc {
namespace {

/// Smooth value-noise helper: bilinear interpolation over a coarse
/// lattice of hashed values; cheap and fully deterministic.
double value_noise(std::uint64_t seed, double x, double y) {
  const auto x0 = static_cast<std::int64_t>(std::floor(x));
  const auto y0 = static_cast<std::int64_t>(std::floor(y));
  auto lattice = [seed](std::int64_t ix, std::int64_t iy) {
    const std::uint64_t h = core::splitmix64(
        seed ^ (static_cast<std::uint64_t>(ix) * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<std::uint64_t>(iy) * 0xC2B2AE3D27D4EB4FULL));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  };
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  const double top = lattice(x0, y0) * (1 - fx) + lattice(x0 + 1, y0) * fx;
  const double bottom =
      lattice(x0, y0 + 1) * (1 - fx) + lattice(x0 + 1, y0 + 1) * fx;
  return top * (1 - fy) + bottom * fy;
}

}  // namespace

Image synthesize_field_image(std::int64_t width, std::int64_t height,
                             std::uint64_t seed) {
  Image img(width, height, 3);
  core::Rng rng(seed);

  // Blob centres standing in for plants / residue patches.
  const int blob_count = 4 + static_cast<int>(rng.uniform_int(0, 5));
  struct Blob {
    double x, y, radius, greenness;
  };
  std::vector<Blob> blobs;
  blobs.reserve(static_cast<std::size_t>(blob_count));
  for (int i = 0; i < blob_count; ++i) {
    blobs.push_back({rng.uniform(0.0, static_cast<double>(width)),
                     rng.uniform(0.0, static_cast<double>(height)),
                     rng.uniform(0.08, 0.25) * static_cast<double>(width),
                     rng.uniform(0.4, 1.0)});
  }

  const double noise_scale = 12.0 / static_cast<double>(std::max<std::int64_t>(
                                        width, 1));
  for (std::int64_t y = 0; y < height; ++y) {
    for (std::int64_t x = 0; x < width; ++x) {
      const double n = value_noise(seed, static_cast<double>(x) * noise_scale,
                                   static_cast<double>(y) * noise_scale);
      // Soil base tone modulated by noise.
      double r = 110.0 + 50.0 * n;
      double g = 85.0 + 40.0 * n;
      double b = 60.0 + 30.0 * n;
      // Vegetation blobs push toward green.
      for (const Blob& blob : blobs) {
        const double dx = static_cast<double>(x) - blob.x;
        const double dy = static_cast<double>(y) - blob.y;
        const double d2 = (dx * dx + dy * dy) / (blob.radius * blob.radius);
        if (d2 < 1.0) {
          const double w = (1.0 - d2) * blob.greenness;
          r = r * (1.0 - w) + 40.0 * w;
          g = g * (1.0 - w) + 150.0 * w;
          b = b * (1.0 - w) + 45.0 * w;
        }
      }
      // Mild sensor noise.
      const double jitter = 4.0 * (rng.next_double() - 0.5);
      img.at(x, y, 0) = static_cast<std::uint8_t>(std::clamp(r + jitter, 0.0, 255.0));
      img.at(x, y, 1) = static_cast<std::uint8_t>(std::clamp(g + jitter, 0.0, 255.0));
      img.at(x, y, 2) = static_cast<std::uint8_t>(std::clamp(b + jitter, 0.0, 255.0));
    }
  }
  return img;
}

double mean_abs_diff(const Image& a, const Image& b) {
  HARVEST_CHECK_MSG(a.same_dims(b), "images must match in size");
  const std::uint8_t* pa = a.data();
  const std::uint8_t* pb = b.data();
  double acc = 0.0;
  for (std::size_t i = 0; i < a.byte_size(); ++i) {
    acc += std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i]));
  }
  return a.byte_size() > 0 ? acc / static_cast<double>(a.byte_size()) : 0.0;
}

}  // namespace harvest::preproc
