#include <cctype>
#include <cstring>

#include "preproc/codec.hpp"

namespace harvest::preproc {

// PPM "P6": ASCII header (magic, width, height, maxval) + raw RGB bytes.

std::vector<std::uint8_t> encode_ppm(const Image& image) {
  HARVEST_CHECK_MSG(image.channels() == 3, "PPM supports 3-channel images");
  std::string header = "P6\n" + std::to_string(image.width()) + " " +
                       std::to_string(image.height()) + "\n255\n";
  std::vector<std::uint8_t> out(header.size() + image.byte_size());
  std::memcpy(out.data(), header.data(), header.size());
  std::memcpy(out.data() + header.size(), image.data(), image.byte_size());
  return out;
}

namespace {

/// Parse an ASCII unsigned integer, skipping whitespace and `#` comments.
bool parse_ppm_int(const std::vector<std::uint8_t>& bytes, std::size_t& pos,
                   std::int64_t& value) {
  while (pos < bytes.size()) {
    const char c = static_cast<char>(bytes[pos]);
    if (c == '#') {
      while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++pos;
    } else {
      break;
    }
  }
  if (pos >= bytes.size() ||
      std::isdigit(static_cast<unsigned char>(bytes[pos])) == 0) {
    return false;
  }
  value = 0;
  while (pos < bytes.size() &&
         std::isdigit(static_cast<unsigned char>(bytes[pos])) != 0) {
    value = value * 10 + (bytes[pos] - '0');
    if (value > 1'000'000'000) return false;
    ++pos;
  }
  return true;
}

}  // namespace

core::Result<Image> decode_ppm(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 2 || bytes[0] != 'P' || bytes[1] != '6') {
    return core::Status::invalid_argument("not a P6 PPM");
  }
  std::size_t pos = 2;
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::int64_t maxval = 0;
  if (!parse_ppm_int(bytes, pos, width) || !parse_ppm_int(bytes, pos, height) ||
      !parse_ppm_int(bytes, pos, maxval)) {
    return core::Status::invalid_argument("corrupt PPM header");
  }
  if (width <= 0 || height <= 0 || maxval != 255) {
    return core::Status::invalid_argument("unsupported PPM geometry");
  }
  ++pos;  // single whitespace after maxval
  const std::size_t expected = static_cast<std::size_t>(width * height * 3);
  if (bytes.size() < pos + expected) {
    return core::Status::invalid_argument("truncated PPM payload");
  }
  Image img(width, height, 3);
  std::memcpy(img.data(), bytes.data() + pos, expected);
  return img;
}

}  // namespace harvest::preproc
