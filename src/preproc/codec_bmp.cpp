#include <cstring>

#include "preproc/codec.hpp"

namespace harvest::preproc {
namespace {

// 24-bit uncompressed BMP: 14-byte file header + 40-byte BITMAPINFOHEADER,
// bottom-up rows padded to 4-byte boundaries, BGR order.

constexpr std::size_t kFileHeaderSize = 14;
constexpr std::size_t kInfoHeaderSize = 40;

void put_u16(std::vector<std::uint8_t>& out, std::size_t pos, std::uint16_t v) {
  out[pos] = static_cast<std::uint8_t>(v & 0xFF);
  out[pos + 1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& bytes, std::size_t pos) {
  return static_cast<std::uint16_t>(bytes[pos] | (bytes[pos + 1] << 8));
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& bytes, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | bytes[pos + static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_bmp(const Image& image) {
  HARVEST_CHECK_MSG(image.channels() == 3, "BMP encoder expects RGB");
  const std::int64_t w = image.width();
  const std::int64_t h = image.height();
  const std::size_t row_bytes = (static_cast<std::size_t>(w) * 3 + 3) & ~3ULL;
  const std::size_t payload = row_bytes * static_cast<std::size_t>(h);
  std::vector<std::uint8_t> out(kFileHeaderSize + kInfoHeaderSize + payload, 0);

  out[0] = 'B';
  out[1] = 'M';
  put_u32(out, 2, static_cast<std::uint32_t>(out.size()));
  put_u32(out, 10, kFileHeaderSize + kInfoHeaderSize);
  put_u32(out, 14, kInfoHeaderSize);
  put_u32(out, 18, static_cast<std::uint32_t>(w));
  put_u32(out, 22, static_cast<std::uint32_t>(h));
  put_u16(out, 26, 1);   // planes
  put_u16(out, 28, 24);  // bpp
  put_u32(out, 34, static_cast<std::uint32_t>(payload));

  std::uint8_t* rows = out.data() + kFileHeaderSize + kInfoHeaderSize;
  for (std::int64_t y = 0; y < h; ++y) {
    std::uint8_t* dst = rows + static_cast<std::size_t>(h - 1 - y) * row_bytes;
    for (std::int64_t x = 0; x < w; ++x) {
      dst[x * 3 + 0] = image.at(x, y, 2);  // B
      dst[x * 3 + 1] = image.at(x, y, 1);  // G
      dst[x * 3 + 2] = image.at(x, y, 0);  // R
    }
  }
  return out;
}

core::Result<Image> decode_bmp(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFileHeaderSize + kInfoHeaderSize || bytes[0] != 'B' ||
      bytes[1] != 'M') {
    return core::Status::invalid_argument("not a BMP");
  }
  const std::uint32_t data_offset = get_u32(bytes, 10);
  const std::int64_t w = static_cast<std::int32_t>(get_u32(bytes, 18));
  const std::int64_t h = static_cast<std::int32_t>(get_u32(bytes, 22));
  const std::uint16_t bpp = get_u16(bytes, 28);
  if (w <= 0 || h <= 0 || bpp != 24) {
    return core::Status::invalid_argument("unsupported BMP variant");
  }
  const std::size_t row_bytes = (static_cast<std::size_t>(w) * 3 + 3) & ~3ULL;
  if (bytes.size() < data_offset + row_bytes * static_cast<std::size_t>(h)) {
    return core::Status::invalid_argument("truncated BMP payload");
  }
  Image img(w, h, 3);
  const std::uint8_t* rows = bytes.data() + data_offset;
  for (std::int64_t y = 0; y < h; ++y) {
    const std::uint8_t* src =
        rows + static_cast<std::size_t>(h - 1 - y) * row_bytes;
    for (std::int64_t x = 0; x < w; ++x) {
      img.at(x, y, 0) = src[x * 3 + 2];
      img.at(x, y, 1) = src[x * 3 + 1];
      img.at(x, y, 2) = src[x * 3 + 0];
    }
  }
  return img;
}

std::vector<std::uint8_t> encode_raw(const Image& image) {
  // 16-byte header (width, height as i64 LE) + interleaved RGB payload —
  // the shape of a camera frame grabbed over CSI/USB.
  std::vector<std::uint8_t> out(16 + image.byte_size());
  const std::int64_t w = image.width();
  const std::int64_t h = image.height();
  std::uint8_t* base = out.data();  // non-null: size >= 16 by construction
  HARVEST_CHECK(base != nullptr);
  std::memcpy(base, &w, 8);
  std::memcpy(base + 8, &h, 8);
  std::memcpy(base + 16, image.data(), image.byte_size());
  return out;
}

core::Result<Image> decode_raw(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 16) return core::Status::invalid_argument("truncated RAW");
  std::int64_t w = 0;
  std::int64_t h = 0;
  std::memcpy(&w, bytes.data(), 8);
  std::memcpy(&h, bytes.data() + 8, 8);
  if (w <= 0 || h <= 0 || w > 1 << 20 || h > 1 << 20) {
    return core::Status::invalid_argument("bad RAW geometry");
  }
  const std::size_t expected = static_cast<std::size_t>(w * h * 3);
  if (bytes.size() < 16 + expected) {
    return core::Status::invalid_argument("truncated RAW payload");
  }
  Image img(w, h, 3);
  std::memcpy(img.data(), bytes.data() + 16, expected);
  return img;
}

}  // namespace harvest::preproc
