#pragma once

/// \file transforms.hpp
/// Image transforms of the preprocessing pipeline (§3.2): resize, crop,
/// pixel-wise normalization to a model-ready planar tensor, and the
/// perspective (homography) warp required by the CRSA ground-vehicle
/// camera feed.

#include <array>

#include "preproc/image.hpp"
#include "tensor/tensor.hpp"

namespace harvest::preproc {

enum class ResizeFilter { kNearest, kBilinear };

/// Resize to (out_w, out_h).
Image resize(const Image& input, std::int64_t out_w, std::int64_t out_h,
             ResizeFilter filter = ResizeFilter::kBilinear);

/// Crop a centered (size × size) square; the image must be at least that
/// large in both dimensions.
Image center_crop(const Image& input, std::int64_t size);

/// Per-channel normalization constants (fractions of full scale, the
/// torchvision convention).
struct Normalization {
  std::array<float, 3> mean = {0.485f, 0.456f, 0.406f};
  std::array<float, 3> stddev = {0.229f, 0.224f, 0.225f};
};

/// Convert HWC u8 [0,255] to planar CHW f32, scaled to [0,1] then
/// normalized: out[c] = (px/255 - mean[c]) / stddev[c]. Output shape
/// [C, H, W].
tensor::Tensor normalize_to_tensor(const Image& input, const Normalization& n);

/// Write the normalized image into `dst` at batch slot `slot`; `dst` must
/// be [N, C, H, W] matching the image geometry. Lets the batched
/// executor fill one contiguous tensor without staging copies.
void normalize_into(const Image& input, const Normalization& n,
                    tensor::Tensor& dst, std::int64_t slot);

/// A 3×3 projective transform mapping source → destination pixels.
class Homography {
 public:
  /// Identity transform.
  Homography();
  explicit Homography(const std::array<double, 9>& coefficients);

  /// Solve the homography that maps the four `src` corners onto the four
  /// `dst` corners (8-DOF DLT with Gaussian elimination). Returns an
  /// invalid-argument status for degenerate quads.
  static core::Result<Homography> from_quad(
      const std::array<std::array<double, 2>, 4>& src,
      const std::array<std::array<double, 2>, 4>& dst);

  /// Apply to a point.
  std::array<double, 2> apply(double x, double y) const;

  /// Inverse transform; fails when the matrix is singular.
  core::Result<Homography> inverse() const;

  const std::array<double, 9>& coefficients() const { return h_; }

 private:
  std::array<double, 9> h_;
};

/// Warp `input` through `h` (dst←src mapping is computed internally from
/// the inverse) into an (out_w × out_h) canvas with bilinear sampling;
/// out-of-bounds samples are black. This is the CRSA "perspective
/// transform" stage.
core::Result<Image> perspective_warp(const Image& input, const Homography& h,
                                     std::int64_t out_w, std::int64_t out_h);

/// The fixed ground-vehicle camera rectification used by the CRSA
/// pipeline: un-distorts the trapezoidal field-of-view of a forward
/// mounted camera into a top-down plot.
Homography crsa_rectification(std::int64_t width, std::int64_t height);

}  // namespace harvest::preproc
