#include "preproc/transforms.hpp"

#include <algorithm>
#include <cmath>

namespace harvest::preproc {

using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

Image resize(const Image& input, std::int64_t out_w, std::int64_t out_h,
             ResizeFilter filter) {
  HARVEST_CHECK_MSG(out_w > 0 && out_h > 0, "resize target must be positive");
  const std::int64_t in_w = input.width();
  const std::int64_t in_h = input.height();
  const std::int64_t channels = input.channels();
  Image out(out_w, out_h, channels);

  const double sx = static_cast<double>(in_w) / static_cast<double>(out_w);
  const double sy = static_cast<double>(in_h) / static_cast<double>(out_h);

  for (std::int64_t y = 0; y < out_h; ++y) {
    // Pixel-center sampling.
    const double src_y = (static_cast<double>(y) + 0.5) * sy - 0.5;
    for (std::int64_t x = 0; x < out_w; ++x) {
      const double src_x = (static_cast<double>(x) + 0.5) * sx - 0.5;
      if (filter == ResizeFilter::kNearest) {
        const std::int64_t ix = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(std::lround(src_x)), 0, in_w - 1);
        const std::int64_t iy = std::clamp<std::int64_t>(
            static_cast<std::int64_t>(std::lround(src_y)), 0, in_h - 1);
        for (std::int64_t c = 0; c < channels; ++c) {
          out.at(x, y, c) = input.at(ix, iy, c);
        }
        continue;
      }
      const double fx = std::clamp(src_x, 0.0, static_cast<double>(in_w - 1));
      const double fy = std::clamp(src_y, 0.0, static_cast<double>(in_h - 1));
      const auto x0 = static_cast<std::int64_t>(fx);
      const auto y0 = static_cast<std::int64_t>(fy);
      const std::int64_t x1 = std::min(x0 + 1, in_w - 1);
      const std::int64_t y1 = std::min(y0 + 1, in_h - 1);
      const double wx = fx - static_cast<double>(x0);
      const double wy = fy - static_cast<double>(y0);
      for (std::int64_t c = 0; c < channels; ++c) {
        const double top = static_cast<double>(input.at(x0, y0, c)) * (1 - wx) +
                           static_cast<double>(input.at(x1, y0, c)) * wx;
        const double bottom =
            static_cast<double>(input.at(x0, y1, c)) * (1 - wx) +
            static_cast<double>(input.at(x1, y1, c)) * wx;
        out.at(x, y, c) = static_cast<std::uint8_t>(
            std::clamp(top * (1 - wy) + bottom * wy + 0.5, 0.0, 255.0));
      }
    }
  }
  return out;
}

Image center_crop(const Image& input, std::int64_t size) {
  HARVEST_CHECK_MSG(input.width() >= size && input.height() >= size,
                    "crop larger than image");
  const std::int64_t x0 = (input.width() - size) / 2;
  const std::int64_t y0 = (input.height() - size) / 2;
  Image out(size, size, input.channels());
  for (std::int64_t y = 0; y < size; ++y) {
    for (std::int64_t x = 0; x < size; ++x) {
      for (std::int64_t c = 0; c < input.channels(); ++c) {
        out.at(x, y, c) = input.at(x0 + x, y0 + y, c);
      }
    }
  }
  return out;
}

Tensor normalize_to_tensor(const Image& input, const Normalization& n) {
  Tensor out(Shape{input.channels(), input.height(), input.width()},
             DType::kF32);
  Tensor batched = std::move(out).reshape(
      Shape{1, input.channels(), input.height(), input.width()});
  normalize_into(input, n, batched, 0);
  return std::move(batched).reshape(
      Shape{input.channels(), input.height(), input.width()});
}

void normalize_into(const Image& input, const Normalization& n, Tensor& dst,
                    std::int64_t slot) {
  const Shape& s = dst.shape();
  HARVEST_CHECK_MSG(s.rank() == 4 && s[1] == input.channels() &&
                        s[2] == input.height() && s[3] == input.width(),
                    "normalize_into geometry mismatch");
  HARVEST_CHECK_MSG(slot >= 0 && slot < s[0], "batch slot out of range");
  const std::int64_t hw = input.height() * input.width();
  float* base = dst.f32() + slot * input.channels() * hw;
  const std::uint8_t* src = input.data();
  for (std::int64_t c = 0; c < input.channels(); ++c) {
    const float mean = n.mean[static_cast<std::size_t>(c % 3)];
    const float inv_std = 1.0f / n.stddev[static_cast<std::size_t>(c % 3)];
    float* plane = base + c * hw;
    for (std::int64_t i = 0; i < hw; ++i) {
      const float v = static_cast<float>(src[i * input.channels() + c]) / 255.0f;
      plane[i] = (v - mean) * inv_std;
    }
  }
}

Homography::Homography() : h_{1, 0, 0, 0, 1, 0, 0, 0, 1} {}

Homography::Homography(const std::array<double, 9>& coefficients)
    : h_(coefficients) {}

std::array<double, 2> Homography::apply(double x, double y) const {
  const double denom = h_[6] * x + h_[7] * y + h_[8];
  const double safe = std::abs(denom) < 1e-12 ? 1e-12 : denom;
  return {(h_[0] * x + h_[1] * y + h_[2]) / safe,
          (h_[3] * x + h_[4] * y + h_[5]) / safe};
}

namespace {

/// Solve a dense n×n system with partial pivoting; false when singular.
bool gaussian_solve(std::vector<double>& a, std::vector<double>& b, int n) {
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int row = col + 1; row < n; ++row) {
      if (std::abs(a[static_cast<std::size_t>(row * n + col)]) >
          std::abs(a[static_cast<std::size_t>(pivot * n + col)])) {
        pivot = row;
      }
    }
    if (std::abs(a[static_cast<std::size_t>(pivot * n + col)]) < 1e-10) {
      return false;
    }
    if (pivot != col) {
      for (int k = 0; k < n; ++k) {
        std::swap(a[static_cast<std::size_t>(col * n + k)],
                  a[static_cast<std::size_t>(pivot * n + k)]);
      }
      std::swap(b[static_cast<std::size_t>(col)],
                b[static_cast<std::size_t>(pivot)]);
    }
    for (int row = col + 1; row < n; ++row) {
      const double factor = a[static_cast<std::size_t>(row * n + col)] /
                            a[static_cast<std::size_t>(col * n + col)];
      for (int k = col; k < n; ++k) {
        a[static_cast<std::size_t>(row * n + k)] -=
            factor * a[static_cast<std::size_t>(col * n + k)];
      }
      b[static_cast<std::size_t>(row)] -= factor * b[static_cast<std::size_t>(col)];
    }
  }
  for (int row = n - 1; row >= 0; --row) {
    double acc = b[static_cast<std::size_t>(row)];
    for (int k = row + 1; k < n; ++k) {
      acc -= a[static_cast<std::size_t>(row * n + k)] * b[static_cast<std::size_t>(k)];
    }
    b[static_cast<std::size_t>(row)] = acc / a[static_cast<std::size_t>(row * n + row)];
  }
  return true;
}

}  // namespace

core::Result<Homography> Homography::from_quad(
    const std::array<std::array<double, 2>, 4>& src,
    const std::array<std::array<double, 2>, 4>& dst) {
  // DLT: h maps src→dst with h8 = 1; 8 equations in 8 unknowns.
  std::vector<double> a(64, 0.0);
  std::vector<double> b(8, 0.0);
  for (int i = 0; i < 4; ++i) {
    const double x = src[static_cast<std::size_t>(i)][0];
    const double y = src[static_cast<std::size_t>(i)][1];
    const double u = dst[static_cast<std::size_t>(i)][0];
    const double v = dst[static_cast<std::size_t>(i)][1];
    double* row_u = a.data() + static_cast<std::size_t>(2 * i) * 8;
    double* row_v = a.data() + static_cast<std::size_t>(2 * i + 1) * 8;
    row_u[0] = x; row_u[1] = y; row_u[2] = 1;
    row_u[6] = -u * x; row_u[7] = -u * y;
    row_v[3] = x; row_v[4] = y; row_v[5] = 1;
    row_v[6] = -v * x; row_v[7] = -v * y;
    b[static_cast<std::size_t>(2 * i)] = u;
    b[static_cast<std::size_t>(2 * i + 1)] = v;
  }
  if (!gaussian_solve(a, b, 8)) {
    return core::Status::invalid_argument("degenerate quad for homography");
  }
  return Homography({b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], 1.0});
}

core::Result<Homography> Homography::inverse() const {
  // Adjugate / determinant of the 3×3 matrix.
  const auto& m = h_;
  const double det = m[0] * (m[4] * m[8] - m[5] * m[7]) -
                     m[1] * (m[3] * m[8] - m[5] * m[6]) +
                     m[2] * (m[3] * m[7] - m[4] * m[6]);
  if (std::abs(det) < 1e-12) {
    return core::Status::invalid_argument("homography is singular");
  }
  const double inv_det = 1.0 / det;
  return Homography({(m[4] * m[8] - m[5] * m[7]) * inv_det,
                     (m[2] * m[7] - m[1] * m[8]) * inv_det,
                     (m[1] * m[5] - m[2] * m[4]) * inv_det,
                     (m[5] * m[6] - m[3] * m[8]) * inv_det,
                     (m[0] * m[8] - m[2] * m[6]) * inv_det,
                     (m[2] * m[3] - m[0] * m[5]) * inv_det,
                     (m[3] * m[7] - m[4] * m[6]) * inv_det,
                     (m[1] * m[6] - m[0] * m[7]) * inv_det,
                     (m[0] * m[4] - m[1] * m[3]) * inv_det});
}

core::Result<Image> perspective_warp(const Image& input, const Homography& h,
                                     std::int64_t out_w, std::int64_t out_h) {
  auto inverse = h.inverse();
  if (!inverse.is_ok()) return inverse.status();
  const Homography& back = inverse.value();

  Image out(out_w, out_h, input.channels());
  const std::int64_t in_w = input.width();
  const std::int64_t in_h = input.height();
  for (std::int64_t y = 0; y < out_h; ++y) {
    for (std::int64_t x = 0; x < out_w; ++x) {
      const auto src =
          back.apply(static_cast<double>(x), static_cast<double>(y));
      const double fx = src[0];
      const double fy = src[1];
      if (fx < 0.0 || fy < 0.0 || fx > static_cast<double>(in_w - 1) ||
          fy > static_cast<double>(in_h - 1)) {
        continue;  // black border
      }
      const auto x0 = static_cast<std::int64_t>(fx);
      const auto y0 = static_cast<std::int64_t>(fy);
      const std::int64_t x1 = std::min(x0 + 1, in_w - 1);
      const std::int64_t y1 = std::min(y0 + 1, in_h - 1);
      const double wx = fx - static_cast<double>(x0);
      const double wy = fy - static_cast<double>(y0);
      for (std::int64_t c = 0; c < input.channels(); ++c) {
        const double top = static_cast<double>(input.at(x0, y0, c)) * (1 - wx) +
                           static_cast<double>(input.at(x1, y0, c)) * wx;
        const double bottom =
            static_cast<double>(input.at(x0, y1, c)) * (1 - wx) +
            static_cast<double>(input.at(x1, y1, c)) * wx;
        out.at(x, y, c) = static_cast<std::uint8_t>(
            std::clamp(top * (1 - wy) + bottom * wy + 0.5, 0.0, 255.0));
      }
    }
  }
  return out;
}

Homography crsa_rectification(std::int64_t width, std::int64_t height) {
  // Forward-mounted camera: the ground plane appears as a trapezoid
  // (narrow at the top of the frame). Map that trapezoid to the full
  // rectangle — the standard inverse-perspective mapping.
  const double w = static_cast<double>(width);
  const double h = static_cast<double>(height);
  const std::array<std::array<double, 2>, 4> src = {{
      {w * 0.30, h * 0.35},  // top-left of trapezoid
      {w * 0.70, h * 0.35},  // top-right
      {w * 1.00, h * 1.00},  // bottom-right
      {w * 0.00, h * 1.00},  // bottom-left
  }};
  const std::array<std::array<double, 2>, 4> dst = {{
      {0.0, 0.0}, {w, 0.0}, {w, h}, {0.0, h}}};
  auto result = Homography::from_quad(src, dst);
  HARVEST_CHECK_MSG(result.is_ok(), "fixed rectification quad is valid");
  return result.value();
}

}  // namespace harvest::preproc
