#include "preproc/codec.hpp"

namespace harvest::preproc {

const char* format_name(ImageFormat format) {
  switch (format) {
    case ImageFormat::kPpm: return "PPM";
    case ImageFormat::kBmp: return "BMP";
    case ImageFormat::kAtif: return "ATIF";
    case ImageFormat::kAgJpeg: return "AgJPEG";
    case ImageFormat::kRaw: return "RAW";
  }
  return "?";
}

EncodedImage encode_image(const Image& image, ImageFormat format, int quality) {
  EncodedImage out;
  out.format = format;
  out.width = image.width();
  out.height = image.height();
  switch (format) {
    case ImageFormat::kPpm: out.bytes = encode_ppm(image); break;
    case ImageFormat::kBmp: out.bytes = encode_bmp(image); break;
    case ImageFormat::kAtif: out.bytes = encode_atif(image); break;
    case ImageFormat::kAgJpeg: out.bytes = encode_agjpeg(image, quality); break;
    case ImageFormat::kRaw: out.bytes = encode_raw(image); break;
  }
  return out;
}

core::Result<Image> decode_image(const EncodedImage& encoded) {
  switch (encoded.format) {
    case ImageFormat::kPpm: return decode_ppm(encoded.bytes);
    case ImageFormat::kBmp: return decode_bmp(encoded.bytes);
    case ImageFormat::kAtif: return decode_atif(encoded.bytes);
    case ImageFormat::kAgJpeg: return decode_agjpeg(encoded.bytes);
    case ImageFormat::kRaw: return decode_raw(encoded.bytes);
  }
  return core::Status::invalid_argument("unknown image format");
}

}  // namespace harvest::preproc
