#pragma once

/// \file image.hpp
/// The raw image type of the preprocessing library: interleaved 8-bit
/// RGB (HWC), the layout cameras and decoders produce. Model-ready
/// tensors (planar CHW f32) are produced by `transforms.hpp`.

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/status.hpp"

namespace harvest::preproc {

class Image {
 public:
  Image() = default;
  Image(std::int64_t width, std::int64_t height, std::int64_t channels = 3)
      : width_(width), height_(height), channels_(channels),
        pixels_(static_cast<std::size_t>(width * height * channels), 0) {
    HARVEST_CHECK_MSG(width > 0 && height > 0 && channels > 0,
                      "image dims must be positive");
  }

  std::int64_t width() const { return width_; }
  std::int64_t height() const { return height_; }
  std::int64_t channels() const { return channels_; }
  std::int64_t pixel_count() const { return width_ * height_; }
  std::size_t byte_size() const { return pixels_.size(); }
  bool empty() const { return pixels_.empty(); }

  std::uint8_t* data() { return pixels_.data(); }
  const std::uint8_t* data() const { return pixels_.data(); }

  /// Channel `c` of pixel (x, y); bounds-checked in debug via at().
  std::uint8_t& at(std::int64_t x, std::int64_t y, std::int64_t c) {
    return pixels_[static_cast<std::size_t>((y * width_ + x) * channels_ + c)];
  }
  std::uint8_t at(std::int64_t x, std::int64_t y, std::int64_t c) const {
    return pixels_[static_cast<std::size_t>((y * width_ + x) * channels_ + c)];
  }

  bool same_dims(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

 private:
  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  std::int64_t channels_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Synthesize a deterministic "field plot" image: low-frequency green /
/// soil gradients plus plant-like blobs and sensor noise. Statistically
/// closer to agricultural imagery than white noise (and, importantly,
/// compressible — the lossy codec behaves realistically on it).
Image synthesize_field_image(std::int64_t width, std::int64_t height,
                             std::uint64_t seed);

/// Mean absolute per-channel difference between two equally sized
/// images; used by codec round-trip tests.
double mean_abs_diff(const Image& a, const Image& b);

}  // namespace harvest::preproc
