#pragma once

/// \file codec.hpp
/// Image container formats of the preprocessing substrate. Each dataset
/// in Table 2 arrives in a specific encoding (the paper attributes the
/// CPU-baseline variance across datasets to "differences in image
/// encoding formats (e.g., TIFF vs JPEG)", §4.2); these codecs make that
/// dimension real:
///
///   * kPpm    — PPM P6, trivial uncompressed container.
///   * kBmp    — 24-bit uncompressed Windows bitmap.
///   * kAtif   — "Ag-TIFF": LZW-compressed raster (lossless, TIFF stand-in).
///   * kAgJpeg — a real lossy DCT codec (8×8 DCT → quantize → zigzag →
///               RLE/varint entropy coding), the JPEG stand-in. Decoding
///               cost scales with pixel count exactly like real JPEG.
///   * kRaw    — camera feed, no container (CRSA frames).

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "preproc/image.hpp"

namespace harvest::preproc {

enum class ImageFormat : std::uint8_t { kPpm, kBmp, kAtif, kAgJpeg, kRaw };

const char* format_name(ImageFormat format);

/// An encoded image plus enough metadata to reason about it without
/// decoding (the dataset generators tag samples with their true size).
struct EncodedImage {
  ImageFormat format = ImageFormat::kRaw;
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::vector<std::uint8_t> bytes;
};

/// Encode with the given container. `quality` only affects kAgJpeg
/// (1 = coarsest quantization, 100 = finest).
EncodedImage encode_image(const Image& image, ImageFormat format,
                          int quality = 85);

/// Decode any supported container (dispatches on `encoded.format`).
core::Result<Image> decode_image(const EncodedImage& encoded);

// Per-format entry points (implemented in codec_*.cpp).
std::vector<std::uint8_t> encode_ppm(const Image& image);
core::Result<Image> decode_ppm(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_bmp(const Image& image);
core::Result<Image> decode_bmp(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_atif(const Image& image);
core::Result<Image> decode_atif(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_agjpeg(const Image& image, int quality);
core::Result<Image> decode_agjpeg(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_raw(const Image& image);
core::Result<Image> decode_raw(const std::vector<std::uint8_t>& bytes);

}  // namespace harvest::preproc
