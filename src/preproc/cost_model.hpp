#pragma once

/// \file cost_model.hpp
/// Device-timed preprocessing cost model — the substitution for running
/// DALI / torchvision / OpenCV on the paper's physical platforms. Stage
/// costs follow the structure §3.2 describes: decode cost scales with
/// input pixels (and container format), transform cost with output
/// elements, the perspective warp with input pixels, plus fixed
/// per-image and per-batch overheads. Per-device rate constants are
/// chosen to land the Fig. 7 magnitudes (see EXPERIMENTS.md) — notably
/// the A100's hardware JPEG engine, which the paper's A100-vs-V100 DALI
/// gap reflects.

#include <cstdint>

#include "platform/device.hpp"
#include "preproc/codec.hpp"
#include "preproc/pipeline.hpp"

namespace harvest::preproc {

/// Aggregate image statistics of a workload (one dataset), enough to
/// price its preprocessing without touching pixel data.
struct WorkloadImageStats {
  double mean_pixels = 0.0;         ///< W·H per image (mean over dataset)
  double mean_encoded_bytes = 0.0;  ///< container size on the wire/disk
  ImageFormat format = ImageFormat::kAgJpeg;
  bool needs_perspective = false;   ///< CRSA dataset-specific stage
};

/// Per-device preprocessing rate constants.
struct PreprocRates {
  // GPU path (DALI-like).
  double gpu_decode_pixels_per_s = 0.0;
  double gpu_transform_elems_per_s = 0.0;  ///< resize+normalize, per output elem
  double gpu_warp_pixels_per_s = 0.0;      ///< perspective, per input pixel
  double gpu_fixed_per_image_s = 0.0;
  double gpu_batch_overhead_s = 0.0;
  // CPU path (torchvision / OpenCV-like), per core at reference speed.
  double cpu_decode_pixels_per_s = 0.0;
  double cpu_transform_elems_per_s = 0.0;
  double cpu_warp_pixels_per_s = 0.0;
  double cpu_fixed_per_image_s = 0.0;
};

/// Rates for one of the modelled platforms.
PreprocRates preproc_rates(const platform::DeviceSpec& device);

struct PreprocEstimate {
  double latency_s = 0.0;            ///< one batch end to end
  double throughput_img_per_s = 0.0;
  double pool_bytes = 0.0;  ///< device memory the pipeline pins (buffers);
                            ///< competes with the engine on unified memory
};

/// Price one preprocessing request of `batch` images of `stats` on
/// `device` with `method`. `model_input` resolves the CPU methods'
/// output resolution.
PreprocEstimate estimate_preproc(const platform::DeviceSpec& device,
                                 const WorkloadImageStats& stats,
                                 PreprocMethod method, std::int64_t batch,
                                 std::int64_t model_input = 224);

/// Relative decode cost of a container (JPEG-class = 1).
double format_decode_factor(ImageFormat format);

}  // namespace harvest::preproc
