#pragma once

/// \file tenant_sim.hpp
/// Deterministic discrete-event simulation of a multi-tenant fleet in
/// simulated time — the scheduling-policy comparison behind the shared
/// worker pool that wall-clock timing on this machine cannot answer
/// honestly at 1000-tenant scale. A fleet of tenants with bursty
/// (on/off modulated Poisson) arrivals shares W workers; batches form
/// per tenant (up to max_batch back-to-back requests) and cost
/// `service_base_s + service_per_item_s × batch`.
///
/// Policies:
///  * kSharedFifo — the pre-multi-tenancy baseline: workers take the
///    globally oldest queued request, no fairness. One hot tenant
///    floods the shared capacity and everyone else queues behind it.
///  * kWfq — the WorkerPool's discipline: start-time weighted fair
///    queueing over tenants (virtual time += batch / weight; idle
///    tenants re-enter at the global virtual clock), name-order
///    deterministic tie-break.
///
/// Everything is a pure function of the config: same config, same
/// report, bit for bit.

#include <cstdint>

namespace harvest::serving {

enum class FleetPolicy : int {
  kSharedFifo = 0,
  kWfq = 1,
};
const char* fleet_policy_name(FleetPolicy policy);

struct TenantSimConfig {
  FleetPolicy policy = FleetPolicy::kWfq;
  std::int64_t tenants = 100;
  std::int64_t workers = 8;
  /// Arrivals are drawn over [0, duration_s); the sim then drains.
  double duration_s = 10.0;
  std::uint64_t seed = 42;
  /// Per-tenant arrival rate while its burst is on (requests/s).
  double base_rate = 2.0;
  /// Mean on/off burst period lengths (exponential).
  double burst_on_s = 0.5;
  double burst_off_s = 2.0;
  /// Batch service cost: base + per-request increment.
  double service_base_s = 2e-3;
  double service_per_item_s = 1e-3;
  std::int64_t max_batch = 8;
  /// Per-tenant queue bound; arrivals beyond it shed. 0 = unbounded.
  std::size_t queue_capacity = 64;
  /// Goodput criterion: completed within this budget. 0 = everything.
  double deadline_s = 0.25;
  /// Tenant 0's arrival-rate multiplier (the hot/abusive tenant).
  double hot_multiplier = 1.0;
  /// Tenant 0's WFQ weight (everyone else weighs 1).
  double tenant0_weight = 1.0;
};

struct TenantSimReport {
  // Conservation: arrivals == completed + shed (the DES drains fully).
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;

  double sim_time_s = 0.0;        ///< clock when the last batch finished
  double throughput_req_s = 0.0;  ///< completed / sim_time_s
  double goodput_req_s = 0.0;     ///< completed within deadline / sim_time_s

  /// Tenant 0 (hot) vs everyone else (victims), pooled.
  std::uint64_t hot_completed = 0;
  std::uint64_t victim_completed = 0;
  double hot_p99_s = 0.0;
  double victim_p99_s = 0.0;
  double victim_mean_s = 0.0;

  /// Jain's fairness index over the victims' completed counts
  /// (1 = perfectly even service across tenants 1..T-1).
  double fairness_index = 0.0;

  /// First two tenants' completions (weight-ratio assertions).
  std::uint64_t completed_t0 = 0;
  std::uint64_t completed_t1 = 0;

  bool conserved() const { return arrivals == completed + shed; }
};

TenantSimReport simulate_tenants(const TenantSimConfig& config);

}  // namespace harvest::serving
