#pragma once

/// \file server.hpp
/// The HARVEST serving core — the from-scratch stand-in for NVIDIA
/// Triton in the paper's pipeline (§3), grown to fleet scale. A server
/// hosts named model deployments; each deployment owns a dynamic
/// batcher and a metrics registry, bills to a *tenant* (weight + quota),
/// and executes on one shared WFQ worker pool with backend streams from
/// the deduplicated WeightStore — hundreds of fine-tune deployments
/// share backbones and threads instead of stacking private copies. The
/// frontend calls `submit()` and receives a future.

#include <map>
#include <memory>
#include <shared_mutex>

#include "core/thread_pool.hpp"
#include "serving/batcher.hpp"
#include "serving/metrics.hpp"
#include "serving/model_instance.hpp"
#include "serving/resilience/admission.hpp"
#include "serving/sequence/scheduler.hpp"
#include "serving/weight_store.hpp"
#include "serving/worker_pool.hpp"

namespace harvest::serving {

struct ModelDeploymentConfig {
  std::string name;
  std::int64_t max_batch = 8;
  /// Concurrency cap on the shared worker pool (the pre-pool meaning —
  /// dedicated execution streams — survives as "at most this many
  /// workers execute my batches at once").
  std::int64_t instances = 1;
  double max_queue_delay_s = 2e-3;
  std::vector<std::int64_t> preferred_batch_sizes;
  preproc::PreprocSpec preproc;
  /// Batched thread-parallel preprocessing (DALI-style) instead of
  /// sequential per-image CPU preprocessing.
  bool batched_preproc = true;
  /// Numeric precision the deployment's engines execute in ("fp32" or
  /// "int8"). Labels every metric and trace thread of the deployment so
  /// the same model can be served at both precisions side by side and
  /// compared live.
  std::string precision = "fp32";
  /// Overload control: shed arrivals with kResourceExhausted before
  /// they queue, by queue depth and/or estimated queueing delay.
  /// Disabled by default (both thresholds 0).
  resilience::AdmissionConfig admission;
  /// Graceful degradation: when admission sheds, fail the request over
  /// to this deployment instead (typically the model's INT8 twin, which
  /// clears its queue several times faster). Empty = shed outright.
  std::string degrade_to;
  /// Service-level objectives ("slo" key in the repository JSON). When
  /// declared, the deployment's MetricsRegistry tracks error-budget
  /// burn rate; sustained burn above `slo_burn_alert` pressures the
  /// admission controller (tightened thresholds) until it recovers.
  obs::SloConfig slo;
  double slo_window_s = 60.0;   ///< sliding burn-rate window
  double slo_burn_alert = 2.0;  ///< alert / pressure threshold
  /// Multi-tenancy keys (docs/MULTITENANCY.md). `tenant` names the
  /// fair-share/quota principal this deployment bills to (empty = a
  /// private tenant named after the deployment). `weight` scales the
  /// tenant's WFQ share; `quota` bounds its outstanding requests
  /// across all its deployments (0 = unlimited). When several
  /// deployments name one tenant, non-default weight/quota values win.
  std::string tenant;
  double weight = 1.0;
  std::int64_t quota = 0;
  /// Batcher back-pressure bound ("queue_capacity" in the repository).
  std::size_t queue_capacity = 4096;
  /// Weight-sharing key: deployments with equal keys share one
  /// WeightStore entry (one set of in-memory backend streams). Empty =
  /// a private entry — no sharing.
  std::string weight_key;
  /// Bytes one backend stream keeps resident (prices weight-store
  /// paging; 0 = weightless, never paged).
  std::size_t model_bytes = 0;
};

/// A sequence deployment ("workload": "sequence" in the repository):
/// one continuous-batching scheduler + state pool per model, served by
/// the same Server beside the image deployments.
struct SequenceDeploymentConfig {
  std::string name;
  sequence::SequenceSchedulerConfig scheduler;
  sequence::StatePoolConfig pool;
};

class Server {
 public:
  /// `preproc_threads` sizes the shared preprocessing pool.
  explicit Server(std::size_t preproc_threads = 2);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Deploy a model. The factory builds one backend stream; streams
  /// build lazily in the WeightStore (the first eagerly, so a broken
  /// factory fails here). Fails if the name is taken.
  core::Status register_model(const ModelDeploymentConfig& config,
                              const std::function<BackendPtr()>& backend_factory);

  /// Route a request to its deployment's batcher (tenant quota, then
  /// admission control, then enqueue).
  core::Result<std::future<InferenceResponse>> submit(InferenceRequest request);

  /// Convenience: submit and wait.
  InferenceResponse infer_sync(InferenceRequest request);

  /// Deployment metrics (nullptr when unknown).
  const MetricsRegistry* metrics(const std::string& model) const;

  /// Writable registry access for frontend-side recorders (retry
  /// clients). nullptr when unknown.
  MetricsRegistry* mutable_metrics(const std::string& model);

  /// Deployment admission controller (nullptr when unknown). Exposed so
  /// drivers can inspect the live service-time estimate.
  const resilience::AdmissionController* admission(
      const std::string& model) const;

  std::vector<std::string> model_names() const;

  /// Deploy a sequence model (continuous batching). The name shares the
  /// image deployments' namespace.
  core::Status register_sequence_model(
      const SequenceDeploymentConfig& config,
      const std::function<sequence::SequenceBackendPtr()>& backend_factory);

  /// Route a sequence request to its scheduler.
  core::Result<std::future<sequence::SequenceResponse>> submit_sequence(
      sequence::SequenceRequest request);

  /// Convenience: submit and wait.
  sequence::SequenceResponse generate_sync(sequence::SequenceRequest request);

  /// Sequence-deployment introspection (nullptr/empty when unknown).
  const sequence::SequenceMetrics* sequence_metrics(
      const std::string& model) const;
  const sequence::SequenceScheduler* sequence_scheduler(
      const std::string& model) const;
  std::vector<std::string> sequence_model_names() const;

  /// Current batcher queue depth for a deployment (0 when unknown).
  std::size_t queue_depth(const std::string& model) const;

  /// Pin the shared worker pool's size. Default (0) auto-grows the pool
  /// to the sum of registered `instances`; an explicit target below
  /// that consolidates — deployments time-share the smaller pool under
  /// WFQ. Grow-only; call before registering models to consolidate.
  void set_worker_target(std::size_t workers);

  /// Shared weight store (budget configuration / stats).
  WeightStore& weight_store() { return weight_store_; }
  const WeightStore& weight_store() const { return weight_store_; }

  const WorkerPool& worker_pool() const { return worker_pool_; }

  /// Tenant registry lookup (nullptr when unknown).
  const TenantState* tenant(const std::string& name) const;
  std::vector<std::string> tenant_names() const;

  /// Prometheus text-format exposition over every deployment, plus
  /// server-level gauges (preprocessing pool, weight store, worker
  /// pool, per-tenant outstanding/quota).
  std::string prometheus_text() const;

  /// Stop accepting requests, drain the worker pool, join everything.
  /// Safe to call from any thread, concurrently with submit();
  /// idempotent.
  void shutdown();

 private:
  struct Deployment {
    ModelDeploymentConfig config;
    DynamicBatcher batcher;
    MetricsRegistry metrics;
    resilience::AdmissionController admission;
    std::unique_ptr<BatchExecutor> executor;
    WeightStore::EntryPtr entry;
    TenantPtr tenant;

    explicit Deployment(const ModelDeploymentConfig& c)
        : config(c),
          batcher(BatcherConfig{c.max_batch, c.max_queue_delay_s,
                                c.queue_capacity, c.preferred_batch_sizes}),
          admission(c.admission, static_cast<int>(c.instances)) {}
  };

  /// Admission check + optional degrade failover; called under the
  /// reader lock. Returns the batcher future, a kResourceExhausted shed,
  /// or the twin's response future.
  core::Result<std::future<InferenceResponse>> admit_and_enqueue(
      Deployment& deployment, InferenceRequest request);

  core::ThreadPool preproc_pool_;
  WeightStore weight_store_;
  /// Guards the deployments map itself: register_model/shutdown take the
  /// writer side; submit and the read-only accessors take the reader
  /// side. Deployment contents (batcher, metrics) are internally
  /// synchronized and may be used after the lock is released.
  struct SequenceDeployment {
    SequenceDeploymentConfig config;
    sequence::SequenceMetrics metrics;
    std::unique_ptr<sequence::SequenceScheduler> scheduler;
  };

  mutable std::shared_mutex deployments_mutex_;
  std::map<std::string, std::unique_ptr<Deployment>> deployments_;
  std::map<std::string, std::unique_ptr<SequenceDeployment>>
      sequence_deployments_;
  std::map<std::string, TenantPtr> tenants_;
  std::size_t worker_target_ = 0;    ///< 0 = auto (sum of instances)
  std::size_t total_instances_ = 0;  ///< guarded by deployments_mutex_
  std::atomic<std::uint64_t> next_request_id_{1};
  // Read by submitting threads while shutdown() runs — must be atomic.
  std::atomic<bool> shut_down_{false};
  /// Declared last: joins its workers (which walk the structures above)
  /// before anything else tears down.
  WorkerPool worker_pool_;
};

}  // namespace harvest::serving
