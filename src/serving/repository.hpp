#pragma once

/// \file repository.hpp
/// Declarative model repository — the configuration surface Triton
/// exposes as config.pbtxt files, here as a single JSON document. A
/// repository config describes every deployment (backend kind, model
/// architecture or calibrated (device, model) pair, batching policy,
/// preprocessing spec, optional weight checkpoint) and is applied to a
/// `Server` in one call:
///
/// {
///   "models": [
///     {
///       "name": "weeds",
///       "backend": "native",           // real CPU execution
///       "architecture": "vit",          // vit | resnet | rwkv
///       "image": 32, "patch": 4, "dim": 64, "depth": 2, "heads": 4,
///       "classes": 4, "seed": 2026,
///       "weights": "weeds.hvst",       // optional checkpoint
///       "max_batch": 8, "instances": 2, "max_queue_delay_ms": 2.0,
///       "preproc": {"output_size": 32, "perspective": false}
///     },
///     {
///       "name": "residue-cloud",
///       "backend": "sim",              // calibrated device model
///       "model": "ViT_Base", "device": "A100",
///       "classes": 23, "max_batch": 64, "instances": 1
///     }
///   ]
/// }

#include <string>

#include "core/json.hpp"
#include "serving/server.hpp"

namespace harvest::serving {

/// Register every model of `config` on `server`. Fails fast on the
/// first invalid entry (the server keeps previously registered models).
core::Status load_repository(Server& server, const core::Json& config);

/// Convenience: read a JSON file and apply it.
core::Status load_repository_file(Server& server, const std::string& path);

}  // namespace harvest::serving
