#include "serving/tenant_sim.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <queue>
#include <vector>

#include "core/rng.hpp"
#include "serving/fair_queue.hpp"

namespace harvest::serving {

namespace {

struct Arrival {
  double t = 0.0;
  std::int64_t tenant = 0;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size() - 1)));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Pre-draws one tenant's arrival times: an on/off modulated Poisson
/// process (exponential burst lengths, Poisson arrivals while on).
/// Every tenant gets its own splitmix-derived stream so the draw order
/// is independent of tenant count or interleaving.
void draw_arrivals(const TenantSimConfig& config, std::int64_t tenant,
                   std::vector<Arrival>* out) {
  core::Rng rng(core::splitmix64(config.seed ^
                                 (0x9e3779b97f4a7c15ULL +
                                  static_cast<std::uint64_t>(tenant))));
  double rate = config.base_rate;
  if (tenant == 0) rate *= config.hot_multiplier;
  if (rate <= 0.0) return;
  const bool modulated = config.burst_on_s > 0.0 && config.burst_off_s > 0.0;

  double t = 0.0;
  bool on = true;
  double phase_end = modulated ? rng.exponential(1.0 / config.burst_on_s)
                               : config.duration_s;
  while (t < config.duration_s) {
    if (!on) {
      t = phase_end;
      on = true;
      phase_end = t + rng.exponential(1.0 / config.burst_on_s);
      continue;
    }
    const double dt = rng.exponential(rate);
    if (modulated && t + dt >= phase_end) {
      // Burst ended before the next arrival (memoryless: discard it).
      t = phase_end;
      on = false;
      phase_end = t + rng.exponential(1.0 / config.burst_off_s);
      continue;
    }
    t += dt;
    if (t >= config.duration_s) break;
    out->push_back(Arrival{t, tenant});
  }
}

}  // namespace

const char* fleet_policy_name(FleetPolicy policy) {
  switch (policy) {
    case FleetPolicy::kSharedFifo: return "shared_fifo";
    case FleetPolicy::kWfq: return "wfq";
  }
  return "unknown";
}

TenantSimReport simulate_tenants(const TenantSimConfig& config) {
  TenantSimReport report;
  const auto tenants = static_cast<std::size_t>(std::max<std::int64_t>(
      config.tenants, 1));
  const auto workers = static_cast<std::size_t>(std::max<std::int64_t>(
      config.workers, 1));
  const auto max_batch = static_cast<std::size_t>(std::max<std::int64_t>(
      config.max_batch, 1));

  // ---- Pre-draw and merge every tenant's arrival stream. -------------
  std::vector<Arrival> arrivals;
  for (std::size_t tenant = 0; tenant < tenants; ++tenant) {
    draw_arrivals(config, static_cast<std::int64_t>(tenant), &arrivals);
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     if (a.t != b.t) return a.t < b.t;
                     return a.tenant < b.tenant;
                   });
  report.arrivals = arrivals.size();

  // ---- Event loop: workers are a min-heap of free times. -------------
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      worker_free;
  for (std::size_t w = 0; w < workers; ++w) worker_free.push(0.0);

  std::vector<std::deque<double>> queues(tenants);  // queued arrival times
  std::vector<double> vt(tenants, 0.0);             // WFQ virtual times
  WfqClock wfq;
  double now = 0.0;

  std::vector<std::uint64_t> completed_per_tenant(tenants, 0);
  std::vector<double> hot_lat;
  std::vector<double> victim_lat;
  double victim_lat_sum = 0.0;
  std::uint64_t good = 0;

  const double weight_of_0 =
      config.tenant0_weight > 0.0 ? config.tenant0_weight : 1.0;

  std::size_t next = 0;  // arrival cursor
  const auto admit = [&](double horizon) {
    while (next < arrivals.size() && arrivals[next].t <= horizon) {
      const auto& a = arrivals[next++];
      auto& q = queues[static_cast<std::size_t>(a.tenant)];
      if (config.queue_capacity > 0 && q.size() >= config.queue_capacity) {
        ++report.shed;
      } else {
        q.push_back(a.t);
      }
    }
  };

  for (;;) {
    const bool backlog = std::any_of(
        queues.begin(), queues.end(),
        [](const std::deque<double>& q) { return !q.empty(); });
    if (!backlog) {
      if (next >= arrivals.size()) break;  // drained
      // Idle: jump the clock to the next arrival instant.
      now = std::max(now, arrivals[next].t);
      admit(now);
      continue;
    }
    const double tw = worker_free.top();
    now = std::max(now, tw);
    admit(now);

    // Pick a tenant with queued work, by policy.
    std::size_t pick = tenants;  // sentinel
    if (config.policy == FleetPolicy::kSharedFifo) {
      double best = 0.0;
      for (std::size_t t = 0; t < tenants; ++t) {
        if (queues[t].empty()) continue;
        if (pick == tenants || queues[t].front() < best) {
          pick = t;
          best = queues[t].front();
        }
      }
    } else {
      double best = 0.0;
      for (std::size_t t = 0; t < tenants; ++t) {
        if (queues[t].empty()) continue;
        const double eff = wfq.effective(vt[t]);
        if (pick == tenants || eff < best) {
          pick = t;
          best = eff;
        }
      }
    }

    // Form the batch: up to max_batch queued requests of that tenant.
    auto& q = queues[pick];
    const std::size_t batch = std::min(q.size(), max_batch);
    if (config.policy == FleetPolicy::kWfq) {
      vt[pick] = wfq.charge(vt[pick], static_cast<double>(batch),
                            pick == 0 ? weight_of_0 : 1.0);
    }
    const double finish = now + config.service_base_s +
                          config.service_per_item_s *
                              static_cast<double>(batch);
    worker_free.pop();
    worker_free.push(finish);
    ++report.batches;
    report.sim_time_s = std::max(report.sim_time_s, finish);

    for (std::size_t i = 0; i < batch; ++i) {
      const double lat = finish - q.front();
      q.pop_front();
      ++completed_per_tenant[pick];
      ++report.completed;
      if (config.deadline_s <= 0.0 || lat <= config.deadline_s) ++good;
      if (pick == 0) {
        hot_lat.push_back(lat);
      } else {
        victim_lat.push_back(lat);
        victim_lat_sum += lat;
      }
    }
  }

  // ---- Aggregate. ----------------------------------------------------
  report.hot_completed = completed_per_tenant.empty()
                             ? 0
                             : completed_per_tenant[0];
  report.completed_t0 = report.hot_completed;
  report.completed_t1 = tenants > 1 ? completed_per_tenant[1] : 0;
  report.victim_completed = report.completed - report.hot_completed;
  if (report.sim_time_s > 0.0) {
    report.throughput_req_s =
        static_cast<double>(report.completed) / report.sim_time_s;
    report.goodput_req_s = static_cast<double>(good) / report.sim_time_s;
  }
  std::sort(hot_lat.begin(), hot_lat.end());
  std::sort(victim_lat.begin(), victim_lat.end());
  report.hot_p99_s = percentile(hot_lat, 0.99);
  report.victim_p99_s = percentile(victim_lat, 0.99);
  if (!victim_lat.empty()) {
    report.victim_mean_s =
        victim_lat_sum / static_cast<double>(victim_lat.size());
  }
  // Jain's fairness index over the victims' completed counts.
  if (tenants > 1) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t t = 1; t < tenants; ++t) {
      const auto x = static_cast<double>(completed_per_tenant[t]);
      sum += x;
      sum_sq += x * x;
    }
    report.fairness_index =
        sum_sq > 0.0
            ? (sum * sum) /
                  (static_cast<double>(tenants - 1) * sum_sq)
            : 1.0;
  } else {
    report.fairness_index = 1.0;
  }
  return report;
}

}  // namespace harvest::serving
