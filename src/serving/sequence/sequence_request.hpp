#pragma once

/// \file sequence_request.hpp
/// Request/response types of the sequence-serving subsystem — the
/// autoregressive counterpart to serving/request.hpp's one-image
/// requests. A sequence request carries a token prompt and a generation
/// budget; the scheduler streams generated tokens back through an
/// optional callback and resolves the future with the full response
/// when the sequence retires.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "obs/trace.hpp"

namespace harvest::serving::sequence {

/// One generated token, delivered on the scheduler thread as soon as
/// the decode step that produced it completes. Callbacks must be cheap
/// and must not call back into the scheduler.
struct TokenEvent {
  std::uint64_t request_id = 0;
  std::int32_t token = 0;
  std::int64_t index = 0;    ///< 0-based position among generated tokens
  bool last = false;         ///< no more events will follow
  double since_submit_s = 0; ///< wall-clock seconds since submit
};

struct SequenceRequest {
  std::uint64_t id = 0;
  std::string model;  ///< target sequence deployment
  std::vector<std::int32_t> prompt;
  /// Generation budget. The scheduler also stops at the model's context
  /// capacity (prompt + generated <= max_tokens) and at `eos_token`.
  std::int64_t max_new_tokens = 32;
  std::int32_t eos_token = -1;  ///< -1 = no EOS, generate the full budget
  double deadline_s = 0.0;      ///< 0 = none; budget measured from submit
  /// Token streaming; leave empty to only receive the final response.
  std::function<void(const TokenEvent&)> on_token;
  obs::TraceContext trace;
};

/// Terminal states of a sequence. The conservation law the tests pin:
/// submitted == completed + shed + failed + expired + evicted.
enum class SequenceOutcome : int {
  kOk = 0,       ///< generated to EOS / budget
  kFailed = 1,   ///< backend error or invalid request
  kShed = 2,     ///< rejected at admission (queue bound / shutdown)
  kExpired = 3,  ///< deadline passed while queued or mid-decode
  kEvicted = 4,  ///< state-pool slot reclaimed (idle / shutdown drain)
};
inline constexpr std::size_t kSequenceOutcomeCount = 5;
const char* sequence_outcome_name(SequenceOutcome outcome);

struct SequenceTiming {
  double queue_s = 0.0;   ///< submit → admission (prefill start)
  double ttft_s = 0.0;    ///< submit → first generated token
  double total_s = 0.0;   ///< submit → retirement
  std::int64_t steps = 0; ///< decode iterations this sequence rode in
};

struct SequenceResponse {
  std::uint64_t id = 0;
  core::Status status;
  SequenceOutcome outcome = SequenceOutcome::kFailed;
  /// Generated tokens (prompt not echoed). Partial on expiry/eviction.
  std::vector<std::int32_t> tokens;
  SequenceTiming timing;
  /// Generated tokens / decode seconds (0 when nothing decoded).
  double tokens_per_s = 0.0;
};

/// Monotonic counters a scheduler exposes; see SequenceOutcome for the
/// conservation law.
struct SequenceCounters {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;  ///< entered the live batch (prefilled)
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  std::uint64_t evicted = 0;
  std::uint64_t tokens_generated = 0;
  std::uint64_t steps = 0;  ///< decode iterations executed

  std::uint64_t retired() const {
    return completed + shed + failed + expired + evicted;
  }
  bool conserved() const { return submitted == retired(); }
};

}  // namespace harvest::serving::sequence
