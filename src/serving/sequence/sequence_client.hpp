#pragma once

/// \file sequence_client.hpp
/// Resilient frontend for sequence requests: the same retry/degrade
/// policies that wrap image inference (serving/resilience) applied to
/// the new client path. Retries re-submit on transient failures
/// (shed / unavailable / internal) with the shared RetryPolicy's
/// jittered backoff and deadline budget; an optional fallback model
/// catches the final failure (degrade-to-smaller-model for sequence
/// deployments).

#include <cstdint>
#include <mutex>
#include <string>

#include "core/rng.hpp"
#include "serving/resilience/retry.hpp"
#include "serving/server.hpp"

namespace harvest::serving::sequence {

struct SequenceClientOptions {
  resilience::RetryPolicy retry;
  /// After the last failed attempt, try this deployment once (empty =
  /// fail outright). Sheds there are final.
  std::string fallback_model;
};

class RetryingSequenceClient {
 public:
  RetryingSequenceClient(Server& server, SequenceClientOptions options,
                         std::uint64_t seed = 42);

  /// Submit-and-wait with retries. Streaming callbacks fire for every
  /// attempt; the returned response is the last attempt's.
  SequenceResponse generate_sync(SequenceRequest request);

  struct Counters {
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t degraded = 0;  ///< fell back to fallback_model
  };
  Counters counters() const;

 private:
  Server* server_;
  SequenceClientOptions options_;
  mutable std::mutex mutex_;
  core::Rng rng_;
  Counters counters_;
};

}  // namespace harvest::serving::sequence
