#include "serving/sequence/scheduler.hpp"

#include <algorithm>

#include "core/log.hpp"
#include "obs/trace.hpp"

namespace harvest::serving::sequence {

SequenceScheduler::SequenceScheduler(std::string model_name,
                                     SequenceBackendPtr backend,
                                     const StatePoolConfig& pool_config,
                                     const SequenceSchedulerConfig& config,
                                     SequenceMetrics* metrics)
    : model_name_(std::move(model_name)), backend_(std::move(backend)),
      pool_(backend_->state_spec(), pool_config), config_(config),
      metrics_(metrics), epoch_(Clock::now()) {
  HARVEST_CHECK(backend_ != nullptr);
  HARVEST_CHECK(config_.max_active > 0);
  worker_ = std::thread([this] { worker(); });
}

SequenceScheduler::~SequenceScheduler() { shutdown(); }

double SequenceScheduler::now_s() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

std::size_t SequenceScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

core::Result<std::future<SequenceResponse>> SequenceScheduler::submit(
    SequenceRequest request) {
  if (metrics_ != nullptr) metrics_->record_submitted();
  if (request.id == 0) {
    request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::int64_t max_tokens = backend_->model_config().max_tokens;
  if (request.prompt.empty() ||
      static_cast<std::int64_t>(request.prompt.size()) >= max_tokens) {
    if (metrics_ != nullptr) {
      SequenceResponse rejected;
      rejected.outcome = SequenceOutcome::kFailed;
      metrics_->record_retired(rejected);
    }
    return core::Status::invalid_argument(
        "prompt must be non-empty and leave room in the " +
        std::to_string(max_tokens) + "-token context");
  }
  if (obs::TraceRecorder::instance().enabled() &&
      request.trace.trace_id == 0) {
    request.trace.trace_id = obs::next_trace_id();
  }
  if (request.trace.active()) {
    request.trace.root_span_id = obs::next_span_id();
  }

  Pending pending;
  pending.submitted = Clock::now();
  if (request.deadline_s == 0.0) request.deadline_s = config_.default_deadline_s;
  if (request.deadline_s > 0.0) {
    pending.deadline_abs_s =
        std::chrono::duration<double>(pending.submitted - epoch_).count() +
        request.deadline_s;
  }
  std::future<SequenceResponse> future = pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      if (metrics_ != nullptr) metrics_->record_shed();
      return core::Status::unavailable("sequence scheduler is shut down");
    }
    if (config_.max_queue_depth > 0 &&
        queue_.size() >= config_.max_queue_depth) {
      if (metrics_ != nullptr) metrics_->record_shed();
      obs::TraceRecorder::instance().record_instant("shed", "sequence",
                                                    request.trace);
      return core::Status::resource_exhausted(
          "sequence queue full (" + std::to_string(queue_.size()) + ")");
    }
    pending.request = std::move(request);
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

void SequenceScheduler::worker() {
  obs::TraceRecorder::instance().set_thread_name("seq:" + model_name_);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return shutdown_ || !queue_.empty() || !live_.empty();
      });
      if (shutdown_) break;
    }
    admit();
    if (!live_.empty()) step();
    reap_idle();
  }

  // Drain: queued requests were never admitted (shed), live sequences
  // lose their slots (evicted) — conservation holds through shutdown.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    resolve_unadmitted(std::move(pending), SequenceOutcome::kShed,
                       core::Status::unavailable("scheduler shut down"));
  }
  for (auto& live : live_) {
    retire(*live, SequenceOutcome::kEvicted,
           core::Status::unavailable("scheduler shut down"));
  }
  live_.clear();
  active_.store(0, std::memory_order_relaxed);
}

void SequenceScheduler::admit() {
  auto& recorder = obs::TraceRecorder::instance();
  while (static_cast<std::int64_t>(live_.size()) < config_.max_active) {
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    const double now = now_s();
    if (pending.deadline_abs_s > 0.0 && now > pending.deadline_abs_s) {
      // Expired while queued; never leases a slot.
      resolve_unadmitted(std::move(pending), SequenceOutcome::kExpired,
                         core::Status::deadline_exceeded(
                             "deadline passed while queued"));
      continue;
    }
    std::optional<StatePool::Lease> lease = pool_.acquire(now);
    if (!lease.has_value()) {
      // Pool exhausted: put it back and keep stepping; retirements will
      // free a slot.
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_front(std::move(pending));
      return;
    }

    auto live = std::make_unique<Live>();
    live->request = std::move(pending.request);
    live->promise = std::move(pending.promise);
    live->submitted = pending.submitted;
    live->deadline_abs_s = pending.deadline_abs_s;
    live->lease = std::move(lease).value();
    live->queue_s = now - std::chrono::duration<double>(
                              pending.submitted - epoch_).count();
    live->max_new_tokens = live->request.max_new_tokens > 0
                               ? live->request.max_new_tokens
                               : config_.default_max_new_tokens;
    // Clamp generation to the context capacity.
    live->max_new_tokens = std::min(
        live->max_new_tokens,
        backend_->model_config().max_tokens -
            static_cast<std::int64_t>(live->request.prompt.size()));
    if (metrics_ != nullptr) metrics_->record_admitted();

    const double prefill_start_us = recorder.now_us();
    auto result = backend_->prefill(
        live->request.prompt.data(),
        static_cast<std::int64_t>(live->request.prompt.size()),
        live->lease.state);
    recorder.record_child("prefill", "sequence", prefill_start_us,
                          recorder.now_us(), live->request.trace,
                          live->request.id,
                          static_cast<std::int64_t>(
                              live->request.prompt.size()));
    if (!result.is_ok()) {
      retire(*live, SequenceOutcome::kFailed, result.status());
      continue;
    }
    live->ttft_s = now_s() - std::chrono::duration<double>(
                                 live->submitted - epoch_).count();
    live->first_token_time_s = now_s();
    recorder.record_instant("first_token", "sequence", live->request.trace);
    emit_token(*live, result.value().tokens[0]);
    if (generation_done(*live)) {
      retire(*live, SequenceOutcome::kOk, core::Status::ok());
      continue;
    }
    live_.push_back(std::move(live));
    active_.store(static_cast<std::int64_t>(live_.size()),
                  std::memory_order_relaxed);
  }
}

void SequenceScheduler::step() {
  auto& recorder = obs::TraceRecorder::instance();
  // Deadline sweep first: an expired sequence must not consume another
  // step, and its slot frees before the batch runs.
  for (auto& live : live_) {
    if (live->deadline_abs_s > 0.0 && now_s() > live->deadline_abs_s) {
      retire(*live, SequenceOutcome::kExpired,
             core::Status::deadline_exceeded("deadline passed mid-decode"));
      live.reset();
    }
  }
  std::erase_if(live_, [](const std::unique_ptr<Live>& l) { return !l; });
  active_.store(static_cast<std::int64_t>(live_.size()),
                std::memory_order_relaxed);
  if (live_.empty()) return;

  const std::int64_t rows = static_cast<std::int64_t>(live_.size());
  std::vector<std::int32_t> last_tokens(static_cast<std::size_t>(rows));
  std::vector<nn::SequenceState*> states(static_cast<std::size_t>(rows));
  for (std::int64_t i = 0; i < rows; ++i) {
    last_tokens[static_cast<std::size_t>(i)] = live_[static_cast<std::size_t>(
        i)]->tokens.back();
    states[static_cast<std::size_t>(i)] =
        &live_[static_cast<std::size_t>(i)]->lease.state;
  }

  const double t0 = now_s();
  const double t0_us = recorder.now_us();
  auto result = backend_->decode(last_tokens.data(), states.data(), rows);
  const double t1 = now_s();
  const double t1_us = recorder.now_us();
  if (metrics_ != nullptr) metrics_->record_step(rows, t1 - t0);
  recorder.record_complete("decode_step", "sequence", t0_us, t1_us, 0, rows);

  if (!result.is_ok()) {
    for (auto& live : live_) {
      retire(*live, SequenceOutcome::kFailed, result.status());
    }
    live_.clear();
    active_.store(0, std::memory_order_relaxed);
    return;
  }

  for (std::int64_t i = 0; i < rows; ++i) {
    Live& live = *live_[static_cast<std::size_t>(i)];
    ++live.steps;
    // Per-step span under the sequence's own trace tree.
    recorder.record_child("decode_step", "sequence", t0_us, t1_us,
                          live.request.trace, live.request.id, rows);
    emit_token(live, result.value().tokens[static_cast<std::size_t>(i)]);
    // Refresh the idle clock with the step's *start* time: a decode
    // that stalled past the idle timeout must leave the lease stale so
    // reap_idle() can reclaim it, instead of laundering the stall into
    // a fresh timestamp.
    pool_.touch(live.lease.slot, live.lease.generation, t0);
    if (generation_done(live)) {
      retire(live, SequenceOutcome::kOk, core::Status::ok());
      live_[static_cast<std::size_t>(i)].reset();  // retire immediately
    }
  }
  std::erase_if(live_, [](const std::unique_ptr<Live>& l) { return !l; });
  active_.store(static_cast<std::int64_t>(live_.size()),
                std::memory_order_relaxed);
}

void SequenceScheduler::reap_idle() {
  // Idle eviction under backend stalls: when a decode step takes longer
  // than the pool's idle timeout, the pool reclaims the slots (bumping
  // their lease generations so our leases go stale). The sequences that
  // lost their state must retire as kEvicted — their leases can no
  // longer touch the slab — keeping submitted == completed + shed +
  // failed + expired + evicted exact.
  const std::vector<std::int64_t> evicted = pool_.evict_idle(now_s());
  if (evicted.empty()) return;
  for (auto& live : live_) {
    const bool gone =
        std::find(evicted.begin(), evicted.end(), live->lease.slot) !=
        evicted.end();
    if (!gone) continue;
    live->lease.slot = -1;  // the pool owns the slot again
    retire(*live, SequenceOutcome::kEvicted,
           core::Status::resource_exhausted(
               "sequence state evicted after idle timeout"));
    live.reset();
  }
  std::erase_if(live_, [](const std::unique_ptr<Live>& l) { return !l; });
  active_.store(static_cast<std::int64_t>(live_.size()),
                std::memory_order_relaxed);
}

void SequenceScheduler::emit_token(Live& live, std::int32_t token) {
  live.tokens.push_back(token);
  if (live.request.on_token) {
    TokenEvent event;
    event.request_id = live.request.id;
    event.token = token;
    event.index = static_cast<std::int64_t>(live.tokens.size()) - 1;
    event.last = generation_done(live);
    event.since_submit_s =
        std::chrono::duration<double>(Clock::now() - live.submitted).count();
    live.request.on_token(event);
  }
}

bool SequenceScheduler::generation_done(const Live& live) const {
  if (static_cast<std::int64_t>(live.tokens.size()) >= live.max_new_tokens) {
    return true;
  }
  return live.request.eos_token >= 0 && !live.tokens.empty() &&
         live.tokens.back() == live.request.eos_token;
}

void SequenceScheduler::retire(Live& live, SequenceOutcome outcome,
                               core::Status status) {
  auto& recorder = obs::TraceRecorder::instance();
  if (live.lease.slot >= 0) {
    // No-ops (returns false) when the pool already idle-evicted this
    // lease — the slot then belongs to the free list or a newer lease,
    // and freeing it again would alias two sequences onto one slab row.
    pool_.release(live.lease.slot, live.lease.generation);
    live.lease.slot = -1;
  }
  SequenceResponse response;
  response.id = live.request.id;
  response.status = std::move(status);
  response.outcome = outcome;
  response.tokens = std::move(live.tokens);
  response.timing.queue_s = live.queue_s;
  response.timing.ttft_s = live.ttft_s;
  response.timing.total_s =
      std::chrono::duration<double>(Clock::now() - live.submitted).count();
  response.timing.steps = live.steps;
  const double decode_window = now_s() - live.first_token_time_s;
  if (response.tokens.size() > 1 && decode_window > 0.0) {
    response.tokens_per_s =
        static_cast<double>(response.tokens.size() - 1) / decode_window;
  }
  if (outcome != SequenceOutcome::kOk) {
    recorder.record_instant(sequence_outcome_name(outcome), "sequence",
                            live.request.trace);
  }
  recorder.record_root("sequence_request", "sequence",
                       recorder.to_us(live.submitted), recorder.now_us(),
                       live.request.trace, live.request.id,
                       static_cast<std::int64_t>(response.tokens.size()));
  if (metrics_ != nullptr) {
    metrics_->record_retired(response, live.request.trace.trace_id);
  }
  live.promise.set_value(std::move(response));
}

void SequenceScheduler::resolve_unadmitted(Pending&& pending,
                                           SequenceOutcome outcome,
                                           core::Status status) {
  SequenceResponse response;
  response.id = pending.request.id;
  response.status = std::move(status);
  response.outcome = outcome;
  response.timing.total_s =
      std::chrono::duration<double>(Clock::now() - pending.submitted).count();
  obs::TraceRecorder::instance().record_instant(
      sequence_outcome_name(outcome), "sequence", pending.request.trace);
  if (metrics_ != nullptr) {
    if (outcome == SequenceOutcome::kShed) {
      metrics_->record_shed();
    } else {
      metrics_->record_retired(response, pending.request.trace.trace_id);
    }
  }
  pending.promise.set_value(std::move(response));
}

void SequenceScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

}  // namespace harvest::serving::sequence
