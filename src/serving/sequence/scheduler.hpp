#pragma once

/// \file scheduler.hpp
/// Iteration-level (continuous) batching for sequence requests — the
/// sequence counterpart to DynamicBatcher. Where the image batcher
/// groups whole requests into one forward pass, this scheduler runs
/// *one decode step per iteration* over every live sequence, admits
/// new sequences into the running batch between steps, and retires
/// finished ones immediately — no sequence ever waits for the rest of
/// its batch to finish (the inefficiency `ablation_continuous_batching`
/// quantifies).
///
/// Each live sequence contributes exactly one packed row per step
/// (histories live in the state pool), so a batch of mixed-length
/// sequences wastes zero compute on padding; `length_multiple_of`
/// rounds the packed row count to a kernel-friendly multiple.
///
/// Admission is where resilience hooks in: a bounded submit queue sheds
/// with kResourceExhausted, deadlines expire sequences while queued or
/// mid-decode (freeing their state slot immediately), and shutdown
/// drains queued requests as shed / live ones as evicted — keeping the
/// counters conserved.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/sequence/sequence_backend.hpp"
#include "serving/sequence/sequence_metrics.hpp"
#include "serving/sequence/sequence_request.hpp"
#include "serving/sequence/state_pool.hpp"

namespace harvest::serving::sequence {

struct SequenceSchedulerConfig {
  /// Live-batch bound; also the packed GEMM's max row count.
  std::int64_t max_active = 8;
  /// Submit-queue bound; arrivals beyond it shed. 0 = unbounded.
  std::size_t max_queue_depth = 256;
  /// Packed row-count rounding fed to the backend.
  std::int64_t length_multiple_of = 1;
  /// Applied when a request leaves max_new_tokens <= 0.
  std::int64_t default_max_new_tokens = 32;
  /// Applied when a request leaves deadline_s == 0. 0 = none.
  double default_deadline_s = 0.0;
};

class SequenceScheduler {
 public:
  SequenceScheduler(std::string model_name, SequenceBackendPtr backend,
                    const StatePoolConfig& pool_config,
                    const SequenceSchedulerConfig& config,
                    SequenceMetrics* metrics);
  ~SequenceScheduler();

  SequenceScheduler(const SequenceScheduler&) = delete;
  SequenceScheduler& operator=(const SequenceScheduler&) = delete;

  /// Enqueue; sheds with kResourceExhausted when the queue is full,
  /// kUnavailable after shutdown. Prompt-vs-context validation happens
  /// here so oversized requests fail fast.
  core::Result<std::future<SequenceResponse>> submit(SequenceRequest request);

  void shutdown();

  const std::string& model_name() const { return model_name_; }
  const SequenceSchedulerConfig& config() const { return config_; }
  const StatePool& pool() const { return pool_; }
  std::size_t queued() const;
  std::int64_t active() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    SequenceRequest request;
    std::promise<SequenceResponse> promise;
    Clock::time_point submitted;
    double deadline_abs_s = 0.0;  ///< seconds on now_s() clock; 0 = none
  };

  struct Live {
    SequenceRequest request;
    std::promise<SequenceResponse> promise;
    Clock::time_point submitted;
    double deadline_abs_s = 0.0;
    StatePool::Lease lease;
    std::vector<std::int32_t> tokens;
    std::int64_t max_new_tokens = 0;
    std::int64_t steps = 0;
    double ttft_s = 0.0;
    double queue_s = 0.0;
    double first_token_time_s = 0.0;  ///< now_s() at first token
  };

  double now_s() const;
  void worker();
  /// Move queued requests into the live batch while there is room.
  void admit();
  /// One packed decode iteration over the live batch.
  void step();
  /// Retire live sequences whose state the pool idle-evicted (their
  /// leases went stale) as kEvicted, preserving counter conservation.
  void reap_idle();
  void emit_token(Live& live, std::int32_t token);
  bool generation_done(const Live& live) const;
  void retire(Live& live, SequenceOutcome outcome, core::Status status);
  /// Retire without a leased slot (shed / pre-admission expiry).
  void resolve_unadmitted(Pending&& pending, SequenceOutcome outcome,
                          core::Status status);

  std::string model_name_;
  SequenceBackendPtr backend_;
  StatePool pool_;
  SequenceSchedulerConfig config_;
  SequenceMetrics* metrics_;
  Clock::time_point epoch_;

  mutable std::mutex mutex_;  ///< guards queue_ and shutdown handshake
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;

  /// Worker-thread private: the live batch, in stable admission order.
  std::vector<std::unique_ptr<Live>> live_;
  std::atomic<std::int64_t> active_{0};

  std::atomic<std::uint64_t> next_id_{1};
  std::thread worker_;
};

}  // namespace harvest::serving::sequence
