#pragma once

/// \file state_pool.hpp
/// Server-owned per-sequence decode state. One slab allocation holds
/// `slots` fixed-size sequence states (KV-cache or RWKV recurrent,
/// per the model's SequenceStateSpec); the pool hands out leases with
/// byte-level capacity accounting and reclaims slots whose owner
/// stopped touching them (idle eviction). Deadline eviction is the
/// scheduler's job — it releases the slot the moment a sequence's
/// budget expires, which is what keeps an overloaded deployment from
/// pinning its whole pool on doomed sequences.
///
/// Leases are generation-stamped: every acquire and every idle
/// eviction bumps the slot's generation, and touch/release only act
/// when the caller's generation matches the slot's current one. An
/// owner holding a lease the pool already evicted therefore cannot
/// free (or refresh) the slot out from under the next owner — the
/// stale calls are no-ops and report false.
///
/// Thread-safe; leases themselves are single-owner (the scheduler
/// thread steps them).

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "nn/token_model.hpp"
#include "tensor/buffer.hpp"

namespace harvest::serving::sequence {

struct StatePoolConfig {
  /// Concurrent sequences the slab holds.
  std::int64_t slots = 16;
  /// Byte budget; 0 sizes it exactly to slots × bytes_per_sequence.
  /// A smaller budget caps the usable slot count (capacity accounting:
  /// a 1 GiB pool holds however many KV-caches fit, not `slots`).
  std::size_t capacity_bytes = 0;
  /// Reclaim leases not touched for this long; 0 disables.
  double idle_timeout_s = 0.0;
};

class StatePool {
 public:
  StatePool(const nn::SequenceStateSpec& spec, const StatePoolConfig& config);

  /// A leased slot: the state view, the slot index, and the slot's
  /// generation at acquire time. touch/release require the generation
  /// back, so a lease invalidated by eviction cannot alias the slot's
  /// next owner.
  struct Lease {
    std::int64_t slot = -1;
    std::uint64_t generation = 0;
    nn::SequenceState state;
  };

  /// Lease a zeroed state, or nullopt when the pool is exhausted.
  /// `now_s` seeds the idle clock (any monotonic seconds source).
  std::optional<Lease> acquire(double now_s);

  /// Refresh a lease's idle clock (call once per decode step). Returns
  /// false when the lease is stale (slot evicted or re-leased since).
  bool touch(std::int64_t slot, std::uint64_t generation, double now_s);

  /// Return a slot to the free list. Returns false (and leaves the
  /// slot alone) when the lease is stale — the slot already belongs to
  /// the free list or to a newer lease.
  bool release(std::int64_t slot, std::uint64_t generation);

  /// Reclaim leases idle longer than idle_timeout_s. Returns the slots
  /// evicted — the owner must treat its lease as gone (its generation
  /// no longer matches, so touch/release on it are no-ops).
  std::vector<std::int64_t> evict_idle(double now_s);

  const nn::SequenceStateSpec& spec() const { return spec_; }
  std::int64_t slots() const { return slots_; }
  std::int64_t active() const;
  std::size_t used_bytes() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t evictions() const;
  /// Current generation of a slot (for tests / introspection).
  std::uint64_t generation(std::int64_t slot) const;

 private:
  nn::SequenceStateSpec spec_;
  std::int64_t slots_ = 0;
  std::size_t capacity_bytes_ = 0;
  double idle_timeout_s_ = 0.0;
  tensor::AlignedBuffer slab_;

  mutable std::mutex mutex_;
  std::vector<std::int64_t> free_;       ///< free slot indices (LIFO)
  std::vector<bool> in_use_;
  std::vector<double> last_touch_s_;
  std::vector<std::uint64_t> generation_;
  std::uint64_t evictions_ = 0;
};

}  // namespace harvest::serving::sequence
