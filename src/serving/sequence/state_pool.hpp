#pragma once

/// \file state_pool.hpp
/// Server-owned per-sequence decode state. One slab allocation holds
/// `slots` fixed-size sequence states (KV-cache or RWKV recurrent,
/// per the model's SequenceStateSpec); the pool hands out leases with
/// byte-level capacity accounting and reclaims slots whose owner
/// stopped touching them (idle eviction). Deadline eviction is the
/// scheduler's job — it releases the slot the moment a sequence's
/// budget expires, which is what keeps an overloaded deployment from
/// pinning its whole pool on doomed sequences.
///
/// Thread-safe; leases themselves are single-owner (the scheduler
/// thread steps them).

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "nn/token_model.hpp"
#include "tensor/buffer.hpp"

namespace harvest::serving::sequence {

struct StatePoolConfig {
  /// Concurrent sequences the slab holds.
  std::int64_t slots = 16;
  /// Byte budget; 0 sizes it exactly to slots × bytes_per_sequence.
  /// A smaller budget caps the usable slot count (capacity accounting:
  /// a 1 GiB pool holds however many KV-caches fit, not `slots`).
  std::size_t capacity_bytes = 0;
  /// Reclaim leases not touched for this long; 0 disables.
  double idle_timeout_s = 0.0;
};

class StatePool {
 public:
  StatePool(const nn::SequenceStateSpec& spec, const StatePoolConfig& config);

  /// A leased slot: the state view plus the slot index to release.
  struct Lease {
    std::int64_t slot = -1;
    nn::SequenceState state;
  };

  /// Lease a zeroed state, or nullopt when the pool is exhausted.
  /// `now_s` seeds the idle clock (any monotonic seconds source).
  std::optional<Lease> acquire(double now_s);

  /// Refresh a lease's idle clock (call once per decode step).
  void touch(std::int64_t slot, double now_s);

  /// Return a slot to the free list.
  void release(std::int64_t slot);

  /// Reclaim leases idle longer than idle_timeout_s. Returns the slots
  /// evicted — the owner must treat its lease as gone.
  std::vector<std::int64_t> evict_idle(double now_s);

  const nn::SequenceStateSpec& spec() const { return spec_; }
  std::int64_t slots() const { return slots_; }
  std::int64_t active() const;
  std::size_t used_bytes() const;
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t evictions() const;

 private:
  nn::SequenceStateSpec spec_;
  std::int64_t slots_ = 0;
  std::size_t capacity_bytes_ = 0;
  double idle_timeout_s_ = 0.0;
  tensor::AlignedBuffer slab_;

  mutable std::mutex mutex_;
  std::vector<std::int64_t> free_;       ///< free slot indices (LIFO)
  std::vector<bool> in_use_;
  std::vector<double> last_touch_s_;
  std::uint64_t evictions_ = 0;
};

}  // namespace harvest::serving::sequence
