#pragma once

/// \file sequence_metrics.hpp
/// Telemetry for one sequence deployment: outcome counters obeying the
/// conservation law, time-to-first-token and per-sequence tokens/s
/// t-digests (with trace-id exemplars), and decode-iteration stats.
/// Rendered into the server's Prometheus exposition next to the image
/// metric families.

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "serving/sequence/sequence_request.hpp"

namespace harvest::serving::sequence {

class SequenceMetrics {
 public:
  void record_submitted();
  void record_admitted();
  void record_shed();
  /// Terminal accounting for one sequence (any outcome but kShed, which
  /// never entered). Feeds the digests for completed sequences.
  void record_retired(const SequenceResponse& response,
                      std::uint64_t trace_id = 0);
  /// One decode iteration over `rows` live sequences (pre-padding).
  void record_step(std::int64_t rows, double step_s);

  SequenceCounters counters() const;

  struct Snapshot {
    SequenceCounters counters;
    double ttft_p50_s = 0.0, ttft_p95_s = 0.0, ttft_p99_s = 0.0;
    double tokens_per_s_p50 = 0.0;
    double mean_batch_rows = 0.0;  ///< live sequences per iteration
  };
  Snapshot snapshot() const;

  /// `harvest_sequence[s]_*` families; active/pool gauges come from the
  /// caller (the scheduler owns them).
  void render_prometheus(obs::PrometheusWriter& out, const std::string& model,
                         std::int64_t active, std::size_t pool_used_bytes,
                         std::size_t pool_capacity_bytes,
                         std::int64_t pool_active,
                         std::int64_t pool_slots) const;

 private:
  mutable std::mutex mutex_;
  SequenceCounters counters_;
  obs::QuantileDigest ttft_s_;
  obs::QuantileDigest tokens_per_s_;
  double step_seconds_sum_ = 0.0;
  std::uint64_t step_rows_sum_ = 0;
};

}  // namespace harvest::serving::sequence
