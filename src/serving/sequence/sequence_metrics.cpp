#include "serving/sequence/sequence_metrics.hpp"

namespace harvest::serving::sequence {

const char* sequence_outcome_name(SequenceOutcome outcome) {
  switch (outcome) {
    case SequenceOutcome::kOk: return "ok";
    case SequenceOutcome::kFailed: return "failed";
    case SequenceOutcome::kShed: return "shed";
    case SequenceOutcome::kExpired: return "expired";
    case SequenceOutcome::kEvicted: return "evicted";
  }
  return "unknown";
}

void SequenceMetrics::record_submitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.submitted;
}

void SequenceMetrics::record_admitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.admitted;
}

void SequenceMetrics::record_shed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shed;
}

void SequenceMetrics::record_retired(const SequenceResponse& response,
                                     std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (response.outcome) {
    case SequenceOutcome::kOk: ++counters_.completed; break;
    case SequenceOutcome::kFailed: ++counters_.failed; break;
    case SequenceOutcome::kShed: ++counters_.shed; break;
    case SequenceOutcome::kExpired: ++counters_.expired; break;
    case SequenceOutcome::kEvicted: ++counters_.evicted; break;
  }
  counters_.tokens_generated +=
      static_cast<std::uint64_t>(response.tokens.size());
  if (response.outcome == SequenceOutcome::kOk) {
    if (response.timing.ttft_s > 0.0) {
      ttft_s_.add(response.timing.ttft_s, trace_id);
    }
    if (response.tokens_per_s > 0.0) {
      tokens_per_s_.add(response.tokens_per_s, trace_id);
    }
  }
}

void SequenceMetrics::record_step(std::int64_t rows, double step_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.steps;
  step_rows_sum_ += static_cast<std::uint64_t>(rows);
  step_seconds_sum_ += step_s;
}

SequenceCounters SequenceMetrics::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

SequenceMetrics::Snapshot SequenceMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters = counters_;
  snap.ttft_p50_s = ttft_s_.quantile(0.5);
  snap.ttft_p95_s = ttft_s_.quantile(0.95);
  snap.ttft_p99_s = ttft_s_.quantile(0.99);
  snap.tokens_per_s_p50 = tokens_per_s_.quantile(0.5);
  snap.mean_batch_rows =
      counters_.steps > 0
          ? static_cast<double>(step_rows_sum_) /
                static_cast<double>(counters_.steps)
          : 0.0;
  return snap;
}

void SequenceMetrics::render_prometheus(obs::PrometheusWriter& out,
                                        const std::string& model,
                                        std::int64_t active,
                                        std::size_t pool_used_bytes,
                                        std::size_t pool_capacity_bytes,
                                        std::int64_t pool_active,
                                        std::int64_t pool_slots) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const obs::PrometheusWriter::Labels labels = {{"model", model}};
  const auto outcome_counter = [&](SequenceOutcome outcome,
                                   std::uint64_t value) {
    obs::PrometheusWriter::Labels outcome_labels = labels;
    outcome_labels.emplace_back("outcome", sequence_outcome_name(outcome));
    out.counter("harvest_sequence_outcomes_total",
                "Sequences by terminal outcome.",
                static_cast<double>(value), outcome_labels);
  };
  outcome_counter(SequenceOutcome::kOk, counters_.completed);
  outcome_counter(SequenceOutcome::kFailed, counters_.failed);
  outcome_counter(SequenceOutcome::kShed, counters_.shed);
  outcome_counter(SequenceOutcome::kExpired, counters_.expired);
  outcome_counter(SequenceOutcome::kEvicted, counters_.evicted);
  out.counter("harvest_sequence_submitted_total",
              "Sequence requests received.",
              static_cast<double>(counters_.submitted), labels);
  out.counter("harvest_sequence_tokens_total", "Tokens generated.",
              static_cast<double>(counters_.tokens_generated), labels);
  out.counter("harvest_sequence_decode_steps_total",
              "Packed decode iterations executed.",
              static_cast<double>(counters_.steps), labels);
  out.gauge("harvest_sequences_active",
            "Sequences currently in the live decode batch.",
            static_cast<double>(active), labels);
  out.gauge("harvest_sequence_state_pool_bytes",
            "State-pool bytes leased to live sequences.",
            static_cast<double>(pool_used_bytes), labels);
  out.gauge("harvest_sequence_state_pool_capacity_bytes",
            "State-pool byte capacity.",
            static_cast<double>(pool_capacity_bytes), labels);
  out.gauge("harvest_sequence_state_pool_occupancy",
            "Leased state-pool slots / total slots.",
            pool_slots > 0 ? static_cast<double>(pool_active) /
                                 static_cast<double>(pool_slots)
                           : 0.0,
            labels);
  out.summary("harvest_sequence_ttft_seconds",
              "Time to first token of completed sequences, with trace-id "
              "exemplars.",
              ttft_s_, labels);
  out.summary("harvest_sequence_tokens_per_second",
              "Per-sequence decode rate of completed sequences.",
              tokens_per_s_, labels);
  if (counters_.steps > 0) {
    out.gauge("harvest_sequence_mean_batch_rows",
              "Mean live sequences per decode iteration.",
              static_cast<double>(step_rows_sum_) /
                  static_cast<double>(counters_.steps),
              labels);
  }
}

}  // namespace harvest::serving::sequence
