#include "serving/sequence/sequence_client.hpp"

#include <chrono>
#include <thread>

#include "obs/trace.hpp"

namespace harvest::serving::sequence {

RetryingSequenceClient::RetryingSequenceClient(Server& server,
                                               SequenceClientOptions options,
                                               std::uint64_t seed)
    : server_(&server), options_(std::move(options)),
      rng_(core::splitmix64(seed)) {}

SequenceResponse RetryingSequenceClient::generate_sync(
    SequenceRequest request) {
  auto& recorder = obs::TraceRecorder::instance();
  // One trace for all attempts: each submit becomes a sibling
  // "sequence_request" root under the shared trace id.
  if (recorder.enabled() && request.trace.trace_id == 0) {
    request.trace.trace_id = obs::next_trace_id();
  }
  const auto start = std::chrono::steady_clock::now();

  SequenceResponse response;
  const int max_attempts = std::max(options_.retry.max_attempts, 1);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.attempts;
    }
    SequenceRequest this_attempt = request;  // prompt + callback copy
    auto submitted = server_->submit_sequence(std::move(this_attempt));
    if (submitted.is_ok()) {
      response = submitted.value().get();
    } else {
      response = SequenceResponse{};
      response.id = request.id;
      response.status = submitted.status();
      response.outcome =
          submitted.status().code() == core::StatusCode::kResourceExhausted
              ? SequenceOutcome::kShed
              : SequenceOutcome::kFailed;
    }
    if (response.status.is_ok()) return response;
    if (!resilience::RetryPolicy::retryable(response.status.code()) ||
        attempt == max_attempts) {
      break;
    }
    double backoff = 0.0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.retries;
      backoff = options_.retry.backoff_s(attempt, rng_);
    }
    if (options_.retry.respect_deadline && request.deadline_s > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed + backoff >= request.deadline_s) break;  // budget gone
    }
    recorder.record_instant("retry_backoff", "sequence", request.trace);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }

  // Graceful degradation: one shot at the fallback deployment.
  if (!options_.fallback_model.empty() &&
      options_.fallback_model != request.model) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.degraded;
    }
    recorder.record_instant("degraded", "sequence", request.trace);
    request.model = options_.fallback_model;
    auto submitted = server_->submit_sequence(std::move(request));
    if (submitted.is_ok()) return submitted.value().get();
    SequenceResponse fallback;
    fallback.status = submitted.status();
    fallback.outcome = SequenceOutcome::kFailed;
    return fallback;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.abandoned;
  return response;
}

RetryingSequenceClient::Counters RetryingSequenceClient::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace harvest::serving::sequence
