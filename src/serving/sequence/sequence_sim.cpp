#include "serving/sequence/sequence_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "core/rng.hpp"
#include "core/status.hpp"

namespace harvest::serving::sequence {

namespace {

struct SimSeq {
  double t_arrive = 0.0;
  std::int64_t prompt = 0;
  std::int64_t decode = 0;   ///< tokens to generate (incl. the prefill token)
  std::int64_t fail_at = -1; ///< fail after generating this many; -1 = never

  std::int64_t done = 0;     ///< tokens generated so far
  double ttft_s = -1.0;
  bool finished = false;     ///< completed or failed (static: zombie row)
  bool failed = false;
};

std::int64_t round_up(std::int64_t n, std::int64_t multiple) {
  if (multiple <= 1) return n;
  return ((n + multiple - 1) / multiple) * multiple;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size() - 1)));
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

const char* batch_policy_name(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kContinuous: return "continuous";
    case BatchPolicy::kStatic: return "static";
  }
  return "unknown";
}

SequenceSimReport simulate_sequences(const SequenceSimConfig& config) {
  HARVEST_CHECK(config.arrival_rate > 0.0 && config.duration_s > 0.0);
  HARVEST_CHECK(config.max_active > 0);
  HARVEST_CHECK(config.prompt_min > 0 && config.prompt_max >= config.prompt_min);
  HARVEST_CHECK(config.decode_min > 0 && config.decode_max >= config.decode_min);

  // Arrival stream: one RNG, drawn up front, so every policy sees the
  // bit-identical workload.
  core::Rng rng(core::splitmix64(config.seed));
  std::vector<SimSeq> seqs;
  for (double t = rng.exponential(config.arrival_rate);
       t < config.duration_s; t += rng.exponential(config.arrival_rate)) {
    SimSeq s;
    s.t_arrive = t;
    s.prompt = rng.uniform_int(config.prompt_min, config.prompt_max);
    s.decode = rng.uniform_int(config.decode_min, config.decode_max);
    if (config.fail_rate > 0.0 &&
        rng.uniform(0.0, 1.0) < config.fail_rate) {
      s.fail_at = rng.uniform_int(1, s.decode);
    }
    seqs.push_back(s);
  }

  SequenceSimReport report;
  report.arrivals = seqs.size();

  std::deque<std::size_t> queue;
  std::vector<std::size_t> live;
  std::size_t next = 0;
  double clock = 0.0;
  std::uint64_t live_rows_sum = 0;
  std::uint64_t padded_rows_sum = 0;
  std::vector<double> ttfts;

  const auto ingest = [&](double now) {
    while (next < seqs.size() && seqs[next].t_arrive <= now) {
      if (config.queue_capacity > 0 &&
          queue.size() >= config.queue_capacity) {
        ++report.shed;
      } else {
        queue.push_back(next);
      }
      ++next;
    }
  };

  // Prefill one sequence at `clock` (advancing it) and emit its first
  // token. Returns false when the sequence already finished (single-
  // token generation or immediate failure).
  const auto prefill = [&](std::size_t idx) {
    SimSeq& s = seqs[idx];
    ++report.admitted;
    clock += config.cost.prefill_s(s.prompt);
    s.done = 1;
    ++report.tokens_generated;
    s.ttft_s = clock - s.t_arrive;
    ttfts.push_back(s.ttft_s);
    if (s.fail_at == 1) {
      s.finished = s.failed = true;
      ++report.failed;
      return false;
    }
    if (s.done >= s.decode) {
      s.finished = true;
      ++report.completed;
      if (config.ttft_deadline_s <= 0.0 || s.ttft_s <= config.ttft_deadline_s) {
        report.tokens_good += static_cast<std::uint64_t>(s.done);
      }
      return false;
    }
    return true;
  };

  // One generated token for a live sequence; marks completion/failure.
  const auto generate = [&](SimSeq& s) {
    ++s.done;
    ++report.tokens_generated;
    if (s.fail_at == s.done) {
      s.finished = s.failed = true;
      ++report.failed;
      return;
    }
    if (s.done >= s.decode) {
      s.finished = true;
      ++report.completed;
      if (config.ttft_deadline_s <= 0.0 || s.ttft_s <= config.ttft_deadline_s) {
        report.tokens_good += static_cast<std::uint64_t>(s.done);
      }
    }
  };

  const auto price_step = [&](std::int64_t rows, std::int64_t padded,
                              std::int64_t cached_total) {
    clock += config.cost.step_s(padded, cached_total);
    ++report.steps;
    live_rows_sum += static_cast<std::uint64_t>(rows);
    padded_rows_sum += static_cast<std::uint64_t>(padded);
  };

  if (config.policy == BatchPolicy::kContinuous) {
    while (next < seqs.size() || !queue.empty() || !live.empty()) {
      if (live.empty() && queue.empty()) {
        clock = std::max(clock, seqs[next].t_arrive);
        ingest(clock);
      }
      // Iteration-level admission: join the running batch between steps.
      while (static_cast<std::int64_t>(live.size()) < config.max_active &&
             !queue.empty()) {
        const std::size_t idx = queue.front();
        queue.pop_front();
        if (prefill(idx)) live.push_back(idx);
        ingest(clock);  // arrivals during the prefill
      }
      if (live.empty()) continue;

      const auto rows = static_cast<std::int64_t>(live.size());
      std::int64_t cached_total = 0;
      for (std::size_t idx : live) {
        cached_total += seqs[idx].prompt + seqs[idx].done;
      }
      price_step(rows, round_up(rows, config.length_multiple_of),
                 cached_total);
      for (std::size_t idx : live) generate(seqs[idx]);
      // Retire finished sequences immediately: they stop costing rows.
      std::erase_if(live,
                    [&](std::size_t idx) { return seqs[idx].finished; });
      ingest(clock);
    }
  } else {
    // Sequence-level static batching: the batch runs to completion;
    // finished members keep their padded row (zombies), and nobody
    // joins mid-batch.
    while (next < seqs.size() || !queue.empty() || !live.empty()) {
      if (live.empty()) {
        if (queue.empty()) {
          if (next >= seqs.size()) break;
          clock = std::max(clock, seqs[next].t_arrive);
          ingest(clock);
          continue;
        }
        while (static_cast<std::int64_t>(live.size()) < config.max_active &&
               !queue.empty()) {
          const std::size_t idx = queue.front();
          queue.pop_front();
          prefill(idx);
          live.push_back(idx);  // finished members still occupy a row
          ingest(clock);
        }
      }

      const auto rows = static_cast<std::int64_t>(live.size());
      std::int64_t live_rows = 0;
      std::int64_t cached_total = 0;
      for (std::size_t idx : live) {
        cached_total += seqs[idx].prompt + seqs[idx].done;
        if (!seqs[idx].finished) ++live_rows;
      }
      // The rectangular batch prices every row, finished or not.
      price_step(live_rows, round_up(rows, config.length_multiple_of),
                 cached_total);
      for (std::size_t idx : live) {
        if (!seqs[idx].finished) generate(seqs[idx]);
      }
      if (std::all_of(live.begin(), live.end(), [&](std::size_t idx) {
            return seqs[idx].finished;
          })) {
        live.clear();
      }
      ingest(clock);
    }
  }

  report.sim_time_s = clock;
  if (clock > 0.0) {
    report.throughput_tok_s =
        static_cast<double>(report.tokens_generated) / clock;
    report.goodput_tok_s = static_cast<double>(report.tokens_good) / clock;
  }
  std::sort(ttfts.begin(), ttfts.end());
  report.ttft_p50_s = percentile(ttfts, 0.50);
  report.ttft_p95_s = percentile(ttfts, 0.95);
  report.ttft_p99_s = percentile(ttfts, 0.99);
  if (report.steps > 0) {
    report.mean_batch_rows = static_cast<double>(live_rows_sum) /
                             static_cast<double>(report.steps);
    report.row_utilization = static_cast<double>(live_rows_sum) /
                             static_cast<double>(padded_rows_sum);
  }
  return report;
}

}  // namespace harvest::serving::sequence
