#pragma once

/// \file sequence_backend.hpp
/// Execution backends for the sequence scheduler, mirroring the image
/// path's Backend split: `NativeSequenceBackend` runs a real TokenModel
/// on the host CPU (greedy argmax sampling), `SimSequenceBackend`
/// prices the same steps with an analytic token cost model so the DES
/// and the bench can explore platforms this machine does not have —
/// deterministically.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "nn/token_model.hpp"

namespace harvest::serving::sequence {

/// Result of one prefill or one packed decode step.
struct SequenceStepResult {
  /// One greedily-sampled next token per input row (prefill: one).
  std::vector<std::int32_t> tokens;
  /// What the step cost on the (possibly simulated) device.
  double device_seconds = 0.0;
};

class SequenceBackend {
 public:
  virtual ~SequenceBackend() = default;

  virtual const std::string& name() const = 0;
  virtual const nn::TokenModelConfig& model_config() const = 0;
  virtual nn::SequenceStateSpec state_spec() const = 0;

  /// Absorb a prompt into `state` and sample the first generated token.
  virtual core::Result<SequenceStepResult> prefill(
      const std::int32_t* prompt, std::int64_t count,
      nn::SequenceState& state) = 0;

  /// One packed decode iteration: row i consumes `last_tokens[i]`
  /// against `states[i]` and yields `tokens[i]`.
  virtual core::Result<SequenceStepResult> decode(
      const std::int32_t* last_tokens, nn::SequenceState* const* states,
      std::int64_t count) = 0;
};

using SequenceBackendPtr = std::unique_ptr<SequenceBackend>;

/// Real forward passes through an nn::TokenModel.
class NativeSequenceBackend final : public SequenceBackend {
 public:
  NativeSequenceBackend(nn::TokenModelPtr model,
                        std::int64_t length_multiple_of = 1);

  const std::string& name() const override { return model_->name(); }
  const nn::TokenModelConfig& model_config() const override {
    return model_->config();
  }
  nn::SequenceStateSpec state_spec() const override {
    return model_->state_spec();
  }

  core::Result<SequenceStepResult> prefill(const std::int32_t* prompt,
                                           std::int64_t count,
                                           nn::SequenceState& state) override;
  core::Result<SequenceStepResult> decode(const std::int32_t* last_tokens,
                                          nn::SequenceState* const* states,
                                          std::int64_t count) override;

 private:
  nn::TokenModelPtr model_;
  std::int64_t length_multiple_of_;
  std::vector<float> logits_;  ///< scratch, scheduler-thread only
};

/// Analytic per-step cost for the DES and the sim backend: a fixed
/// iteration overhead (kernel launches, scheduling) plus compute priced
/// at a sustained MAC rate. The cached-token term is what makes
/// attention's step cost grow with history while RWKV's stays flat.
struct TokenCostModel {
  double step_overhead_s = 50e-6;
  double prefill_overhead_s = 100e-6;
  double macs_per_token = 2.5e6;        ///< history-independent work
  double macs_per_cached_token = 0.0;   ///< × cached tokens (attention)
  double mac_rate = 50e9;               ///< sustained MACs/s

  /// One packed iteration over `rows` rows (after length_multiple_of
  /// rounding) whose states hold `cached_total` tokens combined.
  double step_s(std::int64_t rows, std::int64_t cached_total) const;
  /// Absorbing a `prompt_tokens`-token prompt (one packed pass).
  double prefill_s(std::int64_t prompt_tokens) const;

  /// Price a model's architecture: macs terms from
  /// TokenModel::macs_per_token, the rate from the caller (e.g. a
  /// platform::DeviceSpec-derived practical rate).
  static TokenCostModel for_model(const nn::TokenModelConfig& config,
                                  double mac_rate);
};

/// Deterministic stand-in backend: tokens come from a seeded hash of
/// (sequence position, last token), costs from the TokenCostModel.
/// States advance but hold no tensor data, so the scheduler and pool
/// run exactly as with the native backend.
class SimSequenceBackend final : public SequenceBackend {
 public:
  SimSequenceBackend(const nn::TokenModelConfig& config, TokenCostModel cost,
                     std::uint64_t seed = 42);

  const std::string& name() const override { return config_.name; }
  const nn::TokenModelConfig& model_config() const override { return config_; }
  nn::SequenceStateSpec state_spec() const override;

  core::Result<SequenceStepResult> prefill(const std::int32_t* prompt,
                                           std::int64_t count,
                                           nn::SequenceState& state) override;
  core::Result<SequenceStepResult> decode(const std::int32_t* last_tokens,
                                          nn::SequenceState* const* states,
                                          std::int64_t count) override;

  const TokenCostModel& cost() const { return cost_; }

 private:
  std::int32_t next_token(std::int32_t last, std::int64_t position) const;

  nn::TokenModelConfig config_;
  TokenCostModel cost_;
  std::uint64_t seed_;
};

}  // namespace harvest::serving::sequence
