#include "serving/sequence/sequence_backend.hpp"

#include <algorithm>
#include <chrono>

#include "core/rng.hpp"

namespace harvest::serving::sequence {

namespace {

std::int32_t argmax_row(const float* logits, std::int64_t vocab) {
  std::int64_t best = 0;
  float best_v = logits[0];
  for (std::int64_t i = 1; i < vocab; ++i) {
    if (logits[i] > best_v) {
      best_v = logits[i];
      best = i;
    }
  }
  return static_cast<std::int32_t>(best);
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

NativeSequenceBackend::NativeSequenceBackend(nn::TokenModelPtr model,
                                             std::int64_t length_multiple_of)
    : model_(std::move(model)),
      length_multiple_of_(std::max<std::int64_t>(length_multiple_of, 1)) {
  HARVEST_CHECK(model_ != nullptr);
}

core::Result<SequenceStepResult> NativeSequenceBackend::prefill(
    const std::int32_t* prompt, std::int64_t count, nn::SequenceState& state) {
  if (count <= 0) {
    return core::Status::invalid_argument("empty prompt");
  }
  if (state.length() + count > model_->config().max_tokens) {
    return core::Status::invalid_argument("prompt exceeds context capacity");
  }
  const auto start = std::chrono::steady_clock::now();
  const std::int64_t vocab = model_->config().vocab;
  logits_.resize(static_cast<std::size_t>(vocab));
  model_->prefill(prompt, count, state, logits_.data());
  SequenceStepResult result;
  result.tokens.push_back(argmax_row(logits_.data(), vocab));
  result.device_seconds = seconds_since(start);
  return result;
}

core::Result<SequenceStepResult> NativeSequenceBackend::decode(
    const std::int32_t* last_tokens, nn::SequenceState* const* states,
    std::int64_t count) {
  if (count <= 0) return core::Status::invalid_argument("empty decode batch");
  const auto start = std::chrono::steady_clock::now();
  const std::int64_t vocab = model_->config().vocab;
  logits_.resize(static_cast<std::size_t>(count * vocab));
  model_->decode_batch(last_tokens, states, count, logits_.data(),
                       length_multiple_of_);
  SequenceStepResult result;
  result.tokens.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    result.tokens.push_back(argmax_row(logits_.data() + i * vocab, vocab));
  }
  result.device_seconds = seconds_since(start);
  return result;
}

double TokenCostModel::step_s(std::int64_t rows,
                              std::int64_t cached_total) const {
  const double macs = static_cast<double>(rows) * macs_per_token +
                      static_cast<double>(cached_total) * macs_per_cached_token;
  return step_overhead_s + macs / mac_rate;
}

double TokenCostModel::prefill_s(std::int64_t prompt_tokens) const {
  // A packed [T, dim] pass; the causal-attention term sums 0..T-1.
  const double t = static_cast<double>(prompt_tokens);
  const double macs =
      t * macs_per_token + 0.5 * t * (t - 1.0) * macs_per_cached_token;
  return prefill_overhead_s + macs / mac_rate;
}

TokenCostModel TokenCostModel::for_model(const nn::TokenModelConfig& config,
                                         double mac_rate) {
  // Derive the per-token terms from the architecture the same way
  // TokenModel::macs_per_token prices them: the cached-token slope is
  // macs(1) - macs(0), the flat term the zero-cache cost.
  nn::TokenModelPtr model = nn::build_token_model(config);
  TokenCostModel cost;
  cost.macs_per_token = model->macs_per_token(0);
  cost.macs_per_cached_token =
      model->macs_per_token(1) - model->macs_per_token(0);
  cost.mac_rate = mac_rate;
  return cost;
}

SimSequenceBackend::SimSequenceBackend(const nn::TokenModelConfig& config,
                                       TokenCostModel cost, std::uint64_t seed)
    : config_(config), cost_(cost), seed_(seed) {}

nn::SequenceStateSpec SimSequenceBackend::state_spec() const {
  // The sim holds no tensors, but the pool still accounts real bytes:
  // a simulated A100 deployment sizes its pool as the real one would.
  return {config_.arch == "attn" ? nn::StateKind::kKvCache
                                 : nn::StateKind::kRecurrent,
          config_.depth, config_.dim, config_.max_tokens};
}

std::int32_t SimSequenceBackend::next_token(std::int32_t last,
                                            std::int64_t position) const {
  const std::uint64_t h = core::splitmix64(
      seed_ ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(last))
               << 32) ^
      static_cast<std::uint64_t>(position));
  return static_cast<std::int32_t>(h % static_cast<std::uint64_t>(
                                           std::max<std::int64_t>(
                                               config_.vocab, 1)));
}

core::Result<SequenceStepResult> SimSequenceBackend::prefill(
    const std::int32_t* prompt, std::int64_t count, nn::SequenceState& state) {
  if (count <= 0) return core::Status::invalid_argument("empty prompt");
  if (state.length() + count > config_.max_tokens) {
    return core::Status::invalid_argument("prompt exceeds context capacity");
  }
  state.advance(count);
  SequenceStepResult result;
  result.tokens.push_back(next_token(prompt[count - 1], state.length()));
  result.device_seconds = cost_.prefill_s(count);
  return result;
}

core::Result<SequenceStepResult> SimSequenceBackend::decode(
    const std::int32_t* last_tokens, nn::SequenceState* const* states,
    std::int64_t count) {
  if (count <= 0) return core::Status::invalid_argument("empty decode batch");
  SequenceStepResult result;
  result.tokens.reserve(static_cast<std::size_t>(count));
  std::int64_t cached_total = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    cached_total += states[i]->length();
    states[i]->advance();
    result.tokens.push_back(next_token(last_tokens[i], states[i]->length()));
  }
  result.device_seconds = cost_.step_s(count, cached_total);
  return result;
}

}  // namespace harvest::serving::sequence
