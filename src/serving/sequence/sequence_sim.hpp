#pragma once

/// \file sequence_sim.hpp
/// Deterministic discrete-event simulation of a sequence deployment in
/// simulated time, pricing decode iterations with the TokenCostModel —
/// the sequence counterpart to serving/online_sim.hpp. Its purpose is
/// the scheduling-policy comparison the hardware of this machine cannot
/// time honestly: iteration-level continuous batching vs sequence-level
/// static batching, at arrival rates past saturation, bit-reproducibly.
///
/// Policies:
///  * kContinuous — the SequenceScheduler's discipline: one decode step
///    per iteration over all live sequences; admissions join between
///    steps; finished sequences retire (and stop costing rows)
///    immediately.
///  * kStatic — sequence-level batching: a batch forms, prefills, and
///    decodes until *every* member finishes; finished members keep
///    occupying their padded row until the longest one completes, and
///    no arrival joins mid-batch (TTFT waits for the whole batch).
///
/// Everything is a pure function of the config: same config, same
/// report, bit for bit.

#include <cstdint>

#include "serving/sequence/sequence_backend.hpp"

namespace harvest::serving::sequence {

enum class BatchPolicy : int {
  kContinuous = 0,
  kStatic = 1,
};
const char* batch_policy_name(BatchPolicy policy);

struct SequenceSimConfig {
  BatchPolicy policy = BatchPolicy::kContinuous;
  /// Poisson arrivals over [0, duration_s).
  double arrival_rate = 50.0;  ///< sequences/s
  double duration_s = 10.0;
  std::uint64_t seed = 42;
  /// Per-sequence draws (uniform, inclusive).
  std::int64_t prompt_min = 8, prompt_max = 64;
  std::int64_t decode_min = 4, decode_max = 64;
  /// Scheduler shape.
  std::int64_t max_active = 8;
  std::size_t queue_capacity = 64;  ///< arrivals beyond this shed; 0 = ∞
  std::int64_t length_multiple_of = 1;
  /// Per-sequence probability of a mid-decode backend failure
  /// (exercises the kFailed leg of the conservation law).
  double fail_rate = 0.0;
  /// Goodput criterion: a completed sequence's tokens count only when
  /// its first token arrived within this budget. 0 = count everything.
  double ttft_deadline_s = 0.5;
  TokenCostModel cost;
};

struct SequenceSimReport {
  // Conservation: arrivals == completed + shed + failed (the DES drains
  // fully, so nothing stays in flight and nothing evicts).
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t steps = 0;

  std::uint64_t tokens_generated = 0;  ///< all sequences
  std::uint64_t tokens_good = 0;       ///< completed within TTFT budget

  double sim_time_s = 0.0;  ///< clock when the last sequence drained
  double throughput_tok_s = 0.0;  ///< tokens_generated / sim_time_s
  double goodput_tok_s = 0.0;     ///< tokens_good / sim_time_s

  double ttft_p50_s = 0.0;
  double ttft_p95_s = 0.0;
  double ttft_p99_s = 0.0;

  /// Live (unpadded) rows per step vs padded rows actually priced.
  double mean_batch_rows = 0.0;
  double row_utilization = 0.0;  ///< live rows / padded rows

  bool conserved() const {
    return arrivals == completed + shed + failed;
  }
};

SequenceSimReport simulate_sequences(const SequenceSimConfig& config);

}  // namespace harvest::serving::sequence
