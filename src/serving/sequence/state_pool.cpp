#include "serving/sequence/state_pool.hpp"

#include <algorithm>

#include "core/status.hpp"

namespace harvest::serving::sequence {

StatePool::StatePool(const nn::SequenceStateSpec& spec,
                     const StatePoolConfig& config)
    : spec_(spec), idle_timeout_s_(config.idle_timeout_s) {
  HARVEST_CHECK(config.slots > 0);
  const std::size_t per_seq = spec.bytes_per_sequence();
  HARVEST_CHECK(per_seq > 0);
  std::int64_t slots = config.slots;
  if (config.capacity_bytes > 0) {
    // Capacity accounting: the byte budget caps the slot count.
    const auto affordable =
        static_cast<std::int64_t>(config.capacity_bytes / per_seq);
    slots = std::min(slots, std::max<std::int64_t>(affordable, 0));
    HARVEST_CHECK(slots > 0);
  }
  slots_ = slots;
  capacity_bytes_ = static_cast<std::size_t>(slots_) * per_seq;
  slab_ = tensor::AlignedBuffer(capacity_bytes_);
  in_use_.assign(static_cast<std::size_t>(slots_), false);
  last_touch_s_.assign(static_cast<std::size_t>(slots_), 0.0);
  free_.reserve(static_cast<std::size_t>(slots_));
  // LIFO free list, highest index on top, so slot 0 leases first.
  for (std::int64_t s = slots_ - 1; s >= 0; --s) free_.push_back(s);
}

std::optional<StatePool::Lease> StatePool::acquire(double now_s) {
  std::int64_t slot = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return std::nullopt;
    slot = free_.back();
    free_.pop_back();
    in_use_[static_cast<std::size_t>(slot)] = true;
    last_touch_s_[static_cast<std::size_t>(slot)] = now_s;
  }
  Lease lease;
  lease.slot = slot;
  lease.state = nn::SequenceState(
      spec_, slab_.as<float>() + slot * spec_.floats_per_sequence());
  lease.state.reset();
  return lease;
}

void StatePool::touch(std::int64_t slot, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  HARVEST_CHECK(slot >= 0 && slot < slots_);
  if (in_use_[static_cast<std::size_t>(slot)]) {
    last_touch_s_[static_cast<std::size_t>(slot)] = now_s;
  }
}

void StatePool::release(std::int64_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  HARVEST_CHECK(slot >= 0 && slot < slots_);
  if (!in_use_[static_cast<std::size_t>(slot)]) return;
  in_use_[static_cast<std::size_t>(slot)] = false;
  free_.push_back(slot);
}

std::vector<std::int64_t> StatePool::evict_idle(double now_s) {
  std::vector<std::int64_t> evicted;
  if (idle_timeout_s_ <= 0.0) return evicted;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::int64_t s = 0; s < slots_; ++s) {
    const auto i = static_cast<std::size_t>(s);
    if (in_use_[i] && now_s - last_touch_s_[i] > idle_timeout_s_) {
      in_use_[i] = false;
      free_.push_back(s);
      ++evictions_;
      evicted.push_back(s);
    }
  }
  return evicted;
}

std::int64_t StatePool::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_ - static_cast<std::int64_t>(free_.size());
}

std::size_t StatePool::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return (static_cast<std::size_t>(slots_) - free_.size()) *
         spec_.bytes_per_sequence();
}

std::uint64_t StatePool::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace harvest::serving::sequence
