#include "serving/sequence/state_pool.hpp"

#include <algorithm>

#include "core/status.hpp"

namespace harvest::serving::sequence {

StatePool::StatePool(const nn::SequenceStateSpec& spec,
                     const StatePoolConfig& config)
    : spec_(spec), idle_timeout_s_(config.idle_timeout_s) {
  HARVEST_CHECK(config.slots > 0);
  const std::size_t per_seq = spec.bytes_per_sequence();
  HARVEST_CHECK(per_seq > 0);
  std::int64_t slots = config.slots;
  if (config.capacity_bytes > 0) {
    // Capacity accounting: the byte budget caps the slot count.
    const auto affordable =
        static_cast<std::int64_t>(config.capacity_bytes / per_seq);
    slots = std::min(slots, std::max<std::int64_t>(affordable, 0));
    HARVEST_CHECK(slots > 0);
  }
  slots_ = slots;
  capacity_bytes_ = static_cast<std::size_t>(slots_) * per_seq;
  slab_ = tensor::AlignedBuffer(capacity_bytes_);
  in_use_.assign(static_cast<std::size_t>(slots_), false);
  last_touch_s_.assign(static_cast<std::size_t>(slots_), 0.0);
  generation_.assign(static_cast<std::size_t>(slots_), 0);
  free_.reserve(static_cast<std::size_t>(slots_));
  // LIFO free list, highest index on top, so slot 0 leases first.
  for (std::int64_t s = slots_ - 1; s >= 0; --s) free_.push_back(s);
}

std::optional<StatePool::Lease> StatePool::acquire(double now_s) {
  std::int64_t slot = -1;
  std::uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return std::nullopt;
    slot = free_.back();
    free_.pop_back();
    const auto i = static_cast<std::size_t>(slot);
    in_use_[i] = true;
    last_touch_s_[i] = now_s;
    // New ownership epoch: any lease stamped with an older generation
    // is dead from here on.
    generation = ++generation_[i];
  }
  Lease lease;
  lease.slot = slot;
  lease.generation = generation;
  lease.state = nn::SequenceState(
      spec_, slab_.as<float>() + slot * spec_.floats_per_sequence());
  lease.state.reset();
  return lease;
}

bool StatePool::touch(std::int64_t slot, std::uint64_t generation,
                      double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  HARVEST_CHECK(slot >= 0 && slot < slots_);
  const auto i = static_cast<std::size_t>(slot);
  if (!in_use_[i] || generation_[i] != generation) return false;
  last_touch_s_[i] = now_s;
  return true;
}

bool StatePool::release(std::int64_t slot, std::uint64_t generation) {
  std::lock_guard<std::mutex> lock(mutex_);
  HARVEST_CHECK(slot >= 0 && slot < slots_);
  const auto i = static_cast<std::size_t>(slot);
  // Stale lease: the slot was evicted (and possibly re-leased) since
  // this lease was handed out. Freeing it now would alias the current
  // owner onto the free list — exactly the double-lease bug the
  // generation stamp exists to stop.
  if (!in_use_[i] || generation_[i] != generation) return false;
  in_use_[i] = false;
  free_.push_back(slot);
  return true;
}

std::vector<std::int64_t> StatePool::evict_idle(double now_s) {
  std::vector<std::int64_t> evicted;
  if (idle_timeout_s_ <= 0.0) return evicted;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::int64_t s = 0; s < slots_; ++s) {
    const auto i = static_cast<std::size_t>(s);
    if (in_use_[i] && now_s - last_touch_s_[i] > idle_timeout_s_) {
      in_use_[i] = false;
      // Invalidate the outstanding lease before the slot can be
      // re-acquired; its touch/release will no-op on the mismatch.
      ++generation_[i];
      free_.push_back(s);
      ++evictions_;
      evicted.push_back(s);
    }
  }
  return evicted;
}

std::int64_t StatePool::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_ - static_cast<std::int64_t>(free_.size());
}

std::size_t StatePool::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return (static_cast<std::size_t>(slots_) - free_.size()) *
         spec_.bytes_per_sequence();
}

std::uint64_t StatePool::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t StatePool::generation(std::int64_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HARVEST_CHECK(slot >= 0 && slot < slots_);
  return generation_[static_cast<std::size_t>(slot)];
}

}  // namespace harvest::serving::sequence
