#include "serving/repository.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/init.hpp"
#include "nn/models.hpp"
#include "nn/quant.hpp"
#include "nn/rwkv.hpp"
#include "nn/serialize.hpp"
#include "platform/perf_model.hpp"
#include "nn/token_model.hpp"
#include "serving/native_backend.hpp"
#include "serving/resilience/fault.hpp"
#include "serving/sequence/sequence_backend.hpp"
#include "serving/sim_backend.hpp"

namespace harvest::serving {
namespace {

core::Result<nn::ModelPtr> build_native_model(const core::Json& entry) {
  const std::string architecture = entry.get_string("architecture", "vit");
  const std::int64_t classes = entry.get_int("classes", 39);
  nn::ModelPtr model;
  if (architecture == "vit") {
    nn::ViTConfig config;
    config.name = entry.get_string("name", "vit");
    config.image = entry.get_int("image", 32);
    config.patch = entry.get_int("patch", 4);
    config.dim = entry.get_int("dim", 64);
    config.depth = entry.get_int("depth", 2);
    config.heads = entry.get_int("heads", 4);
    config.num_classes = classes;
    if (config.dim % config.heads != 0) {
      return core::Status::invalid_argument("dim must divide into heads");
    }
    model = nn::build_vit(config);
  } else if (architecture == "resnet") {
    nn::ResNetConfig config;
    config.name = entry.get_string("name", "resnet");
    config.image = entry.get_int("image", 64);
    config.num_classes = classes;
    const core::Json* stages = entry.find("stages");
    if (stages != nullptr && stages->is_array()) {
      config.stage_blocks.clear();
      for (const core::Json& stage : stages->as_array()) {
        config.stage_blocks.push_back(stage.as_int());
      }
    } else {
      config.stage_blocks = {1, 1};
    }
    model = nn::build_resnet(config);
  } else if (architecture == "rwkv") {
    nn::RwkvConfig config;
    config.name = entry.get_string("name", "rwkv");
    config.image = entry.get_int("image", 32);
    config.patch = entry.get_int("patch", 4);
    config.dim = entry.get_int("dim", 64);
    config.depth = entry.get_int("depth", 2);
    config.num_classes = classes;
    model = nn::build_rwkv(config);
  } else {
    return core::Status::invalid_argument("unknown architecture: " +
                                          architecture);
  }

  nn::init_weights(*model,
                   static_cast<std::uint64_t>(entry.get_int("seed", 1)));
  const std::string weights = entry.get_string("weights", "");
  if (!weights.empty()) {
    HARVEST_RETURN_IF_ERROR(nn::load_weights(*model, weights));
  }
  // Quantize after the weights are final — the rewrite snapshots them.
  if (entry.get_string("precision", "fp32") == "int8") {
    nn::quantize_model(*model);
  }
  // AOT weight packing: the per-call GEMM pack pass moves out of the
  // steady-state forward and into the measured model-load cold start.
  model->prepare();
  return model;
}

core::Result<nn::TokenModelPtr> build_token_model_entry(
    const core::Json& entry) {
  nn::TokenModelConfig config;
  config.name = entry.get_string("name", "agri-lm");
  config.arch = entry.get_string("architecture", "rwkv");
  config.vocab = entry.get_int("vocab", 512);
  config.dim = entry.get_int("dim", 128);
  config.depth = entry.get_int("depth", 4);
  config.heads = entry.get_int("heads", 4);
  config.max_tokens = entry.get_int("max_tokens", 256);
  if (config.arch != "rwkv" && config.arch != "attn") {
    return core::Status::invalid_argument("unknown architecture: " +
                                          config.arch);
  }
  if (config.vocab <= 0 || config.dim <= 0 || config.depth <= 0 ||
      config.max_tokens <= 0) {
    return core::Status::invalid_argument(
        "sequence entry needs vocab/dim/depth/max_tokens > 0");
  }
  nn::TokenModelPtr model = nn::build_token_model(config);
  nn::init_token_model(*model,
                       static_cast<std::uint64_t>(entry.get_int("seed", 1)));
  const std::string weights = entry.get_string("weights", "");
  if (!weights.empty()) {
    HARVEST_RETURN_IF_ERROR(nn::load_token_model(*model, weights));
  }
  return model;
}

/// "workload": "sequence" entries deploy a continuous-batching token
/// model (docs/SEQUENCE_SERVING.md) instead of an image deployment.
core::Status register_sequence_entry(Server& server, const core::Json& entry) {
  SequenceDeploymentConfig deployment;
  deployment.name = entry.get_string("name", "");
  deployment.scheduler.max_active = entry.get_int("max_active", 8);
  deployment.scheduler.max_queue_depth =
      static_cast<std::size_t>(entry.get_int("max_queue_depth", 256));
  deployment.scheduler.length_multiple_of =
      entry.get_int("length_multiple_of", 1);
  deployment.scheduler.default_max_new_tokens =
      entry.get_int("max_new_tokens", 32);
  deployment.scheduler.default_deadline_s =
      entry.get_number("deadline_ms", 0.0) * 1e-3;
  deployment.pool.slots =
      entry.get_int("slots", std::max<std::int64_t>(
                                 deployment.scheduler.max_active, 1));
  deployment.pool.capacity_bytes =
      static_cast<std::size_t>(entry.get_int("state_capacity_bytes", 0));
  deployment.pool.idle_timeout_s = entry.get_number("idle_timeout_s", 0.0);
  if (deployment.scheduler.max_active <= 0 ||
      deployment.scheduler.length_multiple_of <= 0) {
    return core::Status::invalid_argument(
        "sequence entry needs max_active > 0 and length_multiple_of > 0");
  }
  if (deployment.pool.slots < deployment.scheduler.max_active) {
    return core::Status::invalid_argument(
        "sequence entry needs slots >= max_active");
  }

  const std::string backend = entry.get_string("backend", "native");
  if (backend == "native") {
    // Validate once up front so a broken entry fails here.
    auto probe = build_token_model_entry(entry);
    if (!probe.is_ok()) return probe.status();
    const std::int64_t multiple = deployment.scheduler.length_multiple_of;
    return server.register_sequence_model(
        deployment, [entry, multiple]() -> sequence::SequenceBackendPtr {
          auto model = build_token_model_entry(entry);
          if (!model.is_ok()) return nullptr;
          return std::make_unique<sequence::NativeSequenceBackend>(
              std::move(model).value(), multiple);
        });
  }
  if (backend == "sim") {
    nn::TokenModelConfig config;
    config.name = deployment.name;
    config.arch = entry.get_string("architecture", "rwkv");
    config.vocab = entry.get_int("vocab", 512);
    config.dim = entry.get_int("dim", 128);
    config.depth = entry.get_int("depth", 4);
    config.heads = entry.get_int("heads", 4);
    config.max_tokens = entry.get_int("max_tokens", 256);
    if (config.arch != "rwkv" && config.arch != "attn") {
      return core::Status::invalid_argument("unknown architecture: " +
                                            config.arch);
    }
    double mac_rate = 50e9;
    if (const std::string device_name = entry.get_string("device", "");
        !device_name.empty()) {
      const platform::DeviceSpec* device = platform::find_device(device_name);
      if (device == nullptr) {
        return core::Status::invalid_argument("unknown device: " +
                                              device_name);
      }
      // practical TFLOPs → MAC/s (one MAC = two FLOPs).
      mac_rate =
          device->practical_tflops_at(platform::Precision::kFP32) * 0.5e12;
    }
    const auto cost = sequence::TokenCostModel::for_model(config, mac_rate);
    const auto seed = static_cast<std::uint64_t>(entry.get_int("seed", 42));
    return server.register_sequence_model(
        deployment, [config, cost, seed]() -> sequence::SequenceBackendPtr {
          return std::make_unique<sequence::SimSequenceBackend>(config, cost,
                                                                seed);
        });
  }
  return core::Status::invalid_argument("unknown backend: " + backend);
}

core::Status register_entry(
    Server& server, const core::Json& entry,
    std::vector<std::pair<std::string, std::string>>& degrade_edges) {
  if (!entry.is_object()) {
    return core::Status::invalid_argument("model entry must be an object");
  }
  const std::string workload = entry.get_string("workload", "image");
  if (workload == "sequence") {
    return register_sequence_entry(server, entry);
  }
  if (workload != "image") {
    return core::Status::invalid_argument("unknown workload: " + workload);
  }
  ModelDeploymentConfig deployment;
  deployment.name = entry.get_string("name", "");
  deployment.max_batch = entry.get_int("max_batch", 8);
  deployment.instances = entry.get_int("instances", 1);
  if (deployment.instances <= 0) {
    return core::Status::invalid_argument(
        "deployment '" + deployment.name + "' needs instances > 0 (got " +
        std::to_string(deployment.instances) + ")");
  }
  deployment.max_queue_delay_s =
      entry.get_number("max_queue_delay_ms", 2.0) * 1e-3;
  deployment.batched_preproc = entry.get_bool("batched_preproc", true);
  // Multi-tenancy keys (docs/MULTITENANCY.md): the fair-share principal
  // this deployment bills to, its WFQ weight and outstanding-request
  // quota, and the batcher's back-pressure bound.
  deployment.tenant = entry.get_string("tenant", "");
  deployment.weight = entry.get_number("weight", 1.0);
  deployment.quota = entry.get_int("quota", 0);
  const std::int64_t queue_capacity = entry.get_int("queue_capacity", 4096);
  if (queue_capacity <= 0) {
    return core::Status::invalid_argument(
        "deployment '" + deployment.name + "' needs queue_capacity > 0 (got " +
        std::to_string(queue_capacity) + ")");
  }
  deployment.queue_capacity = static_cast<std::size_t>(queue_capacity);
  if (deployment.weight <= 0.0) {
    return core::Status::invalid_argument(
        "deployment '" + deployment.name + "' needs weight > 0");
  }
  if (deployment.quota < 0) {
    return core::Status::invalid_argument(
        "deployment '" + deployment.name + "' needs quota >= 0");
  }
  if (const core::Json* preferred = entry.find("preferred_batch_sizes")) {
    if (preferred->is_array()) {
      for (const core::Json& size : preferred->as_array()) {
        deployment.preferred_batch_sizes.push_back(size.as_int());
      }
    }
  }
  if (const core::Json* preproc = entry.find("preproc")) {
    deployment.preproc.output_size = preproc->get_int("output_size", 224);
    deployment.preproc.perspective = preproc->get_bool("perspective", false);
  }

  // Resilience keys (docs/RESILIENCE.md): fault injection decorates the
  // deployment's backends; admission/degrade_to configure overload
  // control. degrade_to targets are validated after the whole repository
  // is loaded, so a twin may be declared later in the array.
  resilience::FaultPlan faults;
  if (const core::Json* fault_json = entry.find("faults")) {
    auto parsed = resilience::parse_fault_plan(*fault_json);
    if (!parsed.is_ok()) return parsed.status();
    faults = parsed.value();
  }
  if (const core::Json* admission_json = entry.find("admission")) {
    auto parsed = resilience::parse_admission_config(*admission_json);
    if (!parsed.is_ok()) return parsed.status();
    deployment.admission = parsed.value();
  }
  // Service-level objectives (docs/OBSERVABILITY.md): latency and
  // availability targets feeding the burn-rate tracker. Optional keys
  // tune the sliding window and the admission-pressure alert threshold.
  if (const core::Json* slo_json = entry.find("slo")) {
    if (!slo_json->is_object()) {
      return core::Status::invalid_argument("\"slo\" must be an object");
    }
    deployment.slo.latency_target_s =
        slo_json->get_number("latency_target_ms", 0.0) * 1e-3;
    deployment.slo.availability_target =
        slo_json->get_number("availability_target", 0.0);
    deployment.slo_window_s = slo_json->get_number("window_s", 60.0);
    deployment.slo_burn_alert = slo_json->get_number("burn_alert", 2.0);
    if (deployment.slo.latency_target_s < 0.0 ||
        deployment.slo.availability_target < 0.0 ||
        deployment.slo.availability_target >= 1.0 ||
        deployment.slo_window_s <= 0.0 || deployment.slo_burn_alert <= 0.0) {
      return core::Status::invalid_argument(
          "slo needs latency_target_ms >= 0, availability_target in [0, 1), "
          "window_s > 0, burn_alert > 0");
    }
  }

  deployment.degrade_to = entry.get_string("degrade_to", "");
  if (deployment.degrade_to == deployment.name &&
      !deployment.degrade_to.empty()) {
    return core::Status::invalid_argument(
        "degrade_to must not point at the deployment itself: " +
        deployment.name);
  }
  if (!deployment.degrade_to.empty()) {
    degrade_edges.emplace_back(deployment.name, deployment.degrade_to);
  }

  const std::string backend = entry.get_string("backend", "native");
  deployment.precision = entry.get_string("precision", "fp32");
  if (deployment.precision != "fp32" && deployment.precision != "int8") {
    return core::Status::invalid_argument("unknown precision: " +
                                          deployment.precision);
  }
  if (backend == "sim" && deployment.precision != "fp32") {
    return core::Status::invalid_argument(
        "sim backend only supports fp32 (the device model prices fp16/int8 "
        "analytically elsewhere)");
  }
  if (backend == "native") {
    if (deployment.preproc.output_size == 224 && !entry.contains("preproc")) {
      // Default the preprocessing size to the model's input when the
      // config does not pin it.
      deployment.preproc.output_size = entry.get_int("image", 32);
    }
    // Validate the model once up front so a broken entry fails here,
    // not inside the instance factory.
    auto probe = build_native_model(entry);
    if (!probe.is_ok()) return probe.status();
    // Resident-bytes accounting for the weight store: what one built
    // backend stream of this model keeps in memory.
    for (const nn::NamedParam& param : probe.value()->params()) {
      if (param.tensor != nullptr) {
        deployment.model_bytes += param.tensor->size_bytes();
      }
    }
    // Weight-sharing key: the content signature of what the factory
    // builds. Deployments with equal signatures (same backbone at the
    // same precision and batch shape) share in-memory streams. An
    // explicit "weight_key" overrides; fault-injected deployments stay
    // private (their decorated streams are not interchangeable).
    if (entry.contains("weight_key")) {
      deployment.weight_key = entry.get_string("weight_key", "");
    } else if (entry.find("faults") == nullptr) {
      std::string stages_sig;
      if (const core::Json* stages = entry.find("stages");
          stages != nullptr && stages->is_array()) {
        for (const core::Json& stage : stages->as_array()) {
          stages_sig += std::to_string(stage.as_int()) + ",";
        }
      }
      deployment.weight_key =
          "native|" + entry.get_string("architecture", "vit") + "|" +
          std::to_string(entry.get_int("image", 32)) + "|" +
          std::to_string(entry.get_int("patch", 4)) + "|" +
          std::to_string(entry.get_int("dim", 64)) + "|" +
          std::to_string(entry.get_int("depth", 2)) + "|" +
          std::to_string(entry.get_int("heads", 4)) + "|" +
          std::to_string(entry.get_int("classes", 39)) + "|" + stages_sig +
          "|" + std::to_string(entry.get_int("seed", 1)) + "|" +
          entry.get_string("weights", "") + "|" + deployment.precision + "|" +
          std::to_string(deployment.max_batch);
    }
    const std::int64_t max_batch = deployment.max_batch;
    const std::string precision = deployment.precision;
    // The factory runs once per instance, in order, on one thread; the
    // counter salts each instance's fault stream so siblings fail
    // independently but reproducibly.
    return server.register_model(
        deployment,
        [entry, max_batch, precision, faults,
         salt = std::make_shared<std::atomic<std::uint64_t>>(0)]()
            -> BackendPtr {
          auto model = build_native_model(entry);
          if (!model.is_ok()) return nullptr;
          BackendPtr built = std::make_unique<NativeBackend>(
              std::move(model).value(), max_batch, precision);
          return resilience::wrap_with_faults(std::move(built), faults,
                                              salt->fetch_add(1));
        });
  }
  if (backend == "sim") {
    const std::string model_name = entry.get_string("model", "");
    const std::string device_name = entry.get_string("device", "");
    const platform::DeviceSpec* device = platform::find_device(device_name);
    if (device == nullptr) {
      return core::Status::invalid_argument("unknown device: " + device_name);
    }
    if (!nn::find_model_spec(model_name).has_value()) {
      return core::Status::invalid_argument("unknown sim model: " + model_name);
    }
    if (!entry.contains("preproc")) {
      deployment.preproc.output_size =
          nn::find_model_spec(model_name)->input_size;
    }
    const std::int64_t classes = entry.get_int("classes", 39);
    const std::int64_t max_batch = deployment.max_batch;
    // Sim backends are weightless (model_bytes stays 0; never paged)
    // but still dedup: same (model, device, classes, batch) share.
    if (entry.contains("weight_key")) {
      deployment.weight_key = entry.get_string("weight_key", "");
    } else if (entry.find("faults") == nullptr) {
      deployment.weight_key = "sim|" + model_name + "|" + device_name + "|" +
                              std::to_string(classes) + "|" +
                              std::to_string(max_batch);
    }
    return server.register_model(
        deployment,
        [model_name, device, classes, max_batch, faults,
         salt = std::make_shared<std::atomic<std::uint64_t>>(0)]()
            -> BackendPtr {
          BackendPtr built = std::make_unique<SimBackend>(
              platform::make_engine_model(*device, model_name), classes,
              max_batch);
          return resilience::wrap_with_faults(std::move(built), faults,
                                              salt->fetch_add(1));
        });
  }
  return core::Status::invalid_argument("unknown backend: " + backend);
}

}  // namespace

core::Status load_repository(Server& server, const core::Json& config) {
  const core::Json* models = config.find("models");
  if (models == nullptr || !models->is_array()) {
    return core::Status::invalid_argument(
        "repository config needs a \"models\" array");
  }
  // Duplicate-name pre-pass: fail before registering anything, naming
  // the offender. (The server would also reject the second
  // registration, but by then the first half of the repository is
  // already live — fail-fast keeps a bad config all-or-nothing up to
  // the duplicate.)
  {
    std::vector<std::string> seen;
    for (const core::Json& entry : models->as_array()) {
      if (!entry.is_object()) continue;  // register_entry reports this
      const std::string name = entry.get_string("name", "");
      if (name.empty()) continue;
      if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
        return core::Status::invalid_argument(
            "duplicate deployment name in repository: '" + name + "'");
      }
      seen.push_back(name);
    }
  }
  // Fleet-level keys: a pinned shared-pool size (consolidation below
  // the sum of instances) and the weight store's paging budget. Applied
  // before any model registers so the first deployment already obeys.
  if (config.contains("workers")) {
    const std::int64_t workers = config.get_int("workers", 0);
    if (workers <= 0) {
      return core::Status::invalid_argument(
          "repository \"workers\" must be > 0");
    }
    server.set_worker_target(static_cast<std::size_t>(workers));
  }
  if (config.contains("weight_budget_bytes")) {
    const std::int64_t budget = config.get_int("weight_budget_bytes", 0);
    if (budget < 0) {
      return core::Status::invalid_argument(
          "repository \"weight_budget_bytes\" must be >= 0");
    }
    server.weight_store().set_budget_bytes(static_cast<std::size_t>(budget));
  }
  std::vector<std::pair<std::string, std::string>> degrade_edges;
  for (const core::Json& entry : models->as_array()) {
    HARVEST_RETURN_IF_ERROR(register_entry(server, entry, degrade_edges));
  }
  // Post-pass: every degrade target must be a registered deployment.
  for (const auto& [from, to] : degrade_edges) {
    if (server.metrics(to) == nullptr) {
      return core::Status::invalid_argument(
          "deployment '" + from + "' degrades to unknown deployment '" + to +
          "'");
    }
  }
  return core::Status::ok();
}

core::Status load_repository_file(Server& server, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return core::Status::not_found("cannot open " + path);
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(f);
  auto parsed = core::Json::parse(text);
  if (!parsed.is_ok()) return parsed.status();
  return load_repository(server, parsed.value());
}

}  // namespace harvest::serving
