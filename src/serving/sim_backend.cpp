#include "serving/sim_backend.hpp"

#include "core/rng.hpp"

namespace harvest::serving {

SimBackend::SimBackend(platform::EngineModel engine, std::int64_t num_classes,
                       std::int64_t max_batch)
    : engine_(std::move(engine)),
      name_(engine_.model_spec().name + "@" + engine_.device().name),
      num_classes_(num_classes), max_batch_(max_batch) {
  HARVEST_CHECK_MSG(num_classes_ >= 1 && max_batch_ >= 1,
                    "bad sim backend config");
}

double SimBackend::latency_s(std::int64_t batch) const {
  const platform::EngineEstimate est = engine_.estimate(batch);
  HARVEST_CHECK_MSG(!est.oom, "simulated batch exceeds device memory");
  return est.latency_s;
}

core::Result<BackendResult> SimBackend::infer(const tensor::Tensor& batch) {
  const std::int64_t n = batch.shape()[0];
  if (n > max_batch_) {
    return core::Status::invalid_argument("batch exceeds max_batch");
  }
  const platform::EngineEstimate est = engine_.estimate(n);
  if (est.oom) {
    return core::Status::out_of_memory(name_ + " cannot fit batch " +
                                       std::to_string(n));
  }
  BackendResult result;
  result.device_seconds = est.latency_s;
  result.logits =
      tensor::Tensor(tensor::Shape{n, num_classes_}, tensor::DType::kF32);
  // Deterministic pseudo-logits keyed on a cheap digest of each input
  // row, so repeated simulation of the same request agrees.
  float* out = result.logits.f32();
  const float* in = batch.f32();
  const std::int64_t per_image = batch.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    double digest = 0.0;
    const float* row = in + i * per_image;
    const std::int64_t stride = std::max<std::int64_t>(per_image / 64, 1);
    for (std::int64_t j = 0; j < per_image; j += stride) {
      digest += static_cast<double>(row[j]);
    }
    core::Rng rng(core::splitmix64(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(digest * 1e3))));
    for (std::int64_t c = 0; c < num_classes_; ++c) {
      out[i * num_classes_ + c] = static_cast<float>(rng.normal());
    }
  }
  return result;
}

}  // namespace harvest::serving
