#pragma once

/// \file scenarios.hpp
/// Drivers for the deployment scenarios of §2.2 against the *real*
/// threaded server: offline (batch over a collected dataset, Fig. 3a)
/// and real-time (paced camera frames with a deadline, Fig. 3b). The
/// online scenario at cloud scale runs in simulated time instead — see
/// online_sim.hpp.

#include "data/synthetic.hpp"
#include "serving/resilience/retry.hpp"
#include "serving/server.hpp"

namespace harvest::serving {

struct OfflineReport {
  std::int64_t processed = 0;
  std::int64_t failed = 0;
  double wall_seconds = 0.0;
  double throughput_img_per_s = 0.0;
  MetricsSnapshot metrics;
  std::vector<std::int64_t> class_histogram;  ///< predictions per class
};

/// Push samples [0, count) of `dataset` through deployment `model`,
/// keeping at most `max_in_flight` requests outstanding (the offline
/// frontend's window), and collect results.
OfflineReport run_offline(Server& server, const std::string& model,
                          const data::SyntheticDataset& dataset,
                          std::int64_t count, std::int64_t max_in_flight = 64);

struct RealTimeConfig {
  double frame_interval_s = 1.0 / 30.0;  ///< camera rate
  std::int64_t frames = 90;
  double deadline_s = 0.05;  ///< per-frame latency budget
  /// Frontend retry against transient failures (shed / unavailable /
  /// internal), budgeted by deadline_s. Default = disabled (one try).
  resilience::RetryPolicy retry;
};

struct RealTimeReport {
  std::int64_t frames_processed = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t frames_dropped = 0;  ///< skipped because we fell behind
  std::int64_t frames_failed = 0;   ///< terminal non-deadline failures
  std::int64_t retries = 0;         ///< frontend re-submits
  std::int64_t retry_abandoned = 0; ///< gave up after retries/budget
  double p95_latency_s = 0.0;
  double mean_latency_s = 0.0;
  MetricsSnapshot metrics;
};

/// Sequential on-vehicle loop: grab frame i (deterministic synthetic
/// camera), infer with a deadline, pace to the frame interval; frames
/// that would start late are dropped (the vehicle keeps moving).
RealTimeReport run_realtime(Server& server, const std::string& model,
                            const data::SyntheticDataset& dataset,
                            const RealTimeConfig& config);

}  // namespace harvest::serving
