#pragma once

/// \file weight_store.hpp
/// Fleet-scale weight sharing: a refcounted, deduplicated store of
/// loaded backends keyed by content signature. Deployments that serve
/// the same backbone (same architecture, geometry, seed, checkpoint,
/// precision) share one entry — and therefore one set of in-memory
/// execution streams — instead of each loading a private copy. This is
/// what lets hundreds of fine-tune deployments fit on one edge box
/// (the paper's compute-continuum consolidation argument).
///
/// An entry holds up to `streams` backend slots. Slots build lazily:
/// the first is built eagerly at acquire (so a broken factory fails at
/// registration, not at first request), the rest on demand when claim
/// contention asks for them. A byte budget pages idle streams back out
/// (LRU by entry), and the next claim rebuilds — that rebuild is the
/// cold start the serving metrics record.
///
/// Thread-safe. Backends build and execute outside the store mutex;
/// a slot under construction is marked `building` so siblings neither
/// double-build nor page it out.

#include <cstdint>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "serving/backend.hpp"

namespace harvest::serving {

class WeightStore {
 public:
  using BackendFactory = std::function<BackendPtr()>;

  struct Entry;
  using EntryPtr = std::shared_ptr<Entry>;

  /// One claimed execution stream. `cold_start_s` > 0 when the claim
  /// had to (re)build the backend — the model-paging cold start.
  struct StreamLease {
    Entry* entry = nullptr;
    std::size_t index = 0;
    Backend* backend = nullptr;
    double cold_start_s = 0.0;
    explicit operator bool() const { return backend != nullptr; }
  };

  struct Stats {
    std::size_t entries = 0;
    std::size_t resident_streams = 0;
    std::size_t resident_bytes = 0;
    /// Bytes the same deployments would occupy without sharing: each
    /// acquire priced at its own full stream count.
    std::size_t naive_bytes = 0;
    std::uint64_t dedup_hits = 0;
    std::uint64_t cold_loads = 0;
    std::uint64_t pageouts = 0;
  };

  /// `budget_bytes` caps resident weight bytes (0 = unlimited). Busy
  /// and building streams never page out, so a fully-busy store may
  /// transiently exceed the budget.
  explicit WeightStore(std::size_t budget_bytes = 0);

  void set_budget_bytes(std::size_t budget_bytes);
  std::size_t budget_bytes() const;

  /// Acquire (or create) the entry for `key`. A repeat key is a dedup
  /// hit: the caller shares the existing entry's streams, and the
  /// entry's stream count grows to max(existing, streams) — sharers
  /// share execution streams, they do not stack private copies.
  /// `bytes_per_stream` prices paging decisions (0 = weightless, e.g.
  /// sim backends; such entries never page). The first stream is built
  /// eagerly on entry creation so factory failures surface here.
  core::Result<EntryPtr> acquire(const std::string& key,
                                 BackendFactory factory, std::size_t streams,
                                 std::size_t bytes_per_stream);

  /// Claim a free stream of `entry`, blocking while all streams are
  /// busy, rebuilding (cold start) if the stream was paged out. Returns
  /// an empty lease only when the store is shut down.
  StreamLease claim(const EntryPtr& entry);

  /// Return a claimed stream; wakes blocked claimants.
  void release(const StreamLease& lease);

  /// Unblock every claimant (they get empty leases). Idempotent.
  void shutdown();

  Stats stats() const;

 private:
  enum class SlotState : int { kEmpty = 0, kBuilding = 1, kReady = 2, kBusy = 3 };

  struct Slot {
    SlotState state = SlotState::kEmpty;
    BackendPtr backend;
  };

 public:
  /// Opaque outside the store; public only so EntryPtr can be a plain
  /// shared_ptr.
  struct Entry {
    std::string key;
    BackendFactory factory;
    std::size_t bytes_per_stream = 0;
    std::vector<Slot> slots;
    std::uint64_t last_use_tick = 0;  ///< LRU clock for paging
    std::uint64_t cold_loads = 0;
  };

 private:
  /// Page out idle ready streams (LRU by entry) until resident bytes
  /// fit the budget or nothing else is evictable. Callers hold mutex_.
  void enforce_budget_locked();
  std::size_t resident_bytes_locked() const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, EntryPtr> entries_;
  std::size_t budget_bytes_ = 0;
  std::size_t naive_bytes_ = 0;
  std::uint64_t tick_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::uint64_t cold_loads_ = 0;
  std::uint64_t pageouts_ = 0;
  bool shutdown_ = false;
};

}  // namespace harvest::serving
