#pragma once

/// \file batcher.hpp
/// The dynamic batcher: requests queue until either `max_batch` are
/// waiting or the oldest has waited `max_queue_delay` — the same policy
/// Triton's dynamic_batching block implements. Model instances block in
/// `wait_batch()`; the frontend never blocks in `submit()` unless the
/// queue is at capacity (back-pressure).

#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serving/request.hpp"

namespace harvest::serving {

/// A request bundled with its response promise and its enqueue time.
struct PendingRequest {
  InferenceRequest request;
  std::promise<InferenceResponse> promise;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Why a batch left the queue — the batching dynamics the delay-sweep
/// ablation characterizes (big batches = full flushes; latency-bound
/// regimes flush on timeout).
enum class FlushReason : int {
  kFullBatch = 0,      ///< queue reached max_batch
  kPreferredSize = 1,  ///< a preferred batch size was hit early
  kTimeout = 2,        ///< head request aged past max_queue_delay
  kShutdown = 3,       ///< drain on shutdown
};
inline constexpr std::size_t kFlushReasonCount = 4;

const char* flush_reason_name(FlushReason reason);

/// A dispatched batch tagged with the reason it flushed.
struct BatchedRequests {
  std::vector<PendingRequest> requests;
  FlushReason reason = FlushReason::kTimeout;
};

/// Per-reason dispatch counts (only batches that delivered requests).
using FlushCounts = std::array<std::uint64_t, kFlushReasonCount>;

struct BatcherConfig {
  std::int64_t max_batch = 8;
  double max_queue_delay_s = 2e-3;
  std::size_t max_queue_depth = 4096;  ///< back-pressure bound
  /// Triton-style preferred batch sizes: when the queue reaches one of
  /// these sizes the batch dispatches immediately at the largest
  /// preferred size that fits, without waiting out the delay. Empty =
  /// dispatch only when full or aged.
  std::vector<std::int64_t> preferred_batch_sizes;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherConfig config) : config_(config) {}

  const BatcherConfig& config() const { return config_; }

  /// Enqueue a request; returns the future for its response, or an
  /// unavailable status when the queue is full or shut down.
  core::Result<std::future<InferenceResponse>> submit(InferenceRequest request);

  /// Block until a batch is ready (full, or the head request has aged
  /// past the delay), then pop it. Empty vector = shutdown.
  std::vector<PendingRequest> wait_batch();

  /// As wait_batch(), tagged with the flush reason. An empty request
  /// vector still means shutdown.
  BatchedRequests wait_batch_tagged();

  /// Wake all waiters and reject further submissions.
  void shutdown();

  std::size_t queued() const;

  /// Cumulative per-reason flush counts since construction.
  FlushCounts flush_counts() const;

  /// Label used for this queue's trace counter track (e.g. the model
  /// name); empty disables queue-depth counter events.
  void set_trace_label(std::string label);

 private:
  void trace_queue_depth() const;  ///< callers hold mutex_

  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
  FlushCounts flushes_{};
  std::string trace_label_;
};

}  // namespace harvest::serving
