#pragma once

/// \file batcher.hpp
/// The dynamic batcher: requests queue until either `max_batch` are
/// waiting or the oldest has waited `max_queue_delay` — the same policy
/// Triton's dynamic_batching block implements. Model instances block in
/// `wait_batch()`; the frontend never blocks in `submit()` unless the
/// queue is at capacity (back-pressure).

#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "serving/request.hpp"

namespace harvest::serving {

/// A request bundled with its response promise and its enqueue time.
struct PendingRequest {
  InferenceRequest request;
  std::promise<InferenceResponse> promise;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Why a batch left the queue — the batching dynamics the delay-sweep
/// ablation characterizes (big batches = full flushes; latency-bound
/// regimes flush on timeout).
enum class FlushReason : int {
  kFullBatch = 0,      ///< queue reached max_batch
  kPreferredSize = 1,  ///< a preferred batch size was hit early
  kTimeout = 2,        ///< head request aged past max_queue_delay
  kShutdown = 3,       ///< drain on shutdown
};
inline constexpr std::size_t kFlushReasonCount = 4;

const char* flush_reason_name(FlushReason reason);

/// A dispatched batch tagged with the reason it flushed.
struct BatchedRequests {
  std::vector<PendingRequest> requests;
  FlushReason reason = FlushReason::kTimeout;
};

/// Per-reason dispatch counts (only batches that delivered requests).
using FlushCounts = std::array<std::uint64_t, kFlushReasonCount>;

struct BatcherConfig {
  std::int64_t max_batch = 8;
  double max_queue_delay_s = 2e-3;
  std::size_t max_queue_depth = 4096;  ///< back-pressure bound
  /// Triton-style preferred batch sizes: when the queue reaches one of
  /// these sizes the batch dispatches immediately at the largest
  /// preferred size that fits, without waiting out the delay. Empty =
  /// dispatch only when full or aged.
  std::vector<std::int64_t> preferred_batch_sizes;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherConfig config) : config_(config) {}

  const BatcherConfig& config() const { return config_; }

  /// Enqueue a request; returns the future for its response, or an
  /// unavailable status when the queue is full or shut down.
  core::Result<std::future<InferenceResponse>> submit(InferenceRequest request);

  /// Block until a batch is ready (full, or the head request has aged
  /// past the delay), then pop it. Empty vector = shutdown.
  std::vector<PendingRequest> wait_batch();

  /// As wait_batch(), tagged with the flush reason. An empty request
  /// vector still means shutdown.
  BatchedRequests wait_batch_tagged();

  // Non-blocking interface for shared-pool consumers (WorkerPool):
  // workers poll ready() across many deployments' batchers instead of
  // parking one thread per deployment in wait_batch().

  /// True when a batch would dispatch right now (full / preferred /
  /// aged / shutdown drain) — try_pop_tagged() would return requests.
  bool ready() const;

  /// Pop a batch if one is ready; empty requests = nothing ready (NOT
  /// shutdown — shared-pool consumers track lifetime themselves).
  BatchedRequests try_pop_tagged();

  /// Absolute time the head request ages out (when a timeout flush
  /// becomes due). Returns false when the queue is empty or a batch is
  /// already ready.
  bool next_deadline(std::chrono::steady_clock::time_point& deadline) const;

  /// Invoked (outside the batcher lock) after every submit and on
  /// shutdown, so a shared pool can re-scan instead of sleeping.
  void set_ready_callback(std::function<void()> callback);

  /// Wake all waiters and reject further submissions.
  void shutdown();

  std::size_t queued() const;

  /// Cumulative per-reason flush counts since construction.
  FlushCounts flush_counts() const;

  /// Label used for this queue's trace counter track (e.g. the model
  /// name); empty disables queue-depth counter events.
  void set_trace_label(std::string label);

 private:
  void trace_queue_depth() const;  ///< callers hold mutex_
  /// Flush decision for the current queue; callers hold mutex_. Returns
  /// true when a batch should dispatch now and sets reason/take.
  bool flush_due_locked(FlushReason& reason, std::size_t& take) const;
  BatchedRequests pop_locked(FlushReason reason, std::size_t take);

  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
  FlushCounts flushes_{};
  std::string trace_label_;
  std::function<void()> ready_callback_;
};

}  // namespace harvest::serving
