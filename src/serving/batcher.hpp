#pragma once

/// \file batcher.hpp
/// The dynamic batcher: requests queue until either `max_batch` are
/// waiting or the oldest has waited `max_queue_delay` — the same policy
/// Triton's dynamic_batching block implements. Model instances block in
/// `wait_batch()`; the frontend never blocks in `submit()` unless the
/// queue is at capacity (back-pressure).

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serving/request.hpp"

namespace harvest::serving {

/// A request bundled with its response promise and its enqueue time.
struct PendingRequest {
  InferenceRequest request;
  std::promise<InferenceResponse> promise;
  std::chrono::steady_clock::time_point enqueued_at;
};

struct BatcherConfig {
  std::int64_t max_batch = 8;
  double max_queue_delay_s = 2e-3;
  std::size_t max_queue_depth = 4096;  ///< back-pressure bound
  /// Triton-style preferred batch sizes: when the queue reaches one of
  /// these sizes the batch dispatches immediately at the largest
  /// preferred size that fits, without waiting out the delay. Empty =
  /// dispatch only when full or aged.
  std::vector<std::int64_t> preferred_batch_sizes;
};

class DynamicBatcher {
 public:
  explicit DynamicBatcher(BatcherConfig config) : config_(config) {}

  const BatcherConfig& config() const { return config_; }

  /// Enqueue a request; returns the future for its response, or an
  /// unavailable status when the queue is full or shut down.
  core::Result<std::future<InferenceResponse>> submit(InferenceRequest request);

  /// Block until a batch is ready (full, or the head request has aged
  /// past the delay), then pop it. Empty vector = shutdown.
  std::vector<PendingRequest> wait_batch();

  /// Wake all waiters and reject further submissions.
  void shutdown();

  std::size_t queued() const;

 private:
  BatcherConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool shutdown_ = false;
};

}  // namespace harvest::serving
