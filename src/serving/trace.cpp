#include "serving/trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/status.hpp"

namespace harvest::serving {

OnOffTrace::OnOffTrace(double on_qps, double off_qps, double period,
                       double duty)
    : on_qps_(on_qps), off_qps_(off_qps), period_(period), duty_(duty) {
  HARVEST_CHECK_MSG(period > 0.0 && duty >= 0.0 && duty <= 1.0,
                    "bad on/off trace parameters");
}

double OnOffTrace::rate_at(double t) const {
  const double phase = std::fmod(t, period_);
  return phase < duty_ * period_ ? on_qps_ : off_qps_;
}

double OnOffTrace::peak_rate() const { return std::max(on_qps_, off_qps_); }

double OnOffTrace::mean_rate(double) const {
  return on_qps_ * duty_ + off_qps_ * (1.0 - duty_);
}

DiurnalTrace::DiurnalTrace(double base_qps, double amplitude_qps,
                           double period)
    : base_(base_qps), amplitude_(amplitude_qps), period_(period) {
  HARVEST_CHECK_MSG(period > 0.0, "diurnal period must be positive");
}

double DiurnalTrace::rate_at(double t) const {
  return std::max(
      0.0, base_ + amplitude_ * std::sin(2.0 * M_PI * t / period_));
}

double DiurnalTrace::mean_rate(double duration) const {
  // Over whole periods the sine integrates to zero (when base >= |amp|).
  if (base_ >= std::abs(amplitude_)) {
    const double whole = std::floor(duration / period_) * period_;
    if (whole > 0.0 && duration - whole < 1e-9) return base_;
  }
  // Numeric fallback for clamped or partial-period cases.
  constexpr int kSteps = 1000;
  double acc = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    acc += rate_at(duration * (i + 0.5) / kSteps);
  }
  return acc / kSteps;
}

double next_arrival(const ArrivalTrace& trace, double now, core::Rng& rng) {
  const double peak = trace.peak_rate();
  if (peak <= 0.0) return std::numeric_limits<double>::infinity();
  double t = now;
  // Lewis–Shedler thinning: candidates from the homogeneous bound are
  // accepted with probability rate(t)/peak.
  for (int guard = 0; guard < 1'000'000; ++guard) {
    t += rng.exponential(peak);
    if (rng.next_double() * peak <= trace.rate_at(t)) return t;
  }
  return std::numeric_limits<double>::infinity();  // pathological trace
}

}  // namespace harvest::serving
