#pragma once

/// \file online_sim.hpp
/// Discrete-event simulation of the online-inference scenario (§2.2.1):
/// Poisson request arrivals → dynamic batcher → N engine instances on a
/// modelled device, with preprocessing priced by the cost model. Hours
/// of simulated serving run in milliseconds, deterministically — the
/// tool behind the batcher-delay and multi-instance ablation benches.

#include <cstdint>

#include "data/datasets.hpp"
#include "nn/models.hpp"
#include "platform/device.hpp"
#include "preproc/pipeline.hpp"
#include "serving/trace.hpp"

namespace harvest::serving {

struct OnlineSimConfig {
  double arrival_rate_qps = 100.0;
  double duration_s = 30.0;
  std::int64_t max_batch = 32;
  double max_queue_delay_s = 2e-3;
  int instances = 1;
  preproc::PreprocMethod preproc_method = preproc::PreprocMethod::kDali224;
  /// Double-buffered pipelines overlap a batch's preprocessing with the
  /// previous batch's inference: service time ≈ max(stages) instead of
  /// their sum (§4.3).
  bool overlap_preproc = true;
  std::uint64_t seed = 7;
};

struct OnlineSimReport {
  std::int64_t arrivals = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;  ///< queue overflow (overload)
  double throughput_img_per_s = 0.0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_batch_size = 0.0;
  double instance_utilization = 0.0;  ///< busy time / (instances × duration)
};

/// Simulate `config.duration_s` seconds of online serving of `model` on
/// `device` fed by images with `dataset` statistics (homogeneous Poisson
/// arrivals at config.arrival_rate_qps).
OnlineSimReport simulate_online(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const OnlineSimConfig& config);

/// Same, with a time-varying arrival profile (config.arrival_rate_qps is
/// ignored; the trace drives the non-homogeneous Poisson process).
OnlineSimReport simulate_online_trace(const platform::DeviceSpec& device,
                                      const std::string& model,
                                      const data::DatasetSpec& dataset,
                                      const OnlineSimConfig& config,
                                      const ArrivalTrace& trace);

}  // namespace harvest::serving
