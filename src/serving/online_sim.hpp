#pragma once

/// \file online_sim.hpp
/// Discrete-event simulation of the online-inference scenario (§2.2.1):
/// Poisson request arrivals → dynamic batcher → N engine instances on a
/// modelled device, with preprocessing priced by the cost model. Hours
/// of simulated serving run in milliseconds, deterministically — the
/// tool behind the batcher-delay and multi-instance ablation benches.

#include <cstdint>
#include <vector>

#include "data/datasets.hpp"
#include "nn/models.hpp"
#include "obs/trace.hpp"
#include "platform/device.hpp"
#include "preproc/pipeline.hpp"
#include "serving/metrics.hpp"
#include "serving/trace.hpp"

namespace harvest::serving {

struct OnlineSimConfig {
  double arrival_rate_qps = 100.0;
  double duration_s = 30.0;
  std::int64_t max_batch = 32;
  double max_queue_delay_s = 2e-3;
  int instances = 1;
  preproc::PreprocMethod preproc_method = preproc::PreprocMethod::kDali224;
  /// Double-buffered pipelines overlap a batch's preprocessing with the
  /// previous batch's inference: service time ≈ max(stages) instead of
  /// their sum (§4.3).
  bool overlap_preproc = true;
  std::uint64_t seed = 7;
  /// Optional sinks (observability wiring; both may be null):
  /// per-request timings and flush reasons are recorded here with
  /// simulated stage breakdowns, comparable to the real server's
  /// registry.
  MetricsRegistry* metrics = nullptr;
  /// Batch spans and queue-depth counters are recorded here at
  /// *simulated* timestamps, on virtual thread tracks (one per
  /// instance).
  obs::TraceRecorder* trace = nullptr;
  /// > 0 samples queue depth / busy instances every interval (simulated
  /// seconds) into OnlineSimReport::samples.
  double sample_interval_s = 0.0;
};

/// One periodic gauge sample of the simulated deployment.
struct OnlineSimSample {
  double t_s = 0.0;
  double queue_depth = 0.0;
  double busy_instances = 0.0;
};

struct OnlineSimReport {
  std::int64_t arrivals = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;  ///< queue overflow (overload)
  double throughput_img_per_s = 0.0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_batch_size = 0.0;
  double instance_utilization = 0.0;  ///< busy time / (instances × duration)
  /// Batch flush counts by reason (DES flushes are full-batch or
  /// timeout; preferred/shutdown stay zero).
  FlushCounts flushes{};
  /// Periodic gauge samples (empty unless config.sample_interval_s > 0).
  std::vector<OnlineSimSample> samples;
};

/// Simulate `config.duration_s` seconds of online serving of `model` on
/// `device` fed by images with `dataset` statistics (homogeneous Poisson
/// arrivals at config.arrival_rate_qps).
OnlineSimReport simulate_online(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const OnlineSimConfig& config);

/// Same, with a time-varying arrival profile (config.arrival_rate_qps is
/// ignored; the trace drives the non-homogeneous Poisson process).
OnlineSimReport simulate_online_trace(const platform::DeviceSpec& device,
                                      const std::string& model,
                                      const data::DatasetSpec& dataset,
                                      const OnlineSimConfig& config,
                                      const ArrivalTrace& trace);

}  // namespace harvest::serving
