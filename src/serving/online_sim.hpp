#pragma once

/// \file online_sim.hpp
/// Discrete-event simulation of the online-inference scenario (§2.2.1):
/// Poisson request arrivals → dynamic batcher → N engine instances on a
/// modelled device, with preprocessing priced by the cost model. Hours
/// of simulated serving run in milliseconds, deterministically — the
/// tool behind the batcher-delay and multi-instance ablation benches.

#include <cstdint>
#include <vector>

#include "data/datasets.hpp"
#include "nn/models.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "platform/device.hpp"
#include "preproc/pipeline.hpp"
#include "serving/metrics.hpp"
#include "serving/resilience/admission.hpp"
#include "serving/resilience/fault.hpp"
#include "serving/resilience/retry.hpp"
#include "serving/trace.hpp"

namespace harvest::serving {

struct OnlineSimConfig {
  double arrival_rate_qps = 100.0;
  double duration_s = 30.0;
  std::int64_t max_batch = 32;
  double max_queue_delay_s = 2e-3;
  int instances = 1;
  preproc::PreprocMethod preproc_method = preproc::PreprocMethod::kDali224;
  /// Double-buffered pipelines overlap a batch's preprocessing with the
  /// previous batch's inference: service time ≈ max(stages) instead of
  /// their sum (§4.3).
  bool overlap_preproc = true;
  std::uint64_t seed = 7;
  /// Optional sinks (observability wiring; both may be null):
  /// per-request timings and flush reasons are recorded here with
  /// simulated stage breakdowns, comparable to the real server's
  /// registry.
  MetricsRegistry* metrics = nullptr;
  /// Batch spans and queue-depth counters are recorded here at
  /// *simulated* timestamps, on virtual thread tracks (one per
  /// instance).
  obs::TraceRecorder* trace = nullptr;
  /// > 0 samples queue depth / busy instances every interval (simulated
  /// seconds) into OnlineSimReport::samples.
  double sample_interval_s = 0.0;
  /// Queue overflow bound; arrivals beyond it count as `rejected`.
  std::size_t queue_capacity = 16384;
  /// > 0 scores every completion against this latency budget: on-time
  /// completions make `goodput_img_per_s`, late ones `deadline_misses`.
  double deadline_s = 0.0;
  /// Fault plan priced in simulated time: transient batch errors,
  /// latency spikes, instance crashes (crash_mtbf_s/crash_downtime_s),
  /// and transmission stalls. Faults draw from a *separate* seeded rng,
  /// so the arrival sequence is identical across fault configurations.
  resilience::FaultPlan faults;
  /// Client retry against injected batch failures: failed requests
  /// re-enter the queue after the policy's backoff until max_attempts
  /// or (with respect_deadline) the deadline budget is exhausted.
  resilience::RetryPolicy retry;
  /// Early shedding at arrival. When the delay threshold is set without
  /// a service-time prior, the prior is derived from the platform model
  /// (estimated batch latency at max_batch).
  resilience::AdmissionConfig admission;
  /// Service-level objectives scored in simulated time: completions,
  /// failures, and sheds feed a burn-rate tracker whose final window
  /// rate and cumulative budget land in the report (and, when `metrics`
  /// is wired, in the registry's Prometheus exposition).
  obs::SloConfig slo;
  double slo_window_s = 10.0;  ///< burn-rate window (simulated seconds)
};

/// One periodic gauge sample of the simulated deployment.
struct OnlineSimSample {
  double t_s = 0.0;
  double queue_depth = 0.0;
  double busy_instances = 0.0;
};

struct OnlineSimReport {
  std::int64_t arrivals = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;  ///< queue overflow (overload)
  std::int64_t shed = 0;      ///< admission-control sheds (before queueing)
  std::int64_t failed = 0;    ///< abandoned after injected faults + retries
  std::int64_t retries = 0;   ///< re-enqueues after injected batch failures
  std::int64_t deadline_misses = 0;  ///< completed after config.deadline_s
  double goodput_img_per_s = 0.0;    ///< completions within the deadline
  double throughput_img_per_s = 0.0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_batch_size = 0.0;
  double instance_utilization = 0.0;  ///< busy time / (instances × duration)
  /// Batch flush counts by reason (DES flushes are full-batch or
  /// timeout; preferred/shutdown stay zero).
  FlushCounts flushes{};
  /// Periodic gauge samples (empty unless config.sample_interval_s > 0).
  std::vector<OnlineSimSample> samples;
  // SLO accounting (config.slo): burn rate over the final window and
  // cumulative error budget left. Zeros / 1.0 when no SLO is declared.
  bool slo_enabled = false;
  double slo_burn_rate = 0.0;
  double slo_budget_remaining = 1.0;
};

/// Simulate `config.duration_s` seconds of online serving of `model` on
/// `device` fed by images with `dataset` statistics (homogeneous Poisson
/// arrivals at config.arrival_rate_qps).
OnlineSimReport simulate_online(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const OnlineSimConfig& config);

/// Same, with a time-varying arrival profile (config.arrival_rate_qps is
/// ignored; the trace drives the non-homogeneous Poisson process).
OnlineSimReport simulate_online_trace(const platform::DeviceSpec& device,
                                      const std::string& model,
                                      const data::DatasetSpec& dataset,
                                      const OnlineSimConfig& config,
                                      const ArrivalTrace& trace);

}  // namespace harvest::serving
