#pragma once

/// \file metrics.hpp
/// Thread-safe serving metrics: request counters, per-stage latency
/// distributions (running stats *and* explicit-bucket histograms),
/// batcher flush-reason counters, and live gauges, with a renderable
/// snapshot plus a Prometheus text-format exposition. The same registry
/// is fed by the real threaded server and the discrete-event
/// simulation, so reports are comparable across the two execution
/// modes.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "core/stats.hpp"
#include "obs/digest.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "serving/batcher.hpp"
#include "serving/request.hpp"

namespace harvest::serving {

struct MetricsSnapshot {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_misses = 0;
  /// Terminal-state counts indexed by RequestOutcome (ok / failed /
  /// shed / deadline_missed) — the label that keeps a shed request
  /// distinguishable from a backend failure.
  std::array<std::uint64_t, kRequestOutcomeCount> outcomes{};
  std::uint64_t shed = 0;             ///< rejected by admission control
  std::uint64_t retries = 0;          ///< client re-submits
  std::uint64_t retry_abandoned = 0;  ///< client gave up retrying
  std::uint64_t degraded = 0;         ///< failed over to the degrade twin
  double wall_seconds = 0.0;          ///< observation window (clamped >= 0)
  double throughput_img_per_s = 0.0;
  core::RunningStats batch_sizes;
  // Latency quantiles (seconds).
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_queue_s = 0.0;
  double mean_preprocess_s = 0.0;
  double mean_inference_s = 0.0;
  /// Digest-backed tail estimate (adaptive resolution; trustworthy even
  /// outside the fixed histogram bucket range).
  double digest_p99_latency_s = 0.0;
  // SLO accounting (zeros when the deployment declares no SLO).
  bool slo_enabled = false;
  double slo_burn_rate = 0.0;
  double slo_budget_remaining = 1.0;
  /// Batch flush counts by reason, indexed by FlushReason.
  FlushCounts flushes{};
  // Model-paging cold starts (weight-store stream reloads).
  std::uint64_t cold_starts = 0;
  double cold_start_p99_s = 0.0;

  std::string to_string() const;
};

class MetricsRegistry {
 public:
  /// Record one finished request with its terminal outcome. kShed is
  /// accepted but does not feed the latency histograms (a shed request
  /// never queued); prefer record_shed() for sheds, which need no
  /// timing. `trace_id`, when nonzero, becomes the latency digest's
  /// exemplar candidate so tail quantiles link back to request trees.
  void record(const RequestTiming& timing, RequestOutcome outcome,
              std::uint64_t trace_id = 0);

  /// Legacy two-flag form, mapped onto RequestOutcome (ok → kOk,
  /// deadline_missed → kDeadlineMissed, else kFailed).
  void record(const RequestTiming& timing, bool ok, bool deadline_missed);

  /// One request shed by admission control before it queued.
  void record_shed();
  /// One client-side retry (re-submit after a retryable failure).
  void record_retry();
  /// One request whose client exhausted its retry budget.
  void record_retry_abandoned();
  /// One request failed over to the deployment's degrade twin.
  void record_degraded();

  /// Record one dispatched batch and why the batcher flushed it.
  void record_flush(FlushReason reason, std::int64_t batch_size);

  /// One model-paging cold start: the deployment's backend stream was
  /// paged out (or never built) and had to reload before a batch could
  /// run. Feeds a counter and a t-digest of reload latencies.
  void record_cold_start(double seconds);

  /// Live gauge: requests currently being preprocessed/inferred.
  void inflight_add(std::int64_t delta);
  std::int64_t inflight() const;

  /// Live gauge: depth of the deployment's request queue, sampled at
  /// exposition time (set once at deployment registration).
  void set_queue_depth_probe(std::function<std::size_t()> probe);

  /// Declare the deployment's SLO; outcomes recorded from now on feed
  /// the burn-rate window. `window_s` is the sliding alert window.
  void configure_slo(const obs::SloConfig& slo, double window_s = 60.0);
  /// Burn-rate alert passthrough (edge-triggered; see SloTracker).
  void set_slo_alert(double burn_threshold, obs::SloTracker::AlertFn fn);
  /// Override the SLO clock (seconds). The DES injects simulated time;
  /// the default reads the process steady clock.
  void set_clock(std::function<double()> clock);
  const obs::SloTracker& slo() const { return slo_; }
  double clock_now() const;

  /// Produce a snapshot over the given observation window. Non-finite
  /// or negative windows are clamped to zero (throughput reads 0
  /// instead of inf/NaN).
  MetricsSnapshot snapshot(double wall_seconds) const;

  /// Append this registry's metric families to a Prometheus text
  /// exposition, labelled with `model` and the deployment's numeric
  /// `precision` — fp32 and int8 deployments of the same model stay
  /// distinguishable in one scrape.
  void render_prometheus(obs::PrometheusWriter& out, const std::string& model,
                         const std::string& precision = "fp32") const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::array<std::uint64_t, kRequestOutcomeCount> outcomes_{};
  std::uint64_t shed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t retry_abandoned_ = 0;
  std::uint64_t degraded_ = 0;
  core::Percentiles total_latency_;
  core::RunningStats queue_;
  core::RunningStats preprocess_;
  core::RunningStats inference_;
  core::RunningStats batch_sizes_;
  obs::BucketHistogram latency_hist_;
  obs::BucketHistogram queue_hist_;
  obs::BucketHistogram preprocess_hist_;
  obs::BucketHistogram inference_hist_;
  obs::QuantileDigest latency_digest_;
  std::uint64_t cold_starts_ = 0;
  obs::QuantileDigest cold_start_digest_;
  FlushCounts flushes_{};
  std::function<std::size_t()> queue_depth_probe_;
  std::function<double()> clock_;  ///< SLO time source; guarded by mutex_
  std::atomic<std::int64_t> inflight_{0};
  obs::SloTracker slo_;  ///< internally synchronized; kept outside mutex_
};

}  // namespace harvest::serving
