#pragma once

/// \file metrics.hpp
/// Thread-safe serving metrics: request counters and per-stage latency
/// distributions, with a renderable snapshot. The same registry is fed
/// by the real threaded server and the discrete-event simulation, so
/// reports are comparable across the two execution modes.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/stats.hpp"
#include "serving/request.hpp"

namespace harvest::serving {

struct MetricsSnapshot {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadline_misses = 0;
  double wall_seconds = 0.0;          ///< observation window
  double throughput_img_per_s = 0.0;
  core::RunningStats batch_sizes;
  // Latency quantiles (seconds).
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_queue_s = 0.0;
  double mean_preprocess_s = 0.0;
  double mean_inference_s = 0.0;

  std::string to_string() const;
};

class MetricsRegistry {
 public:
  /// Record one finished request.
  void record(const RequestTiming& timing, bool ok, bool deadline_missed);

  /// Produce a snapshot over the given observation window.
  MetricsSnapshot snapshot(double wall_seconds) const;

  void reset();

 private:
  mutable std::mutex mutex_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t deadline_misses_ = 0;
  core::Percentiles total_latency_;
  core::RunningStats queue_;
  core::RunningStats preprocess_;
  core::RunningStats inference_;
  core::RunningStats batch_sizes_;
};

}  // namespace harvest::serving
