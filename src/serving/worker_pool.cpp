#include "serving/worker_pool.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace harvest::serving {

WorkerPool::WorkerPool(WeightStore& store) : store_(&store) {}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::add_deployment(const std::string& name, TenantPtr tenant,
                                DynamicBatcher* batcher,
                                WeightStore::EntryPtr entry,
                                BatchExecutor* executor,
                                MetricsRegistry* metrics,
                                std::int64_t max_inflight) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto deployment = std::make_unique<PoolDeployment>();
  deployment->name = name;
  deployment->tenant = std::move(tenant);
  deployment->batcher = batcher;
  deployment->entry = std::move(entry);
  deployment->executor = executor;
  deployment->metrics = metrics;
  deployment->max_inflight = std::max<std::int64_t>(max_inflight, 1);
  // An unseen tenant enters at the global service point, not at 0 —
  // otherwise a late-registered tenant would monopolize the pool until
  // it caught up with everyone's accumulated virtual time.
  tenant_vt_.emplace(deployment->tenant->name, wfq_.now());
  deployments_.push_back(std::move(deployment));
  cv_.notify_all();
}

void WorkerPool::ensure_workers(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return;
  while (workers_.size() < n) {
    const std::size_t index = workers_.size();
    workers_.emplace_back([this, index] { worker_loop(index); });
  }
}

void WorkerPool::notify() {
  // Taken-and-dropped mutex serializes this notify against a worker's
  // scan→wait window — without it a submit landing between the two
  // would be a lost wakeup.
  std::lock_guard<std::mutex> lock(mutex_);
  cv_.notify_all();
}

void WorkerPool::worker_loop(std::size_t index) {
  obs::TraceRecorder::instance().set_thread_name("serve-pool#" +
                                                 std::to_string(index));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Pick: ready batcher, inflight below cap, min effective virtual
    // time, deterministic name tie-break.
    PoolDeployment* best = nullptr;
    double best_vt = 0.0;
    bool have_wake = false;
    std::chrono::steady_clock::time_point wake{};
    for (const auto& deployment : deployments_) {
      if (deployment->inflight >= deployment->max_inflight) continue;
      if (!deployment->batcher->ready()) {
        // Not ready yet — but a queued head request will age out; the
        // earliest such deadline bounds our sleep.
        std::chrono::steady_clock::time_point deadline;
        if (deployment->batcher->next_deadline(deadline) &&
            (!have_wake || deadline < wake)) {
          wake = deadline;
          have_wake = true;
        }
        continue;
      }
      const auto vt_it = tenant_vt_.find(deployment->tenant->name);
      const double vt = wfq_.effective(vt_it->second);
      if (best == nullptr || vt < best_vt ||
          (vt == best_vt && deployment->name < best->name)) {
        best = deployment.get();
        best_vt = vt;
      }
    }
    if (best == nullptr) {
      // Exit only when shut down AND nothing is dispatchable: a ready
      // batch blocked on a sibling's inflight cap is drained by that
      // sibling when it re-enters the loop.
      if (shutdown_) return;
      if (have_wake) {
        cv_.wait_until(lock, wake);
      } else {
        cv_.wait(lock);
      }
      continue;
    }
    BatchedRequests batch = best->batcher->try_pop_tagged();
    if (batch.requests.empty()) continue;  // raced with a sibling
    const auto n = static_cast<std::int64_t>(batch.requests.size());
    // Start-time fair queueing: charge the tenant n/weight of virtual
    // service, and advance the global clock to this batch's start tag.
    const double weight =
        best->tenant->weight.load(std::memory_order_relaxed);
    tenant_vt_[best->tenant->name] = wfq_.charge(
        tenant_vt_[best->tenant->name], static_cast<double>(n), weight);
    ++best->inflight;
    ++busy_;
    ++dispatched_;
    best->metrics->record_flush(batch.reason, n);
    lock.unlock();
    // Claim a backend stream (blocking while sharers hold them all;
    // cold-loading if paged out) and execute outside the pool lock.
    WeightStore::StreamLease lease = store_->claim(best->entry);
    if (lease) {
      best->executor->execute(std::move(batch.requests), *lease.backend,
                              lease.cold_start_s);
      store_->release(lease);
    } else {
      // Store shut down or the stream rebuild failed: answer rather
      // than drop, keeping submitted == answered.
      for (PendingRequest& pending : batch.requests) {
        InferenceResponse response;
        response.id = pending.request.id;
        response.status =
            core::Status::internal("no backend stream available");
        best->metrics->record(response.timing, RequestOutcome::kFailed,
                              pending.request.trace.trace_id);
        pending.promise.set_value(std::move(response));
      }
    }
    lock.lock();
    --best->inflight;
    --busy_;
    // A cap and a stream freed: siblings blocked on either re-scan.
    cv_.notify_all();
  }
}

void WorkerPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

std::size_t WorkerPool::workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

std::size_t WorkerPool::busy() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_;
}

std::map<std::string, double> WorkerPool::virtual_times() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenant_vt_;
}

std::uint64_t WorkerPool::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dispatched_;
}

}  // namespace harvest::serving
