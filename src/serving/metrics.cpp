#include "serving/metrics.hpp"

#include <cstdio>

#include "core/units.hpp"

namespace harvest::serving {

std::string MetricsSnapshot::to_string() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "completed=%llu failed=%llu deadline_misses=%llu tput=%s "
      "latency mean=%s p50=%s p95=%s p99=%s | queue=%s preproc=%s infer=%s "
      "| mean batch=%.1f",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(deadline_misses),
      core::format_rate(throughput_img_per_s).c_str(),
      core::format_seconds(mean_latency_s).c_str(),
      core::format_seconds(p50_latency_s).c_str(),
      core::format_seconds(p95_latency_s).c_str(),
      core::format_seconds(p99_latency_s).c_str(),
      core::format_seconds(mean_queue_s).c_str(),
      core::format_seconds(mean_preprocess_s).c_str(),
      core::format_seconds(mean_inference_s).c_str(), batch_sizes.mean());
  return buf;
}

void MetricsRegistry::record(const RequestTiming& timing, bool ok,
                             bool deadline_missed) {
  std::scoped_lock lock(mutex_);
  if (ok) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (deadline_missed) ++deadline_misses_;
  total_latency_.add(timing.total_s);
  queue_.add(timing.queue_s);
  preprocess_.add(timing.preprocess_s);
  inference_.add(timing.inference_s);
  if (timing.batch_size > 0) {
    batch_sizes_.add(static_cast<double>(timing.batch_size));
  }
}

MetricsSnapshot MetricsRegistry::snapshot(double wall_seconds) const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.completed = completed_;
  snap.failed = failed_;
  snap.deadline_misses = deadline_misses_;
  snap.wall_seconds = wall_seconds;
  snap.throughput_img_per_s =
      wall_seconds > 0.0 ? static_cast<double>(completed_) / wall_seconds : 0.0;
  snap.batch_sizes = batch_sizes_;
  snap.mean_latency_s = total_latency_.mean();
  snap.p50_latency_s = total_latency_.quantile(0.5);
  snap.p95_latency_s = total_latency_.quantile(0.95);
  snap.p99_latency_s = total_latency_.quantile(0.99);
  snap.mean_queue_s = queue_.mean();
  snap.mean_preprocess_s = preprocess_.mean();
  snap.mean_inference_s = inference_.mean();
  return snap;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  completed_ = 0;
  failed_ = 0;
  deadline_misses_ = 0;
  total_latency_ = core::Percentiles();
  queue_ = core::RunningStats();
  preprocess_ = core::RunningStats();
  inference_ = core::RunningStats();
  batch_sizes_ = core::RunningStats();
}

}  // namespace harvest::serving
