#include "serving/metrics.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/units.hpp"

namespace harvest::serving {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* request_outcome_name(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk: return "ok";
    case RequestOutcome::kFailed: return "failed";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kDeadlineMissed: return "deadline_missed";
  }
  return "?";
}

std::string MetricsSnapshot::to_string() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "completed=%llu failed=%llu deadline_misses=%llu shed=%llu "
      "retries=%llu abandoned=%llu degraded=%llu tput=%s "
      "latency mean=%s p50=%s p95=%s p99=%s | queue=%s preproc=%s infer=%s "
      "| mean batch=%.1f | flushes full=%llu pref=%llu timeout=%llu "
      "shutdown=%llu",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(retry_abandoned),
      static_cast<unsigned long long>(degraded),
      core::format_rate(throughput_img_per_s).c_str(),
      core::format_seconds(mean_latency_s).c_str(),
      core::format_seconds(p50_latency_s).c_str(),
      core::format_seconds(p95_latency_s).c_str(),
      core::format_seconds(p99_latency_s).c_str(),
      core::format_seconds(mean_queue_s).c_str(),
      core::format_seconds(mean_preprocess_s).c_str(),
      core::format_seconds(mean_inference_s).c_str(), batch_sizes.mean(),
      static_cast<unsigned long long>(
          flushes[static_cast<std::size_t>(FlushReason::kFullBatch)]),
      static_cast<unsigned long long>(
          flushes[static_cast<std::size_t>(FlushReason::kPreferredSize)]),
      static_cast<unsigned long long>(
          flushes[static_cast<std::size_t>(FlushReason::kTimeout)]),
      static_cast<unsigned long long>(
          flushes[static_cast<std::size_t>(FlushReason::kShutdown)]));
  return buf;
}

void MetricsRegistry::record(const RequestTiming& timing,
                             RequestOutcome outcome, std::uint64_t trace_id) {
  if (outcome == RequestOutcome::kShed) {
    record_shed();
    return;
  }
  double now_s = 0.0;
  {
    std::scoped_lock lock(mutex_);
    ++outcomes_[static_cast<std::size_t>(outcome)];
    switch (outcome) {
      case RequestOutcome::kOk:
        ++completed_;
        break;
      case RequestOutcome::kDeadlineMissed:
        // A missed deadline is still a failed answer from the client's
        // point of view; the legacy failed counter keeps including it.
        ++failed_;
        ++deadline_misses_;
        break;
      default:
        ++failed_;
        break;
    }
    total_latency_.add(timing.total_s);
    queue_.add(timing.queue_s);
    preprocess_.add(timing.preprocess_s);
    inference_.add(timing.inference_s);
    latency_hist_.observe(timing.total_s);
    queue_hist_.observe(timing.queue_s);
    preprocess_hist_.observe(timing.preprocess_s);
    inference_hist_.observe(timing.inference_s);
    latency_digest_.add(timing.total_s, trace_id);
    if (timing.batch_size > 0) {
      batch_sizes_.add(static_cast<double>(timing.batch_size));
    }
    now_s = clock_ ? clock_() : steady_now_s();
  }
  // Outside mutex_: SloTracker synchronizes itself, and its burn-rate
  // alert may call back into paths that re-enter this registry.
  if (slo_.enabled()) {
    slo_.record(now_s, outcome == RequestOutcome::kOk, timing.total_s);
  }
}

void MetricsRegistry::record(const RequestTiming& timing, bool ok,
                             bool deadline_missed) {
  if (ok && deadline_missed) {
    // Legacy combination: the request was answered, but late. Counts as
    // completed *and* as a deadline miss (the pre-outcome contract).
    record(timing, RequestOutcome::kOk);
    std::scoped_lock lock(mutex_);
    ++deadline_misses_;
    return;
  }
  record(timing, ok               ? RequestOutcome::kOk
                 : deadline_missed ? RequestOutcome::kDeadlineMissed
                                   : RequestOutcome::kFailed);
}

void MetricsRegistry::record_shed() {
  double now_s = 0.0;
  {
    std::scoped_lock lock(mutex_);
    ++shed_;
    ++outcomes_[static_cast<std::size_t>(RequestOutcome::kShed)];
    now_s = clock_ ? clock_() : steady_now_s();
  }
  // A shed request is an unanswered request: it spends error budget.
  if (slo_.enabled()) slo_.record(now_s, false, 0.0);
}

void MetricsRegistry::record_retry() {
  std::scoped_lock lock(mutex_);
  ++retries_;
}

void MetricsRegistry::record_retry_abandoned() {
  std::scoped_lock lock(mutex_);
  ++retry_abandoned_;
}

void MetricsRegistry::record_degraded() {
  std::scoped_lock lock(mutex_);
  ++degraded_;
}

void MetricsRegistry::record_flush(FlushReason reason,
                                   std::int64_t batch_size) {
  std::scoped_lock lock(mutex_);
  ++flushes_[static_cast<std::size_t>(reason)];
  (void)batch_size;  // batch distribution already tracked per request
}

void MetricsRegistry::record_cold_start(double seconds) {
  std::scoped_lock lock(mutex_);
  ++cold_starts_;
  cold_start_digest_.add(seconds);
}

void MetricsRegistry::inflight_add(std::int64_t delta) {
  inflight_.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::inflight() const {
  return inflight_.load(std::memory_order_relaxed);
}

void MetricsRegistry::set_queue_depth_probe(
    std::function<std::size_t()> probe) {
  std::scoped_lock lock(mutex_);
  queue_depth_probe_ = std::move(probe);
}

void MetricsRegistry::configure_slo(const obs::SloConfig& slo,
                                    double window_s) {
  slo_.configure(slo, window_s);
}

void MetricsRegistry::set_slo_alert(double burn_threshold,
                                    obs::SloTracker::AlertFn fn) {
  slo_.set_alert(burn_threshold, std::move(fn));
}

void MetricsRegistry::set_clock(std::function<double()> clock) {
  std::scoped_lock lock(mutex_);
  clock_ = std::move(clock);
}

double MetricsRegistry::clock_now() const {
  std::scoped_lock lock(mutex_);
  return clock_ ? clock_() : steady_now_s();
}

MetricsSnapshot MetricsRegistry::snapshot(double wall_seconds) const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.completed = completed_;
  snap.failed = failed_;
  snap.deadline_misses = deadline_misses_;
  snap.outcomes = outcomes_;
  snap.shed = shed_;
  snap.retries = retries_;
  snap.retry_abandoned = retry_abandoned_;
  snap.degraded = degraded_;
  // Guard the observation window: a zero, negative, or non-finite
  // window must not turn throughput into inf/NaN.
  const double window =
      std::isfinite(wall_seconds) && wall_seconds > 0.0 ? wall_seconds : 0.0;
  snap.wall_seconds = window;
  snap.throughput_img_per_s =
      window > 0.0 ? static_cast<double>(completed_) / window : 0.0;
  snap.batch_sizes = batch_sizes_;
  snap.mean_latency_s = total_latency_.mean();
  snap.p50_latency_s = total_latency_.quantile(0.5);
  snap.p95_latency_s = total_latency_.quantile(0.95);
  snap.p99_latency_s = total_latency_.quantile(0.99);
  snap.mean_queue_s = queue_.mean();
  snap.mean_preprocess_s = preprocess_.mean();
  snap.mean_inference_s = inference_.mean();
  snap.digest_p99_latency_s =
      latency_digest_.count() > 0 ? latency_digest_.quantile(0.99) : 0.0;
  snap.flushes = flushes_;
  snap.cold_starts = cold_starts_;
  snap.cold_start_p99_s =
      cold_start_digest_.count() > 0 ? cold_start_digest_.quantile(0.99) : 0.0;
  const double now_s = clock_ ? clock_() : steady_now_s();
  snap.slo_enabled = slo_.enabled();
  snap.slo_burn_rate = slo_.burn_rate(now_s);
  snap.slo_budget_remaining = slo_.budget_remaining();
  return snap;
}

void MetricsRegistry::render_prometheus(obs::PrometheusWriter& out,
                                        const std::string& model,
                                        const std::string& precision) const {
  std::scoped_lock lock(mutex_);
  const obs::PrometheusWriter::Labels labels = {{"model", model},
                                                {"precision", precision}};
  out.counter("harvest_requests_completed_total",
              "Requests answered successfully.",
              static_cast<double>(completed_), labels);
  out.counter("harvest_requests_failed_total",
              "Requests answered with a non-OK status.",
              static_cast<double>(failed_), labels);
  out.counter("harvest_deadline_misses_total",
              "Requests that missed their deadline.",
              static_cast<double>(deadline_misses_), labels);
  // Terminal-state family: the one label that separates "the backend
  // broke" from "we shed on purpose" from "the deadline passed".
  for (std::size_t o = 0; o < kRequestOutcomeCount; ++o) {
    obs::PrometheusWriter::Labels outcome_labels = labels;
    outcome_labels.emplace_back(
        "outcome", request_outcome_name(static_cast<RequestOutcome>(o)));
    out.counter("harvest_requests_outcome_total",
                "Requests by terminal state (ok/failed/shed/deadline_missed).",
                static_cast<double>(outcomes_[o]), outcome_labels);
  }
  out.counter("harvest_requests_shed_total",
              "Requests shed by admission control before queueing.",
              static_cast<double>(shed_), labels);
  out.counter("harvest_retries_total",
              "Client-side retry re-submits against this deployment.",
              static_cast<double>(retries_), labels);
  out.counter("harvest_retry_abandoned_total",
              "Requests whose client exhausted its retry budget.",
              static_cast<double>(retry_abandoned_), labels);
  out.counter("harvest_degraded_total",
              "Requests failed over to the deployment's degrade twin.",
              static_cast<double>(degraded_), labels);
  out.histogram("harvest_request_latency_seconds",
                "End-to-end request latency (submit to response).",
                latency_hist_, labels);
  out.histogram("harvest_queue_time_seconds",
                "Time spent waiting in the dynamic batcher queue.",
                queue_hist_, labels);
  out.histogram("harvest_preprocess_time_seconds",
                "Batch preprocessing time attributed to the request.",
                preprocess_hist_, labels);
  out.histogram("harvest_inference_time_seconds",
                "Engine inference time attributed to the request.",
                inference_hist_, labels);
  for (std::size_t r = 0; r < kFlushReasonCount; ++r) {
    obs::PrometheusWriter::Labels flush_labels = labels;
    flush_labels.emplace_back(
        "reason", flush_reason_name(static_cast<FlushReason>(r)));
    out.counter("harvest_batch_flush_total",
                "Batches dispatched, by flush reason.",
                static_cast<double>(flushes_[r]), flush_labels);
  }
  out.counter("harvest_cold_starts_total",
              "Batches that had to reload a paged-out backend stream "
              "before executing.",
              static_cast<double>(cold_starts_), labels);
  if (cold_start_digest_.count() > 0) {
    out.summary("harvest_cold_start_seconds",
                "Backend-stream reload (model paging cold start) "
                "latency quantiles.",
                cold_start_digest_, labels);
  }
  // Digest-backed summary: adaptive tail resolution with exemplar
  // trace ids on the quantile samples.
  out.summary("harvest_request_latency_quantiles",
              "End-to-end latency quantiles from the t-digest, with "
              "trace-id exemplars.",
              latency_digest_, labels);
  out.gauge("harvest_inflight_requests",
            "Requests currently in preprocessing or inference.",
            static_cast<double>(inflight_.load(std::memory_order_relaxed)),
            labels);
  if (queue_depth_probe_) {
    out.gauge("harvest_queue_depth", "Requests waiting in the batcher queue.",
              static_cast<double>(queue_depth_probe_()), labels);
  }
  if (slo_.enabled()) {
    const double now_s = clock_ ? clock_() : steady_now_s();
    out.gauge("harvest_slo_burn_rate",
              "Error-budget burn rate over the sliding window (1 = "
              "spending the budget exactly as provisioned).",
              slo_.burn_rate(now_s), labels);
    out.gauge("harvest_slo_budget_remaining",
              "Fraction of the cumulative error budget left (negative = "
              "overspent).",
              slo_.budget_remaining(), labels);
  }
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  completed_ = 0;
  failed_ = 0;
  deadline_misses_ = 0;
  outcomes_ = {};
  shed_ = 0;
  retries_ = 0;
  retry_abandoned_ = 0;
  degraded_ = 0;
  total_latency_ = core::Percentiles();
  queue_ = core::RunningStats();
  preprocess_ = core::RunningStats();
  inference_ = core::RunningStats();
  batch_sizes_ = core::RunningStats();
  latency_hist_.reset();
  queue_hist_.reset();
  preprocess_hist_.reset();
  inference_hist_.reset();
  latency_digest_ = obs::QuantileDigest();
  cold_starts_ = 0;
  cold_start_digest_ = obs::QuantileDigest();
  flushes_ = {};
  inflight_.store(0, std::memory_order_relaxed);
  slo_.configure(slo_.config(), slo_.window_s());
}

}  // namespace harvest::serving
