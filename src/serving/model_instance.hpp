#pragma once

/// \file model_instance.hpp
/// The execution stage of a deployed model, as a thread-less
/// `BatchExecutor`: preprocess a formed batch, run a backend stream,
/// fulfill response promises. Ownership of threads moved to the shared
/// `WorkerPool` (worker_pool.hpp) — a deployment no longer pins
/// `instances` dedicated threads; `instances` is now its concurrency
/// cap on the shared pool, and its backend streams live in the
/// deduplicated `WeightStore`. One executor per deployment, shared by
/// every pool worker (stateless between calls except counters).

#include <atomic>

#include "core/thread_pool.hpp"
#include "preproc/pipeline.hpp"
#include "serving/backend.hpp"
#include "serving/batcher.hpp"
#include "serving/metrics.hpp"
#include "serving/resilience/admission.hpp"

namespace harvest::serving {

class BatchExecutor {
 public:
  /// `pool` powers batched (DALI-style) preprocessing; pass nullptr to
  /// preprocess sequentially on the calling thread (CPU pipeline).
  /// `admission` (nullable) receives per-batch service times so the
  /// deployment's shed threshold tracks the real engine speed.
  BatchExecutor(std::string name, preproc::PreprocSpec preproc_spec,
                MetricsRegistry& metrics, core::ThreadPool* pool,
                resilience::AdmissionController* admission = nullptr);

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Run one batch on `backend` (a claimed WeightStore stream).
  /// `cold_start_s` > 0 means the stream was just (re)built for this
  /// batch — recorded into the cold-start digest and, when tracing,
  /// as a `cold_load` span in each request's tree.
  void execute(std::vector<PendingRequest> batch, Backend& backend,
               double cold_start_s = 0.0);

  const std::string& name() const { return name_; }
  std::uint64_t batches_executed() const { return batches_executed_.load(); }

 private:
  std::string name_;
  preproc::PreprocSpec preproc_spec_;
  MetricsRegistry* metrics_;
  core::ThreadPool* pool_;
  resilience::AdmissionController* admission_;
  std::atomic<std::uint64_t> batches_executed_{0};
};

/// Shared response assembly: softmax the logits row for request `i` of
/// the batch and fill prediction fields.
void fill_prediction(const tensor::Tensor& logits, std::int64_t row,
                     InferenceResponse& response);

}  // namespace harvest::serving
