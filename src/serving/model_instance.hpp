#pragma once

/// \file model_instance.hpp
/// One execution stream of a deployed model (Triton "instance"): a
/// worker thread that pulls batches from the deployment's dynamic
/// batcher, preprocesses them, runs the backend, and fulfills response
/// promises. Multiple instances of the same deployment share the
/// batcher and the metrics registry but own separate backends.

#include <atomic>
#include <thread>

#include "core/thread_pool.hpp"
#include "preproc/pipeline.hpp"
#include "serving/backend.hpp"
#include "serving/batcher.hpp"
#include "serving/metrics.hpp"
#include "serving/resilience/admission.hpp"

namespace harvest::serving {

class ModelInstance {
 public:
  /// `pool` powers batched (DALI-style) preprocessing; pass nullptr to
  /// preprocess sequentially on the instance thread (CPU pipeline).
  /// `admission` (nullable) receives per-batch service times so the
  /// deployment's shed threshold tracks the real engine speed.
  ModelInstance(std::string name, BackendPtr backend,
                preproc::PreprocSpec preproc_spec, DynamicBatcher& batcher,
                MetricsRegistry& metrics, core::ThreadPool* pool,
                resilience::AdmissionController* admission = nullptr);
  ~ModelInstance();

  ModelInstance(const ModelInstance&) = delete;
  ModelInstance& operator=(const ModelInstance&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t batches_executed() const { return batches_executed_.load(); }

 private:
  void run_loop();
  void execute_batch(std::vector<PendingRequest> batch);

  std::string name_;
  BackendPtr backend_;
  preproc::PreprocSpec preproc_spec_;
  DynamicBatcher* batcher_;
  MetricsRegistry* metrics_;
  core::ThreadPool* pool_;
  resilience::AdmissionController* admission_;
  std::atomic<std::uint64_t> batches_executed_{0};
  std::thread worker_;
};

/// Shared response assembly: softmax the logits row for request `i` of
/// the batch and fill prediction fields.
void fill_prediction(const tensor::Tensor& logits, std::int64_t row,
                     InferenceResponse& response);

}  // namespace harvest::serving
