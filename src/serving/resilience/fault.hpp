#pragma once

/// \file fault.hpp
/// Seeded fault injection for the serving stack. A `FaultPlan` describes
/// which failure modes to inject — transient backend errors, latency
/// spikes, instance crashes with timed recovery, and transmission stalls
/// (§2.2 of the paper: the online/real-time scenarios live or die on
/// exactly these tail events). The plan is consumed two ways:
///
/// * `FaultyBackend` decorates any real `Backend` (NativeBackend, or a
///   SimBackend) and injects faults into `infer()` — the serving layer
///   above cannot tell an injected fault from a real one.
/// * `simulate_online*` (the DES) prices the same plan in simulated
///   time, so fault × retry × shedding ablations run in milliseconds.
///
/// Every draw comes from an explicitly seeded `core::Rng`; with a fixed
/// seed, two runs inject byte-identical fault sequences.

#include <cstdint>
#include <mutex>

#include "core/json.hpp"
#include "core/rng.hpp"
#include "core/status.hpp"
#include "serving/backend.hpp"

namespace harvest::serving::resilience {

struct FaultPlan {
  /// Base seed; each injector salts it with its instance index so
  /// sibling instances of one deployment fail independently but
  /// reproducibly.
  std::uint64_t seed = 1;

  /// P(one infer call fails with `transient_code`). The batch occupies
  /// the engine for its full service time before failing (the realistic
  /// worst case: work done, answer lost).
  double transient_error_rate = 0.0;
  core::StatusCode transient_code = core::StatusCode::kUnavailable;

  /// P(one infer call is slowed by `latency_spike_s`) — models GC
  /// pauses, thermal throttling, a noisy neighbour.
  double latency_spike_rate = 0.0;
  double latency_spike_s = 0.0;

  /// Real backends: after every `crash_period_calls` infer calls the
  /// instance crashes and answers kUnavailable for the next
  /// `crash_downtime_calls` calls (a call-count clock keeps wall-clock
  /// jitter out of the reproducibility contract). 0 = never.
  std::int64_t crash_period_calls = 0;
  std::int64_t crash_downtime_calls = 0;

  /// DES only: exponential time-between-crashes and a timed recovery
  /// window during which the instance accepts no new batches.
  double crash_mtbf_s = 0.0;
  double crash_downtime_s = 0.0;

  /// DES only: P(a request's transmission stalls for `stall_s` before it
  /// reaches the queue) — the edge→cloud uplink hiccup of §2.2.1.
  double stall_rate = 0.0;
  double stall_s = 0.0;

  /// Any backend-visible fault configured (transient/spike/crash)?
  bool backend_faults() const {
    return transient_error_rate > 0.0 || latency_spike_rate > 0.0 ||
           crash_period_calls > 0;
  }
  bool any() const {
    return backend_faults() || crash_mtbf_s > 0.0 || stall_rate > 0.0;
  }
};

/// Parse a `"faults"` JSON object (model-repository key; see
/// docs/RESILIENCE.md). Rates are validated to [0, 1], durations are
/// given in milliseconds (`*_ms`), `transient_code` is `"unavailable"`
/// or `"internal"`.
core::Result<FaultPlan> parse_fault_plan(const core::Json& json);

/// Per-instance fault decision stream. Thread-safe (one infer call at a
/// time draws).
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t instance_salt);

  /// What to inject into the next infer call.
  struct Decision {
    core::Status status = core::Status::ok();  ///< non-OK = fail the call
    double delay_s = 0.0;                      ///< added latency (spike)
    /// Crash faults fail before the engine runs; transient faults fail
    /// after it (work done, answer lost).
    bool fail_fast = false;
  };
  Decision next();

  std::int64_t calls() const;
  std::int64_t injected_errors() const;

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  core::Rng rng_;
  std::int64_t calls_ = 0;
  std::int64_t injected_errors_ = 0;
  std::int64_t crashed_for_ = 0;  ///< remaining downtime calls
};

/// Backend decorator that injects per the plan. Latency spikes sleep on
/// the instance thread (the batch really is late); errors return without
/// touching the inner backend (crash) or after the inner call would have
/// run (transient — the engine time is spent, the answer is dropped).
class FaultyBackend final : public Backend {
 public:
  FaultyBackend(BackendPtr inner, const FaultPlan& plan,
                std::uint64_t instance_salt);

  const std::string& name() const override;
  std::int64_t max_batch() const override;
  std::int64_t num_classes() const override;
  std::int64_t input_size() const override;
  const std::string& precision() const override;
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override;

  const FaultInjector& injector() const { return injector_; }

 private:
  BackendPtr inner_;
  FaultInjector injector_;
};

/// Wrap `backend` when the plan has backend-visible faults; otherwise
/// return it untouched (zero overhead for fault-free deployments).
BackendPtr wrap_with_faults(BackendPtr backend, const FaultPlan& plan,
                            std::uint64_t instance_salt);

}  // namespace harvest::serving::resilience
