#include "serving/resilience/fault.hpp"

#include <chrono>
#include <thread>

namespace harvest::serving::resilience {

namespace {

core::Status validate_rate(double rate, const char* what) {
  if (rate < 0.0 || rate > 1.0) {
    return core::Status::invalid_argument(std::string(what) +
                                          " must be in [0, 1]");
  }
  return core::Status::ok();
}

}  // namespace

core::Result<FaultPlan> parse_fault_plan(const core::Json& json) {
  if (!json.is_object()) {
    return core::Status::invalid_argument("\"faults\" must be an object");
  }
  FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(json.get_int("seed", 1));
  plan.transient_error_rate = json.get_number("transient_error_rate", 0.0);
  HARVEST_RETURN_IF_ERROR(
      validate_rate(plan.transient_error_rate, "transient_error_rate"));
  const std::string code = json.get_string("transient_code", "unavailable");
  if (code == "unavailable") {
    plan.transient_code = core::StatusCode::kUnavailable;
  } else if (code == "internal") {
    plan.transient_code = core::StatusCode::kInternal;
  } else {
    return core::Status::invalid_argument(
        "transient_code must be \"unavailable\" or \"internal\", got \"" +
        code + "\"");
  }
  plan.latency_spike_rate = json.get_number("latency_spike_rate", 0.0);
  HARVEST_RETURN_IF_ERROR(
      validate_rate(plan.latency_spike_rate, "latency_spike_rate"));
  plan.latency_spike_s = json.get_number("latency_spike_ms", 0.0) * 1e-3;
  plan.crash_period_calls = json.get_int("crash_period_calls", 0);
  plan.crash_downtime_calls = json.get_int("crash_downtime_calls", 0);
  if (plan.crash_period_calls < 0 || plan.crash_downtime_calls < 0) {
    return core::Status::invalid_argument("crash_*_calls must be >= 0");
  }
  if (plan.crash_period_calls > 0 && plan.crash_downtime_calls == 0) {
    return core::Status::invalid_argument(
        "crash_period_calls needs crash_downtime_calls > 0");
  }
  plan.crash_mtbf_s = json.get_number("crash_mtbf_s", 0.0);
  plan.crash_downtime_s = json.get_number("crash_downtime_ms", 0.0) * 1e-3;
  plan.stall_rate = json.get_number("stall_rate", 0.0);
  HARVEST_RETURN_IF_ERROR(validate_rate(plan.stall_rate, "stall_rate"));
  plan.stall_s = json.get_number("stall_ms", 0.0) * 1e-3;
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t instance_salt)
    : plan_(plan), rng_(core::splitmix64(plan.seed) ^ instance_salt) {}

FaultInjector::Decision FaultInjector::next() {
  std::scoped_lock lock(mutex_);
  ++calls_;
  Decision decision;
  // Crash clock first: a crashed instance answers nothing until it has
  // sat out its downtime (kUnavailable, fail-fast — the process is gone).
  if (crashed_for_ > 0) {
    --crashed_for_;
    ++injected_errors_;
    decision.status =
        core::Status::unavailable("injected fault: instance crashed");
    decision.fail_fast = true;
    return decision;
  }
  if (plan_.crash_period_calls > 0 && calls_ % plan_.crash_period_calls == 0) {
    crashed_for_ = plan_.crash_downtime_calls - 1;
    ++injected_errors_;
    decision.status =
        core::Status::unavailable("injected fault: instance crashed");
    decision.fail_fast = true;
    return decision;
  }
  if (plan_.latency_spike_rate > 0.0 &&
      rng_.bernoulli(plan_.latency_spike_rate)) {
    decision.delay_s = plan_.latency_spike_s;
  }
  if (plan_.transient_error_rate > 0.0 &&
      rng_.bernoulli(plan_.transient_error_rate)) {
    ++injected_errors_;
    decision.status = core::Status(plan_.transient_code,
                                   "injected fault: transient error");
  }
  return decision;
}

std::int64_t FaultInjector::calls() const {
  std::scoped_lock lock(mutex_);
  return calls_;
}

std::int64_t FaultInjector::injected_errors() const {
  std::scoped_lock lock(mutex_);
  return injected_errors_;
}

FaultyBackend::FaultyBackend(BackendPtr inner, const FaultPlan& plan,
                             std::uint64_t instance_salt)
    : inner_(std::move(inner)), injector_(plan, instance_salt) {
  HARVEST_CHECK_MSG(inner_ != nullptr, "FaultyBackend needs an inner backend");
}

const std::string& FaultyBackend::name() const { return inner_->name(); }
std::int64_t FaultyBackend::max_batch() const { return inner_->max_batch(); }
std::int64_t FaultyBackend::num_classes() const {
  return inner_->num_classes();
}
std::int64_t FaultyBackend::input_size() const { return inner_->input_size(); }
const std::string& FaultyBackend::precision() const {
  return inner_->precision();
}

core::Result<BackendResult> FaultyBackend::infer(const tensor::Tensor& batch) {
  const FaultInjector::Decision decision = injector_.next();
  // A crash fails fast (the engine never saw the batch); a transient
  // error spends the engine time first — work done, answer lost — which
  // is the worst case the retry budget has to absorb.
  if (decision.fail_fast) return decision.status;
  if (decision.delay_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(decision.delay_s));
  }
  core::Result<BackendResult> result = inner_->infer(batch);
  if (!decision.status.is_ok()) return decision.status;
  return result;
}

BackendPtr wrap_with_faults(BackendPtr backend, const FaultPlan& plan,
                            std::uint64_t instance_salt) {
  if (backend == nullptr || !plan.backend_faults()) return backend;
  return std::make_unique<FaultyBackend>(std::move(backend), plan,
                                         instance_salt);
}

}  // namespace harvest::serving::resilience
