#pragma once

/// \file retry.hpp
/// Client-side retry with exponential backoff, jitter, and a
/// deadline-aware budget. The serving runtime answers transient failures
/// (kUnavailable, kResourceExhausted, kInternal) fast; whether a request
/// is worth re-submitting is the *frontend's* call — it knows the
/// deadline and how much of it is left. `RetryingClient` wraps a
/// `Server` with that loop; the DES prices the same policy in simulated
/// time (online_sim.hpp).

#include <chrono>
#include <cstdint>
#include <mutex>

#include "core/json.hpp"
#include "core/rng.hpp"
#include "serving/server.hpp"

namespace harvest::serving::resilience {

struct RetryPolicy {
  /// Total tries including the first; 1 = retries disabled.
  int max_attempts = 1;
  /// Backoff before retry k (1-based): initial · multiplier^(k-1),
  /// clamped to max, then multiplied by a jitter factor drawn uniformly
  /// from [1 − jitter, 1] (decorrelates synchronized retry storms).
  double initial_backoff_s = 1e-3;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 0.1;
  double jitter = 0.5;  ///< in [0, 1]
  /// With a request deadline set, abandon instead of sleeping past it
  /// (the backoff that would overrun the remaining budget is not taken).
  bool respect_deadline = true;

  bool enabled() const { return max_attempts > 1; }

  /// Codes worth re-submitting: the server shed or dropped the request
  /// (kUnavailable, kResourceExhausted) or the backend failed
  /// transiently (kInternal). Bad requests and deadline misses are not
  /// retryable — the answer would not change / the budget is gone.
  static bool retryable(core::StatusCode code);

  /// Jittered backoff before retry `attempt` (1-based count of failures
  /// so far). Deterministic given the rng state.
  double backoff_s(int attempt, core::Rng& rng) const;
};

/// Parse a `"retry"` JSON object (model-repository / bench configs):
/// max_attempts, initial_backoff_ms, backoff_multiplier, max_backoff_ms,
/// jitter, respect_deadline. See docs/RESILIENCE.md.
core::Result<RetryPolicy> parse_retry_policy(const core::Json& json);

/// Synchronous retrying frontend. Counts attempts/retries/abandons both
/// locally and in the deployment's MetricsRegistry, and records a
/// `retry_backoff` span per backoff when tracing is enabled. Thread-safe.
class RetryingClient {
 public:
  RetryingClient(Server& server, RetryPolicy policy, std::uint64_t seed = 42);

  /// Submit-and-wait with retries. The returned response is the last
  /// attempt's.
  InferenceResponse infer_sync(InferenceRequest request);

  struct Counters {
    std::uint64_t attempts = 0;   ///< submits issued (first tries + retries)
    std::uint64_t retries = 0;    ///< re-submits after a retryable failure
    std::uint64_t abandoned = 0;  ///< gave up (attempts or budget exhausted)
  };
  Counters counters() const;

 private:
  /// Close the logical request's "client_request" root span (covers
  /// every attempt + backoff); no-op without an active context.
  static void finish_trace(const obs::TraceContext& client_ctx,
                           std::chrono::steady_clock::time_point client_start,
                           std::uint64_t id);

  Server* server_;
  RetryPolicy policy_;
  mutable std::mutex mutex_;
  core::Rng rng_;
  Counters counters_;
};

}  // namespace harvest::serving::resilience
