#include "serving/resilience/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "core/time.hpp"
#include "obs/trace.hpp"

namespace harvest::serving::resilience {

bool RetryPolicy::retryable(core::StatusCode code) {
  switch (code) {
    case core::StatusCode::kUnavailable:
    case core::StatusCode::kResourceExhausted:
    case core::StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::backoff_s(int attempt, core::Rng& rng) const {
  const double exponent = static_cast<double>(std::max(attempt, 1) - 1);
  double base = initial_backoff_s * std::pow(backoff_multiplier, exponent);
  base = std::min(base, max_backoff_s);
  const double j = std::clamp(jitter, 0.0, 1.0);
  return base * (1.0 - j * rng.next_double());
}

core::Result<RetryPolicy> parse_retry_policy(const core::Json& json) {
  if (!json.is_object()) {
    return core::Status::invalid_argument("\"retry\" must be an object");
  }
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(json.get_int("max_attempts", 1));
  if (policy.max_attempts < 1) {
    return core::Status::invalid_argument("max_attempts must be >= 1");
  }
  policy.initial_backoff_s = json.get_number("initial_backoff_ms", 1.0) * 1e-3;
  policy.backoff_multiplier = json.get_number("backoff_multiplier", 2.0);
  policy.max_backoff_s = json.get_number("max_backoff_ms", 100.0) * 1e-3;
  policy.jitter = json.get_number("jitter", 0.5);
  policy.respect_deadline = json.get_bool("respect_deadline", true);
  if (policy.initial_backoff_s < 0.0 || policy.max_backoff_s < 0.0 ||
      policy.backoff_multiplier < 1.0 || policy.jitter < 0.0 ||
      policy.jitter > 1.0) {
    return core::Status::invalid_argument(
        "retry policy needs backoffs >= 0, multiplier >= 1, jitter in [0,1]");
  }
  return policy;
}

RetryingClient::RetryingClient(Server& server, RetryPolicy policy,
                               std::uint64_t seed)
    : server_(&server), policy_(policy), rng_(seed) {}

InferenceResponse RetryingClient::infer_sync(InferenceRequest request) {
  obs::TraceRecorder& tracer = obs::TraceRecorder::instance();
  // Client-side trace context: one "client_request" span covers every
  // attempt and backoff of this logical request; each attempt's server
  // "request" span parents to it. Honors a pre-set trace id.
  obs::TraceContext client_ctx;
  const auto client_start = std::chrono::steady_clock::now();
  if (tracer.enabled()) {
    client_ctx.trace_id = request.trace.trace_id != 0 ? request.trace.trace_id
                                                      : obs::next_trace_id();
    client_ctx.root_span_id = obs::next_span_id();
    client_ctx.parent_span_id = request.trace.parent_span_id;
    request.trace.trace_id = client_ctx.trace_id;
    request.trace.parent_span_id = client_ctx.root_span_id;
  }
  core::WallTimer budget;
  InferenceResponse response;
  for (int attempt = 1;; ++attempt) {
    {
      std::scoped_lock lock(mutex_);
      ++counters_.attempts;
    }
    InferenceRequest copy = request;  // the submit path consumes its argument
    response = server_->infer_sync(std::move(copy));
    if (response.status.is_ok() ||
        !RetryPolicy::retryable(response.status.code())) {
      finish_trace(client_ctx, client_start, response.id);
      return response;
    }
    if (attempt >= policy_.max_attempts) break;
    double backoff;
    {
      std::scoped_lock lock(mutex_);
      backoff = policy_.backoff_s(attempt, rng_);
    }
    // Deadline-aware budget: never sleep into certain failure.
    if (policy_.respect_deadline && request.deadline_s > 0.0 &&
        budget.elapsed_seconds() + backoff >= request.deadline_s) {
      break;
    }
    {
      std::scoped_lock lock(mutex_);
      ++counters_.retries;
    }
    if (MetricsRegistry* metrics = server_->mutable_metrics(request.model)) {
      metrics->record_retry();
    }
    const auto backoff_start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    if (tracer.enabled()) {
      if (client_ctx.active()) {
        tracer.record_child("retry_backoff", "serving",
                            tracer.to_us(backoff_start),
                            tracer.to_us(std::chrono::steady_clock::now()),
                            client_ctx, response.id, attempt);
      } else {
        tracer.record_complete("retry_backoff", "serving",
                               tracer.to_us(backoff_start),
                               tracer.to_us(std::chrono::steady_clock::now()),
                               response.id, attempt);
      }
    }
  }
  {
    std::scoped_lock lock(mutex_);
    ++counters_.abandoned;
  }
  if (MetricsRegistry* metrics = server_->mutable_metrics(request.model)) {
    metrics->record_retry_abandoned();
  }
  finish_trace(client_ctx, client_start, response.id);
  return response;
}

void RetryingClient::finish_trace(
    const obs::TraceContext& client_ctx,
    std::chrono::steady_clock::time_point client_start, std::uint64_t id) {
  if (!client_ctx.active()) return;
  obs::TraceRecorder& tracer = obs::TraceRecorder::instance();
  tracer.record_root("client_request", "serving", tracer.to_us(client_start),
                     tracer.to_us(std::chrono::steady_clock::now()),
                     client_ctx, id);
}

RetryingClient::Counters RetryingClient::counters() const {
  std::scoped_lock lock(mutex_);
  return counters_;
}

}  // namespace harvest::serving::resilience
