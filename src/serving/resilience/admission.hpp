#pragma once

/// \file admission.hpp
/// Overload control in front of the dynamic batcher. Without it, an
/// overloaded deployment queues every arrival, ages each one past its
/// deadline, and delivers near-zero goodput while staying 100% busy —
/// the failure mode the paper's online/real-time scenarios must avoid.
/// The admission controller sheds load *early* with kResourceExhausted
/// (cheap for the client to retry elsewhere or degrade) based on two
/// thresholds:
///
/// * queue depth — a hard bound on waiting requests;
/// * estimated queueing delay — queue_depth × per-request service time /
///   instances, against a latency budget. The service-time estimate
///   starts from a prior (seed it from the platform model:
///   `EngineModel::estimate(B).latency_s / B`) and tracks reality with
///   an EWMA fed by the instances after every executed batch.
///
/// The same controller runs inside the DES, where the prior comes from
/// the calibrated device model directly.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "core/json.hpp"
#include "core/status.hpp"

namespace harvest::serving::resilience {

struct AdmissionConfig {
  /// Shed when the batcher queue is at least this deep. 0 disables the
  /// depth test.
  std::size_t max_queue_depth = 0;
  /// Shed when the estimated queueing delay of a new arrival exceeds
  /// this. 0 disables the delay test.
  double max_estimated_delay_s = 0.0;
  /// Prior for per-request service time, used until (and blended with)
  /// observed batches. 0 with the delay test enabled means the delay
  /// test stays inert until the first batch is observed.
  double service_time_prior_s = 0.0;

  bool enabled() const {
    return max_queue_depth > 0 || max_estimated_delay_s > 0.0;
  }
};

/// Parse an `"admission"` JSON object (model-repository key):
/// max_queue_depth, max_estimated_delay_ms, service_time_prior_ms. See
/// docs/RESILIENCE.md.
core::Result<AdmissionConfig> parse_admission_config(const core::Json& json);

/// Thread-safe shed decision + service-time tracker for one deployment.
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, int instances);

  const AdmissionConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// Admit an arrival given the current batcher queue depth?
  bool admit(std::size_t queue_depth) const;

  /// Estimated queueing delay a new arrival would see (seconds).
  double estimated_delay_s(std::size_t queue_depth) const;

  /// Fold one executed batch into the per-request service-time EWMA.
  void observe_batch(std::int64_t batch_size, double service_s);

  /// Current per-request service-time estimate (prior until observed).
  double service_time_s() const;

  /// SLO burn-rate feedback: while pressured, both thresholds run at
  /// half their configured values, shedding earlier so the deployment
  /// can stop burning error budget. Set/cleared by the SloTracker
  /// alert; edge-triggered, safe to call concurrently with admit().
  void set_pressure(bool pressured);
  bool pressured() const {
    return pressured_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionConfig config_;
  double instances_;
  mutable std::mutex mutex_;
  double ewma_service_s_;
  bool observed_ = false;
  std::atomic<bool> pressured_{false};
};

}  // namespace harvest::serving::resilience
