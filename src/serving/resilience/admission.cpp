#include "serving/resilience/admission.hpp"

#include <algorithm>

namespace harvest::serving::resilience {

namespace {
/// EWMA weight of the newest batch observation. High enough to track a
/// load shift within a few batches, low enough to ride out one outlier.
constexpr double kEwmaAlpha = 0.2;
}  // namespace

core::Result<AdmissionConfig> parse_admission_config(const core::Json& json) {
  if (!json.is_object()) {
    return core::Status::invalid_argument("\"admission\" must be an object");
  }
  AdmissionConfig config;
  const std::int64_t depth = json.get_int("max_queue_depth", 0);
  if (depth < 0) {
    return core::Status::invalid_argument("max_queue_depth must be >= 0");
  }
  config.max_queue_depth = static_cast<std::size_t>(depth);
  config.max_estimated_delay_s =
      json.get_number("max_estimated_delay_ms", 0.0) * 1e-3;
  config.service_time_prior_s =
      json.get_number("service_time_prior_ms", 0.0) * 1e-3;
  if (config.max_estimated_delay_s < 0.0 || config.service_time_prior_s < 0.0) {
    return core::Status::invalid_argument(
        "admission delay/prior must be >= 0");
  }
  return config;
}

AdmissionController::AdmissionController(AdmissionConfig config, int instances)
    : config_(config), instances_(static_cast<double>(std::max(instances, 1))),
      ewma_service_s_(config.service_time_prior_s) {}

bool AdmissionController::admit(std::size_t queue_depth) const {
  // Under SLO burn pressure both thresholds are halved: shed earlier,
  // recover the error budget sooner.
  const double scale =
      pressured_.load(std::memory_order_relaxed) ? 0.5 : 1.0;
  if (config_.max_queue_depth > 0) {
    const auto depth_limit = static_cast<std::size_t>(std::max(
        1.0, static_cast<double>(config_.max_queue_depth) * scale));
    if (queue_depth >= depth_limit) return false;
  }
  if (config_.max_estimated_delay_s > 0.0 &&
      estimated_delay_s(queue_depth) > config_.max_estimated_delay_s * scale) {
    return false;
  }
  return true;
}

void AdmissionController::set_pressure(bool pressured) {
  pressured_.store(pressured, std::memory_order_relaxed);
}

double AdmissionController::estimated_delay_s(std::size_t queue_depth) const {
  return static_cast<double>(queue_depth) * service_time_s() / instances_;
}

void AdmissionController::observe_batch(std::int64_t batch_size,
                                        double service_s) {
  if (batch_size <= 0 || service_s <= 0.0) return;
  const double per_request = service_s / static_cast<double>(batch_size);
  std::scoped_lock lock(mutex_);
  if (!observed_ && ewma_service_s_ <= 0.0) {
    ewma_service_s_ = per_request;
  } else {
    ewma_service_s_ =
        (1.0 - kEwmaAlpha) * ewma_service_s_ + kEwmaAlpha * per_request;
  }
  observed_ = true;
}

double AdmissionController::service_time_s() const {
  std::scoped_lock lock(mutex_);
  return ewma_service_s_;
}

}  // namespace harvest::serving::resilience
