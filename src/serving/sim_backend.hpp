#pragma once

/// \file sim_backend.hpp
/// Device-model backend: prices each batch with the calibrated
/// EngineModel (A100/V100/Jetson) and synthesizes deterministic logits.
/// `infer()` does not sleep — it *reports* the simulated device time in
/// BackendResult::device_seconds; callers in simulated time (the DES
/// online scenario, the analytic E2E bench) advance their clocks by it.

#include "platform/perf_model.hpp"
#include "serving/backend.hpp"

namespace harvest::serving {

class SimBackend final : public Backend {
 public:
  SimBackend(platform::EngineModel engine, std::int64_t num_classes,
             std::int64_t max_batch);

  const std::string& name() const override { return name_; }
  std::int64_t max_batch() const override { return max_batch_; }
  std::int64_t num_classes() const override { return num_classes_; }
  std::int64_t input_size() const override {
    return engine_.model_spec().input_size;
  }
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override;

  /// Simulated latency of a batch without running anything.
  double latency_s(std::int64_t batch) const;

  const platform::EngineModel& engine() const { return engine_; }
  platform::EngineModel& engine() { return engine_; }

 private:
  platform::EngineModel engine_;
  std::string name_;
  std::int64_t num_classes_;
  std::int64_t max_batch_;
};

}  // namespace harvest::serving
