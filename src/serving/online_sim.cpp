#include "serving/online_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "platform/perf_model.hpp"
#include "preproc/cost_model.hpp"
#include "sim/simulator.hpp"

namespace harvest::serving {
namespace {

/// Shared mutable state of one simulation run.
struct SimState {
  sim::Simulator simulator;
  std::deque<double> queue;  ///< arrival times of waiting requests
  std::vector<char> instance_busy;
  double busy_time = 0.0;
  std::int64_t arrivals = 0;
  std::int64_t rejected = 0;
  core::Percentiles latencies;
  core::RunningStats batch_sizes;
  std::int64_t completed = 0;
  FlushCounts flushes{};
  std::vector<OnlineSimSample> samples;
};

/// Virtual trace tids for simulated instances, clear of real thread
/// ids assigned by the recorder.
constexpr std::uint32_t kSimTidBase = 1000;

}  // namespace

OnlineSimReport simulate_online(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const OnlineSimConfig& config) {
  const ConstantTrace trace(config.arrival_rate_qps);
  return simulate_online_trace(device, model, dataset, config, trace);
}

OnlineSimReport simulate_online_trace(const platform::DeviceSpec& device,
                                      const std::string& model,
                                      const data::DatasetSpec& dataset,
                                      const OnlineSimConfig& config,
                                      const ArrivalTrace& trace) {
  HARVEST_CHECK_MSG(config.instances >= 1 && config.max_batch >= 1,
                    "bad online sim config");
  const platform::EngineModel engine =
      platform::make_engine_model(device, model);
  auto spec = nn::find_model_spec(model);
  HARVEST_CHECK(spec.has_value());
  const preproc::WorkloadImageStats stats = dataset.image_stats();
  const std::int64_t engine_cap = engine.max_batch();
  const std::int64_t max_batch =
      std::min<std::int64_t>(config.max_batch,
                             std::max<std::int64_t>(engine_cap, 1));
  constexpr std::size_t kQueueCap = 16384;

  SimState state;
  state.instance_busy.assign(static_cast<std::size_t>(config.instances), 0);
  core::Rng rng(config.seed);

  /// Stage times of one batch on one instance.
  struct StageTimes {
    double preprocess = 0.0;
    double inference = 0.0;
    double service = 0.0;
  };
  auto service_time = [&](std::int64_t batch) {
    StageTimes t;
    t.inference = engine.estimate(batch).latency_s;
    t.preprocess =
        preproc::estimate_preproc(device, stats, config.preproc_method, batch,
                                  spec->input_size)
            .latency_s;
    t.service = config.overlap_preproc ? std::max(t.inference, t.preprocess)
                                       : t.inference + t.preprocess;
    return t;
  };

  auto trace_queue_depth = [&] {
    if (config.trace == nullptr) return;
    config.trace->record_counter_at(model + "/queue_depth",
                                    state.simulator.now() * 1e6,
                                    static_cast<double>(state.queue.size()));
  };
  if (config.trace != nullptr) {
    for (int i = 0; i < config.instances; ++i) {
      config.trace->set_virtual_thread_name(
          kSimTidBase + static_cast<std::uint32_t>(i),
          model + " sim-instance#" + std::to_string(i));
    }
  }

  // Forward declaration dance: dispatch is invoked from arrivals,
  // timeouts and completions.
  std::function<void()> try_dispatch = [&] {
    for (;;) {
      if (state.queue.empty()) return;
      const bool full =
          state.queue.size() >= static_cast<std::size_t>(max_batch);
      const bool aged = state.simulator.now() - state.queue.front() >=
                        config.max_queue_delay_s;
      if (!full && !aged) return;
      // Find an idle instance.
      std::size_t idle = state.instance_busy.size();
      for (std::size_t i = 0; i < state.instance_busy.size(); ++i) {
        if (state.instance_busy[i] == 0) {
          idle = i;
          break;
        }
      }
      if (idle == state.instance_busy.size()) return;  // all busy

      const std::size_t take =
          std::min(state.queue.size(), static_cast<std::size_t>(max_batch));
      std::vector<double> arrival_times(state.queue.begin(),
                                        state.queue.begin() +
                                            static_cast<std::ptrdiff_t>(take));
      state.queue.erase(state.queue.begin(),
                        state.queue.begin() + static_cast<std::ptrdiff_t>(take));
      trace_queue_depth();
      const FlushReason reason =
          full ? FlushReason::kFullBatch : FlushReason::kTimeout;
      ++state.flushes[static_cast<std::size_t>(reason)];
      if (config.metrics != nullptr) {
        config.metrics->record_flush(reason, static_cast<std::int64_t>(take));
      }
      state.instance_busy[idle] = 1;
      const double dispatched_at = state.simulator.now();
      const StageTimes stages = service_time(static_cast<std::int64_t>(take));
      state.busy_time += stages.service;
      state.batch_sizes.add(static_cast<double>(take));
      const double done_at = dispatched_at + stages.service;
      if (config.trace != nullptr) {
        obs::TraceEvent event;
        event.name = "batch";
        event.cat = "sim";
        event.ph = 'X';
        event.ts_us = dispatched_at * 1e6;
        event.dur_us = stages.service * 1e6;
        event.tid = kSimTidBase + static_cast<std::uint32_t>(idle);
        event.batch = static_cast<std::int64_t>(take);
        config.trace->record(std::move(event));
      }
      state.simulator.schedule_at(
          done_at, [&, idle, arrival_times, dispatched_at, stages, done_at,
                    take] {
        for (double arrived : arrival_times) {
          state.latencies.add(done_at - arrived);
          ++state.completed;
          if (config.metrics != nullptr) {
            RequestTiming timing;
            timing.queue_s = dispatched_at - arrived;
            timing.preprocess_s = stages.preprocess;
            timing.inference_s = stages.inference;
            timing.total_s = done_at - arrived;
            timing.batch_size = static_cast<std::int64_t>(take);
            config.metrics->record(timing, /*ok=*/true,
                                   /*deadline_missed=*/false);
          }
        }
        state.instance_busy[idle] = 0;
        try_dispatch();
      });
    }
  };

  // Periodic gauge sampling (simulated-time sampler).
  std::function<void()> sample_gauges = [&] {
    if (state.simulator.now() > config.duration_s) return;
    OnlineSimSample sample;
    sample.t_s = state.simulator.now();
    sample.queue_depth = static_cast<double>(state.queue.size());
    for (char busy : state.instance_busy) {
      sample.busy_instances += busy != 0 ? 1.0 : 0.0;
    }
    state.samples.push_back(sample);
    state.simulator.schedule_in(config.sample_interval_s,
                                [&] { sample_gauges(); });
  };
  if (config.sample_interval_s > 0.0) sample_gauges();

  // Arrival process: each arrival enqueues itself, schedules its aging
  // timeout, and books the next arrival from the (possibly time-varying)
  // trace via thinning.
  std::function<void()> arrive = [&] {
    if (state.simulator.now() >= config.duration_s) return;
    ++state.arrivals;
    if (state.queue.size() >= kQueueCap) {
      ++state.rejected;
    } else {
      state.queue.push_back(state.simulator.now());
      trace_queue_depth();
      state.simulator.schedule_in(config.max_queue_delay_s,
                                  [&] { try_dispatch(); });
      try_dispatch();
    }
    const double next = next_arrival(trace, state.simulator.now(), rng);
    if (std::isfinite(next) && next < config.duration_s) {
      state.simulator.schedule_at(next, [&] { arrive(); });
    }
  };
  {
    const double first = next_arrival(trace, 0.0, rng);
    if (std::isfinite(first) && first < config.duration_s) {
      state.simulator.schedule_at(first, [&] { arrive(); });
    }
  }

  state.simulator.run();

  OnlineSimReport report;
  report.arrivals = state.arrivals;
  report.completed = state.completed;
  report.rejected = state.rejected;
  const double horizon = std::max(state.simulator.now(), config.duration_s);
  report.throughput_img_per_s =
      horizon > 0.0 ? static_cast<double>(state.completed) / horizon : 0.0;
  report.mean_latency_s = state.latencies.mean();
  report.p50_latency_s = state.latencies.quantile(0.5);
  report.p95_latency_s = state.latencies.p95();
  report.p99_latency_s = state.latencies.p99();
  report.mean_batch_size = state.batch_sizes.mean();
  report.flushes = state.flushes;
  report.samples = std::move(state.samples);
  report.instance_utilization =
      state.busy_time /
      (static_cast<double>(config.instances) * std::max(horizon, 1e-9));
  return report;
}

}  // namespace harvest::serving
