#include "serving/online_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "platform/perf_model.hpp"
#include "preproc/cost_model.hpp"
#include "sim/simulator.hpp"

namespace harvest::serving {
namespace {

/// One waiting request in the simulated queue.
struct SimRequest {
  double arrived = 0.0;   ///< original arrival (latency baseline)
  double enqueued = 0.0;  ///< when it (re-)entered the queue (aging clock)
  int attempts = 0;       ///< completed dispatch attempts (retry counter)
  /// Trace linkage (assigned at arrival when tracing is wired): every
  /// simulated hop of this request — transmit stall, queue, stages,
  /// retry backoff — lands in one causally-linked tree, same shape as
  /// the real server's.
  obs::TraceContext trace;
};

/// Shared mutable state of one simulation run.
struct SimState {
  sim::Simulator simulator;
  std::deque<SimRequest> queue;
  std::vector<char> instance_busy;
  /// Instance i accepts no new batches before this simulated time
  /// (crash recovery window; 0 = healthy).
  std::vector<double> crashed_until;
  double busy_time = 0.0;
  std::int64_t arrivals = 0;
  std::int64_t rejected = 0;
  std::int64_t shed = 0;
  std::int64_t failed = 0;
  std::int64_t retries = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t on_time = 0;  ///< completions within the deadline budget
  core::Percentiles latencies;
  core::RunningStats batch_sizes;
  std::int64_t completed = 0;
  FlushCounts flushes{};
  std::vector<OnlineSimSample> samples;
};

/// Virtual trace tids for simulated instances, clear of real thread
/// ids assigned by the recorder.
constexpr std::uint32_t kSimTidBase = 1000;

}  // namespace

OnlineSimReport simulate_online(const platform::DeviceSpec& device,
                                const std::string& model,
                                const data::DatasetSpec& dataset,
                                const OnlineSimConfig& config) {
  const ConstantTrace trace(config.arrival_rate_qps);
  return simulate_online_trace(device, model, dataset, config, trace);
}

OnlineSimReport simulate_online_trace(const platform::DeviceSpec& device,
                                      const std::string& model,
                                      const data::DatasetSpec& dataset,
                                      const OnlineSimConfig& config,
                                      const ArrivalTrace& trace) {
  HARVEST_CHECK_MSG(config.instances >= 1 && config.max_batch >= 1,
                    "bad online sim config");
  const platform::EngineModel engine =
      platform::make_engine_model(device, model);
  auto spec = nn::find_model_spec(model);
  HARVEST_CHECK(spec.has_value());
  const preproc::WorkloadImageStats stats = dataset.image_stats();
  const std::int64_t engine_cap = engine.max_batch();
  const std::int64_t max_batch =
      std::min<std::int64_t>(config.max_batch,
                             std::max<std::int64_t>(engine_cap, 1));

  SimState state;
  state.instance_busy.assign(static_cast<std::size_t>(config.instances), 0);
  state.crashed_until.assign(static_cast<std::size_t>(config.instances), 0.0);
  core::Rng rng(config.seed);
  // Faults draw from their own stream so the arrival sequence is
  // bit-identical across fault/retry/shedding configurations — ablation
  // curves compare policies, not resampled workloads.
  core::Rng fault_rng(core::splitmix64(config.faults.seed) ^
                      0xFA'17'5EEDULL);
  const resilience::FaultPlan& faults = config.faults;

  /// Stage times of one batch on one instance.
  struct StageTimes {
    double preprocess = 0.0;
    double inference = 0.0;
    double service = 0.0;
  };
  auto service_time = [&](std::int64_t batch) {
    StageTimes t;
    t.inference = engine.estimate(batch).latency_s;
    t.preprocess =
        preproc::estimate_preproc(device, stats, config.preproc_method, batch,
                                  spec->input_size)
            .latency_s;
    t.service = config.overlap_preproc ? std::max(t.inference, t.preprocess)
                                       : t.inference + t.preprocess;
    return t;
  };

  // Admission mirrors the real server's controller; absent an explicit
  // prior, the delay threshold is seeded from the calibrated platform
  // model (per-request service time at the largest batch).
  resilience::AdmissionConfig admission_cfg = config.admission;
  if (admission_cfg.max_estimated_delay_s > 0.0 &&
      admission_cfg.service_time_prior_s <= 0.0) {
    admission_cfg.service_time_prior_s =
        service_time(max_batch).service / static_cast<double>(max_batch);
  }
  resilience::AdmissionController admission(admission_cfg, config.instances);

  // SLO accounting in simulated time; doubles into the metrics
  // registry's tracker when one is wired (clock switched to the DES).
  obs::SloTracker slo_tracker(config.slo, config.slo_window_s);
  if (config.metrics != nullptr) {
    if (config.slo.enabled()) {
      config.metrics->configure_slo(config.slo, config.slo_window_s);
    }
    config.metrics->set_clock([&state] { return state.simulator.now(); });
  }
  auto slo_record = [&](bool ok, double latency_s) {
    if (config.slo.enabled()) {
      slo_tracker.record(state.simulator.now(), ok, latency_s);
    }
  };

  auto trace_queue_depth = [&] {
    if (config.trace == nullptr) return;
    config.trace->record_counter_at(model + "/queue_depth",
                                    state.simulator.now() * 1e6,
                                    static_cast<double>(state.queue.size()));
  };
  const std::uint32_t uplink_tid =
      kSimTidBase + static_cast<std::uint32_t>(config.instances);
  if (config.trace != nullptr) {
    for (int i = 0; i < config.instances; ++i) {
      config.trace->set_virtual_thread_name(
          kSimTidBase + static_cast<std::uint32_t>(i),
          model + " sim-instance#" + std::to_string(i));
    }
    config.trace->set_virtual_thread_name(uplink_tid, model + " sim-uplink");
  }
  /// Request-tree span at simulated timestamps: child of the request's
  /// root span, or the root itself when `name` is "request".
  auto record_sim_span = [&](const char* name, double start_s, double end_s,
                             const SimRequest& request, std::uint32_t tid,
                             std::int64_t batch = -1) {
    if (config.trace == nullptr || !request.trace.active()) return;
    obs::TraceEvent event;
    event.name = name;
    event.cat = "sim";
    event.ph = 'X';
    event.ts_us = start_s * 1e6;
    event.dur_us = std::max(end_s - start_s, 0.0) * 1e6;
    event.tid = tid;
    event.batch = batch;
    event.trace_id = request.trace.trace_id;
    const bool is_root = std::string_view(name) == "request";
    event.span_id = is_root ? request.trace.root_span_id : obs::next_span_id();
    event.parent_span_id =
        is_root ? request.trace.parent_span_id : request.trace.root_span_id;
    config.trace->record(std::move(event));
  };

  // Mutually recursive closures: dispatch is invoked from arrivals,
  // timeouts, completions and crash recoveries; retries re-enter the
  // queue from completions.
  std::function<void()> try_dispatch;
  std::function<void(SimRequest)> enqueue_retry;

  auto push_request = [&](SimRequest request) {
    request.enqueued = state.simulator.now();
    state.queue.push_back(request);
    trace_queue_depth();
    // A simulated nanosecond past the deadline: (t + d) - t can round
    // below d, and a flush event that misfires "not aged yet" would
    // strand the final queued request with no later event to drain it.
    state.simulator.schedule_in(config.max_queue_delay_s + 1e-9,
                                [&] { try_dispatch(); });
    try_dispatch();
  };

  // Fresh arrivals pass admission control, then the capacity bound.
  auto enqueue_arrival = [&](SimRequest request) {
    if (admission.enabled() && !admission.admit(state.queue.size())) {
      ++state.shed;
      if (config.metrics != nullptr) config.metrics->record_shed();
      slo_record(false, 0.0);
      return;
    }
    if (state.queue.size() >= config.queue_capacity) {
      ++state.rejected;
      slo_record(false, 0.0);
      return;
    }
    push_request(request);
  };

  // Retries skip admission (the client already owns the slot — shedding
  // a retry would turn one admitted request into a retry storm) but
  // still respect the hard capacity bound.
  enqueue_retry = [&](SimRequest request) {
    if (state.queue.size() >= config.queue_capacity) {
      ++state.failed;
      if (config.metrics != nullptr && config.retry.enabled()) {
        config.metrics->record_retry_abandoned();
      }
      return;
    }
    push_request(request);
  };

  try_dispatch = [&] {
    for (;;) {
      if (state.queue.empty()) return;
      const bool full =
          state.queue.size() >= static_cast<std::size_t>(max_batch);
      const bool aged = state.simulator.now() - state.queue.front().enqueued >=
                        config.max_queue_delay_s;
      if (!full && !aged) return;
      // Find an idle instance that is not inside a crash window.
      std::size_t idle = state.instance_busy.size();
      for (std::size_t i = 0; i < state.instance_busy.size(); ++i) {
        if (state.instance_busy[i] == 0 &&
            state.simulator.now() >= state.crashed_until[i]) {
          idle = i;
          break;
        }
      }
      if (idle == state.instance_busy.size()) return;  // all busy/crashed

      const std::size_t take =
          std::min(state.queue.size(), static_cast<std::size_t>(max_batch));
      std::vector<SimRequest> requests(
          state.queue.begin(),
          state.queue.begin() + static_cast<std::ptrdiff_t>(take));
      state.queue.erase(state.queue.begin(),
                        state.queue.begin() + static_cast<std::ptrdiff_t>(take));
      trace_queue_depth();
      const FlushReason reason =
          full ? FlushReason::kFullBatch : FlushReason::kTimeout;
      ++state.flushes[static_cast<std::size_t>(reason)];
      if (config.metrics != nullptr) {
        config.metrics->record_flush(reason, static_cast<std::int64_t>(take));
      }
      state.instance_busy[idle] = 1;
      const double dispatched_at = state.simulator.now();
      StageTimes stages = service_time(static_cast<std::int64_t>(take));
      // Injected faults, priced in simulated time. A transient failure
      // occupies the engine for its full service time before failing
      // (work done, answer lost) — same contract as FaultyBackend.
      const bool batch_fails = faults.transient_error_rate > 0.0 &&
                               fault_rng.bernoulli(faults.transient_error_rate);
      if (faults.latency_spike_rate > 0.0 &&
          fault_rng.bernoulli(faults.latency_spike_rate)) {
        stages.inference += faults.latency_spike_s;
        stages.service += faults.latency_spike_s;
      }
      admission.observe_batch(static_cast<std::int64_t>(take), stages.service);
      state.busy_time += stages.service;
      state.batch_sizes.add(static_cast<double>(take));
      const double done_at = dispatched_at + stages.service;
      if (config.trace != nullptr) {
        obs::TraceEvent event;
        event.name = batch_fails ? "batch_failed" : "batch";
        event.cat = "sim";
        event.ph = 'X';
        event.ts_us = dispatched_at * 1e6;
        event.dur_us = stages.service * 1e6;
        event.tid = kSimTidBase + static_cast<std::uint32_t>(idle);
        event.batch = static_cast<std::int64_t>(take);
        config.trace->record(std::move(event));
      }
      state.simulator.schedule_at(done_at, [&, idle, requests, dispatched_at,
                                            stages, done_at, take,
                                            batch_fails] {
        state.instance_busy[idle] = 0;
        const std::uint32_t tid =
            kSimTidBase + static_cast<std::uint32_t>(idle);
        // Stage boundaries for the per-request trace tree. Without
        // pipeline overlap the stages tile [dispatch, done]; with
        // overlap, preprocess and inference both start at dispatch and
        // the spans visibly overlap (which is the point).
        const double infer_start =
            dispatched_at + (config.overlap_preproc ? 0.0 : stages.preprocess);
        for (const SimRequest& request : requests) {
          RequestTiming timing;
          timing.queue_s = dispatched_at - request.enqueued;
          timing.preprocess_s = stages.preprocess;
          timing.inference_s = stages.inference;
          timing.total_s = done_at - request.arrived;
          timing.batch_size = static_cast<std::int64_t>(take);
          record_sim_span("queue", request.enqueued, dispatched_at, request,
                          tid, static_cast<std::int64_t>(take));
          record_sim_span("preprocess", dispatched_at,
                          dispatched_at + stages.preprocess, request, tid,
                          static_cast<std::int64_t>(take));
          record_sim_span("inference", infer_start,
                          infer_start + stages.inference, request, tid,
                          static_cast<std::int64_t>(take));
          if (!batch_fails) {
            const double latency = done_at - request.arrived;
            state.latencies.add(latency);
            ++state.completed;
            const bool missed =
                config.deadline_s > 0.0 && latency > config.deadline_s;
            if (missed) {
              ++state.deadline_misses;
            } else {
              ++state.on_time;
            }
            if (config.metrics != nullptr) {
              config.metrics->record(timing,
                                     missed ? RequestOutcome::kDeadlineMissed
                                            : RequestOutcome::kOk,
                                     request.trace.trace_id);
            }
            slo_record(!missed, latency);
            record_sim_span("request", request.arrived, done_at, request, tid,
                            static_cast<std::int64_t>(take));
            continue;
          }
          // Failed batch: retry per policy, with the deadline budget.
          const int done_attempts = request.attempts + 1;
          bool retriable = config.retry.enabled() &&
                           done_attempts < config.retry.max_attempts;
          double retry_at = 0.0;
          if (retriable) {
            retry_at =
                done_at + config.retry.backoff_s(done_attempts, fault_rng);
            if (config.retry.respect_deadline && config.deadline_s > 0.0 &&
                retry_at - request.arrived >= config.deadline_s) {
              retriable = false;  // the backoff would overrun the budget
            }
          }
          if (retriable) {
            ++state.retries;
            if (config.metrics != nullptr) config.metrics->record_retry();
            record_sim_span("backoff", done_at, retry_at, request, tid);
            SimRequest again = request;
            again.attempts = done_attempts;
            state.simulator.schedule_at(retry_at,
                                        [&, again] { enqueue_retry(again); });
          } else {
            ++state.failed;
            if (config.metrics != nullptr) {
              if (config.retry.enabled()) {
                config.metrics->record_retry_abandoned();
              }
              config.metrics->record(timing, RequestOutcome::kFailed,
                                     request.trace.trace_id);
            }
            slo_record(false, timing.total_s);
            record_sim_span("request", request.arrived, done_at, request, tid);
          }
        }
        try_dispatch();
      });
    }
  };

  // Crash process: exponential time-to-failure per instance; a crashed
  // instance finishes its in-flight batch but accepts no new ones until
  // recovery. The failure clock restarts after each recovery.
  std::function<void(std::size_t)> arm_crash;
  arm_crash = [&](std::size_t i) {
    const double at =
        state.simulator.now() + fault_rng.exponential(1.0 / faults.crash_mtbf_s);
    if (at >= config.duration_s) return;
    state.simulator.schedule_at(at, [&, i] {
      const double recovery = state.simulator.now() + faults.crash_downtime_s;
      state.crashed_until[i] = recovery;
      if (config.trace != nullptr) {
        obs::TraceEvent event;
        event.name = "crash";
        event.cat = "sim";
        event.ph = 'X';
        event.ts_us = state.simulator.now() * 1e6;
        event.dur_us = faults.crash_downtime_s * 1e6;
        event.tid = kSimTidBase + static_cast<std::uint32_t>(i);
        config.trace->record(std::move(event));
      }
      state.simulator.schedule_at(recovery, [&, i] {
        try_dispatch();
        arm_crash(i);
      });
    });
  };
  if (faults.crash_mtbf_s > 0.0 && faults.crash_downtime_s > 0.0) {
    for (std::size_t i = 0; i < state.crashed_until.size(); ++i) arm_crash(i);
  }

  // Periodic gauge sampling (simulated-time sampler).
  std::function<void()> sample_gauges = [&] {
    if (state.simulator.now() > config.duration_s) return;
    OnlineSimSample sample;
    sample.t_s = state.simulator.now();
    sample.queue_depth = static_cast<double>(state.queue.size());
    for (char busy : state.instance_busy) {
      sample.busy_instances += busy != 0 ? 1.0 : 0.0;
    }
    state.samples.push_back(sample);
    state.simulator.schedule_in(config.sample_interval_s,
                                [&] { sample_gauges(); });
  };
  if (config.sample_interval_s > 0.0) sample_gauges();

  // Arrival process: each arrival enqueues itself (possibly after a
  // transmission stall), and books the next arrival from the (possibly
  // time-varying) trace via thinning.
  std::function<void()> arrive = [&] {
    if (state.simulator.now() >= config.duration_s) return;
    ++state.arrivals;
    SimRequest request;
    request.arrived = state.simulator.now();
    if (config.trace != nullptr && config.trace->enabled()) {
      request.trace.trace_id = obs::next_trace_id();
      request.trace.root_span_id = obs::next_span_id();
    }
    if (faults.stall_rate > 0.0 && fault_rng.bernoulli(faults.stall_rate)) {
      // The uplink hiccup delays the request's *arrival at the queue*;
      // its latency clock started when it left the client.
      record_sim_span("transmit", request.arrived,
                      request.arrived + faults.stall_s, request, uplink_tid);
      state.simulator.schedule_in(faults.stall_s,
                                  [&, request] { enqueue_arrival(request); });
    } else {
      enqueue_arrival(request);
    }
    const double next = next_arrival(trace, state.simulator.now(), rng);
    if (std::isfinite(next) && next < config.duration_s) {
      state.simulator.schedule_at(next, [&] { arrive(); });
    }
  };
  {
    const double first = next_arrival(trace, 0.0, rng);
    if (std::isfinite(first) && first < config.duration_s) {
      state.simulator.schedule_at(first, [&] { arrive(); });
    }
  }

  state.simulator.run();

  OnlineSimReport report;
  report.arrivals = state.arrivals;
  report.completed = state.completed;
  report.rejected = state.rejected;
  report.shed = state.shed;
  report.failed = state.failed;
  report.retries = state.retries;
  report.deadline_misses = state.deadline_misses;
  const double horizon = std::max(state.simulator.now(), config.duration_s);
  report.throughput_img_per_s =
      horizon > 0.0 ? static_cast<double>(state.completed) / horizon : 0.0;
  report.goodput_img_per_s =
      horizon > 0.0 ? static_cast<double>(state.on_time) / horizon : 0.0;
  report.mean_latency_s = state.latencies.mean();
  report.p50_latency_s = state.latencies.quantile(0.5);
  report.p95_latency_s = state.latencies.p95();
  report.p99_latency_s = state.latencies.p99();
  report.mean_batch_size = state.batch_sizes.mean();
  report.flushes = state.flushes;
  report.samples = std::move(state.samples);
  report.instance_utilization =
      state.busy_time /
      (static_cast<double>(config.instances) * std::max(horizon, 1e-9));
  report.slo_enabled = config.slo.enabled();
  if (config.slo.enabled()) {
    report.slo_burn_rate = slo_tracker.burn_rate(state.simulator.now());
    report.slo_budget_remaining = slo_tracker.budget_remaining();
  }
  // The registry outlives `state`; it must not keep a clock bound to the
  // simulator about to be destroyed.
  if (config.metrics != nullptr) config.metrics->set_clock(nullptr);
  return report;
}

}  // namespace harvest::serving
