#pragma once

/// \file backend.hpp
/// The backend abstraction: a loaded engine that turns a preprocessed
/// batch into logits. `NativeBackend` executes the real harvest_nn graph
/// on the host CPU; `SimBackend` prices the batch with the calibrated
/// device model and synthesizes logits — the serving layer above cannot
/// tell them apart (the point of the substitution).

#include <memory>
#include <string>

#include "core/status.hpp"
#include "tensor/tensor.hpp"

namespace harvest::serving {

struct BackendResult {
  tensor::Tensor logits;     ///< [N, num_classes]
  double device_seconds = 0.0;  ///< engine-reported execution time
};

class Backend {
 public:
  virtual ~Backend() = default;
  virtual const std::string& name() const = 0;
  virtual std::int64_t max_batch() const = 0;
  virtual std::int64_t num_classes() const = 0;
  /// Expected input: [N, 3, S, S] with N ≤ max_batch().
  virtual core::Result<BackendResult> infer(const tensor::Tensor& batch) = 0;
  /// Model input edge S.
  virtual std::int64_t input_size() const = 0;
  /// Numeric precision the engine executes in ("fp32", "int8", ...).
  /// Surfaces as a metrics/trace label so deployments of the same model
  /// at different precisions can be compared live.
  virtual const std::string& precision() const {
    static const std::string kFp32 = "fp32";
    return kFp32;
  }
};

using BackendPtr = std::unique_ptr<Backend>;

}  // namespace harvest::serving
