#include "serving/multitask.hpp"

#include "core/time.hpp"
#include "serving/model_instance.hpp"

namespace harvest::serving {

MultiTaskPipeline::MultiTaskPipeline(preproc::PreprocSpec shared_spec,
                                     core::ThreadPool* pool)
    : spec_(shared_spec), pool_(pool) {}

core::Status MultiTaskPipeline::add_task(std::string task, BackendPtr backend) {
  if (backend == nullptr) {
    return core::Status::invalid_argument("task backend must not be null");
  }
  if (backend->input_size() != spec_.output_size) {
    return core::Status::invalid_argument(
        "task \"" + task + "\" expects input " +
        std::to_string(backend->input_size()) +
        " but the shared preprocessing produces " +
        std::to_string(spec_.output_size));
  }
  for (const Task& existing : tasks_) {
    if (existing.name == task) {
      return core::Status::invalid_argument("duplicate task name: " + task);
    }
  }
  tasks_.push_back(Task{std::move(task), std::move(backend)});
  return core::Status::ok();
}

std::vector<std::string> MultiTaskPipeline::task_names() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (const Task& task : tasks_) names.push_back(task.name);
  return names;
}

core::Result<MultiTaskPipeline::MultiResult> MultiTaskPipeline::infer(
    const preproc::EncodedImage& input) {
  if (tasks_.empty()) {
    return core::Status::invalid_argument("no tasks registered");
  }

  // Shared preprocessing: decode → (warp) → resize → normalize, once.
  core::WallTimer preproc_timer;
  core::Result<tensor::Tensor> preprocessed = [&]() -> core::Result<tensor::Tensor> {
    const std::span<const preproc::EncodedImage> batch(&input, 1);
    if (pool_ != nullptr) {
      preproc::DaliPipeline pipeline(*pool_);
      return pipeline.run(batch, spec_);
    }
    preproc::CpuPipeline pipeline;
    return pipeline.run(batch, spec_);
  }();
  if (!preprocessed.is_ok()) return preprocessed.status();

  MultiResult out;
  out.preprocess_s = preproc_timer.elapsed_seconds();
  out.results.reserve(tasks_.size());

  for (Task& task : tasks_) {
    TaskResult result;
    result.task = task.name;
    core::WallTimer infer_timer;
    core::Result<BackendResult> inferred =
        task.backend->infer(preprocessed.value());
    if (!inferred.is_ok()) {
      result.response.status = inferred.status();
    } else {
      fill_prediction(inferred.value().logits, 0, result.response);
      result.response.timing.inference_s = inferred.value().device_seconds;
    }
    result.response.timing.preprocess_s = out.preprocess_s;  // shared
    result.response.timing.total_s =
        out.preprocess_s + infer_timer.elapsed_seconds();
    result.response.timing.batch_size = 1;
    out.results.push_back(std::move(result));
  }
  return out;
}

}  // namespace harvest::serving
