#pragma once

#include <algorithm>

namespace harvest::serving {

/// Start-time weighted fair queueing virtual-time core, shared by the
/// WorkerPool dispatcher, the tenant DES, and the continuum cloud tier.
///
/// Each principal (tenant, farm, ...) carries a stored virtual time; the
/// scheduler picks the principal with the minimum *effective* virtual
/// time (stored vt clamped up to the global clock, so an idle principal
/// re-enters at the current service point instead of monopolizing the
/// resource while it catches up). Dispatching charges `work / weight`
/// of virtual service and advances the global clock to the batch's
/// start tag. Ties are broken by the caller (deterministically, e.g. by
/// name or index) — the clock itself is policy-free.
class WfqClock {
 public:
  /// Weights at or below zero are clamped to this floor rather than
  /// dividing by zero; a near-zero weight is "lowest possible priority",
  /// not a crash.
  static constexpr double kMinWeight = 1e-9;

  /// The effective virtual time of a principal whose stored vt is `vt`.
  double effective(double vt) const { return std::max(vt, global_vt_); }

  /// Charge `work` units at `weight` against a principal whose stored
  /// vt is `vt`; advances the global clock to the start tag and returns
  /// the principal's new stored vt.
  double charge(double vt, double work, double weight) {
    const double start_tag = effective(vt);
    global_vt_ = std::max(global_vt_, start_tag);
    return start_tag + work / std::max(weight, kMinWeight);
  }

  /// Current global service point. New principals enter here — not at
  /// zero — so a late arrival cannot starve everyone else.
  double now() const { return global_vt_; }

 private:
  double global_vt_ = 0.0;
};

}  // namespace harvest::serving
