#include "serving/model_instance.hpp"

#include <algorithm>
#include <cmath>

#include "core/time.hpp"

namespace harvest::serving {

void fill_prediction(const tensor::Tensor& logits, std::int64_t row,
                     InferenceResponse& response) {
  const std::int64_t classes = logits.shape()[1];
  const float* data = logits.f32() + row * classes;
  response.logits.assign(data, data + classes);
  // Stable softmax for the confidence score.
  float peak = data[0];
  std::int64_t arg = 0;
  for (std::int64_t c = 1; c < classes; ++c) {
    if (data[c] > peak) {
      peak = data[c];
      arg = c;
    }
  }
  double denom = 0.0;
  for (std::int64_t c = 0; c < classes; ++c) {
    denom += std::exp(static_cast<double>(data[c] - peak));
  }
  response.predicted_class = arg;
  response.confidence = static_cast<float>(1.0 / denom);
}

ModelInstance::ModelInstance(std::string name, BackendPtr backend,
                             preproc::PreprocSpec preproc_spec,
                             DynamicBatcher& batcher, MetricsRegistry& metrics,
                             core::ThreadPool* pool)
    : name_(std::move(name)), backend_(std::move(backend)),
      preproc_spec_(preproc_spec), batcher_(&batcher), metrics_(&metrics),
      pool_(pool), worker_([this] { run_loop(); }) {}

ModelInstance::~ModelInstance() {
  // The owner is expected to have shut the batcher down; joining here is
  // then prompt. (RAII join per CP.23/CP.25.)
  worker_.join();
}

void ModelInstance::run_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = batcher_->wait_batch();
    if (batch.empty()) return;  // shutdown
    execute_batch(std::move(batch));
    batches_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ModelInstance::execute_batch(std::vector<PendingRequest> batch) {
  const auto started = std::chrono::steady_clock::now();

  // Real-time hygiene: a request whose deadline already expired while
  // queueing is worthless — answer it immediately instead of spending
  // preprocessing/inference on it (§2.2.3: the vehicle has moved on).
  std::erase_if(batch, [&](PendingRequest& pending) {
    const double waited =
        std::chrono::duration<double>(started - pending.enqueued_at).count();
    if (pending.request.deadline_s <= 0.0 ||
        waited <= pending.request.deadline_s) {
      return false;
    }
    InferenceResponse response;
    response.id = pending.request.id;
    response.status = core::Status::deadline_exceeded(
        "dropped: deadline expired while queued");
    response.timing.queue_s = waited;
    response.timing.total_s = waited;
    metrics_->record(response.timing, /*ok=*/false, /*deadline_missed=*/true);
    pending.promise.set_value(std::move(response));
    return true;
  });
  if (batch.empty()) return;
  const std::int64_t n = static_cast<std::int64_t>(batch.size());

  auto fail_all = [&](const core::Status& status) {
    for (PendingRequest& pending : batch) {
      InferenceResponse response;
      response.id = pending.request.id;
      response.status = status;
      metrics_->record(response.timing, /*ok=*/false, /*deadline_missed=*/false);
      pending.promise.set_value(std::move(response));
    }
  };

  // Stage 1: preprocessing (encoded images → model-ready tensor).
  core::WallTimer preproc_timer;
  std::vector<preproc::EncodedImage> inputs;
  inputs.reserve(batch.size());
  for (const PendingRequest& pending : batch) {
    inputs.push_back(pending.request.input);  // cheap: bytes are copied once
  }
  core::Result<tensor::Tensor> preprocessed =
      [&]() -> core::Result<tensor::Tensor> {
    if (pool_ != nullptr) {
      preproc::DaliPipeline pipeline(*pool_);
      return pipeline.run(inputs, preproc_spec_);
    }
    preproc::CpuPipeline pipeline;
    return pipeline.run(inputs, preproc_spec_);
  }();
  if (!preprocessed.is_ok()) {
    fail_all(preprocessed.status());
    return;
  }
  const double preproc_s = preproc_timer.elapsed_seconds();

  // Stage 2: inference.
  core::Result<BackendResult> inferred =
      backend_->infer(preprocessed.value());
  if (!inferred.is_ok()) {
    fail_all(inferred.status());
    return;
  }
  const BackendResult& result = inferred.value();

  // Stage 3: respond.
  const auto finished = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < n; ++i) {
    PendingRequest& pending = batch[static_cast<std::size_t>(i)];
    InferenceResponse response;
    response.id = pending.request.id;
    fill_prediction(result.logits, i, response);
    response.timing.queue_s =
        std::chrono::duration<double>(started - pending.enqueued_at).count();
    response.timing.preprocess_s = preproc_s;
    response.timing.inference_s = result.device_seconds;
    response.timing.total_s =
        std::chrono::duration<double>(finished - pending.enqueued_at).count();
    response.timing.batch_size = n;
    const bool missed = pending.request.deadline_s > 0.0 &&
                        response.timing.total_s > pending.request.deadline_s;
    if (missed) {
      response.status = core::Status::deadline_exceeded(
          "completed after the request deadline");
    }
    metrics_->record(response.timing, response.status.is_ok(), missed);
    pending.promise.set_value(std::move(response));
  }
}

}  // namespace harvest::serving
