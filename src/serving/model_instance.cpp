#include "serving/model_instance.hpp"

#include <algorithm>
#include <cmath>

#include "core/time.hpp"
#include "obs/trace.hpp"

namespace harvest::serving {

void fill_prediction(const tensor::Tensor& logits, std::int64_t row,
                     InferenceResponse& response) {
  const std::int64_t classes = logits.shape()[1];
  const float* data = logits.f32() + row * classes;
  response.logits.assign(data, data + classes);
  // Stable softmax for the confidence score.
  float peak = data[0];
  std::int64_t arg = 0;
  for (std::int64_t c = 1; c < classes; ++c) {
    if (data[c] > peak) {
      peak = data[c];
      arg = c;
    }
  }
  double denom = 0.0;
  for (std::int64_t c = 0; c < classes; ++c) {
    denom += std::exp(static_cast<double>(data[c] - peak));
  }
  response.predicted_class = arg;
  response.confidence = static_cast<float>(1.0 / denom);
}

BatchExecutor::BatchExecutor(std::string name, preproc::PreprocSpec preproc_spec,
                             MetricsRegistry& metrics, core::ThreadPool* pool,
                             resilience::AdmissionController* admission)
    : name_(std::move(name)), preproc_spec_(preproc_spec), metrics_(&metrics),
      pool_(pool), admission_(admission) {}

namespace {

/// RAII in-flight gauge: counts the batch from drop-filtering to the
/// last response promise being fulfilled.
struct InflightGuard {
  MetricsRegistry* metrics;
  std::int64_t n;
  InflightGuard(MetricsRegistry* m, std::int64_t count) : metrics(m), n(count) {
    metrics->inflight_add(n);
  }
  ~InflightGuard() { metrics->inflight_add(-n); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
};

}  // namespace

void BatchExecutor::execute(std::vector<PendingRequest> batch,
                            Backend& backend, double cold_start_s) {
  const auto started = std::chrono::steady_clock::now();
  batches_executed_.fetch_add(1, std::memory_order_relaxed);
  if (cold_start_s > 0.0) {
    // The claimed stream was paged out (or never built): the reload
    // time is this batch's cold start, charged once per reload.
    metrics_->record_cold_start(cold_start_s);
  }
  obs::TraceRecorder& tracer = obs::TraceRecorder::instance();
  // Per-request span recorder: linked into the request's trace tree
  // when a context is active, plain id-correlated span otherwise.
  auto record_span = [&tracer](std::string_view name,
                               const PendingRequest& pending, double start_us,
                               double end_us, std::int64_t batch_size) {
    if (pending.request.trace.active()) {
      tracer.record_child(name, "serving", start_us, end_us,
                          pending.request.trace, pending.request.id,
                          batch_size);
    } else {
      tracer.record_complete(name, "serving", start_us, end_us,
                             pending.request.id, batch_size);
    }
  };
  if (tracer.enabled()) {
    // One queue span per request: enqueue to batch formation.
    for (const PendingRequest& pending : batch) {
      record_span("queue", pending, tracer.to_us(pending.enqueued_at),
                  tracer.to_us(started),
                  static_cast<std::int64_t>(batch.size()));
    }
    if (cold_start_s > 0.0) {
      // The reload ran immediately before `started`; tile it in so the
      // trace shows which requests paid the paging penalty.
      const auto cold_begin =
          started - std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(cold_start_s));
      for (const PendingRequest& pending : batch) {
        record_span("cold_load", pending, tracer.to_us(cold_begin),
                    tracer.to_us(started),
                    static_cast<std::int64_t>(batch.size()));
      }
    }
  }

  // Real-time hygiene: a request whose deadline already expired while
  // queueing is worthless — answer it immediately instead of spending
  // preprocessing/inference on it (§2.2.3: the vehicle has moved on).
  std::erase_if(batch, [&](PendingRequest& pending) {
    const double waited =
        std::chrono::duration<double>(started - pending.enqueued_at).count();
    if (pending.request.deadline_s <= 0.0 ||
        waited <= pending.request.deadline_s) {
      return false;
    }
    InferenceResponse response;
    response.id = pending.request.id;
    response.status = core::Status::deadline_exceeded(
        "dropped: deadline expired while queued");
    response.timing.queue_s = waited;
    response.timing.total_s = waited;
    metrics_->record(response.timing, RequestOutcome::kDeadlineMissed,
                     pending.request.trace.trace_id);
    tracer.record_instant("dropped_deadline", "serving",
                          pending.request.trace);
    // Close the request tree: its whole life was the queue.
    tracer.record_root("request", "serving",
                       tracer.to_us(pending.enqueued_at),
                       tracer.to_us(started), pending.request.trace,
                       pending.request.id);
    pending.promise.set_value(std::move(response));
    return true;
  });
  if (batch.empty()) return;
  const std::int64_t n = static_cast<std::int64_t>(batch.size());
  InflightGuard inflight(metrics_, n);

  auto fail_all = [&](const core::Status& status) {
    const auto failed_at = std::chrono::steady_clock::now();
    for (PendingRequest& pending : batch) {
      InferenceResponse response;
      response.id = pending.request.id;
      response.status = status;
      metrics_->record(response.timing, RequestOutcome::kFailed,
                       pending.request.trace.trace_id);
      tracer.record_root("request", "serving",
                         tracer.to_us(pending.enqueued_at),
                         tracer.to_us(failed_at), pending.request.trace,
                         pending.request.id, n);
      pending.promise.set_value(std::move(response));
    }
  };

  // Stage 1: preprocessing (encoded images → model-ready tensor).
  core::WallTimer preproc_timer;
  std::vector<preproc::EncodedImage> inputs;
  inputs.reserve(batch.size());
  for (const PendingRequest& pending : batch) {
    inputs.push_back(pending.request.input);  // cheap: bytes are copied once
  }
  core::Result<tensor::Tensor> preprocessed =
      [&]() -> core::Result<tensor::Tensor> {
    obs::ScopedSpan span("preprocess", "serving");
    span.set_batch(n);
    if (pool_ != nullptr) {
      preproc::DaliPipeline pipeline(*pool_);
      return pipeline.run(inputs, preproc_spec_);
    }
    preproc::CpuPipeline pipeline;
    return pipeline.run(inputs, preproc_spec_);
  }();
  if (!preprocessed.is_ok()) {
    fail_all(preprocessed.status());
    return;
  }
  const double preproc_s = preproc_timer.elapsed_seconds();
  const auto preproc_done = std::chrono::steady_clock::now();

  // Stage 2: inference.
  core::Result<BackendResult> inferred = [&]() -> core::Result<BackendResult> {
    obs::ScopedSpan span("inference", "serving");
    span.set_batch(n);
    return backend.infer(preprocessed.value());
  }();
  if (!inferred.is_ok()) {
    fail_all(inferred.status());
    return;
  }
  const BackendResult& result = inferred.value();
  const auto infer_done = std::chrono::steady_clock::now();

  // Stage 3: respond.
  obs::ScopedSpan respond_span("respond", "serving");
  respond_span.set_batch(n);
  const auto finished = std::chrono::steady_clock::now();
  if (admission_ != nullptr) {
    // Feed the measured service time (preprocess + infer, as executed)
    // back into the deployment's shed-threshold estimate.
    admission_->observe_batch(
        n, std::chrono::duration<double>(finished - started).count());
  }
  for (std::int64_t i = 0; i < n; ++i) {
    PendingRequest& pending = batch[static_cast<std::size_t>(i)];
    InferenceResponse response;
    response.id = pending.request.id;
    fill_prediction(result.logits, i, response);
    response.timing.queue_s =
        std::chrono::duration<double>(started - pending.enqueued_at).count();
    response.timing.preprocess_s = preproc_s;
    response.timing.inference_s = result.device_seconds;
    response.timing.total_s =
        std::chrono::duration<double>(finished - pending.enqueued_at).count();
    response.timing.batch_size = n;
    const bool missed = pending.request.deadline_s > 0.0 &&
                        response.timing.total_s > pending.request.deadline_s;
    if (missed) {
      response.status = core::Status::deadline_exceeded(
          "completed after the request deadline");
    }
    metrics_->record(response.timing,
                     missed ? RequestOutcome::kDeadlineMissed
                            : RequestOutcome::kOk,
                     pending.request.trace.trace_id);
    if (pending.request.trace.active()) {
      // Stage child spans at the exact batch boundaries: together with
      // the queue span recorded at batch formation, they tile the root
      // "request" span, so critical-path sums reproduce the end-to-end
      // latency.
      record_span("preprocess", pending, tracer.to_us(started),
                  tracer.to_us(preproc_done), n);
      record_span("inference", pending, tracer.to_us(preproc_done),
                  tracer.to_us(infer_done), n);
      record_span("respond", pending, tracer.to_us(infer_done),
                  tracer.to_us(finished), n);
      tracer.record_root("request", "serving",
                         tracer.to_us(pending.enqueued_at),
                         tracer.to_us(finished), pending.request.trace,
                         pending.request.id, n);
    } else {
      tracer.record_complete("request", "serving",
                             tracer.to_us(pending.enqueued_at),
                             tracer.to_us(finished), pending.request.id, n);
    }
    pending.promise.set_value(std::move(response));
  }
}

}  // namespace harvest::serving
