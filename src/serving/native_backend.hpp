#pragma once

/// \file native_backend.hpp
/// Real-execution backend: owns a harvest_nn model (with deterministic
/// weights) and runs it on the host CPU. Used by the examples, the
/// integration tests, and any deployment that actually wants answers.

#include <mutex>

#include "core/arena.hpp"
#include "nn/graph.hpp"
#include "serving/backend.hpp"

namespace harvest::serving {

class NativeBackend final : public Backend {
 public:
  /// Takes ownership of a built (and initialized) model. `precision`
  /// labels what the graph executes in — pass "int8" for a model that
  /// went through nn::quantize_model.
  NativeBackend(nn::ModelPtr model, std::int64_t max_batch,
                std::string precision = "fp32");

  const std::string& name() const override;
  std::int64_t max_batch() const override { return max_batch_; }
  std::int64_t num_classes() const override;
  std::int64_t input_size() const override;
  core::Result<BackendResult> infer(const tensor::Tensor& batch) override;
  const std::string& precision() const override { return precision_; }

  nn::Model& model() { return *model_; }

 private:
  nn::ModelPtr model_;
  std::int64_t max_batch_;
  std::string precision_;
  // Per-request bump arena: all intermediate activations of a forward
  // land here and are recycled wholesale after the logits are cloned
  // out, so the steady-state hot path performs zero heap allocations.
  core::BumpArena arena_;
  // The nn graph reuses per-layer scratch buffers; serialize access so
  // one backend instance = one execution stream (more instances = more
  // backends, as in Triton's instance groups).
  std::mutex exec_mutex_;
};

}  // namespace harvest::serving
