#include "serving/weight_store.hpp"

#include <algorithm>

#include "core/time.hpp"

namespace harvest::serving {

WeightStore::WeightStore(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

void WeightStore::set_budget_bytes(std::size_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  budget_bytes_ = budget_bytes;
  enforce_budget_locked();
}

std::size_t WeightStore::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_bytes_;
}

core::Result<WeightStore::EntryPtr> WeightStore::acquire(
    const std::string& key, BackendFactory factory, std::size_t streams,
    std::size_t bytes_per_stream) {
  if (streams == 0) {
    return core::Status::invalid_argument("weight entry needs streams >= 1");
  }
  EntryPtr entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return core::Status::unavailable("weight store shut down");
    naive_bytes_ += streams * bytes_per_stream;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Dedup hit: the new deployment rides the existing streams. The
      // stream count grows to the larger requirement — sharers share
      // concurrency, they do not stack copies.
      ++dedup_hits_;
      if (it->second->slots.size() < streams) {
        it->second->slots.resize(streams);
      }
      return it->second;
    }
    entry = std::make_shared<Entry>();
    entry->key = key;
    entry->factory = std::move(factory);
    entry->bytes_per_stream = bytes_per_stream;
    entry->slots.resize(streams);
    // Build the first stream eagerly (below, unlocked) so a broken
    // factory fails registration instead of the first request.
    entry->slots[0].state = SlotState::kBuilding;
    entries_.emplace(key, entry);
  }
  BackendPtr built = entry->factory();
  std::lock_guard<std::mutex> lock(mutex_);
  if (built == nullptr) {
    entries_.erase(key);
    return core::Status::internal("backend factory returned null");
  }
  entry->slots[0].backend = std::move(built);
  entry->slots[0].state = SlotState::kReady;
  entry->last_use_tick = ++tick_;
  enforce_budget_locked();
  return entry;
}

WeightStore::StreamLease WeightStore::claim(const EntryPtr& entry) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) return {};
    // Warm hit first; an empty slot second (lazy build / paged-out
    // reload — the cold start); otherwise wait for a release.
    for (std::size_t i = 0; i < entry->slots.size(); ++i) {
      if (entry->slots[i].state == SlotState::kReady) {
        entry->slots[i].state = SlotState::kBusy;
        entry->last_use_tick = ++tick_;
        StreamLease lease;
        lease.entry = entry.get();
        lease.index = i;
        lease.backend = entry->slots[i].backend.get();
        return lease;
      }
    }
    for (std::size_t i = 0; i < entry->slots.size(); ++i) {
      if (entry->slots[i].state != SlotState::kEmpty) continue;
      entry->slots[i].state = SlotState::kBuilding;
      lock.unlock();
      core::WallTimer timer;
      BackendPtr built = entry->factory();
      const double cold_start_s = timer.elapsed_seconds();
      lock.lock();
      if (built == nullptr) {
        entry->slots[i].state = SlotState::kEmpty;
        cv_.notify_all();
        return {};
      }
      entry->slots[i].backend = std::move(built);
      entry->slots[i].state = SlotState::kBusy;
      entry->last_use_tick = ++tick_;
      ++cold_loads_;
      ++entry->cold_loads;
      enforce_budget_locked();
      StreamLease lease;
      lease.entry = entry.get();
      lease.index = i;
      lease.backend = entry->slots[i].backend.get();
      lease.cold_start_s = cold_start_s;
      return lease;
    }
    cv_.wait(lock);
  }
}

void WeightStore::release(const StreamLease& lease) {
  if (lease.entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = lease.entry->slots[lease.index];
  if (slot.state == SlotState::kBusy) slot.state = SlotState::kReady;
  lease.entry->last_use_tick = ++tick_;
  enforce_budget_locked();
  cv_.notify_all();
}

void WeightStore::shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_ = true;
  cv_.notify_all();
}

std::size_t WeightStore::resident_bytes_locked() const {
  std::size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    for (const Slot& slot : entry->slots) {
      // A building slot is about to be resident; counting it keeps the
      // budget from overshooting during concurrent cold loads.
      if (slot.state != SlotState::kEmpty) bytes += entry->bytes_per_stream;
    }
  }
  return bytes;
}

void WeightStore::enforce_budget_locked() {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_locked() > budget_bytes_) {
    // LRU victim: the least-recently-used entry that still has an idle
    // ready stream worth paging (weightless entries gain nothing).
    Entry* victim = nullptr;
    for (const auto& [key, entry] : entries_) {
      if (entry->bytes_per_stream == 0) continue;
      bool pageable = false;
      for (const Slot& slot : entry->slots) {
        if (slot.state == SlotState::kReady) pageable = true;
      }
      if (!pageable) continue;
      if (victim == nullptr || entry->last_use_tick < victim->last_use_tick) {
        victim = entry.get();
      }
    }
    if (victim == nullptr) return;  // everything left is busy/building
    for (Slot& slot : victim->slots) {
      if (slot.state != SlotState::kReady) continue;
      slot.backend.reset();
      slot.state = SlotState::kEmpty;
      ++pageouts_;
      break;  // one stream per iteration, then re-check the budget
    }
  }
}

WeightStore::Stats WeightStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.entries = entries_.size();
  for (const auto& [key, entry] : entries_) {
    for (const Slot& slot : entry->slots) {
      if (slot.state != SlotState::kEmpty) {
        ++stats.resident_streams;
        stats.resident_bytes += entry->bytes_per_stream;
      }
    }
  }
  stats.naive_bytes = naive_bytes_;
  stats.dedup_hits = dedup_hits_;
  stats.cold_loads = cold_loads_;
  stats.pageouts = pageouts_;
  return stats;
}

}  // namespace harvest::serving
