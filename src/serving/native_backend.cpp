#include "serving/native_backend.hpp"

#include "core/time.hpp"

namespace harvest::serving {

NativeBackend::NativeBackend(nn::ModelPtr model, std::int64_t max_batch,
                             std::string precision)
    : model_(std::move(model)), max_batch_(max_batch),
      precision_(std::move(precision)) {
  HARVEST_CHECK_MSG(model_ != nullptr, "native backend needs a model");
  HARVEST_CHECK_MSG(max_batch_ >= 1, "max_batch must be positive");
}

const std::string& NativeBackend::name() const { return model_->name(); }

std::int64_t NativeBackend::num_classes() const {
  return model_->num_classes();
}

std::int64_t NativeBackend::input_size() const {
  // Per-image shape is [3, S, S].
  return model_->input_shape()[1];
}

core::Result<BackendResult> NativeBackend::infer(const tensor::Tensor& batch) {
  const tensor::Shape& s = batch.shape();
  if (s.rank() != 4 || s[1] != model_->input_shape()[0] ||
      s[2] != model_->input_shape()[1] || s[3] != model_->input_shape()[2]) {
    return core::Status::invalid_argument(
        "batch shape " + s.to_string() + " does not match model input " +
        model_->input_shape().to_string());
  }
  if (s[0] > max_batch_) {
    return core::Status::invalid_argument("batch exceeds max_batch");
  }
  std::scoped_lock lock(exec_mutex_);
  core::WallTimer timer;
  BackendResult result;
  {
    // Every activation (and the forward's return tensor) lands in the
    // request arena; clone the logits onto the heap before recycling
    // the arena memory for the next request.
    core::ArenaScope scope(arena_);
    result.logits = model_->forward(batch).clone();
  }
  arena_.reset();
  result.device_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace harvest::serving
