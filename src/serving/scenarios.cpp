#include "serving/scenarios.hpp"

#include <deque>
#include <thread>

#include "core/stats.hpp"
#include "core/time.hpp"
#include "data/loader.hpp"

namespace harvest::serving {

OfflineReport run_offline(Server& server, const std::string& model,
                          const data::SyntheticDataset& dataset,
                          std::int64_t count, std::int64_t max_in_flight) {
  OfflineReport report;
  const std::int64_t total = std::min(count, dataset.size());
  // Sized to the dataset's label space but grown on demand — the served
  // model may have a wider head than the dataset (e.g. a shared
  // multi-task deployment).
  report.class_histogram.assign(
      static_cast<std::size_t>(std::max<std::int64_t>(
          dataset.spec().num_classes, 1)),
      0);

  core::WallTimer timer;
  data::PrefetchLoader loader(dataset, /*batch_size=*/8, 0, total);
  std::deque<std::future<InferenceResponse>> in_flight;

  auto drain_one = [&] {
    InferenceResponse response = in_flight.front().get();
    in_flight.pop_front();
    if (response.status.is_ok()) {
      ++report.processed;
      if (response.predicted_class >= 0) {
        const auto slot = static_cast<std::size_t>(response.predicted_class);
        if (slot >= report.class_histogram.size()) {
          report.class_histogram.resize(slot + 1, 0);
        }
        ++report.class_histogram[slot];
      }
    } else {
      ++report.failed;
    }
  };

  while (auto batch = loader.next()) {
    for (data::Sample& sample : batch->samples) {
      InferenceRequest request;
      request.model = model;
      request.input = std::move(sample.image);
      auto submitted = server.submit(std::move(request));
      if (!submitted.is_ok()) {
        ++report.failed;
        continue;
      }
      in_flight.push_back(std::move(submitted).value());
      while (in_flight.size() >= static_cast<std::size_t>(max_in_flight)) {
        drain_one();
      }
    }
  }
  while (!in_flight.empty()) drain_one();

  report.wall_seconds = timer.elapsed_seconds();
  report.throughput_img_per_s =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.processed) / report.wall_seconds
          : 0.0;
  if (const MetricsRegistry* metrics = server.metrics(model)) {
    report.metrics = metrics->snapshot(report.wall_seconds);
  }
  return report;
}

RealTimeReport run_realtime(Server& server, const std::string& model,
                            const data::SyntheticDataset& dataset,
                            const RealTimeConfig& config) {
  RealTimeReport report;
  core::Percentiles latencies;
  core::WallTimer timer;
  // With retries disabled (the default) the client degenerates to a
  // single submit-and-wait, so every frame goes through one path.
  resilience::RetryingClient client(server, config.retry);
  const auto start = std::chrono::steady_clock::now();

  for (std::int64_t frame = 0; frame < config.frames; ++frame) {
    const auto frame_due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(frame) * config.frame_interval_s));
    const auto now = std::chrono::steady_clock::now();
    if (now < frame_due) {
      std::this_thread::sleep_until(frame_due);
    } else if (std::chrono::duration<double>(now - frame_due).count() >
               config.frame_interval_s) {
      // More than a full frame behind: the camera has already produced
      // the next frame; drop this one.
      ++report.frames_dropped;
      continue;
    }

    data::Sample sample = dataset.make_sample(frame % dataset.size());
    InferenceRequest request;
    request.model = model;
    request.input = std::move(sample.image);
    request.deadline_s = config.deadline_s;

    core::WallTimer frame_timer;
    InferenceResponse response = client.infer_sync(std::move(request));
    const double latency = frame_timer.elapsed_seconds();
    latencies.add(latency);
    ++report.frames_processed;
    if (latency > config.deadline_s ||
        response.status.code() == core::StatusCode::kDeadlineExceeded) {
      ++report.deadline_misses;
    } else if (!response.status.is_ok()) {
      ++report.frames_failed;
    }
  }

  const resilience::RetryingClient::Counters counters = client.counters();
  report.retries = static_cast<std::int64_t>(counters.retries);
  report.retry_abandoned = static_cast<std::int64_t>(counters.abandoned);
  report.p95_latency_s = latencies.p95();
  report.mean_latency_s = latencies.mean();
  if (const MetricsRegistry* metrics = server.metrics(model)) {
    report.metrics = metrics->snapshot(timer.elapsed_seconds());
  }
  return report;
}

}  // namespace harvest::serving
