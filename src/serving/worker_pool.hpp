#pragma once

/// \file worker_pool.hpp
/// Cross-model scheduling over one shared worker pool — the
/// multi-tenancy half of the serving core. Per-deployment instance
/// threads (one ModelInstance thread per `instances`) do not scale to
/// hundreds of hosted models; instead a fixed pool of workers scans
/// every deployment's batcher and dispatches ready batches by
/// start-time weighted fair queueing over *tenants*:
///
///  * each tenant has a virtual time; dispatching a batch of n
///    requests advances it by n / weight;
///  * a worker picks the ready deployment whose tenant has the
///    smallest effective virtual time (max of its own and the global
///    virtual clock, so an idle tenant re-enters at the current
///    service point instead of cashing in banked credit);
///  * ties break on deployment name, keeping the pick deterministic.
///
/// A deployment's `instances` survives as its inflight cap — the most
/// workers that may execute its batches concurrently — and its backend
/// streams come from the deduplicated WeightStore (claimed per batch,
/// cold-loading if paged out).
///
/// Lock order: pool mutex → batcher mutex (ready()/try_pop_tagged()
/// are called under the pool lock). The batcher's ready callback fires
/// outside its own lock, so notify() never closes a cycle.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/batcher.hpp"
#include "serving/fair_queue.hpp"
#include "serving/metrics.hpp"
#include "serving/model_instance.hpp"
#include "serving/weight_store.hpp"

namespace harvest::serving {

/// A tenant: the quota/fair-share principal one or more deployments
/// bill to. Weight scales the WFQ share; quota bounds outstanding
/// (admitted, unanswered) requests across the tenant's deployments —
/// 0 means unlimited.
struct TenantState {
  std::string name;
  std::atomic<double> weight{1.0};
  std::atomic<std::int64_t> quota{0};
  std::atomic<std::int64_t> outstanding{0};
};
using TenantPtr = std::shared_ptr<TenantState>;

class WorkerPool {
 public:
  explicit WorkerPool(WeightStore& store);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Attach a deployment. `max_inflight` is its concurrency cap (the
  /// old `instances`); `entry` supplies its backend streams.
  void add_deployment(const std::string& name, TenantPtr tenant,
                      DynamicBatcher* batcher, WeightStore::EntryPtr entry,
                      BatchExecutor* executor, MetricsRegistry* metrics,
                      std::int64_t max_inflight);

  /// Grow the pool to at least `n` workers (never shrinks).
  void ensure_workers(std::size_t n);

  /// Re-scan hint — wired as every attached batcher's ready callback.
  void notify();

  /// Drain every ready batch (batchers must be shut down first, which
  /// turns their remaining queues into immediately-ready drain
  /// flushes), then join the workers. Idempotent.
  void shutdown();

  std::size_t workers() const;
  std::size_t busy() const;
  /// Per-tenant WFQ virtual times (tests / introspection).
  std::map<std::string, double> virtual_times() const;
  std::uint64_t batches_dispatched() const;

 private:
  struct PoolDeployment {
    std::string name;
    TenantPtr tenant;
    DynamicBatcher* batcher = nullptr;
    WeightStore::EntryPtr entry;
    BatchExecutor* executor = nullptr;
    MetricsRegistry* metrics = nullptr;
    std::int64_t max_inflight = 1;
    std::int64_t inflight = 0;  ///< guarded by mutex_
  };

  void worker_loop(std::size_t index);

  WeightStore* store_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<PoolDeployment>> deployments_;
  std::map<std::string, double> tenant_vt_;  ///< keyed by tenant name
  WfqClock wfq_;
  std::size_t busy_ = 0;
  std::uint64_t dispatched_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace harvest::serving
