#pragma once

/// \file trace.hpp
/// Arrival-rate traces for the online scenario. Farm upload traffic is
/// not a constant-rate Poisson stream — scouting happens in bursts
/// (a drone landing and syncing) and follows the daylight cycle — so the
/// online simulation accepts a time-varying rate profile and samples it
/// as a non-homogeneous Poisson process by thinning.

#include <memory>

#include "core/rng.hpp"

namespace harvest::serving {

class ArrivalTrace {
 public:
  virtual ~ArrivalTrace() = default;
  /// Instantaneous arrival rate (requests/second) at time t.
  virtual double rate_at(double t) const = 0;
  /// A bound with rate_at(t) <= peak_rate() for all t (thinning cap).
  virtual double peak_rate() const = 0;
  /// Average rate over [0, duration] (analytic where possible).
  virtual double mean_rate(double duration) const = 0;
};

/// Homogeneous Poisson arrivals.
class ConstantTrace final : public ArrivalTrace {
 public:
  explicit ConstantTrace(double qps) : qps_(qps) {}
  double rate_at(double) const override { return qps_; }
  double peak_rate() const override { return qps_; }
  double mean_rate(double) const override { return qps_; }

 private:
  double qps_;
};

/// Bursty on/off (interrupted Poisson) arrivals: `on_qps` for the first
/// `duty` fraction of every `period`, `off_qps` for the rest.
class OnOffTrace final : public ArrivalTrace {
 public:
  OnOffTrace(double on_qps, double off_qps, double period, double duty);
  double rate_at(double t) const override;
  double peak_rate() const override;
  double mean_rate(double duration) const override;

 private:
  double on_qps_, off_qps_, period_, duty_;
};

/// Smooth daily cycle: base + amplitude · sin(2π t / period), clamped
/// at zero.
class DiurnalTrace final : public ArrivalTrace {
 public:
  DiurnalTrace(double base_qps, double amplitude_qps, double period);
  double rate_at(double t) const override;
  double peak_rate() const override { return base_ + std::abs(amplitude_); }
  double mean_rate(double duration) const override;

 private:
  double base_, amplitude_, period_;
};

/// Next arrival at or after `now` for a non-homogeneous Poisson process
/// with the trace's rate, via Lewis–Shedler thinning. Returns +inf when
/// the trace's peak rate is zero.
double next_arrival(const ArrivalTrace& trace, double now, core::Rng& rng);

}  // namespace harvest::serving
