#include "serving/batcher.hpp"

#include "obs/trace.hpp"

namespace harvest::serving {

const char* flush_reason_name(FlushReason reason) {
  switch (reason) {
    case FlushReason::kFullBatch: return "full_batch";
    case FlushReason::kPreferredSize: return "preferred_size";
    case FlushReason::kTimeout: return "timeout";
    case FlushReason::kShutdown: return "shutdown";
  }
  return "?";
}

void DynamicBatcher::trace_queue_depth() const {
  if (trace_label_.empty()) return;
  obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  if (!recorder.enabled()) return;
  recorder.record_counter(trace_label_ + "/queue_depth",
                          static_cast<double>(queue_.size()));
}

core::Result<std::future<InferenceResponse>> DynamicBatcher::submit(
    InferenceRequest request) {
  std::function<void()> ready_callback;
  std::future<InferenceResponse> future;
  {
    std::scoped_lock lock(mutex_);
    if (shutdown_) {
      return core::Status::unavailable("batcher is shut down");
    }
    if (queue_.size() >= config_.max_queue_depth) {
      return core::Status::unavailable("request queue is full");
    }
    PendingRequest pending;
    pending.request = std::move(request);
    pending.enqueued_at = std::chrono::steady_clock::now();
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    trace_queue_depth();
    cv_.notify_one();
    ready_callback = ready_callback_;
  }
  // Fired unlocked: the pool's notify may itself poll ready(), and a
  // pool → batcher lock order must stay acyclic.
  if (ready_callback) ready_callback();
  return future;
}

bool DynamicBatcher::flush_due_locked(FlushReason& reason,
                                      std::size_t& take) const {
  if (queue_.empty()) return false;
  const auto delay =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.max_queue_delay_s));
  const bool full =
      queue_.size() >= static_cast<std::size_t>(config_.max_batch);
  const bool aged =
      std::chrono::steady_clock::now() >= queue_.front().enqueued_at + delay;
  // Largest preferred size the current queue can fill, if any.
  std::size_t preferred = 0;
  for (std::int64_t size : config_.preferred_batch_sizes) {
    if (size > 0 && size <= config_.max_batch &&
        queue_.size() >= static_cast<std::size_t>(size)) {
      preferred = std::max(preferred, static_cast<std::size_t>(size));
    }
  }
  if (!full && !aged && !shutdown_ && preferred == 0) return false;
  take = std::min(queue_.size(), static_cast<std::size_t>(config_.max_batch));
  if (!full && !aged && !shutdown_) take = preferred;
  // Shutdown outranks age: a drain flush is labelled kShutdown even
  // when the head request has also exceeded its queue delay, so the
  // flush-reason counters attribute drain batches correctly.
  reason = full        ? FlushReason::kFullBatch
           : shutdown_ ? FlushReason::kShutdown
           : aged      ? FlushReason::kTimeout
                       : FlushReason::kPreferredSize;
  return true;
}

BatchedRequests DynamicBatcher::pop_locked(FlushReason reason,
                                           std::size_t take) {
  BatchedRequests batch;
  batch.reason = reason;
  ++flushes_[static_cast<std::size_t>(reason)];
  batch.requests.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.requests.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  trace_queue_depth();
  // Wake a sibling consumer if requests remain (submit() never blocks,
  // so there is no back-pressure wait to release).
  if (!queue_.empty()) cv_.notify_one();
  return batch;
}

std::vector<PendingRequest> DynamicBatcher::wait_batch() {
  return wait_batch_tagged().requests;
}

BatchedRequests DynamicBatcher::wait_batch_tagged() {
  std::unique_lock lock(mutex_);
  const auto delay = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.max_queue_delay_s));
  for (;;) {
    if (shutdown_ && queue_.empty()) return {};
    FlushReason reason = FlushReason::kTimeout;
    std::size_t take = 0;
    if (flush_due_locked(reason, take)) return pop_locked(reason, take);
    if (!queue_.empty()) {
      // Sleep until the head request ages out (or a new arrival fills
      // the batch and notifies us).
      cv_.wait_until(lock, queue_.front().enqueued_at + delay);
    } else {
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    }
  }
}

bool DynamicBatcher::ready() const {
  std::scoped_lock lock(mutex_);
  FlushReason reason = FlushReason::kTimeout;
  std::size_t take = 0;
  return flush_due_locked(reason, take);
}

BatchedRequests DynamicBatcher::try_pop_tagged() {
  std::scoped_lock lock(mutex_);
  FlushReason reason = FlushReason::kTimeout;
  std::size_t take = 0;
  if (!flush_due_locked(reason, take)) return {};
  return pop_locked(reason, take);
}

bool DynamicBatcher::next_deadline(
    std::chrono::steady_clock::time_point& deadline) const {
  std::scoped_lock lock(mutex_);
  if (queue_.empty()) return false;
  FlushReason reason = FlushReason::kTimeout;
  std::size_t take = 0;
  if (flush_due_locked(reason, take)) return false;  // ready right now
  deadline = queue_.front().enqueued_at +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(config_.max_queue_delay_s));
  return true;
}

void DynamicBatcher::set_ready_callback(std::function<void()> callback) {
  std::scoped_lock lock(mutex_);
  ready_callback_ = std::move(callback);
}

void DynamicBatcher::shutdown() {
  std::function<void()> ready_callback;
  {
    std::scoped_lock lock(mutex_);
    shutdown_ = true;
    cv_.notify_all();
    ready_callback = ready_callback_;
  }
  // The shared pool must re-scan: shutdown makes any nonempty queue an
  // immediately-ready drain batch.
  if (ready_callback) ready_callback();
}

std::size_t DynamicBatcher::queued() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

FlushCounts DynamicBatcher::flush_counts() const {
  std::scoped_lock lock(mutex_);
  return flushes_;
}

void DynamicBatcher::set_trace_label(std::string label) {
  std::scoped_lock lock(mutex_);
  trace_label_ = std::move(label);
}

}  // namespace harvest::serving
