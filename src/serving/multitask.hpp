#pragma once

/// \file multitask.hpp
/// Multi-task fan-out with shared preprocessing — §3 of the paper: "A
/// single request may trigger multiple backend calls to support
/// different downstream tasks, which can reuse shared preprocessing
/// steps when applicable." One camera frame is decoded/warped/resized
/// once and the resulting tensor feeds every registered task's backend
/// (e.g. residue-cover estimation *and* pest detection from the same
/// ground-vehicle frame).
///
/// Tasks must agree on the shared preprocessing (same input geometry);
/// registration enforces it.

#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "preproc/pipeline.hpp"
#include "serving/backend.hpp"
#include "serving/request.hpp"

namespace harvest::serving {

class MultiTaskPipeline {
 public:
  /// `pool` parallelizes the shared preprocessing (nullptr = inline).
  explicit MultiTaskPipeline(preproc::PreprocSpec shared_spec,
                             core::ThreadPool* pool = nullptr);

  /// Register a downstream task. Fails when the backend's input size
  /// disagrees with the shared preprocessing output.
  core::Status add_task(std::string task, BackendPtr backend);

  std::size_t task_count() const { return tasks_.size(); }
  std::vector<std::string> task_names() const;

  struct TaskResult {
    std::string task;
    InferenceResponse response;
  };
  struct MultiResult {
    double preprocess_s = 0.0;  ///< paid once for all tasks
    std::vector<TaskResult> results;
  };

  /// Preprocess `input` once, then run every task's backend on the
  /// shared tensor. Per-task failures are isolated into their
  /// response's status; a preprocessing failure fails the whole call.
  core::Result<MultiResult> infer(const preproc::EncodedImage& input);

 private:
  struct Task {
    std::string name;
    BackendPtr backend;
  };
  preproc::PreprocSpec spec_;
  core::ThreadPool* pool_;
  std::vector<Task> tasks_;
};

}  // namespace harvest::serving
