#include "serving/server.hpp"

#include <mutex>
#include <shared_mutex>

#include "core/log.hpp"
#include "obs/trace.hpp"

namespace harvest::serving {

Server::Server(std::size_t preproc_threads)
    : preproc_pool_(std::max<std::size_t>(preproc_threads, 1)) {}

Server::~Server() { shutdown(); }

core::Status Server::register_model(
    const ModelDeploymentConfig& config,
    const std::function<BackendPtr()>& backend_factory) {
  if (config.name.empty()) {
    return core::Status::invalid_argument("model name must not be empty");
  }
  if (config.instances < 1 || config.max_batch < 1) {
    return core::Status::invalid_argument("instances and max_batch must be >=1");
  }
  // Writer side: the name check and the final emplace must be atomic
  // with respect to concurrent registrations and readers.
  std::unique_lock lock(deployments_mutex_);
  if (deployments_.count(config.name) != 0) {
    return core::Status::invalid_argument("model already registered: " +
                                          config.name);
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  auto deployment = std::make_unique<Deployment>(config);
  deployment->batcher.set_trace_label(config.name);
  // Queue-depth gauge for the Prometheus exposition; the batcher
  // outlives the metrics registry's consumers (both live in Deployment).
  DynamicBatcher* batcher = &deployment->batcher;
  deployment->metrics.set_queue_depth_probe(
      [batcher] { return batcher->queued(); });
  if (config.slo.enabled()) {
    deployment->metrics.configure_slo(config.slo, config.slo_window_s);
    // Burn-rate feedback into the resilience layer: while the error
    // budget burns faster than the alert threshold, the admission
    // controller runs with tightened thresholds (sheds earlier), giving
    // the deployment headroom to recover. Edge-triggered both ways.
    resilience::AdmissionController* admission = &deployment->admission;
    const std::string model_name = config.name;
    deployment->metrics.set_slo_alert(
        config.slo_burn_alert,
        [admission, model_name](bool firing, double burn) {
          admission->set_pressure(firing);
          HARVEST_LOG_WARN("slo burn alert %s for '%s' (burn rate %.2f)",
                           firing ? "FIRING" : "resolved", model_name.c_str(),
                           burn);
        });
  }
  for (std::int64_t i = 0; i < config.instances; ++i) {
    BackendPtr backend = backend_factory();
    if (backend == nullptr) {
      deployment->batcher.shutdown();
      return core::Status::internal("backend factory returned null");
    }
    deployment->instances.push_back(std::make_unique<ModelInstance>(
        config.name + "#" + std::to_string(i), std::move(backend),
        config.preproc, deployment->batcher, deployment->metrics,
        config.batched_preproc ? &preproc_pool_ : nullptr,
        &deployment->admission));
  }
  deployments_.emplace(config.name, std::move(deployment));
  HARVEST_LOG_INFO("deployed model '%s': %lld instance(s), max batch %lld, "
                   "max queue delay %.3f ms",
                   config.name.c_str(),
                   static_cast<long long>(config.instances),
                   static_cast<long long>(config.max_batch),
                   config.max_queue_delay_s * 1e3);
  return core::Status::ok();
}

core::Status Server::register_sequence_model(
    const SequenceDeploymentConfig& config,
    const std::function<sequence::SequenceBackendPtr()>& backend_factory) {
  if (config.name.empty()) {
    return core::Status::invalid_argument("model name must not be empty");
  }
  std::unique_lock lock(deployments_mutex_);
  if (deployments_.count(config.name) != 0 ||
      sequence_deployments_.count(config.name) != 0) {
    return core::Status::invalid_argument("model already registered: " +
                                          config.name);
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  sequence::SequenceBackendPtr backend = backend_factory();
  if (backend == nullptr) {
    return core::Status::internal("sequence backend factory returned null");
  }
  auto deployment = std::make_unique<SequenceDeployment>();
  deployment->config = config;
  deployment->scheduler = std::make_unique<sequence::SequenceScheduler>(
      config.name, std::move(backend), config.pool, config.scheduler,
      &deployment->metrics);
  HARVEST_LOG_INFO(
      "deployed sequence model '%s': max active %lld, %lld state slot(s), "
      "%zu-deep queue",
      config.name.c_str(), static_cast<long long>(config.scheduler.max_active),
      static_cast<long long>(deployment->scheduler->pool().slots()),
      config.scheduler.max_queue_depth);
  sequence_deployments_.emplace(config.name, std::move(deployment));
  return core::Status::ok();
}

core::Result<std::future<sequence::SequenceResponse>> Server::submit_sequence(
    sequence::SequenceRequest request) {
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  std::shared_lock lock(deployments_mutex_);
  const auto it = sequence_deployments_.find(request.model);
  if (it == sequence_deployments_.end()) {
    return core::Status::not_found("no sequence model named " + request.model);
  }
  if (request.id == 0) {
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second->scheduler->submit(std::move(request));
}

sequence::SequenceResponse Server::generate_sync(
    sequence::SequenceRequest request) {
  auto submitted = submit_sequence(std::move(request));
  if (!submitted.is_ok()) {
    sequence::SequenceResponse response;
    response.status = submitted.status();
    response.outcome =
        submitted.status().code() == core::StatusCode::kResourceExhausted
            ? sequence::SequenceOutcome::kShed
            : sequence::SequenceOutcome::kFailed;
    return response;
  }
  return submitted.value().get();
}

const sequence::SequenceMetrics* Server::sequence_metrics(
    const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = sequence_deployments_.find(model);
  return it == sequence_deployments_.end() ? nullptr : &it->second->metrics;
}

const sequence::SequenceScheduler* Server::sequence_scheduler(
    const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = sequence_deployments_.find(model);
  return it == sequence_deployments_.end() ? nullptr
                                           : it->second->scheduler.get();
}

std::vector<std::string> Server::sequence_model_names() const {
  std::shared_lock lock(deployments_mutex_);
  std::vector<std::string> names;
  names.reserve(sequence_deployments_.size());
  for (const auto& [name, unused] : sequence_deployments_) {
    names.push_back(name);
  }
  return names;
}

core::Result<std::future<InferenceResponse>> Server::submit(
    InferenceRequest request) {
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(request.model);
  if (it == deployments_.end()) {
    return core::Status::not_found("no model named " + request.model);
  }
  if (request.id == 0) {
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Trace-context propagation: start a fresh trace unless the client
  // (retry loop, DES frontend) already opened one. Every submit —
  // including each retry attempt — gets its own root span id, so one
  // logical request shows up as N sibling "request" spans under the
  // client span.
  if (obs::TraceRecorder::instance().enabled() &&
      request.trace.trace_id == 0) {
    request.trace.trace_id = obs::next_trace_id();
  }
  if (request.trace.active()) {
    request.trace.root_span_id = obs::next_span_id();
  }
  return admit_and_enqueue(*it->second, std::move(request));
}

core::Result<std::future<InferenceResponse>> Server::admit_and_enqueue(
    Deployment& deployment, InferenceRequest request) {
  if (!deployment.admission.enabled() ||
      deployment.admission.admit(deployment.batcher.queued())) {
    return deployment.batcher.submit(std::move(request));
  }
  // Overloaded. Graceful degradation first: hand the request to the
  // configured twin (typically the INT8 deployment of the same model)
  // if that twin would itself admit it.
  if (!deployment.config.degrade_to.empty()) {
    const auto twin_it = deployments_.find(deployment.config.degrade_to);
    if (twin_it != deployments_.end()) {
      Deployment& twin = *twin_it->second;
      if (!twin.admission.enabled() ||
          twin.admission.admit(twin.batcher.queued())) {
        deployment.metrics.record_degraded();
        obs::TraceRecorder::instance().record_instant("degraded", "serving",
                                                      request.trace);
        request.model = deployment.config.degrade_to;
        return twin.batcher.submit(std::move(request));
      }
    }
  }
  deployment.metrics.record_shed();
  obs::TraceRecorder::instance().record_instant("shed", "serving",
                                                request.trace);
  return core::Status::resource_exhausted(
      "admission control shed the request (queue depth " +
      std::to_string(deployment.batcher.queued()) + ", estimated delay " +
      std::to_string(deployment.admission.estimated_delay_s(
          deployment.batcher.queued())) +
      " s)");
}

InferenceResponse Server::infer_sync(InferenceRequest request) {
  auto submitted = submit(std::move(request));
  if (!submitted.is_ok()) {
    InferenceResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted.value().get();
}

const MetricsRegistry* Server::metrics(const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->metrics;
}

MetricsRegistry* Server::mutable_metrics(const std::string& model) {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->metrics;
}

const resilience::AdmissionController* Server::admission(
    const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->admission;
}

std::vector<std::string> Server::model_names() const {
  std::shared_lock lock(deployments_mutex_);
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) names.push_back(name);
  return names;
}

std::size_t Server::queue_depth(const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? 0 : it->second->batcher.queued();
}

std::string Server::prometheus_text() const {
  obs::PrometheusWriter writer;
  {
    std::shared_lock lock(deployments_mutex_);
    for (const auto& [name, deployment] : deployments_) {
      deployment->metrics.render_prometheus(writer, name,
                                            deployment->config.precision);
    }
    for (const auto& [name, deployment] : sequence_deployments_) {
      const sequence::SequenceScheduler& scheduler = *deployment->scheduler;
      const sequence::StatePool& pool = scheduler.pool();
      deployment->metrics.render_prometheus(
          writer, name, scheduler.active(), pool.used_bytes(),
          pool.capacity_bytes(), pool.active(), pool.slots());
    }
  }
  writer.gauge("harvest_preproc_pool_threads",
               "Workers in the shared preprocessing pool.",
               static_cast<double>(preproc_pool_.size()));
  writer.gauge("harvest_preproc_pool_active",
               "Preprocessing pool workers currently running a task.",
               static_cast<double>(preproc_pool_.active()));
  writer.gauge("harvest_preproc_pool_utilization",
               "Active preprocessing workers / pool size.",
               preproc_pool_.size() > 0
                   ? static_cast<double>(preproc_pool_.active()) /
                         static_cast<double>(preproc_pool_.size())
                   : 0.0);
  // Trace-ring health: silent span truncation (ring overwrites) must be
  // visible in the same scrape as the metrics derived from the trace.
  const obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  writer.counter("harvest_trace_dropped_total",
                 "Trace events overwritten because a per-thread ring "
                 "filled up.",
                 static_cast<double>(recorder.dropped()));
  for (const auto& ring : recorder.ring_stats()) {
    obs::PrometheusWriter::Labels ring_labels = {
        {"tid", std::to_string(ring.tid)}};
    if (!ring.name.empty()) ring_labels.emplace_back("thread", ring.name);
    writer.gauge("harvest_trace_ring_events",
                 "Trace events currently retained in this thread's ring.",
                 static_cast<double>(ring.events), ring_labels);
    writer.gauge("harvest_trace_ring_occupancy",
                 "Retained events / ring capacity for this thread.",
                 ring.capacity > 0 ? static_cast<double>(ring.events) /
                                         static_cast<double>(ring.capacity)
                                   : 0.0,
                 ring_labels);
  }
  return writer.str();
}

void Server::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  // Writer lock: register_model may be mutating the map concurrently.
  // In-flight submit() calls have either observed shut_down_ already or
  // hold the reader lock, so they finish before we start draining.
  std::unique_lock lock(deployments_mutex_);
  HARVEST_LOG_DEBUG("server shutdown: draining %zu deployment(s)",
                    deployments_.size());
  for (auto& [name, deployment] : deployments_) {
    deployment->batcher.shutdown();
  }
  // ModelInstance destructors join their workers.
  for (auto& [name, deployment] : deployments_) {
    deployment->instances.clear();
  }
  // Sequence schedulers drain their queues (shed) and live batches
  // (evicted), then join.
  for (auto& [name, deployment] : sequence_deployments_) {
    deployment->scheduler->shutdown();
  }
}

}  // namespace harvest::serving
