#include "serving/server.hpp"

#include <mutex>
#include <shared_mutex>

#include "core/log.hpp"
#include "obs/trace.hpp"

namespace harvest::serving {

Server::Server(std::size_t preproc_threads)
    : preproc_pool_(std::max<std::size_t>(preproc_threads, 1)),
      worker_pool_(weight_store_) {}

Server::~Server() { shutdown(); }

void Server::set_worker_target(std::size_t workers) {
  std::unique_lock lock(deployments_mutex_);
  worker_target_ = workers;
  if (workers > 0) worker_pool_.ensure_workers(workers);
}

core::Status Server::register_model(
    const ModelDeploymentConfig& config,
    const std::function<BackendPtr()>& backend_factory) {
  if (config.name.empty()) {
    return core::Status::invalid_argument("model name must not be empty");
  }
  if (config.instances < 1 || config.max_batch < 1) {
    return core::Status::invalid_argument("instances and max_batch must be >=1");
  }
  if (config.queue_capacity < 1) {
    return core::Status::invalid_argument("queue_capacity must be >= 1");
  }
  if (config.weight <= 0.0 || config.quota < 0) {
    return core::Status::invalid_argument(
        "tenant weight must be > 0 and quota >= 0");
  }
  // Writer side: the name check and the final emplace must be atomic
  // with respect to concurrent registrations and readers.
  std::unique_lock lock(deployments_mutex_);
  if (deployments_.count(config.name) != 0) {
    return core::Status::invalid_argument("model already registered: " +
                                          config.name);
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  auto deployment = std::make_unique<Deployment>(config);
  deployment->batcher.set_trace_label(config.name);
  // Queue-depth gauge for the Prometheus exposition; the batcher
  // outlives the metrics registry's consumers (both live in Deployment).
  DynamicBatcher* batcher = &deployment->batcher;
  deployment->metrics.set_queue_depth_probe(
      [batcher] { return batcher->queued(); });
  if (config.slo.enabled()) {
    deployment->metrics.configure_slo(config.slo, config.slo_window_s);
    // Burn-rate feedback into the resilience layer: while the error
    // budget burns faster than the alert threshold, the admission
    // controller runs with tightened thresholds (sheds earlier), giving
    // the deployment headroom to recover. Edge-triggered both ways.
    resilience::AdmissionController* admission = &deployment->admission;
    const std::string model_name = config.name;
    deployment->metrics.set_slo_alert(
        config.slo_burn_alert,
        [admission, model_name](bool firing, double burn) {
          admission->set_pressure(firing);
          HARVEST_LOG_WARN("slo burn alert %s for '%s' (burn rate %.2f)",
                           firing ? "FIRING" : "resolved", model_name.c_str(),
                           burn);
        });
  }
  // Backend streams come from the deduplicated weight store: equal
  // weight keys share one entry (one set of in-memory streams); an
  // empty key gets a private, unshared entry.
  const std::string weight_key = config.weight_key.empty()
                                     ? "private:" + config.name
                                     : config.weight_key;
  auto entry = weight_store_.acquire(
      weight_key, backend_factory,
      static_cast<std::size_t>(config.instances), config.model_bytes);
  if (!entry.is_ok()) {
    deployment->batcher.shutdown();
    return entry.status();
  }
  deployment->entry = entry.value();
  // Tenant registry: the fair-share/quota principal. Several
  // deployments may bill to one tenant; non-default weight/quota
  // declarations win over the defaults earlier siblings left.
  const std::string tenant_name =
      config.tenant.empty() ? config.name : config.tenant;
  const auto tenant_it = tenants_.find(tenant_name);
  if (tenant_it == tenants_.end()) {
    auto tenant = std::make_shared<TenantState>();
    tenant->name = tenant_name;
    tenant->weight.store(config.weight, std::memory_order_relaxed);
    tenant->quota.store(config.quota, std::memory_order_relaxed);
    deployment->tenant = tenant;
    tenants_.emplace(tenant_name, std::move(tenant));
  } else {
    deployment->tenant = tenant_it->second;
    if (config.weight != 1.0) {
      deployment->tenant->weight.store(config.weight,
                                       std::memory_order_relaxed);
    }
    if (config.quota != 0) {
      deployment->tenant->quota.store(config.quota, std::memory_order_relaxed);
    }
  }
  deployment->executor = std::make_unique<BatchExecutor>(
      config.name, config.preproc, deployment->metrics,
      config.batched_preproc ? &preproc_pool_ : nullptr,
      &deployment->admission);
  worker_pool_.add_deployment(config.name, deployment->tenant,
                              &deployment->batcher, deployment->entry,
                              deployment->executor.get(),
                              &deployment->metrics, config.instances);
  deployment->batcher.set_ready_callback([this] { worker_pool_.notify(); });
  total_instances_ += static_cast<std::size_t>(config.instances);
  // Auto-sized pool keeps the pre-pool concurrency (one worker per
  // declared instance); an explicit target consolidates below that.
  worker_pool_.ensure_workers(worker_target_ > 0 ? worker_target_
                                                 : total_instances_);
  deployments_.emplace(config.name, std::move(deployment));
  HARVEST_LOG_INFO("deployed model '%s': %lld instance cap, max batch %lld, "
                   "max queue delay %.3f ms, tenant '%s'",
                   config.name.c_str(),
                   static_cast<long long>(config.instances),
                   static_cast<long long>(config.max_batch),
                   config.max_queue_delay_s * 1e3, tenant_name.c_str());
  return core::Status::ok();
}

core::Status Server::register_sequence_model(
    const SequenceDeploymentConfig& config,
    const std::function<sequence::SequenceBackendPtr()>& backend_factory) {
  if (config.name.empty()) {
    return core::Status::invalid_argument("model name must not be empty");
  }
  std::unique_lock lock(deployments_mutex_);
  if (deployments_.count(config.name) != 0 ||
      sequence_deployments_.count(config.name) != 0) {
    return core::Status::invalid_argument("model already registered: " +
                                          config.name);
  }
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  sequence::SequenceBackendPtr backend = backend_factory();
  if (backend == nullptr) {
    return core::Status::internal("sequence backend factory returned null");
  }
  auto deployment = std::make_unique<SequenceDeployment>();
  deployment->config = config;
  deployment->scheduler = std::make_unique<sequence::SequenceScheduler>(
      config.name, std::move(backend), config.pool, config.scheduler,
      &deployment->metrics);
  HARVEST_LOG_INFO(
      "deployed sequence model '%s': max active %lld, %lld state slot(s), "
      "%zu-deep queue",
      config.name.c_str(), static_cast<long long>(config.scheduler.max_active),
      static_cast<long long>(deployment->scheduler->pool().slots()),
      config.scheduler.max_queue_depth);
  sequence_deployments_.emplace(config.name, std::move(deployment));
  return core::Status::ok();
}

core::Result<std::future<sequence::SequenceResponse>> Server::submit_sequence(
    sequence::SequenceRequest request) {
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  std::shared_lock lock(deployments_mutex_);
  const auto it = sequence_deployments_.find(request.model);
  if (it == sequence_deployments_.end()) {
    return core::Status::not_found("no sequence model named " + request.model);
  }
  if (request.id == 0) {
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second->scheduler->submit(std::move(request));
}

sequence::SequenceResponse Server::generate_sync(
    sequence::SequenceRequest request) {
  auto submitted = submit_sequence(std::move(request));
  if (!submitted.is_ok()) {
    sequence::SequenceResponse response;
    response.status = submitted.status();
    response.outcome =
        submitted.status().code() == core::StatusCode::kResourceExhausted
            ? sequence::SequenceOutcome::kShed
            : sequence::SequenceOutcome::kFailed;
    return response;
  }
  return submitted.value().get();
}

const sequence::SequenceMetrics* Server::sequence_metrics(
    const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = sequence_deployments_.find(model);
  return it == sequence_deployments_.end() ? nullptr : &it->second->metrics;
}

const sequence::SequenceScheduler* Server::sequence_scheduler(
    const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = sequence_deployments_.find(model);
  return it == sequence_deployments_.end() ? nullptr
                                           : it->second->scheduler.get();
}

std::vector<std::string> Server::sequence_model_names() const {
  std::shared_lock lock(deployments_mutex_);
  std::vector<std::string> names;
  names.reserve(sequence_deployments_.size());
  for (const auto& [name, unused] : sequence_deployments_) {
    names.push_back(name);
  }
  return names;
}

core::Result<std::future<InferenceResponse>> Server::submit(
    InferenceRequest request) {
  if (shut_down_.load(std::memory_order_acquire)) {
    return core::Status::unavailable("server is shut down");
  }
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(request.model);
  if (it == deployments_.end()) {
    return core::Status::not_found("no model named " + request.model);
  }
  if (request.id == 0) {
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Tenant quota gate — before admission control, because a tenant over
  // its outstanding budget must be rejected regardless of how healthy
  // the target deployment's queue is (isolation, not overload).
  if (const TenantPtr& tenant = it->second->tenant; tenant != nullptr) {
    const std::int64_t quota =
        tenant->quota.load(std::memory_order_relaxed);
    const std::int64_t outstanding =
        tenant->outstanding.fetch_add(1, std::memory_order_acq_rel);
    if (quota > 0 && outstanding >= quota) {
      tenant->outstanding.fetch_sub(1, std::memory_order_acq_rel);
      it->second->metrics.record_shed();
      obs::TraceRecorder::instance().record_instant("quota_shed", "serving",
                                                    request.trace);
      return core::Status::resource_exhausted(
          "tenant '" + tenant->name + "' quota exceeded (" +
          std::to_string(quota) + " outstanding requests)");
    }
    // Balanced by the token's deleter on any terminal path — answered,
    // failed, shed downstream, or dropped on the floor.
    TenantPtr owner = tenant;
    request.completion_token = std::shared_ptr<void>(
        static_cast<void*>(nullptr), [owner](void*) {
          owner->outstanding.fetch_sub(1, std::memory_order_acq_rel);
        });
  }
  // Trace-context propagation: start a fresh trace unless the client
  // (retry loop, DES frontend) already opened one. Every submit —
  // including each retry attempt — gets its own root span id, so one
  // logical request shows up as N sibling "request" spans under the
  // client span.
  if (obs::TraceRecorder::instance().enabled() &&
      request.trace.trace_id == 0) {
    request.trace.trace_id = obs::next_trace_id();
  }
  if (request.trace.active()) {
    request.trace.root_span_id = obs::next_span_id();
  }
  return admit_and_enqueue(*it->second, std::move(request));
}

core::Result<std::future<InferenceResponse>> Server::admit_and_enqueue(
    Deployment& deployment, InferenceRequest request) {
  if (!deployment.admission.enabled() ||
      deployment.admission.admit(deployment.batcher.queued())) {
    return deployment.batcher.submit(std::move(request));
  }
  // Overloaded. Graceful degradation first: hand the request to the
  // configured twin (typically the INT8 deployment of the same model)
  // if that twin would itself admit it.
  if (!deployment.config.degrade_to.empty()) {
    const auto twin_it = deployments_.find(deployment.config.degrade_to);
    if (twin_it != deployments_.end()) {
      Deployment& twin = *twin_it->second;
      if (!twin.admission.enabled() ||
          twin.admission.admit(twin.batcher.queued())) {
        deployment.metrics.record_degraded();
        obs::TraceRecorder::instance().record_instant("degraded", "serving",
                                                      request.trace);
        request.model = deployment.config.degrade_to;
        return twin.batcher.submit(std::move(request));
      }
    }
  }
  deployment.metrics.record_shed();
  obs::TraceRecorder::instance().record_instant("shed", "serving",
                                                request.trace);
  return core::Status::resource_exhausted(
      "admission control shed the request (queue depth " +
      std::to_string(deployment.batcher.queued()) + ", estimated delay " +
      std::to_string(deployment.admission.estimated_delay_s(
          deployment.batcher.queued())) +
      " s)");
}

InferenceResponse Server::infer_sync(InferenceRequest request) {
  auto submitted = submit(std::move(request));
  if (!submitted.is_ok()) {
    InferenceResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted.value().get();
}

const MetricsRegistry* Server::metrics(const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->metrics;
}

MetricsRegistry* Server::mutable_metrics(const std::string& model) {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->metrics;
}

const resilience::AdmissionController* Server::admission(
    const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->admission;
}

std::vector<std::string> Server::model_names() const {
  std::shared_lock lock(deployments_mutex_);
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) names.push_back(name);
  return names;
}

const TenantState* Server::tenant(const std::string& name) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Server::tenant_names() const {
  std::shared_lock lock(deployments_mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, unused] : tenants_) names.push_back(name);
  return names;
}

std::size_t Server::queue_depth(const std::string& model) const {
  std::shared_lock lock(deployments_mutex_);
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? 0 : it->second->batcher.queued();
}

std::string Server::prometheus_text() const {
  obs::PrometheusWriter writer;
  {
    std::shared_lock lock(deployments_mutex_);
    for (const auto& [name, deployment] : deployments_) {
      deployment->metrics.render_prometheus(writer, name,
                                            deployment->config.precision);
    }
    for (const auto& [name, deployment] : sequence_deployments_) {
      const sequence::SequenceScheduler& scheduler = *deployment->scheduler;
      const sequence::StatePool& pool = scheduler.pool();
      deployment->metrics.render_prometheus(
          writer, name, scheduler.active(), pool.used_bytes(),
          pool.capacity_bytes(), pool.active(), pool.slots());
    }
    // Per-tenant isolation gauges: outstanding vs quota is the signal
    // that one tenant is eating the fleet.
    for (const auto& [name, tenant] : tenants_) {
      const obs::PrometheusWriter::Labels labels = {{"tenant", name}};
      writer.gauge("harvest_tenant_outstanding",
                   "Requests admitted for this tenant and not yet answered.",
                   static_cast<double>(
                       tenant->outstanding.load(std::memory_order_relaxed)),
                   labels);
      writer.gauge("harvest_tenant_weight",
                   "WFQ share weight of this tenant.",
                   tenant->weight.load(std::memory_order_relaxed), labels);
      writer.gauge("harvest_tenant_quota",
                   "Outstanding-request quota (0 = unlimited).",
                   static_cast<double>(
                       tenant->quota.load(std::memory_order_relaxed)),
                   labels);
    }
  }
  // Fleet-level weight store: resident vs naive bytes is the dedup win;
  // cold loads and pageouts are the paging churn.
  const WeightStore::Stats ws = weight_store_.stats();
  writer.gauge("harvest_weight_resident_bytes",
               "Bytes of backend streams currently resident in the "
               "deduplicated weight store.",
               static_cast<double>(ws.resident_bytes));
  writer.gauge("harvest_weight_naive_bytes",
               "Bytes the same deployments would occupy without weight "
               "sharing (each at its full stream count).",
               static_cast<double>(ws.naive_bytes));
  writer.gauge("harvest_weight_entries",
               "Distinct weight-store entries (unique backbones).",
               static_cast<double>(ws.entries));
  writer.counter("harvest_weight_dedup_hits_total",
                 "Deployments that attached to an existing weight entry "
                 "instead of loading a private copy.",
                 static_cast<double>(ws.dedup_hits));
  writer.counter("harvest_weight_cold_loads_total",
                 "Backend-stream builds performed on demand (lazy first "
                 "build or reload after page-out).",
                 static_cast<double>(ws.cold_loads));
  writer.counter("harvest_weight_pageouts_total",
                 "Idle backend streams paged out to fit the byte budget.",
                 static_cast<double>(ws.pageouts));
  writer.gauge("harvest_worker_pool_threads",
               "Workers in the shared serving pool.",
               static_cast<double>(worker_pool_.workers()));
  writer.gauge("harvest_worker_pool_busy",
               "Shared-pool workers currently executing a batch.",
               static_cast<double>(worker_pool_.busy()));
  writer.gauge("harvest_preproc_pool_threads",
               "Workers in the shared preprocessing pool.",
               static_cast<double>(preproc_pool_.size()));
  writer.gauge("harvest_preproc_pool_active",
               "Preprocessing pool workers currently running a task.",
               static_cast<double>(preproc_pool_.active()));
  writer.gauge("harvest_preproc_pool_utilization",
               "Active preprocessing workers / pool size.",
               preproc_pool_.size() > 0
                   ? static_cast<double>(preproc_pool_.active()) /
                         static_cast<double>(preproc_pool_.size())
                   : 0.0);
  // Trace-ring health: silent span truncation (ring overwrites) must be
  // visible in the same scrape as the metrics derived from the trace.
  const obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  writer.counter("harvest_trace_dropped_total",
                 "Trace events overwritten because a per-thread ring "
                 "filled up.",
                 static_cast<double>(recorder.dropped()));
  for (const auto& ring : recorder.ring_stats()) {
    obs::PrometheusWriter::Labels ring_labels = {
        {"tid", std::to_string(ring.tid)}};
    if (!ring.name.empty()) ring_labels.emplace_back("thread", ring.name);
    writer.gauge("harvest_trace_ring_events",
                 "Trace events currently retained in this thread's ring.",
                 static_cast<double>(ring.events), ring_labels);
    writer.gauge("harvest_trace_ring_occupancy",
                 "Retained events / ring capacity for this thread.",
                 ring.capacity > 0 ? static_cast<double>(ring.events) /
                                         static_cast<double>(ring.capacity)
                                   : 0.0,
                 ring_labels);
  }
  return writer.str();
}

void Server::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  // Writer lock: register_model may be mutating the map concurrently.
  // In-flight submit() calls have either observed shut_down_ already or
  // hold the reader lock, so they finish before we start draining.
  std::unique_lock lock(deployments_mutex_);
  HARVEST_LOG_DEBUG("server shutdown: draining %zu deployment(s)",
                    deployments_.size());
  // Order matters: batcher shutdown turns every nonempty queue into an
  // immediately-ready drain flush; the pool drains those, joins, and
  // only then may the store stop handing out streams.
  for (auto& [name, deployment] : deployments_) {
    deployment->batcher.shutdown();
  }
  worker_pool_.shutdown();
  weight_store_.shutdown();
  // Sequence schedulers drain their queues (shed) and live batches
  // (evicted), then join.
  for (auto& [name, deployment] : sequence_deployments_) {
    deployment->scheduler->shutdown();
  }
}

}  // namespace harvest::serving
