#include "serving/server.hpp"

namespace harvest::serving {

Server::Server(std::size_t preproc_threads)
    : preproc_pool_(std::max<std::size_t>(preproc_threads, 1)) {}

Server::~Server() { shutdown(); }

core::Status Server::register_model(
    const ModelDeploymentConfig& config,
    const std::function<BackendPtr()>& backend_factory) {
  if (config.name.empty()) {
    return core::Status::invalid_argument("model name must not be empty");
  }
  if (deployments_.count(config.name) != 0) {
    return core::Status::invalid_argument("model already registered: " +
                                          config.name);
  }
  if (config.instances < 1 || config.max_batch < 1) {
    return core::Status::invalid_argument("instances and max_batch must be >=1");
  }
  auto deployment = std::make_unique<Deployment>(config);
  for (std::int64_t i = 0; i < config.instances; ++i) {
    BackendPtr backend = backend_factory();
    if (backend == nullptr) {
      deployment->batcher.shutdown();
      return core::Status::internal("backend factory returned null");
    }
    deployment->instances.push_back(std::make_unique<ModelInstance>(
        config.name + "#" + std::to_string(i), std::move(backend),
        config.preproc, deployment->batcher, deployment->metrics,
        config.batched_preproc ? &preproc_pool_ : nullptr));
  }
  deployments_.emplace(config.name, std::move(deployment));
  return core::Status::ok();
}

core::Result<std::future<InferenceResponse>> Server::submit(
    InferenceRequest request) {
  const auto it = deployments_.find(request.model);
  if (it == deployments_.end()) {
    return core::Status::not_found("no model named " + request.model);
  }
  if (request.id == 0) {
    request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second->batcher.submit(std::move(request));
}

InferenceResponse Server::infer_sync(InferenceRequest request) {
  auto submitted = submit(std::move(request));
  if (!submitted.is_ok()) {
    InferenceResponse response;
    response.status = submitted.status();
    return response;
  }
  return submitted.value().get();
}

const MetricsRegistry* Server::metrics(const std::string& model) const {
  const auto it = deployments_.find(model);
  return it == deployments_.end() ? nullptr : &it->second->metrics;
}

std::vector<std::string> Server::model_names() const {
  std::vector<std::string> names;
  names.reserve(deployments_.size());
  for (const auto& [name, unused] : deployments_) names.push_back(name);
  return names;
}

void Server::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& [name, deployment] : deployments_) {
    deployment->batcher.shutdown();
  }
  // ModelInstance destructors join their workers.
  for (auto& [name, deployment] : deployments_) {
    deployment->instances.clear();
  }
}

}  // namespace harvest::serving
