#pragma once

/// \file request.hpp
/// Request/response types of the HARVEST serving runtime. The frontend
/// submits one encoded image per request (§3: "the frontend transmits or
/// locally reads input data and generates requests to the backend");
/// the dynamic batcher groups requests into engine batches.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "obs/trace.hpp"
#include "preproc/codec.hpp"

namespace harvest::serving {

struct InferenceRequest {
  std::uint64_t id = 0;
  std::string model;              ///< target model deployment
  preproc::EncodedImage input;
  double deadline_s = 0.0;        ///< 0 = none (real-time scenario sets one)
  /// Distributed-trace context. Left default, the server starts a fresh
  /// trace at submit; a client (RetryingClient, DES frontend) may
  /// pre-populate trace_id/parent_span_id so every hop and retry of one
  /// logical request lands in the same span tree.
  obs::TraceContext trace;
  /// Tenant-quota accounting handle, attached by Server::submit. Its
  /// deleter decrements the tenant's outstanding count when the request
  /// reaches any terminal state (answered, failed, shed, dropped) —
  /// whichever code path destroys the request last.
  std::shared_ptr<void> completion_token;
};

/// Per-request timing breakdown (§3.1: request latency = dataset
/// preprocessing + model preprocessing + inference).
struct RequestTiming {
  double queue_s = 0.0;
  double preprocess_s = 0.0;
  double inference_s = 0.0;
  double total_s = 0.0;
  std::int64_t batch_size = 0;  ///< size of the batch this request rode in
};

/// How a request left the system. Distinguishing these terminal states
/// is what makes the Prometheus export debuggable under overload: a
/// request shed by admission control, one dropped after its deadline,
/// and one the backend genuinely failed are different operational
/// problems with different fixes.
enum class RequestOutcome : int {
  kOk = 0,             ///< answered successfully
  kFailed = 1,         ///< backend/preprocessing error
  kShed = 2,           ///< rejected by admission control (kResourceExhausted)
  kDeadlineMissed = 3, ///< dropped while queued or completed too late
};
inline constexpr std::size_t kRequestOutcomeCount = 4;

/// Prometheus label value for an outcome ("ok", "failed", "shed",
/// "deadline_missed").
const char* request_outcome_name(RequestOutcome outcome);

struct InferenceResponse {
  std::uint64_t id = 0;
  core::Status status;
  std::int64_t predicted_class = -1;
  float confidence = 0.0f;            ///< softmax probability of the argmax
  std::vector<float> logits;          ///< full output row
  RequestTiming timing;
};

}  // namespace harvest::serving
