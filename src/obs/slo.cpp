#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>

namespace harvest::obs {

SloTracker::SloTracker(SloConfig config, double window_s) {
  configure(config, window_s);
}

void SloTracker::configure(SloConfig config, double window_s) {
  std::scoped_lock lock(mutex_);
  config_ = config;
  window_s_ = std::max(window_s, 1e-3);
  bucket_width_s_ = window_s_ / kBuckets;
  ring_.assign(kBuckets, Bucket{});
  total_ = 0;
  bad_total_ = 0;
  firing_ = false;
}

void SloTracker::set_alert(double burn_threshold, AlertFn fn) {
  std::scoped_lock lock(mutex_);
  alert_threshold_ = burn_threshold;
  alert_ = std::move(fn);
}

std::int64_t SloTracker::bucket_index(double now_s) const {
  return static_cast<std::int64_t>(std::floor(now_s / bucket_width_s_));
}

void SloTracker::record(double now_s, bool ok, double latency_s) {
  if (!config_.enabled()) return;
  bool good = ok;
  if (good && config_.latency_target_s > 0.0 &&
      latency_s > config_.latency_target_s) {
    good = false;
  }

  bool fire_transition = false;
  bool fire_state = false;
  double fire_burn = 0.0;
  AlertFn alert_copy;
  {
    std::scoped_lock lock(mutex_);
    const std::int64_t index = bucket_index(now_s);
    Bucket& bucket = ring_[static_cast<std::size_t>(
        ((index % kBuckets) + kBuckets) % kBuckets)];
    if (bucket.index != index) {
      bucket = Bucket{};
      bucket.index = index;
    }
    if (good) {
      ++bucket.good;
    } else {
      ++bucket.bad;
      ++bad_total_;
    }
    ++total_;

    if (alert_ && alert_threshold_ > 0.0) {
      const double burn = burn_rate_locked(index);
      const bool should_fire = burn >= alert_threshold_;
      if (should_fire != firing_) {
        firing_ = should_fire;
        fire_transition = true;
        fire_state = should_fire;
        fire_burn = burn;
        alert_copy = alert_;
      }
    }
  }
  // Edge-triggered, outside the lock: the subscriber (admission control)
  // may call back into metrics paths that take their own locks.
  if (fire_transition && alert_copy) alert_copy(fire_state, fire_burn);
}

double SloTracker::burn_rate_locked(std::int64_t now_index) const {
  const double budget = 1.0 - config_.availability_target;
  if (budget <= 0.0) return 0.0;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  const std::int64_t oldest = now_index - kBuckets + 1;
  for (const Bucket& bucket : ring_) {
    if (bucket.index < oldest || bucket.index > now_index) continue;
    good += bucket.good;
    bad += bucket.bad;
  }
  const std::uint64_t window_total = good + bad;
  if (window_total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(window_total);
  return bad_fraction / budget;
}

double SloTracker::burn_rate(double now_s) const {
  if (!config_.enabled()) return 0.0;
  std::scoped_lock lock(mutex_);
  return burn_rate_locked(bucket_index(now_s));
}

double SloTracker::budget_remaining() const {
  if (!config_.enabled()) return 1.0;
  std::scoped_lock lock(mutex_);
  if (total_ == 0) return 1.0;
  const double budget = 1.0 - config_.availability_target;
  const double allowed = budget * static_cast<double>(total_);
  if (allowed <= 0.0) return bad_total_ == 0 ? 1.0 : 0.0;
  return 1.0 - static_cast<double>(bad_total_) / allowed;
}

std::uint64_t SloTracker::total() const {
  std::scoped_lock lock(mutex_);
  return total_;
}

std::uint64_t SloTracker::bad() const {
  std::scoped_lock lock(mutex_);
  return bad_total_;
}

}  // namespace harvest::obs
